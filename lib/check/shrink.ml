(* Failure minimization: given an APK on which some failure predicate
   holds (normally [Oracle.fails] restricted to the configurations that
   diverged), greedily shrink it to a small APK that still fails.

   Two phases:
   1. drop whole methods — a candidate is valid iff the reduced APK still
      passes {!Dex_check} (dropping a callee invalidates its callers, and
      such candidates are simply skipped) and still fails the predicate;
   2. drop instruction ranges inside the surviving methods, ddmin-style:
      halves first, then ever smaller chunks down to single instructions,
      remapping branch labels across the hole.

   The predicate is re-evaluated for every candidate, so the dominant
   cost is one oracle run per attempted deletion; [budget] caps the total
   number of predicate evaluations and the loop stops cleanly when it is
   exhausted. The result is minimal-per-phase in the delta-debugging
   sense, not globally minimal — good enough to paste into a test. *)

open Calibro_dex.Dex_ir
module Dex_check = Calibro_dex.Dex_check

type stats = {
  s_methods_before : int;
  s_methods_after : int;
  s_insns_before : int;
  s_insns_after : int;
  s_predicate_runs : int;
}

let max_passes = 4
(* Method-phase fixpoint cap: greedy passes over a shrinking method list
   converge fast; anything still shrinking after four sweeps is chasing
   marginal deletions at full oracle cost. *)

(* ---- APK surgery -------------------------------------------------------- *)

let filter_methods keep (apk : apk) : apk =
  let dexes =
    List.filter_map
      (fun d ->
        let classes =
          List.filter_map
            (fun c ->
              let cls_methods = List.filter keep c.cls_methods in
              if cls_methods = [] then None else Some { c with cls_methods })
            d.classes
        in
        if classes = [] then None else Some { d with classes })
      apk.dexes
  in
  { apk with dexes }

let map_labels f = function
  | If (c, a, b, l) -> If (c, a, b, f l)
  | Ifz (c, a, l) -> Ifz (c, a, f l)
  | Goto l -> Goto (f l)
  | Switch (v, ls) -> Switch (v, List.map f ls)
  | i -> i

(* Remove instructions [i, i+k) from [m]. Labels past the hole shift down
   by [k]; labels into the hole are clamped to the old successor, which
   now sits at index [i]. A label left dangling past the new end is
   caught by {!Dex_check} and the candidate discarded. *)
let drop_range (m : meth) i k : meth =
  let n = Array.length m.insns in
  let remap l = if l >= i + k then l - k else if l >= i then i else l in
  let insns =
    Array.init (n - k) (fun j ->
        map_labels remap m.insns.(if j < i then j else j + k))
  in
  { m with insns }

let replace_method (apk : apk) (m : meth) : apk =
  let swap c =
    { c with
      cls_methods =
        List.map (fun m' -> if m'.name = m.name then m else m') c.cls_methods }
  in
  { apk with
    dexes =
      List.map (fun d -> { d with classes = List.map swap d.classes }) apk.dexes }

(* ---- The shrink loop ---------------------------------------------------- *)

let shrink ?(budget = 500) ~(still_failing : apk -> bool) (apk : apk) :
    apk * stats =
  let runs = ref 0 in
  let failing a =
    (* An exhausted budget rejects every further candidate, so the loops
       below wind down without a separate exit path. *)
    if !runs >= budget then false
    else begin
      incr runs;
      still_failing a
    end
  in
  let valid a = match Dex_check.check a with Ok () -> true | Error _ -> false in
  (* Phase 1: whole methods. Each pass walks the current method list and
     greedily commits every deletion that keeps the APK failing. *)
  let current = ref apk in
  let progress = ref true in
  let passes = ref 0 in
  while !progress && !passes < max_passes do
    progress := false;
    incr passes;
    List.iter
      (fun (m : meth) ->
        let candidate = filter_methods (fun m' -> m'.name <> m.name) !current in
        if method_count candidate > 0 && valid candidate && failing candidate
        then begin
          current := candidate;
          progress := true
        end)
      (methods_of_apk !current)
  done;
  (* Phase 2: instruction ranges, per surviving method. Chunk size starts
     at half the body and halves on every chunk-sweep that makes no
     progress; chunk size 1 is the greedy single-instruction pass. *)
  List.iter
    (fun (m : meth) ->
      if not m.is_native then begin
        let cur = ref (Option.value ~default:m (find_method !current m.name)) in
        let chunk = ref (max 1 (Array.length !cur.insns / 2)) in
        while !chunk >= 1 && !runs < budget do
          let i = ref 0 in
          let progressed = ref false in
          while !i + !chunk <= Array.length !cur.insns && !runs < budget do
            let candidate = replace_method !current (drop_range !cur !i !chunk) in
            if valid candidate && failing candidate then begin
              current := candidate;
              cur := Option.get (find_method candidate m.name);
              progressed := true
              (* [i] stays put: the next chunk slid into its place. *)
            end
            else i := !i + !chunk
          done;
          if !progressed then
            chunk := min !chunk (max 1 (Array.length !cur.insns / 2))
          else chunk := !chunk / 2
        done
      end)
    (methods_of_apk !current);
  ( !current,
    { s_methods_before = method_count apk;
      s_methods_after = method_count !current;
      s_insns_before = insn_count apk;
      s_insns_after = insn_count !current;
      s_predicate_runs = !runs } )
