(* Seeded fuzzing of the outlining pipeline.

   Each seed deterministically perturbs the demo workload profile
   ({!Calibro_workload.Appgen.perturb_profile}) — pool sizes, perturbation
   rates, register layouts, method-kind mixes — generates the resulting
   APK and runs the full differential oracle on it. Same seed, same APK,
   same verdict: a failing seed number is a complete bug report.

   On failure the APK is shrunk ({!Shrink}) against the same oracle
   configuration and emitted as a ready-to-paste Alcotest case whose
   source text is the minimized .dexsim program. *)

open Calibro_dex.Dex_ir
module Appgen = Calibro_workload.Appgen
module Apps = Calibro_workload.Apps
module Dex_text = Calibro_dex.Dex_text
module Pipeline = Calibro_core.Pipeline
module Dict = Calibro_dict.Dict
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json

let profile_of_seed seed = Appgen.perturb_profile ~seed Apps.demo

let apk_of_seed seed = (Appgen.generate (profile_of_seed seed)).Appgen.app

type failure = {
  fl_seed : int;
  fl_detail : string list;  (** divergence strings, or a build error *)
  fl_shrunk : apk option;
  fl_stats : Shrink.stats option;
}

type outcome = { fz_seeds : int; fz_failures : failure list }

let ok o = o.fz_failures = []

(* ---- Reproduction ------------------------------------------------------- *)

(* Render a failing (ideally shrunk) APK as a self-contained Alcotest
   case. The body re-parses the minimized .dexsim source and re-runs the
   oracle, so pasting it into test/ pins the bug without depending on the
   generator staying bit-stable. *)
let alcotest_case_of ~seed (apk : apk) : string =
  let src = Dex_text.to_string apk in
  Printf.sprintf
    {|let test_fuzz_seed_%d () =
  let src = {dex|
%s|dex} in
  let apk =
    match Calibro_dex.Dex_text.parse src with
    | Ok apk -> apk
    | Error e -> Alcotest.failf "parse: %%s" e
  in
  match Calibro_check.Oracle.run apk with
  | Error e -> Alcotest.failf "oracle: %%s" e
  | Ok r ->
    Alcotest.(check (list string))
      "no divergences" []
      (List.map Calibro_check.Oracle.divergence_to_string
         r.Calibro_check.Oracle.r_divergences)
|}
    seed src

(* ---- Single seed -------------------------------------------------------- *)

let report_details = function
  | Error e -> [ e ]
  | Ok (r : Oracle.report) ->
    List.map Oracle.divergence_to_string r.Oracle.r_divergences

(* The shared-dict fuzz configuration: a dictionary carrying every body
   the seed's PlOpti build outlines (the build counted as two apps, so
   each body clears the >= 2-apps mining bar). Linking then binds all of
   them — the maximal dictionary coverage one generated app can exercise,
   and the oracle must still see baseline-identical execution. *)
let dict_of apk =
  match
    Pipeline.build ~config:(Calibro_core.Config.cto_ltbo_pl ~k:8 ()) apk
  with
  | exception Pipeline.Build_error _ -> None
  | b -> Some (Dict.of_oats [ b.Pipeline.b_oat; b.Pipeline.b_oat ])

(* The shelve fuzz coverage: 0.8 matches the release-train default, and
   on the generated apps it leaves a warm set small enough that most
   methods really are parked — the variant exercises stubs, faults and
   shelf-resident execution on every seed. *)
let default_shelve_coverage = 0.8

let run_seed ?configs ?(mutate = fun _ oat -> oat) ?(shrink = true)
    ?(dict = true) ?(shelve = true) seed : failure option =
  let apk = apk_of_seed seed in
  let dict_for a = if dict then dict_of a else None in
  let shelve_cov = if shelve then Some default_shelve_coverage else None in
  match Oracle.run ?configs ~mutate ?dict:(dict_for apk) ?shelve:shelve_cov apk with
  | Ok r when Oracle.ok r -> None
  | report ->
    let shrunk, stats =
      if shrink then begin
        (* Shrinking re-runs the oracle per candidate deletion, so narrow
           it to the configurations that actually diverged (falling back
           to the original set for build errors or baseline faults) and
           bound the baseline fuel by the original run: a candidate whose
           baseline needs much more fuel than the whole original APK is a
           manufactured infinite loop, not a smaller reproducer. *)
        let configs, baseline_fuel =
          match report with
          | Error _ -> (configs, None)
          | Ok r ->
            let bad =
              List.sort_uniq compare
                (List.map
                   (fun d -> Oracle.plain_config_name d.Oracle.dv_config)
                   r.Oracle.r_divergences)
            in
            let configs =
              match
                List.filter
                  (fun (c : Calibro_core.Config.t) ->
                    List.mem c.Calibro_core.Config.name bad)
                  r.Oracle.r_config_set
              with
              | [] -> configs
              | cs -> Some cs
            in
            (configs, Some ((4 * r.Oracle.r_baseline_retired) + 250_000))
        in
        (* Re-mine the dictionary per candidate: a shrunk app's bodies
           differ, and a stale dictionary would bind nothing, silently
           turning the dict variant into the plain one. *)
        let still_failing a =
          Oracle.fails ?baseline_fuel ?configs ~mutate ?dict:(dict_for a)
            ?shelve:shelve_cov a
        in
        let a, st = Shrink.shrink ~still_failing apk in
        (Some a, Some st)
      end
      else (None, None)
    in
    Some
      { fl_seed = seed; fl_detail = report_details report;
        fl_shrunk = shrunk; fl_stats = stats }

(* ---- The loop ----------------------------------------------------------- *)

(* [log] receives one line per event (seed started, failure found);
   the CLI wires it to stderr, tests leave it silent. *)
let run ?(seeds = 25) ?(base_seed = 0) ?configs ?mutate ?shrink ?dict ?shelve
    ?(log = fun (_ : string) -> ()) () : outcome =
  let failures = ref [] in
  for i = 0 to seeds - 1 do
    let seed = base_seed + i in
    let profile = profile_of_seed seed in
    log
      (Printf.sprintf "seed %d: app %s (%d-ish methods)" seed
         profile.Appgen.p_name
         (profile.Appgen.p_n_arith + profile.Appgen.p_n_field
        + profile.Appgen.p_n_serializer + profile.Appgen.p_n_compute
        + profile.Appgen.p_n_dispatcher + profile.Appgen.p_n_glue));
    Obs.Counter.incr "fuzz.seeds_run";
    match
      Obs.span ~cat:"check" "fuzz.seed"
        ~args:(fun () -> [ ("seed", Json.Int seed) ])
        (fun () -> run_seed ?configs ?mutate ?shrink ?dict ?shelve seed)
    with
    | None -> ()
    | Some f ->
      Obs.Counter.incr "fuzz.seeds_failed";
      log
        (Printf.sprintf "seed %d FAILED:\n  %s" seed
           (String.concat "\n  " f.fl_detail));
      (match f.fl_stats with
       | Some st ->
         log
           (Printf.sprintf
              "seed %d shrunk: %d -> %d methods, %d -> %d insns (%d oracle runs)"
              seed st.Shrink.s_methods_before st.Shrink.s_methods_after
              st.Shrink.s_insns_before st.Shrink.s_insns_after
              st.Shrink.s_predicate_runs)
       | None -> ());
      failures := f :: !failures
  done;
  { fz_seeds = seeds; fz_failures = List.rev !failures }

(* ---- Protocol frame fuzzing (--proto) ------------------------------------

   The wire layer's promise is narrower and harsher than the pipeline's:
   whatever bytes arrive, {!Calibro_server.Protocol.read_frame} either
   returns a payload or raises the typed [Frame_error] — never any other
   exception, and never an allocation sized by an attacker-controlled
   length field. Each seed deterministically derives a handful of frame
   corruptions (truncations, bad magic, oversized declared lengths, pure
   garbage, trailing junk) and feeds them through a real socketpair, the
   same fd path the daemon reads. Request decoding is fuzzed behind the
   frame layer the same way: garbage payloads must come back [Error],
   never raise. *)

module Proto = struct
  module P = Calibro_server.Protocol
  module Oat_file = Calibro_oat.Oat_file
  module Arena = Calibro_oat.Arena

  type outcome = { pf_cases : int; pf_failures : string list }

  let ok o = o.pf_failures = []

  (* The same splitmix64 stream the partitioner and router use; the fuzz
     corpus is a pure function of the seed. *)
  let splitmix64 z =
    let z = Int64.mul 0x9E3779B97F4A7C15L (Int64.logxor z (Int64.shift_right_logical z 30)) in
    let z = Int64.mul 0xBF58476D1CE4E5B9L (Int64.logxor z (Int64.shift_right_logical z 27)) in
    let z = Int64.mul 0x94D049BB133111EBL (Int64.logxor z (Int64.shift_right_logical z 31)) in
    Int64.logxor z (Int64.shift_right_logical z 33)

  type rng = { mutable state : int64 }

  let rng seed = { state = splitmix64 (Int64.of_int (seed + 1)) }

  let next r =
    r.state <- splitmix64 r.state;
    Int64.to_int (Int64.logand r.state 0x3FFFFFFFFFFFFFFFL)

  let bytes r n = String.init n (fun _ -> Char.chr (next r land 0xff))

  (* Feed [input] to read_frame through a socketpair — the writer runs in
     its own thread (then shuts down its end, so short inputs surface as
     EOF, exactly like a dropped client). *)
  let feed input =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let writer =
      Thread.create
        (fun () ->
          (try
             ignore (Unix.write_substring b input 0 (String.length input))
           with Unix.Unix_error _ -> ());
          try Unix.shutdown b Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
        ()
    in
    let result =
      match P.read_frame a with
      | payload -> Ok payload
      | exception P.Frame_error m -> Error (`Frame_error m)
      | exception e -> Error (`Raised (Printexc.to_string e))
    in
    Thread.join writer;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ a; b ];
    result

  (* One seed's worth of cases; each returns [None] or a failure line. *)
  let cases_of_seed seed : (string * (unit -> string option)) list =
    let r = rng seed in
    let payload = bytes r (1 + (next r mod 2048)) in
    let frame = P.to_frame payload in
    let expect_frame_error what input () =
      match feed input with
      | Ok p ->
        Some
          (Printf.sprintf "seed %d: %s was accepted as a %d-byte payload"
             seed what (String.length p))
      | Error (`Frame_error _) -> None
      | Error (`Raised e) ->
        Some (Printf.sprintf "seed %d: %s raised %s, not Frame_error" seed
                what e)
    in
    [ ( "valid frame",
        fun () ->
          match feed frame with
          | Ok p when String.equal p payload -> None
          | Ok _ -> Some (Printf.sprintf "seed %d: payload corrupted" seed)
          | Error (`Frame_error m) ->
            Some (Printf.sprintf "seed %d: valid frame refused: %s" seed m)
          | Error (`Raised e) ->
            Some (Printf.sprintf "seed %d: valid frame raised %s" seed e) );
      ( "truncated frame",
        (* Cut anywhere strictly inside: mid-magic, mid-length or
           mid-payload, all must be typed EOF errors. *)
        expect_frame_error "truncated frame"
          (String.sub frame 0 (next r mod String.length frame)) );
      ( "bad magic",
        expect_frame_error "bad magic"
          (let b = Bytes.of_string frame in
           let i = next r mod 4 in
           Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
           Bytes.to_string b) );
      ( "oversized length",
        fun () ->
          (* A header declaring up to 2GiB with no body behind it: the
             reader must refuse on the declared length alone — before
             allocating a buffer for it. The allocation bound is the
             fuzz oracle for that: parsing the header costs a few hundred
             bytes, believing it costs hundreds of MB. *)
          let declared =
            P.max_frame + 1 + (next r mod (0x7FFFFFFF - P.max_frame - 1))
          in
          let header = Bytes.create 8 in
          Bytes.blit_string "CLB1" 0 header 0 4;
          Bytes.set_int32_le header 4 (Int32.of_int declared);
          let before = Gc.allocated_bytes () in
          let verdict =
            expect_frame_error "oversized length" (Bytes.to_string header) ()
          in
          let allocated = Gc.allocated_bytes () -. before in
          if verdict <> None then verdict
          else if allocated > 1_000_000.0 then
            Some
              (Printf.sprintf
                 "seed %d: refusing a %d-byte declared length allocated \
                  %.0f bytes"
                 seed declared allocated)
          else None );
      ( "garbage bytes",
        (* Random bytes that cannot be a frame (first byte is forced off
           'C' so the magic check must fire). *)
        expect_frame_error "garbage"
          (let g = bytes r (8 + (next r mod 64)) in
           let b = Bytes.of_string g in
           if Bytes.get b 0 = 'C' then Bytes.set b 0 'X';
           Bytes.to_string b) );
      ( "garbage payload decode",
        fun () ->
          (* Behind a well-formed frame, a garbage payload must decode to
             Error, never raise — the reader thread turns it into a typed
             Malformed answer. *)
          match P.decode_request (bytes r (next r mod 512)) with
          | Ok _ | Error _ -> None
          | exception e ->
            Some
              (Printf.sprintf "seed %d: decode_request raised %s" seed
                 (Printexc.to_string e)) );
      ( "report frame round-trips",
        fun () ->
          (* The PGO feedback frame: a tag-3 request with arbitrary app
             digest and profile text (the daemon, not the codec, judges
             the profile's syntax) must survive the codec exactly. *)
          let rp =
            { P.pr_app = Digest.to_hex (Digest.string (bytes r 8));
              pr_profile = bytes r (next r mod 512) }
          in
          (match P.decode_request (P.encode_report rp) with
           | Ok (P.Report rp') when rp' = rp -> None
           | Ok _ ->
             Some (Printf.sprintf "seed %d: report decoded differently" seed)
           | Error m ->
             Some (Printf.sprintf "seed %d: report refused: %s" seed m)
           | exception e ->
             Some
               (Printf.sprintf "seed %d: report round-trip raised %s" seed
                  (Printexc.to_string e))) );
      ( "truncated report is rejected",
        fun () ->
          let full =
            P.encode_report
              { P.pr_app = bytes r 32; pr_profile = bytes r 64 }
          in
          let rec check len =
            if len >= String.length full then None
            else
              match P.decode_request (String.sub full 0 len) with
              | Error _ -> check (len + 1)
              | Ok _ ->
                Some
                  (Printf.sprintf
                     "seed %d: report truncated to %d bytes decoded" seed len)
              | exception e ->
                Some
                  (Printf.sprintf
                     "seed %d: report truncated to %d raised %s" seed len
                     (Printexc.to_string e))
          in
          check 0 );
      ( "report with a lying profile length",
        fun () ->
          (* Tag 3, a well-formed app string, then a profile whose
             declared length promises ~2GiB that is not there: the decoder
             must refuse on the bounds check — before allocating for the
             lie. Same allocation oracle as the oversized frame header. *)
          let b = Buffer.create 64 in
          Buffer.add_char b (Char.chr 3);
          let app = bytes r 32 in
          let add_u32 v =
            Buffer.add_char b (Char.chr (v land 0xff));
            Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
            Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
            Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))
          in
          add_u32 (String.length app);
          Buffer.add_string b app;
          add_u32 (0x7FFFFFF0 - (next r mod 4096));
          Buffer.add_string b (bytes r (next r mod 8));
          let before = Gc.allocated_bytes () in
          let verdict =
            match P.decode_request (Buffer.contents b) with
            | Error _ -> None
            | Ok _ ->
              Some
                (Printf.sprintf "seed %d: lying report length decoded" seed)
            | exception e ->
              Some
                (Printf.sprintf "seed %d: lying report length raised %s" seed
                   (Printexc.to_string e))
          in
          let allocated = Gc.allocated_bytes () -. before in
          if verdict <> None then verdict
          else if allocated > 1_000_000.0 then
            Some
              (Printf.sprintf
                 "seed %d: refusing a lying report length allocated %.0f                   bytes"
                 seed allocated)
          else None );
      ( "zero-copy Built frame parses clean",
        fun () ->
          (* The arena writer is a second implementation of the Built
             encoding; hold it to the Buffer path's reader. A frame
             emitted by [emit_built] and drained by [write_arena] must
             come back through [read_frame]/[decode_response] as exactly
             the response the reference encoder describes. *)
          let oat =
            { Oat_file.apk_name = "fuzz-" ^ string_of_int seed;
              text = Bytes.of_string (bytes r (4 * (1 + (next r mod 256))));
              methods = [];
              thunks = [];
              outlined =
                List.init (next r mod 4) (fun i ->
                    { Oat_file.ol_offset = 4 * i; ol_size = 4 });
              dict_digest =
                (if next r mod 2 = 0 then None
                 else Some (Digest.to_hex (Digest.string (bytes r 8))));
              shelve = None }
          in
          let stats =
            { P.bs_text_size = Bytes.length oat.Oat_file.text;
              bs_methods = next r mod 1000;
              bs_thunks = next r mod 100;
              bs_outlined = next r mod 100;
              bs_build_s = float_of_int (next r mod 10_000) /. 1000.0 }
          in
          let reference =
            P.Built
              { oat = Bytes.to_string (Oat_file.to_bytes oat); stats }
          in
          let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          let writer =
            Thread.create
              (fun () ->
                (try
                   let arena = Arena.create () in
                   P.emit_built arena ~oat ~stats;
                   P.write_arena b arena
                 with _ -> ());
                try Unix.shutdown b Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ())
              ()
          in
          let verdict =
            match P.read_frame a with
            | payload -> (
              match P.decode_response payload with
              | Ok resp when resp = reference -> None
              | Ok _ ->
                Some
                  (Printf.sprintf
                     "seed %d: arena-written Built decoded to a different \
                      response"
                     seed)
              | Error m ->
                Some
                  (Printf.sprintf
                     "seed %d: arena-written Built refused by decoder: %s"
                     seed m))
            | exception P.Frame_error m ->
              Some
                (Printf.sprintf
                   "seed %d: arena-written Built refused by read_frame: %s"
                   seed m)
            | exception e ->
              Some
                (Printf.sprintf "seed %d: arena-written Built raised %s" seed
                   (Printexc.to_string e))
          in
          Thread.join writer;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ a; b ];
          verdict ) ]

  let run ?(seeds = 25) ?(base_seed = 0) ?(log = fun (_ : string) -> ()) () :
      outcome =
    let failures = ref [] and cases = ref 0 in
    for i = 0 to seeds - 1 do
      let seed = base_seed + i in
      log (Printf.sprintf "proto seed %d" seed);
      Obs.Counter.incr "fuzz.proto_seeds_run";
      List.iter
        (fun (_name, case) ->
          incr cases;
          match case () with
          | None -> ()
          | Some failure ->
            Obs.Counter.incr "fuzz.proto_cases_failed";
            log ("FAILED: " ^ failure);
            failures := failure :: !failures)
        (cases_of_seed seed)
    done;
    { pf_cases = !cases; pf_failures = List.rev !failures }
end
