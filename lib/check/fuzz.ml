(* Seeded fuzzing of the outlining pipeline.

   Each seed deterministically perturbs the demo workload profile
   ({!Calibro_workload.Appgen.perturb_profile}) — pool sizes, perturbation
   rates, register layouts, method-kind mixes — generates the resulting
   APK and runs the full differential oracle on it. Same seed, same APK,
   same verdict: a failing seed number is a complete bug report.

   On failure the APK is shrunk ({!Shrink}) against the same oracle
   configuration and emitted as a ready-to-paste Alcotest case whose
   source text is the minimized .dexsim program. *)

open Calibro_dex.Dex_ir
module Appgen = Calibro_workload.Appgen
module Apps = Calibro_workload.Apps
module Dex_text = Calibro_dex.Dex_text
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json

let profile_of_seed seed = Appgen.perturb_profile ~seed Apps.demo

let apk_of_seed seed = (Appgen.generate (profile_of_seed seed)).Appgen.app

type failure = {
  fl_seed : int;
  fl_detail : string list;  (** divergence strings, or a build error *)
  fl_shrunk : apk option;
  fl_stats : Shrink.stats option;
}

type outcome = { fz_seeds : int; fz_failures : failure list }

let ok o = o.fz_failures = []

(* ---- Reproduction ------------------------------------------------------- *)

(* Render a failing (ideally shrunk) APK as a self-contained Alcotest
   case. The body re-parses the minimized .dexsim source and re-runs the
   oracle, so pasting it into test/ pins the bug without depending on the
   generator staying bit-stable. *)
let alcotest_case_of ~seed (apk : apk) : string =
  let src = Dex_text.to_string apk in
  Printf.sprintf
    {|let test_fuzz_seed_%d () =
  let src = {dex|
%s|dex} in
  let apk =
    match Calibro_dex.Dex_text.parse src with
    | Ok apk -> apk
    | Error e -> Alcotest.failf "parse: %%s" e
  in
  match Calibro_check.Oracle.run apk with
  | Error e -> Alcotest.failf "oracle: %%s" e
  | Ok r ->
    Alcotest.(check (list string))
      "no divergences" []
      (List.map Calibro_check.Oracle.divergence_to_string
         r.Calibro_check.Oracle.r_divergences)
|}
    seed src

(* ---- Single seed -------------------------------------------------------- *)

let report_details = function
  | Error e -> [ e ]
  | Ok (r : Oracle.report) ->
    List.map Oracle.divergence_to_string r.Oracle.r_divergences

let run_seed ?configs ?(mutate = fun _ oat -> oat) ?(shrink = true) seed :
    failure option =
  let apk = apk_of_seed seed in
  match Oracle.run ?configs ~mutate apk with
  | Ok r when Oracle.ok r -> None
  | report ->
    let shrunk, stats =
      if shrink then begin
        (* Shrinking re-runs the oracle per candidate deletion, so narrow
           it to the configurations that actually diverged (falling back
           to the original set for build errors or baseline faults) and
           bound the baseline fuel by the original run: a candidate whose
           baseline needs much more fuel than the whole original APK is a
           manufactured infinite loop, not a smaller reproducer. *)
        let configs, baseline_fuel =
          match report with
          | Error _ -> (configs, None)
          | Ok r ->
            let bad =
              List.sort_uniq compare
                (List.map (fun d -> d.Oracle.dv_config) r.Oracle.r_divergences)
            in
            let configs =
              match
                List.filter
                  (fun (c : Calibro_core.Config.t) ->
                    List.mem c.Calibro_core.Config.name bad)
                  r.Oracle.r_config_set
              with
              | [] -> configs
              | cs -> Some cs
            in
            (configs, Some ((4 * r.Oracle.r_baseline_retired) + 250_000))
        in
        let still_failing a =
          Oracle.fails ?baseline_fuel ?configs ~mutate a
        in
        let a, st = Shrink.shrink ~still_failing apk in
        (Some a, Some st)
      end
      else (None, None)
    in
    Some
      { fl_seed = seed; fl_detail = report_details report;
        fl_shrunk = shrunk; fl_stats = stats }

(* ---- The loop ----------------------------------------------------------- *)

(* [log] receives one line per event (seed started, failure found);
   the CLI wires it to stderr, tests leave it silent. *)
let run ?(seeds = 25) ?(base_seed = 0) ?configs ?mutate ?shrink
    ?(log = fun (_ : string) -> ()) () : outcome =
  let failures = ref [] in
  for i = 0 to seeds - 1 do
    let seed = base_seed + i in
    let profile = profile_of_seed seed in
    log
      (Printf.sprintf "seed %d: app %s (%d-ish methods)" seed
         profile.Appgen.p_name
         (profile.Appgen.p_n_arith + profile.Appgen.p_n_field
        + profile.Appgen.p_n_serializer + profile.Appgen.p_n_compute
        + profile.Appgen.p_n_dispatcher + profile.Appgen.p_n_glue));
    Obs.Counter.incr "fuzz.seeds_run";
    match
      Obs.span ~cat:"check" "fuzz.seed"
        ~args:(fun () -> [ ("seed", Json.Int seed) ])
        (fun () -> run_seed ?configs ?mutate ?shrink seed)
    with
    | None -> ()
    | Some f ->
      Obs.Counter.incr "fuzz.seeds_failed";
      log
        (Printf.sprintf "seed %d FAILED:\n  %s" seed
           (String.concat "\n  " f.fl_detail));
      (match f.fl_stats with
       | Some st ->
         log
           (Printf.sprintf
              "seed %d shrunk: %d -> %d methods, %d -> %d insns (%d oracle runs)"
              seed st.Shrink.s_methods_before st.Shrink.s_methods_after
              st.Shrink.s_insns_before st.Shrink.s_insns_after
              st.Shrink.s_predicate_runs)
       | None -> ());
      failures := f :: !failures
  done;
  { fz_seeds = seeds; fz_failures = List.rev !failures }
