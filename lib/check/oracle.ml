(* The differential-execution oracle.

   `lib/vm/interp.ml` names "differential execution against an un-outlined
   build" as the correctness oracle for the whole system; this module is
   that oracle. One APK is compiled under {!Config.baseline} and under each
   Calibro configuration; every entry method is invoked with the same
   arguments in both builds; outcomes ([Returned]/[Thrown]) and the
   pLogValue streams must be identical. Every transformed build also passes
   the structural checks of {!Invariants}.

   A machine-level [Fault] in *any* build is a failure by itself: the
   simulator only faults on real bugs (wild pc, executed data, unrelocated
   calls), never as part of modeled program behavior. *)

open Calibro_core
open Calibro_dex.Dex_ir
module Interp = Calibro_vm.Interp
module Oat = Calibro_oat.Oat_file
module Dict = Calibro_dict.Dict
module Shelve = Calibro_shelve.Shelve
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json

type call = { c_method : method_ref; c_args : int list }

type divergence = {
  dv_config : string;
  dv_call : call option;  (** [None] for build/invariant failures *)
  dv_detail : string;
}

let divergence_to_string d =
  match d.dv_call with
  | None -> Printf.sprintf "[%s] %s" d.dv_config d.dv_detail
  | Some c ->
    Printf.sprintf "[%s] %s(%s): %s" d.dv_config
      (method_ref_to_string c.c_method)
      (String.concat "," (List.map string_of_int c.c_args))
      d.dv_detail

type report = {
  r_apk : string;
  r_configs : string list;
  r_variants : string list;
      (** every variant actually exercised: config names plus their
          [+dict] / [+shelve] / [+dict+shelve] derivatives *)
  r_config_set : Config.t list;
      (** the resolved configurations actually checked; lets callers
          re-run or shrink against exactly the ones that diverged *)
  r_calls : int;              (** calls exercised per configuration *)
  r_baseline_retired : int;
      (** instructions the baseline run retired; the fuel bound for
          re-runs on shrunk candidates derives from it *)
  r_divergences : divergence list;
}

let ok r = r.r_divergences = []

(* ---- Call-list derivation ---------------------------------------------- *)

(* Deterministic argument vectors: every entry method is driven with a few
   fixed shapes (zero, small, mixed-sign was rejected — args are modeled as
   non-negative Java ints in the workload) padded to its arity. *)
let default_calls (oat : Oat.t) : call list =
  let shapes = [ [ 7; 3 ]; [ 1; 1 ]; [ 40; 9 ] ] in
  List.concat_map
    (fun (me : Oat.method_entry) ->
      List.map
        (fun shape ->
          let args =
            List.init me.Oat.me_num_params (fun i ->
                match List.nth_opt shape i with Some v -> v | None -> 2)
          in
          { c_method = me.Oat.me_name; c_args = args })
        shapes)
    (Oat.entry_methods oat)

let outcome_to_string = function
  | Interp.Returned v -> Printf.sprintf "returned %d" v
  | Interp.Thrown fn -> "threw " ^ runtime_fn_name fn
  | Interp.Fault m -> "FAULT: " ^ m

(* ---- Running one build --------------------------------------------------- *)

(* Execute [calls] against [oat] on a fresh simulator; returns per-call
   (outcome, log slice). One interpreter instance serves all calls, like a
   real app session: heap state carries across calls identically in both
   builds, so it cancels out of the comparison. *)
let run_calls ?dict ~fuel (oat : Oat.t) (calls : call list) =
  let t = Interp.load ?dict ~fuel oat in
  (t, List.map (fun c -> Interp.call_traced t c.c_method c.c_args) calls)

let default_baseline_fuel = 100_000_000

(* Fuel for a transformed build, derived from the instructions the
   baseline actually retired: outlining only adds thunk/call overhead, so
   a healthy build stays well under 4x. A mis-patched build that spins
   forever faults "out of fuel" within a few baseline-equivalents instead
   of grinding through the interpreter's default half-billion steps —
   this is what keeps the shrinker's per-candidate oracle runs cheap. *)
let transformed_fuel ~baseline_retired = (4 * baseline_retired) + 250_000

let compare_runs ~config_name ~calls base_results results : divergence list =
  let divs = ref [] in
  List.iteri
    (fun i ((b_out, b_log), (t_out, t_log)) ->
      let call = List.nth calls i in
      let add detail =
        divs := { dv_config = config_name; dv_call = Some call;
                  dv_detail = detail } :: !divs
      in
      (match t_out with
       | Interp.Fault m -> add ("machine fault: " ^ m)
       | _ -> ());
      if b_out <> t_out then
        add
          (Printf.sprintf "outcome %s, baseline %s" (outcome_to_string t_out)
             (outcome_to_string b_out))
      else if b_log <> t_log then
        add
          (Printf.sprintf "log [%s], baseline [%s]"
             (String.concat ";" (List.map string_of_int t_log))
             (String.concat ";" (List.map string_of_int b_log))))
    (List.combine base_results results);
  List.rev !divs

(* ---- The oracle ----------------------------------------------------------- *)

(* The shared-dict variant of config [name] is reported as
   [name ^ dict_suffix], the shelved variant as [name ^ shelve_suffix]
   (and a build exercising both composes them, in that order);
   [plain_config_name] recovers the underlying configuration name (the
   shrinker narrows its config set with it). *)
let dict_suffix = "+dict"
let shelve_suffix = "+shelve"

let strip_suffix name suffix =
  let n = String.length name and s = String.length suffix in
  if n > s && String.sub name (n - s) s = suffix then
    Some (String.sub name 0 (n - s))
  else None

let rec plain_config_name name =
  match strip_suffix name shelve_suffix with
  | Some n -> plain_config_name n
  | None -> (
    match strip_suffix name dict_suffix with
    | Some n -> plain_config_name n
    | None -> name)

(* Check [apk] under [configs] (default: the {!Config.matrix} with a
   hot set profiled from the baseline run, i.e. the full Figure 6 loop).
   [mutate] is the test-only fault hook: it sees every transformed build
   (config name first) before checking and may return a corrupted image.
   [calls] defaults to all entry methods under the standard argument
   shapes. [dict] adds a shared-dictionary variant of every outlining
   configuration: the build links against the dictionary, the simulator
   maps it at {!Calibro_codegen.Abi.dict_base}, and the run must still be
   indistinguishable from the baseline — byte-faithful execution against
   the store-wide image. [shelve] adds a shelved variant of every
   configuration (and a combined dict+shelve variant where both apply):
   the plan is derived from the baseline run's own profile at the given
   coverage, so the cold set is exactly what a release-train build would
   park, and execution through fault stubs, unshelving and shelf-resident
   bodies must still match the baseline call for call. *)
let run ?(baseline_fuel = default_baseline_fuel) ?configs
    ?(mutate = fun _ oat -> oat) ?calls ?dict ?shelve (apk : apk) :
    (report, string) result =
  Obs.span ~cat:"check" "oracle.run"
    ~args:(fun () -> [ ("apk", Json.Str apk.apk_name) ])
  @@ fun () ->
  match Pipeline.build ~config:Config.baseline apk with
  | exception Pipeline.Build_error e -> Error ("baseline build failed: " ^ e)
  | base ->
    let calls =
      match calls with
      | Some cs -> cs
      | None -> default_calls base.Pipeline.b_oat
    in
    let base_interp, base_results =
      run_calls ~fuel:baseline_fuel base.Pipeline.b_oat calls
    in
    let baseline_retired = Interp.instructions_retired base_interp in
    let fuel = transformed_fuel ~baseline_retired in
    let divergences = ref [] in
    (* Baseline faults mean the substrate itself is broken; report them
       under the baseline's own name so they are never attributed to an
       outlining configuration. *)
    List.iteri
      (fun i (out, _) ->
        match out with
        | Interp.Fault m ->
          divergences :=
            { dv_config = Config.baseline.Config.name;
              dv_call = Some (List.nth calls i);
              dv_detail = "machine fault: " ^ m }
            :: !divergences
        | _ -> ())
      base_results;
    let configs =
      match configs with
      | Some cs -> cs
      | None ->
        let hot_methods =
          Calibro_profile.Profile.hot_set
            (Calibro_profile.Profile.of_interp base_interp)
        in
        Config.matrix ~hot_methods ()
    in
    (* The shelving plan for the [+shelve] variants, derived from the
       baseline run the comparison is anchored to: its hot set at the
       requested coverage is the warm set, everything else is cold. *)
    let shelve_plan =
      Option.map
        (fun coverage ->
          Shelve.of_profile ~coverage
            (Calibro_profile.Profile.of_interp base_interp))
        shelve
    in
    (* Each unit of work: a config, run plain, against the shared
       dictionary, shelved, or both. Dictionary variants only make sense
       where outlining runs — a non-LTBO build has no bodies to bind —
       while shelving is orthogonal to outlining and composes with every
       configuration. *)
    let variants =
      List.concat_map
        (fun (config : Config.t) ->
          let dicts =
            match dict with
            | Some d when config.Config.ltbo -> [ (dict_suffix, Some d) ]
            | _ -> []
          in
          let shelves =
            match shelve_plan with
            | Some p -> [ (shelve_suffix, Some p) ]
            | None -> []
          in
          ((config.Config.name, config, None, None)
          :: List.map
               (fun (sfx, d) -> (config.Config.name ^ sfx, config, d, None))
               dicts)
          @ List.concat_map
              (fun (ssfx, p) ->
                (config.Config.name ^ ssfx, config, None, p)
                :: List.map
                     (fun (dsfx, d) ->
                       (config.Config.name ^ dsfx ^ ssfx, config, d, p))
                     dicts)
              shelves)
        configs
    in
    (* The dictionary image itself must be a well-formed collection of
       outlined bodies before anything executes against it. *)
    (match dict with
     | None -> ()
     | Some d ->
       List.iter
         (fun v ->
           divergences :=
             { dv_config = "dict"; dv_call = None;
               dv_detail = Invariants.violation_to_string v }
             :: !divergences)
         (Invariants.check_dict_image ~image:(Dict.image d)
            (List.map
               (fun (e : Dict.entry) -> (e.Dict.e_offset, e.Dict.e_size))
               (Dict.entries d))));
    Obs.Counter.add "oracle.configs_checked" (List.length variants);
    List.iter
      (fun (name, (config : Config.t), dict, shelve) ->
        match
          Pipeline.build ~config
            ?dict:(Option.map Dict.linker_dict dict)
            ?shelve apk
        with
        | exception Pipeline.Build_error e ->
          divergences :=
            { dv_config = name; dv_call = None;
              dv_detail = "build failed: " ^ e }
            :: !divergences
        | exception Shelve.Shelve_error e ->
          divergences :=
            { dv_config = name; dv_call = None;
              dv_detail = "shelve failed: " ^ e }
            :: !divergences
        | b ->
          let oat = mutate name b.Pipeline.b_oat in
          let dict_extents =
            Option.map
              (fun d ->
                List.map
                  (fun (e : Dict.entry) -> (e.Dict.e_offset, e.Dict.e_size))
                  (Dict.entries d))
              dict
          in
          let invs = Invariants.check ?dict:dict_extents oat in
          List.iter
            (fun v ->
              divergences :=
                { dv_config = name; dv_call = None;
                  dv_detail = Invariants.violation_to_string v }
                :: !divergences)
            invs;
          match
            run_calls ?dict:(Option.map Dict.vm_image dict) ~fuel oat calls
          with
          | exception Interp.Dict_mismatch _ ->
            divergences :=
              { dv_config = name; dv_call = None;
                dv_detail = "simulator refused the dictionary digest" }
              :: !divergences
          | _, results ->
            divergences :=
              List.rev_append
                (List.rev (compare_runs ~config_name:name ~calls base_results
                             results))
                !divergences)
      variants;
    Obs.Counter.add "oracle.divergences" (List.length !divergences);
    Ok
      { r_apk = apk.apk_name;
        r_configs = List.map (fun (c : Config.t) -> c.Config.name) configs;
        r_variants = List.map (fun (n, _, _, _) -> n) variants;
        r_config_set = configs;
        r_calls = List.length calls;
        r_baseline_retired = baseline_retired;
        r_divergences = List.rev !divergences }

(* Shrinking predicate: does [apk] reproduce an *outlining* failure? A
   candidate whose baseline side is itself broken — the baseline build
   fails, or the baseline run faults (instruction deletion routinely
   manufactures infinite loops that exhaust fuel in every build alike) —
   is rejected: it no longer witnesses a transformation bug. *)
let fails ?baseline_fuel ?configs ?(mutate = fun _ oat -> oat) ?calls ?dict
    ?shelve apk =
  match run ?baseline_fuel ?configs ~mutate ?calls ?dict ?shelve apk with
  | Error _ -> false
  | Ok r ->
    let baseline_bad =
      List.exists
        (fun d -> d.dv_config = Config.baseline.Config.name)
        r.r_divergences
    in
    (not baseline_bad) && r.r_divergences <> []
