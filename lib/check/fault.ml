(* Deliberate mis-transformations of a linked OAT image: the test-only
   fault hook the oracle is validated against. Each kind simulates a
   realistic outliner bug; a correctness harness that cannot catch these is
   not measuring anything.

   - [Mispatch_branch]: a PC-relative branch is re-encoded against the
     wrong layout (off by one instruction) — the classic section 3.3.4
     patching bug. Caught by differential execution.
   - [Corrupt_stackmap]: a stackmap native PC drifts off its safepoint —
     the section 3.5 repositioning bug. Caught by the structural checker.
   - [Truncate_outlined]: an outlined body loses its terminating [br x30]
     so control falls through into the next region. Caught by both.

   Injection returns a deep copy; the input image is never modified. *)

open Calibro_aarch64
module Oat = Calibro_oat.Oat_file

type kind = Mispatch_branch | Corrupt_stackmap | Truncate_outlined

let all = [ Mispatch_branch; Corrupt_stackmap; Truncate_outlined ]

let to_string = function
  | Mispatch_branch -> "mispatch-branch"
  | Corrupt_stackmap -> "corrupt-stackmap"
  | Truncate_outlined -> "truncate-outlined"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "mispatch-branch" -> Ok Mispatch_branch
  | "corrupt-stackmap" -> Ok Corrupt_stackmap
  | "truncate-outlined" -> Ok Truncate_outlined
  | s -> Error (Printf.sprintf "unknown fault kind %S" s)

let copy (oat : Oat.t) = { oat with Oat.text = Bytes.copy oat.Oat.text }

(* Shift the displacement of one branch by one instruction. The site is
   chosen deterministically, preferring branches that execute whenever
   their method runs — an unconditional [b] in an entry method (loop
   back-edge or join jump) over conditionals, whose taken path may be a
   cold slowpath the oracle's calls never reach. The shifted target still
   lands inside the method, so the corruption survives the structural
   checks and only differential execution can expose it. *)
let mispatch_branch (oat : Oat.t) : Oat.t option =
  let oat = copy oat in
  let sites_of (me : Oat.method_entry) =
    List.filter_map
      (fun (off, tgt) ->
        let word = Encode.word_of_bytes oat.Oat.text (me.Oat.me_offset + off) in
        match Decode.decode word with
        | (Isa.B _ | Isa.B_cond _ | Isa.Cbz _ | Isa.Cbnz _) as i
          when tgt + 4 < me.Oat.me_size ->
          let rank =
            match (i, me.Oat.me_is_entry) with
            | Isa.B _, true -> 0
            | Isa.B _, false -> 1
            | _, true -> 2
            | _, false -> 3
          in
          Some (rank, me.Oat.me_offset + off, tgt + 4 - off)
        | _ -> None)
      me.Oat.me_meta.Calibro_codegen.Meta.pc_rel
  in
  match List.sort compare (List.concat_map sites_of oat.Oat.methods) with
  | [] -> None
  | (_, off, disp) :: _ ->
    Patch.patch_bytes oat.Oat.text ~off ~disp;
    Some oat

let corrupt_stackmap (oat : Oat.t) : Oat.t option =
  let hit = ref false in
  let methods =
    List.map
      (fun (me : Oat.method_entry) ->
        match me.Oat.me_stackmap with
        | e :: rest when not !hit ->
          hit := true;
          { me with
            Oat.me_stackmap =
              { e with
                Calibro_codegen.Stackmap.native_pc =
                  e.Calibro_codegen.Stackmap.native_pc + 2 }
              :: rest }
        | _ -> me)
      oat.Oat.methods
  in
  if !hit then Some { (copy oat) with Oat.methods = methods } else None

let truncate_outlined (oat : Oat.t) : Oat.t option =
  match oat.Oat.outlined with
  | [] -> None
  | ol :: _ ->
    let oat = copy oat in
    Encode.word_to_bytes oat.Oat.text
      (ol.Oat.ol_offset + ol.Oat.ol_size - 4)
      (Encode.encode Isa.Nop);
    Some oat

(* ---- On-disk compilation-cache faults -----------------------------------

   The disk tier of {!Calibro_cache.Cache} promises corruption is detected
   (payload digest), treated as a miss, and never surfaces as wrong code.
   These helpers manufacture the corruptions that promise is tested
   against: the two failure modes real cache directories exhibit —
   truncation (crash mid-write, full disk) and bit rot. They operate on
   entry files by path ({!Calibro_cache.Cache.entry_files}) so this module
   needs no dependency on the cache itself. *)

module Cache = struct
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let write_file path s =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc s)

  (* Keep the first half: the JSON document is cut mid-structure, as a
     crash between [write] and [rename]'s durability would leave it. *)
  let truncate path =
    let s = read_file path in
    write_file path (String.sub s 0 (String.length s / 2));
    Calibro_obs.Obs.Counter.incr "fault.injected.cache-truncate"

  (* Flip one bit in the middle of the file. The middle of an entry is
     inside the payload (the header fields are short), so the document
     still parses as JSON more often than not — only the digest check can
     tell. *)
  let bitflip path =
    let s = Bytes.of_string (read_file path) in
    let i = Bytes.length s / 2 in
    Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x10));
    write_file path (Bytes.to_string s);
    Calibro_obs.Obs.Counter.incr "fault.injected.cache-bitflip"
end

(* ---- Shared-dictionary faults -------------------------------------------

   A saved dictionary (lib/dict) promises load-time detection of every
   on-disk corruption: truncation fails the container bounds check, a
   damaged method table fails decoding, a flipped image byte fails the
   digest check against the self-naming header. These helpers manufacture
   those corruptions on the saved artifact by path, mirroring the cache
   fault pair above; a consumer that survives them must fall back to
   per-app outlining, never run wrong code. *)

module Dict = struct
  (* Keep the first half: the container is cut inside the marshalled
     method table or the image, so [Oat_file.of_bytes] must refuse on its
     bounds checks alone. *)
  let truncate path =
    let s = Cache.read_file path in
    Cache.write_file path (String.sub s 0 (String.length s / 2));
    Calibro_obs.Obs.Counter.incr "fault.injected.dict-truncate"

  (* Flip one bit at byte [at] (default: the last byte of the text image —
     the container's final 4 bytes are the v4 shelf-image length (always 0
     for a dictionary), so the image ends 5 bytes from the end — the
     digest-mismatch path; aim [at] into the marshalled table to exercise
     the decode-failure path instead). *)
  let bitflip ?at path =
    let s = Bytes.of_string (Cache.read_file path) in
    let i = match at with Some i -> i | None -> Bytes.length s - 5 in
    Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x10));
    Cache.write_file path (Bytes.to_string s);
    Calibro_obs.Obs.Counter.incr "fault.injected.dict-bitflip"
end

(* ---- Compilation-service faults -----------------------------------------

   The calibrod daemon promises that no client behaviour can take it down:
   a connection dropped mid-frame, a client that stalls past its deadline,
   and a poisoned job (parses, then fails the build) must each surface as
   one failed request. These helpers manufacture exactly those three
   abuses. They operate on raw frame bytes and .dexsim text so this module
   needs no dependency on lib/server; the tests drive the sockets. *)

module Server = struct
  type kind = Drop_mid_frame | Stall_mid_frame | Poison_job

  let all = [ Drop_mid_frame; Stall_mid_frame; Poison_job ]

  let to_string = function
    | Drop_mid_frame -> "drop-mid-frame"
    | Stall_mid_frame -> "stall-mid-frame"
    | Poison_job -> "poison-job"

  let of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "drop-mid-frame" -> Ok Drop_mid_frame
    | "stall-mid-frame" -> Ok Stall_mid_frame
    | "poison-job" -> Ok Poison_job
    | s -> Error (Printf.sprintf "unknown server fault kind %S" s)

  let inject kind =
    Calibro_obs.Obs.Counter.incr ("fault.injected.server-" ^ to_string kind)

  (* The first half of an encoded frame: the header promises more bytes
     than will ever arrive. A client that sends this and closes is the
     drop-mid-frame fault; one that sends it and holds the connection is
     the stall fault (the daemon's receive timeout must reap it). *)
  let first_half frame = String.sub frame 0 (String.length frame / 2)

  (* A .dexsim that parses cleanly but cannot build: the call target does
     not exist, so admission succeeds and the pipeline fails — the
     poisoned job must come back as a typed per-request error. *)
  let poison_dexsim =
    ".apk poisoned\n\
     .dex classes01\n\
     .class com.poison.Main\n\
     .method run params #0 regs #2 entry\n\
    \    invoke com.poison.Missing.helper () -> v0\n\
    \    return v0\n\
     .end\n"

  (* ---- Fleet fixtures ---------------------------------------------------

     Mini-daemons that misbehave the way real shards die, for driving the
     router's failover path without a full calibrod behind every port:
     one that accepts and immediately hangs up, one that stalls mid-
     response-frame, one that serves k requests and then drops dead, and a
     well-behaved one to fail over to. Every state transition is
     synchronized on a condition variable — [await_stalled]/[release]
     instead of sleeps — so tests are deterministic on any scheduler. *)

  module Fixture = struct
    module P = Calibro_server.Protocol
    module T = Calibro_server.Transport

    type behavior =
      | Accept_close
          (** accept the connection, then close it without reading: the
              crash-during-accept shard *)
      | Stall_mid_frame of { response : string }
          (** read the request, write only half the response frame, hold
              the connection until {!release} (then close: EOF mid-frame) *)
      | Serve of (string -> string)
          (** well-behaved single-frame responder: request payload in,
              response payload out *)
      | Die_after of { responses : int; serve : string -> string }
          (** behave as [Serve] for [responses] requests, then close the
              listener and vanish (subsequent connects are refused) *)

    type t = {
      fx_behavior : behavior;
      fx_endpoint : T.endpoint;
      fx_listen : Unix.file_descr;
      fx_accepted : int Atomic.t;
      fx_served : int Atomic.t;
      fx_stop : bool Atomic.t;
      fx_lock : Mutex.t;
      fx_cond : Condition.t;
      mutable fx_stalled : bool;
      mutable fx_released : bool;
      mutable fx_thread : Thread.t option;
    }

    let endpoint t = t.fx_endpoint
    let accepted t = Atomic.get t.fx_accepted
    let served t = Atomic.get t.fx_served

    let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

    let kill_listener t =
      (try Unix.shutdown t.fx_listen Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      close_quiet t.fx_listen

    let handle_serve fd serve =
      (match P.read_frame fd with
       | exception _ -> false
       | payload ->
         (match P.write_frame fd (serve payload) with
          | () -> true
          | exception _ -> false))
      |> fun ok ->
      close_quiet fd;
      ok

    let handle_stall t fd response =
      (match P.read_frame fd with
       | exception _ -> ()
       | (_ : string) ->
         let half = first_half (P.to_frame response) in
         (try ignore (Unix.write_substring fd half 0 (String.length half))
          with Unix.Unix_error _ -> ());
         Mutex.lock t.fx_lock;
         t.fx_stalled <- true;
         Condition.broadcast t.fx_cond;
         while not (t.fx_released || Atomic.get t.fx_stop) do
           Condition.wait t.fx_cond t.fx_lock
         done;
         Mutex.unlock t.fx_lock);
      (* Closing with the frame incomplete is the whole point: the peer
         sees EOF mid-frame, deterministically, with no timeout needed. *)
      close_quiet fd

    let rec loop t =
      match Unix.accept t.fx_listen with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if not (Atomic.get t.fx_stop) then loop t
      | exception Unix.Unix_error _ -> ()  (* listener closed: fixture dead *)
      | fd, _ ->
        Atomic.incr t.fx_accepted;
        if Atomic.get t.fx_stop then close_quiet fd
        else begin
          (match t.fx_behavior with
           | Accept_close -> close_quiet fd
           | Stall_mid_frame { response } -> handle_stall t fd response
           | Serve serve ->
             if handle_serve fd serve then Atomic.incr t.fx_served
           | Die_after { responses; serve } ->
             if handle_serve fd serve then Atomic.incr t.fx_served;
             if Atomic.get t.fx_served >= responses then kill_listener t);
          loop t
        end

    let start ?(endpoint = T.Tcp { host = "127.0.0.1"; port = 0 }) behavior =
      let listen_fd, resolved = T.listen endpoint in
      let t =
        { fx_behavior = behavior;
          fx_endpoint = resolved;
          fx_listen = listen_fd;
          fx_accepted = Atomic.make 0;
          fx_served = Atomic.make 0;
          fx_stop = Atomic.make false;
          fx_lock = Mutex.create ();
          fx_cond = Condition.create ();
          fx_stalled = false;
          fx_released = false;
          fx_thread = None }
      in
      t.fx_thread <- Some (Thread.create loop t);
      t

    (* Block until the stall fixture has written its half-frame and parked
       — the synchronization point tests use instead of sleeping. *)
    let await_stalled t =
      Mutex.lock t.fx_lock;
      while not (t.fx_stalled || Atomic.get t.fx_stop) do
        Condition.wait t.fx_cond t.fx_lock
      done;
      Mutex.unlock t.fx_lock

    (* Unpark the stalled connection; it closes immediately, handing the
       peer an EOF in the middle of the response frame. *)
    let release t =
      Mutex.lock t.fx_lock;
      t.fx_released <- true;
      Condition.broadcast t.fx_cond;
      Mutex.unlock t.fx_lock

    let stop t =
      Atomic.set t.fx_stop true;
      release t;
      kill_listener t;
      match t.fx_thread with
      | Some th ->
        Thread.join th;
        t.fx_thread <- None
      | None -> ()
  end
end

(* Inject [kind] into [oat]. [None] means the image offers no applicable
   site (e.g. no outlined functions in a CTO-only build). *)
let inject (kind : kind) (oat : Oat.t) : Oat.t option =
  let r =
    match kind with
    | Mispatch_branch -> mispatch_branch oat
    | Corrupt_stackmap -> corrupt_stackmap oat
    | Truncate_outlined -> truncate_outlined oat
  in
  (match r with
   | Some _ ->
     Calibro_obs.Obs.Counter.incr ("fault.injected." ^ to_string kind)
   | None -> ());
  r
