(* Structural invariants of a linked OAT image.

   The differential oracle ({!Oracle}) checks that a transformed binary
   *behaves* like the baseline; the checks here assert that it is
   *well-formed* regardless of what the interaction script happens to
   execute. Together they are the machine-checked version of the paper's
   section 3.3 safety argument: LTBO.2 rewrites encoded bytes, repositions
   stackmaps and patches PC-relative instructions, and none of that may
   leave a dangling branch, a mis-ordered stackmap or an outlined body
   that does not return.

   Checks:
   - serialize/parse round-trip of the on-disk OAT format;
   - region layout: methods, thunks and outlined functions tile the text
     segment without overlap, word-aligned;
   - stackmaps: native PCs word-aligned, strictly inside their method,
     monotonically increasing (section 3.5);
   - branch closure: every relocated [bl] lands on the start of a method,
     thunk or outlined function, no unrelocated [bl sym] survives linking,
     and every intra-method PC-relative branch or address formation stays
     inside its own region;
   - outlined bodies end in [br x30] and contain no control flow before it
     (calls and terminators are sequence separators, so none may appear). *)

open Calibro_aarch64
open Calibro_codegen
module Oat = Calibro_oat.Oat_file
module Shelve = Calibro_shelve.Shelve

type violation = { v_check : string; v_where : string; v_detail : string }

let violation_to_string v =
  Printf.sprintf "[%s] %s: %s" v.v_check v.v_where v.v_detail

(* ---- Individual checkers ---------------------------------------------- *)

let check_roundtrip (oat : Oat.t) : violation list =
  match Oat.of_bytes (Oat.to_bytes oat) with
  | Error e ->
    [ { v_check = "roundtrip"; v_where = oat.Oat.apk_name;
        v_detail = "parse failed: " ^ e } ]
  | Ok oat' ->
    if oat' = oat then []
    else
      [ { v_check = "roundtrip"; v_where = oat.Oat.apk_name;
          v_detail = "re-parsed image differs from the original" } ]

let check_layout (oat : Oat.t) : violation list =
  let text_size = Oat.text_size oat in
  let vs = ref [] in
  let bad r fmt =
    Fmt.kstr
      (fun d ->
        vs :=
          { v_check = "layout"; v_where = Oat.region_name r; v_detail = d }
          :: !vs)
      fmt
  in
  let regions = Oat.regions oat in
  List.iter
    (fun (r : Oat.region) ->
      if r.Oat.rg_offset mod 4 <> 0 then
        bad r "offset %d not word-aligned" r.Oat.rg_offset;
      if r.Oat.rg_size mod 4 <> 0 then
        bad r "size %d not word-aligned" r.Oat.rg_size;
      if r.Oat.rg_size < 0 || r.Oat.rg_offset < 0
         || r.Oat.rg_offset + r.Oat.rg_size > text_size
      then
        bad r "extent [%d, %d) outside text of %d bytes" r.Oat.rg_offset
          (r.Oat.rg_offset + r.Oat.rg_size)
          text_size)
    regions;
  (* Regions sorted by offset must not overlap. *)
  let rec overlap = function
    | (a : Oat.region) :: (b :: _ as rest) ->
      if a.Oat.rg_offset + a.Oat.rg_size > b.Oat.rg_offset then
        bad b "overlaps preceding region %s" (Oat.region_name a);
      overlap rest
    | _ -> ()
  in
  overlap regions;
  List.rev !vs

let check_stackmaps (oat : Oat.t) : violation list =
  List.filter_map
    (fun (me : Oat.method_entry) ->
      match Stackmap.validate me.Oat.me_stackmap ~code_size:me.Oat.me_size with
      | Ok () -> None
      | Error e ->
        Some
          { v_check = "stackmap";
            v_where = Calibro_dex.Dex_ir.method_ref_to_string me.Oat.me_name;
            v_detail = e })
    oat.Oat.methods

(* Branch closure. Embedded data ranges (known from the LTBO.1 metadata)
   are skipped: they are not instructions and may decode as anything.
   [dict] lists the (offset, size) extents of the shared-dictionary
   bodies the image may be linked against: a [bl] may additionally land
   on a body start, expressed in the text-relative address space as
   [Abi.dict_base - Abi.text_base + offset] (how the linker binds it). *)
let check_branches ?(dict = []) (oat : Oat.t) : violation list =
  let starts = Oat.region_starts oat in
  let dict_starts = Hashtbl.create (List.length dict) in
  List.iter
    (fun (off, _size) ->
      Hashtbl.replace dict_starts (Abi.dict_base - Abi.text_base + off) ())
    dict;
  let vs = ref [] in
  let bad ~where fmt =
    Fmt.kstr
      (fun d ->
        vs := { v_check = "branch"; v_where = where; v_detail = d } :: !vs)
      fmt
  in
  let check_region ~where ~embedded ~offset ~size =
    let n_words = size / 4 in
    for w = 0 to n_words - 1 do
      let off = w * 4 in
      if not (List.exists (fun r -> Meta.in_range r off) embedded) then begin
        let word = Encode.word_of_bytes oat.Oat.text (offset + off) in
        match Decode.decode word with
        | Isa.Bl { target = Isa.Sym s } ->
          bad ~where "unrelocated bl (sym %d) at +%#x" s off
        | Isa.Bl { target = Isa.Rel disp } ->
          let target = offset + off + disp in
          if
            not
              (Hashtbl.mem starts target || Hashtbl.mem dict_starts target)
          then
            bad ~where "bl at +%#x targets %#x, not a region start" off
              target
        | ( Isa.B _ | Isa.B_cond _ | Isa.Cbz _ | Isa.Cbnz _ | Isa.Tbz _
          | Isa.Tbnz _ | Isa.Adr _ | Isa.Ldr_lit _ ) as i ->
          (* Intra-region PC-relative forms: codegen only emits these
             against targets inside the same method (branches, embedded
             pools, switch tables), and outlining must preserve that. *)
          let disp = Option.get (Isa.pc_rel_disp i) in
          let target = off + disp in
          if target < 0 || target >= size then
            bad ~where
              "pc-relative %s at +%#x escapes its region (target %+d)"
              (Disasm.to_string i) off target
        | _ -> ()
      end
    done
  in
  List.iter
    (fun (me : Oat.method_entry) ->
      check_region
        ~where:(Calibro_dex.Dex_ir.method_ref_to_string me.Oat.me_name)
        ~embedded:me.Oat.me_meta.Meta.embedded ~offset:me.Oat.me_offset
        ~size:me.Oat.me_size)
    oat.Oat.methods;
  List.rev !vs

(* Outlined-body well-formedness over any code image: shared by the local
   text segment's outlined entries and the dictionary image (whose bodies
   are the same artifacts, just hoisted store-wide). *)
let check_bodies ~check_name ~text (entries : (int * int) list) :
    violation list =
  let vs = ref [] in
  let bad ~where fmt =
    Fmt.kstr
      (fun d ->
        vs := { v_check = check_name; v_where = where; v_detail = d } :: !vs)
      fmt
  in
  List.iter
    (fun (ol_offset, ol_size) ->
      let where = Printf.sprintf "%s@%#x" check_name ol_offset in
      if ol_size < 8 then
        bad ~where "body of %d bytes cannot hold a sequence plus br x30"
          ol_size
      else begin
        let last = Encode.word_of_bytes text (ol_offset + ol_size - 4) in
        (match Decode.decode last with
         | Isa.Br r when r = Isa.lr -> ()
         | i -> bad ~where "body ends in %s, not br x30" (Disasm.to_string i));
        (* The body proper must be straight-line: calls, terminators and
           LR-touching instructions are sequence separators and can never
           be harvested into an outlined function. *)
        for w = 0 to (ol_size / 4) - 2 do
          let word = Encode.word_of_bytes text (ol_offset + (w * 4)) in
          let i = Decode.decode word in
          if Isa.is_terminator i || Isa.is_call i || Isa.reads_lr i
             || Isa.writes_lr i
          then
            bad ~where "separator-class instruction %s inside body at +%#x"
              (Disasm.to_string i) (w * 4)
        done
      end)
    entries;
  List.rev !vs

let check_outlined (oat : Oat.t) : violation list =
  check_bodies ~check_name:"outlined" ~text:oat.Oat.text
    (List.map
       (fun (ol : Oat.outlined_entry) -> (ol.Oat.ol_offset, ol.Oat.ol_size))
       oat.Oat.outlined)

(* The shared-dictionary image holds nothing but outlined bodies; validate
   them under the same rules, plus exact tiling (the linker binds body
   starts as absolute call targets — a gap or overlap would mean a [bl]
   into the middle of something). *)
let check_dict_image ~image (entries : (int * int) list) : violation list =
  let tiling =
    let pos = ref 0 and vs = ref [] in
    List.iter
      (fun (off, size) ->
        if off <> !pos then
          vs :=
            { v_check = "dict";
              v_where = Printf.sprintf "dict@%#x" off;
              v_detail =
                Printf.sprintf "body at %#x does not tile (expected %#x)" off
                  !pos }
            :: !vs;
        pos := off + size)
      entries;
    if !pos <> Bytes.length image then
      vs :=
        { v_check = "dict"; v_where = "dict";
          v_detail =
            Printf.sprintf "bodies cover %d bytes of a %d-byte image" !pos
              (Bytes.length image) }
        :: !vs;
    List.rev !vs
  in
  tiling @ check_bodies ~check_name:"dict" ~text:image entries

(* Shelf well-formedness (a shelve-composed build): every shelf entry must
   tile the shelf image, name a method the container actually carries, and
   that method's text-side region must be exactly the fixed-size fault stub
   encoding the entry's index — a stub faulting with the wrong index would
   unshelve (and run) a different method's body. Branch closure *inside*
   shelf bodies is deliberately not checked: shelf entries carry no LTBO.1
   metadata, so embedded-data ranges are unknown there and any decoded
   word could be a false positive. *)
let check_shelf (oat : Oat.t) : violation list =
  match oat.Oat.shelve with
  | None -> []
  | Some shf ->
    let vs = ref [] in
    let bad ~where fmt =
      Fmt.kstr
        (fun d ->
          vs := { v_check = "shelf"; v_where = where; v_detail = d } :: !vs)
        fmt
    in
    let by_slot = Hashtbl.create 64 in
    List.iter
      (fun (me : Oat.method_entry) ->
        Hashtbl.replace by_slot me.Oat.me_slot me)
      oat.Oat.methods;
    let pos = ref 0 in
    List.iteri
      (fun index (e : Oat.shelf_entry) ->
        let where = Printf.sprintf "shelf[%d] (slot %d)" index e.Oat.sh_slot in
        if e.Oat.sh_offset <> !pos then
          bad ~where "body at %#x does not tile (expected %#x)" e.Oat.sh_offset
            !pos;
        pos := e.Oat.sh_offset + e.Oat.sh_size;
        if e.Oat.sh_size <= 0 || e.Oat.sh_size mod 4 <> 0 then
          bad ~where "size %d not a positive word multiple" e.Oat.sh_size;
        match Hashtbl.find_opt by_slot e.Oat.sh_slot with
        | None -> bad ~where "no method with this slot in the image"
        | Some me ->
          if me.Oat.me_size <> Shelve.stub_bytes then
            bad ~where "text region of %d bytes is not a %d-byte stub"
              me.Oat.me_size Shelve.stub_bytes
          else (
            match Shelve.decode_stub oat.Oat.text ~offset:me.Oat.me_offset with
            | Some i when i = index -> ()
            | Some i -> bad ~where "stub encodes shelf index %d" i
            | None -> bad ~where "text region does not decode as a shelf stub"))
      shf.Oat.shf_entries;
    if !pos <> Bytes.length shf.Oat.shf_image then
      bad ~where:"shelf" "entries cover %d bytes of a %d-byte image" !pos
        (Bytes.length shf.Oat.shf_image);
    List.rev !vs

(* ---- Entry point -------------------------------------------------------- *)

let check ?dict (oat : Oat.t) : violation list =
  check_roundtrip oat
  @ check_layout oat
  @ check_stackmaps oat
  @ check_branches ?dict oat
  @ check_outlined oat
  @ check_shelf oat
