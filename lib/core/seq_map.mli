(** Instruction-to-integer mapping for suffix-tree input (paper section
    3.3.2): encoded words for plain instructions, fresh unique separators
    for everything a sound binary outliner must never move (terminators,
    calls, PC-relative instructions, link-register uses, embedded data,
    policy-excluded offsets), plus a virtual separator before every branch
    target so candidates never straddle one. See DESIGN.md section 4.2. *)

open Calibro_codegen

type element =
  | Word of int * int  (** (mapped value, byte offset in the method) *)
  | Separator          (** unique value; no corresponding outlinable word *)

type allocator
(** Produces globally unique separator values for one suffix tree. *)

val sep_base : int
(** All separators are >= [sep_base] (above any 32-bit encoding). *)

val new_allocator : unit -> allocator

val fresh_sep : allocator -> int

val map_method :
  ?eligible:(int -> bool) ->
  Compiled_method.t ->
  allocator ->
  (int * element) list
(** The element sequence for one compiled method, in code order. Each item
    pairs the suffix-tree integer with its classification. [eligible] is
    the hot-function-filtering hook: offsets where it returns [false] map
    to separators (section 3.4.2). *)

(** {2 Canonical tokens and digests}

    The compilation cache's fast path: a per-method digest of the token
    run with separator {e values} abstracted away (they are fresh per
    allocator and carry no information the detector's outcome depends
    on). Two methods with equal digests contribute identically to any
    detection group, so a group of unchanged methods can be recognized —
    and its detection result reused — without rebuilding its suffix
    tree. *)

val canonical : ?eligible:(int -> bool) -> Compiled_method.t -> element list
(** [map_method] minus the concrete separator values, same order. *)

val digest : element list -> string
(** Injective-modulo-hash ({!Calibro_chash.Chash}) digest of a canonical
    token run, streamed without materializing the token text. *)

val method_digest : ?eligible:(int -> bool) -> Compiled_method.t -> string
(** [digest (canonical ?eligible cm)]. *)
