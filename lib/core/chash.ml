type t = string

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

module type S = sig
  type state

  val init : unit -> state
  val feed_substring : state -> string -> off:int -> len:int -> unit
  val feed_string : state -> string -> unit
  val feed_subbytes : state -> bytes -> off:int -> len:int -> unit
  val feed_bytes : state -> bytes -> unit
  val feed_bigarray : state -> bigstring -> off:int -> len:int -> unit
  val feed_int : state -> int -> unit
  val finalize : state -> t
  val string : string -> t
  val bytes : bytes -> t
  val substring : string -> off:int -> len:int -> t
  val subbytes : bytes -> off:int -> len:int -> t
  val bigarray : bigstring -> off:int -> len:int -> t
end

let check_slice ~what ~off ~len ~size =
  if off < 0 || len < 0 || off > size - len then
    invalid_arg (Printf.sprintf "Chash: %s slice off=%d len=%d size=%d" what off len size)

module Fast = struct
  (* Two 64-bit lanes absorbing the stream in little-endian 8-byte words,
     each word pushed through the splitmix64 finalizer (Steele et al.) —
     the same mixer Parallel.partition and Router.Ring already trust for
     uniformity. Lane 2 folds in lane 1 every word, and [finalize]
     cross-mixes with the total length absorbed, so the two output halves
     are not independent 64-bit hashes of the same stream and a
     zero-padded tail cannot collide with explicit trailing zeros. *)

  type state = {
    mutable h1 : int64;
    mutable h2 : int64;
    tail : Bytes.t;  (* < 8 pending bytes of the stream *)
    mutable tail_len : int;
    mutable total : int;
    ibuf : Bytes.t;  (* staging for feed_int *)
  }

  let mix z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let seed1 = 0x9E3779B97F4A7C15L
  let seed2 = 0xC2B2AE3D27D4EB4FL

  let init () =
    { h1 = seed1; h2 = seed2; tail = Bytes.create 8; tail_len = 0; total = 0;
      ibuf = Bytes.create 8 }

  let[@inline] absorb st w =
    let h1 = mix (Int64.logxor st.h1 w) in
    st.h1 <- h1;
    st.h2 <- mix (Int64.add st.h2 (Int64.add w h1))

  (* The workhorse: everything else funnels through byte feeds. [src] is
     only read, so feeding a string through [Bytes.unsafe_of_string] is
     sound. Bounds were checked by the caller. *)
  let feed_raw st (src : Bytes.t) ~off ~len =
    st.total <- st.total + len;
    let pos = ref off in
    let stop = off + len in
    (* Top up a pending tail first. *)
    if st.tail_len > 0 then begin
      while st.tail_len < 8 && !pos < stop do
        Bytes.unsafe_set st.tail st.tail_len (Bytes.unsafe_get src !pos);
        st.tail_len <- st.tail_len + 1;
        incr pos
      done;
      if st.tail_len = 8 then begin
        absorb st (Bytes.get_int64_le st.tail 0);
        st.tail_len <- 0
      end
    end;
    while stop - !pos >= 8 do
      absorb st (Bytes.get_int64_le src !pos);
      pos := !pos + 8
    done;
    while !pos < stop do
      Bytes.unsafe_set st.tail st.tail_len (Bytes.unsafe_get src !pos);
      st.tail_len <- st.tail_len + 1;
      incr pos
    done

  let feed_subbytes st b ~off ~len =
    check_slice ~what:"bytes" ~off ~len ~size:(Bytes.length b);
    feed_raw st b ~off ~len

  let feed_bytes st b = feed_raw st b ~off:0 ~len:(Bytes.length b)

  let feed_substring st s ~off ~len =
    check_slice ~what:"string" ~off ~len ~size:(String.length s);
    feed_raw st (Bytes.unsafe_of_string s) ~off ~len

  let feed_string st s =
    feed_raw st (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

  let feed_bigarray st (a : bigstring) ~off ~len =
    check_slice ~what:"bigarray" ~off ~len ~size:(Bigarray.Array1.dim a);
    st.total <- st.total + len;
    let pos = ref off in
    let stop = off + len in
    if st.tail_len > 0 then begin
      while st.tail_len < 8 && !pos < stop do
        Bytes.unsafe_set st.tail st.tail_len (Bigarray.Array1.unsafe_get a !pos);
        st.tail_len <- st.tail_len + 1;
        incr pos
      done;
      if st.tail_len = 8 then begin
        absorb st (Bytes.get_int64_le st.tail 0);
        st.tail_len <- 0
      end
    end;
    while stop - !pos >= 8 do
      let p = !pos in
      let word lo hi =
        Int64.logor lo (Int64.shift_left hi 32)
      and half p =
        let b i = Char.code (Bigarray.Array1.unsafe_get a (p + i)) in
        Int64.of_int (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
      in
      absorb st (word (half p) (half (p + 4)));
      pos := p + 8
    done;
    while !pos < stop do
      Bytes.unsafe_set st.tail st.tail_len (Bigarray.Array1.unsafe_get a !pos);
      st.tail_len <- st.tail_len + 1;
      incr pos
    done

  let feed_int st v =
    Bytes.set_int64_le st.ibuf 0 (Int64.of_int v);
    feed_raw st st.ibuf ~off:0 ~len:8

  (* Pure over the state: feeding may continue after a finalize. *)
  let finalize st =
    let h1 = ref st.h1 and h2 = ref st.h2 in
    if st.tail_len > 0 then begin
      (* Zero-pad the tail to one word; the absorbed length below keeps
         padded streams distinct from streams with literal zero bytes. *)
      let w = ref 0L in
      for i = st.tail_len - 1 downto 0 do
        w :=
          Int64.logor
            (Int64.shift_left !w 8)
            (Int64.of_int (Char.code (Bytes.unsafe_get st.tail i)))
      done;
      let m1 = mix (Int64.logxor !h1 !w) in
      h1 := m1;
      h2 := mix (Int64.add !h2 (Int64.add !w m1))
    end;
    let len = Int64.of_int st.total in
    let a = mix (Int64.add (Int64.logxor !h1 len) !h2) in
    let b = mix (Int64.logxor !h2 (Int64.add a len)) in
    let out = Bytes.create 16 in
    Bytes.set_int64_le out 0 a;
    Bytes.set_int64_le out 8 b;
    Bytes.unsafe_to_string out

  let substring s ~off ~len =
    let st = init () in
    feed_substring st s ~off ~len;
    finalize st

  let string s = substring s ~off:0 ~len:(String.length s)

  let subbytes b ~off ~len =
    let st = init () in
    feed_subbytes st b ~off ~len;
    finalize st

  let bytes b = subbytes b ~off:0 ~len:(Bytes.length b)

  let bigarray a ~off ~len =
    let st = init () in
    feed_bigarray st a ~off ~len;
    finalize st
end

module Md5 = struct
  type state = Buffer.t

  let init () = Buffer.create 256

  let feed_substring st s ~off ~len =
    check_slice ~what:"string" ~off ~len ~size:(String.length s);
    Buffer.add_substring st s off len

  let feed_string st s = Buffer.add_string st s

  let feed_subbytes st b ~off ~len =
    check_slice ~what:"bytes" ~off ~len ~size:(Bytes.length b);
    Buffer.add_subbytes st b off len

  let feed_bytes st b = Buffer.add_bytes st b

  let feed_bigarray st (a : bigstring) ~off ~len =
    check_slice ~what:"bigarray" ~off ~len ~size:(Bigarray.Array1.dim a);
    for i = off to off + len - 1 do
      Buffer.add_char st (Bigarray.Array1.unsafe_get a i)
    done

  let feed_int st v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Buffer.add_bytes st b

  let finalize st = Digest.string (Buffer.contents st)
  let string s = Digest.string s
  let bytes b = Digest.bytes b
  let substring s ~off ~len = Digest.substring s off len
  let subbytes b ~off ~len = Digest.subbytes b off len

  let bigarray a ~off ~len =
    let st = init () in
    feed_bigarray st a ~off ~len;
    finalize st
end

let backend_v =
  lazy
    (match Sys.getenv_opt "CALIBRO_HASH" with
    | Some "md5" -> `Md5
    | Some "fast" | None -> `Fast
    | Some other ->
      invalid_arg (Printf.sprintf "CALIBRO_HASH=%s (expected \"fast\" or \"md5\")" other))

let backend () = Lazy.force backend_v
let backend_name () = match backend () with `Fast -> "fast" | `Md5 -> "md5"

type state = F of Fast.state | M of Md5.state

let init () =
  match backend () with `Fast -> F (Fast.init ()) | `Md5 -> M (Md5.init ())

let feed_substring st s ~off ~len =
  match st with
  | F st -> Fast.feed_substring st s ~off ~len
  | M st -> Md5.feed_substring st s ~off ~len

let feed_string st s =
  match st with F st -> Fast.feed_string st s | M st -> Md5.feed_string st s

let feed_subbytes st b ~off ~len =
  match st with
  | F st -> Fast.feed_subbytes st b ~off ~len
  | M st -> Md5.feed_subbytes st b ~off ~len

let feed_bytes st b =
  match st with F st -> Fast.feed_bytes st b | M st -> Md5.feed_bytes st b

let feed_bigarray st a ~off ~len =
  match st with
  | F st -> Fast.feed_bigarray st a ~off ~len
  | M st -> Md5.feed_bigarray st a ~off ~len

let feed_int st v =
  match st with F st -> Fast.feed_int st v | M st -> Md5.feed_int st v

let finalize st =
  match st with F st -> Fast.finalize st | M st -> Md5.finalize st

let string s = match backend () with `Fast -> Fast.string s | `Md5 -> Md5.string s
let bytes b = match backend () with `Fast -> Fast.bytes b | `Md5 -> Md5.bytes b

let substring s ~off ~len =
  match backend () with
  | `Fast -> Fast.substring s ~off ~len
  | `Md5 -> Md5.substring s ~off ~len

let subbytes b ~off ~len =
  match backend () with
  | `Fast -> Fast.subbytes b ~off ~len
  | `Md5 -> Md5.subbytes b ~off ~len

let bigarray a ~off ~len =
  match backend () with
  | `Fast -> Fast.bigarray a ~off ~len
  | `Md5 -> Md5.bigarray a ~off ~len

let to_hex (h : t) =
  if String.length h <> 16 then invalid_arg "Chash.to_hex";
  let hex = "0123456789abcdef" in
  let out = Bytes.create 32 in
  for i = 0 to 15 do
    let c = Char.code (String.unsafe_get h i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1) (String.unsafe_get hex (c land 0xF))
  done;
  Bytes.unsafe_to_string out
