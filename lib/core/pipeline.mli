(** The end-to-end DEX2OAT-with-Calibro pipeline (paper Figure 5):
    per-method HGraph construction, IR optimization, code generation with
    CTO and LTBO.1 metadata collection, whole-program LTBO.2 (global or
    paralleled suffix trees, optionally multi-round), and the final link. *)

open Calibro_dex

type build = {
  b_config : Config.t;
  b_oat : Calibro_oat.Oat_file.t;
  b_timings : (string * float) list;
      (** (phase, seconds), in order — a view derived from the
          [Calibro_obs] spans the build records (monotonic clock);
          kept because Table 6 consumes exactly this shape *)
  b_ltbo_stats : Ltbo.stats option;
  b_cto_hits : (string * int) list;   (** CTO pattern census, summed *)
  b_shelved : int;
      (** methods parked on the shelf by [?shelve] (0 without a plan) *)
}

exception Build_error of string
(** Raised on invalid input (checker failures, undefined callees). *)

val env_cache : Calibro_cache.Cache.t option Lazy.t
(** The ambient compilation cache: an on-disk store at [CALIBRO_CACHE_DIR]
    when that variable is set and non-empty, shared by every build in the
    process; [None] otherwise. *)

val build :
  ?cache:Calibro_cache.Cache.t option ->
  ?config:Config.t ->
  ?dict:Calibro_oat.Linker.dict ->
  ?shelve:Calibro_shelve.Shelve.plan ->
  Dex_ir.apk ->
  build
(** Compile an application under the given evaluation configuration
    (default: {!Config.baseline}).

    [?cache] selects the compilation cache: omitted, the ambient
    {!env_cache} is used; [Some c] uses [c]; [None] forces a cold build
    regardless of the environment (the bench harness measures cold times
    this way). With a cache, per-method artifacts that key-hit skip
    HGraph/IR/codegen, and LTBO detection groups whose members' token
    digests are unchanged reuse their memoized decisions — the warm output
    is byte-identical to a cold build because both layers memoize pure
    functions of content-addressed inputs.

    [?dict] links against a store-wide shared outline dictionary: every
    outlined body the dictionary carries binds to its shared slot at
    {!Calibro_codegen.Abi.dict_base} instead of being placed in the local
    text segment, and the output records the dictionary digest
    ({!Calibro_oat.Oat_file.t.dict_digest}) when anything bound. LTBO
    detection results are then memoized under a dictionary-salted
    namespace, so rotating the dictionary misses cleanly.

    [?shelve] composes profile-driven method shelving: cold methods
    (outside the plan's warm set) are compiled to fixed-size shelf stubs,
    their original bodies parked in the shelf image at
    {!Calibro_codegen.Abi.shelf_base}, and LTBO mines only the surviving
    warm set. The per-method cache is shared with unshelved builds (the
    split runs post-compile); detection memoizes under the
    ["detectshelve"] namespace salted with the policy digest. The output
    records the policy digest in {!Calibro_oat.Oat_file.t.shelve}. *)

val method_key :
  config:Config.t ->
  slot_of_method:(Dex_ir.method_ref -> int) ->
  slot:int ->
  Dex_ir.meth ->
  string
(** The per-method cache key (exposed for tests): content hash of the
    method IR, its slot, its callees' slots in call order, the codegen
    configuration bits and the cache salt.
    @raise Build_error via [slot_of_method] on an undefined callee. *)

val total_time : build -> float

val text_size : build -> int
(** Text-segment size in bytes: the paper's headline metric. *)

val reduction_vs : baseline:build -> build -> float
(** Fractional text-size reduction relative to a baseline build. *)
