(** The end-to-end DEX2OAT-with-Calibro pipeline (paper Figure 5):
    per-method HGraph construction, IR optimization, code generation with
    CTO and LTBO.1 metadata collection, whole-program LTBO.2 (global or
    paralleled suffix trees, optionally multi-round), and the final link. *)

open Calibro_dex

type build = {
  b_config : Config.t;
  b_oat : Calibro_oat.Oat_file.t;
  b_timings : (string * float) list;
      (** (phase, seconds), in order — a view derived from the
          [Calibro_obs] spans the build records (monotonic clock);
          kept because Table 6 consumes exactly this shape *)
  b_ltbo_stats : Ltbo.stats option;
  b_cto_hits : (string * int) list;   (** CTO pattern census, summed *)
}

exception Build_error of string
(** Raised on invalid input (checker failures, undefined callees). *)

val build : ?config:Config.t -> Dex_ir.apk -> build
(** Compile an application under the given evaluation configuration
    (default: {!Config.baseline}). *)

val total_time : build -> float

val text_size : build -> int
(** Text-segment size in bytes: the paper's headline metric. *)

val reduction_vs : baseline:build -> build -> float
(** Fractional text-size reduction relative to a baseline build. *)
