(* A set of disjoint half-open integer intervals, kept sorted by start in a
   pair of growable parallel arrays. Membership/overlap queries binary-search
   the starts; insertion shifts with [Array.blit]. This replaces the
   linear-scan claimed-interval lists of the greedy selectors: with d
   accepted decisions the old lists made overlap checks O(d) each, so
   selection degraded quadratically on repeat-heavy inputs.

   Both users (Ltbo.detect, Redundancy.analyze) only [add] intervals that
   were first checked with [overlaps], so the disjointness invariant holds
   by construction; [add] does not re-verify it. *)

type t = {
  mutable starts : int array;
  mutable ends : int array;
  mutable len : int;
}

let create () = { starts = Array.make 8 0; ends = Array.make 8 0; len = 0 }
let length t = t.len

(* Index of the first interval whose start is >= s. *)
let lower_bound t s =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.starts.(mid) < s then lo := mid + 1 else hi := mid
  done;
  !lo

let overlaps t s e =
  let i = lower_bound t s in
  (i < t.len && t.starts.(i) < e) || (i > 0 && t.ends.(i - 1) > s)

let add t s e =
  if s >= e then invalid_arg "Interval_set.add: empty interval";
  if t.len = Array.length t.starts then begin
    let cap = 2 * t.len in
    let ns = Array.make cap 0 and ne = Array.make cap 0 in
    Array.blit t.starts 0 ns 0 t.len;
    Array.blit t.ends 0 ne 0 t.len;
    t.starts <- ns;
    t.ends <- ne
  end;
  let i = lower_bound t s in
  Array.blit t.starts i t.starts (i + 1) (t.len - i);
  Array.blit t.ends i t.ends (i + 1) (t.len - i);
  t.starts.(i) <- s;
  t.ends.(i) <- e;
  t.len <- t.len + 1

let to_list t = List.init t.len (fun i -> (t.starts.(i), t.ends.(i)))
