(* LTBO.2 — Linking-Time Binary code Outlining (paper section 3.3).

   Runs after all methods are compiled and before the final link, in four
   steps exactly as the paper lays out:

   1. choosing candidate methods (3.3.1): methods with indirect jumps and
      Java native methods are excluded via the LTBO.1 metadata; under
      hot-function filtering, hot methods participate only with their
      slowpath ranges (3.4.2);
   2. detecting repetitive code sequences (3.3.2): the candidate code is
      mapped to an integer sequence ({!Seq_map}) and a suffix tree finds
      the repeats;
   3. outlining (3.3.3): repeats worth outlining under the Figure 2
      benefit model are extracted into outlined functions ending in
      [br x30]; each occurrence is replaced by one [bl] carrying a symbol
      relocation (bound by the later link, per section 3.2);
   4. patching PC-relative addressing instructions (3.3.4): every recorded
      (instruction, target) pair is re-encoded against the new layout; the
      stackmaps are repositioned the same way (3.5). *)

open Calibro_aarch64
open Calibro_codegen
open Calibro_suffix_tree
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json
module Cache = Calibro_cache.Cache
module Arena = Calibro_oat.Arena

let outlined_sym_base = 0x500000

exception Ltbo_error of string
(* The typed failure for an input that breaks an LTBO invariant
   (stackmap-consistency validation after rewriting). A long-lived caller
   — the calibrod worker — maps this to a per-request error; it must
   never surface as an untyped [Failure]. *)

type options = {
  min_length : int;          (** shortest candidate sequence, in instructions *)
  max_length : int;          (** longest, bounds tree traversal *)
  is_hot : Calibro_dex.Dex_ir.method_ref -> bool;
      (** hot-function filtering predicate (3.4.2); hot methods only
          outline their slowpaths *)
}

let default_options =
  { min_length = 2; max_length = 64; is_hot = (fun _ -> false) }

(* An accepted outlining decision. *)
type decision = {
  d_length : int;  (** instructions *)
  d_words : int array;  (** the sequence's encoded words *)
  d_occurrences : (int * int) list;  (** (method index, byte offset) *)
}

type stats = {
  s_candidate_methods : int;
  s_sequence_elements : int;
  s_tree_nodes : int;
  s_repeats_considered : int;
  s_outlined_functions : int;
  s_occurrences_replaced : int;
  s_instructions_saved : int;
}

let empty_stats =
  { s_candidate_methods = 0; s_sequence_elements = 0; s_tree_nodes = 0;
    s_repeats_considered = 0; s_outlined_functions = 0;
    s_occurrences_replaced = 0; s_instructions_saved = 0 }

let merge_stats a b =
  { s_candidate_methods = a.s_candidate_methods + b.s_candidate_methods;
    s_sequence_elements = a.s_sequence_elements + b.s_sequence_elements;
    s_tree_nodes = a.s_tree_nodes + b.s_tree_nodes;
    s_repeats_considered = a.s_repeats_considered + b.s_repeats_considered;
    s_outlined_functions = a.s_outlined_functions + b.s_outlined_functions;
    s_occurrences_replaced = a.s_occurrences_replaced + b.s_occurrences_replaced;
    s_instructions_saved = a.s_instructions_saved + b.s_instructions_saved }

(* ---- Step 2: detection over one group of methods ---------------------- *)

(* Build the mapped sequence for [group] (indices into [methods]) and
   detect repeats. Returns decisions (occurrences expressed against global
   method indices) and statistics. *)
let detect_uncached ~options (methods : Compiled_method.t array)
    (group : int list) : decision list * stats =
  let a = Seq_map.new_allocator () in
  (* Concatenate per-method element lists; record the provenance of every
     sequence slot. *)
  let values = ref [] and prov = ref [] in
  let n_elements = ref 0 in
  Obs.span ~cat:"ltbo" "ltbo.map_sequence" (fun () ->
  List.iter
    (fun mi ->
      let cm = methods.(mi) in
      let hot = options.is_hot cm.Compiled_method.name in
      let eligible off =
        (not hot) || Meta.in_slowpath cm.Compiled_method.meta off
      in
      let elements = Seq_map.map_method ~eligible cm a in
      List.iter
        (fun (v, elt) ->
          values := v :: !values;
          incr n_elements;
          prov :=
            (match elt with
             | Seq_map.Word (_, off) -> Some (mi, off)
             | Seq_map.Separator -> None)
            :: !prov)
        elements;
      (* Hard separator at every method boundary. *)
      values := Seq_map.fresh_sep a :: !values;
      incr n_elements;
      prov := None :: !prov)
    group);
  let seq = Array.of_list (List.rev !values) in
  let prov = Array.of_list (List.rev !prov) in
  let tree =
    Obs.span ~cat:"ltbo" "ltbo.tree_build"
      ~args:(fun () -> [ ("sequence_elements", Json.Int !n_elements) ])
      (fun () -> Suffix_tree.build seq)
  in
  (* Gather repeats worth considering. *)
  let considered = ref 0 in
  let candidates =
    Obs.span ~cat:"ltbo" "ltbo.fold_repeats" (fun () ->
        Suffix_tree.fold_repeats ~min_length:options.min_length
          ~max_length:options.max_length tree ~init:[]
          ~f:(fun acc (r : Suffix_tree.repeat) ->
            incr considered;
            let repeats = List.length r.Suffix_tree.positions in
            if Benefit.worthwhile ~length:r.Suffix_tree.length ~repeats then
              r :: acc
            else acc))
  in
  (* Largest estimated saving first; ties broken towards longer sequences
     for stability. *)
  let candidates =
    List.sort
      (fun (a : Suffix_tree.repeat) (b : Suffix_tree.repeat) ->
        let sa =
          Benefit.saving ~length:a.Suffix_tree.length
            ~repeats:(List.length a.Suffix_tree.positions)
        and sb =
          Benefit.saving ~length:b.Suffix_tree.length
            ~repeats:(List.length b.Suffix_tree.positions)
        in
        match compare sb sa with
        | 0 -> compare b.Suffix_tree.length a.Suffix_tree.length
        | c -> c)
      candidates
  in
  (* Greedy selection with a global claimed-interval set (per method). *)
  let claimed : (int, Interval_set.t) Hashtbl.t = Hashtbl.create 16 in
  let overlaps mi off len =
    match Hashtbl.find_opt claimed mi with
    | None -> false
    | Some s -> Interval_set.overlaps s off (off + len)
  in
  let claim mi off len =
    let s =
      match Hashtbl.find_opt claimed mi with
      | Some s -> s
      | None ->
        let s = Interval_set.create () in
        Hashtbl.replace claimed mi s;
        s
    in
    Interval_set.add s off (off + len)
  in
  let decisions = ref [] in
  let saved = ref 0 and occ_total = ref 0 in
  Obs.span ~cat:"ltbo" "ltbo.select" (fun () ->
  List.iter
    (fun (r : Suffix_tree.repeat) ->
      let len = r.Suffix_tree.length in
      let byte_len = len * 4 in
      (* Self-overlap filter first (sequence positions), then the global
         claimed filter (byte ranges). *)
      let positions =
        Suffix_tree.non_overlapping ~length:len r.Suffix_tree.positions
      in
      let usable =
        List.filter_map
          (fun pos ->
            match prov.(pos) with
            | None -> None (* starts at a separator slot: impossible, guard *)
            | Some (mi, off) ->
              if overlaps mi off byte_len then None else Some (mi, off))
          positions
      in
      let repeats = List.length usable in
      if Benefit.worthwhile ~length:len ~repeats then begin
        Obs.Counter.incr "ltbo.decisions_accepted";
        Obs.Histogram.observe "ltbo.decision_length_insns" (float_of_int len);
        Obs.Histogram.observe "ltbo.decision_occurrences"
          (float_of_int repeats);
        List.iter (fun (mi, off) -> claim mi off byte_len) usable;
        let first_pos =
          (* words of the sequence body, taken from the tree's text *)
          match List.nth_opt positions 0 with
          | Some p -> p
          | None -> assert false
        in
        let text = Suffix_tree.text tree in
        let words = Array.init len (fun k -> text.(first_pos + k)) in
        decisions :=
          { d_length = len; d_words = words; d_occurrences = usable }
          :: !decisions;
        saved := !saved + Benefit.saving ~length:len ~repeats;
        occ_total := !occ_total + repeats
      end
      else Obs.Counter.incr "ltbo.decisions_rejected")
    candidates);
  Obs.Counter.add "ltbo.repeats_considered" !considered;
  Obs.Counter.add "ltbo.occurrences_replaced" !occ_total;
  Obs.Counter.add "ltbo.bytes_saved" (!saved * 4);
  let st = Suffix_tree.stats tree in
  ( List.rev !decisions,
    { s_candidate_methods = List.length group;
      s_sequence_elements = !n_elements;
      s_tree_nodes = st.Suffix_tree.nodes;
      s_repeats_considered = !considered;
      s_outlined_functions = List.length !decisions;
      s_occurrences_replaced = !occ_total;
      s_instructions_saved = !saved } )

(* ---- Detection memoization ---------------------------------------------

   [detect_uncached] is a pure function of (options, the token sequences of
   the group's methods): decisions are selected deterministically and
   expressed against method indices and offsets. That makes whole-group
   results safe to memoize content-addressed: the key folds in the cache
   salt, the length bounds and each member's canonical token digest
   ({!Seq_map.digest}), in group order. On an incremental rebuild where one
   method changed, every group that does not contain it keys identically
   and skips sequence mapping, tree construction and selection outright.

   [digest_of] is the fast path: digests computed at compile time (and
   stored with the cached artifact) for methods under the default
   eligibility policy. Hot methods (hot-function filtering changes their
   token run) always re-digest with their actual eligibility. *)

let detect_ns = "detect"

(* Dictionary-relative builds memoize under their own namespace, and the
   dictionary digest is folded into every key as a salt: rotating the
   store dictionary must miss cleanly (stale results keyed under the old
   digest are never returned), and must not evict or alias the
   self-contained results under [detect_ns]. *)
let detect_dict_ns = "detectdict"

let group_key ?salt ~options ~digest_of (methods : Compiled_method.t array)
    (group : int list) : string =
  let digest_for mi =
    let cm = methods.(mi) in
    let hot = options.is_hot cm.Compiled_method.name in
    let provided =
      if hot then None
      else match digest_of with Some f -> f mi | None -> None
    in
    match provided with
    | Some d -> d
    | None ->
      let eligible off =
        (not hot) || Meta.in_slowpath cm.Compiled_method.meta off
      in
      Seq_map.method_digest ~eligible cm
  in
  Cache.key
    ((Cache.salt :: detect_ns
      :: string_of_int options.min_length
      :: string_of_int options.max_length
      :: (match salt with None -> [] | Some s -> [ "dict"; s ]))
    @ List.concat_map (fun mi -> [ string_of_int mi; digest_for mi ]) group)

let detect_result_to_json ((decisions, st) : decision list * stats) : Json.t =
  Json.Obj
    [ ( "decisions",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [ ("len", Json.Int d.d_length);
                   ( "words",
                     Json.List
                       (Array.to_list
                          (Array.map (fun w -> Json.Int w) d.d_words)) );
                   ( "occ",
                     Json.List
                       (List.map
                          (fun (mi, off) ->
                            Json.List [ Json.Int mi; Json.Int off ])
                          d.d_occurrences) ) ])
             decisions) );
      ( "stats",
        Json.List
          (List.map
             (fun i -> Json.Int i)
             [ st.s_candidate_methods; st.s_sequence_elements;
               st.s_tree_nodes; st.s_repeats_considered;
               st.s_outlined_functions; st.s_occurrences_replaced;
               st.s_instructions_saved ]) ) ]

let detect_result_of_json (j : Json.t) : (decision list * stats) option =
  let ( let* ) = Option.bind in
  let rec all_opt = function
    | [] -> Some []
    | None :: _ -> None
    | Some x :: rest ->
      let* rest = all_opt rest in
      Some (x :: rest)
  in
  let int_pair j =
    match Json.get_list j with
    | Some [ a; b ] -> (
      match (Json.get_int a, Json.get_int b) with
      | Some a, Some b -> Some (a, b)
      | _ -> None)
    | _ -> None
  in
  let decision j =
    let* len = Option.bind (Json.member "len" j) Json.get_int in
    let* words = Option.bind (Json.member "words" j) Json.get_list in
    let* words = all_opt (List.map Json.get_int words) in
    let* occ = Option.bind (Json.member "occ" j) Json.get_list in
    let* occ = all_opt (List.map int_pair occ) in
    Some
      { d_length = len; d_words = Array.of_list words; d_occurrences = occ }
  in
  let* ds = Option.bind (Json.member "decisions" j) Json.get_list in
  let* decisions = all_opt (List.map decision ds) in
  let* st = Option.bind (Json.member "stats" j) Json.get_list in
  let* st = all_opt (List.map Json.get_int st) in
  match st with
  | [ a; b; c; d; e; f; g ] ->
    Some
      ( decisions,
        { s_candidate_methods = a; s_sequence_elements = b; s_tree_nodes = c;
          s_repeats_considered = d; s_outlined_functions = e;
          s_occurrences_replaced = f; s_instructions_saved = g } )
  | _ -> None

let detect ?cache ?digest_of ?salt ?ns ~options
    (methods : Compiled_method.t array) (group : int list) :
    decision list * stats =
  Obs.span ~cat:"ltbo" "ltbo.detect"
    ~args:(fun () -> [ ("group_methods", Json.Int (List.length group)) ])
  @@ fun () ->
  match cache with
  | None -> detect_uncached ~options methods group
  | Some c -> (
    let ns =
      match ns with
      | Some n -> n
      | None -> (
        match salt with None -> detect_ns | Some _ -> detect_dict_ns)
    in
    let key = group_key ?salt ~options ~digest_of methods group in
    match Option.bind (Cache.find_json c ~ns key) detect_result_of_json with
    | Some r -> r
    | None ->
      let r = detect_uncached ~options methods group in
      Cache.add_json c ~ns key (detect_result_to_json r);
      r)

(* ---- Steps 3 & 4: rewriting, patching ---------------------------------- *)

(* The simple holder for per-method rewriting input. *)
type site = { st_off : int; st_len_words : int; st_sym : int }

let rewrite_method_sites (cm : Compiled_method.t) (sites : site list) :
    Compiled_method.t =
  if sites = [] then cm
  else begin
    let sites = List.sort (fun a b -> compare a.st_off b.st_off) sites in
    let code = cm.Compiled_method.code in
    let n_words = Bytes.length code / 4 in
    let old_size = n_words * 4 in
    (* Old-offset -> new-offset map, at word granularity, plus one entry for
       the end-of-method offset (branch targets may point there). Interior
       words of a replaced region map to the bl's offset (a branch target
       can only legally be the region start; anything else would have been
       prevented by the boundary separators). *)
    let remap = Array.make (n_words + 1) (-1) in
    let new_relocs = ref [] in
    let new_pos = ref 0 in
    (* The rewritten words go straight into the domain's scratch arena in
       walk order (they are emitted at strictly increasing offsets), then
       one copy out. The previous version consed every surviving word
       onto an int list and replayed it in reverse — two heap words of
       minor-gen garbage per instruction per rewritten method, on every
       build. *)
    let new_code =
      Arena.with_scratch @@ fun arena ->
      let rec walk w sites =
        if w >= n_words then ()
        else
          match sites with
          | { st_off; st_len_words; st_sym } :: rest when st_off = w * 4 ->
            (* Replace the occurrence with one bl. *)
            remap.(w) <- !new_pos;
            for k = 1 to st_len_words - 1 do
              remap.(w + k) <- !new_pos
            done;
            Arena.add_i32_le arena
              (Encode.encode (Isa.Bl { target = Isa.Sym st_sym }));
            new_relocs := (!new_pos, st_sym) :: !new_relocs;
            new_pos := !new_pos + 4;
            walk (w + st_len_words) rest
          | _ ->
            remap.(w) <- !new_pos;
            Arena.add_i32_le arena (Encode.word_of_bytes code (w * 4));
            new_pos := !new_pos + 4;
            walk (w + 1) sites
      in
      walk 0 sites;
      remap.(n_words) <- !new_pos;
      Arena.to_bytes arena
    in
    let remap_off off =
      if off land 3 <> 0 || off < 0 || off > old_size then
        invalid_arg (Printf.sprintf "Ltbo.remap: bad offset %d" off)
      else remap.(off / 4)
    in
    (* Step 4: patch every PC-relative instruction against the new layout
       (paper 3.3.4). The instruction itself is never inside a replaced
       region; its target may be a region start (see remap above). *)
    let meta = cm.Compiled_method.meta in
    let new_pc_rel =
      List.map
        (fun (off, tgt) ->
          let off' = remap_off off and tgt' = remap_off tgt in
          Patch.patch_bytes new_code ~off:off' ~disp:(tgt' - off');
          (off', tgt'))
        meta.Meta.pc_rel
    in
    Obs.Counter.add "ltbo.pc_rel_patched" (List.length new_pc_rel);
    Obs.Counter.add "ltbo.sites_rewritten" (List.length sites);
    let remap_range (r : Meta.range) =
      let s = remap_off r.Meta.r_start
      and e = remap_off (r.Meta.r_start + r.Meta.r_len) in
      { Meta.r_start = s; r_len = e - s }
    in
    let new_meta =
      { meta with
        Meta.pc_rel = new_pc_rel;
        embedded = List.map remap_range meta.Meta.embedded;
        slowpaths = List.map remap_range meta.Meta.slowpaths;
        terminators = List.map remap_off meta.Meta.terminators;
        calls =
          List.map remap_off meta.Meta.calls
          @ List.map (fun (off, _) -> off) !new_relocs
          |> List.sort_uniq compare }
    in
    (* Reposition stackmaps (paper 3.5) and verify consistency. *)
    let new_stackmap =
      Stackmap.remap cm.Compiled_method.stackmap ~remap_pc:remap_off
    in
    Obs.Counter.add "ltbo.stackmap_fixups" (List.length new_stackmap);
    (match Stackmap.validate new_stackmap ~code_size:!new_pos with
     | Ok () -> ()
     | Error e ->
       raise
         (Ltbo_error
            (Printf.sprintf "LTBO broke stackmaps of %s: %s"
               (Calibro_dex.Dex_ir.method_ref_to_string
                  cm.Compiled_method.name)
               e)));
    { cm with
      Compiled_method.code = new_code;
      relocs =
        List.map (fun (off, sym) -> (remap_off off, sym)) cm.Compiled_method.relocs
        @ List.rev !new_relocs;
      meta = new_meta;
      stackmap = new_stackmap }
  end

(* ---- Top level ---------------------------------------------------------- *)

type result = {
  methods : Compiled_method.t list;
  outlined : Calibro_oat.Linker.extra_function list;
  stats : stats;
}

(* Run LTBO over [methods]; [groups] partitions the candidate indices (one
   group = one suffix tree; several groups = the PlOpti configuration,
   processed by {!Parallel} when asked). [detect_in_parallel] maps [detect]
   over the groups. *)
let run_with ?(sym_base = outlined_sym_base)
    ~(detect_results : (decision list * stats) list)
    (methods : Compiled_method.t list) : result =
  let marr = Array.of_list methods in
  let all_decisions = List.concat_map fst detect_results in
  let stats =
    List.fold_left
      (fun acc (_, s) -> merge_stats acc s)
      empty_stats detect_results
  in
  (* Allocate symbols and outlined bodies. Identical bodies — which arise
     when several parallel suffix trees independently discover the same
     sequence (section 3.4.1's cross-tree blindness) — are deduplicated to
     a single outlined function at this point. *)
  let outlined = ref [] in
  let body_syms : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let next_sym = ref sym_base in
  let sites_per_method : (int, site list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let body =
        Array.to_list (Array.map (fun w -> Isa.Data (Int32.of_int w)) d.d_words)
        @ [ Isa.Br Isa.lr ]
      in
      (* Data here is just raw word passthrough: encode emits them verbatim. *)
      let code = Encode.to_bytes body in
      let key = Bytes.to_string code in
      let sym =
        match Hashtbl.find_opt body_syms key with
        | Some sym -> sym
        | None ->
          let sym = !next_sym in
          incr next_sym;
          Hashtbl.replace body_syms key sym;
          outlined := { Calibro_oat.Linker.xf_sym = sym; xf_code = code }
                      :: !outlined;
          sym
      in
      List.iter
        (fun (mi, off) ->
          let l =
            match Hashtbl.find_opt sites_per_method mi with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace sites_per_method mi l;
              l
          in
          l := { st_off = off; st_len_words = d.d_length; st_sym = sym } :: !l)
        d.d_occurrences)
    all_decisions;
  let methods' =
    Obs.span ~cat:"ltbo" "ltbo.rewrite" (fun () ->
        Array.to_list
          (Array.mapi
             (fun mi cm ->
               match Hashtbl.find_opt sites_per_method mi with
               | None -> cm
               | Some sites -> rewrite_method_sites cm !sites)
             marr))
  in
  let stats =
    { stats with s_outlined_functions = List.length !outlined }
  in
  { methods = methods'; outlined = List.rev !outlined; stats }

(* Single global suffix tree (the non-PlOpti configuration). *)
let run ?cache ?digest_of ?salt ?ns ?(options = default_options) ?sym_base
    (methods : Compiled_method.t list) : result =
  let marr = Array.of_list methods in
  let candidates =
    List.filteri
      (fun _ _ -> true)
      (List.mapi (fun i cm -> (i, cm)) methods)
    |> List.filter_map (fun (i, cm) ->
           if Meta.outlinable cm.Compiled_method.meta then Some i else None)
  in
  let detect_results =
    [ detect ?cache ?digest_of ?salt ?ns ~options marr candidates ]
  in
  run_with ?sym_base ~detect_results methods

(* ---- Multi-round outlining ------------------------------------------------

   Re-running outlining over already-outlined code can harvest second-order
   repeats (sequences that only become identical once their differing parts
   were outlined away) — the whole-program iteration Chabbi et al. describe
   for iOS and the paper cites as related work. Outlined functions
   themselves are never re-outlined (they are not methods and carry no
   metadata), so rounds converge quickly. *)
let run_rounds ?cache ?digest_of ?salt ?ns ?(options = default_options) ~rounds
    (methods : Compiled_method.t list) : result =
  (* The compile-time digests describe the *input* methods: they are only
     valid for the first round. Later rounds run over rewritten code, so
     they re-digest (the cache still skips converged groups). *)
  let rec go n sym_base methods acc_outlined acc_stats digest_of =
    if n = 0 then
      { methods; outlined = List.rev acc_outlined; stats = acc_stats }
    else begin
      let r = run ?cache ?digest_of ?salt ?ns ~options ~sym_base methods in
      if r.stats.s_outlined_functions = 0 then
        { methods; outlined = List.rev acc_outlined; stats = acc_stats }
      else
        go (n - 1)
          (sym_base + r.stats.s_outlined_functions)
          r.methods
          (List.rev_append r.outlined acc_outlined)
          (merge_stats acc_stats r.stats)
          None
    end
  in
  go rounds outlined_sym_base methods [] empty_stats digest_of
