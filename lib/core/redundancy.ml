(* The code-redundancy analysis of paper section 2.2 (Table 1, Figure 3):

   1. map the binary code into a sequence of unsigned integers — here the
      instruction encodings themselves, with embedded data skipped using
      the LTBO.1 metadata;
   2. build a suffix tree with Ukkonen's algorithm;
   3. detect the repetitive sequences (internal nodes with >= 2 leaves);
   4. estimate the potential code size savings with the Figure 2 model,
      greedily assigning non-overlapping occurrences to the most
      profitable sequences.

   This estimate is deliberately optimistic — no basic-block confinement,
   no LR constraints, no candidate-method exclusions — which is why the
   paper's Table 1 (~25%) exceeds the realized reductions of Table 4
   (~19%): the same gap this module reproduces. *)

open Calibro_aarch64
open Calibro_codegen
open Calibro_oat
open Calibro_suffix_tree

type analysis = {
  a_text_words : int;         (** analysed instruction count *)
  a_repeats : int;            (** right-maximal repeated sequences *)
  a_saved_instructions : int; (** estimated by the benefit model *)
  a_ratio : float;            (** estimated reduction ratio *)
  a_histogram : (int * int) list;
      (** Figure 3: (sequence length, total number of repeats) *)
}

(* Map the whole OAT text into one integer sequence; embedded data words
   become unique separators so they never join repeats. *)
let sequence_of_oat (oat : Oat_file.t) =
  let sep = ref (1 lsl 33) in
  let out = ref [] in
  List.iter
    (fun (me : Oat_file.method_entry) ->
      let words = me.me_size / 4 in
      for w = 0 to words - 1 do
        let off = w * 4 in
        if Meta.is_embedded me.me_meta off then begin
          incr sep;
          out := !sep :: !out
        end
        else
          out := Encode.word_of_bytes oat.text (me.me_offset + off) :: !out
      done;
      incr sep;
      out := !sep :: !out)
    oat.methods;
  Array.of_list (List.rev !out)

let analyze ?(min_length = 2) ?(max_length = 64) (oat : Oat_file.t) : analysis
    =
  let seq = sequence_of_oat oat in
  let tree = Suffix_tree.build seq in
  let repeats =
    Suffix_tree.repeats ~min_length ~max_length tree
    |> List.filter (fun (r : Suffix_tree.repeat) ->
           Benefit.worthwhile ~length:r.length
             ~repeats:(List.length r.positions))
  in
  (* Figure 3 histogram over all worthwhile repeats. *)
  let hist = Hashtbl.create 64 in
  List.iter
    (fun (r : Suffix_tree.repeat) ->
      let n = List.length r.positions in
      Hashtbl.replace hist r.length
        (n + Option.value ~default:0 (Hashtbl.find_opt hist r.length)))
    repeats;
  let histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist [] |> List.sort compare
  in
  (* Greedy non-overlapping selection, most profitable first. *)
  let ordered =
    List.sort
      (fun (a : Suffix_tree.repeat) (b : Suffix_tree.repeat) ->
        compare
          (Benefit.saving ~length:b.length ~repeats:(List.length b.positions))
          (Benefit.saving ~length:a.length ~repeats:(List.length a.positions)))
      repeats
  in
  let claimed = Interval_set.create () in
  let saved = ref 0 in
  List.iter
    (fun (r : Suffix_tree.repeat) ->
      let len = r.length in
      let usable =
        Suffix_tree.non_overlapping ~length:len r.positions
        |> List.filter (fun p -> not (Interval_set.overlaps claimed p (p + len)))
      in
      let n = List.length usable in
      if Benefit.worthwhile ~length:len ~repeats:n then begin
        List.iter (fun p -> Interval_set.add claimed p (p + len)) usable;
        saved := !saved + Benefit.saving ~length:len ~repeats:n
      end)
    ordered;
  let words = Array.length seq in
  { a_text_words = words;
    a_repeats = List.length repeats;
    a_saved_instructions = !saved;
    a_ratio = (if words = 0 then 0.0 else float_of_int !saved /. float_of_int words);
    a_histogram = histogram }

(* ---- Figure 4 census: the three ART-specific patterns ----------------- *)

type pattern_census = {
  c_java_call : int;        (** Figure 4a occurrences *)
  c_runtime_call : int;     (** Figure 4b occurrences *)
  c_stack_check : int;      (** Figure 4c occurrences *)
}

let pattern_census (oat : Oat_file.t) =
  let java = ref 0 and rt = ref 0 and stack = ref 0 in
  List.iter
    (fun (me : Oat_file.method_entry) ->
      let words = me.me_size / 4 in
      let word w = Encode.word_of_bytes oat.text (me.me_offset + (w * 4)) in
      for w = 0 to words - 2 do
        if not (Meta.is_embedded me.me_meta (w * 4)) then begin
          match (Decode.decode (word w), Decode.decode (word (w + 1))) with
          | Isa.Ldr { rt = 30; rn = 0; _ }, Isa.Blr 30 -> incr java
          | Isa.Ldr { rt = 30; rn = 19; _ }, Isa.Blr 30 -> incr rt
          | ( Isa.Add_sub_imm { op = Isa.SUB; rd = 16; rn = 31; imm12 = 2;
                                shift12 = true; _ },
              Isa.Ldr { rt = 31; rn = 16; _ } ) ->
            incr stack
          | _ -> ()
        end
      done)
    oat.methods;
  { c_java_call = !java; c_runtime_call = !rt; c_stack_check = !stack }
