(** Content hashing behind one [Digest]-shaped signature.

    Every content-addressed structure in the tree — compilation-cache
    keys, canonical LTBO token digests, router shard affinity — needs a
    128-bit value that is uniform and stable, not cryptographic: the
    inputs are trusted build artifacts, and the hash sits on the serving
    hot path (ShareJIT's lesson: content addressing only pays when the
    hash is far cheaper than the work it deduplicates). The default
    backend is a two-lane splitmix64 sponge (full 64-bit finalizer
    avalanche per 8-byte word, cross-lane mix at the end); MD5 is kept as
    a byte-compatible reference backend, selected by [CALIBRO_HASH=md5],
    so CI can prove the swap changes no output bytes.

    Values are 16-byte binary strings, like [Stdlib.Digest.t]. The two
    backends produce different values for the same input by design; all
    in-tree uses only ever compare hashes from the same backend (keys,
    memo digests, ring points), and the disk cache salts its version so
    entries written under one backend are unreachable under the other. *)

type t = string
(** 16 bytes, binary. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(** The streaming interface: feed any mix of string/bytes/Bigarray slices
    and 63-bit ints; the result depends only on the concatenated byte
    stream, never on feeding granularity or slice offsets. *)
module type S = sig
  type state

  val init : unit -> state

  val feed_substring : state -> string -> off:int -> len:int -> unit
  val feed_string : state -> string -> unit
  val feed_subbytes : state -> bytes -> off:int -> len:int -> unit
  val feed_bytes : state -> bytes -> unit

  val feed_bigarray : state -> bigstring -> off:int -> len:int -> unit
  (** Off-heap input (an {!Calibro_oat.Arena} window); no copy onto the
      OCaml heap on the fast backend. *)

  val feed_int : state -> int -> unit
  (** Feeds the int as 8 little-endian bytes — the allocation-free way to
      hash token runs ({!Seq_map.digest}) without printing them. *)

  val finalize : state -> t

  val string : string -> t
  val bytes : bytes -> t
  val substring : string -> off:int -> len:int -> t
  val subbytes : bytes -> off:int -> len:int -> t
  val bigarray : bigstring -> off:int -> len:int -> t
end

module Fast : S
(** The splitmix64 sponge. *)

module Md5 : S
(** Reference backend over [Stdlib.Digest] (MD5). Streaming accumulates
    into a buffer and digests at [finalize] — correct, not fast; it
    exists for parity checks, not production traffic. *)

val backend : unit -> [ `Fast | `Md5 ]
(** [`Md5] iff the environment variable [CALIBRO_HASH] is ["md5"] (read
    once, at first use). *)

val backend_name : unit -> string

(** {2 Dispatching interface}

    The functions below run on the backend selected by [CALIBRO_HASH].
    This is what production call sites use; tests and the digest
    snapshot pin {!Fast} or {!Md5} explicitly. *)

type state

val init : unit -> state
val feed_substring : state -> string -> off:int -> len:int -> unit
val feed_string : state -> string -> unit
val feed_subbytes : state -> bytes -> off:int -> len:int -> unit
val feed_bytes : state -> bytes -> unit
val feed_bigarray : state -> bigstring -> off:int -> len:int -> unit
val feed_int : state -> int -> unit
val finalize : state -> t
val string : string -> t
val bytes : bytes -> t
val substring : string -> off:int -> len:int -> t
val subbytes : bytes -> off:int -> len:int -> t
val bigarray : bigstring -> off:int -> len:int -> t

val to_hex : t -> string
(** Lowercase hex (32 chars for a 16-byte value) — filesystem- and
    JSON-safe, same shape as [Digest.to_hex]. *)
