(* PlOpti — paralleled suffix trees (paper section 3.4.1).

   "Firstly, we simply partition the candidate methods into K groups evenly
   in terms of method numbers ... we choose a simple and random partition
   instead of clustering similar methods ... Secondly, we build a suffix
   tree for each group in parallel. Thirdly, we detect repetitive code
   sequences, outline the binary code and patch ... per suffix tree in
   parallel."

   Detection (the expensive part: tree build + repeat search + selection)
   runs on one OCaml 5 domain per group. The cost is cross-tree repeats
   going unseen — exactly the paper's tolerable code-size loss in Table 4. *)

open Calibro_codegen
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json

(* Deterministic "random" partition: shuffle with a seeded LCG, then split
   evenly. *)
let partition ~k ~seed (candidates : int list) : int list list =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  let state = ref (seed land 0x3FFFFFFF) in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for i = n - 1 downto 1 do
    let j = rand (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  let k = max 1 (min k (max 1 n)) in
  let groups = Array.make k [] in
  Array.iteri (fun i mi -> groups.(i mod k) <- mi :: groups.(i mod k)) arr;
  Array.to_list groups |> List.filter (fun g -> g <> [])

(* Run [Ltbo.detect] over each group on its own domain. The number of live
   domains is capped by the hardware's recommended count: spawning domains
   beyond the core count only adds scheduler and GC overhead (on a 1-core
   host the groups run sequentially, which still keeps the per-tree working
   set small — the second benefit the paper describes). *)
let detect_parallel ~options (methods : Compiled_method.t array)
    (groups : int list list) : (Ltbo.decision list * Ltbo.stats) list =
  let max_domains = max 1 (Domain.recommended_domain_count () - 1) in
  Obs.Gauge.set "plopti.max_domains" (float_of_int max_domains);
  (* The per-group span runs *inside* the worker, so each PlOpti domain
     contributes its own trace lane (tid = domain id) and its counter /
     histogram updates land in that domain's shard, aggregated at join. *)
  let detect_group g =
    Obs.span ~cat:"plopti" "plopti.detect_group"
      ~args:(fun () -> [ ("group_methods", Json.Int (List.length g)) ])
      (fun () -> Ltbo.detect ~options methods g)
  in
  Obs.span ~cat:"plopti" "plopti.detect_parallel"
    ~args:(fun () -> [ ("groups", Json.Int (List.length groups)) ])
  @@ fun () ->
  match groups with
  | [] -> []
  | [ g ] -> [ detect_group g ]
  | gs when max_domains <= 1 ->
    Obs.Counter.incr "plopti.cap_hits";
    List.map detect_group gs
  | gs ->
    (* process in waves of [max_domains] *)
    let rec waves acc = function
      | [] -> List.concat (List.rev acc)
      | gs ->
        let rec take n = function
          | [] -> ([], [])
          | x :: rest when n > 0 ->
            let a, b = take (n - 1) rest in
            (x :: a, b)
          | rest -> ([], rest)
        in
        let now, later = take max_domains gs in
        Obs.Counter.incr "plopti.waves";
        if later <> [] then Obs.Counter.incr "plopti.cap_hits";
        Obs.Counter.add "plopti.domains_spawned" (List.length now);
        let domains =
          Obs.span ~cat:"plopti" "plopti.wave"
            ~args:(fun () -> [ ("domains", Json.Int (List.length now)) ])
            (fun () ->
              let ds =
                List.map
                  (fun g -> Domain.spawn (fun () -> detect_group g))
                  now
              in
              List.map Domain.join ds)
        in
        waves (domains :: acc) later
    in
    waves [] gs

(* Full PlOpti LTBO: partition into [k] groups, detect in parallel,
   rewrite. *)
let run ?(options = Ltbo.default_options) ?(seed = 42) ~k
    (methods : Compiled_method.t list) : Ltbo.result =
  let marr = Array.of_list methods in
  let candidates =
    List.mapi (fun i (cm : Compiled_method.t) -> (i, cm)) methods
    |> List.filter_map (fun (i, cm) ->
           if Meta.outlinable cm.Compiled_method.meta then Some i else None)
  in
  let groups = partition ~k ~seed candidates in
  let detect_results = detect_parallel ~options marr groups in
  Ltbo.run_with ~detect_results methods
