(* PlOpti — paralleled suffix trees (paper section 3.4.1).

   "Firstly, we simply partition the candidate methods into K groups evenly
   in terms of method numbers ... we choose a simple and random partition
   instead of clustering similar methods ... Secondly, we build a suffix
   tree for each group in parallel. Thirdly, we detect repetitive code
   sequences, outline the binary code and patch ... per suffix tree in
   parallel."

   Detection (the expensive part: tree build + repeat search + selection)
   runs on one OCaml 5 domain per group. The cost is cross-tree repeats
   going unseen — exactly the paper's tolerable code-size loss in Table 4. *)

open Calibro_codegen
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json

(* Deterministic "random" partition: Fisher–Yates with a seeded splitmix64
   stream, then split evenly. The previous power-of-two-modulus LCG made
   the low output bit alternate strictly, so [state mod bound] fixed the
   parity of every swap index and the "random" partition was strongly
   structured. splitmix64 (Steele et al., "Fast splittable pseudorandom
   number generators") is uniform in all 64 output bits; we draw from the
   top 30 via a multiply-shift, which also avoids modulo bias. *)
let partition ~k ~seed (candidates : int list) : int list list =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  let state = ref (Int64.of_int seed) in
  let rand bound =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let hi = Int64.to_int (Int64.shift_right_logical z 34) in
    (hi * bound) asr 30
  in
  for i = n - 1 downto 1 do
    let j = rand (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  let k = max 1 (min k (max 1 n)) in
  let groups = Array.make k [] in
  Array.iteri (fun i mi -> groups.(i mod k) <- mi :: groups.(i mod k)) arr;
  Array.to_list groups |> List.filter (fun g -> g <> [])

(* Run [Ltbo.detect] over each group, distributed across a fixed pool of
   worker domains. The pool size is capped by the hardware's recommended
   count: spawning domains beyond the core count only adds scheduler and GC
   overhead (on a 1-core host the groups run sequentially, which still
   keeps the per-tree working set small — the second benefit the paper
   describes). [?max_domains] overrides the cap, mainly so tests can
   exercise the pool on small hosts. *)
let detect_parallel ?max_domains ?cache ?digest_of ?salt ?ns ~options
    (methods : Compiled_method.t array) (groups : int list list) :
    (Ltbo.decision list * Ltbo.stats) list =
  let max_domains =
    match max_domains with
    | Some m -> max 1 m
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  Obs.Gauge.set "plopti.max_domains" (float_of_int max_domains);
  (* The per-group span runs *inside* the worker, so each PlOpti domain
     contributes its own trace lane (tid = domain id) and its counter /
     histogram updates land in that domain's shard, aggregated at join. *)
  let detect_group g =
    Obs.span ~cat:"plopti" "plopti.detect_group"
      ~args:(fun () -> [ ("group_methods", Json.Int (List.length g)) ])
      (fun () -> Ltbo.detect ?cache ?digest_of ?salt ?ns ~options methods g)
  in
  Obs.span ~cat:"plopti" "plopti.detect_parallel"
    ~args:(fun () -> [ ("groups", Json.Int (List.length groups)) ])
  @@ fun () ->
  match groups with
  | [] -> []
  | [ g ] -> [ detect_group g ]
  | gs when max_domains <= 1 ->
    Obs.Counter.incr "plopti.cap_hits";
    List.map detect_group gs
  | gs ->
    (* Fixed pool: [n_workers] domains pull group indices from a shared
       atomic counter until the groups run out. Unlike wave scheduling
       (spawn a batch, join the whole batch, repeat), no domain ever idles
       behind the slowest group of a batch — a worker that finishes a cheap
       group immediately claims the next one. Results land in a slot array
       indexed by group, so the output order is the input group order
       regardless of which domain ran what. *)
    let groups_arr = Array.of_list gs in
    let n = Array.length groups_arr in
    let n_workers = min max_domains n in
    if n > n_workers then Obs.Counter.incr "plopti.cap_hits";
    Obs.Counter.add "plopti.domains_spawned" n_workers;
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Obs.span ~cat:"plopti" "plopti.worker" @@ fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (detect_group groups_arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init n_workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)

(* Full PlOpti LTBO: partition into [k] groups, detect in parallel,
   rewrite. The rewrite and the final link both run through the calling
   domain's scratch arena ({!Calibro_oat.Arena.with_scratch}): inside a
   calibrod worker domain one off-heap buffer is reused across every
   build that domain serves, so PlOpti's per-build byte churn stays off
   the minor heap (the [arena.*] counters account for reuse, contention
   and trims). *)
let run ?cache ?digest_of ?salt ?ns ?(options = Ltbo.default_options)
    ?(seed = 42)
    ~k (methods : Compiled_method.t list) : Ltbo.result =
  let marr = Array.of_list methods in
  let candidates =
    List.mapi (fun i (cm : Compiled_method.t) -> (i, cm)) methods
    |> List.filter_map (fun (i, cm) ->
           if Meta.outlinable cm.Compiled_method.meta then Some i else None)
  in
  let groups = partition ~k ~seed candidates in
  let detect_results =
    detect_parallel ?cache ?digest_of ?salt ?ns ~options marr groups
  in
  Ltbo.run_with ~detect_results methods
