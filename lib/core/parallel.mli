(** PlOpti — paralleled suffix trees (paper section 3.4.1): partition the
    candidate methods into K groups, detect repeats per group (one suffix
    tree each) on OCaml 5 domains, then rewrite. The cost is cross-tree
    repeats going unseen — the tolerable code-size loss of Table 4. *)

open Calibro_codegen

val partition : k:int -> seed:int -> int list -> int list list
(** Deterministic pseudo-random even partition ("a simple and random
    partition instead of clustering"). Groups are non-empty; their union is
    the input. *)

val detect_parallel :
  ?max_domains:int ->
  ?cache:Calibro_cache.Cache.t ->
  ?digest_of:(int -> string option) ->
  ?salt:string ->
  ?ns:string ->
  options:Ltbo.options ->
  Compiled_method.t array ->
  int list list ->
  (Ltbo.decision list * Ltbo.stats) list
(** Run {!Ltbo.detect} over each group on a fixed pool of worker domains
    pulling group indices from a shared atomic counter (no wave barrier: a
    worker that finishes a cheap group immediately claims the next). The
    pool size defaults to [Domain.recommended_domain_count () - 1] (min 1;
    sequential on a single-core host); [?max_domains] overrides it, mainly
    for tests. Results are in input group order. [?cache]/[?digest_of]/
    [?salt] memoize per-group detection as in {!Ltbo.detect}; the cache is
    safe to share across worker domains. *)

val run :
  ?cache:Calibro_cache.Cache.t ->
  ?digest_of:(int -> string option) ->
  ?salt:string ->
  ?ns:string ->
  ?options:Ltbo.options ->
  ?seed:int ->
  k:int ->
  Compiled_method.t list ->
  Ltbo.result
(** Full PlOpti LTBO over all outlinable methods. *)
