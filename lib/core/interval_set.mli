(** A set of disjoint half-open integer intervals [\[s, e)], sorted in
    growable arrays: O(log n) overlap queries (binary search on the starts)
    and O(n) worst-case insertion via [Array.blit]. Used for the greedy
    selectors' claimed-byte-range bookkeeping, replacing linear-scan
    association lists. *)

type t

val create : unit -> t

val overlaps : t -> int -> int -> bool
(** [overlaps t s e] is [true] iff [\[s, e)] intersects any stored
    interval. *)

val add : t -> int -> int -> unit
(** [add t s e] inserts [\[s, e)]. The caller must ensure it is disjoint
    from every stored interval (check with {!overlaps} first) — the set
    does not re-verify. Raises [Invalid_argument] if [s >= e]. *)

val length : t -> int
(** Number of stored intervals. *)

val to_list : t -> (int * int) list
(** The intervals in ascending order (for tests/debugging). *)
