(* The end-to-end DEX2OAT-with-Calibro pipeline (paper Figure 5):

     apk -> per-method HGraph -> IR opt passes -> codegen (CTO + LTBO.1)
         -> LTBO.2 (global or paralleled suffix trees)
         -> linking -> OAT

   Per-phase timings are recorded on the monotonic clock and mirrored
   into the lib/obs span/metric registry; Table 6 is their ratio across
   configurations. *)

open Calibro_dex
open Calibro_hgraph
open Calibro_codegen
open Calibro_oat
module Obs = Calibro_obs.Obs
module Clock = Calibro_obs.Clock
module Json = Calibro_obs.Json
module Cache = Calibro_cache.Cache

module Shelve = Calibro_shelve.Shelve

type build = {
  b_config : Config.t;
  b_oat : Oat_file.t;
  b_timings : (string * float) list;  (** (phase, seconds) in order *)
  b_ltbo_stats : Ltbo.stats option;
  b_cto_hits : (string * int) list;   (** summed over methods *)
  b_shelved : int;  (** methods parked on the shelf (0 without [?shelve]) *)
}

let total_time b = List.fold_left (fun a (_, t) -> a +. t) 0.0 b.b_timings

exception Build_error of string

(* One pipeline phase: an [Obs] span (nested under [pipeline.build]) plus
   the [(name, seconds)] pair Table 6 is derived from — both read the
   same monotonic clock, never [Unix.gettimeofday]. *)
let timed phases name f =
  Obs.span ~cat:"pipeline" ("pipeline." ^ name) (fun () ->
      let t0 = Clock.now_ns () in
      let r = f () in
      phases := (name, Clock.since_s t0) :: !phases;
      r)

(* ---- Compilation cache -------------------------------------------------

   The per-method key covers everything [Codegen.compile] reads: the
   method's own IR (instructions, register/parameter shape, flags, name),
   its slot, the slot of every callee in call order (cached code embeds
   resolved callee symbols in its relocations, so an add/delete elsewhere
   in the apk that shifts a callee's slot must miss), the configuration
   bits that reach codegen, and the cache salt. [Marshal] with
   [No_sharing] on [Dex_ir] values is deterministic: they contain no
   closures or cycles, and without back-references the encoding depends
   only on structure, never on how the front end happened to share
   sub-values — structurally equal methods always hash identically. *)

let method_key ~(config : Config.t) ~slot_of_method ~slot (m : Dex_ir.meth) =
  let callee_slots =
    Array.to_list m.Dex_ir.insns
    |> List.filter_map (function
         | Dex_ir.Invoke (callee, _, _) -> Some (callee, slot_of_method callee)
         | _ -> None)
  in
  Cache.key
    [ Cache.salt; "method";
      (* fed to the key hash directly — the old pre-digest here meant the
         method bytes were hashed twice per lookup, once into this inner
         digest and once more when Cache.key hashed the parts *)
      Marshal.to_string (m, slot, callee_slots) [ Marshal.No_sharing ];
      Printf.sprintf "ir=%b;cto=%b" config.Config.optimize_ir
        config.Config.cto ]

(* The ambient cache: [CALIBRO_CACHE_DIR] names an on-disk store shared by
   every build that does not pass [?cache] explicitly. Unset (or empty)
   means no ambient cache. *)
let env_cache : Cache.t option Lazy.t =
  lazy
    (match Sys.getenv_opt "CALIBRO_CACHE_DIR" with
     | Some dir when String.trim dir <> "" -> Some (Cache.create ~dir ())
     | _ -> None)

let build ?(cache = Lazy.force env_cache) ?(config = Config.baseline) ?dict
    ?shelve (apk : Dex_ir.apk) : build =
  Obs.span ~cat:"pipeline" "pipeline.build"
    ~args:(fun () ->
      [ ("apk", Json.Str apk.Dex_ir.apk_name);
        ("config", Json.Str config.Config.name) ])
  @@ fun () ->
  Obs.Counter.incr "pipeline.builds";
  (match Dex_check.check apk with
   | Ok () -> ()
   | Error errs ->
     raise
       (Build_error
          (String.concat "; " (List.map Dex_check.error_to_string errs))));
  let phases = ref [] in
  let methods = Dex_ir.methods_of_apk apk in
  let slots = Hashtbl.create (List.length methods) in
  List.iteri
    (fun i (m : Dex_ir.meth) -> Hashtbl.replace slots m.name i)
    methods;
  let slot_of_method name =
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None ->
      raise (Build_error ("undefined method " ^ Dex_ir.method_ref_to_string name))
  in
  (* Frontend + IR optimization + codegen, per method (Figure 5's per-method
     lanes). With a cache, hits skip HGraph construction, the IR passes and
     codegen; misses are compiled as before, digested, and stored. The
     token digests feed the LTBO detection memo below. *)
  let digests = Array.make (List.length methods) None in
  let compile_method (m : Dex_ir.meth) =
    let g = Hgraph.of_method m in
    if config.Config.optimize_ir then ignore (Passes.optimize g);
    Codegen.compile ~config:{ Codegen.cto = config.Config.cto } ~slot_of_method
      g
  in
  let compiled =
    timed phases "dex2oat" (fun () ->
        match cache with
        | None -> List.map compile_method methods
        | Some c ->
          List.mapi
            (fun i (m : Dex_ir.meth) ->
              let key =
                method_key ~config ~slot_of_method
                  ~slot:(slot_of_method m.Dex_ir.name) m
              in
              match Cache.find_method c key with
              | Some e ->
                digests.(i) <- Some e.Cache.ce_token_digest;
                e.Cache.ce_method
              | None ->
                let cm = compile_method m in
                let d = Seq_map.method_digest cm in
                digests.(i) <- Some d;
                Cache.add_method c key
                  { Cache.ce_method = cm; ce_token_digest = d };
                cm)
            methods)
  in
  (* Shelving (the "Shelving it rather than Ditching it" composition):
     partition the compiled methods into the profile-warm survivors and
     the cold set, whose bodies are parked on the shelf behind fixed-size
     fault stubs. The split runs after per-method compilation — so the
     per-method cache population is shared with unshelved builds — and
     before LTBO, so outlining mines only the warm set. *)
  let shelve_split =
    match shelve with
    | None -> None
    | Some plan ->
      timed phases "shelve" (fun () -> Some (Shelve.split ~plan compiled))
  in
  let mined_input =
    match shelve_split with
    | None -> compiled
    | Some s -> s.Shelve.sv_warm
  in
  (* LTBO.2. A dictionary-relative build memoizes detection under the
     dictionary digest ([?salt]): the detection results themselves are
     the same, but the namespace split keeps rotation semantics honest —
     a rotated dictionary can never replay entries keyed to the old one
     (see Ltbo.detect_dict_ns). A shelve-composed build moves to its own
     "detectshelve" namespace with the policy digest folded in (combined
     with the dictionary digest when both apply): warm-set-only results
     must never alias full-set ones, and a changed plan can only miss. *)
  let dict_salt =
    Option.map (fun (d : Linker.dict) -> d.Linker.dct_digest) dict
  in
  let detect_salt, detect_ns =
    match shelve with
    | None -> (dict_salt, None)
    | Some plan ->
      let s =
        match dict_salt with
        | None -> plan.Shelve.sp_digest
        | Some d -> plan.Shelve.sp_digest ^ "+" ^ d
      in
      (Some s, Some "detectshelve")
  in
  let mined, outlined, ltbo_stats =
    if not config.Config.ltbo then (mined_input, [], None)
    else
      timed phases "ltbo" (fun () ->
          let options = Config.ltbo_options config in
          let digest_of =
            match cache with
            | None -> None
            | Some _ ->
              (* Indexed by position in the mined list; a method's slot is
                 its global index, so the compile-time digest array maps
                 through it even for the filtered warm set. *)
              let slot_at =
                Array.of_list
                  (List.map
                     (fun (cm : Compiled_method.t) -> cm.Compiled_method.slot)
                     mined_input)
              in
              Some (fun mi -> digests.(slot_at.(mi)))
          in
          let result =
            if config.Config.parallel_trees > 1 then
              Parallel.run ?cache ?digest_of ?salt:detect_salt ?ns:detect_ns
                ~options ~k:config.Config.parallel_trees mined_input
            else if config.Config.ltbo_rounds > 1 then
              Ltbo.run_rounds ?cache ?digest_of ?salt:detect_salt
                ?ns:detect_ns ~options ~rounds:config.Config.ltbo_rounds
                mined_input
            else
              Ltbo.run ?cache ?digest_of ?salt:detect_salt ?ns:detect_ns
                ~options mined_input
          in
          (result.Ltbo.methods, result.Ltbo.outlined, Some result.Ltbo.stats))
  in
  let linked_methods, shelf_input =
    match shelve_split with
    | None -> (mined, None)
    | Some s -> (mined @ s.Shelve.sv_stubs, s.Shelve.sv_shelf)
  in
  (* Final link: bind symbols, relocate calls (section 3.2); with a
     dictionary, bodies the store already carries bind to their shared
     slots instead of being placed locally. *)
  let oat =
    timed phases "link" (fun () ->
        Linker.link ~apk_name:apk.Dex_ir.apk_name
          ~thunks:(if config.Config.cto then Abi.all_thunks else [])
          ~extra:outlined ?dict ?shelve:shelf_input linked_methods)
  in
  let cto_hits =
    List.fold_left
      (fun acc (cm : Compiled_method.t) ->
        List.fold_left
          (fun acc (k, v) ->
            let cur = Option.value ~default:0 (List.assoc_opt k acc) in
            (k, cur + v) :: List.remove_assoc k acc)
          acc cm.Compiled_method.cto_hits)
      [] compiled
  in
  { b_config = config; b_oat = oat; b_timings = List.rev !phases;
    b_ltbo_stats = ltbo_stats; b_cto_hits = List.sort compare cto_hits;
    b_shelved =
      (match shelve_split with
       | None -> 0
       | Some s -> Shelve.shelved_count s) }

(* Convenience: text-segment size, the paper's headline metric. *)
let text_size b = Oat_file.text_size b.b_oat

let reduction_vs ~baseline b =
  let bs = float_of_int (text_size baseline) in
  (* An empty baseline text segment (an app with no methods) has nothing to
     reduce: report 0.0 rather than 0/0 = NaN, which would poison every
     downstream average and comparison. *)
  if bs = 0.0 then 0.0 else (bs -. float_of_int (text_size b)) /. bs
