(* The evaluation configurations of the paper's section 4.1. *)

open Calibro_dex.Dex_ir

type t = {
  name : string;
  optimize_ir : bool;     (** HGraph passes (all configs keep them on:
                              "all available code size optimization
                              enabled" in the baseline). *)
  cto : bool;             (** compilation-time outlining (3.1) *)
  ltbo : bool;            (** link-time binary outlining (3.2/3.3) *)
  parallel_trees : int;   (** 1 = single global suffix tree; >1 = PlOpti *)
  hot_methods : method_ref list;
      (** non-empty enables HfOpti: these methods outline only their
          slowpaths *)
  ltbo_min_length : int;
  ltbo_max_length : int;
  ltbo_rounds : int;
      (** whole-program outlining rounds (>1 harvests second-order repeats,
          the iteration Chabbi et al. use on iOS) *)
}

let baseline =
  { name = "Baseline"; optimize_ir = true; cto = false; ltbo = false;
    parallel_trees = 1; hot_methods = []; ltbo_min_length = 2;
    ltbo_max_length = 64; ltbo_rounds = 1 }

let cto = { baseline with name = "CTO"; cto = true }

let cto_ltbo = { cto with name = "CTO+LTBO"; ltbo = true }

let cto_ltbo_pl ?(k = 8) () =
  { cto_ltbo with name = "CTO+LTBO+PlOpti"; parallel_trees = k }

let cto_ltbo_pl_hf ?(k = 8) ~hot_methods () =
  { cto_ltbo with name = "CTO+LTBO+PlOpti+HfOpti"; parallel_trees = k;
    hot_methods }

(* The configuration matrix the correctness oracle sweeps: every evaluated
   Calibro variant, exercising CTO alone, the single global suffix tree,
   PlOpti at several K (partition boundaries move, so different cross-tree
   blindness), multi-round outlining and hot-function filtering. *)
let matrix ?(hot_methods = []) () =
  [ cto;
    cto_ltbo;
    { cto_ltbo with name = "CTO+LTBO+PlOpti(2)"; parallel_trees = 2 };
    { cto_ltbo with name = "CTO+LTBO+PlOpti(8)"; parallel_trees = 8 };
    { cto_ltbo with name = "CTO+LTBO+Rounds(2)"; ltbo_rounds = 2 };
    { cto_ltbo with name = "CTO+LTBO+Rounds(3)"; ltbo_rounds = 3 } ]
  @
  if hot_methods = [] then []
  else [ cto_ltbo_pl_hf ~k:8 ~hot_methods () ]

(* Parse a configuration name, for the CLI's --configs flag: "baseline",
   "cto", "ltbo", "plK" (K parallel trees), "roundsN", "hf" (hot-function
   filtering, needs a profile-derived hot set). *)
let of_string ?(hot_methods = []) s =
  let s = String.lowercase_ascii (String.trim s) in
  let num ~prefix =
    let p = String.length prefix in
    int_of_string_opt (String.sub s p (String.length s - p))
  in
  match s with
  | "baseline" -> Ok baseline
  | "cto" -> Ok cto
  | "ltbo" -> Ok cto_ltbo
  | "hf" ->
    Ok { (cto_ltbo_pl_hf ~k:8 ~hot_methods ()) with name = "hf" }
  | _ when String.length s > 2 && String.sub s 0 2 = "pl" -> (
    match num ~prefix:"pl" with
    | Some k when k >= 1 ->
      Ok { cto_ltbo with name = s; parallel_trees = k }
    | _ -> Error (Printf.sprintf "bad parallel-tree count in %S" s))
  | _ when String.length s > 6 && String.sub s 0 6 = "rounds" -> (
    match num ~prefix:"rounds" with
    | Some n when n >= 1 -> Ok { cto_ltbo with name = s; ltbo_rounds = n }
    | _ -> Error (Printf.sprintf "bad round count in %S" s))
  | _ -> Error (Printf.sprintf "unknown configuration %S" s)

let is_hot t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace tbl m ()) t.hot_methods;
  fun name -> Hashtbl.mem tbl name

let ltbo_options t =
  { Ltbo.min_length = t.ltbo_min_length; max_length = t.ltbo_max_length;
    is_hot = is_hot t }
