(* Instruction -> integer mapping for suffix-tree input (paper section
   3.3.2): "the encoding number of each instruction can be directly used in
   the sequence, except that all terminator instructions should be mapped
   to a single unique separator number".

   We map to a separator not just terminators but every word that a
   sound binary outliner must never move into an outlined function:

   - terminator instructions (the paper's rule);
   - PC-relative addressing instructions — their displacement is specific
     to one address, so a shared outlined copy cannot satisfy two call
     sites (the [bl sym] form is exempt: it is relocated by symbol, but it
     is a call and calls are excluded anyway);
   - calls and any instruction reading or writing x30 — the outlined
     function returns via [br x30], which both requires the entry [bl]'s
     link value to survive and forbids the body from depending on x30
     (DESIGN.md section 4.1);
   - embedded data words (known from the LTBO.1 metadata, not decoding);
   - words in offsets the policy rules out (hot non-slowpath code under
     hot-function filtering);
   - branch-target boundaries: a virtual separator is inserted *before*
     every branch target so no candidate sequence straddles one (a branch
     into the middle of an outlined body cannot be patched).

   Each separator value is unique, so no repeated subsequence can ever
   contain one (a repeat needs at least two occurrences). *)

open Calibro_aarch64
open Calibro_codegen

type element =
  | Word of int * int  (** (mapped value, byte offset in method) *)
  | Separator          (** unique value, no corresponding word *)

type allocator = { mutable next_sep : int }

let sep_base = 1 lsl 33 (* above any 32-bit encoding *)

let new_allocator () = { next_sep = sep_base }

let fresh_sep a =
  let v = a.next_sep in
  a.next_sep <- v + 1;
  v

(* [eligible off] is the policy hook (hot-function filtering); return false
   to exclude the word at [off]. *)
let map_method ?(eligible = fun _ -> true) (cm : Compiled_method.t) a :
    (int * element) list =
  let meta = cm.Compiled_method.meta in
  let code = cm.Compiled_method.code in
  let n_words = Bytes.length code / 4 in
  let branch_targets =
    List.fold_left
      (fun acc (_, tgt) -> tgt :: acc)
      [] meta.Meta.pc_rel
    |> List.sort_uniq compare
  in
  let is_target =
    let tbl = Hashtbl.create 16 in
    List.iter (fun t -> Hashtbl.replace tbl t ()) branch_targets;
    fun off -> Hashtbl.mem tbl off
  in
  let out = ref [] in
  for w = n_words - 1 downto 0 do
    let off = w * 4 in
    let word = Encode.word_of_bytes code off in
    let elt =
      if Meta.is_embedded meta off then (fresh_sep a, Separator)
      else if not (eligible off) then (fresh_sep a, Separator)
      else begin
        let instr = Decode.decode word in
        if Isa.is_terminator instr || Isa.is_call instr
           || Isa.is_pc_relative instr || Isa.reads_lr instr
           || Isa.writes_lr instr
        then (fresh_sep a, Separator)
        else (word, Word (word, off))
      end
    in
    out := elt :: !out;
    (* Boundary separator before a branch target (prepended since we walk
       backwards). *)
    if off > 0 && is_target off then out := (fresh_sep a, Separator) :: !out
  done;
  !out

(* ---- Canonical tokens and digests (compilation-cache fast path) --------

   Separator values are fresh per allocator, so two identical methods never
   produce equal [map_method] outputs. The canonical form abstracts the
   separator values away ([Separator] carries none), leaving exactly the
   information the detector's outcome depends on: which slots are words
   (and their values/offsets) and which are separators. Equal canonical
   forms therefore guarantee equal detection behavior, which is what lets
   the cache key a whole detection group by per-method digests. *)

let canonical ?eligible (cm : Compiled_method.t) : element list =
  List.map snd (map_method ?eligible cm (new_allocator ()))

let digest (elements : element list) : string =
  (* Streamed into the hash — no intermediate text. The token framing is
     still unambiguous: a tag byte per element, fixed-width ints for the
     word value and offset (the old printed form separated them with
     ':'/';' for the same reason). *)
  let module Chash = Calibro_chash.Chash in
  let st = Chash.init () in
  List.iter
    (function
      | Word (v, off) ->
        Chash.feed_string st "W";
        Chash.feed_int st v;
        Chash.feed_int st off
      | Separator -> Chash.feed_string st "S")
    elements;
  Chash.to_hex (Chash.finalize st)

let method_digest ?eligible cm = digest (canonical ?eligible cm)
