(** LTBO.2 — Linking-Time Binary code Outlining (paper section 3.3).

    Runs between per-method compilation and the final link. The four steps
    of section 3.3 map to: candidate selection (via {!Calibro_codegen.Meta}),
    repeat detection ({!Seq_map} + suffix tree), outlining (extract bodies
    ending in [br x30]; replace occurrences with relocated [bl]s), and
    PC-relative patching plus stackmap repositioning. *)

open Calibro_codegen

val outlined_sym_base : int
(** First symbol id given to outlined functions. *)

exception Ltbo_error of string
(** Raised when rewriting breaks an LTBO invariant (currently: stackmap
    consistency after repositioning). Typed so long-lived callers — the
    calibrod worker pool — can answer the offending request with an error
    instead of dying on an untyped [Failure]. *)

type options = {
  min_length : int;  (** shortest candidate sequence, in instructions *)
  max_length : int;  (** longest; bounds the tree traversal *)
  is_hot : Calibro_dex.Dex_ir.method_ref -> bool;
      (** hot-function filtering (section 3.4.2): hot methods participate
          only with their slowpath ranges *)
}

val default_options : options

type decision = {
  d_length : int;
  d_words : int array;
  d_occurrences : (int * int) list;  (** (method index, byte offset) *)
}

type stats = {
  s_candidate_methods : int;
  s_sequence_elements : int;
  s_tree_nodes : int;
  s_repeats_considered : int;
  s_outlined_functions : int;
  s_occurrences_replaced : int;
  s_instructions_saved : int;
}

val empty_stats : stats
val merge_stats : stats -> stats -> stats

val detect :
  ?cache:Calibro_cache.Cache.t ->
  ?digest_of:(int -> string option) ->
  ?salt:string ->
  ?ns:string ->
  options:options ->
  Compiled_method.t array ->
  int list ->
  decision list * stats
(** Detection over one group of method indices (one suffix tree). Pure with
    respect to shared state, so groups may run on separate domains
    ({!Parallel}).

    Detection is also a pure function of the group's token sequences, so
    with [?cache] whole-group results are memoized under a key built from
    the cache salt, the length bounds and each member's canonical token
    digest ({!Seq_map.digest}) — a hit skips sequence mapping, suffix-tree
    construction and selection entirely. [?digest_of] supplies digests
    already computed at compile time (global method index -> digest under
    the default eligibility policy); hot methods are always re-digested
    with their actual eligibility.

    [?salt] marks a dictionary-relative build: results move to the
    ["detectdict"] namespace and the salt (the dictionary digest) is
    folded into every key, so rotating the store dictionary misses
    cleanly instead of replaying results memoized under the old one.

    [?ns] overrides the memo namespace entirely; shelve-composed builds
    pass ["detectshelve"] with the combined policy digest as [?salt], so
    warm-set-only detection never aliases a full-set result. *)

val detect_result_to_json : decision list * stats -> Calibro_obs.Json.t
val detect_result_of_json :
  Calibro_obs.Json.t -> (decision list * stats) option
(** The memoization codec, exposed for tests. *)

type site = { st_off : int; st_len_words : int; st_sym : int }

val rewrite_method_sites : Compiled_method.t -> site list -> Compiled_method.t
(** Steps 3 and 4 for one method: replace each site with a [bl], rebuild
    the offset map, patch PC-relative instructions in the bytes, remap
    metadata and stackmaps, and validate the result.
    @raise Ltbo_error if stackmap consistency is broken (a bug). *)

type result = {
  methods : Compiled_method.t list;
  outlined : Calibro_oat.Linker.extra_function list;
  stats : stats;
}

val run_with :
  ?sym_base:int ->
  detect_results:(decision list * stats) list ->
  Compiled_method.t list ->
  result
(** Apply a set of detection results: allocate symbols (identical bodies
    are deduplicated), rewrite methods, merge statistics. *)

val run :
  ?cache:Calibro_cache.Cache.t ->
  ?digest_of:(int -> string option) ->
  ?salt:string ->
  ?ns:string ->
  ?options:options ->
  ?sym_base:int ->
  Compiled_method.t list ->
  result
(** Single global suffix tree (the paper's non-PlOpti configuration).
    [?cache]/[?digest_of]/[?salt] as in {!detect}. *)

val run_rounds :
  ?cache:Calibro_cache.Cache.t ->
  ?digest_of:(int -> string option) ->
  ?salt:string ->
  ?ns:string ->
  ?options:options ->
  rounds:int ->
  Compiled_method.t list ->
  result
(** Iterated whole-program outlining (related-work extension); stops early
    at a fixpoint. [?digest_of] only applies to the first round (later
    rounds see rewritten code). *)
