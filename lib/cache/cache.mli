(** Content-addressed compilation cache (ShareJIT-style, see PAPERS.md).

    Two tiers share one store:

    - a typed {b method} tier holding per-method compiled artifacts
      ({!Calibro_codegen.Compiled_method.t} plus the method's canonical
      LTBO token digest, computed once at store time);
    - a generic namespaced {b JSON} tier for any other deterministic
      intermediate (the pipeline memoizes per-group LTBO detection results
      there).

    Both tiers live in memory (FIFO eviction past [max_entries]) and,
    when [dir] is given, additionally on disk as one JSON file per entry
    serialized with the lib/obs codec. Every disk entry embeds a
    {!Calibro_chash.Chash} digest of its payload; a truncated, bit-flipped or otherwise unreadable entry is
    detected on load, counted in [cache.<ns>.disk_corrupt] and treated as
    a miss — corruption can cost a recompile, never wrong code.

    Keys are caller-computed content hashes (see {!key}); the store never
    interprets them. All operations are safe to call from PlOpti worker
    domains (the memory tiers are mutex-protected; disk writes go through
    a temp file and an atomic rename).

    Observability: per-namespace counters [cache.<ns>.hits] (memory),
    [.disk_hits], [.misses], [.stores], [.evictions], [.disk_corrupt],
    [.tmp_swept] are exported through {!Calibro_obs.Obs.Counter}. *)

type t

val create : ?dir:string -> ?max_entries:int -> unit -> t
(** [create ()] is a memory-only cache. [~dir] adds the on-disk tier
    rooted there (created on first store). [~max_entries] caps each
    in-memory tier, oldest-first eviction (default 65536); the disk tier
    is unbounded. Opening a disk tier sweeps orphan [*.tmp.*] files left
    by writers that died mid-store (counted per namespace in
    [cache.<ns>.tmp_swept]). *)

val dir : t -> string option

val salt : string
(** Codegen version salt. Bump {!version} whenever codegen, LTBO or the
    serialized formats change meaning: every key changes, so stale
    entries (memory or disk) can never be returned. *)

val key : string list -> string
(** [key parts] is the {!Calibro_chash.Chash} hex digest of [parts]
    (streamed, one pass) under an
    unambiguous length-prefixed framing (so [["ab";"c"]] and
    [["a";"bc"]] differ). Callers include {!salt} in [parts]. *)

(** {2 Typed method tier} *)

type method_entry = {
  ce_method : Calibro_codegen.Compiled_method.t;
  ce_token_digest : string;
      (** Canonical LTBO token digest of [ce_method]
          ({!Calibro_core.Seq_map} fast path), computed at store time. *)
}

val find_method : t -> string -> method_entry option
val add_method : t -> string -> method_entry -> unit

val method_entry_to_json : method_entry -> Calibro_obs.Json.t
val method_entry_of_json :
  Calibro_obs.Json.t -> (method_entry, string) result
(** The codec is exposed so tests can round-trip artifacts directly. *)

(** {2 Generic JSON tier} *)

val find_json : t -> ns:string -> string -> Calibro_obs.Json.t option
(** [ns] must not be ["method"] (reserved for the typed tier) and must be
    a single path component. *)

val add_json : t -> ns:string -> string -> Calibro_obs.Json.t -> unit

(** {2 Introspection (tests, fault injection)} *)

val entry_files : t -> string list
(** Every on-disk entry file under [dir], sorted; [[]] for a memory-only
    cache. The corruption tests hand these to {!Calibro_check.Fault}. *)

val mem_entries : t -> int
(** Total in-memory entries across both tiers. *)
