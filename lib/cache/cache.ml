(* Content-addressed compilation cache. See the interface for the contract.

   Layout on disk (when [dir] is set): one file per entry,

     <dir>/<ns>/<key>.json
       { "schema": 1, "ns": .., "key": ..,
         "payload_digest": <md5 hex of the payload's compact serialization>,
         "payload": .. }

   The digest makes corruption (truncation, bit flips, partial writes that
   survived a crash) detectable without trusting the payload shape; writes
   go through a temp file plus [Sys.rename] so readers only ever see whole
   files. A failed load of any kind is a miss, never an error. *)

open Calibro_codegen
module Dex = Calibro_dex.Dex_ir
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json
module Chash = Calibro_chash.Chash

(* v2: content hashing moved from MD5 to the CALIBRO_HASH-selected Chash
   backend. The version is part of every key's salt, so entries written
   under one version (or hash backend) are simply unreachable under
   another — no mixed-digest reads, no format sniffing. *)
let version = 2
let salt = Printf.sprintf "calibro-cache-v%d" version
let schema = 1
let method_ns = "method"

let key parts =
  let st = Chash.init () in
  List.iter
    (fun p ->
      (* length-prefixed so part boundaries can't alias *)
      Chash.feed_int st (String.length p);
      Chash.feed_string st p)
    parts;
  Chash.to_hex (Chash.finalize st)

let counter ns what = Obs.Counter.incr (Printf.sprintf "cache.%s.%s" ns what)

(* ---- Store ------------------------------------------------------------- *)

type method_entry = {
  ce_method : Compiled_method.t;
  ce_token_digest : string;
}

type 'v tier = { table : (string, 'v) Hashtbl.t; fifo : string Queue.t }

let new_tier () = { table = Hashtbl.create 256; fifo = Queue.create () }

type t = {
  dir : string option;
  max_entries : int;
  lock : Mutex.t;
  methods : method_entry tier;
  json : Json.t tier;  (* keys are "<ns>:<key>" *)
}

(* Orphan "*.json.tmp.<pid>.<domain>" files are the residue of a writer
   that died between [open_out_bin] and [Sys.rename] (kill -9, power
   loss — the in-process failure path unlinks its own tmp). Nothing ever
   reads them and their writers are gone, so sweep them when the store
   opens; a pid/domain suffix never collides with a live writer because
   live writers belong to *this* process, which has not written yet. *)
let has_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let sweep_tmp root =
  match Sys.readdir root with
  | exception Sys_error _ -> ()
  | namespaces ->
    Array.iter
      (fun ns ->
        let d = Filename.concat root ns in
        match Sys.readdir d with
        | exception Sys_error _ -> ()
        | files ->
          Array.iter
            (fun f ->
              if has_substring ~sub:".json.tmp." f then
                match Sys.remove (Filename.concat d f) with
                | () -> counter ns "tmp_swept"
                | exception Sys_error _ -> ())
            files)
      namespaces

let create ?dir ?(max_entries = 65536) () =
  Option.iter sweep_tmp dir;
  { dir;
    max_entries = max 1 max_entries;
    lock = Mutex.create ();
    methods = new_tier ();
    json = new_tier () }

let dir t = t.dir

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tier_find t tier k = with_lock t (fun () -> Hashtbl.find_opt tier.table k)

let tier_put t ~ns tier k v =
  with_lock t (fun () ->
      if not (Hashtbl.mem tier.table k) then begin
        Queue.push k tier.fifo;
        while Hashtbl.length tier.table >= t.max_entries do
          Hashtbl.remove tier.table (Queue.pop tier.fifo);
          counter ns "evictions"
        done
      end;
      Hashtbl.replace tier.table k v)

let mem_entries t =
  with_lock t (fun () ->
      Hashtbl.length t.methods.table + Hashtbl.length t.json.table)

(* ---- Compiled-method codec --------------------------------------------- *)

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  let digit v =
    Char.chr (if v < 10 then Char.code '0' + v else Char.code 'a' + v - 10)
  in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then fail "odd hex length %d" n;
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | c -> fail "bad hex digit %C" c
  in
  Bytes.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let want_int what j =
  match Json.get_int j with Some i -> i | None -> fail "%s: expected int" what

let want_str what j =
  match Json.get_str j with
  | Some s -> s
  | None -> fail "%s: expected string" what

let want_list what j =
  match Json.get_list j with
  | Some l -> l
  | None -> fail "%s: expected list" what

let want_bool what j =
  match j with Json.Bool b -> b | _ -> fail "%s: expected bool" what

let field what name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "%s: missing field %S" what name

let int_pair_to_json (a, b) = Json.List [ Json.Int a; Json.Int b ]

let int_pair_of_json what j =
  match want_list what j with
  | [ a; b ] -> (want_int what a, want_int what b)
  | _ -> fail "%s: expected pair" what

let range_to_json (r : Meta.range) = int_pair_to_json (r.Meta.r_start, r.Meta.r_len)

let range_of_json what j =
  let r_start, r_len = int_pair_of_json what j in
  { Meta.r_start; r_len }

let meta_to_json (m : Meta.t) =
  Json.Obj
    [ ("embedded", Json.List (List.map range_to_json m.Meta.embedded));
      ("pc_rel", Json.List (List.map int_pair_to_json m.Meta.pc_rel));
      ("terminators", Json.List (List.map (fun i -> Json.Int i) m.Meta.terminators));
      ("calls", Json.List (List.map (fun i -> Json.Int i) m.Meta.calls));
      ("slowpaths", Json.List (List.map range_to_json m.Meta.slowpaths));
      ("has_indirect_jump", Json.Bool m.Meta.has_indirect_jump);
      ("is_native", Json.Bool m.Meta.is_native) ]

let meta_of_json j =
  let f name = field "meta" name j in
  { Meta.embedded = List.map (range_of_json "meta.embedded") (want_list "meta.embedded" (f "embedded"));
    pc_rel = List.map (int_pair_of_json "meta.pc_rel") (want_list "meta.pc_rel" (f "pc_rel"));
    terminators = List.map (want_int "meta.terminators") (want_list "meta.terminators" (f "terminators"));
    calls = List.map (want_int "meta.calls") (want_list "meta.calls" (f "calls"));
    slowpaths = List.map (range_of_json "meta.slowpaths") (want_list "meta.slowpaths" (f "slowpaths"));
    has_indirect_jump = want_bool "meta.has_indirect_jump" (f "has_indirect_jump");
    is_native = want_bool "meta.is_native" (f "is_native") }

let stackmap_entry_to_json (e : Stackmap.entry) =
  Json.List
    [ Json.Int e.Stackmap.native_pc; Json.Int e.Stackmap.dex_pc;
      Json.Int e.Stackmap.live_vregs ]

let stackmap_entry_of_json j =
  match want_list "stackmap" j with
  | [ a; b; c ] ->
    { Stackmap.native_pc = want_int "stackmap.native_pc" a;
      dex_pc = want_int "stackmap.dex_pc" b;
      live_vregs = want_int "stackmap.live_vregs" c }
  | _ -> fail "stackmap: expected triple"

let method_entry_to_json { ce_method = m; ce_token_digest } =
  Json.Obj
    [ ("class", Json.Str m.Compiled_method.name.Dex.class_name);
      ("method", Json.Str m.Compiled_method.name.Dex.method_name);
      ("slot", Json.Int m.Compiled_method.slot);
      ("code", Json.Str (hex_of_bytes m.Compiled_method.code));
      ("relocs", Json.List (List.map int_pair_to_json m.Compiled_method.relocs));
      ("meta", meta_to_json m.Compiled_method.meta);
      ( "stackmap",
        Json.List (List.map stackmap_entry_to_json m.Compiled_method.stackmap) );
      ("num_params", Json.Int m.Compiled_method.num_params);
      ("is_entry", Json.Bool m.Compiled_method.is_entry);
      ( "cto_hits",
        Json.List
          (List.map
             (fun (k, v) -> Json.List [ Json.Str k; Json.Int v ])
             m.Compiled_method.cto_hits) );
      ("token_digest", Json.Str ce_token_digest) ]

let method_entry_of_json j =
  try
    let f name = field "method" name j in
    let cto_hit j =
      match want_list "cto_hits" j with
      | [ k; v ] -> (want_str "cto_hits.key" k, want_int "cto_hits.count" v)
      | _ -> fail "cto_hits: expected pair"
    in
    Ok
      { ce_method =
          { Compiled_method.name =
              { Dex.class_name = want_str "class" (f "class");
                method_name = want_str "method" (f "method") };
            slot = want_int "slot" (f "slot");
            code = bytes_of_hex (want_str "code" (f "code"));
            relocs = List.map (int_pair_of_json "relocs") (want_list "relocs" (f "relocs"));
            meta = meta_of_json (f "meta");
            stackmap =
              List.map stackmap_entry_of_json (want_list "stackmap" (f "stackmap"));
            num_params = want_int "num_params" (f "num_params");
            is_entry = want_bool "is_entry" (f "is_entry");
            cto_hits = List.map cto_hit (want_list "cto_hits" (f "cto_hits")) };
        ce_token_digest = want_str "token_digest" (f "token_digest") }
  with Decode why -> Error why

(* ---- Disk tier --------------------------------------------------------- *)

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> () (* concurrent creator *)
  end

let check_ns ns =
  if ns = "" || String.exists (fun c -> c = '/' || c = '.') ns then
    invalid_arg (Printf.sprintf "Cache: bad namespace %S" ns)

let disk_path t ~ns k =
  match t.dir with
  | None -> None
  | Some root -> Some (Filename.concat (Filename.concat root ns) (k ^ ".json"))

let disk_write t ~ns k payload =
  match disk_path t ~ns k with
  | None -> ()
  | Some path -> (
    try
      mkdir_p (Filename.dirname path);
      (* Serialize the payload exactly once: the string is digested and
         then spliced into the document between hand-written envelope
         fields, instead of serializing the payload a second time inside
         [Json.to_string doc]. The envelope values are schema-controlled
         (int, namespace, hex key), so the splice cannot produce invalid
         JSON; [disk_read] still parses the result as an ordinary
         document. *)
      let payload_str = Json.to_string payload in
      (* Byte-identical to [Json.to_string doc] for the five-field
         document the old writer built. *)
      let doc_str =
        String.concat ""
          [ Printf.sprintf "{\"schema\":%d," schema;
            Printf.sprintf "\"ns\":%s," (Json.to_string (Json.Str ns));
            Printf.sprintf "\"key\":%s," (Json.to_string (Json.Str k));
            Printf.sprintf "\"payload_digest\":\"%s\","
              (Chash.to_hex (Chash.string payload_str));
            "\"payload\":"; payload_str; "}" ]
      in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
          (Domain.self () :> int)
      in
      (* The tmp file must not outlive this call: if anything between
         [open_out_bin] and [Sys.rename] fails (disk full, destination
         unwritable), unlink it instead of leaking an orphan per failed
         store. After a successful rename the path no longer exists and
         the remove is a no-op. *)
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc doc_str);
          Sys.rename tmp path)
    with Sys_error _ | Unix.Unix_error _ ->
      (* A full disk or permission problem degrades to memory-only. *)
      counter ns "disk_write_errors")

(* Load and verify one disk entry; any failure whatsoever is a miss (and,
   past mere absence, a [disk_corrupt] tick). *)
let disk_read t ~ns k : Json.t option =
  match disk_path t ~ns k with
  | None -> None
  | Some path ->
    if not (Sys.file_exists path) then None
    else begin
      let corrupt () =
        counter ns "disk_corrupt";
        None
      in
      let raw =
        try
          let ic = open_in_bin path in
          Some
            (Fun.protect
               ~finally:(fun () -> close_in ic)
               (fun () -> really_input_string ic (in_channel_length ic)))
        with Sys_error _ | End_of_file -> None
      in
      match raw with
      | None -> corrupt ()
      | Some raw -> (
        match Json.parse raw with
        | Error _ -> corrupt ()
        | Ok doc ->
          let str name = Option.bind (Json.member name doc) Json.get_str in
          let int name = Option.bind (Json.member name doc) Json.get_int in
          (match (int "schema", str "ns", str "key", str "payload_digest",
                  Json.member "payload" doc)
           with
           | Some s, Some n, Some k', Some d, Some payload
             when s = schema && n = ns && k' = k
                  && Chash.to_hex (Chash.string (Json.to_string payload)) = d
             -> Some payload
           | _ -> corrupt ()))
    end

(* ---- Public lookups ----------------------------------------------------- *)

let find_method t k =
  match tier_find t t.methods k with
  | Some e ->
    counter method_ns "hits";
    Some e
  | None -> (
    match disk_read t ~ns:method_ns k with
    | None ->
      counter method_ns "misses";
      None
    | Some payload -> (
      match method_entry_of_json payload with
      | Ok e ->
        counter method_ns "disk_hits";
        tier_put t ~ns:method_ns t.methods k e;
        Some e
      | Error _ ->
        (* Digest-valid file of the wrong shape: treat like corruption. *)
        counter method_ns "disk_corrupt";
        counter method_ns "misses";
        None))

let add_method t k e =
  counter method_ns "stores";
  tier_put t ~ns:method_ns t.methods k e;
  disk_write t ~ns:method_ns k (method_entry_to_json e)

let json_key ~ns k = ns ^ ":" ^ k

let find_json t ~ns k =
  check_ns ns;
  if ns = method_ns then invalid_arg "Cache.find_json: reserved namespace";
  match tier_find t t.json (json_key ~ns k) with
  | Some v ->
    counter ns "hits";
    Some v
  | None -> (
    match disk_read t ~ns k with
    | None ->
      counter ns "misses";
      None
    | Some payload ->
      counter ns "disk_hits";
      tier_put t ~ns t.json (json_key ~ns k) payload;
      Some payload)

let add_json t ~ns k v =
  check_ns ns;
  if ns = method_ns then invalid_arg "Cache.add_json: reserved namespace";
  counter ns "stores";
  tier_put t ~ns t.json (json_key ~ns k) v;
  disk_write t ~ns k v

let entry_files t =
  match t.dir with
  | None -> []
  | Some root ->
    if not (Sys.file_exists root) then []
    else
      Sys.readdir root |> Array.to_list
      |> List.concat_map (fun ns ->
             let d = Filename.concat root ns in
             if Sys.is_directory d then
               Sys.readdir d |> Array.to_list
               |> List.filter (fun f -> Filename.check_suffix f ".json")
               |> List.map (Filename.concat d)
             else [])
      |> List.sort compare
