(** The PGO drift loop: continuous re-optimization of served builds from
    streamed client profiles (ARTist-style PGO-as-a-service).

    Lifecycle, per app digest (the {!Calibro_chash.Chash} of its dexsim
    text):

    + a normal build registers the app with {!Manager.note_build} — the
      request key and the hot-method set its OAT was built with;
    + each [Profile_report] frame feeds {!Manager.report}: the sample
      profile is merged into a decayed-window accumulator, the
      accumulator's hot set is compared against the served one with the
      mass-weighted Jaccard distance ({!Drift.score}), and once the score
      stays over [threshold] for [hysteresis] consecutive reports the
      manager hands back a relink key — the original request with its
      profile replaced by the merge of the streak's reports;
    + the server queues that key through the ordinary worker pool; the
      worker rebuilds it (warm, through the shared cache) and lands the
      result with {!Manager.relink_done};
    + subsequent [Build] requests for the exact same key are answered
      from the refreshed OAT ({!Manager.refreshed}) — clients converge
      to the drifted profile without ever changing their request.

    Hysteresis makes noise harmless: a report scoring under the threshold
    resets the streak, so only a *sustained* shift relinks, and the
    in-flight latch means at most one relink per detected drift. *)

open Calibro_dex.Dex_ir

type config = {
  threshold : float;
      (** drift score above which a report counts toward the streak *)
  hysteresis : int;
      (** consecutive over-threshold reports required to relink *)
  decay : float;
      (** accumulator aging per report: [acc <- merge (decay acc) r] *)
  coverage : float;  (** hot-set coverage, the paper's 0.8 *)
}

val default_config : config
(** threshold 0.3, hysteresis 3, decay 0.5, coverage 0.8. *)

module Drift : sig
  val score :
    profile:Calibro_profile.Profile.t ->
    served:method_ref list -> current:method_ref list -> float
  (** Mass-weighted Jaccard distance between two hot sets:
      [1 - mass(served ∩ current) / mass(served ∪ current)], each
      method's mass its cycle count in [profile]. 0 for identical sets,
      1 for disjoint ones (with non-zero mass), monotone in displaced
      execution time; an empty union scores 0. *)
end

type build_key = {
  bk_config : Calibro_core.Config.t;
  bk_dexsim : string;
  bk_profile : string option;
  bk_dict : string option;
  bk_shelve : float option;
}
(** A build request minus its deadline — what "the same build" means
    across the feedback loop. Mirrors the wire request; defined here so
    [lib/server] can depend on [lib/pgo] without a cycle. [bk_shelve]
    rides through a relink untouched: the relink key carries the drift
    streak's profile, so the worker re-derives the shelving plan from the
    *new* regime — methods that turned hot are unshelved by the very same
    mechanism that re-links them. *)

type app_totals = {
  p_reports : int;
  p_drift_detected : int;
  p_relinks : int;
  p_relink_cache_hits : int;
}

module Manager : sig
  type t
  (** Thread-safe: callable from reader threads and worker domains alike
      (one mutex; no Obs access outside {!mirror_counters}). *)

  val create : ?config:config -> unit -> t

  val config : t -> config

  val note_build : t -> digest:string -> app:string -> key:build_key ->
    hot:method_ref list -> unit
  (** A build of [key] (app digest [digest], apk name [app]) completed
      with hot-method set [hot]. First sight registers the app; the same
      key again is a no-op; a different key resets the drift state (the
      old OAT is gone) while keeping the app's tallies. *)

  val refreshed : t -> digest:string -> key:build_key ->
    (Calibro_oat.Oat_file.t * float) option
  (** The relinked OAT (and its build seconds) to serve for [key], if a
      relink has landed and [key] is exactly the registered one. *)

  type report_outcome =
    | Unknown
        (** no build of this digest was ever registered here — the
            caller answers a typed [Unknown_app] *)
    | Ack of { drift : float; relink : build_key option }
        (** the report was merged; [relink] is [Some key] iff this very
            report crossed the hysteresis and the caller should queue an
            incremental re-link of [key] *)

  val report : t -> digest:string -> profile:Calibro_profile.Profile.t ->
    allow_relink:bool -> report_outcome
  (** Merge one client report. [allow_relink:false] (a draining daemon)
      still merges and scores but never schedules. If the outcome
      carries a relink key the in-flight latch is set: the caller must
      eventually call {!relink_done} or {!relink_failed}. *)

  val relink_done : t -> digest:string -> oat:Calibro_oat.Oat_file.t ->
    build_s:float -> hot:method_ref list -> cache_hits:int -> unit
  (** The queued relink landed: serve [oat] to matching builds, measure
      drift against [hot] from now on, count [cache_hits] method/detect
      cache hits the warm rebuild scored. *)

  val relink_failed : t -> digest:string -> unit
  (** The queued relink could not run (build failure or full/closed
      admission queue): clear the latch so a later drift can retry. *)

  val totals : t -> (string * app_totals) list
  (** Per-app tallies so far, sorted by app name; safe to call live. *)

  val mirror_counters : t -> unit
  (** Add the tallies to the [pgo.<app>.{reports,drift_detected,relinks,
      relink_cache_hits}] Obs counters and zero them. Single-writer
      counter discipline: only call once readers and workers have
      stopped ({!Calibro_server.Server.drain} does). *)
end
