(* The PGO drift loop (ARTist-style continuous re-optimization). See
   pgo.mli for the lifecycle; this file is the accumulator, the drift
   metric and the per-app state machine.

   Thread model: the manager is called from calibrod's reader threads
   (`report`) and worker domains (`refreshed`, `note_build`,
   `relink_done`) concurrently; one mutex over the whole table keeps
   every transition atomic. Nothing here touches Obs counters except
   [mirror_counters], which the server calls once after its workers and
   readers have stopped. *)

open Calibro_dex.Dex_ir
module Profile = Calibro_profile.Profile
module Obs = Calibro_obs.Obs

type config = {
  threshold : float;
  hysteresis : int;
  decay : float;
  coverage : float;
}

let default_config =
  { threshold = 0.3; hysteresis = 3; decay = 0.5; coverage = 0.8 }

(* ---- The drift metric -------------------------------------------------- *)

module Drift = struct
  (* Mass-weighted Jaccard distance between the hot set the served OAT
     was built with and the hot set the accumulated profile selects now:
     1 - mass(S cap C) / mass(S cup C), with each method's mass its cycle
     count in [profile]. Weighting by mass (not cardinality) makes the
     score monotone in *displaced execution time*: a cold tail method
     swapping in or out barely moves it, the former #1 method going cold
     moves it a lot. Both sets identical gives 0; disjoint sets give 1;
     an empty union (no evidence either way) gives 0. *)
  let score ~(profile : Profile.t) ~(served : method_ref list)
      ~(current : method_ref list) =
    let mass_of =
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (s : Profile.sample) ->
          Hashtbl.replace tbl s.Profile.s_method
            (s.Profile.s_cycles
            + Option.value ~default:0 (Hashtbl.find_opt tbl s.Profile.s_method)))
        profile;
      fun m -> Option.value ~default:0 (Hashtbl.find_opt tbl m)
    in
    let s = List.sort_uniq compare served
    and c = List.sort_uniq compare current in
    let mass l = List.fold_left (fun a m -> a + mass_of m) 0 l in
    let inter = List.filter (fun m -> List.mem m s) c in
    let union = List.sort_uniq compare (s @ c) in
    let mu = mass union in
    if mu = 0 then 0.0
    else 1.0 -. (float_of_int (mass inter) /. float_of_int mu)
end

(* ---- Per-app state ------------------------------------------------------ *)

(* What identifies "the same build request" across the feedback loop —
   the wire request minus its deadline (a retry with a different deadline
   is still the same app and config). Mirrors
   [Calibro_server.Protocol.build_request]; defined here so lib/server
   can depend on lib/pgo without a cycle. *)
type build_key = {
  bk_config : Calibro_core.Config.t;
  bk_dexsim : string;
  bk_profile : string option;
  bk_dict : string option;
  bk_shelve : float option;
}

type app_totals = {
  p_reports : int;
  p_drift_detected : int;
  p_relinks : int;
  p_relink_cache_hits : int;
}

type entry = {
  e_app : string;  (* apk name, for the pgo.<app>.* counters *)
  mutable e_key : build_key;  (* the request whose OAT clients run *)
  mutable e_hot : method_ref list;  (* hot set the served OAT used *)
  mutable e_acc : Profile.t;  (* decayed-window accumulator *)
  mutable e_streak : int;  (* consecutive over-threshold reports *)
  mutable e_streak_prof : Profile.t;  (* merge of the streak's reports *)
  mutable e_inflight : bool;  (* a relink is queued or running *)
  mutable e_refreshed : (Calibro_oat.Oat_file.t * float) option;
      (* relinked OAT + its build seconds, served to matching Builds *)
  mutable e_reports : int;
  mutable e_drift_detected : int;
  mutable e_relinks : int;
  mutable e_relink_cache_hits : int;
}

module Manager = struct
  type t = {
    cfg : config;
    lock : Mutex.t;
    entries : (string, entry) Hashtbl.t;  (* keyed by app digest *)
  }

  let create ?(config = default_config) () =
    { cfg = config; lock = Mutex.create (); entries = Hashtbl.create 16 }

  let config t = t.cfg

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let fresh_entry ~app ~key ~hot =
    { e_app = app;
      e_key = key;
      e_hot = hot;
      e_acc = [];
      e_streak = 0;
      e_streak_prof = [];
      e_inflight = false;
      e_refreshed = None;
      e_reports = 0;
      e_drift_detected = 0;
      e_relinks = 0;
      e_relink_cache_hits = 0 }

  (* A build of [key] completed normally. First build registers the app;
     a repeat of the same key leaves the drift state alone (the serving
     path replays builds constantly); a *different* key means the app or
     its config was re-shipped — the old served hot set and accumulator
     describe an OAT nobody runs anymore, so start over. *)
  let note_build t ~digest ~app ~key ~hot =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries digest with
    | None -> Hashtbl.add t.entries digest (fresh_entry ~app ~key ~hot)
    | Some e ->
      if e.e_key <> key then begin
        let reports = e.e_reports
        and drift = e.e_drift_detected
        and relinks = e.e_relinks
        and hits = e.e_relink_cache_hits in
        let e' = fresh_entry ~app ~key ~hot in
        (* tallies survive a reset: they count the app, not the key *)
        e'.e_reports <- reports;
        e'.e_drift_detected <- drift;
        e'.e_relinks <- relinks;
        e'.e_relink_cache_hits <- hits;
        Hashtbl.replace t.entries digest e'
      end

  (* The refreshed OAT for [key], if a relink has landed since the build
     that [note_build] registered. Only an exact key match may be served
     stale-free — a different config or app text must build for real. *)
  let refreshed t ~digest ~key =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries digest with
    | Some e when e.e_key = key -> e.e_refreshed
    | _ -> None

  type report_outcome =
    | Unknown  (* no build of this app digest ever registered *)
    | Ack of { drift : float; relink : build_key option }

  let report t ~digest ~(profile : Profile.t) ~allow_relink =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries digest with
    | None -> Unknown
    | Some e ->
      e.e_reports <- e.e_reports + 1;
      e.e_acc <- Profile.merge (Profile.decay ~factor:t.cfg.decay e.e_acc)
                   profile;
      let current = Profile.hot_set ~coverage:t.cfg.coverage e.e_acc in
      let drift =
        Drift.score ~profile:e.e_acc ~served:e.e_hot ~current
      in
      if drift > t.cfg.threshold then begin
        e.e_drift_detected <- e.e_drift_detected + 1;
        e.e_streak <- e.e_streak + 1;
        (* The relink profile is the merge of the streak's reports only:
           all collected after the drift began, so its hot set is the
           *new* regime's, undiluted by the accumulator's decayed history
           — which is what makes the relinked OAT byte-identical to a
           from-scratch build against the drifted profile. *)
        e.e_streak_prof <- Profile.merge e.e_streak_prof profile
      end
      else begin
        e.e_streak <- 0;
        e.e_streak_prof <- []
      end;
      let relink =
        if
          e.e_streak >= t.cfg.hysteresis && (not e.e_inflight)
          && allow_relink
        then begin
          e.e_inflight <- true;
          Some { e.e_key with bk_profile =
                                Some (Profile.to_string e.e_streak_prof) }
        end
        else None
      in
      Ack { drift; relink }

  let relink_done t ~digest ~oat ~build_s ~hot ~cache_hits =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries digest with
    | None -> ()
    | Some e ->
      e.e_refreshed <- Some (oat, build_s);
      e.e_hot <- hot;
      (* The streak profile becomes the accumulator: the drift loop now
         measures against the regime the relink just adopted, so steady
         post-drift reports score ~0 and a single drift relinks once. *)
      e.e_acc <- e.e_streak_prof;
      e.e_streak <- 0;
      e.e_streak_prof <- [];
      e.e_relinks <- e.e_relinks + 1;
      e.e_relink_cache_hits <- e.e_relink_cache_hits + max 0 cache_hits;
      e.e_inflight <- false

  (* The relink could not run (build failure, or the admission queue was
     full/closed): clear the in-flight latch so a later over-threshold
     report may schedule again, and drop the streak — its profile was
     consumed by the attempt. *)
  let relink_failed t ~digest =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.entries digest with
    | None -> ()
    | Some e ->
      e.e_inflight <- false;
      e.e_streak <- 0;
      e.e_streak_prof <- []

  let totals t =
    locked t @@ fun () ->
    Hashtbl.fold
      (fun _ e acc ->
        ( e.e_app,
          { p_reports = e.e_reports;
            p_drift_detected = e.e_drift_detected;
            p_relinks = e.e_relinks;
            p_relink_cache_hits = e.e_relink_cache_hits } )
        :: acc)
      t.entries []
    |> List.sort compare

  (* Mirror the per-app tallies into pgo.<app>.* Obs counters, zeroing
     them so a second mirror (e.g. two drains) cannot double-count. Obs
     counters are single-writer-per-domain: call only after the server's
     readers and workers have stopped, like [Server.drain]'s own
     mirroring. *)
  let mirror_counters t =
    locked t @@ fun () ->
    Hashtbl.iter
      (fun _ e ->
        let c what v =
          if v > 0 then
            Obs.Counter.add (Printf.sprintf "pgo.%s.%s" e.e_app what) v
        in
        c "reports" e.e_reports;
        c "drift_detected" e.e_drift_detected;
        c "relinks" e.e_relinks;
        c "relink_cache_hits" e.e_relink_cache_hits;
        e.e_reports <- 0;
        e.e_drift_detected <- 0;
        e.e_relinks <- 0;
        e.e_relink_cache_hits <- 0)
      t.entries
end
