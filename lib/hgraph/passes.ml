(* HGraph optimization passes, mirroring what dex2oat runs before code
   generation (paper section 5: constant propagation, copy propagation,
   common subexpression elimination, dead code elimination, branch
   simplification).

   All passes are semantics-preserving; the end-to-end differential tests
   in the VM compare program behaviour with passes on and off. Arithmetic
   here must agree with {!Calibro_vm}: both use native OCaml [int]
   semantics (the simulator models a 63-bit machine; see DESIGN.md). *)

open Calibro_dex.Dex_ir
open Hgraph

exception Pass_error of string
(* The typed failure for a method whose graph breaks verification after a
   pass — per-method damage, so a long-lived caller (the calibrod worker)
   can fail the one request instead of dying on an untyped [Failure]. *)

(* Evaluate a binary operation the same way the simulated machine does.
   Division by zero is never evaluated here (guarded by the caller). *)
let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> a / b
  | Rem -> a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b

let eval_cmp c a b =
  match c with
  | Eq -> a = b | Ne -> a <> b | Lt -> a < b
  | Le -> a <= b | Gt -> a > b | Ge -> a >= b

(* ---- Constant folding (local) ---------------------------------------- *)

let const_fold (g : t) =
  let changed = ref false in
  Array.iter
    (fun b ->
      let consts : (vreg, int) Hashtbl.t = Hashtbl.create 8 in
      let kill d = Hashtbl.remove consts d in
      let known r = Hashtbl.find_opt consts r in
      let rewrite insn =
        let fold d v =
          changed := true;
          Hashtbl.replace consts d v;
          Some (HConst (d, v))
        in
        match insn with
        | HConst (d, v) -> Hashtbl.replace consts d v; Some insn
        | HMove (d, a) -> (
          match known a with
          | Some v -> fold d v
          | None -> kill d; Some insn)
        | HBinop (op, d, a, bb) -> (
          match (known a, known bb) with
          | Some va, Some vb when not ((op = Div || op = Rem) && vb = 0) ->
            fold d (eval_binop op va vb)
          | _, Some vb when op <> Div && op <> Rem ->
            kill d;
            changed := true;
            Some (HBinop_lit (op, d, a, vb))
          | _ -> kill d; Some insn)
        | HBinop_lit (op, d, a, v) -> (
          match known a with
          | Some va when not ((op = Div || op = Rem) && v = 0) ->
            fold d (eval_binop op va v)
          | _ -> kill d; Some insn)
        | HDiv_zero_check r -> (
          match known r with
          | Some v when v <> 0 ->
            changed := true;
            None (* provably non-zero: drop the check *)
          | _ -> Some insn)
        | other ->
          Option.iter kill (insn_def other);
          Some other
      in
      b.insns <- List.filter_map rewrite b.insns;
      (* Fold the terminator when its operands are known. *)
      let goto t = changed := true; TGoto t in
      b.term <-
        (match b.term with
         | TIf (c, x, y, t, f) as term -> (
           match (known x, known y) with
           | Some vx, Some vy -> goto (if eval_cmp c vx vy then t else f)
           | _ -> term)
         | TIfz (c, x, t, f) as term -> (
           match known x with
           | Some vx -> goto (if eval_cmp c vx 0 then t else f)
           | None -> term)
         | TSwitch (v, cases, default) as term -> (
           match known v with
           | Some vv ->
             goto
               (if vv >= 0 && vv < List.length cases then List.nth cases vv
                else default)
           | None -> term)
         | term -> term))
    g.blocks;
  !changed

(* ---- Copy propagation (local) ----------------------------------------- *)

let copy_prop (g : t) =
  let changed = ref false in
  Array.iter
    (fun b ->
      let copies : (vreg, vreg) Hashtbl.t = Hashtbl.create 8 in
      let resolve r =
        match Hashtbl.find_opt copies r with
        | Some src -> changed := true; src
        | None -> r
      in
      let kill d =
        Hashtbl.remove copies d;
        (* any copy whose source was d is no longer valid *)
        let stale =
          Hashtbl.fold (fun k v acc -> if v = d then k :: acc else acc) copies []
        in
        List.iter (Hashtbl.remove copies) stale
      in
      let subst insn =
        let s = resolve in
        match insn with
        | HConst _ | HConst_string _ | HNew_instance _ -> insn
        | HMove (d, a) -> HMove (d, s a)
        | HBinop (op, d, a, bb) -> HBinop (op, d, s a, s bb)
        | HBinop_lit (op, d, a, v) -> HBinop_lit (op, d, s a, v)
        | HInvoke (m, args, res) -> HInvoke (m, List.map s args, res)
        | HInvoke_runtime (f, args, res) ->
          HInvoke_runtime (f, List.map s args, res)
        | HNull_check a -> HNull_check (s a)
        | HBounds_check (i, a) -> HBounds_check (s i, s a)
        | HDiv_zero_check a -> HDiv_zero_check (s a)
        | HIget (d, o, off) -> HIget (d, s o, off)
        | HIput (v, o, off) -> HIput (s v, s o, off)
        | HAget (d, a, i) -> HAget (d, s a, s i)
        | HAput (v, a, i) -> HAput (s v, s a, s i)
        | HArray_len (d, a) -> HArray_len (d, s a)
      in
      b.insns <-
        List.map
          (fun insn ->
            let insn = subst insn in
            (match insn with
             | HMove (d, a) when d <> a ->
               kill d;
               Hashtbl.replace copies d a
             | _ -> Option.iter kill (insn_def insn));
            insn)
          b.insns;
      b.term <-
        (match b.term with
         | TIf (c, x, y, t, f) -> TIf (c, resolve x, resolve y, t, f)
         | TIfz (c, x, t, f) -> TIfz (c, resolve x, t, f)
         | TSwitch (v, cases, d) -> TSwitch (resolve v, cases, d)
         | TReturn (Some r) -> TReturn (Some (resolve r))
         | term -> term))
    g.blocks;
  !changed

(* ---- Local common subexpression elimination ---------------------------- *)

type expr_key = E_binop of binop * vreg * vreg | E_binop_lit of binop * vreg * int

let cse (g : t) =
  let changed = ref false in
  Array.iter
    (fun b ->
      let exprs : (expr_key, vreg) Hashtbl.t = Hashtbl.create 8 in
      let kill d =
        (* drop expressions that read or produced d *)
        let stale =
          Hashtbl.fold
            (fun k v acc ->
              let reads =
                match k with
                | E_binop (_, a, bb) -> a = d || bb = d
                | E_binop_lit (_, a, _) -> a = d
              in
              if reads || v = d then k :: acc else acc)
            exprs []
        in
        List.iter (Hashtbl.remove exprs) stale
      in
      b.insns <-
        List.map
          (fun insn ->
            match insn with
            | HBinop (op, d, a, bb) when insn_is_pure insn -> (
              match Hashtbl.find_opt exprs (E_binop (op, a, bb)) with
              | Some prev when prev <> d ->
                changed := true;
                kill d;
                HMove (d, prev)
              | _ ->
                kill d;
                Hashtbl.replace exprs (E_binop (op, a, bb)) d;
                insn)
            | HBinop_lit (op, d, a, v) when insn_is_pure insn -> (
              match Hashtbl.find_opt exprs (E_binop_lit (op, a, v)) with
              | Some prev when prev <> d ->
                changed := true;
                kill d;
                HMove (d, prev)
              | _ ->
                kill d;
                Hashtbl.replace exprs (E_binop_lit (op, a, v)) d;
                insn)
            | insn ->
              Option.iter kill (insn_def insn);
              insn)
          b.insns)
    g.blocks;
  !changed

(* ---- Dead code elimination (global liveness) --------------------------- *)

module VSet = Set.Make (Int)

let dce (g : t) =
  let nb = Array.length g.blocks in
  if nb = 0 then false
  else begin
    let live_in = Array.make nb VSet.empty in
    let block_live_out b =
      List.fold_left
        (fun acc s -> VSet.union acc live_in.(s))
        VSet.empty
        (successors g.blocks.(b).term)
    in
    (* Fixpoint over live_in. *)
    let changed_flow = ref true in
    while !changed_flow do
      changed_flow := false;
      for b = nb - 1 downto 0 do
        let blk = g.blocks.(b) in
        let live = ref (block_live_out b) in
        live := VSet.union !live (VSet.of_list (term_uses blk.term));
        List.iter
          (fun insn ->
            (match insn_def insn with
             | Some d -> live := VSet.remove d !live
             | None -> ());
            live := VSet.union !live (VSet.of_list (insn_uses insn)))
          (List.rev blk.insns);
        if not (VSet.equal !live live_in.(b)) then begin
          live_in.(b) <- !live;
          changed_flow := true
        end
      done
    done;
    (* Sweep: drop pure instructions whose definition is dead. *)
    let changed = ref false in
    Array.iteri
      (fun bidx blk ->
        let live = ref (block_live_out bidx) in
        live := VSet.union !live (VSet.of_list (term_uses blk.term));
        let kept =
          List.fold_left
            (fun kept insn ->
              let dead =
                insn_is_pure insn
                &&
                match insn_def insn with
                | Some d -> not (VSet.mem d !live)
                | None -> true
              in
              if dead then begin
                changed := true;
                kept
              end
              else begin
                (match insn_def insn with
                 | Some d -> live := VSet.remove d !live
                 | None -> ());
                live := VSet.union !live (VSet.of_list (insn_uses insn));
                insn :: kept
              end)
            []
            (List.rev blk.insns)
        in
        blk.insns <- kept)
      g.blocks;
    !changed
  end

(* ---- Branch simplification and unreachable-code removal ---------------- *)

let simplify_branches (g : t) =
  let changed = ref false in
  (* 1. if with identical arms -> goto *)
  Array.iter
    (fun b ->
      match b.term with
      | TIf (_, _, _, t, f) when t = f -> changed := true; b.term <- TGoto t
      | TIfz (_, _, t, f) when t = f -> changed := true; b.term <- TGoto t
      | _ -> ())
    g.blocks;
  (* 2. thread jumps through empty goto-only blocks *)
  let nb = Array.length g.blocks in
  let final = Array.make nb (-1) in
  let rec resolve b visiting =
    if final.(b) >= 0 then final.(b)
    else if List.mem b visiting then b (* goto cycle: leave as is *)
    else begin
      let r =
        match g.blocks.(b) with
        | { insns = []; term = TGoto t; _ } when t <> b ->
          resolve t (b :: visiting)
        | _ -> b
      in
      final.(b) <- r;
      r
    end
  in
  for b = 0 to nb - 1 do ignore (resolve b []) done;
  Array.iter
    (fun b ->
      let t' =
        map_successors
          (fun s ->
            let r = final.(s) in
            if r <> s then changed := true;
            r)
          b.term
      in
      b.term <- t')
    g.blocks;
  (* 3. drop unreachable blocks and renumber *)
  let seen = reachable g in
  let any_unreachable = Array.exists not seen && nb > 0 in
  if any_unreachable then begin
    changed := true;
    let remap = Array.make nb (-1) in
    let next = ref 0 in
    for b = 0 to nb - 1 do
      if seen.(b) then begin
        remap.(b) <- !next;
        incr next
      end
    done;
    let kept =
      Array.to_list g.blocks
      |> List.filter (fun b -> seen.(b.bid))
      |> List.map (fun b ->
             { b with bid = remap.(b.bid);
               term = map_successors (fun s -> remap.(s)) b.term })
    in
    g.blocks <- Array.of_list kept
  end;
  !changed

(* ---- Pass manager ------------------------------------------------------ *)

type pass = { pass_name : string; run : t -> bool }

let all_passes =
  [ { pass_name = "const_fold"; run = const_fold };
    { pass_name = "copy_prop"; run = copy_prop };
    { pass_name = "cse"; run = cse };
    { pass_name = "dce"; run = dce };
    { pass_name = "simplify_branches"; run = simplify_branches } ]

(* Run the pass pipeline to a fixpoint (bounded), verifying after each
   pass. Returns the number of iterations taken. *)
let optimize ?(max_rounds = 8) (g : t) =
  if g.g_is_native then 0
  else begin
    let rounds = ref 0 in
    let continue_ = ref true in
    while !continue_ && !rounds < max_rounds do
      incr rounds;
      let changed =
        List.fold_left
          (fun acc pass ->
            let c = pass.run g in
            (try verify g
             with Invalid msg ->
               raise
                 (Pass_error
                    (Printf.sprintf "pass %s broke %s: %s" pass.pass_name
                       (method_ref_to_string g.g_name)
                       msg)));
            acc || c)
          false all_passes
      in
      continue_ := changed
    done;
    !rounds
  end
