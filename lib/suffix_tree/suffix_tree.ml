(* Ukkonen's on-line suffix tree construction over integer sequences
   (paper section 2.1.2; Ukkonen 1995). O(n) time and space.

   The element domain is OCaml [int]. Calibro maps each machine instruction
   to an integer (its 32-bit encoding, or a unique separator for
   terminators/PC-relative instructions, see {!Calibro_core.Seq_map});
   separators occur exactly once in the input, so no repeated substring can
   ever contain one — which is how the paper confines repeats to basic
   blocks. A reserved terminal symbol is appended internally; inputs must
   not contain it.

   Construction leaves the usual node soup (per-node [Hashtbl] children,
   shared [end_] refs); a single O(n) lowering pass then flattens it into
   a post-order array representation in which every node's occurrence set
   is one contiguous slice of a shared suffix-index array. Repeat
   enumeration, occurrence listing and statistics all run over the flat
   arrays — no per-node list concatenation, no allocation proportional to
   subtree depth. *)

let terminal = min_int
(** Reserved end-of-sequence sentinel (the "$" of Figure 1). *)

type node = {
  id : int;
  mutable start : int;  (** start index of the incoming edge label *)
  mutable end_ : int ref;
      (** one past the last index; leaves share the global end *)
  mutable suffix_link : node option;
  children : (int, node) Hashtbl.t;
  mutable suffix_index : int;  (** for leaves: suffix start position; -1 otherwise *)
}

type t = {
  text : int array;  (** input plus terminal sentinel *)
  root : node;
  n_nodes : int;
  (* ---- Flat post-order lowering (filled once after construction) ----- *)
  suffixes : int array;
      (** suffix indices of all leaves, in DFS order: every node's
          descendant-leaf set is [suffixes.(lo_of_id.(id)) ..
          suffixes.(hi_of_id.(id) - 1)] *)
  po_depth : int array;  (** per internal node (root excluded), post-order:
                             string depth *)
  po_lo : int array;     (** slice start into [suffixes] *)
  po_hi : int array;     (** slice end (exclusive) *)
  n_internal : int;      (** internal nodes, root excluded *)
  lo_of_id : int array;  (** per node id: slice start into [suffixes] *)
  hi_of_id : int array;
  max_depth : int;       (** deepest string depth of any node *)
}

let text t = t.text
let input_length t = Array.length t.text - 1
let node_count t = t.n_nodes

let edge_length node = !(node.end_) - node.start

let compare_int (a : int) (b : int) = compare a b

(* One DFS over the node soup, visiting children in [Hashtbl.fold] order
   (the same order the previous recursive enumeration used, so downstream
   consumers see repeats in an identical sequence). Leaves land in
   [suffixes] in visit order; each internal node becomes one post-order
   slot whose occurrence set is the slice its subtree filled. Also assigns
   leaf suffix indices, subsuming the former suffix-index DFS. *)
let lower ~root ~n_nodes ~n =
  let suffixes = Array.make n 0 in
  let n_int = max 0 (n_nodes - n - 1) in
  let po_depth = Array.make n_int 0 in
  let po_lo = Array.make n_int 0 in
  let po_hi = Array.make n_int 0 in
  let lo_of_id = Array.make n_nodes 0 in
  let hi_of_id = Array.make n_nodes 0 in
  let next_leaf = ref 0 in
  let next_internal = ref 0 in
  let max_depth = ref 0 in
  (* [Hashtbl.fold] conses in fold order, so the accumulated list is the
     reverse; undo it to visit children exactly as a fold would. *)
  let children_in_fold_order node =
    List.rev (Hashtbl.fold (fun _ c acc -> c :: acc) node.children [])
  in
  let stack = ref [ (root, 0, ref (children_in_fold_order root), 0) ] in
  while !stack <> [] do
    match !stack with
    | [] -> assert false
    | (node, depth, pending, lo) :: rest -> (
      match !pending with
      | child :: siblings ->
        pending := siblings;
        let cdepth = depth + edge_length child in
        if Hashtbl.length child.children = 0 then begin
          (* leaf: one suffix, a one-element slice *)
          child.suffix_index <- n - cdepth;
          suffixes.(!next_leaf) <- n - cdepth;
          lo_of_id.(child.id) <- !next_leaf;
          hi_of_id.(child.id) <- !next_leaf + 1;
          incr next_leaf;
          if cdepth > !max_depth then max_depth := cdepth
        end
        else
          stack :=
            (child, cdepth, ref (children_in_fold_order child), !next_leaf)
            :: !stack
      | [] ->
        (* all children done: the subtree filled [lo, next_leaf) *)
        stack := rest;
        lo_of_id.(node.id) <- lo;
        hi_of_id.(node.id) <- !next_leaf;
        if node != root then begin
          po_depth.(!next_internal) <- depth;
          po_lo.(!next_internal) <- lo;
          po_hi.(!next_internal) <- !next_leaf;
          incr next_internal
        end)
  done;
  (suffixes, po_depth, po_lo, po_hi, !next_internal, lo_of_id, hi_of_id,
   !max_depth)

let build input =
  Array.iter
    (fun x -> if x = terminal then invalid_arg "Suffix_tree.build: input contains the reserved terminal")
    input;
  let text = Array.append input [| terminal |] in
  let n = Array.length text in
  let next_id = ref 0 in
  let mk_node ~start ~end_ =
    let node =
      { id = !next_id; start; end_; suffix_link = None;
        children = Hashtbl.create 4; suffix_index = -1 }
    in
    incr next_id;
    node
  in
  let root = mk_node ~start:(-1) ~end_:(ref (-1)) in
  let global_end = ref 0 in
  let active_node = ref root in
  let active_edge = ref 0 (* index into [text] of the edge's first symbol *) in
  let active_length = ref 0 in
  let remaining = ref 0 in
  for i = 0 to n - 1 do
    global_end := i + 1;
    incr remaining;
    let last_new_node = ref None in
    let continue_phase = ref true in
    while !remaining > 0 && !continue_phase do
      if !active_length = 0 then active_edge := i;
      match Hashtbl.find_opt !active_node.children text.(!active_edge) with
      | None ->
        (* Rule 2: no edge starts with text.(i) here; add a leaf. *)
        let leaf = mk_node ~start:i ~end_:global_end in
        Hashtbl.replace !active_node.children text.(!active_edge) leaf;
        (match !last_new_node with
         | Some internal ->
           internal.suffix_link <- Some !active_node;
           last_new_node := None
         | None -> ());
        decr remaining;
        if !active_node == root && !active_length > 0 then begin
          decr active_length;
          active_edge := i - !remaining + 1
        end
        else if !active_node != root then
          active_node :=
            (match !active_node.suffix_link with
             | Some l -> l
             | None -> root)
      | Some next ->
        let el = edge_length next in
        if !active_length >= el then begin
          (* Walk down (skip/count trick). *)
          active_node := next;
          active_edge := !active_edge + el;
          active_length := !active_length - el
        end
        else if text.(next.start + !active_length) = text.(i) then begin
          (* Rule 3: already present; extend the active point and stop. *)
          (match !last_new_node with
           | Some internal ->
             internal.suffix_link <- Some !active_node;
             last_new_node := None
           | None -> ());
          incr active_length;
          continue_phase := false
        end
        else begin
          (* Rule 2 with split. *)
          let split = mk_node ~start:next.start ~end_:(ref (next.start + !active_length)) in
          Hashtbl.replace !active_node.children text.(!active_edge) split;
          next.start <- next.start + !active_length;
          Hashtbl.replace split.children text.(next.start) next;
          let leaf = mk_node ~start:i ~end_:global_end in
          Hashtbl.replace split.children text.(i) leaf;
          (match !last_new_node with
           | Some internal -> internal.suffix_link <- Some split
           | None -> ());
          last_new_node := Some split;
          decr remaining;
          if !active_node == root && !active_length > 0 then begin
            decr active_length;
            active_edge := i - !remaining + 1
          end
          else if !active_node != root then
            active_node :=
              (match !active_node.suffix_link with
               | Some l -> l
               | None -> root)
        end
    done
  done;
  let suffixes, po_depth, po_lo, po_hi, n_internal, lo_of_id, hi_of_id,
      max_depth =
    lower ~root ~n_nodes:!next_id ~n
  in
  { text; root; n_nodes = !next_id; suffixes; po_depth; po_lo; po_hi;
    n_internal; lo_of_id; hi_of_id; max_depth }

(* ---- Queries --------------------------------------------------------- *)

(* Walk from the root along [pattern]; return the landing point. *)
let walk t pattern =
  let m = Array.length pattern in
  let rec go node i =
    if i >= m then Some (node, i)
    else
      match Hashtbl.find_opt node.children pattern.(i) with
      | None -> None
      | Some child ->
        let el = edge_length child in
        let rec scan j =
          if j >= el || i + j >= m then Some j
          else if t.text.(child.start + j) = pattern.(i + j) then scan (j + 1)
          else None
        in
        (match scan 0 with
         | None -> None
         | Some j -> if i + j >= m then Some (child, i + j) else go child (i + j))
  in
  if m = 0 then Some (t.root, 0) else go t.root 0

let contains t pattern = walk t pattern <> None

(* All start positions at which [pattern] occurs in the input: the landing
   node's slice of the suffix-index array, sorted ascending. *)
let occurrences t pattern =
  match walk t pattern with
  | None -> []
  | Some (node, _) ->
    let lo = t.lo_of_id.(node.id) and hi = t.hi_of_id.(node.id) in
    let out = Array.sub t.suffixes lo (hi - lo) in
    Array.sort compare_int out;
    Array.to_list out

(* Counting needs no sort: the slice width is the occurrence count. *)
let count_occurrences t pattern =
  match walk t pattern with
  | None -> 0
  | Some (node, _) -> t.hi_of_id.(node.id) - t.lo_of_id.(node.id)

(* ---- Repeats (paper section 2.1.2 / 2.2 step 3) ---------------------- *)

type repeat = {
  length : int;      (** number of elements in the repeated sequence *)
  positions : int list;  (** sorted start positions (may overlap) *)
}

(* Fold over every right-maximal repeated substring: each internal node
   (other than the root) with >= 2 transitively descendant leaves yields a
   repeat whose length is the node's string depth and whose occurrence
   positions are the suffix indices of its descendant leaves. The flat
   post-order arrays make this a linear scan: pruned nodes (outside
   [min_length, max_length]) cost one comparison, and an emitted node costs
   one slice copy + sort instead of a subtree-sized list concatenation. *)
let fold_repeats ?(min_length = 1) ?(max_length = max_int) t ~init ~f =
  let acc = ref init in
  for i = 0 to t.n_internal - 1 do
    let depth = t.po_depth.(i) in
    if depth >= min_length && depth <= max_length then begin
      let lo = t.po_lo.(i) and hi = t.po_hi.(i) in
      if hi - lo >= 2 then begin
        let positions = Array.sub t.suffixes lo (hi - lo) in
        Array.sort compare_int positions;
        acc := f !acc { length = depth; positions = Array.to_list positions }
      end
    end
  done;
  !acc

let repeats ?min_length ?max_length t =
  fold_repeats ?min_length ?max_length t ~init:[] ~f:(fun acc r -> r :: acc)

(* Drop overlapping occurrences, keeping the leftmost of each overlapping
   cluster (paper section 2.1.2: "a small modification should be applied to
   selectively skip such ones"). Positions must be sorted ascending. *)
let non_overlapping ~length positions =
  let rec go last acc = function
    | [] -> List.rev acc
    | p :: rest ->
      if p >= last then go (p + length) (p :: acc) rest else go last acc rest
  in
  go min_int [] positions

(* ---- Statistics ------------------------------------------------------ *)

type stats = { nodes : int; internal : int; leaves : int; max_depth : int }

let stats t =
  { nodes = t.n_nodes; internal = t.n_internal;
    leaves = Array.length t.suffixes; max_depth = t.max_depth }
