(* Profile-driven method shelving (see shelve.mli).

   The split is deliberately placed *after* per-method compilation and
   *before* LTBO mining:
   - after compilation, so the per-method cache keys are identical to an
     unshelved build's and both share one cache population;
   - before mining, so the suffix tree never sees cold bodies — outlining
     works the surviving warm set only, which is the composition the
     release-train workload measures. *)

open Calibro_dex.Dex_ir
module Isa = Calibro_aarch64.Isa
module Encode = Calibro_aarch64.Encode
module Decode = Calibro_aarch64.Decode
module Compiled_method = Calibro_codegen.Compiled_method
module Meta = Calibro_codegen.Meta
module Linker = Calibro_oat.Linker
module Profile = Calibro_profile.Profile
module Obs = Calibro_obs.Obs

exception Shelve_error of string

type plan = {
  sp_coverage : float;
  sp_warm : method_ref list;
  sp_digest : string;
}

let compare_ref (a : method_ref) (b : method_ref) =
  compare (a.class_name, a.method_name) (b.class_name, b.method_name)

(* MD5 on purpose (like the dictionary digest): the policy digest is part
   of the served-bytes contract across processes, so it must not depend on
   the CALIBRO_HASH backend selection. *)
let digest ~coverage ~warm =
  let b = Buffer.create 256 in
  Buffer.add_string b "calibro-shelve-v1\n";
  Buffer.add_string b (Printf.sprintf "coverage=%.6f\n" coverage);
  List.iter
    (fun (m : method_ref) ->
      Buffer.add_string b m.class_name;
      Buffer.add_char b ' ';
      Buffer.add_string b m.method_name;
      Buffer.add_char b '\n')
    warm;
  Digest.to_hex (Digest.string (Buffer.contents b))

let plan ~coverage ~warm =
  if not (coverage >= 0.0 && coverage <= 1.0) then (* also rejects nan *)
    raise
      (Shelve_error
         (Printf.sprintf "shelve coverage %g outside [0, 1]" coverage));
  let warm =
    List.sort_uniq compare_ref warm
  in
  { sp_coverage = coverage; sp_warm = warm; sp_digest = digest ~coverage ~warm }

let of_profile ~coverage profile =
  plan ~coverage ~warm:(Profile.hot_set ~coverage profile)

(* ---- The stub ---------------------------------------------------------- *)

let stub_insns = 2
let stub_bytes = stub_insns * Isa.instr_bytes
let stub_magic = Calibro_codegen.Abi.shelf_stub_magic

let stub_spec ~index =
  if index < 0 || index > 0xffff then
    raise (Shelve_error (Printf.sprintf "shelf index %d out of range" index));
  [ Isa.Mov_wide
      { kind = Isa.MOVZ; size = Isa.X; rd = Isa.x17; imm16 = index; hw = 0 };
    Isa.Brk stub_magic ]

let stub_code ~index = Encode.to_bytes (stub_spec ~index)

let decode_stub code ~offset =
  if offset < 0 || offset + stub_bytes > Bytes.length code then None
  else
    let w i = Encode.word_of_bytes code (offset + (i * Isa.instr_bytes)) in
    match (Decode.decode (w 0), Decode.decode (w 1)) with
    | ( Isa.Mov_wide { kind = Isa.MOVZ; size = Isa.X; rd; imm16; hw = 0 },
        Isa.Brk m )
      when rd = Isa.x17 && m = stub_magic ->
      Some imm16
    | _ -> None

(* ---- The split --------------------------------------------------------- *)

type split = {
  sv_warm : Compiled_method.t list;
  sv_stubs : Compiled_method.t list;
  sv_shelf : Linker.shelve_input option;
}

let shelvable ~warm_tbl (cm : Compiled_method.t) =
  (not (Compiled_method.is_native cm))
  && Bytes.length cm.Compiled_method.code > stub_bytes
  && not (Hashtbl.mem warm_tbl cm.Compiled_method.name)

let split ~plan (methods : Compiled_method.t list) : split =
  let warm_tbl = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace warm_tbl m ()) plan.sp_warm;
  let cold, warm = List.partition (shelvable ~warm_tbl) methods in
  (* Shelf indices are assigned in slot order, matching the linker's image
     layout, so stub index = position of the method's shelf entry. *)
  let cold =
    List.sort
      (fun (a : Compiled_method.t) b ->
        compare a.Compiled_method.slot b.Compiled_method.slot)
      cold
  in
  let stubs, bodies =
    List.mapi
      (fun index (cm : Compiled_method.t) ->
        let stub =
          { cm with
            Compiled_method.code = stub_code ~index;
            relocs = [];
            meta = { Meta.empty with Meta.has_indirect_jump = true };
            stackmap = [];
            cto_hits = [] }
        in
        let body =
          { Linker.sb_name = cm.Compiled_method.name;
            sb_slot = cm.Compiled_method.slot;
            sb_code = cm.Compiled_method.code;
            sb_relocs = cm.Compiled_method.relocs }
        in
        (stub, body))
      cold
    |> List.split
  in
  Obs.Counter.add "shelve.shelved" (List.length stubs);
  Obs.Counter.add "shelve.kept_warm" (List.length warm);
  { sv_warm = warm;
    sv_stubs = stubs;
    sv_shelf =
      (match bodies with
       | [] -> None
       | _ -> Some { Linker.shv_digest = plan.sp_digest; shv_bodies = bodies }) }

let shelved_count s = List.length s.sv_stubs
