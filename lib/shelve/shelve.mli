(** Profile-driven method shelving ("Shelving it rather than Ditching it"):
    classify methods as cold against an accumulated profile, replace each
    cold body in the text segment with a fixed-size *shelf stub*, and park
    the original body in a shelf image mapped at
    {!Calibro_codegen.Abi.shelf_base}.

    A stub is [movz x17, #index; brk #stub_magic]. The simulator intercepts
    the [brk], redirects the ArtMethod entry pointer to the parked body
    (first-fault "unshelve") and resumes there, so shelved code still
    executes correctly — it just pays an interpretation penalty. Because
    the split runs after per-method compilation but before LTBO mining,
    outlining sees only the surviving warm set, and per-method cache
    entries are shared with unshelved builds. *)

open Calibro_dex.Dex_ir

exception Shelve_error of string
(** Raised on nonsense policies (coverage outside [0, 1], shelf index
    overflow); the service layer maps it to a typed rejection. *)

type plan = {
  sp_coverage : float;
      (** the profile coverage threshold that defined the warm set *)
  sp_warm : method_ref list;  (** canonically sorted warm methods *)
  sp_digest : string;         (** policy digest over coverage + warm set *)
}

val plan : coverage:float -> warm:method_ref list -> plan
(** Canonicalize (sort, dedup) the warm set and stamp the policy digest.
    The digest is MD5 (hash-backend independent, like the dictionary
    digest) so two processes derive identical plans from identical
    profiles. *)

val of_profile : coverage:float -> Calibro_profile.Profile.t -> plan
(** The standard derivation: warm = {!Calibro_profile.Profile.hot_set}
    at [coverage]; everything else is shelvable. *)

val stub_insns : int
val stub_bytes : int  (** fixed stub size: [stub_insns] * 4 bytes *)

val stub_magic : int
(** The [brk] immediate marking a shelf stub; the VM faults into its
    unshelve path on it, everything else treats it as a plain break. *)

val stub_code : index:int -> bytes
(** The encoded stub for the [index]-th shelf entry (slot order). *)

val decode_stub : bytes -> offset:int -> int option
(** [decode_stub code ~offset] returns [Some index] iff the [stub_bytes]
    at [offset] are a well-formed shelf stub. *)

type split = {
  sv_warm : Calibro_codegen.Compiled_method.t list;
      (** survivors, in input order: what LTBO mines and rewrites *)
  sv_stubs : Calibro_codegen.Compiled_method.t list;
      (** stub replacements for the shelved methods *)
  sv_shelf : Calibro_oat.Linker.shelve_input option;
      (** parked bodies for the linker; [None] when nothing shelved *)
}

val split : plan:plan -> Calibro_codegen.Compiled_method.t list -> split
(** Partition compiled methods into warm survivors and shelved stubs.
    Never shelves native methods (no text body) or methods no larger
    than a stub (shelving them would grow the text). *)

val shelved_count : split -> int
