(** The simpleperf substitute (paper section 3.4.2, Figure 6):
    per-function execution-time profiles and hot-set selection. *)

open Calibro_dex.Dex_ir

type sample = { s_method : method_ref; s_cycles : int }

type t = sample list

val total : t -> int
(** Sum of all samples' cycles. *)

val of_interp : Calibro_vm.Interp.t -> t
(** Collect the per-method cycle attribution of a finished simulator run. *)

val merge : t -> t -> t
(** Pointwise sum in canonical order: cycles descending, ties broken by
    (class, method) name ascending — never hash-table iteration order. *)

val decay : factor:float -> t -> t
(** Age a decayed-window accumulator: every sample's cycles scaled by
    [factor] (0 < factor <= 1); methods whose mass rounds to zero are
    dropped so the accumulator stays bounded. *)

val hot_set : ?coverage:float -> t -> method_ref list
(** The top functions accounting for [coverage] (default 0.8) of total
    execution time — the paper's hot-function set. Ties are broken by
    (class, method) name so the cut is deterministic. Zero-cycle methods
    are never hot. *)

val to_string : t -> string
(** One "class method cycles" line per sample (Figure 6's profiling data
    file). *)

val of_string : string -> (t, string) result
(** Inverse of [to_string]. Tolerates repeated/trailing blanks inside a
    line; duplicate method lines sum into the first occurrence; negative
    cycle counts are rejected. [of_string (to_string p) = p] for
    duplicate-free profiles. *)

val save : t -> string -> (unit, string) result
(** Write the Figure 6 text form; [Error] (not an exception) on an
    unwritable path. *)

val load : string -> (t, string) result
