(* The simpleperf substitute (paper section 3.4.2, Figure 6): per-function
   execution-time profiles collected from instrumented runs, used to guide
   the next build's hot-function filtering.

   "In evaluation, we sort the functions by their execution time and choose
   the set of top functions that account for 80% of the total execution
   time as hot functions to be filtered." *)

open Calibro_dex.Dex_ir

type sample = { s_method : method_ref; s_cycles : int }

type t = sample list

let total (t : t) = List.fold_left (fun a s -> a + s.s_cycles) 0 t

(* Canonical sample order: hottest first, ties broken by method name so the
   result never depends on hash-table iteration order (the PGO drift loop
   compares hot sets across processes and hash backends). *)
let compare_sample a b =
  match compare b.s_cycles a.s_cycles with
  | 0 ->
    compare
      (a.s_method.class_name, a.s_method.method_name)
      (b.s_method.class_name, b.s_method.method_name)
  | c -> c

(* Collect a profile from a finished simulator run. *)
let of_interp (interp : Calibro_vm.Interp.t) : t =
  Calibro_vm.Interp.method_cycles interp
  |> List.map (fun (m, c) -> { s_method = m; s_cycles = c })

let merge (a : t) (b : t) : t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace tbl s.s_method
        (s.s_cycles + Option.value ~default:0 (Hashtbl.find_opt tbl s.s_method)))
    (a @ b);
  Hashtbl.fold (fun m c acc -> { s_method = m; s_cycles = c } :: acc) tbl []
  |> List.sort compare_sample

(* Age the accumulator of a decayed window: scale every sample down by
   [factor] (0 < factor <= 1), dropping methods whose mass rounds to zero so
   a long-running accumulator stays bounded by the live method set. *)
let decay ~factor (t : t) : t =
  List.filter_map
    (fun s ->
      let c = int_of_float (factor *. float_of_int s.s_cycles) in
      if c <= 0 then None else Some { s with s_cycles = c })
    t

(* The top functions accounting for [coverage] of total execution time. *)
let hot_set ?(coverage = 0.8) (t : t) : method_ref list =
  let sorted = List.sort compare_sample t in
  let budget = coverage *. float_of_int (total t) in
  let rec take acc cum = function
    | [] -> List.rev acc
    | s :: rest ->
      if cum >= budget || s.s_cycles = 0 then List.rev acc
      else take (s.s_method :: acc) (cum +. float_of_int s.s_cycles) rest
  in
  take [] 0.0 sorted

(* ---- Persistence (the "profiling data" files of Figure 6) ------------- *)

let to_string (t : t) =
  String.concat ""
    (List.map
       (fun s ->
         Printf.sprintf "%s %s %d\n" s.s_method.class_name
           s.s_method.method_name s.s_cycles)
       t)

let of_string str : (t, string) result =
  let lines =
    String.split_on_char '\n' str |> List.filter (fun l -> String.trim l <> "")
  in
  (* Duplicate method lines sum into the first occurrence (a report is a
     bag of samples, not a map), preserving first-seen order so
     [of_string (to_string p) = p] for duplicate-free profiles. *)
  let order = ref [] in
  let tbl = Hashtbl.create 64 in
  let rec go = function
    | [] ->
      Ok
        (List.rev_map
           (fun m -> { s_method = m; s_cycles = Hashtbl.find tbl m })
           !order)
    | line :: rest -> (
      (* Split on runs of whitespace so trailing blanks and double spaces
         inside a line parse rather than producing phantom empty fields. *)
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun f -> f <> "")
      with
      | [ cls; name; cycles ] -> (
        match int_of_string_opt cycles with
        | Some c when c >= 0 ->
          let m = { class_name = cls; method_name = name } in
          (match Hashtbl.find_opt tbl m with
           | Some prev -> Hashtbl.replace tbl m (prev + c)
           | None ->
             Hashtbl.add tbl m c;
             order := m :: !order);
          go rest
        | Some _ -> Error (Printf.sprintf "negative cycle count in %S" line)
        | None -> Error (Printf.sprintf "bad cycle count in %S" line))
      | _ -> Error (Printf.sprintf "bad profile line %S" line))
  in
  go lines

let save (t : t) path : (unit, string) result =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc (to_string t));
    Ok ()

let load path : (t, string) result =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
