(* CLOCK_MONOTONIC, via bechamel's C stub (the only monotonic clock in
   the dependency set; the OCaml stdlib exposes none). *)

let now_ns () = Monotonic_clock.now ()

let elapsed_s t0 t1 = Int64.to_float (Int64.sub t1 t0) /. 1e9

let since_s t0 = elapsed_s t0 (now_ns ())

let ns_to_us ns = Int64.to_float ns /. 1e3
