type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- Printing ----------------------------------------------------------- *)

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no NaN/Infinity; clamp to null rather than emit garbage. *)
let float_literal f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* ensure the token re-parses as a float, not an int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(pretty = false) t =
  let b = Buffer.create 1024 in
  let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_literal f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape_string s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape_string k);
          Buffer.add_string b (if pretty then "\": " else "\":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ---- Parsing ------------------------------------------------------------ *)

exception Parse_error of string

let parse (src : string) : (t, string) result =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 b code =
    (* decode a \uXXXX code point to UTF-8 bytes (surrogates are kept as
       the replacement sequence a WTF-8 decoder would produce; the
       exporters never emit them) *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match src.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub src !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "bad \\u escape"
                | Some code ->
                  pos := !pos + 4;
                  add_utf8 b code)
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    (* [go] consumes up to and including the closing quote *)
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char src.[!pos] do
      advance ()
    done;
    let tok = String.sub src start (!pos - start) in
    let is_floatish =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_floatish then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e

(* ---- Accessors ---------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_str = function Str s -> Some s | _ -> None
let get_list = function List l -> Some l | _ -> None
let get_obj = function Obj o -> Some o | _ -> None
