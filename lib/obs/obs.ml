type args = (string * Json.t) list

type span_event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
  ev_args : args;
}

(* Bounds: a long fuzz run performs thousands of builds; without a cap the
   event buffers would dominate the heap. Dropped events are counted and
   surfaced in the metrics document. *)
let event_cap = 262_144
let sample_cap = 65_536

type hist_shard = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_samples : float list;  (* newest first, capped at [sample_cap] *)
  mutable h_retained : int;
}

(* One shard per domain. Single writer (the owning domain); readers are
   the snapshot functions, which by contract run only when no worker
   domain is live. *)
type buf = {
  tid : int;
  mutable events : span_event list;  (* newest first *)
  mutable n_events : int;
  mutable dropped : int;
  mutable depth : int;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist_shard) Hashtbl.t;
}

let registry_lock = Mutex.create ()
let bufs : buf list ref = ref []
let gauges : (string, float) Hashtbl.t = Hashtbl.create 16
let epoch_ns = Clock.now_ns ()

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int);
          events = [];
          n_events = 0;
          dropped = 0;
          depth = 0;
          counters = Hashtbl.create 16;
          hists = Hashtbl.create 16 }
      in
      Mutex.lock registry_lock;
      bufs := b :: !bufs;
      Mutex.unlock registry_lock;
      b)

let my_buf () = Domain.DLS.get buf_key

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* ---- Spans -------------------------------------------------------------- *)

let record b ev =
  if b.n_events >= event_cap then b.dropped <- b.dropped + 1
  else begin
    b.events <- ev :: b.events;
    b.n_events <- b.n_events + 1
  end

let span ?(cat = "calibro") ?(args = fun () -> []) name f =
  let b = my_buf () in
  let depth = b.depth in
  b.depth <- depth + 1;
  let t0 = Clock.now_ns () in
  let finish () =
    let t1 = Clock.now_ns () in
    b.depth <- depth;
    record b
      { ev_name = name;
        ev_cat = cat;
        ev_tid = b.tid;
        ev_start_ns = t0;
        ev_dur_ns = Int64.sub t1 t0;
        ev_depth = depth;
        ev_args = args () }
  in
  match f () with
  | r ->
    finish ();
    r
  | exception e ->
    finish ();
    raise e

(* ---- Counters ----------------------------------------------------------- *)

module Counter = struct
  let add name n =
    let b = my_buf () in
    match Hashtbl.find_opt b.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace b.counters name (ref n)

  let incr name = add name 1

  let value name =
    locked (fun () ->
        List.fold_left
          (fun acc b ->
            match Hashtbl.find_opt b.counters name with
            | Some r -> acc + !r
            | None -> acc)
          0 !bufs)
end

(* ---- Gauges ------------------------------------------------------------- *)

module Gauge = struct
  let set name v = locked (fun () -> Hashtbl.replace gauges name v)
  let value name = locked (fun () -> Hashtbl.find_opt gauges name)
end

(* ---- Histograms --------------------------------------------------------- *)

module Histogram = struct
  let observe name v =
    let b = my_buf () in
    let sh =
      match Hashtbl.find_opt b.hists name with
      | Some sh -> sh
      | None ->
        let sh =
          { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
            h_samples = []; h_retained = 0 }
        in
        Hashtbl.replace b.hists name sh;
        sh
    in
    sh.h_count <- sh.h_count + 1;
    sh.h_sum <- sh.h_sum +. v;
    if v < sh.h_min then sh.h_min <- v;
    if v > sh.h_max then sh.h_max <- v;
    if sh.h_retained < sample_cap then begin
      sh.h_samples <- v :: sh.h_samples;
      sh.h_retained <- sh.h_retained + 1
    end

  type summary = {
    count : int;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else
      let rank =
        int_of_float (Float.round (q *. float_of_int (n - 1)))
      in
      sorted.(max 0 (min (n - 1) rank))

  let summary name =
    locked (fun () ->
        let shards =
          List.filter_map (fun b -> Hashtbl.find_opt b.hists name) !bufs
        in
        if shards = [] then None
        else begin
          let count = List.fold_left (fun a s -> a + s.h_count) 0 shards in
          if count = 0 then None
          else begin
            let sum = List.fold_left (fun a s -> a +. s.h_sum) 0.0 shards in
            let mn = List.fold_left (fun a s -> Float.min a s.h_min) infinity shards in
            let mx =
              List.fold_left (fun a s -> Float.max a s.h_max) neg_infinity shards
            in
            let samples =
              Array.of_list (List.concat_map (fun s -> s.h_samples) shards)
            in
            Array.sort compare samples;
            Some
              { count;
                min = mn;
                max = mx;
                mean = sum /. float_of_int count;
                p50 = percentile samples 0.50;
                p90 = percentile samples 0.90;
                p99 = percentile samples 0.99 }
          end
        end)
end

(* ---- Snapshots ---------------------------------------------------------- *)

let events () =
  locked (fun () ->
      List.concat_map (fun b -> List.rev b.events) !bufs
      |> List.sort (fun a b -> compare a.ev_start_ns b.ev_start_ns))

let reset () =
  locked (fun () ->
      List.iter
        (fun b ->
          b.events <- [];
          b.n_events <- 0;
          b.dropped <- 0;
          Hashtbl.reset b.counters;
          Hashtbl.reset b.hists)
        !bufs;
      Hashtbl.reset gauges)

let dropped_events () =
  locked (fun () -> List.fold_left (fun a b -> a + b.dropped) 0 !bufs)

(* Stable aggregation helper: fold [items] into an association list keyed
   by [key], preserving first-seen key order. *)
let group_by key items =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := item :: !l
      | None ->
        Hashtbl.replace tbl k (ref [ item ]);
        order := k :: !order)
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let span_aggregates evs =
  group_by (fun e -> e.ev_name) evs
  |> List.map (fun (name, es) ->
         let durs = List.map (fun e -> Int64.to_float e.ev_dur_ns /. 1e9) es in
         let total = List.fold_left ( +. ) 0.0 durs in
         let mx = List.fold_left Float.max 0.0 durs in
         let count = List.length es in
         ( name,
           Json.Obj
             [ ("count", Json.Int count);
               ("total_s", Json.Float total);
               ("mean_s", Json.Float (total /. float_of_int count));
               ("max_s", Json.Float mx) ] ))

let metrics_json ?(extra = []) () =
  let evs = events () in
  let counters =
    locked (fun () ->
        let names =
          List.concat_map
            (fun b -> Hashtbl.fold (fun k _ acc -> k :: acc) b.counters [])
            !bufs
          |> List.sort_uniq compare
        in
        List.map
          (fun name ->
            ( name,
              Json.Int
                (List.fold_left
                   (fun acc b ->
                     match Hashtbl.find_opt b.counters name with
                     | Some r -> acc + !r
                     | None -> acc)
                   0 !bufs) ))
          names)
  in
  let gauge_fields =
    locked (fun () ->
        Hashtbl.fold (fun k v acc -> (k, Json.Float v) :: acc) gauges []
        |> List.sort compare)
  in
  let hist_names =
    locked (fun () ->
        List.concat_map
          (fun b -> Hashtbl.fold (fun k _ acc -> k :: acc) b.hists [])
          !bufs
        |> List.sort_uniq compare)
  in
  let hists =
    List.filter_map
      (fun name ->
        match Histogram.summary name with
        | None -> None
        | Some s ->
          Some
            ( name,
              Json.Obj
                [ ("count", Json.Int s.Histogram.count);
                  ("min", Json.Float s.Histogram.min);
                  ("max", Json.Float s.Histogram.max);
                  ("mean", Json.Float s.Histogram.mean);
                  ("p50", Json.Float s.Histogram.p50);
                  ("p90", Json.Float s.Histogram.p90);
                  ("p99", Json.Float s.Histogram.p99) ] ))
      hist_names
  in
  Json.Obj
    ([ ("schema", Json.Int 1);
       ("counters", Json.Obj counters);
       ("gauges", Json.Obj gauge_fields);
       ("histograms", Json.Obj hists);
       ("spans", Json.Obj (span_aggregates evs));
       ("dropped_events", Json.Int (dropped_events ())) ]
     @ extra)

let trace_json () =
  let evs = events () in
  let base =
    match evs with e :: _ -> e.ev_start_ns | [] -> epoch_ns
  in
  let event_json e =
    let fields =
      [ ("name", Json.Str e.ev_name);
        ("cat", Json.Str e.ev_cat);
        ("ph", Json.Str "X");
        ("ts", Json.Float (Clock.ns_to_us (Int64.sub e.ev_start_ns base)));
        ("dur", Json.Float (Clock.ns_to_us e.ev_dur_ns));
        ("pid", Json.Int 1);
        ("tid", Json.Int e.ev_tid) ]
    in
    let fields =
      if e.ev_args = [] then fields
      else fields @ [ ("args", Json.Obj e.ev_args) ]
    in
    Json.Obj fields
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.map event_json evs));
      ("displayTimeUnit", Json.Str "ms") ]

let write_file path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true doc);
      output_char oc '\n')

(* The shared --metrics/--trace exit path of every entry point. *)
let export ?(extra = []) ~metrics ~trace () =
  (match metrics with
   | None -> ()
   | Some path -> write_file path (metrics_json ~extra ()));
  match trace with
  | None -> ()
  | Some path -> write_file path (trace_json ())
