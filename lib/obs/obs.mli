(** Structured observability for the build pipeline.

    Three instrument families, all safe to use from PlOpti worker domains:

    - {b spans}: nested monotonic-clock intervals ([pipeline.build] >
      [pipeline.ltbo] > [ltbo.detect] > [ltbo.tree_build] ...), recorded
      per domain and exported as Chrome [trace_event] JSON
      (chrome://tracing / Perfetto) and as per-name aggregates;
    - {b counters} and {b histograms}: sharded per domain (each domain
      mutates only its own shard, no locks on the hot path) and summed /
      merged when a snapshot is taken;
    - {b gauges}: last-write-wins point values, written under a lock
      (rare writes only).

    Concurrency contract: a shard has a single writer — the domain that
    created it. Snapshot functions ({!events}, {!Counter.value},
    {!metrics_json}, {!trace_json}, {!reset}) read every shard and must
    therefore run when no worker domain is live, i.e. after the joins.
    The pipeline joins all PlOpti domains before returning, so callers
    that snapshot between builds (the bench harness, the fuzz driver,
    tests) satisfy this by construction.

    Recording is always on; the cost of a span is two clock reads and a
    cons. Per-domain buffers are bounded: past the cap events are dropped
    (and counted in [dropped_events] of {!metrics_json}) rather than
    growing without bound under long fuzz runs. *)

type args = (string * Json.t) list

val span : ?cat:string -> ?args:(unit -> args) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a completed span around it — also
    when [f] raises. [?cat] becomes the Chrome trace category (default
    ["calibro"]); [?args] is evaluated once, at close. *)

module Counter : sig
  val add : string -> int -> unit
  val incr : string -> unit

  val value : string -> int
  (** Aggregated over all domain shards; 0 if never touched. *)
end

module Gauge : sig
  val set : string -> float -> unit
  val value : string -> float option
end

module Histogram : sig
  val observe : string -> float -> unit

  type summary = {
    count : int;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  val summary : string -> summary option
  (** Merged over all domain shards; [None] if never observed.
      Percentiles are nearest-rank over the retained samples (per-shard
      retention is capped; [count], [min], [max] and [mean] are exact). *)
end

(** {2 Snapshots} *)

type span_event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;  (** id of the domain that recorded the span *)
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;  (** nesting depth within its domain at open time *)
  ev_args : args;
}

val events : unit -> span_event list
(** Every recorded span, across all domains, sorted by start time. *)

val reset : unit -> unit
(** Clear all recorded events, counters, histograms and gauges. *)

val metrics_json : ?extra:(string * Json.t) list -> unit -> Json.t
(** The flat metrics document CI consumes: [counters], [gauges],
    [histograms] (summaries), [spans] (per-name count/total/mean/max
    seconds) and [dropped_events]. [?extra] fields are appended at the
    top level (the bench harness adds its per-app section there). *)

val trace_json : unit -> Json.t
(** Chrome [trace_event] JSON: an object with a [traceEvents] array of
    complete ("ph":"X") events, timestamps in microseconds relative to
    the first event recorded since program start. *)

val write_file : string -> Json.t -> unit
(** Pretty-print a document to [path] (creating or truncating it). *)

val export :
  ?extra:(string * Json.t) list -> metrics:string option ->
  trace:string option -> unit -> unit
(** The one obs-export code path every entry point (calibroc, calibrod,
    calibro_fuzz, bench) shares: write {!metrics_json} (with [?extra]
    appended) to the [metrics] path and {!trace_json} to the [trace]
    path, skipping whichever is [None]. Being a snapshot, this must run
    after all worker domains have joined. *)
