(** The monotonic clock every duration in this codebase is measured on.

    [Unix.gettimeofday] is wall time: NTP slews and steps it, so intervals
    computed from it can shrink, jump, or go negative. Phase timings,
    Table 6, and the CI perf gate all need intervals that only move
    forward, which is CLOCK_MONOTONIC — exposed to OCaml by bechamel's
    [monotonic_clock] stub. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. The epoch is arbitrary (boot
    time on Linux): only differences are meaningful. *)

val elapsed_s : int64 -> int64 -> float
(** [elapsed_s t0 t1] is [t1 - t0] in seconds. *)

val since_s : int64 -> float
(** [since_s t0] is [elapsed_s t0 (now_ns ())]. *)

val ns_to_us : int64 -> float
(** Nanoseconds to (fractional) microseconds — the Chrome trace unit. *)
