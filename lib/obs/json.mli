(** A minimal JSON tree, printer and parser.

    The exporters need to emit valid JSON for arbitrary span names (method
    names can contain quotes, backslashes, control characters), the obs
    tests need to re-parse what was emitted, and the bench gate needs to
    read the committed baseline — all without adding a JSON dependency the
    container does not have. This module is that common denominator; it is
    not a general-purpose JSON library (no streaming, strings are OCaml
    bytes with \uXXXX escapes decoded as UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** JSON string-literal body for arbitrary bytes: the two mandatory
    escapes (["\""], ["\\"]), the short forms ([\n] [\r] [\t] [\b] [\f])
    and [\u00XX] for the remaining control characters. Bytes >= 0x20 pass
    through unchanged. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [~pretty:true] indents with two spaces (the committed
    baseline is pretty-printed so its diffs review well). *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    Numbers without [.], [e] or an overflowing magnitude parse as {!Int},
    everything else as {!Float}. *)

(** {2 Accessors} (total: [None] on shape mismatch) *)

val member : string -> t -> t option
val get_int : t -> int option
val get_float : t -> float option

(** [get_float] accepts both {!Int} and {!Float}. *)

val get_str : t -> string option
val get_list : t -> t list option
val get_obj : t -> (string * t) list option
