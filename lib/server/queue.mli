(** Bounded admission queue: the backpressure point of calibrod.

    A mutex/condition MPMC queue with a hard capacity. Admission is
    non-blocking — a full queue answers {!Full} immediately so the
    connection handler can send the client a typed [Overloaded] rejection
    instead of buffering without bound or hanging the accept loop.
    Dispatch is FIFO; per-job deadlines ride on the job value and are
    enforced by the worker at dispatch time (an expired job is answered,
    never silently dropped — the client is still waiting on the socket).

    Safe to use from any mix of threads and domains: connection-reader
    threads push, worker domains pop. *)

type 'a t

val create : ?gauge:string -> capacity:int -> unit -> 'a t
(** [capacity] is clamped to at least 1. [?gauge] names a
    {!Calibro_obs.Obs.Gauge} kept equal to the current depth (gauges are
    lock-protected, so updating from reader threads is safe). *)

type push_result = Pushed | Full | Closed

val try_push : 'a t -> 'a -> push_result
(** Never blocks. [Full] and [Closed] leave the queue unchanged. *)

val pop : 'a t -> 'a option
(** Block until an item is available or the queue is closed; [None] only
    after close when every queued item has been drained — so workers that
    loop on [pop] finish all admitted work before exiting. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked poppers. Idempotent. *)

val length : 'a t -> int
val capacity : 'a t -> int
