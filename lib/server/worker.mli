(** The calibrod worker pool: a fixed set of OCaml 5 domains pulling jobs
    off the admission {!Queue} and running {!Calibro_core.Pipeline.build}
    against one shared {!Calibro_cache.Cache} — so identical methods
    compiled for different clients hit warm (the ShareJIT effect).

    Isolation contract: a job can only fail its own request. Parse
    errors, [Build_error], [Ltbo_error], [Pass_error] and any other
    exception a build raises are mapped to a typed
    {!Protocol.rejection} and answered on the job's connection; nothing a
    client sends can kill a worker domain, let alone the daemon.

    Deadlines are enforced at dispatch (an expired job is answered
    [`Deadline_exceeded] without compiling) and re-checked at completion
    (a result the client's deadline already passed is reported as
    exceeded, not as success). A job whose client hung up while queued is
    cancelled without compiling.

    Each worker is a single-threaded domain, so it may freely use the
    per-domain {!Calibro_obs.Obs} counters, histograms and spans; all of
    its instrumentation lands in its own shard and its trace lane. *)

type client_job = {
  j_id : int;
  j_fd : Unix.file_descr;
      (** the client connection; the worker answers and closes it *)
  j_request : Protocol.build_request;
  j_deadline_ns : int64 option;  (** absolute, {!Calibro_obs.Clock} scale *)
  j_accepted_ns : int64;  (** admission time, for queue-wait metrics *)
}

type relink_job = {
  r_digest : string;  (** the drifting app's digest *)
  r_key : Calibro_pgo.Pgo.build_key;
      (** what to rebuild: the registered request with its profile
          replaced by the drifted one *)
}
(** A PGO drift re-link, scheduled by {!Server} when
    {!Calibro_pgo.Pgo.Manager.report} crosses the hysteresis. It runs the
    same build body as a client job — warm, through the shared cache —
    but the result lands in the manager's refresh store
    ({!Calibro_pgo.Pgo.Manager.relink_done}) instead of on a socket. *)

type job = Client of client_job | Relink of relink_job

val key_of_request : Protocol.build_request -> Calibro_pgo.Pgo.build_key
(** The request minus its deadline — the PGO loop's identity for "the
    same build". *)

val request_of_key : Calibro_pgo.Pgo.build_key -> Protocol.build_request
(** Inverse of {!key_of_request} (deadline [None]). *)

type pool

val start :
  workers:int -> cache:Calibro_cache.Cache.t option ->
  ?dict:(unit -> Calibro_oat.Linker.dict option) ->
  ?pgo:Calibro_pgo.Pgo.Manager.t -> queue:job Queue.t -> unit -> pool
(** Spawn [max 1 workers] domains looping on [queue]. [cache] is shared
    by every job ([None] = every build cold). [dict] is re-read at each
    dispatch, so a rotation (the daemon swapping its shared dictionary)
    takes effect on the next job without restarting the pool; the default
    serves no dictionary (every [rq_dict = Some _] request is answered
    [Dict_mismatch]). [pgo] is the drift manager: client builds register
    with it and are served from its refresh store when a relink landed
    for exactly their request; without it, [Relink] jobs are dropped. *)

val join : pool -> unit
(** Wait for every worker to exit; returns only after the queue is closed
    and fully drained. *)

val respond : Unix.file_descr -> Protocol.response -> bool
(** Answer a connection and close it. False if the reply could not be
    delivered (peer already gone) — the fd is closed either way. Never
    raises; used by both workers and the admission path. *)

val client_gone : Unix.file_descr -> bool
(** True if the peer has closed its end (EOF is pending). Used to cancel
    queued jobs whose client disconnected. *)

val build_oat :
  cache:Calibro_cache.Cache.t option -> ?dict:Calibro_oat.Linker.dict ->
  Protocol.build_request ->
  (Calibro_oat.Oat_file.t * Protocol.build_stats, Protocol.rejection) result
(** The job body without the socket: parse, build, summarize. The serving
    path feeds the [Ok] case to {!Protocol.emit_built} so the response
    frame is written from the structured OAT without ever materializing
    the container string.

    [dict] is the dictionary this daemon serves. A request with
    [rq_dict = None] builds self-contained regardless; [Some want] must
    equal [dict]'s digest exactly or the answer is a typed
    [Dict_mismatch] carrying both digests. *)

val build_response :
  cache:Calibro_cache.Cache.t option -> ?dict:Calibro_oat.Linker.dict ->
  Protocol.build_request -> Protocol.response
(** {!build_oat} re-wrapped as the wire-level response (the [Built] oat
    field is the serialized container) — exposed so tests and the load
    generator can produce the exact expected response for a request
    in-process, and as the reference encoder the frame-equivalence tests
    hold {!Protocol.emit_built} against. *)

val respond_built :
  Unix.file_descr ->
  oat:Calibro_oat.Oat_file.t -> stats:Protocol.build_stats -> bool
(** {!respond} for a successful build, zero-copy: the frame is emitted
    into the domain's scratch arena and drained with staged writes. Same
    delivery contract as {!respond}. *)
