(** The calibrod wire protocol: length-prefixed binary frames over a
    Unix-domain stream socket.

    Every message is one frame: a 4-byte magic ({!magic}), a little-endian
    u32 payload length, then the payload. Frames larger than {!max_frame}
    are rejected before the payload is read, and a frame cut short by the
    peer surfaces as a clean {!Frame_error}, never a blind [Bytes.sub]
    failure.

    The connection lifecycle is one-shot, like HTTP/1.0: the client sends
    exactly one request frame, the daemon answers with exactly one
    response frame and closes. Admission control, deadlines and drain all
    speak through the typed {!rejection} codes, so a client can always
    distinguish "the daemon refused" from "the connection died".

    The codec is hand-rolled (no [Marshal] on the wire): every field is
    written explicitly, so a frame produced by one build of calibrod can
    be decoded by another, and a corrupt frame fails field-by-field with
    a message saying what ran out. *)

(** {2 Framing} *)

val magic : string
(** ["CLB1"] — 4 bytes at the start of every frame. *)

val max_frame : int
(** Upper bound on a payload, in bytes (64 MiB). Oversized frames are
    rejected from the header alone. *)

exception Frame_error of string
(** Raised by {!read_frame} on EOF, bad magic, an oversized length or a
    payload cut short — protocol-level damage, as opposed to
    [Unix.Unix_error] which escapes for the caller to interpret (e.g. a
    receive timeout on a stalled client). *)

val read_frame : Unix.file_descr -> string
(** Read one frame, returning its payload.
    @raise Frame_error on protocol damage (see above). *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame [payload] and write it fully. Unix errors (e.g. [EPIPE] when
    the peer vanished) escape to the caller. *)

val to_frame : string -> string
(** The exact bytes {!write_frame} would send: header plus payload. The
    fault-injection tests mangle this ({!Calibro_check.Fault.Server}). *)

(** {2 Requests} *)

type build_request = {
  rq_config : Calibro_core.Config.t;
      (** Full evaluation configuration; [hot_methods] travels inline. *)
  rq_dexsim : string;  (** the application, in .dexsim text *)
  rq_profile : string option;
      (** optional simpleperf-style profile text; its hot set is merged
          into [rq_config.hot_methods] server-side *)
  rq_deadline_ms : int option;
      (** per-job deadline, relative to admission; a job that cannot be
          dispatched (or finished) in time is answered [`Deadline_exceeded] *)
  rq_dict : string option;
      (** digest of the store-wide shared dictionary the build must link
          against ({!Calibro_dict.Dict.digest}); the daemon answers
          [Dict_mismatch] unless it serves exactly that dictionary.
          [None] requests a self-contained build (the daemon's ambient
          dictionary, if any, is not used). *)
  rq_shelve : float option;
      (** profile coverage threshold for method shelving: methods outside
          the accumulated profile's hot set at this coverage are compiled
          to shelf fault stubs ({!Calibro_shelve.Shelve}). Requires a
          profile — [rq_profile] or the daemon's PGO accumulator — to
          derive the warm set from; without one the build is unshelved.
          [None] (or the daemon's [--shelve-threshold] default, applied
          at admission when this is [None]) disables shelving. *)
}

type profile_report = {
  pr_app : string;
      (** the app's digest — {!request_app_digest} of the build that
          produced the OAT the client is running, i.e.
          [Calibro_chash.Chash.string rq_dexsim] *)
  pr_profile : string;
      (** simpleperf-style profile text ({!Calibro_profile.Profile}
          format) collected from that OAT *)
}
(** The PGO feedback frame: per-method cycle counts streamed back from a
    client running a served OAT. *)

(** What a client can ask: a build, the dictionary handshake — [Hello]
    answers with {!response.Dict_info} carrying the digest of the shared
    dictionary the daemon currently links against, so a client can learn
    what to put in [rq_dict] (and when a rotation happened) — or a
    profile report feeding the PGO drift loop. Like [Hello], [Report] is
    answered even while the daemon drains (merging a report is cheap and
    side-effect-free; a drain never schedules a relink). *)
type request = Build of build_request | Hello | Report of profile_report

val encode_request : build_request -> string
(** Encodes [Build r]. *)

val encode_hello : unit -> string

val encode_report : profile_report -> string
(** Encodes [Report r]. *)

val decode_request : string -> (request, string) result
(** Payload codec; [decode_request (encode_request r) = Ok (Build r)],
    [decode_request (encode_hello ()) = Ok Hello] and
    [decode_request (encode_report r) = Ok (Report r)]. *)

(** {2 Responses} *)

type build_stats = {
  bs_text_size : int;
  bs_methods : int;
  bs_thunks : int;
  bs_outlined : int;
  bs_build_s : float;  (** server-side wall time of the pipeline proper *)
}

(** Why the daemon refused (or failed) a request. Every rejection is a
    first-class response: clients never infer failure from a dropped
    connection. *)
type rejection =
  | Malformed of string  (** frame decoded but the request did not *)
  | Parse_error of string  (** .dexsim or profile text did not parse *)
  | Build_failed of string
      (** typed pipeline failure: [Build_error], [Ltbo_error],
          [Pass_error] — the job was bad, the daemon is fine *)
  | Overloaded  (** admission queue full: back off and retry *)
  | Deadline_exceeded
  | Draining  (** daemon is shutting down and refuses new work *)
  | Unavailable
      (** the {!Router} found no live shard: every daemon in the fleet is
          down or unreachable after retries *)
  | Internal of string  (** anything else; the daemon survived it *)
  | Dict_mismatch of { dm_want : string option; dm_have : string option }
      (** the request's [rq_dict] names a dictionary this daemon does not
          serve (e.g. it rotated since the client's [Hello]); the client
          should re-handshake and retry *)
  | Unknown_app of string
      (** a {!profile_report} named an app digest this daemon never
          built (or PGO is disabled): there is no served hot set to
          drift from, so the report cannot be attributed *)

val rejection_to_string : rejection -> string

type response =
  | Built of { oat : string;  (** [Calibro_oat.Oat_file.to_bytes] image *)
               stats : build_stats }
  | Rejected of rejection
  | Dict_info of { di_digest : string option }
      (** answer to [Hello]: the digest of the shared dictionary the
          daemon links dictionary-relative builds against ([None] = it
          serves only self-contained builds) *)
  | Report_ack of { ra_drift : float; ra_relink : bool }
      (** answer to [Report]: the drift score of the accumulated profile
          against the served hot set, and whether this report crossed
          the hysteresis threshold and scheduled an incremental
          re-link *)

val encode_response : response -> string
val decode_response : string -> (response, string) result

(** {2 Zero-copy Built frames}

    The serving hot path: a [Built] response assembled directly in an
    off-heap {!Calibro_oat.Arena.t} — frame header, response tag, OAT
    container ({!Calibro_oat.Oat_file.emit}), stats — and drained to the
    socket with staged writes, instead of the
    [to_bytes]/[encode_response]/[to_frame] chain that copies the
    container several times. Byte-identical to
    [write_frame fd (encode_response (Built ...))]. *)

val emit_built :
  Calibro_oat.Arena.t -> oat:Calibro_oat.Oat_file.t -> stats:build_stats ->
  unit
(** Append the complete frame (header included) for
    [Built { oat = to_bytes oat; stats }] to the arena.
    @raise Frame_error if the payload would exceed {!max_frame}. *)

val write_arena : Unix.file_descr -> Calibro_oat.Arena.t -> unit
(** Write the arena's contents fully; retries [EINTR] and short writes.
    Unix errors (e.g. [EPIPE]) escape like {!write_frame}'s. *)

(** {2 Router views}

    The {!Router} forwards request and response payloads byte-for-byte;
    it never re-encodes a frame. These helpers are the only two peeks it
    takes into a payload. *)

val request_app_digest : string -> string option
(** The shard-affinity key of an encoded request: the
    {!Calibro_chash.Chash} digest of its [rq_dexsim] text, read by
    skipping (not decoding) the leading config.
    [None] if the payload is not a well-formed build request up to that
    field — the router then hashes the raw payload instead. *)

val response_is_draining : string -> bool
(** Whether an encoded response payload is exactly [Rejected Draining] —
    the signal that a shard is leaving the fleet and the request should
    be re-routed to a survivor. *)
