(* Endpoint values and the listen/connect plumbing. See transport.mli. *)

type endpoint =
  | Unix_socket of { path : string }
  | Tcp of { host : string; port : int }

let to_string = function
  | Unix_socket { path } -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let of_string s =
  let s = String.trim s in
  let tcp spec =
    match String.rindex_opt spec ':' with
    | None -> Error (Printf.sprintf "tcp endpoint %S has no :PORT" spec)
    | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 0xFFFF && host <> "" ->
        Ok (Tcp { host; port = p })
      | _ -> Error (Printf.sprintf "bad tcp endpoint %S (want HOST:PORT)" spec))
  in
  if s = "" then Error "empty endpoint"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_socket { path = String.sub s 5 (String.length s - 5) })
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else if String.contains s '/' then Ok (Unix_socket { path = s })
  else
    match tcp s with
    | Ok _ as ok -> ok
    | Error _ ->
      Error
        (Printf.sprintf
           "cannot read endpoint %S (want unix:PATH, tcp:HOST:PORT, a \
            socket path containing '/', or HOST:PORT)"
           s)

let inet_addr_of host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ ->
      raise
        (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))

let sockaddr_of = function
  | Unix_socket { path } -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (inet_addr_of host, port)

let domain_of = function
  | Unix_socket _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let unlink_quietly path = try Unix.unlink path with Unix.Unix_error _ -> ()
let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen ?(backlog = 64) ep =
  let fd = Unix.socket (domain_of ep) Unix.SOCK_STREAM 0 in
  match
    (match ep with
     | Unix_socket { path } -> unlink_quietly path
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
    Unix.bind fd (sockaddr_of ep);
    Unix.listen fd backlog;
    (* An ephemeral bind (port 0) is only useful if the caller learns the
       port the kernel picked. *)
    match (ep, Unix.getsockname fd) with
    | Tcp { host; _ }, Unix.ADDR_INET (_, port) -> Tcp { host; port }
    | _ -> ep
  with
  | resolved -> (fd, resolved)
  | exception e ->
    close_quietly fd;
    raise e

let connect ep =
  let fd = Unix.socket (domain_of ep) Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (sockaddr_of ep);
    match ep with
    | Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | Unix_socket _ -> ()
  with
  | () -> fd
  | exception e ->
    close_quietly fd;
    raise e

let close_listener ep fd =
  close_quietly fd;
  match ep with
  | Unix_socket { path } -> unlink_quietly path
  | Tcp _ -> ()
