(* The consistent-hash fleet router. See router.mli for the routing,
   failover and observability contracts. *)

module Obs = Calibro_obs.Obs

(* ---- splitmix64 ----------------------------------------------------------

   The same finalizer Parallel.partition draws from: uniform in all 64
   output bits, so ring points and jitter need no further whitening. *)

let splitmix64 (x : int64) : int64 =
  let z = Int64.add x 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* ---- The ring ------------------------------------------------------------ *)

module Ring = struct
  (* Virtual nodes as two parallel arrays sorted by point (unsigned);
     lookup is one binary search. *)
  type t = {
    points : int64 array;
    owners : int array;
    n_shards : int;
    n_replicas : int;
  }

  let shards t = t.n_shards
  let replicas t = t.n_replicas

  (* Point of (shard, replica): splitmix64 over the shard's own mixed id
     xor the replica index — the digest⊕replica scheme, applied to the
     shard's identity. *)
  let point ~shard ~replica =
    splitmix64
      (Int64.logxor
         (splitmix64 (Int64.of_int (shard + 1)))
         (Int64.of_int replica))

  let sorted points_owners =
    let a = Array.copy points_owners in
    Array.sort
      (fun (p1, o1) (p2, o2) ->
        match Int64.unsigned_compare p1 p2 with
        | 0 -> compare o1 o2
        | c -> c)
      a;
    { points = Array.map fst a;
      owners = Array.map snd a;
      n_shards = 0;
      n_replicas = 0 }

  let make ~shards ~replicas =
    if shards <= 0 then invalid_arg "Ring.make: shards must be positive";
    let replicas = max 1 replicas in
    let pts =
      Array.init (shards * replicas) (fun i ->
          let shard = i / replicas and replica = i mod replicas in
          (point ~shard ~replica, shard))
    in
    { (sorted pts) with n_shards = shards; n_replicas = replicas }

  (* Key point of an app digest: its first 8 bytes (MD5 is uniform, but
     splitmix64 again costs nothing and covers shorter fallback keys). *)
  let key_point key =
    let h = ref 0L in
    let n = min 8 (String.length key) in
    for i = 0 to n - 1 do
      h := Int64.logor !h (Int64.shift_left (Int64.of_int (Char.code key.[i])) (8 * i))
    done;
    (* Fold any remaining bytes in so short/long keys both spread. *)
    for i = n to String.length key - 1 do
      h := splitmix64 (Int64.add !h (Int64.of_int (Char.code key.[i])))
    done;
    splitmix64 !h

  (* Index of the first point >= p (unsigned), wrapping to 0. *)
  let successor_ix t p =
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare t.points.(mid) p < 0 then lo := mid + 1
      else hi := mid
    done;
    if !lo = n then 0 else !lo

  let lookup t key = t.owners.(successor_ix t (key_point key))

  let order t key =
    let n = Array.length t.owners in
    let start = successor_ix t (key_point key) in
    let seen = Array.make t.n_shards false in
    let out = ref [] in
    for i = 0 to n - 1 do
      let o = t.owners.((start + i) mod n) in
      if not seen.(o) then begin
        seen.(o) <- true;
        out := o :: !out
      end
    done;
    List.rev !out

  let remove t i =
    if t.n_shards <= 1 then
      invalid_arg "Ring.remove: cannot empty the ring";
    let keep = ref [] in
    for j = Array.length t.owners - 1 downto 0 do
      if t.owners.(j) <> i then keep := (t.points.(j), t.owners.(j)) :: !keep
    done;
    { (sorted (Array.of_list !keep)) with
      n_shards = t.n_shards - 1;
      n_replicas = t.n_replicas }
end

(* ---- Configuration ------------------------------------------------------- *)

type config = {
  listen : Transport.endpoint;
  shards : Transport.endpoint array;
  replicas : int;
  max_attempts : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  backoff_seed : int;
  health_period_s : float;
  recv_timeout_s : float;
  sleep : float -> unit;
}

let default_config ~listen ~shards =
  { listen;
    shards;
    replicas = 128;
    max_attempts = 4;
    backoff_base_s = 0.01;
    backoff_cap_s = 0.2;
    backoff_seed = 1;
    health_period_s = 0.5;
    recv_timeout_s = 30.0;
    sleep = Thread.delay }

(* ---- Router state -------------------------------------------------------- *)

type shard = {
  sh_endpoint : Transport.endpoint;
  sh_up : bool Atomic.t;
  sh_forwarded : int Atomic.t;
  sh_retries : int Atomic.t;
  sh_failovers : int Atomic.t;
}

type shard_totals = { s_forwarded : int; s_retries : int; s_failovers : int }

type totals = {
  t_requests : int;
  t_forwarded : int;
  t_unavailable : int;
  t_malformed : int;
  t_conn_errors : int;
  t_shards : shard_totals array;
}

type t = {
  cfg : config;
  ring : Ring.t;
  shards : shard array;
  listen_ep : Transport.endpoint;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  drained : bool Atomic.t;
  drain_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  readers : int Atomic.t;
  jitter : int Atomic.t;  (* per-backoff draw index into the seeded stream *)
  a_requests : int Atomic.t;
  a_unavailable : int Atomic.t;
  a_malformed : int Atomic.t;
  a_conn_errors : int Atomic.t;
}

let endpoint t = t.listen_ep
let draining t = Atomic.get t.stop
let request_drain t = Atomic.set t.stop true
let shard_up t i = Atomic.get t.shards.(i).sh_up

let totals t =
  { t_requests = Atomic.get t.a_requests;
    t_forwarded =
      Array.fold_left
        (fun acc s -> acc + Atomic.get s.sh_forwarded)
        0 t.shards;
    t_unavailable = Atomic.get t.a_unavailable;
    t_malformed = Atomic.get t.a_malformed;
    t_conn_errors = Atomic.get t.a_conn_errors;
    t_shards =
      Array.map
        (fun s ->
          { s_forwarded = Atomic.get s.sh_forwarded;
            s_retries = Atomic.get s.sh_retries;
            s_failovers = Atomic.get s.sh_failovers })
        t.shards }

(* ---- Forwarding ---------------------------------------------------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Capped exponential backoff with full jitter: a uniform draw from
   [0, min(cap, base * 2^(attempt-1))], the decorrelating scheme that
   keeps a thundering herd of retries from re-synchronizing on a shard
   that just came back. The stream is seeded, so a test that injects
   [sleep] sees reproducible delays. *)
let backoff_s t ~attempt =
  let ceiling =
    Float.min t.cfg.backoff_cap_s
      (t.cfg.backoff_base_s *. Float.of_int (1 lsl min 16 (attempt - 1)))
  in
  let draw = Atomic.fetch_and_add t.jitter 1 in
  let bits =
    splitmix64 (Int64.add (Int64.of_int t.cfg.backoff_seed) (Int64.of_int draw))
  in
  let u =
    Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.0
  in
  ceiling *. u

(* One forward attempt: connect, send the request frame verbatim, read
   the response frame verbatim. [`Draining] separates "shard is leaving"
   from transport failure only for readability — both fail over. *)
let try_forward t shard payload =
  match Transport.connect shard.sh_endpoint with
  | exception Unix.Unix_error _ -> Error `Io
  | fd -> (
    Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
    if t.cfg.recv_timeout_s > 0.0 then
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.recv_timeout_s;
    match
      Protocol.write_frame fd payload;
      Protocol.read_frame fd
    with
    | resp when Protocol.response_is_draining resp -> Error `Draining
    | resp -> Ok resp
    | exception Unix.Unix_error _ -> Error `Io
    | exception Protocol.Frame_error _ -> Error `Io)

let respond_quietly client_fd payload =
  match Protocol.write_frame client_fd payload with
  | () -> ()
  | exception Unix.Unix_error _ -> ()
  | exception Protocol.Frame_error _ -> ()

(* Route one request payload: walk the ring order from the key's owner,
   preferring live shards and avoiding the one that just failed; when
   nothing is marked up, probe down shards anyway (a fast ECONNREFUSED if
   they are truly dead, an instant recovery if they are back). *)
let route t client_fd payload =
  let key =
    match Protocol.request_app_digest payload with
    | Some d -> d
    | None -> Calibro_chash.Chash.string payload
  in
  let order = Ring.order t.ring key in
  let pick ~last_failed =
    let not_last i = match last_failed with None -> true | Some l -> i <> l in
    let first pred = List.find_opt pred order in
    match first (fun i -> shard_up t i && not_last i) with
    | Some i -> Some i
    | None -> (
      match first (fun i -> shard_up t i) with
      | Some i -> Some i
      | None -> (
        match first not_last with Some i -> Some i | None -> first (fun _ -> true)))
  in
  let rec go attempt last_failed =
    if attempt > t.cfg.max_attempts then begin
      Atomic.incr t.a_unavailable;
      respond_quietly client_fd
        (Protocol.encode_response (Protocol.Rejected Protocol.Unavailable))
    end
    else
      match pick ~last_failed with
      | None ->
        Atomic.incr t.a_unavailable;
        respond_quietly client_fd
          (Protocol.encode_response (Protocol.Rejected Protocol.Unavailable))
      | Some i ->
        (match last_failed with
         | Some l when l <> i ->
           (* The request is leaving the failed shard for a different
              one: that is the failover, charged to the shard lost. *)
           Atomic.incr t.shards.(l).sh_failovers
         | _ -> ());
        if attempt > 1 then t.cfg.sleep (backoff_s t ~attempt:(attempt - 1));
        let shard = t.shards.(i) in
        (match try_forward t shard payload with
         | Ok resp ->
           Atomic.set shard.sh_up true;
           Atomic.incr shard.sh_forwarded;
           respond_quietly client_fd resp
         | Error (`Io | `Draining) ->
           Atomic.set shard.sh_up false;
           Atomic.incr shard.sh_retries;
           go (attempt + 1) (Some i))
  in
  go 1 None

let handle_connection t client_fd =
  Atomic.incr t.a_requests;
  match Protocol.read_frame client_fd with
  | exception Protocol.Frame_error m ->
    Atomic.incr t.a_malformed;
    respond_quietly client_fd
      (Protocol.encode_response (Protocol.Rejected (Protocol.Malformed m)))
  | exception Unix.Unix_error _ -> Atomic.incr t.a_malformed
  | payload -> route t client_fd payload

(* ---- Health probing ------------------------------------------------------ *)

let check_health t =
  Array.iter
    (fun s ->
      if not (Atomic.get s.sh_up) then
        match Transport.connect s.sh_endpoint with
        | fd ->
          close_quietly fd;
          Atomic.set s.sh_up true
        | exception Unix.Unix_error _ -> ())
    t.shards

(* The prober runs on a real clock deliberately — it is a liveness
   mechanism, not request logic — but wakes in short slices so drain
   never waits a full period on it. *)
let health_loop t () =
  let rec sleep_until deadline =
    if not (Atomic.get t.stop) then begin
      let now = Unix.gettimeofday () in
      if now < deadline then begin
        Thread.delay (Float.min 0.05 (deadline -. now));
        sleep_until deadline
      end
    end
  in
  while not (Atomic.get t.stop) do
    sleep_until (Unix.gettimeofday () +. t.cfg.health_period_s);
    if not (Atomic.get t.stop) then check_health t
  done

(* ---- Lifecycle ----------------------------------------------------------- *)

(* A reader thread dying must not kill its connection silently for *any*
   exception: only the I/O and protocol failures a hostile or dying peer
   can cause are expected here, and those are dropped (counted in
   [router.conn_errors]). Everything else — [Out_of_memory],
   [Stack_overflow], [Assert_failure], any programming error — re-raises
   and terminates the reader thread loudly, because swallowing an
   asynchronous exception leaves the process wedged in a state no counter
   explains. *)
let count_as_conn_error = function
  | Unix.Unix_error _ | Protocol.Frame_error _ | Sys_error _ | End_of_file ->
    true
  | _ -> false

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get t.stop) then loop ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      if Atomic.get t.stop then close_quietly fd
      else begin
        Atomic.incr t.readers;
        ignore
          (Thread.create
             (fun () ->
               Fun.protect
                 ~finally:(fun () -> Atomic.decr t.readers)
                 (fun () ->
                   Fun.protect
                     ~finally:(fun () -> close_quietly fd)
                     (fun () ->
                       try handle_connection t fd
                       with e when count_as_conn_error e ->
                         Atomic.incr t.a_conn_errors)))
             ())
      end;
      loop ()
  in
  loop ()

let create (cfg : config) =
  if Array.length cfg.shards = 0 then
    invalid_arg "Router.create: no shards configured";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, listen_ep = Transport.listen cfg.listen in
  let t =
    { cfg;
      ring = Ring.make ~shards:(Array.length cfg.shards) ~replicas:cfg.replicas;
      shards =
        Array.map
          (fun ep ->
            { sh_endpoint = ep;
              sh_up = Atomic.make true;
              sh_forwarded = Atomic.make 0;
              sh_retries = Atomic.make 0;
              sh_failovers = Atomic.make 0 })
          cfg.shards;
      listen_ep;
      listen_fd;
      stop = Atomic.make false;
      drained = Atomic.make false;
      drain_lock = Mutex.create ();
      accept_thread = None;
      health_thread = None;
      readers = Atomic.make 0;
      jitter = Atomic.make 0;
      a_requests = Atomic.make 0;
      a_unavailable = Atomic.make 0;
      a_malformed = Atomic.make 0;
      a_conn_errors = Atomic.make 0 }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  if cfg.health_period_s > 0.0 then
    t.health_thread <- Some (Thread.create (health_loop t) ());
  t

let drain t =
  Mutex.lock t.drain_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.drain_lock) @@ fun () ->
  if not (Atomic.get t.drained) then begin
    Atomic.set t.stop true;
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.health_thread with Some th -> Thread.join th | None -> ());
    (* In-flight relays run to completion: their shards answer or time
       out, never the router dropping them. *)
    while Atomic.get t.readers > 0 do
      Thread.delay 0.001
    done;
    Transport.close_listener t.listen_ep t.listen_fd;
    let tt = totals t in
    Obs.Counter.add "router.requests.total" tt.t_requests;
    Obs.Counter.add "router.requests.forwarded" tt.t_forwarded;
    Obs.Counter.add "router.requests.unavailable" tt.t_unavailable;
    Obs.Counter.add "router.requests.malformed" tt.t_malformed;
    Obs.Counter.add "router.conn_errors" tt.t_conn_errors;
    Array.iteri
      (fun i s ->
        let name field = Printf.sprintf "router.shard%d.%s" i field in
        Obs.Counter.add (name "forwarded") s.s_forwarded;
        Obs.Counter.add (name "retries") s.s_retries;
        Obs.Counter.add (name "failovers") s.s_failovers)
      tt.t_shards;
    Atomic.set t.drained true
  end

let join t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done;
  drain t

let install_sigterm t =
  let handle = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle
