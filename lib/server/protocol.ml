(* The calibrod wire protocol. See protocol.mli for the frame layout and
   lifecycle; this file is the codec.

   Encoding discipline: little-endian fixed-width integers, u32
   length-prefixed strings, 0/1 bytes for booleans and option tags —
   nothing implicit, no [Marshal]. Decoding reads through a cursor that
   bounds-checks every field, so damage anywhere in a frame produces a
   message naming the field that ran out rather than an exception from
   the bowels of [Bytes]. *)

open Calibro_core

let magic = "CLB1"
let max_frame = 64 * 1024 * 1024

exception Frame_error of string

(* ---- Socket framing ---------------------------------------------------- *)

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let really_read fd n ~what =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then buf
    else
      let k = restart_on_intr (fun () -> Unix.read fd buf off (n - off)) in
      if k = 0 then
        raise
          (Frame_error
             (Printf.sprintf "unexpected EOF reading %s (%d of %d bytes)"
                what off n))
      else go (off + k)
  in
  go 0

let really_write fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = restart_on_intr (fun () -> Unix.write fd b off (n - off)) in
      go (off + k)
  in
  go 0

let header payload =
  let b = Buffer.create 8 in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.contents b

let to_frame payload = header payload ^ payload

let write_frame fd payload =
  if String.length payload > max_frame then
    raise (Frame_error "refusing to send oversized frame");
  really_write fd (to_frame payload)

let read_frame fd =
  let hdr = really_read fd 8 ~what:"frame header" in
  let m = Bytes.sub_string hdr 0 4 in
  if m <> magic then
    raise (Frame_error (Printf.sprintf "bad frame magic %S" m));
  let len = Int32.to_int (Bytes.get_int32_le hdr 4) in
  if len < 0 || len > max_frame then
    raise (Frame_error (Printf.sprintf "oversized frame: %d bytes" len));
  Bytes.to_string (really_read fd len ~what:"frame payload")

(* ---- Primitive writers -------------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "u32 out of range: %d" v);
  Buffer.add_int32_le b (Int32.of_int v)

let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_opt w b = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    w b v

let w_list w b l =
  w_u32 b (List.length l);
  List.iter (w b) l

(* ---- Primitive readers --------------------------------------------------

   A cursor over the payload string. Every read names its field so a
   truncated or mangled frame reports *which* field was cut. *)

exception Decode_error of string

type cursor = { src : string; mutable pos : int }

let need c n ~what =
  if c.pos + n > String.length c.src then
    raise
      (Decode_error
         (Printf.sprintf "truncated payload: %s needs %d bytes at offset %d, \
                          payload is %d bytes"
            what n c.pos (String.length c.src)))

let r_u8 c ~what =
  need c 1 ~what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_bool c ~what =
  match r_u8 c ~what with
  | 0 -> false
  | 1 -> true
  | v -> raise (Decode_error (Printf.sprintf "bad boolean %d in %s" v what))

let r_u32 c ~what =
  need c 4 ~what;
  let v = Int32.to_int (String.get_int32_le c.src c.pos) in
  c.pos <- c.pos + 4;
  (* int32 round-trips negative for the top bit; reinterpret as u32 *)
  let v = v land 0xFFFFFFFF in
  v

let r_f64 c ~what =
  need c 8 ~what;
  let v = Int64.float_of_bits (String.get_int64_le c.src c.pos) in
  c.pos <- c.pos + 8;
  v

let r_str c ~what =
  let len = r_u32 c ~what:(what ^ " length") in
  need c len ~what;
  let s = String.sub c.src c.pos len in
  c.pos <- c.pos + len;
  s

let r_opt r c ~what =
  match r_u8 c ~what:(what ^ " tag") with
  | 0 -> None
  | 1 -> Some (r c ~what)
  | v -> raise (Decode_error (Printf.sprintf "bad option tag %d in %s" v what))

let r_list r c ~what =
  let n = r_u32 c ~what:(what ^ " count") in
  List.init n (fun i -> r c ~what:(Printf.sprintf "%s[%d]" what i))

let finish c what =
  if c.pos <> String.length c.src then
    raise
      (Decode_error
         (Printf.sprintf "%d trailing bytes after %s"
            (String.length c.src - c.pos)
            what))

let decoding f s =
  match f { src = s; pos = 0 } with
  | v -> Ok v
  | exception Decode_error m -> Error m

(* ---- Configuration ------------------------------------------------------ *)

let w_method_ref b (m : Calibro_dex.Dex_ir.method_ref) =
  w_str b m.Calibro_dex.Dex_ir.class_name;
  w_str b m.Calibro_dex.Dex_ir.method_name

let r_method_ref c ~what =
  let class_name = r_str c ~what:(what ^ ".class") in
  let method_name = r_str c ~what:(what ^ ".method") in
  { Calibro_dex.Dex_ir.class_name; method_name }

let w_config b (cfg : Config.t) =
  w_str b cfg.Config.name;
  w_bool b cfg.Config.optimize_ir;
  w_bool b cfg.Config.cto;
  w_bool b cfg.Config.ltbo;
  w_u32 b cfg.Config.parallel_trees;
  w_list w_method_ref b cfg.Config.hot_methods;
  w_u32 b cfg.Config.ltbo_min_length;
  w_u32 b cfg.Config.ltbo_max_length;
  w_u32 b cfg.Config.ltbo_rounds

let r_config c =
  let name = r_str c ~what:"config.name" in
  let optimize_ir = r_bool c ~what:"config.optimize_ir" in
  let cto = r_bool c ~what:"config.cto" in
  let ltbo = r_bool c ~what:"config.ltbo" in
  let parallel_trees = r_u32 c ~what:"config.parallel_trees" in
  let hot_methods = r_list r_method_ref c ~what:"config.hot_methods" in
  let ltbo_min_length = r_u32 c ~what:"config.ltbo_min_length" in
  let ltbo_max_length = r_u32 c ~what:"config.ltbo_max_length" in
  let ltbo_rounds = r_u32 c ~what:"config.ltbo_rounds" in
  { Config.name; optimize_ir; cto; ltbo; parallel_trees; hot_methods;
    ltbo_min_length; ltbo_max_length; ltbo_rounds }

(* ---- Requests ------------------------------------------------------------ *)

type build_request = {
  rq_config : Config.t;
  rq_dexsim : string;
  rq_profile : string option;
  rq_deadline_ms : int option;
  rq_dict : string option;
  rq_shelve : float option;
}

type profile_report = { pr_app : string; pr_profile : string }

type request = Build of build_request | Hello | Report of profile_report

let tag_build = 1
let tag_hello = 2
let tag_report = 3

let encode_request (r : build_request) =
  let b = Buffer.create (String.length r.rq_dexsim + 256) in
  w_u8 b tag_build;
  w_config b r.rq_config;
  w_str b r.rq_dexsim;
  w_opt w_str b r.rq_profile;
  w_opt w_u32 b r.rq_deadline_ms;
  w_opt w_str b r.rq_dict;
  w_opt w_f64 b r.rq_shelve;
  Buffer.contents b

let encode_hello () = String.make 1 (Char.chr tag_hello)

let encode_report (r : profile_report) =
  let b = Buffer.create (String.length r.pr_profile + 64) in
  w_u8 b tag_report;
  w_str b r.pr_app;
  w_str b r.pr_profile;
  Buffer.contents b

let decode_request =
  decoding @@ fun c ->
  let tag = r_u8 c ~what:"request tag" in
  if tag = tag_hello then begin
    finish c "hello request";
    Hello
  end
  else if tag = tag_report then begin
    let pr_app = r_str c ~what:"report.app" in
    let pr_profile = r_str c ~what:"report.profile" in
    finish c "profile report";
    Report { pr_app; pr_profile }
  end
  else begin
    if tag <> tag_build then
      raise (Decode_error (Printf.sprintf "unknown request tag %d" tag));
    let rq_config = r_config c in
    let rq_dexsim = r_str c ~what:"dexsim" in
    let rq_profile = r_opt r_str c ~what:"profile" in
    let rq_deadline_ms = r_opt r_u32 c ~what:"deadline_ms" in
    let rq_dict = r_opt r_str c ~what:"dict" in
    let rq_shelve = r_opt r_f64 c ~what:"shelve" in
    finish c "build request";
    Build
      { rq_config; rq_dexsim; rq_profile; rq_deadline_ms; rq_dict; rq_shelve }
  end

(* ---- Responses ----------------------------------------------------------- *)

type build_stats = {
  bs_text_size : int;
  bs_methods : int;
  bs_thunks : int;
  bs_outlined : int;
  bs_build_s : float;
}

type rejection =
  | Malformed of string
  | Parse_error of string
  | Build_failed of string
  | Overloaded
  | Deadline_exceeded
  | Draining
  | Unavailable
  | Internal of string
  | Dict_mismatch of { dm_want : string option; dm_have : string option }
  | Unknown_app of string

let opt_digest = function None -> "none" | Some d -> d

let rejection_to_string = function
  | Malformed m -> "malformed request: " ^ m
  | Parse_error m -> "parse error: " ^ m
  | Build_failed m -> "build failed: " ^ m
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline exceeded"
  | Draining -> "draining"
  | Unavailable -> "unavailable: no live shard"
  | Internal m -> "internal error: " ^ m
  | Dict_mismatch { dm_want; dm_have } ->
    Printf.sprintf "dictionary mismatch: request wants %s, daemon serves %s"
      (opt_digest dm_want) (opt_digest dm_have)
  | Unknown_app d -> Printf.sprintf "unknown app %s: never built here" d

type response =
  | Built of { oat : string; stats : build_stats }
  | Rejected of rejection
  | Dict_info of { di_digest : string option }
  | Report_ack of { ra_drift : float; ra_relink : bool }

let tag_built = 1
let tag_rejected = 2
let tag_dict_info = 3
let tag_report_ack = 4

(* Rejection codes on the wire; codes with a message carry one string
   (Dict_mismatch carries its two optional digests). *)
let rejection_code = function
  | Malformed _ -> 1
  | Parse_error _ -> 2
  | Build_failed _ -> 3
  | Overloaded -> 4
  | Deadline_exceeded -> 5
  | Draining -> 6
  | Internal _ -> 7
  | Unavailable -> 8
  | Dict_mismatch _ -> 9
  | Unknown_app _ -> 10

let encode_response (r : response) =
  let b =
    Buffer.create
      (match r with Built { oat; _ } -> String.length oat + 64 | _ -> 64)
  in
  (match r with
   | Built { oat; stats } ->
     w_u8 b tag_built;
     w_str b oat;
     w_u32 b stats.bs_text_size;
     w_u32 b stats.bs_methods;
     w_u32 b stats.bs_thunks;
     w_u32 b stats.bs_outlined;
     w_f64 b stats.bs_build_s
   | Rejected rej ->
     w_u8 b tag_rejected;
     w_u8 b (rejection_code rej);
     (match rej with
      | Malformed m | Parse_error m | Build_failed m | Internal m ->
        w_str b m
      | Dict_mismatch { dm_want; dm_have } ->
        w_opt w_str b dm_want;
        w_opt w_str b dm_have
      | Unknown_app d -> w_str b d
      | Overloaded | Deadline_exceeded | Draining | Unavailable -> ())
   | Dict_info { di_digest } ->
     w_u8 b tag_dict_info;
     w_opt w_str b di_digest
   | Report_ack { ra_drift; ra_relink } ->
     w_u8 b tag_report_ack;
     w_f64 b ra_drift;
     w_bool b ra_relink);
  Buffer.contents b

let decode_response =
  decoding @@ fun c ->
  let tag = r_u8 c ~what:"response tag" in
  let r =
    if tag = tag_built then begin
      let oat = r_str c ~what:"oat" in
      let bs_text_size = r_u32 c ~what:"stats.text_size" in
      let bs_methods = r_u32 c ~what:"stats.methods" in
      let bs_thunks = r_u32 c ~what:"stats.thunks" in
      let bs_outlined = r_u32 c ~what:"stats.outlined" in
      let bs_build_s = r_f64 c ~what:"stats.build_s" in
      Built
        { oat;
          stats =
            { bs_text_size; bs_methods; bs_thunks; bs_outlined; bs_build_s } }
    end
    else if tag = tag_rejected then begin
      let code = r_u8 c ~what:"rejection code" in
      let msg ~what = r_str c ~what in
      Rejected
        (match code with
         | 1 -> Malformed (msg ~what:"malformed message")
         | 2 -> Parse_error (msg ~what:"parse-error message")
         | 3 -> Build_failed (msg ~what:"build-failed message")
         | 4 -> Overloaded
         | 5 -> Deadline_exceeded
         | 6 -> Draining
         | 7 -> Internal (msg ~what:"internal-error message")
         | 8 -> Unavailable
         | 9 ->
           let dm_want = r_opt r_str c ~what:"dict-mismatch want" in
           let dm_have = r_opt r_str c ~what:"dict-mismatch have" in
           Dict_mismatch { dm_want; dm_have }
         | 10 -> Unknown_app (msg ~what:"unknown-app digest")
         | c ->
           raise (Decode_error (Printf.sprintf "unknown rejection code %d" c)))
    end
    else if tag = tag_dict_info then
      Dict_info { di_digest = r_opt r_str c ~what:"dict-info digest" }
    else if tag = tag_report_ack then begin
      let ra_drift = r_f64 c ~what:"report-ack drift" in
      let ra_relink = r_bool c ~what:"report-ack relink" in
      Report_ack { ra_drift; ra_relink }
    end
    else raise (Decode_error (Printf.sprintf "unknown response tag %d" tag))
  in
  finish c "response";
  r

(* ---- Zero-copy Built frames ---------------------------------------------

   The serving hot path. [encode_response] on a Built pays for the OAT
   container twice more after [Oat_file.to_bytes] already built it
   (Buffer fill, [Buffer.contents]), then [to_frame]'s [^] and
   [really_write]'s [Bytes.of_string] copy the whole frame twice again.
   [emit_built] assembles the complete frame — header included — in an
   off-heap arena, backpatching the two length fields around
   [Oat_file.emit], and [write_arena] drains it through a reused staging
   chunk. Byte-for-byte identical to the Buffer path (the frame-encoding
   equivalence battery in test_server holds both writers together). *)

module Arena = Calibro_oat.Arena

let emit_built (a : Arena.t) ~(oat : Calibro_oat.Oat_file.t)
    ~(stats : build_stats) =
  let u32 v =
    if v < 0 || v > 0xFFFFFFFF then
      invalid_arg (Printf.sprintf "u32 out of range: %d" v);
    Arena.add_i32_le a v
  in
  Arena.add_string a magic;
  let frame_len_at = Arena.reserve a 4 in
  let payload_start = Arena.length a in
  Arena.add_char a (Char.chr tag_built);
  let oat_len_at = Arena.reserve a 4 in
  let oat_start = Arena.length a in
  Calibro_oat.Oat_file.emit oat a;
  Arena.set_u32_le a oat_len_at (Arena.length a - oat_start);
  u32 stats.bs_text_size;
  u32 stats.bs_methods;
  u32 stats.bs_thunks;
  u32 stats.bs_outlined;
  Arena.add_f64_le a stats.bs_build_s;
  let payload_len = Arena.length a - payload_start in
  if payload_len > max_frame then
    raise (Frame_error "refusing to send oversized frame");
  Arena.set_u32_le a frame_len_at payload_len

let write_arena fd (a : Arena.t) = Arena.write_fd a fd

(* ---- Router views ---------------------------------------------------------

   The router relays request and response payloads verbatim; these two
   helpers are the only peeks it takes, and neither re-encodes anything. *)

(* Digest of the request's application text — the fleet's shard-affinity
   key: the same app routed to the same daemon keeps that daemon's cache
   tier hot whatever the config or deadline says. The cursor skips the
   leading config rather than decoding the request; damage anywhere
   before the dexsim yields [None] (the router then hashes the raw
   payload, keeping even malformed traffic deterministically placed). *)
let request_app_digest payload =
  match
    let c = { src = payload; pos = 0 } in
    let tag = r_u8 c ~what:"request tag" in
    if tag <> tag_build then raise (Decode_error "not a build request");
    let (_ : Config.t) = r_config c in
    r_str c ~what:"dexsim"
  with
  | dexsim -> Some (Calibro_chash.Chash.string dexsim)
  | exception Decode_error _ -> None

(* A bare [Rejected Draining] payload, recognized from its two bytes. The
   router treats it as "this shard is leaving the fleet" and re-routes to
   a survivor instead of bouncing the client — the rolling-drain path. *)
let response_is_draining payload =
  String.length payload = 2
  && Char.code payload.[0] = tag_rejected
  && Char.code payload.[1] = rejection_code Draining
