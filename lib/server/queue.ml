(* Bounded MPMC admission queue. See queue.mli for the contract. *)

module Obs = Calibro_obs.Obs

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Stdlib.Queue.t;
  capacity : int;
  gauge : string option;
  mutable closed : bool;
}

let create ?gauge ~capacity () =
  { lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Stdlib.Queue.create ();
    capacity = max 1 capacity;
    gauge;
    closed = false }

let set_gauge t depth =
  match t.gauge with
  | Some g -> Obs.Gauge.set g (float_of_int depth)
  | None -> ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

type push_result = Pushed | Full | Closed

let try_push t x =
  locked t @@ fun () ->
  if t.closed then Closed
  else if Stdlib.Queue.length t.items >= t.capacity then Full
  else begin
    Stdlib.Queue.add x t.items;
    set_gauge t (Stdlib.Queue.length t.items);
    Condition.signal t.nonempty;
    Pushed
  end

let pop t =
  locked t @@ fun () ->
  while Stdlib.Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  (* Closed queues still drain: admitted jobs have clients waiting. *)
  match Stdlib.Queue.take_opt t.items with
  | Some x ->
    set_gauge t (Stdlib.Queue.length t.items);
    Some x
  | None -> None

let close t =
  locked t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.nonempty

let length t = locked t @@ fun () -> Stdlib.Queue.length t.items
let capacity t = t.capacity
