(** The fleet router: a thin proxy that consistent-hashes requests across
    N calibrod shards by app digest, so each daemon's cache tier stays
    hot on its own slice of the app store (the ShareJIT affinity
    argument, applied fleet-wide).

    The router never decodes a payload it relays: it reads one request
    frame from the client, peeks the shard-affinity key
    ({!Protocol.request_app_digest}), forwards the frame verbatim to the
    owning shard, and relays the response frame verbatim back. CPU cost
    per request is one digest and two frame copies.

    Failure semantics: a shard that refuses a connection, breaks a frame
    mid-stream, times out, or answers [Rejected Draining] is marked down
    and the request is re-routed to the next live shard in ring order,
    with capped exponential backoff plus jitter between attempts
    ([sleep] is injectable so tests never wait on a real clock). A typed
    [Rejected Unavailable] is surfaced only when every shard is down and
    the retry budget is exhausted. Down shards are re-probed by a
    background health thread (and on the retry path), so a restarted or
    rolling-drained daemon rejoins the ring without router restarts.

    Observability: per-shard [router.shard<i>.{forwarded,retries,
    failovers}] and router-level [router.requests.*] counters, tallied in
    atomics while serving and mirrored into {!Calibro_obs.Obs} counters
    by {!drain} (same single-writer-shard discipline as {!Server}). *)

(** The consistent-hash ring, exposed pure for property tests: uniform
    key spread and minimal disruption on shard removal are asserted over
    this exact structure, not a model of it. *)
module Ring : sig
  type t

  val make : shards:int -> replicas:int -> t
  (** A ring over shard indices [0..shards-1], each contributing
      [replicas] virtual nodes at splitmix64-derived points (mixing the
      shard id with the replica index, like [Parallel.partition]'s
      stream). Deterministic: same shape, same ring, on every host. *)

  val shards : t -> int
  val replicas : t -> int

  val lookup : t -> string -> int
  (** Owning shard of a key (an app digest): the shard of the first
      virtual node at or clockwise-after the key's splitmix64 point. *)

  val order : t -> string -> int list
  (** All shard indices in ring order starting at the owner — the
      failover order. Head is [lookup]; every shard appears once. *)

  val remove : t -> int -> t
  (** The ring without shard [i]'s virtual nodes. Keys owned by other
      shards keep their owner (the minimal-disruption property the tests
      assert); keys owned by [i] redistribute to ring successors. *)
end

type config = {
  listen : Transport.endpoint;
  shards : Transport.endpoint array;
  replicas : int;  (** virtual nodes per shard (default 128) *)
  max_attempts : int;
      (** forward attempts per request across shards before answering
          [Unavailable] (default 4) *)
  backoff_base_s : float;  (** first retry delay (default 0.01) *)
  backoff_cap_s : float;  (** retry delay ceiling (default 0.2) *)
  backoff_seed : int;  (** jitter stream seed; deterministic per seed *)
  health_period_s : float;
      (** background probe period for down shards; [0.] disables the
          thread (tests drive {!check_health} explicitly) *)
  recv_timeout_s : float;
      (** how long a shard may stall mid-response before the attempt is
          failed over; [0.] = wait forever *)
  sleep : float -> unit;
      (** called for backoff waits — injectable so failover tests run on
          a fake clock *)
}

val default_config :
  listen:Transport.endpoint -> shards:Transport.endpoint array -> config

type t

val create : config -> t
(** Bind the listening endpoint and start the accept and health threads.
    All shards start marked up; the first failed forward marks them down.
    @raise Invalid_argument if [shards] is empty.
    @raise Unix.Unix_error if the endpoint cannot be bound. *)

val endpoint : t -> Transport.endpoint
(** Resolved listening endpoint (a TCP port-0 bind filled in). *)

val shard_up : t -> int -> bool
val check_health : t -> unit
(** One probe pass: try to connect to every down shard, marking the
    reachable ones up again. The background thread calls this every
    [health_period_s]; tests call it directly. *)

(** {2 Lifecycle} — same contract as {!Server}. *)

val request_drain : t -> unit
val draining : t -> bool

val drain : t -> unit
(** Stop accepting, let in-flight relays finish, close the listener,
    mirror the tallies into [router.*] counters. Idempotent. *)

val join : t -> unit
val install_sigterm : t -> unit

(** {2 Introspection} *)

type shard_totals = {
  s_forwarded : int;  (** responses relayed from this shard *)
  s_retries : int;  (** forward attempts this shard failed *)
  s_failovers : int;  (** requests re-routed off this shard *)
}

type totals = {
  t_requests : int;  (** client frames read *)
  t_forwarded : int;  (** responses relayed (sum of shard forwarded) *)
  t_unavailable : int;  (** answered [Rejected Unavailable] *)
  t_malformed : int;  (** client frames that were not frames *)
  t_conn_errors : int;
      (** connections dropped by an expected I/O or protocol exception
          escaping the reader (see {!count_as_conn_error}) *)
  t_shards : shard_totals array;
}

val totals : t -> totals
(** Live tallies (atomics). After {!drain} they are also mirrored to
    [router.requests.*], [router.conn_errors] and [router.shard<i>.*]
    counters. *)

val count_as_conn_error : exn -> bool
(** The reader-thread drop policy: [true] for the I/O and protocol
    exceptions a peer can cause ([Unix.Unix_error],
    [Protocol.Frame_error], [Sys_error], [End_of_file]) — those drop the
    connection and tick [router.conn_errors]. [false] for everything
    else ([Out_of_memory], [Stack_overflow], [Assert_failure], any
    programming error): those re-raise out of the reader thread instead
    of being silently swallowed. *)
