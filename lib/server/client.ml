(* Client side of the calibrod protocol. *)

type t = { fd : Unix.file_descr }

(* A daemon draining mid-request closes connections under us; without
   this, the resulting EPIPE kills the whole client process instead of
   failing one request. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let connect ep =
  Lazy.force ignore_sigpipe;
  { fd = Transport.connect ep }

let send t rq = Protocol.write_frame t.fd (Protocol.encode_request rq)

let recv t =
  match Protocol.read_frame t.fd with
  | payload -> Protocol.decode_response payload
  | exception Protocol.Frame_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request ~endpoint rq =
  match connect endpoint with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("connect: " ^ Unix.error_message e)
  | t ->
    Fun.protect
      ~finally:(fun () -> close t)
      (fun () ->
        match send t rq with
        | () -> recv t
        | exception Unix.Unix_error (e, _, _) ->
          Error ("send: " ^ Unix.error_message e))

let hello ~endpoint =
  match connect endpoint with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("connect: " ^ Unix.error_message e)
  | t ->
    Fun.protect
      ~finally:(fun () -> close t)
      (fun () ->
        match Protocol.write_frame t.fd (Protocol.encode_hello ()) with
        | exception Unix.Unix_error (e, _, _) ->
          Error ("send: " ^ Unix.error_message e)
        | () -> (
          match recv t with
          | Ok (Protocol.Dict_info { di_digest }) -> Ok di_digest
          | Ok (Protocol.Rejected rej) ->
            Error (Protocol.rejection_to_string rej)
          | Ok (Protocol.Built _ | Protocol.Report_ack _) ->
            Error "unexpected reply to hello"
          | Error _ as e -> e))

let report ~endpoint r =
  match connect endpoint with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("connect: " ^ Unix.error_message e)
  | t ->
    Fun.protect
      ~finally:(fun () -> close t)
      (fun () ->
        match Protocol.write_frame t.fd (Protocol.encode_report r) with
        | exception Unix.Unix_error (e, _, _) ->
          Error ("send: " ^ Unix.error_message e)
        | () -> (
          match recv t with
          | Ok (Protocol.Report_ack { ra_drift; ra_relink }) ->
            Ok (ra_drift, ra_relink)
          | Ok (Protocol.Rejected rej) ->
            Error (Protocol.rejection_to_string rej)
          | Ok (Protocol.Built _ | Protocol.Dict_info _) ->
            Error "unexpected reply to profile report"
          | Error _ as e -> e))
