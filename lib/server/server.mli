(** calibrod's connection and lifecycle layer: an accept loop on a
    {!Transport.endpoint} (Unix-domain socket or TCP) in front of the
    admission {!Queue} and the {!Worker} pool.

    Threading model: the accept loop runs on a background thread of the
    creating domain; each accepted connection gets a short-lived reader
    thread that reads and decodes one request frame, then either admits a
    job (handing the connection to a worker domain) or answers a typed
    rejection itself ([Overloaded], [Malformed], [Draining]). CPU-bound
    work only ever runs on the worker domains.

    Observability: worker domains record their own counters, histograms
    and spans (single-writer shards). The admission path — which runs on
    threads sharing the creating domain — counts through process-local
    atomics instead, mirrored into [server.requests.*] counters by
    {!drain} once every thread and worker has stopped, respecting the
    {!Calibro_obs.Obs} snapshot contract. The queue depth is exported
    live through the (lock-protected) [server.queue_depth] gauge.

    Graceful drain ({!drain}, or SIGTERM via {!install_sigterm} +
    {!join}): stop accepting, answer nothing new, finish every admitted
    job, join the workers, close the listener (removing a Unix socket
    file) — then return, so the caller can exit 0. *)

type config = {
  endpoint : Transport.endpoint;
      (** where to listen; [Tcp { port = 0; _ }] binds an ephemeral port,
          resolved via {!endpoint} *)
  workers : int;
  queue_capacity : int;
  cache : Calibro_cache.Cache.t option;
      (** shared compilation cache; [None] = every build cold *)
  recv_timeout_s : float;
      (** how long a client may stall mid-frame before its connection is
          dropped; [0.] = wait forever *)
  default_deadline_ms : int option;
      (** applied to requests that carry no deadline of their own *)
  dict : unit -> Calibro_oat.Linker.dict option;
      (** the store-wide shared dictionary this daemon links
          dictionary-relative builds against. Read per [Hello] and per
          dispatched job, so swapping what the closure returns rotates
          the dictionary live: subsequent [Hello]s see the new digest and
          stale [rq_dict] requests get typed [Dict_mismatch] answers. *)
  pgo : Calibro_pgo.Pgo.Manager.t option;
      (** the PGO drift loop. With a manager, [Profile_report] frames
          are merged and scored inline on the reader thread (answered
          even while draining, like [Hello]); a report that crosses the
          hysteresis queues a {!Worker.relink_job} through the ordinary
          admission queue, and subsequent identical [Build] requests are
          served the refreshed OAT. [None] answers every report with a
          typed [Unknown_app]. *)
  shelve : float option;
      (** daemon-default shelving coverage ([--shelve-threshold]):
          applied at admission to [Build] requests whose [rq_shelve] is
          [None] — like the default deadline, and before the PGO build
          key is taken, so drift relinks of a default-shelved build
          re-derive the shelve policy from the new profile. A request
          that carries its own threshold wins; shelving still requires a
          profile to act on (see {!Protocol.build_request.rq_shelve}). *)
}

val default_config : endpoint:Transport.endpoint -> config
(** 2 workers, capacity 64, no cache, 10 s receive timeout, no default
    deadline, no dictionary, no PGO, no shelving. *)

type t

val create : config -> t
(** Bind the endpoint (replacing a stale Unix-socket file), start the
    workers and the accept loop. Also sets [SIGPIPE] to ignore — a
    vanished client must surface as [EPIPE], not kill the daemon.
    @raise Unix.Unix_error if the endpoint cannot be bound. *)

val request_drain : t -> unit
(** Flag the server to drain. Async-signal-safe (one atomic store); the
    actual drain is performed by {!join} or {!drain}. *)

val draining : t -> bool

val drain : t -> unit
(** Perform the graceful drain described above. Blocks until every
    admitted job has been answered and all workers have exited.
    Idempotent; concurrent callers block until the first finishes. *)

val join : t -> unit
(** Block until {!request_drain} is called (typically from the SIGTERM
    handler), then {!drain}. The daemon's main loop. *)

val install_sigterm : t -> unit
(** Route SIGTERM (and SIGINT) to {!request_drain} on this server. *)

(** {2 Introspection} *)

type totals = {
  t_accepted : int;  (** requests admitted to the queue *)
  t_overloaded : int;  (** rejected: queue full *)
  t_malformed : int;  (** rejected: frame or request did not decode *)
  t_stalled : int;  (** connections dropped mid-frame or on timeout *)
  t_refused_draining : int;  (** rejected: arrived during drain *)
  t_hello : int;  (** dictionary handshakes answered inline *)
  t_reports : int;  (** profile reports answered inline (any outcome) *)
}

val totals : t -> totals
(** Admission-path totals so far (atomics; safe to read live). After
    {!drain} these are also mirrored to [server.requests.*] counters. *)

val endpoint : t -> Transport.endpoint
(** The resolved listening endpoint — for a TCP port-0 bind, the
    ephemeral port the kernel actually picked. *)
