(* The accept loop and lifecycle. See server.mli for the threading and
   drain contracts. *)

module Obs = Calibro_obs.Obs
module Clock = Calibro_obs.Clock
module Pgo = Calibro_pgo.Pgo

type config = {
  endpoint : Transport.endpoint;
  workers : int;
  queue_capacity : int;
  cache : Calibro_cache.Cache.t option;
  recv_timeout_s : float;
  default_deadline_ms : int option;
  dict : unit -> Calibro_oat.Linker.dict option;
  pgo : Pgo.Manager.t option;
  shelve : float option;
      (* daemon-default shelving coverage, applied at admission to builds
         that did not choose for themselves (rq_shelve = None) *)
}

let default_config ~endpoint =
  { endpoint;
    workers = 2;
    queue_capacity = 64;
    cache = None;
    recv_timeout_s = 10.0;
    default_deadline_ms = None;
    dict = (fun () -> None);
    pgo = None;
    shelve = None }

type totals = {
  t_accepted : int;
  t_overloaded : int;
  t_malformed : int;
  t_stalled : int;
  t_refused_draining : int;
  t_hello : int;
  t_reports : int;
}

type t = {
  cfg : config;
  endpoint : Transport.endpoint;  (* resolved: a TCP port-0 bind filled in *)
  listen_fd : Unix.file_descr;
  queue : Worker.job Queue.t;
  pool : Worker.pool;
  stop : bool Atomic.t;  (* drain requested *)
  drained : bool Atomic.t;
  drain_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  readers : int Atomic.t;  (* live connection-reader threads *)
  next_id : int Atomic.t;
  (* Admission-path tallies. These run on threads that share the creating
     domain, where the per-domain Obs counter shards are not thread-safe;
     atomics here, mirrored into counters by [drain]. *)
  a_accepted : int Atomic.t;
  a_overloaded : int Atomic.t;
  a_malformed : int Atomic.t;
  a_stalled : int Atomic.t;
  a_refused_draining : int Atomic.t;
  a_hello : int Atomic.t;
  a_reports : int Atomic.t;
}

let endpoint t = t.endpoint
let draining t = Atomic.get t.stop
let request_drain t = Atomic.set t.stop true

let totals t =
  { t_accepted = Atomic.get t.a_accepted;
    t_overloaded = Atomic.get t.a_overloaded;
    t_malformed = Atomic.get t.a_malformed;
    t_stalled = Atomic.get t.a_stalled;
    t_refused_draining = Atomic.get t.a_refused_draining;
    t_hello = Atomic.get t.a_hello;
    t_reports = Atomic.get t.a_reports }

(* ---- Connection handling ------------------------------------------------ *)

(* One reader thread per accepted connection: read one frame, decode,
   admit or reject. Must not touch Obs counters/histograms/spans (it
   shares the accept domain's shard with other threads); gauges are fine. *)
let handle_connection t fd =
  if t.cfg.recv_timeout_s > 0.0 then
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.recv_timeout_s;
  let reject count rejection =
    Atomic.incr count;
    ignore (Worker.respond fd (Protocol.Rejected rejection))
  in
  match Protocol.read_frame fd with
  | exception Protocol.Frame_error m ->
    (* Bad magic / oversized / cut mid-frame. Try to say so — the peer is
       often already gone, which respond absorbs. *)
    reject t.a_malformed (Protocol.Malformed m)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (* The client stalled past the receive timeout. *)
    Atomic.incr t.a_stalled;
    Worker.(ignore (respond fd (Protocol.Rejected Protocol.Deadline_exceeded)))
  | exception Unix.Unix_error _ ->
    Atomic.incr t.a_stalled;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | payload -> (
    match Protocol.decode_request payload with
    | Error m -> reject t.a_malformed (Protocol.Malformed m)
    | Ok Protocol.Hello ->
      (* The dictionary handshake is answered inline: no compile, no
         queue slot, and it works even while draining (a client must be
         able to learn the digest to decide where to retry). *)
      Atomic.incr t.a_hello;
      ignore
        (Worker.respond fd
           (Protocol.Dict_info
              { di_digest =
                  Option.map
                    (fun (d : Calibro_oat.Linker.dict) ->
                      d.Calibro_oat.Linker.dct_digest)
                    (t.cfg.dict ()) }))
    | Ok (Protocol.Report { pr_app; pr_profile }) -> (
      (* PGO feedback is answered inline, like Hello, and even while
         draining: merging a report is cheap and side-effect-free. Only
         the *scheduling* of a relink needs live workers, so a draining
         daemon merges but never queues. *)
      match t.cfg.pgo with
      | None ->
        (* No PGO manager: no app was ever registered, by definition. *)
        Atomic.incr t.a_reports;
        ignore
          (Worker.respond fd
             (Protocol.Rejected (Protocol.Unknown_app pr_app)))
      | Some m -> (
        match Calibro_profile.Profile.of_string pr_profile with
        | Error e ->
          reject t.a_malformed (Protocol.Parse_error ("profile: " ^ e))
        | Ok profile -> (
          Atomic.incr t.a_reports;
          let draining = Atomic.get t.stop in
          match
            Pgo.Manager.report m ~digest:pr_app ~profile
              ~allow_relink:(not draining)
          with
          | Pgo.Manager.Unknown ->
            ignore
              (Worker.respond fd
                 (Protocol.Rejected (Protocol.Unknown_app pr_app)))
          | Pgo.Manager.Ack { drift; relink } ->
            let scheduled =
              match relink with
              | None -> false
              | Some key -> (
                match
                  Queue.try_push t.queue
                    (Worker.Relink { r_digest = pr_app; r_key = key })
                with
                | Queue.Pushed -> true
                | Queue.Full | Queue.Closed ->
                  (* The relink never ran: release the manager's
                     in-flight latch so a later drift can retry. *)
                  Pgo.Manager.relink_failed m ~digest:pr_app;
                  false)
            in
            ignore
              (Worker.respond fd
                 (Protocol.Report_ack
                    { ra_drift = drift; ra_relink = scheduled })))))
    | Ok (Protocol.Build rq) ->
      if Atomic.get t.stop then reject t.a_refused_draining Protocol.Draining
      else begin
        (* Admission applies the daemon's shelving default to requests
           that did not choose for themselves — like the default
           deadline, and before the PGO key is taken, so relinks of a
           default-shelved build re-derive the same shelve policy. *)
        let rq =
          match (rq.Protocol.rq_shelve, t.cfg.shelve) with
          | None, (Some _ as d) -> { rq with Protocol.rq_shelve = d }
          | _ -> rq
        in
        let deadline_ms =
          match rq.Protocol.rq_deadline_ms with
          | Some _ as d -> d
          | None -> t.cfg.default_deadline_ms
        in
        let now = Clock.now_ns () in
        let job =
          Worker.Client
            { Worker.j_id = Atomic.fetch_and_add t.next_id 1;
              j_fd = fd;
              j_request = rq;
              j_deadline_ns =
                Option.map
                  (fun ms -> Int64.add now (Int64.of_int (ms * 1_000_000)))
                  deadline_ms;
              j_accepted_ns = now }
        in
        match Queue.try_push t.queue job with
        | Queue.Pushed -> Atomic.incr t.a_accepted
        | Queue.Full -> reject t.a_overloaded Protocol.Overloaded
        | Queue.Closed -> reject t.a_refused_draining Protocol.Draining
      end)

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get t.stop) then loop ()
    | exception Unix.Unix_error _ ->
      (* The listening socket was shut down (drain) or is otherwise
         unusable; either way accepting is over. *)
      ()
    | fd, _ ->
      (* Even a connection that raced the drain flag gets a reader: Hello
         and Report are answered inline while draining (handle_connection
         merges, never schedules), and only Builds are refused — typed,
         after reading the frame, so the client learns *why*. *)
      Atomic.incr t.readers;
      ignore
        (Thread.create
           (fun () ->
             Fun.protect
               ~finally:(fun () -> Atomic.decr t.readers)
               (fun () ->
                 try handle_connection t fd
                 with _ ->
                   (* A reader must never take the accept loop down. *)
                   (try Unix.close fd with Unix.Unix_error _ -> ())))
           ());
      loop ()
  in
  loop ()

(* ---- Lifecycle ---------------------------------------------------------- *)

let create (cfg : config) =
  (* A vanished client must surface as EPIPE on write, not kill us. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, endpoint = Transport.listen cfg.endpoint in
  let queue =
    Queue.create ~gauge:"server.queue_depth" ~capacity:cfg.queue_capacity ()
  in
  let pool =
    Worker.start ~workers:cfg.workers ~cache:cfg.cache ~dict:cfg.dict
      ?pgo:cfg.pgo ~queue ()
  in
  let t =
    { cfg;
      endpoint;
      listen_fd;
      queue;
      pool;
      stop = Atomic.make false;
      drained = Atomic.make false;
      drain_lock = Mutex.create ();
      accept_thread = None;
      readers = Atomic.make 0;
      next_id = Atomic.make 0;
      a_accepted = Atomic.make 0;
      a_overloaded = Atomic.make 0;
      a_malformed = Atomic.make 0;
      a_stalled = Atomic.make 0;
      a_refused_draining = Atomic.make 0;
      a_hello = Atomic.make 0;
      a_reports = Atomic.make 0 }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let drain t =
  Mutex.lock t.drain_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.drain_lock) @@ fun () ->
  if not (Atomic.get t.drained) then begin
    Atomic.set t.stop true;
    (* Wake the accept loop: shutdown on a listening socket makes a
       blocked accept(2) return with an error. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* Let in-flight reader threads finish admitting or rejecting. *)
    while Atomic.get t.readers > 0 do
      Thread.delay 0.001
    done;
    (* No new admissions; workers drain what was admitted, then exit. *)
    Queue.close t.queue;
    Worker.join t.pool;
    Transport.close_listener t.endpoint t.listen_fd;
    (* Workers and readers are gone: safe to mirror the admission tallies
       into the (single-writer-per-domain) Obs counters. *)
    let tt = totals t in
    Obs.Counter.add "server.requests.accepted" tt.t_accepted;
    Obs.Counter.add "server.requests.overloaded" tt.t_overloaded;
    Obs.Counter.add "server.requests.malformed" tt.t_malformed;
    Obs.Counter.add "server.requests.stalled" tt.t_stalled;
    Obs.Counter.add "server.requests.refused_draining" tt.t_refused_draining;
    Obs.Counter.add "server.requests.hello" tt.t_hello;
    Obs.Counter.add "server.requests.reports" tt.t_reports;
    Option.iter Pgo.Manager.mirror_counters t.cfg.pgo;
    Obs.Gauge.set "server.queue_depth" 0.0;
    Atomic.set t.drained true
  end

let join t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done;
  drain t

let install_sigterm t =
  let handle = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle
