(* The worker pool. See worker.mli for the isolation and deadline
   contract. *)

open Calibro_core
module Obs = Calibro_obs.Obs
module Clock = Calibro_obs.Clock
module Json = Calibro_obs.Json

type job = {
  j_id : int;
  j_fd : Unix.file_descr;
  j_request : Protocol.build_request;
  j_deadline_ns : int64 option;
  j_accepted_ns : int64;
}

type pool = { domains : unit Domain.t list }

(* ---- Connection plumbing ------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let respond fd resp =
  let delivered =
    match Protocol.write_frame fd (Protocol.encode_response resp) with
    | () -> true
    | exception Unix.Unix_error _ -> false
    | exception Protocol.Frame_error _ -> false
  in
  close_quietly fd;
  delivered

(* The client speaks first and exactly once, then blocks on the reply; a
   readable fd whose peek returns 0 bytes means it hung up. *)
let client_gone fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> (
    let b = Bytes.create 1 in
    match Unix.recv fd b 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error _ -> true)
  | _ -> false
  | exception Unix.Unix_error _ -> true

(* ---- The job body ------------------------------------------------------- *)

let expired deadline_ns =
  match deadline_ns with
  | None -> false
  | Some d -> Int64.compare (Clock.now_ns ()) d > 0

(* Parse, build, summarize. Every failure mode a request can provoke maps
   to a typed rejection; nothing escapes. Returns the structured OAT so
   the serving path can emit the response frame straight from it
   ([Protocol.emit_built]) without materializing the container string;
   [build_response] below re-wraps it for the in-process reference
   consumers (tests, calibro_load --verify, bench). *)
let build_oat ~cache ?dict (rq : Protocol.build_request) :
    (Calibro_oat.Oat_file.t * Protocol.build_stats, Protocol.rejection) result
    =
  (* Resolve the dictionary the request asked for against the one this
     daemon serves. [rq_dict = None] is a self-contained build whatever
     the daemon holds; [Some want] must match the served digest exactly —
     a client that raced a rotation gets a typed mismatch and can
     re-handshake, never silently a build against the wrong image. *)
  let resolve_dict () :
      (Calibro_oat.Linker.dict option, Protocol.rejection) result =
    match rq.Protocol.rq_dict with
    | None -> Ok None
    | Some want -> (
      match dict with
      | Some (d : Calibro_oat.Linker.dict)
        when d.Calibro_oat.Linker.dct_digest = want ->
        Ok (Some d)
      | have ->
        Error
          (Protocol.Dict_mismatch
             { dm_want = Some want;
               dm_have =
                 Option.map
                   (fun (d : Calibro_oat.Linker.dict) ->
                     d.Calibro_oat.Linker.dct_digest)
                   have }))
  in
  match
    match resolve_dict () with
    | Error rej -> Error rej
    | Ok dict -> (
    match Calibro_dex.Dex_text.parse rq.Protocol.rq_dexsim with
    | Error e -> Error (Protocol.Parse_error e)
    | Ok apk ->
      let profile_hot =
        match rq.Protocol.rq_profile with
        | None -> Ok []
        | Some text -> (
          match Calibro_profile.Profile.of_string text with
          | Ok prof -> Ok (Calibro_profile.Profile.hot_set prof)
          | Error e -> Error e)
      in
      (match profile_hot with
       | Error e -> Error (Protocol.Parse_error ("profile: " ^ e))
       | Ok hot ->
         let config =
           let c = rq.Protocol.rq_config in
           if hot = [] then c
           else
             { c with
               Config.hot_methods =
                 List.sort_uniq compare (c.Config.hot_methods @ hot) }
         in
         let t0 = Clock.now_ns () in
         let b = Pipeline.build ~cache ~config ?dict apk in
         let build_s = Clock.since_s t0 in
         let oat = b.Pipeline.b_oat in
         Ok
           ( oat,
             { Protocol.bs_text_size = Calibro_oat.Oat_file.text_size oat;
               bs_methods = List.length oat.Calibro_oat.Oat_file.methods;
               bs_thunks = List.length oat.Calibro_oat.Oat_file.thunks;
               bs_outlined = List.length oat.Calibro_oat.Oat_file.outlined;
               bs_build_s = build_s } )))
  with
  | r -> r
  | exception Pipeline.Build_error m -> Error (Protocol.Build_failed m)
  | exception Ltbo.Ltbo_error m -> Error (Protocol.Build_failed ("ltbo: " ^ m))
  | exception Calibro_hgraph.Passes.Pass_error m ->
    Error (Protocol.Build_failed ("ir passes: " ^ m))
  | exception Calibro_dex.Dex_text.Parse_error { line; message } ->
    Error (Protocol.Parse_error (Printf.sprintf "line %d: %s" line message))
  | exception e -> Error (Protocol.Internal (Printexc.to_string e))

let build_response ~cache ?dict (rq : Protocol.build_request) :
    Protocol.response =
  match build_oat ~cache ?dict rq with
  | Ok (oat, stats) ->
    Protocol.Built
      { oat = Bytes.to_string (Calibro_oat.Oat_file.to_bytes oat); stats }
  | Error rej -> Protocol.Rejected rej

(* Serve a successful build zero-copy: frame emitted into the domain's
   scratch arena straight from the Oat_file, one staged drain to the
   socket. Same delivery contract as [respond]. *)
let respond_built fd ~oat ~stats =
  let delivered =
    match
      Calibro_oat.Arena.with_scratch (fun a ->
          Protocol.emit_built a ~oat ~stats;
          Protocol.write_arena fd a)
    with
    | () -> true
    | exception Unix.Unix_error _ -> false
    | exception Protocol.Frame_error _ -> false
  in
  close_quietly fd;
  delivered

let outcome_counter = function
  | Ok _ -> "ok"
  | Error (Protocol.Parse_error _) -> "parse_error"
  | Error (Protocol.Build_failed _) -> "build_error"
  | Error Protocol.Deadline_exceeded -> "deadline"
  | Error (Protocol.Dict_mismatch _) -> "dict_mismatch"
  | Error (Protocol.Internal _) -> "internal_error"
  | Error _ -> "rejected"

let handle ~cache ~dict (job : job) =
  Obs.span ~cat:"server" "server.job"
    ~args:(fun () ->
      [ ("id", Json.Int job.j_id);
        ("config", Json.Str job.j_request.Protocol.rq_config.Config.name) ])
  @@ fun () ->
  Obs.Histogram.observe "server.queue_wait_s"
    (Int64.to_float (Int64.sub (Clock.now_ns ()) job.j_accepted_ns) /. 1e9);
  if client_gone job.j_fd then begin
    (* The client hung up while the job sat in the queue: cancel. *)
    Obs.Counter.incr "server.jobs.cancelled";
    close_quietly job.j_fd
  end
  else if expired job.j_deadline_ns then begin
    Obs.Counter.incr "server.jobs.deadline";
    ignore (respond job.j_fd (Protocol.Rejected Protocol.Deadline_exceeded))
  end
  else begin
    (* GC accounting for the gate's allocated-bytes-per-served-build
       line: everything from parse to the last frame byte, this domain
       only. *)
    let alloc0 = Gc.allocated_bytes () in
    (* The dictionary is read at dispatch time: a job admitted before a
       rotation builds against the dictionary of the moment it runs, and
       the digest check inside [build_oat] keeps the answer honest. *)
    let result = build_oat ~cache ?dict:(dict ()) job.j_request in
    (* A result the deadline already passed is useless to the caller:
       report it as exceeded, honestly, rather than as success. *)
    let result =
      match result with
      | Ok _ when expired job.j_deadline_ns ->
        Error Protocol.Deadline_exceeded
      | r -> r
    in
    Obs.Counter.incr ("server.jobs." ^ outcome_counter result);
    let delivered =
      match result with
      | Ok (oat, stats) -> respond_built job.j_fd ~oat ~stats
      | Error rej -> respond job.j_fd (Protocol.Rejected rej)
    in
    if not delivered then Obs.Counter.incr "server.responses.lost";
    (match result with
    | Ok _ ->
      Obs.Counter.add "server.built.alloc_bytes"
        (int_of_float (Gc.allocated_bytes () -. alloc0))
    | Error _ -> ());
    Obs.Histogram.observe "server.latency_s"
      (Int64.to_float (Int64.sub (Clock.now_ns ()) job.j_accepted_ns) /. 1e9)
  end

(* ---- The pool ----------------------------------------------------------- *)

let worker_loop ~cache ~dict queue () =
  Obs.span ~cat:"server" "server.worker" @@ fun () ->
  let rec loop () =
    match Queue.pop queue with
    | None -> ()
    | Some job ->
      (* [handle] maps every job failure to a response; this last-resort
         catch covers bugs in the handler itself (e.g. a pathological fd):
         the worker logs and lives on. *)
      (match handle ~cache ~dict job with
       | () -> ()
       | exception _ ->
         Obs.Counter.incr "server.jobs.handler_error";
         close_quietly job.j_fd);
      loop ()
  in
  loop ()

let start ~workers ~cache ?(dict = fun () -> None) ~queue () =
  let workers = max 1 workers in
  Obs.Gauge.set "server.workers" (float_of_int workers);
  { domains =
      List.init workers (fun _ ->
          Domain.spawn (worker_loop ~cache ~dict queue)) }

let join pool = List.iter Domain.join pool.domains
