(* The worker pool. See worker.mli for the isolation and deadline
   contract. *)

open Calibro_core
module Obs = Calibro_obs.Obs
module Clock = Calibro_obs.Clock
module Json = Calibro_obs.Json
module Pgo = Calibro_pgo.Pgo

type client_job = {
  j_id : int;
  j_fd : Unix.file_descr;
  j_request : Protocol.build_request;
  j_deadline_ns : int64 option;
  j_accepted_ns : int64;
}

type relink_job = { r_digest : string; r_key : Pgo.build_key }

type job = Client of client_job | Relink of relink_job

type pool = { domains : unit Domain.t list }

(* The request/key correspondence of the PGO loop: a key is the request
   minus its deadline. *)
let key_of_request (rq : Protocol.build_request) : Pgo.build_key =
  { Pgo.bk_config = rq.Protocol.rq_config;
    bk_dexsim = rq.Protocol.rq_dexsim;
    bk_profile = rq.Protocol.rq_profile;
    bk_dict = rq.Protocol.rq_dict;
    bk_shelve = rq.Protocol.rq_shelve }

let request_of_key (k : Pgo.build_key) : Protocol.build_request =
  { Protocol.rq_config = k.Pgo.bk_config;
    rq_dexsim = k.Pgo.bk_dexsim;
    rq_profile = k.Pgo.bk_profile;
    rq_deadline_ms = None;
    rq_dict = k.Pgo.bk_dict;
    rq_shelve = k.Pgo.bk_shelve }

(* ---- Connection plumbing ------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let respond fd resp =
  let delivered =
    match Protocol.write_frame fd (Protocol.encode_response resp) with
    | () -> true
    | exception Unix.Unix_error _ -> false
    | exception Protocol.Frame_error _ -> false
  in
  close_quietly fd;
  delivered

(* The client speaks first and exactly once, then blocks on the reply; a
   readable fd whose peek returns 0 bytes means it hung up. *)
let client_gone fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> (
    let b = Bytes.create 1 in
    match Unix.recv fd b 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error _ -> true)
  | _ -> false
  | exception Unix.Unix_error _ -> true

(* ---- The job body ------------------------------------------------------- *)

let expired deadline_ns =
  match deadline_ns with
  | None -> false
  | Some d -> Int64.compare (Clock.now_ns ()) d > 0

(* Parse, build, summarize. Every failure mode a request can provoke maps
   to a typed rejection; nothing escapes. Returns the structured OAT so
   the serving path can emit the response frame straight from it
   ([Protocol.emit_built]) without materializing the container string,
   plus the effective hot-method set the build used (config hot methods
   merged with the request profile's) — the PGO loop's "served hot set".
   [build_response] below re-wraps it for the in-process reference
   consumers (tests, calibro_load --verify, bench). *)
let build_oat_hot ~cache ?dict (rq : Protocol.build_request) :
    ( Calibro_oat.Oat_file.t
      * Protocol.build_stats
      * Calibro_dex.Dex_ir.method_ref list,
      Protocol.rejection )
    result =
  (* Resolve the dictionary the request asked for against the one this
     daemon serves. [rq_dict = None] is a self-contained build whatever
     the daemon holds; [Some want] must match the served digest exactly —
     a client that raced a rotation gets a typed mismatch and can
     re-handshake, never silently a build against the wrong image. *)
  let resolve_dict () :
      (Calibro_oat.Linker.dict option, Protocol.rejection) result =
    match rq.Protocol.rq_dict with
    | None -> Ok None
    | Some want -> (
      match dict with
      | Some (d : Calibro_oat.Linker.dict)
        when d.Calibro_oat.Linker.dct_digest = want ->
        Ok (Some d)
      | have ->
        Error
          (Protocol.Dict_mismatch
             { dm_want = Some want;
               dm_have =
                 Option.map
                   (fun (d : Calibro_oat.Linker.dict) ->
                     d.Calibro_oat.Linker.dct_digest)
                   have }))
  in
  match
    match resolve_dict () with
    | Error rej -> Error rej
    | Ok dict -> (
    match Calibro_dex.Dex_text.parse rq.Protocol.rq_dexsim with
    | Error e -> Error (Protocol.Parse_error e)
    | Ok apk ->
      let profile =
        match rq.Protocol.rq_profile with
        | None -> Ok None
        | Some text -> (
          match Calibro_profile.Profile.of_string text with
          | Ok prof -> Ok (Some prof)
          | Error e -> Error e)
      in
      (match profile with
       | Error e -> Error (Protocol.Parse_error ("profile: " ^ e))
       | Ok profile ->
         let hot =
           match profile with
           | None -> []
           | Some p -> Calibro_profile.Profile.hot_set p
         in
         let config =
           let c = rq.Protocol.rq_config in
           if hot = [] then c
           else
             { c with
               Config.hot_methods =
                 List.sort_uniq compare (c.Config.hot_methods @ hot) }
         in
         (* Shelving needs a profile to draw the warm set from: a
            threshold without one (a fresh app nobody has run) builds
            unshelved rather than shelving everything blind. *)
         let shelve =
           match (rq.Protocol.rq_shelve, profile) with
           | Some coverage, Some p ->
             Some (Calibro_shelve.Shelve.of_profile ~coverage p)
           | _ -> None
         in
         let t0 = Clock.now_ns () in
         let b = Pipeline.build ~cache ~config ?dict ?shelve apk in
         let build_s = Clock.since_s t0 in
         let oat = b.Pipeline.b_oat in
         Ok
           ( oat,
             { Protocol.bs_text_size = Calibro_oat.Oat_file.text_size oat;
               bs_methods = List.length oat.Calibro_oat.Oat_file.methods;
               bs_thunks = List.length oat.Calibro_oat.Oat_file.thunks;
               bs_outlined = List.length oat.Calibro_oat.Oat_file.outlined;
               bs_build_s = build_s },
             config.Config.hot_methods )))
  with
  | r -> r
  | exception Pipeline.Build_error m -> Error (Protocol.Build_failed m)
  | exception Calibro_shelve.Shelve.Shelve_error m ->
    Error (Protocol.Build_failed ("shelve: " ^ m))
  | exception Ltbo.Ltbo_error m -> Error (Protocol.Build_failed ("ltbo: " ^ m))
  | exception Calibro_hgraph.Passes.Pass_error m ->
    Error (Protocol.Build_failed ("ir passes: " ^ m))
  | exception Calibro_dex.Dex_text.Parse_error { line; message } ->
    Error (Protocol.Parse_error (Printf.sprintf "line %d: %s" line message))
  | exception e -> Error (Protocol.Internal (Printexc.to_string e))

let build_oat ~cache ?dict rq =
  match build_oat_hot ~cache ?dict rq with
  | Ok (oat, stats, _hot) -> Ok (oat, stats)
  | Error _ as e -> e

let build_response ~cache ?dict (rq : Protocol.build_request) :
    Protocol.response =
  match build_oat ~cache ?dict rq with
  | Ok (oat, stats) ->
    Protocol.Built
      { oat = Bytes.to_string (Calibro_oat.Oat_file.to_bytes oat); stats }
  | Error rej -> Protocol.Rejected rej

(* Serve a successful build zero-copy: frame emitted into the domain's
   scratch arena straight from the Oat_file, one staged drain to the
   socket. Same delivery contract as [respond]. *)
let respond_built fd ~oat ~stats =
  let delivered =
    match
      Calibro_oat.Arena.with_scratch (fun a ->
          Protocol.emit_built a ~oat ~stats;
          Protocol.write_arena fd a)
    with
    | () -> true
    | exception Unix.Unix_error _ -> false
    | exception Protocol.Frame_error _ -> false
  in
  close_quietly fd;
  delivered

let outcome_counter = function
  | Ok _ -> "ok"
  | Error (Protocol.Parse_error _) -> "parse_error"
  | Error (Protocol.Build_failed _) -> "build_error"
  | Error Protocol.Deadline_exceeded -> "deadline"
  | Error (Protocol.Dict_mismatch _) -> "dict_mismatch"
  | Error (Protocol.Internal _) -> "internal_error"
  | Error _ -> "rejected"

(* Build stats for an OAT served from the PGO refresh store: sizes are
   recomputed from the container, the build time is the relink's. *)
let stats_of_oat ~build_s (oat : Calibro_oat.Oat_file.t) =
  { Protocol.bs_text_size = Calibro_oat.Oat_file.text_size oat;
    bs_methods = List.length oat.Calibro_oat.Oat_file.methods;
    bs_thunks = List.length oat.Calibro_oat.Oat_file.thunks;
    bs_outlined = List.length oat.Calibro_oat.Oat_file.outlined;
    bs_build_s = build_s }

(* Warm-path accounting for the relink: method- and detection-tier cache
   hits scored across the rebuild. Worker domains may read Obs counters
   (value aggregates all shards). *)
let cache_hits_now () =
  List.fold_left
    (fun acc name -> acc + Obs.Counter.value name)
    0
    [ "cache.method.hits"; "cache.method.disk_hits"; "cache.detect.hits";
      "cache.detect.disk_hits"; "cache.detectdict.hits";
      "cache.detectdict.disk_hits"; "cache.detectshelve.hits";
      "cache.detectshelve.disk_hits" ]

let handle_client ~cache ~dict ~pgo (job : client_job) =
  Obs.span ~cat:"server" "server.job"
    ~args:(fun () ->
      [ ("id", Json.Int job.j_id);
        ("config", Json.Str job.j_request.Protocol.rq_config.Config.name) ])
  @@ fun () ->
  Obs.Histogram.observe "server.queue_wait_s"
    (Int64.to_float (Int64.sub (Clock.now_ns ()) job.j_accepted_ns) /. 1e9);
  if client_gone job.j_fd then begin
    (* The client hung up while the job sat in the queue: cancel. *)
    Obs.Counter.incr "server.jobs.cancelled";
    close_quietly job.j_fd
  end
  else if expired job.j_deadline_ns then begin
    Obs.Counter.incr "server.jobs.deadline";
    ignore (respond job.j_fd (Protocol.Rejected Protocol.Deadline_exceeded))
  end
  else begin
    (* The PGO refresh store first: if a drift relink landed for exactly
       this request, the worker serves the refreshed OAT without
       building — that is how the fleet converges to the new profile
       without clients changing their requests. *)
    let refreshed =
      match pgo with
      | None -> None
      | Some m ->
        let digest =
          Calibro_chash.Chash.string job.j_request.Protocol.rq_dexsim
        in
        Pgo.Manager.refreshed m ~digest ~key:(key_of_request job.j_request)
    in
    match refreshed with
    | Some (oat, build_s) ->
      Obs.Counter.incr "server.jobs.ok";
      Obs.Counter.incr "server.jobs.refreshed";
      let stats = stats_of_oat ~build_s oat in
      if not (respond_built job.j_fd ~oat ~stats) then
        Obs.Counter.incr "server.responses.lost";
      Obs.Histogram.observe "server.latency_s"
        (Int64.to_float (Int64.sub (Clock.now_ns ()) job.j_accepted_ns)
        /. 1e9)
    | None ->
      (* GC accounting for the gate's allocated-bytes-per-served-build
         line: everything from parse to the last frame byte, this domain
         only. *)
      let alloc0 = Gc.allocated_bytes () in
      (* The dictionary is read at dispatch time: a job admitted before a
         rotation builds against the dictionary of the moment it runs, and
         the digest check inside [build_oat] keeps the answer honest. *)
      let result = build_oat_hot ~cache ?dict:(dict ()) job.j_request in
      (* A result the deadline already passed is useless to the caller:
         report it as exceeded, honestly, rather than as success. *)
      let result =
        match result with
        | Ok _ when expired job.j_deadline_ns ->
          Error Protocol.Deadline_exceeded
        | r -> r
      in
      Obs.Counter.incr ("server.jobs." ^ outcome_counter result);
      (* Register the build with the PGO loop BEFORE answering: a client
         that pipelines Built -> Report must find its app registered, or
         the first report of a fresh connection races into Unknown_app. *)
      (match (result, pgo) with
      | Ok (oat, _, hot), Some m ->
        let rq = job.j_request in
        Pgo.Manager.note_build m
          ~digest:(Calibro_chash.Chash.string rq.Protocol.rq_dexsim)
          ~app:oat.Calibro_oat.Oat_file.apk_name
          ~key:(key_of_request rq) ~hot
      | _ -> ());
      let delivered =
        match result with
        | Ok (oat, stats, _) -> respond_built job.j_fd ~oat ~stats
        | Error rej -> respond job.j_fd (Protocol.Rejected rej)
      in
      if not delivered then Obs.Counter.incr "server.responses.lost";
      (match result with
      | Ok _ ->
        Obs.Counter.add "server.built.alloc_bytes"
          (int_of_float (Gc.allocated_bytes () -. alloc0))
      | Error _ -> ());
      Obs.Histogram.observe "server.latency_s"
        (Int64.to_float (Int64.sub (Clock.now_ns ()) job.j_accepted_ns)
        /. 1e9)
  end

(* A drift relink: the same build body as a client job, but the result
   lands in the PGO refresh store instead of on a socket. Failures clear
   the manager's in-flight latch; nothing answers a client, because no
   client is waiting. *)
let handle_relink ~cache ~dict ~pgo (job : relink_job) =
  match pgo with
  | None -> ()
  | Some m ->
    Obs.span ~cat:"server" "server.relink"
      ~args:(fun () -> [ ("app", Json.Str job.r_digest) ])
    @@ fun () ->
    let hits0 = cache_hits_now () in
    (match
       build_oat_hot ~cache ?dict:(dict ()) (request_of_key job.r_key)
     with
     | Ok (oat, stats, hot) ->
       Pgo.Manager.relink_done m ~digest:job.r_digest ~oat
         ~build_s:stats.Protocol.bs_build_s ~hot
         ~cache_hits:(cache_hits_now () - hits0)
     | Error _ ->
       Obs.Counter.incr "server.jobs.relink_failed";
       Pgo.Manager.relink_failed m ~digest:job.r_digest)

let handle ~cache ~dict ~pgo (job : job) =
  match job with
  | Client j -> handle_client ~cache ~dict ~pgo j
  | Relink j -> handle_relink ~cache ~dict ~pgo j

(* ---- The pool ----------------------------------------------------------- *)

let job_fd = function Client j -> Some j.j_fd | Relink _ -> None

let worker_loop ~cache ~dict ~pgo queue () =
  Obs.span ~cat:"server" "server.worker" @@ fun () ->
  let rec loop () =
    match Queue.pop queue with
    | None -> ()
    | Some job ->
      (* [handle] maps every job failure to a response; this last-resort
         catch covers bugs in the handler itself (e.g. a pathological fd):
         the worker logs and lives on. *)
      (match handle ~cache ~dict ~pgo job with
       | () -> ()
       | exception _ ->
         Obs.Counter.incr "server.jobs.handler_error";
         Option.iter close_quietly (job_fd job));
      loop ()
  in
  loop ()

let start ~workers ~cache ?(dict = fun () -> None) ?pgo ~queue () =
  let workers = max 1 workers in
  Obs.Gauge.set "server.workers" (float_of_int workers);
  { domains =
      List.init workers (fun _ ->
          Domain.spawn (worker_loop ~cache ~dict ~pgo queue)) }

let join pool = List.iter Domain.join pool.domains
