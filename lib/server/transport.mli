(** Where a calibrod (or the router) listens, and how to reach it.

    The wire protocol ({!Protocol.read_frame} / {!Protocol.write_frame})
    is already transport-agnostic — it speaks to any stream fd. This
    module is the missing piece: one [endpoint] value that names either a
    Unix-domain socket (single-host, the PR-5 shape) or a TCP address
    (the sharded-fleet shape), plus listen/connect that hide the
    [Unix.sockaddr] differences — [SO_REUSEADDR] and ephemeral-port
    resolution on the TCP side, bind-time unlink and drain-time removal
    on the Unix side. *)

type endpoint =
  | Unix_socket of { path : string }
  | Tcp of { host : string; port : int }
      (** [host] is an IP literal or a resolvable name; [port] 0 asks the
          kernel for an ephemeral port (see {!listen}). *)

val to_string : endpoint -> string
(** ["unix:PATH"] / ["tcp:HOST:PORT"] — the syntax {!of_string} reads. *)

val of_string : string -> (endpoint, string) result
(** Parse ["unix:PATH"], ["tcp:HOST:PORT"], or the two unprefixed
    conveniences the CLIs accept: a string containing [/] is a socket
    path, a [HOST:PORT] with a numeric port is TCP. *)

val listen : ?backlog:int -> endpoint -> Unix.file_descr * endpoint
(** Bind and listen. Returns the listening fd and the {e resolved}
    endpoint: for [Tcp] with port 0 the actual port the kernel picked
    (so tests and benches can listen ephemerally and hand the real
    address to clients); otherwise the input endpoint. A Unix-socket
    bind replaces a stale socket file; a TCP bind sets [SO_REUSEADDR] so
    a restarted daemon does not trip over [TIME_WAIT].
    @raise Unix.Unix_error if the address cannot be bound or resolved. *)

val connect : endpoint -> Unix.file_descr
(** Connect a stream socket. TCP connections set [TCP_NODELAY] — the
    protocol is strictly request/response, so Nagle only adds latency.
    @raise Unix.Unix_error ([ECONNREFUSED], [ENOENT], ...) if nobody is
    listening there. *)

val close_listener : endpoint -> Unix.file_descr -> unit
(** Close a listening fd from {!listen} and, for a Unix socket, remove
    the socket file. Quiet on errors: drain paths call this. *)
