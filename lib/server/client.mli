(** Client side of the calibrod protocol: connect, send one request, read
    one response. Used by [calibro_load], [bench serve] and the tests.
    Speaks to a daemon or to the {!Router} alike — the wire is identical,
    over either {!Transport.endpoint} flavor. *)

type t

val connect : Transport.endpoint -> t
(** Connect to the daemon's (or router's) endpoint. The first call
    ignores [SIGPIPE] process-wide, so a daemon hanging up mid-request
    surfaces as a per-request [EPIPE] error instead of killing the
    client.
    @raise Unix.Unix_error (e.g. [ECONNREFUSED], [ENOENT]) if no daemon
    is listening there. *)

val send : t -> Protocol.build_request -> unit
(** Write the request frame. Split from {!recv} so tests can interleave
    (e.g. hold a connection open past a deadline). *)

val recv : t -> (Protocol.response, string) result
(** Read and decode the response frame. [Error] covers a dead or
    misbehaving peer, never a daemon-side refusal — those arrive as
    [Ok (Rejected _)]. *)

val close : t -> unit

val request :
  endpoint:Transport.endpoint -> Protocol.build_request ->
  (Protocol.response, string) result
(** One-shot convenience: connect, send, receive, close. *)

val hello : endpoint:Transport.endpoint -> (string option, string) result
(** The dictionary handshake: ask the daemon which shared dictionary it
    serves. [Ok (Some digest)] is what to put in [rq_dict] for a
    dictionary-relative build; [Ok None] means the daemon serves only
    self-contained builds. Answered even while the daemon drains. *)

val report :
  endpoint:Transport.endpoint -> Protocol.profile_report ->
  (float * bool, string) result
(** Stream one profile report into the daemon's PGO loop.
    [Ok (drift, relink_scheduled)] echoes the drift score the report
    produced and whether it triggered an incremental re-link; daemon-side
    refusals (e.g. [Unknown_app]) arrive as [Error] with the typed
    rejection's message. Answered even while the daemon drains (a drain
    merges but never schedules). *)
