(* The store-wide shared outline dictionary (prelink-style sharing).

   Per-app LTBO deduplicates repeated sequences *within* one app; across
   a store, the same outlined bodies recur app after app — every app pays
   for its own copy. This pass mines outlined bodies across a set of app
   builds, keeps the ones at least two apps carry, ranks them by
   fleet-wide bytes saved, and concatenates the winners into one image
   every device maps once at {!Calibro_codegen.Abi.dict_base}. The
   linker then binds a matching body to its shared slot instead of
   placing it locally (see {!Calibro_oat.Linker.dict}), exactly like a
   prelinked system library.

   The image digest is computed with the stdlib MD5 ([Digest]), never
   {!Calibro_chash.Chash}: the digest names the dictionary in OAT
   containers and on the wire, so it must not change with the
   CALIBRO_HASH backend selection. *)

open Calibro_core
module Oat_file = Calibro_oat.Oat_file
module Linker = Calibro_oat.Linker
module Arena = Calibro_oat.Arena
module Abi = Calibro_codegen.Abi
module Obs = Calibro_obs.Obs

type entry = {
  e_offset : int;  (** byte offset of the body in the image *)
  e_size : int;
  e_apps : int;
      (** distinct apps carrying this body at mining time; 0 after
          {!load} (the persisted form does not keep provenance) *)
}

type t = {
  dt_image : bytes;
  dt_digest : string;  (** MD5 hex of [dt_image] *)
  dt_entries : entry list;  (** in image order *)
  dt_slots : (string, int) Hashtbl.t;  (** body bytes -> image offset *)
}

let digest t = t.dt_digest
let image t = t.dt_image
let size t = Bytes.length t.dt_image
let entries t = t.dt_entries
let n_bodies t = List.length t.dt_entries

let name_prefix = "calibro-dict:"

let image_digest image = Digest.to_hex (Digest.bytes image)

(* Fleet-wide bytes saved by sharing [body] across [apps] copies: the
   store ships one body instead of [apps], minus nothing locally (the
   bound [bl] sites existed already). The dictionary itself pays [size]
   once, so the net is (apps - 1) * size. *)
let saved ~apps ~size = (apps - 1) * size

let of_entry_list ranked =
  let a = Arena.create () in
  let slots = Hashtbl.create (List.length ranked * 2) in
  let entries =
    List.map
      (fun (body, apps) ->
        let off = Arena.length a in
        Arena.add_string a body;
        Hashtbl.replace slots body off;
        { e_offset = off; e_size = String.length body; e_apps = apps })
      ranked
  in
  let image = Arena.to_bytes a in
  { dt_image = image;
    dt_digest = image_digest image;
    dt_entries = entries;
    dt_slots = slots }

let bodies_of_oat (oat : Oat_file.t) =
  List.map
    (fun (ol : Oat_file.outlined_entry) ->
      Bytes.sub_string oat.Oat_file.text ol.Oat_file.ol_offset
        ol.Oat_file.ol_size)
    oat.Oat_file.outlined

let of_oats (oats : Oat_file.t list) : t =
  (* Count, per distinct body, how many *apps* carry it (per-app LTBO
     already deduplicates within one app, but count defensively). *)
  let app_count : (string, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun oat ->
      let seen = Hashtbl.create 64 in
      List.iter
        (fun body ->
          if not (Hashtbl.mem seen body) then begin
            Hashtbl.add seen body ();
            Hashtbl.replace app_count body
              (1 + Option.value ~default:0 (Hashtbl.find_opt app_count body))
          end)
        (bodies_of_oat oat))
    oats;
  let winners =
    Hashtbl.fold
      (fun body apps acc -> if apps >= 2 then (body, apps) :: acc else acc)
      app_count []
    (* Rank by fleet-wide bytes saved, best first; ties break on the body
       bytes so the image is deterministic across hosts and runs. *)
    |> List.sort (fun (b1, a1) (b2, a2) ->
           let s1 = saved ~apps:a1 ~size:(String.length b1)
           and s2 = saved ~apps:a2 ~size:(String.length b2) in
           match compare s2 s1 with 0 -> compare b1 b2 | c -> c)
  in
  let t = of_entry_list winners in
  Obs.Counter.add "dict.bodies" (n_bodies t);
  Obs.Counter.add "dict.image_bytes" (size t);
  t

let mine ?cache ?(config = Config.cto_ltbo_pl ~k:8 ())
    (apks : Calibro_dex.Dex_ir.apk list) : t =
  of_oats
    (List.map
       (fun apk -> (Pipeline.build ~cache ~config apk).Pipeline.b_oat)
       apks)

let linker_dict t =
  { Linker.dct_digest = t.dt_digest;
    dct_base = Abi.dict_base;
    dct_slots = t.dt_slots }

let vm_image t =
  { Calibro_vm.Interp.di_digest = t.dt_digest;
    di_image = t.dt_image;
    di_entries = List.map (fun e -> (e.e_offset, e.e_size)) t.dt_entries }

(* ---- Persistence ---------------------------------------------------------

   The artifact is itself an OAT container: the image as text, one
   outlined entry per body, and a self-naming [apk_name] binding the
   content digest into the (digest-checked) method table. Corruption
   anywhere is a typed error on load:
   - truncation        -> Oat_file.of_bytes bounds check;
   - method-table flip -> Marshal/decode failure in of_bytes;
   - image flip        -> the recomputed digest no longer matches the
                          name (of_bytes cannot see it; we can). *)

let to_oat t : Oat_file.t =
  { Oat_file.apk_name = name_prefix ^ t.dt_digest;
    text = Bytes.copy t.dt_image;
    methods = [];
    thunks = [];
    outlined =
      List.map
        (fun e -> { Oat_file.ol_offset = e.e_offset; ol_size = e.e_size })
        t.dt_entries;
    dict_digest = None;
    shelve = None }

let save t path = Oat_file.save (to_oat t) path

let of_oat_container (oat : Oat_file.t) : (t, string) result =
  let n = String.length name_prefix in
  if
    String.length oat.Oat_file.apk_name < n
    || String.sub oat.Oat_file.apk_name 0 n <> name_prefix
  then Error "not a dictionary container"
  else begin
    let named = String.sub oat.Oat_file.apk_name n
        (String.length oat.Oat_file.apk_name - n)
    in
    let actual = image_digest oat.Oat_file.text in
    if named <> actual then
      Error
        (Printf.sprintf "dictionary image digest mismatch: named %s, image %s"
           named actual)
    else begin
      (* The entries must tile the image exactly — a damaged table that
         survived the marshal round-trip still may not describe bodies
         that overlap or fall outside the image. *)
      let pos = ref 0 and ok = ref true in
      List.iter
        (fun (ol : Oat_file.outlined_entry) ->
          if ol.Oat_file.ol_offset <> !pos || ol.Oat_file.ol_size <= 0 then
            ok := false
          else pos := !pos + ol.Oat_file.ol_size)
        oat.Oat_file.outlined;
      if (not !ok) || !pos <> Bytes.length oat.Oat_file.text then
        Error "dictionary entry table does not tile the image"
      else begin
        let slots = Hashtbl.create 64 in
        let entries =
          List.map
            (fun (ol : Oat_file.outlined_entry) ->
              let body =
                Bytes.sub_string oat.Oat_file.text ol.Oat_file.ol_offset
                  ol.Oat_file.ol_size
              in
              Hashtbl.replace slots body ol.Oat_file.ol_offset;
              { e_offset = ol.Oat_file.ol_offset;
                e_size = ol.Oat_file.ol_size;
                e_apps = 0 })
            oat.Oat_file.outlined
        in
        Ok
          { dt_image = Bytes.copy oat.Oat_file.text;
            dt_digest = actual;
            dt_entries = entries;
            dt_slots = slots }
      end
    end
  end

let load path : (t, string) result =
  match Oat_file.load path with
  | exception Sys_error m -> Error m
  | Error e -> Error e
  | Ok oat -> of_oat_container oat
