(** The store-wide shared outline dictionary (prelink-style sharing).

    Per-app LTBO removes repeats {i within} one app; across an app store
    the same outlined bodies recur app after app, each shipping its own
    copy. A dictionary is a single image of the bodies at least two apps
    carry, ranked by fleet-wide bytes saved, that every device maps once
    at {!Calibro_codegen.Abi.dict_base}. {!Calibro_oat.Linker.link}
    with {!linker_dict} binds a matching body to its shared slot instead
    of placing it locally, like a prelinked system library; the
    resulting OAT records the dictionary digest
    ({!Calibro_oat.Oat_file.t.dict_digest}) and executes only against
    that exact image.

    Digests are stdlib MD5, deliberately independent of the
    [CALIBRO_HASH] backend: they name the dictionary inside OAT bytes
    and on the wire, where backend choice must not change output. *)

type entry = {
  e_offset : int;  (** byte offset of the body in the image *)
  e_size : int;
  e_apps : int;
      (** distinct apps carrying the body at mining time; 0 after
          {!load} (provenance is not persisted) *)
}

type t

val digest : t -> string
(** MD5 hex of the image — the identity every consumer keys on. *)

val image : t -> bytes
val size : t -> int
val entries : t -> entry list
val n_bodies : t -> int

val saved : apps:int -> size:int -> int
(** Fleet-wide bytes saved by sharing one body: [(apps - 1) * size]
    (the store ships one copy instead of [apps]). *)

val mine :
  ?cache:Calibro_cache.Cache.t ->
  ?config:Calibro_core.Config.t ->
  Calibro_dex.Dex_ir.apk list ->
  t
(** Build every app (default config: CTO+LTBO+PlOpti(8)), collect the
    outlined bodies, keep those at least two apps share, rank by
    {!saved} (deterministic tie-break on body bytes) and emit the
    image. An empty result (no cross-app repeats) is a valid, empty
    dictionary — linking against it binds nothing. *)

val of_oats : Calibro_oat.Oat_file.t list -> t
(** {!mine} over already-built containers. *)

val linker_dict : t -> Calibro_oat.Linker.dict
(** The binding view {!Calibro_oat.Linker.link} consumes, based at
    {!Calibro_codegen.Abi.dict_base}. *)

val vm_image : t -> Calibro_vm.Interp.dict_image
(** The execution view {!Calibro_vm.Interp.load} consumes: the image
    the simulator maps at {!Calibro_codegen.Abi.dict_base}. *)

(** {2 Persistence}

    The artifact is itself an OAT container (the image as text, one
    outlined entry per body) whose [apk_name] is ["calibro-dict:"]
    followed by the image digest. {!load} re-derives everything and
    fails typed on any corruption: truncation (container bounds check),
    a damaged method table (decode failure), a flipped image byte
    (digest mismatch against the self-naming header) or an entry table
    that does not tile the image. A failed load can cost falling back
    to per-app outlining, never wrong code. *)

val to_oat : t -> Calibro_oat.Oat_file.t
val of_oat_container : Calibro_oat.Oat_file.t -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
