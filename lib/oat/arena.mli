(** Off-heap append arena for OAT text and wire frames.

    A growable [Bigarray.Array1] of bytes with an append cursor. The
    serving hot path uses it to build a complete response frame —
    header, OAT container, stats — in one off-heap buffer and push it to
    the socket with a single staged write, instead of the old
    [Buffer]-and-[^]-chain that copied the text segment several times
    per served build. The linker lays out and relocates the text segment
    in the same arena before the one blit into the final [bytes].

    Arenas are not thread-safe; {!with_scratch} hands out a per-domain
    reusable arena and falls back to a fresh one when the domain's
    scratch is already in use (e.g. two threads of one domain building
    concurrently), so reuse is an optimization, never a correctness
    hazard. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : ?capacity:int -> unit -> t
(** Fresh arena; [capacity] is the initial backing size (bytes). *)

val length : t -> int
(** Bytes appended so far. *)

val capacity : t -> int

val clear : t -> unit
(** Reset the cursor to 0; keeps the backing store. *)

val buffer : t -> bigstring
(** The raw backing store — valid bytes are [0, length); the rest is
    garbage. Invalidated by the next growing append. Exposed so content
    hashing ({!Calibro_chash.Chash.feed_bigarray}) can read the window
    without copying. *)

(** {2 Appending} *)

val add_char : t -> char -> unit
val add_string : t -> string -> unit
val add_substring : t -> string -> off:int -> len:int -> unit
val add_bytes : t -> bytes -> unit
val add_subbytes : t -> bytes -> off:int -> len:int -> unit

val add_i32_le : t -> int -> unit
(** Low 32 bits, little-endian — the wire and container int format. *)

val add_f64_le : t -> float -> unit
(** IEEE double, little-endian (wire stats). *)

val reserve : t -> int -> int
(** [reserve a n] appends [n] zero bytes and returns their start offset:
    the backpatch idiom for length fields written before their payload
    is sized. *)

(** {2 Random access (relocation, backpatching)} *)

val get_u32_le : t -> int -> int
val set_u32_le : t -> int -> int -> unit

(** {2 Draining} *)

val blit_to_bytes : t -> src_off:int -> bytes -> dst_off:int -> len:int -> unit

val to_bytes : t -> bytes
(** Copy of the valid window [0, length). *)

exception Write_error of string
(** A write syscall returned 0 for a nonempty buffer — a descriptor this
    writer cannot make progress on (retrying would spin forever). *)

val write_fd : ?write:(Unix.file_descr -> bytes -> int -> int -> int) ->
  t -> Unix.file_descr -> unit
(** Write the valid window to [fd], staging through a reused chunk;
    retries short writes and [EINTR]. Raises [Unix.Unix_error] on real
    write failures (e.g. [EPIPE] on client disconnect) and {!Write_error}
    on a zero-length write. [?write] substitutes the write syscall
    (tests). *)

(** {2 Per-domain scratch} *)

val with_scratch : (t -> 'a) -> 'a
(** Run [f] with this domain's scratch arena, cleared. If the scratch is
    busy (re-entrant call, or another thread of this domain holds it), a
    fresh arena is used instead. The arena — including its backing store
    and anything [buffer] returned — must not escape [f]. After [f], an
    oversized backing store is trimmed so one huge build does not pin
    its peak footprint in every domain forever. *)
