(* The OAT container: the linked output of DEX2OAT.

   Real OAT files are specialized ELF files; ours keeps the same moral
   structure — a header, a method table (the "oatmethod" headers), auxiliary
   data (stackmaps, LTBO metadata) and the text segment holding all
   compiled code, CTO thunks and LTBO outlined functions. The text segment
   is loaded at {!Calibro_codegen.Abi.text_base}. *)

open Calibro_dex.Dex_ir
open Calibro_codegen

type method_entry = {
  me_name : method_ref;
  me_slot : int;
  me_offset : int;  (** byte offset of the method's code in [text] *)
  me_size : int;
  me_meta : Meta.t;       (** offsets are method-relative *)
  me_stackmap : Stackmap.t;
  me_num_params : int;
  me_is_entry : bool;
}

type thunk_entry = { th : Abi.thunk; th_offset : int; th_size : int }

type outlined_entry = { ol_offset : int; ol_size : int }

type shelf_entry = {
  sh_slot : int;    (** ArtMethod slot of the shelved method *)
  sh_offset : int;  (** byte offset of the parked body inside the image *)
  sh_size : int;
}

type shelf = {
  shf_digest : string;
      (** the shelve *policy* digest: coverage threshold + warm set.
          Recorded so tooling can tell which plan produced the stubs. *)
  shf_image : bytes;
      (** the relocated original bodies of shelved methods, mapped by the
          VM at {!Calibro_codegen.Abi.shelf_base} *)
  shf_entries : shelf_entry list;  (** in slot order, tiling the image *)
}

type t = {
  apk_name : string;
  text : bytes;  (** fully relocated code *)
  methods : method_entry list;  (** in slot order *)
  thunks : thunk_entry list;
  outlined : outlined_entry list;  (** LTBO outlined functions *)
  dict_digest : string option;
      (** When set, [text] contains [bl] sites relocated against the
          store-wide shared dictionary with this digest, mapped at
          {!Calibro_codegen.Abi.dict_base}; executing this OAT requires
          that exact dictionary image. [None] = self-contained. *)
  shelve : shelf option;
      (** When set, profile-cold methods in [text] are fixed-size shelf
          stubs; their original bodies live in the shelf image. [None] =
          nothing shelved. *)
}

let shelved_slots t =
  match t.shelve with
  | None -> []
  | Some s -> List.map (fun e -> e.sh_slot) s.shf_entries

let text_size t = Bytes.length t.text

let find_method t name =
  List.find_opt (fun m -> m.me_name = name) t.methods

let method_by_slot t slot =
  List.find_opt (fun m -> m.me_slot = slot) t.methods

let entry_methods t = List.filter (fun m -> m.me_is_entry) t.methods

(* ---- Region table -------------------------------------------------------

   A uniform view of the text-segment layout — every method, CTO thunk and
   LTBO outlined function with its byte extent. The correctness tooling
   (Calibro_check) walks this to check that branch targets land on region
   starts, that regions tile the segment, and that outlined bodies are
   well-formed. *)

type region_kind =
  | Region_method of method_entry
  | Region_thunk of thunk_entry
  | Region_outlined of outlined_entry

type region = { rg_kind : region_kind; rg_offset : int; rg_size : int }

let region_name = function
  | { rg_kind = Region_method me; _ } -> method_ref_to_string me.me_name
  | { rg_kind = Region_thunk th; _ } ->
    Printf.sprintf "thunk@%#x" th.th_offset
  | { rg_kind = Region_outlined ol; _ } ->
    Printf.sprintf "outlined@%#x" ol.ol_offset

let regions t =
  List.map
    (fun me ->
      { rg_kind = Region_method me; rg_offset = me.me_offset;
        rg_size = me.me_size })
    t.methods
  @ List.map
      (fun th ->
        { rg_kind = Region_thunk th; rg_offset = th.th_offset;
          rg_size = th.th_size })
      t.thunks
  @ List.map
      (fun ol ->
        { rg_kind = Region_outlined ol; rg_offset = ol.ol_offset;
          rg_size = ol.ol_size })
      t.outlined
  |> List.sort (fun a b -> compare a.rg_offset b.rg_offset)

(* The set of offsets where a region starts: the only legal [bl] landing
   pads after linking. *)
let region_starts t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace tbl r.rg_offset r) (regions t);
  tbl

(* Size of the non-code ("data") portion the runtime keeps resident:
   method headers and stackmaps (the auxiliary information of paper section
   3.5), plus a fixed header page. Used by the memory-usage experiment
   (Table 5), where OAT memory = data + resident code pages; outlining does
   not shrink this part, which is why memory reductions (Table 5) are
   smaller than text reductions (Table 4). *)
let method_header_bytes = 32
let stackmap_entry_bytes = 12

let data_size t =
  4096
  + List.fold_left
      (fun acc m ->
        acc + method_header_bytes
        + (stackmap_entry_bytes * List.length m.me_stackmap))
      0 t.methods
  + (16 * List.length t.thunks)
  (* outlined functions carry no headers or stackmaps: they contain no
     safepoints (calls are never outlined), so the runtime never needs to
     describe them *)

(* ---- On-disk serialization -------------------------------------------- *)

exception Oat_error of string
(* The clean failure for malformed OAT input: [of_bytes] converts it to
   [Error], [Oatdump] lets it escape for the CLI to catch. Nothing in this
   library surfaces [Invalid_argument] for a bad input file. *)

let magic = "CALIBOAT"
let version = 4 (* v4: shelf image + entries + shelve policy digest *)

(* Append the serialized container to [a]. This is the only writer: the
   serving path emits straight into the response-frame arena (no
   intermediate [bytes] of the container at all), and [to_bytes] below is
   a thin wrapper over a scratch arena — one serialization to keep
   byte-compatible. *)
let emit (t : t) (a : Arena.t) : unit =
  Arena.add_string a magic;
  Arena.add_i32_le a version;
  (* No_sharing: the default encoding writes back-references for
     physically shared blocks, so two structurally equal method tables
     can serialize to different bytes (e.g. a cache-warm build decodes
     its entries fresh while a cold build shares method_refs with the
     IR). The table is acyclic, so a purely structural encoding is safe
     and makes saved OAT files deterministic. *)
  let shelve_meta =
    Option.map (fun s -> (s.shf_digest, s.shf_entries)) t.shelve
  in
  let payload =
    Marshal.to_string
      (t.apk_name, t.dict_digest, shelve_meta, t.methods, t.thunks, t.outlined)
      [ Marshal.No_sharing ]
  in
  Arena.add_i32_le a (String.length payload);
  Arena.add_string a payload;
  Arena.add_i32_le a (Bytes.length t.text);
  Arena.add_bytes a t.text;
  (* The shelf image rides after the text segment; a build with nothing
     shelved writes a zero length and stays byte-stable. *)
  match t.shelve with
  | None -> Arena.add_i32_le a 0
  | Some s ->
    Arena.add_i32_le a (Bytes.length s.shf_image);
    Arena.add_bytes a s.shf_image

let to_bytes (t : t) : bytes =
  Arena.with_scratch @@ fun a ->
  emit t a;
  Arena.to_bytes a

let of_bytes (buf : bytes) : (t, string) result =
  (* Every region is bounds-checked before it is read, so a file truncated
     at any offset — before the magic, mid-header, mid-method-table —
     reports where it ran out instead of escaping as [Invalid_argument]
     from a blind [Bytes.sub]. *)
  let len = Bytes.length buf in
  let truncated what pos need =
    raise
      (Oat_error
         (Printf.sprintf
            "truncated OAT: %s needs %d bytes at offset %d, file is %d bytes"
            what need pos len))
  in
  let need what pos n =
    if n < 0 then
      raise (Oat_error (Printf.sprintf "corrupt OAT: negative %s length" what));
    if pos + n > len then truncated what pos n
  in
  try
    need "magic" 0 (String.length magic);
    let m = Bytes.sub_string buf 0 (String.length magic) in
    if m <> magic then Error "bad magic"
    else begin
      let pos = ref (String.length magic) in
      let read_i32 what =
        need what !pos 4;
        let v = Int32.to_int (Bytes.get_int32_le buf !pos) in
        pos := !pos + 4;
        v
      in
      let v = read_i32 "version" in
      if v <> version then Error (Printf.sprintf "bad version %d" v)
      else begin
        let payload_len = read_i32 "method-table length" in
        need "method table" !pos payload_len;
        let payload = Bytes.sub_string buf !pos payload_len in
        pos := !pos + payload_len;
        let apk_name, dict_digest, shelve_meta, methods, thunks, outlined =
          (Marshal.from_string payload 0
            : string * string option * (string * shelf_entry list) option
              * method_entry list * thunk_entry list * outlined_entry list)
        in
        let text_len = read_i32 "text length" in
        need "text segment" !pos text_len;
        let text = Bytes.sub buf !pos text_len in
        pos := !pos + text_len;
        let shelf_len = read_i32 "shelf length" in
        need "shelf image" !pos shelf_len;
        let shelf_image = Bytes.sub buf !pos shelf_len in
        let shelve =
          Option.map
            (fun (digest, entries) ->
              { shf_digest = digest; shf_image = shelf_image;
                shf_entries = entries })
            shelve_meta
        in
        Ok { apk_name; text; methods; thunks; outlined; dict_digest; shelve }
      end
    end
  with
  | Oat_error m -> Error m
  | Failure m ->
    (* [Marshal.from_string] on a damaged (but length-complete) payload *)
    Error ("corrupt OAT method table: " ^ m)
  | e -> Error (Printexc.to_string e)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      of_bytes buf)
