(* Textual dump of a linked OAT file — the debugging tool every real OAT
   workflow leans on. Prints the segment map, per-method headers and the
   disassembly with embedded-data ranges rendered as data. *)

open Calibro_aarch64
open Calibro_codegen

(* A region table can disagree with the text segment it describes — a
   truncated download, a bad tool, a hand-edited image. Validate every
   extent before touching the bytes so the dump fails with
   {!Oat_file.Oat_error} instead of an [Invalid_argument] escaping from
   [Bytes.sub] halfway through the output. *)
let check_extent (oat : Oat_file.t) what ~offset ~size =
  let text = Oat_file.text_size oat in
  if offset < 0 || size < 0 || offset + size > text then
    raise
      (Oat_file.Oat_error
         (Printf.sprintf
            "%s spans +%#x..+%#x but the text segment is %d bytes" what
            offset (offset + size) text))

(* Recognize a shelf fault stub ([movz x17, #index; brk #magic]) in the
   text segment. Decoded locally from {!Abi.shelf_stub_magic}: the stub
   *emitter* lives in lib/shelve, which depends on this library, so the
   dump recognizes the encoding rather than importing it. *)
let shelf_stub_index text ~offset ~size =
  if size <> 8 || offset < 0 || offset + size > Bytes.length text then None
  else
    match
      ( Decode.decode (Encode.word_of_bytes text offset),
        Decode.decode (Encode.word_of_bytes text (offset + 4)) )
    with
    | ( Isa.Mov_wide { kind = Isa.MOVZ; size = Isa.X; rd; imm16; hw = 0 },
        Isa.Brk m )
      when rd = Isa.x17 && m = Abi.shelf_stub_magic ->
      Some imm16
    | _ -> None

let dump_method buf (oat : Oat_file.t) (m : Oat_file.method_entry) =
  check_extent oat
    (Printf.sprintf "method %s"
       (Calibro_dex.Dex_ir.method_ref_to_string m.me_name))
    ~offset:m.me_offset ~size:m.me_size;
  Buffer.add_string buf
    (Printf.sprintf "method %s (slot %d) at +%#x, %d bytes%s%s%s\n"
       (Calibro_dex.Dex_ir.method_ref_to_string m.me_name)
       m.me_slot m.me_offset m.me_size
       (if m.me_meta.Meta.is_native then " [native]" else "")
       (if m.me_meta.Meta.has_indirect_jump then " [indirect-jump]" else "")
       (match
          shelf_stub_index oat.Oat_file.text ~offset:m.me_offset
            ~size:m.me_size
        with
       | Some i -> Printf.sprintf " [shelf-stub #%d]" i
       | None -> ""));
  let base = Abi.text_base + m.me_offset in
  let words = m.me_size / 4 in
  for i = 0 to words - 1 do
    let off = i * 4 in
    let addr = base + off in
    let w = Encode.word_of_bytes oat.Oat_file.text (m.me_offset + off) in
    let line =
      if Meta.is_embedded m.me_meta off then Printf.sprintf ".data %#010x" w
      else Disasm.to_string ~addr (Decode.decode w)
    in
    let annot =
      (if List.mem off m.me_meta.Meta.terminators then " ; terminator" else "")
      ^ (if List.mem_assoc off m.me_meta.Meta.pc_rel then " ; pc-rel" else "")
      ^ (if Meta.in_slowpath m.me_meta off then " ; slowpath" else "")
    in
    Buffer.add_string buf (Printf.sprintf "  %#x: %s%s\n" addr line annot)
  done

let dump ?(methods = true) (oat : Oat_file.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "OAT %s: text %d bytes, %d methods, %d thunks, %d outlined functions%s\n"
       oat.Oat_file.apk_name (Oat_file.text_size oat)
       (List.length oat.Oat_file.methods)
       (List.length oat.Oat_file.thunks)
       (List.length oat.Oat_file.outlined)
       (match oat.Oat_file.shelve with
        | None -> ""
        | Some s ->
          Printf.sprintf ", %d shelved"
            (List.length s.Oat_file.shf_entries)));
  (match oat.Oat_file.shelve with
   | None -> ()
   | Some s ->
     Buffer.add_string buf
       (Printf.sprintf "shelve policy %s: %d-byte shelf image at %#x\n"
          s.Oat_file.shf_digest
          (Bytes.length s.Oat_file.shf_image)
          Abi.shelf_base));
  List.iter
    (fun (t : Oat_file.thunk_entry) ->
      check_extent oat
        (Printf.sprintf "thunk %s" (Abi.thunk_name t.th))
        ~offset:t.th_offset ~size:t.th_size;
      Buffer.add_string buf
        (Printf.sprintf "thunk %s at +%#x, %d bytes\n" (Abi.thunk_name t.th)
           t.th_offset t.th_size);
      Buffer.add_string buf
        (Disasm.dump ~base:(Abi.text_base + t.th_offset)
           (Bytes.sub oat.Oat_file.text t.th_offset t.th_size)))
    oat.Oat_file.thunks;
  if methods then List.iter (dump_method buf oat) oat.Oat_file.methods;
  List.iter
    (fun (o : Oat_file.outlined_entry) ->
      check_extent oat
        (Printf.sprintf "outlined function at +%#x" o.ol_offset)
        ~offset:o.ol_offset ~size:o.ol_size;
      Buffer.add_string buf
        (Printf.sprintf "outlined at +%#x, %d bytes\n" o.ol_offset o.ol_size);
      Buffer.add_string buf
        (Disasm.dump ~base:(Abi.text_base + o.ol_offset)
           (Bytes.sub oat.Oat_file.text o.ol_offset o.ol_size)))
    oat.Oat_file.outlined;
  (match oat.Oat_file.shelve with
   | None -> ()
   | Some s ->
     let image = s.Oat_file.shf_image in
     let name_of_slot =
       let tbl = Hashtbl.create (List.length oat.Oat_file.methods) in
       List.iter
         (fun (m : Oat_file.method_entry) ->
           Hashtbl.replace tbl m.me_slot m.me_name)
         oat.Oat_file.methods;
       fun slot ->
         match Hashtbl.find_opt tbl slot with
         | Some n -> Calibro_dex.Dex_ir.method_ref_to_string n
         | None -> Printf.sprintf "<unknown slot %d>" slot
     in
     List.iter
       (fun (e : Oat_file.shelf_entry) ->
         if e.sh_offset < 0 || e.sh_size < 0
            || e.sh_offset + e.sh_size > Bytes.length image
         then
           raise
             (Oat_file.Oat_error
                (Printf.sprintf
                   "shelf body for slot %d spans +%#x..+%#x but the shelf \
                    image is %d bytes"
                   e.sh_slot e.sh_offset (e.sh_offset + e.sh_size)
                   (Bytes.length image)));
         Buffer.add_string buf
           (Printf.sprintf "shelved %s (slot %d) at shelf+%#x, %d bytes\n"
              (name_of_slot e.sh_slot) e.sh_slot e.sh_offset e.sh_size);
         if methods then
           Buffer.add_string buf
             (Disasm.dump ~base:(Abi.shelf_base + e.sh_offset)
                (Bytes.sub image e.sh_offset e.sh_size)))
       s.Oat_file.shf_entries);
  Buffer.contents buf
