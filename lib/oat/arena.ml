module Obs = Calibro_obs.Obs

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable buf : bigstring;
  mutable len : int;
  mutable chunk : Bytes.t;  (* staging for write_fd, grown lazily *)
}

let alloc n : bigstring = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n

let create ?(capacity = 64 * 1024) () =
  { buf = alloc (max 16 capacity); len = 0; chunk = Bytes.create 0 }

let length a = a.len
let capacity a = Bigarray.Array1.dim a.buf
let clear a = a.len <- 0
let buffer a = a.buf

let grow a needed =
  let cap = capacity a in
  let cap' = ref (max cap 16) in
  while !cap' < needed do
    cap' := !cap' * 2
  done;
  let buf' = alloc !cap' in
  Bigarray.Array1.blit
    (Bigarray.Array1.sub a.buf 0 a.len)
    (Bigarray.Array1.sub buf' 0 a.len);
  a.buf <- buf';
  Obs.Counter.incr "arena.grows"

let[@inline] ensure a n = if a.len + n > capacity a then grow a (a.len + n)

let add_char a c =
  ensure a 1;
  Bigarray.Array1.unsafe_set a.buf a.len c;
  a.len <- a.len + 1

let add_substring a s ~off ~len =
  if off < 0 || len < 0 || off > String.length s - len then
    invalid_arg "Arena.add_substring";
  ensure a len;
  let buf = a.buf and base = a.len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set buf (base + i) (String.unsafe_get s (off + i))
  done;
  a.len <- base + len

let add_string a s = add_substring a s ~off:0 ~len:(String.length s)

let add_subbytes a b ~off ~len =
  if off < 0 || len < 0 || off > Bytes.length b - len then
    invalid_arg "Arena.add_subbytes";
  ensure a len;
  let buf = a.buf and base = a.len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set buf (base + i) (Bytes.unsafe_get b (off + i))
  done;
  a.len <- base + len

let add_bytes a b = add_subbytes a b ~off:0 ~len:(Bytes.length b)

let set_u32_le a pos v =
  if pos < 0 || pos > a.len - 4 then invalid_arg "Arena.set_u32_le";
  let buf = a.buf in
  Bigarray.Array1.unsafe_set buf pos (Char.unsafe_chr (v land 0xFF));
  Bigarray.Array1.unsafe_set buf (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bigarray.Array1.unsafe_set buf (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bigarray.Array1.unsafe_set buf (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let get_u32_le a pos =
  if pos < 0 || pos > a.len - 4 then invalid_arg "Arena.get_u32_le";
  let buf = a.buf in
  let b i = Char.code (Bigarray.Array1.unsafe_get buf (pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let add_i32_le a v =
  ensure a 4;
  a.len <- a.len + 4;
  set_u32_le a (a.len - 4) (v land 0xFFFFFFFF)

let add_f64_le a f =
  ensure a 8;
  let bits = Int64.bits_of_float f in
  let buf = a.buf and base = a.len in
  for i = 0 to 7 do
    Bigarray.Array1.unsafe_set buf (base + i)
      (Char.unsafe_chr
         (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done;
  a.len <- base + 8

let reserve a n =
  if n < 0 then invalid_arg "Arena.reserve";
  ensure a n;
  let off = a.len in
  let buf = a.buf in
  for i = off to off + n - 1 do
    Bigarray.Array1.unsafe_set buf i '\000'
  done;
  a.len <- off + n;
  off

let blit_to_bytes a ~src_off dst ~dst_off ~len =
  if
    src_off < 0 || len < 0 || src_off > a.len - len
    || dst_off < 0 || dst_off > Bytes.length dst - len
  then invalid_arg "Arena.blit_to_bytes";
  let buf = a.buf in
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i)
      (Bigarray.Array1.unsafe_get buf (src_off + i))
  done

let to_bytes a =
  let out = Bytes.create a.len in
  blit_to_bytes a ~src_off:0 out ~dst_off:0 ~len:a.len;
  out

let chunk_size = 64 * 1024

exception Write_error of string

let write_fd ?(write = Unix.write) a fd =
  if Bytes.length a.chunk = 0 then a.chunk <- Bytes.create chunk_size;
  let pos = ref 0 in
  while !pos < a.len do
    let n = min chunk_size (a.len - !pos) in
    blit_to_bytes a ~src_off:!pos a.chunk ~dst_off:0 ~len:n;
    let sent = ref 0 in
    while !sent < n do
      match write fd a.chunk !sent (n - !sent) with
      | 0 ->
        (* A blocking-socket write never legitimately returns 0 for a
           nonempty buffer; retrying would spin this thread forever.
           Surface it as a typed error, like the Unix_errors we already
           propagate. *)
        raise
          (Write_error
             (Printf.sprintf "zero-length write (%d of %d bytes unsent)"
                (a.len - !pos - !sent) a.len))
      | written -> sent := !sent + written
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    pos := !pos + n
  done

(* ---- Per-domain scratch ------------------------------------------------ *)

(* One served build's peak frame is the OAT container plus slack; keep up
   to this much backing store parked per domain between jobs, shrink
   anything larger back down after use. *)
let retain_capacity = 8 * 1024 * 1024

let scratch_key : (bool Atomic.t * t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Atomic.make false, create ()))

let with_scratch f =
  let busy, arena = Domain.DLS.get scratch_key in
  if Atomic.compare_and_set busy false true then (
    Obs.Counter.incr "arena.scratch_reused";
    clear arena;
    Fun.protect
      ~finally:(fun () ->
        if capacity arena > retain_capacity then begin
          arena.buf <- alloc retain_capacity;
          arena.len <- 0;
          Obs.Counter.incr "arena.scratch_trimmed"
        end;
        Atomic.set busy false)
      (fun () -> f arena))
  else begin
    (* Another thread of this domain holds the scratch: correctness first,
       hand out a throwaway arena. *)
    Obs.Counter.incr "arena.scratch_contended";
    f (create ())
  end
