(* The linker: lays out compiled methods (plus CTO thunks and LTBO outlined
   functions) into one text segment, binds symbols, and relocates calls.

   Per the paper (section 3.2), link-time outlining runs *before* this final
   binding: "the target labels of call instructions ... have not been bound
   to addresses or offsets at this time. Instead, the later linking phase
   ... will bind function labels to addresses, and relocate the call
   instructions". So the input here may already contain [bl] sites whose
   symbols point at outlined functions. *)

open Calibro_aarch64
open Calibro_codegen
module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json

type extra_function = {
  xf_sym : int;       (** symbol id call sites reference *)
  xf_code : bytes;    (** position-independent body *)
}

(* The prelink contract for store-wide sharing: a dictionary is an image
   of outlined bodies every app maps at the same absolute address
   ([dct_base], normally [Abi.dict_base]). An extra function whose body
   bytes appear in [dct_slots] is NOT placed in the local text segment;
   its symbol binds to the dictionary slot instead, and the ordinary
   [target - at] relocation arithmetic reaches it because symbol values
   here are text-relative ([dct_base - Abi.text_base + slot_offset] is
   just a target beyond the end of the local segment). *)
type dict = {
  dct_digest : string;  (** content digest of the dictionary image *)
  dct_base : int;       (** absolute load address of the image *)
  dct_slots : (string, int) Hashtbl.t;
      (** body bytes -> byte offset of that body inside the image *)
}

(* The shelving contract: a profile-cold method's text slot holds only a
   fixed-size stub; its original (pre-LTBO) body is parked in a separate
   shelf image mapped at [Abi.shelf_base]. The body's [bl] relocations
   (CTO thunk calls — shelved bodies are pre-outlining, so they never
   reference outline symbols) are patched against the text symbols with
   cross-segment displacements. *)
type shelf_body = {
  sb_name : Calibro_dex.Dex_ir.method_ref;
  sb_slot : int;
  sb_code : bytes;                (** the original compiled body *)
  sb_relocs : (int * int) list;   (** (byte offset of a bl, symbol id) *)
}

type shelve_input = {
  shv_digest : string;            (** shelve policy digest for the header *)
  shv_bodies : shelf_body list;
}

exception Link_error of string

(* Thunk bodies are fixed specifications ([Abi.thunk_body]); under an
   incremental (cached) pipeline the linker runs on every warm rebuild, so
   re-encoding the same few bodies each time is pure waste. Encode each
   thunk once per process; [Bytes.blit] below never mutates the code, only
   copies out of it. *)
let thunk_code : (Abi.thunk, bytes) Hashtbl.t = Hashtbl.create 8
let thunk_code_lock = Mutex.create ()

let encode_thunk th =
  Mutex.lock thunk_code_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock thunk_code_lock)
    (fun () ->
      match Hashtbl.find_opt thunk_code th with
      | Some code -> code
      | None ->
        let code = Encode.to_bytes (Abi.thunk_body th) in
        Hashtbl.replace thunk_code th code;
        code)

let link ~apk_name ?(thunks = []) ?(extra = []) ?dict ?shelve
    (methods : Compiled_method.t list) : Oat_file.t =
  Obs.span ~cat:"link" "link.run"
    ~args:(fun () -> [ ("apk", Json.Str apk_name) ])
  @@ fun () ->
  let methods =
    List.sort (fun a b -> compare a.Compiled_method.slot b.Compiled_method.slot) methods
  in
  Obs.Counter.add "linker.methods_placed" (List.length methods);
  Obs.Counter.add "linker.thunks_placed" (List.length thunks);
  Obs.Counter.add "linker.outlined_placed" (List.length extra);
  (* ---- Layout: thunks, then methods, then extra (outlined) functions. *)
  let symtab : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* Every definition must bind a fresh symbol: the namespaces are disjoint
     by construction (method slots below [Abi.thunk_sym_base], thunks and
     outlined functions above it), so a collision means the caller produced
     two definitions for one symbol and a silent [Hashtbl.replace] would
     mislink every call site of the first. *)
  let define sym off =
    if Hashtbl.mem symtab sym then
      raise (Link_error (Printf.sprintf "duplicate symbol %d" sym));
    Hashtbl.replace symtab sym off
  in
  let pos = ref 0 in
  let thunk_entries =
    List.map
      (fun th ->
        let code = encode_thunk th in
        let off = !pos in
        define (Abi.thunk_sym th) off;
        pos := !pos + Bytes.length code;
        (th, off, code))
      thunks
  in
  let method_entries =
    List.map
      (fun (m : Compiled_method.t) ->
        let off = !pos in
        define m.slot off;
        pos := !pos + Bytes.length m.code;
        (m, off))
      methods
  in
  (* Extra (outlined) functions: with a dictionary, a body the store
     already carries binds to its shared slot and costs zero local bytes;
     everything else is placed locally as before. *)
  let dict_bound = ref 0 in
  let extra_entries =
    List.filter_map
      (fun xf ->
        let local () =
          let off = !pos in
          define xf.xf_sym off;
          pos := !pos + Bytes.length xf.xf_code;
          Some (xf, off)
        in
        match dict with
        | None -> local ()
        | Some d -> (
          match Hashtbl.find_opt d.dct_slots (Bytes.to_string xf.xf_code) with
          | None -> local ()
          | Some slot_off ->
            define xf.xf_sym (d.dct_base - Abi.text_base + slot_off);
            incr dict_bound;
            None))
      extra
  in
  Obs.Counter.add "linker.dict_bound" !dict_bound;
  let resolve sym =
    match Hashtbl.find_opt symtab sym with
    | Some off -> off
    | None -> raise (Link_error (Printf.sprintf "undefined symbol %d" sym))
  in
  let relocated = ref 0 in
  (* Layout and relocation run in the domain's off-heap scratch arena —
     segment assembly and word patching touch no OCaml heap until the one
     final [to_bytes], so a warm worker domain relinks without churning
     the minor heap on intermediate segment buffers. The entries were
     assigned contiguous offsets above, so appending in the same order
     tiles the arena exactly. *)
  let text =
    Arena.with_scratch @@ fun arena ->
    Obs.span ~cat:"link" "link.layout" (fun () ->
        List.iter (fun (_, _, code) -> Arena.add_bytes arena code) thunk_entries;
        List.iter
          (fun ((m : Compiled_method.t), _) -> Arena.add_bytes arena m.code)
          method_entries;
        List.iter (fun (xf, _) -> Arena.add_bytes arena xf.xf_code) extra_entries;
        assert (Arena.length arena = !pos));
    (* ---- Relocate bl sites. *)
    Obs.span ~cat:"link" "link.relocate"
      ~args:(fun () -> [ ("relocations", Json.Int !relocated) ])
      (fun () ->
        List.iter
          (fun ((m : Compiled_method.t), off) ->
            List.iter
              (fun (site, sym) ->
                let target = resolve sym in
                incr relocated;
                let at = off + site in
                let word = Arena.get_u32_le arena at in
                Arena.set_u32_le arena at
                  (Patch.patch_word word ~disp:(target - at)))
              m.relocs)
          method_entries);
    Arena.to_bytes arena
  in
  Obs.Counter.add "linker.relocations_patched" !relocated;
  Obs.Gauge.set "linker.last_text_size" (float_of_int (Bytes.length text));
  (* ---- Shelf image: parked bodies in slot order, each [bl] patched with
     the cross-segment displacement to its text-resident thunk. An empty
     plan records nothing, keeping the container byte-identical to an
     unshelved link. *)
  let shelf =
    match shelve with
    | None | Some { shv_bodies = []; _ } -> None
    | Some shv ->
      let bodies =
        List.sort (fun a b -> compare a.sb_slot b.sb_slot) shv.shv_bodies
      in
      let shelf_pos = ref 0 in
      let placed =
        List.map
          (fun sb ->
            let off = !shelf_pos in
            shelf_pos := !shelf_pos + Bytes.length sb.sb_code;
            (sb, off))
          bodies
      in
      let image = Bytes.create !shelf_pos in
      List.iter
        (fun (sb, off) ->
          Bytes.blit sb.sb_code 0 image off (Bytes.length sb.sb_code);
          List.iter
            (fun (site, sym) ->
              let target_abs = Abi.text_base + resolve sym in
              let at = off + site in
              let at_abs = Abi.shelf_base + at in
              let word = Int32.to_int (Bytes.get_int32_le image at)
                         land 0xFFFFFFFF in
              incr relocated;
              Bytes.set_int32_le image at
                (Int32.of_int (Patch.patch_word word ~disp:(target_abs - at_abs))))
            sb.sb_relocs)
        placed;
      Obs.Counter.add "linker.shelved_placed" (List.length bodies);
      Some
        { Oat_file.shf_digest = shv.shv_digest;
          shf_image = image;
          shf_entries =
            List.map
              (fun (sb, off) ->
                { Oat_file.sh_slot = sb.sb_slot; sh_offset = off;
                  sh_size = Bytes.length sb.sb_code })
              placed }
  in
  { Oat_file.apk_name;
    text;
    methods =
      List.map
        (fun ((m : Compiled_method.t), off) ->
          { Oat_file.me_name = m.name;
            me_slot = m.slot;
            me_offset = off;
            me_size = Bytes.length m.code;
            me_meta = m.meta;
            me_stackmap = m.stackmap;
            me_num_params = m.num_params;
            me_is_entry = m.is_entry })
        method_entries;
    thunks =
      List.map
        (fun (th, off, code) ->
          { Oat_file.th; th_offset = off; th_size = Bytes.length code })
        thunk_entries;
    outlined =
      List.map
        (fun (xf, off) ->
          { Oat_file.ol_offset = off; ol_size = Bytes.length xf.xf_code })
        extra_entries;
    (* Only a text segment that actually references the dictionary pins
       its digest: a build where nothing bound (or an empty dictionary)
       stays self-contained, byte-for-byte identical to a no-dict link. *)
    dict_digest =
      (if !dict_bound > 0 then Option.map (fun d -> d.dct_digest) dict
       else None);
    shelve = shelf }
