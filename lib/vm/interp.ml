(* The execution simulator: loads a linked OAT image into simulated memory
   and interprets the *encoded* text segment — the same bytes the outliner
   rewrote. It stands in for the Pixel 7 of the paper's evaluation: the
   cycle counters replace simpleperf (Table 7), the page tracker replaces
   the memory measurements (Table 5), and differential execution against
   an un-outlined build is the correctness oracle for the whole system.

   The ART runtime contract of {!Calibro_codegen.Abi} is materialized in
   memory: ArtMethod structs with entry pointers (so the Figure 4a pattern
   executes unmodified), a runtime function table pointed to by x19
   (Figure 4b), and stack-probe semantics for Figure 4c. *)

open Calibro_aarch64
open Calibro_dex.Dex_ir
open Calibro_codegen
module M = Machine

let halt_addr = 0xDEAD0000
let runtime_code_base = 0xB000000

type outcome =
  | Returned of int            (** normal return; the value of x0 *)
  | Thrown of runtime_fn       (** a runtime exception (throw family) *)
  | Fault of string            (** machine-level failure: a real bug *)

exception Throw of runtime_fn
exception Fault_exn of string

type region =
  | R_method of int
  | R_thunk of int
  | R_outlined of int
  | R_dict of int  (** body index inside the shared dictionary image *)

(* The execution view of a store-wide shared dictionary: the image every
   device maps at [Abi.dict_base], its content digest, and the body
   extents (for region-granular residency accounting). Kept structural —
   (digest, image, extents) — so the VM does not depend on the mining
   library; callers pass [Dict.(digest d, image d, ...)]. *)
type dict_image = {
  di_digest : string;
  di_image : bytes;
  di_entries : (int * int) list;  (** (offset, size) per body, in order *)
}

exception Dict_mismatch of { expected : string option; got : string option }
(* A dictionary-relative OAT loaded without its exact dictionary (or a
   self-contained OAT loaded with one pinned as required) would execute
   wild branches into unmapped or wrong bytes — refuse at load time. *)

(* One shelved method, as the fault handler sees it: where the parked body
   lives, which ArtMethod to repoint, and which region its cycles belong
   to (the owning method's, so profile attribution — and therefore the PGO
   unshelve-on-drift loop — keeps working for shelved code). *)
type shelf_slot = {
  si_name : method_ref;
  si_slot : int;
  si_addr : int;    (** absolute address of the parked body *)
  si_region : int;  (** region table index of the owning method *)
}

type t = {
  oat : Calibro_oat.Oat_file.t;
  machine : M.t;
  decoded : Isa.t array;        (** pre-decoded text *)
  region_of : int array;        (** word index -> region table index *)
  regions : region array;
  dict_decoded : Isa.t array;   (** pre-decoded dictionary image *)
  dict_region_of : int array;   (** dict word index -> region table index *)
  dict_len : int;               (** bytes of mapped dictionary image *)
  shelf_decoded : Isa.t array;  (** pre-decoded shelf image *)
  shelf_region_of : int array;  (** shelf word index -> owning method region *)
  shelf_len : int;              (** bytes of mapped shelf image *)
  shelf_slots : shelf_slot array;  (** indexed by stub index *)
  shelf_unshelved : bool array;
  shelf_faults : int array;     (** stub faults taken, per shelf index *)
  mutable unshelves : int;      (** methods redirected to their shelf body *)
  cost : Cost.t;
  native_impls : (method_ref, M.t -> unit) Hashtbl.t;
  mutable fuel : int;
  mutable last_region : int;
  regions_touched : bool array;
  region_sizes : int array;
}

let text_end oat = Abi.text_base + Calibro_oat.Oat_file.text_size oat

(* ---- Loading ----------------------------------------------------------- *)

let load ?(cost_params = Cost.default) ?(fuel = 500_000_000) ?dict
    (oat : Calibro_oat.Oat_file.t) : t =
  (* Byte-faithful execution demands the exact image the linker bound
     against: digest equality, both ways. *)
  (match oat.dict_digest, dict with
   | None, _ -> ()  (* self-contained; an ambient dictionary is harmless *)
   | Some want, Some d when d.di_digest = want -> ()
   | Some want, (Some _ | None) ->
     raise
       (Dict_mismatch
          { expected = Some want;
            got = Option.map (fun d -> d.di_digest) dict }));
  let m = M.create () in
  (* Map the text segment. *)
  M.write_bytes m Abi.text_base oat.text;
  (* Map the shared dictionary image, exactly as prelink would. *)
  (match dict with
   | None -> ()
   | Some d -> M.write_bytes m Abi.dict_base d.di_image);
  (* Forget the pages touched while loading: residency tracking starts
     clean; execution re-touches what it uses. The text pages stay mapped
     (the data is there), we only reset the *executed* set, and data-page
     accounting excludes the text range at query time. *)
  (* Runtime function table (x19 points here). *)
  List.iteri
    (fun i _fn ->
      M.write64 m (Abi.runtime_table_base + (8 * i)) (runtime_code_base + (8 * i)))
    all_runtime_fns;
  (* ArtMethod structs. *)
  List.iter
    (fun (me : Calibro_oat.Oat_file.method_entry) ->
      let base = Abi.art_method_addr ~slot:me.me_slot in
      M.write64 m base me.me_slot;
      let entry =
        if me.me_meta.Meta.is_native then
          Abi.native_entry_base + (8 * me.me_slot)
        else Abi.text_base + me.me_offset
      in
      M.write64 m (base + Abi.entry_point_offset) entry)
    oat.methods;
  (* Pre-decode the text and build the region map. *)
  let n_words = Calibro_oat.Oat_file.text_size oat / 4 in
  let decoded =
    Array.init n_words (fun i ->
        Decode.decode (Encode.word_of_bytes oat.text (i * 4)))
  in
  let dict_entries = match dict with None -> [] | Some d -> d.di_entries in
  let regions =
    Array.of_list
      (List.mapi (fun i (me : Calibro_oat.Oat_file.method_entry) ->
           ignore me; R_method i)
         oat.methods
      @ List.mapi (fun i _ -> R_thunk i) oat.thunks
      @ List.mapi (fun i _ -> R_outlined i) oat.outlined
      @ List.mapi (fun i _ -> R_dict i) dict_entries)
  in
  let region_of = Array.make n_words (-1) in
  let fill off size rid =
    for w = off / 4 to (off + size) / 4 - 1 do
      region_of.(w) <- rid
    done
  in
  let rid = ref 0 in
  List.iter
    (fun (me : Calibro_oat.Oat_file.method_entry) ->
      fill me.me_offset me.me_size !rid;
      incr rid)
    oat.methods;
  List.iter
    (fun (th : Calibro_oat.Oat_file.thunk_entry) ->
      fill th.th_offset th.th_size !rid;
      incr rid)
    oat.thunks;
  List.iter
    (fun (ol : Calibro_oat.Oat_file.outlined_entry) ->
      fill ol.ol_offset ol.ol_size !rid;
      incr rid)
    oat.outlined;
  (* Pre-decode the dictionary image; its regions continue the table so
     the per-region cost and residency arrays cover it uniformly. *)
  let dict_image =
    match dict with None -> Bytes.create 0 | Some d -> d.di_image
  in
  let dict_decoded =
    Array.init
      (Bytes.length dict_image / 4)
      (fun i -> Decode.decode (Encode.word_of_bytes dict_image (i * 4)))
  in
  let dict_region_of = Array.make (Array.length dict_decoded) (-1) in
  List.iter
    (fun (off, size) ->
      for w = off / 4 to (off + size) / 4 - 1 do
        dict_region_of.(w) <- !rid
      done;
      incr rid)
    dict_entries;
  let region_sizes =
    Array.of_list
      (List.map (fun (me : Calibro_oat.Oat_file.method_entry) -> me.me_size)
         oat.methods
      @ List.map (fun (th : Calibro_oat.Oat_file.thunk_entry) -> th.th_size)
          oat.thunks
      @ List.map (fun (ol : Calibro_oat.Oat_file.outlined_entry) -> ol.ol_size)
          oat.outlined
      @ List.map snd dict_entries)
  in
  (* ---- Shelf image: map it, pre-decode it, and wire every shelf word to
     its *owning method's* region so cycles spent in a parked body flow
     into that method's profile line (the PGO loop unshelves on exactly
     that signal). *)
  let shelf_entries =
    match oat.shelve with None -> [] | Some s -> s.shf_entries
  in
  let shelf_image =
    match oat.shelve with
    | None -> Bytes.create 0
    | Some s -> s.shf_image
  in
  M.write_bytes m Abi.shelf_base shelf_image;
  let shelf_decoded =
    Array.init
      (Bytes.length shelf_image / 4)
      (fun i -> Decode.decode (Encode.word_of_bytes shelf_image (i * 4)))
  in
  let method_region_by_slot = Hashtbl.create 64 in
  List.iteri
    (fun i (me : Calibro_oat.Oat_file.method_entry) ->
      Hashtbl.replace method_region_by_slot me.me_slot (i, me.me_name))
    oat.methods;
  let shelf_region_of = Array.make (Array.length shelf_decoded) (-1) in
  let shelf_slots =
    Array.of_list
      (List.map
         (fun (e : Calibro_oat.Oat_file.shelf_entry) ->
           match Hashtbl.find_opt method_region_by_slot e.sh_slot with
           | None ->
             raise
               (Fault_exn
                  (Printf.sprintf "shelf entry for unknown slot %d" e.sh_slot))
           | Some (region, name) ->
             for w = e.sh_offset / 4 to (e.sh_offset + e.sh_size) / 4 - 1 do
               shelf_region_of.(w) <- region
             done;
             (* Residency: entering a shelved method keeps both its stub
                and its parked body resident. *)
             region_sizes.(region) <- region_sizes.(region) + e.sh_size;
             { si_name = name; si_slot = e.sh_slot;
               si_addr = Abi.shelf_base + e.sh_offset; si_region = region })
         shelf_entries)
  in
  { oat; machine = m; decoded; region_of; regions;
    dict_decoded; dict_region_of; dict_len = Bytes.length dict_image;
    shelf_decoded; shelf_region_of; shelf_len = Bytes.length shelf_image;
    shelf_slots;
    shelf_unshelved = Array.make (Array.length shelf_slots) false;
    shelf_faults = Array.make (Array.length shelf_slots) 0;
    unshelves = 0;
    cost = Cost.create ~params:cost_params ~n_regions:(Array.length regions) ();
    native_impls = Hashtbl.create 8; fuel; last_region = -1;
    regions_touched = Array.make (Array.length regions) false;
    region_sizes }

let register_native t name impl = Hashtbl.replace t.native_impls name impl

(* ---- Runtime functions -------------------------------------------------- *)

let alloc t size =
  let m = t.machine in
  let aligned = (size + 15) / 16 * 16 in
  let addr = m.M.heap_next in
  if addr + aligned > Abi.heap_limit then raise (Fault_exn "heap exhausted");
  m.M.heap_next <- addr + aligned;
  addr

let dispatch_runtime t fn =
  let m = t.machine in
  Cost.on_runtime_call t.cost ~region:t.last_region;
  (match fn with
   | Alloc_object -> M.set_reg m 0 (alloc t 4096)
   | Alloc_array ->
     let len = M.get_reg m 0 in
     if len < 0 then raise (Throw Throw_array_bounds);
     let addr = alloc t (8 + (8 * len)) in
     M.write64 m addr len;
     M.set_reg m 0 addr
   | Throw_null_pointer -> raise (Throw Throw_null_pointer)
   | Throw_array_bounds -> raise (Throw Throw_array_bounds)
   | Throw_stack_overflow -> raise (Throw Throw_stack_overflow)
   | Throw_div_zero -> raise (Throw Throw_div_zero)
   | Resolve_string -> () (* identity: x0 already holds the pool address *)
   | Log_value -> m.M.log <- M.get_reg m 0 :: m.M.log);
  m.M.pc <- M.get_reg m Isa.lr

let dispatch_native t slot =
  let m = t.machine in
  (match Calibro_oat.Oat_file.method_by_slot t.oat slot with
   | None -> raise (Fault_exn (Printf.sprintf "native call to unknown slot %d" slot))
   | Some me -> (
     match Hashtbl.find_opt t.native_impls me.me_name with
     | Some impl -> impl m
     | None -> M.set_reg m 0 0));
  m.M.pc <- M.get_reg m Isa.lr

(* ---- Instruction semantics ---------------------------------------------- *)

let check_data_access t addr =
  (* The Figure 4c probe reads below sp; a read under the stack limit means
     the stack would overflow. *)
  if addr < Abi.stack_limit && addr >= Abi.stack_limit - (2 * Abi.stack_probe_distance)
  then raise (Throw Throw_stack_overflow);
  ignore t

let exec t instr =
  let m = t.machine in
  let open Isa in
  let next = m.M.pc + 4 in
  let taken = ref false in
  (match instr with
   | Add_sub_imm { op; set_flags; rd; rn; imm12; shift12; _ } ->
     let a = M.get_reg_sp m rn in
     let imm = if shift12 then imm12 lsl 12 else imm12 in
     let r = match op with ADD -> a + imm | SUB -> a - imm in
     if set_flags then begin
       (match op with
        | SUB -> M.set_flags_sub m a imm
        | ADD -> M.set_flags_logic m r);
       if rd <> 31 then M.set_reg m rd r
     end
     else M.set_reg_sp m rd r
   | Add_sub_reg { op; set_flags; rd; rn; rm; _ } ->
     let a = M.get_reg m rn and b = M.get_reg m rm in
     let r = match op with ADD -> a + b | SUB -> a - b in
     if set_flags then begin
       (match op with
        | SUB -> M.set_flags_sub m a b
        | ADD -> M.set_flags_logic m r);
       if rd <> 31 then M.set_reg m rd r
     end
     else M.set_reg m rd r
   | Logic_reg { op; rd; rn; rm; _ } ->
     let a = M.get_reg m rn and b = M.get_reg m rm in
     let r =
       match op with
       | AND | ANDS -> a land b
       | ORR -> a lor b
       | EOR -> a lxor b
     in
     if op = ANDS then M.set_flags_logic m r;
     M.set_reg m rd r
   | Mov_wide { kind; rd; imm16; hw; _ } ->
     let s = 16 * hw in
     (match kind with
      | MOVZ -> M.set_reg m rd (imm16 lsl s)
      | MOVN -> M.set_reg m rd (lnot (imm16 lsl s))
      | MOVK ->
        let old = M.get_reg m rd in
        M.set_reg m rd ((old land lnot (0xffff lsl s)) lor (imm16 lsl s)))
   | Mul { rd; rn; rm; _ } -> M.set_reg m rd (M.get_reg m rn * M.get_reg m rm)
   | Sdiv { rd; rn; rm; _ } ->
     let b = M.get_reg m rm in
     M.set_reg m rd (if b = 0 then 0 else M.get_reg m rn / b)
   | Msub { rd; rn; rm; ra; _ } ->
     M.set_reg m rd (M.get_reg m ra - (M.get_reg m rn * M.get_reg m rm))
   | Ldr { size; rt; rn; imm } ->
     let addr = M.get_reg_sp m rn + imm in
     check_data_access t addr;
     let v = match size with X -> M.read64 m addr | W -> M.read32 m addr in
     M.set_reg m rt v
   | Str { size; rt; rn; imm } ->
     let addr = M.get_reg_sp m rn + imm in
     check_data_access t addr;
     (match size with
      | X -> M.write64 m addr (M.get_reg m rt)
      | W ->
        for b = 0 to 3 do
          M.write_u8 m (addr + b) ((M.get_reg m rt lsr (8 * b)) land 0xff)
        done)
   | Ldp { rt; rt2; rn; imm; mode; _ } ->
     let base = M.get_reg_sp m rn in
     let ea = match mode with Post -> base | _ -> base + imm in
     M.set_reg m rt (M.read64 m ea);
     M.set_reg m rt2 (M.read64 m (ea + 8));
     (match mode with
      | Pre | Post -> M.set_reg_sp m rn (base + imm)
      | Offset -> ())
   | Stp { rt; rt2; rn; imm; mode; _ } ->
     let base = M.get_reg_sp m rn in
     let ea = match mode with Post -> base | _ -> base + imm in
     M.write64 m ea (M.get_reg m rt);
     M.write64 m (ea + 8) (M.get_reg m rt2);
     (match mode with
      | Pre | Post -> M.set_reg_sp m rn (base + imm)
      | Offset -> ())
   | Ldr_lit { rt; disp; _ } -> M.set_reg m rt (M.read64 m (m.M.pc + disp))
   | Adr { rd; disp } -> M.set_reg m rd (m.M.pc + disp)
   | Adrp { rd; disp } -> M.set_reg m rd ((m.M.pc land lnot 4095) + disp)
   | B { disp } ->
     taken := true;
     m.M.pc <- m.M.pc + disp - 4 (* compensate the +4 below *)
   | B_cond { cond; disp } ->
     if M.cond_holds m cond then begin
       taken := true;
       m.M.pc <- m.M.pc + disp - 4
     end
   | Bl { target = Rel disp } ->
     M.set_reg m lr next;
     taken := true;
     m.M.pc <- m.M.pc + disp - 4
   | Bl { target = Sym s } ->
     raise (Fault_exn (Printf.sprintf "executed unrelocated bl (sym %d)" s))
   | Blr r ->
     (* Read the target before writing the link register: blr x30 is the
        Figure 4a pattern itself. *)
     let target = M.get_reg m r in
     M.set_reg m lr next;
     taken := true;
     m.M.pc <- target - 4
   | Br r ->
     taken := true;
     m.M.pc <- M.get_reg m r - 4
   | Ret ->
     taken := true;
     m.M.pc <- M.get_reg m lr - 4
   | Cbz { rt; disp; _ } ->
     if M.get_reg m rt = 0 then begin
       taken := true;
       m.M.pc <- m.M.pc + disp - 4
     end
   | Cbnz { rt; disp; _ } ->
     if M.get_reg m rt <> 0 then begin
       taken := true;
       m.M.pc <- m.M.pc + disp - 4
     end
   | Tbz { rt; bit; disp } ->
     if (M.get_reg m rt lsr bit) land 1 = 0 then begin
       taken := true;
       m.M.pc <- m.M.pc + disp - 4
     end
   | Tbnz { rt; bit; disp } ->
     if (M.get_reg m rt lsr bit) land 1 = 1 then begin
       taken := true;
       m.M.pc <- m.M.pc + disp - 4
     end
   | Nop -> ()
   | Brk imm -> raise (Fault_exn (Printf.sprintf "brk #%#x" imm))
   | Data w ->
     raise
       (Fault_exn
          (Printf.sprintf "executed embedded data %#lx at %#x" w m.M.pc)));
  m.M.pc <- m.M.pc + 4;
  !taken

(* ---- Main loop ----------------------------------------------------------- *)

(* A shelf stub trapped: [movz x17, #index] just executed, so x17 names the
   shelf entry. The first fault per method is the *unshelve*: repoint the
   ArtMethod entry at the parked body (later calls bypass the stub
   entirely) and pay the one-time fault charge. Every fault — first or
   re-entrant — resumes execution at the parked body, so shelved code
   always runs to the same result as unshelved code. *)
let shelf_fault t =
  let m = t.machine in
  let idx = M.get_reg m Isa.x17 in
  if idx < 0 || idx >= Array.length t.shelf_slots then
    raise (Fault_exn (Printf.sprintf "shelf fault with bad index %d" idx));
  let s = t.shelf_slots.(idx) in
  t.shelf_faults.(idx) <- t.shelf_faults.(idx) + 1;
  if not t.shelf_unshelved.(idx) then begin
    t.shelf_unshelved.(idx) <- true;
    t.unshelves <- t.unshelves + 1;
    M.write64 m
      (Abi.art_method_addr ~slot:s.si_slot + Abi.entry_point_offset)
      s.si_addr;
    Cost.on_unshelve_fault t.cost ~region:s.si_region
  end;
  m.M.pc <- s.si_addr

let run t =
  let m = t.machine in
  let tend = text_end t.oat in
  let nat_end = Abi.native_entry_base + (8 * 100000) in
  let rt_end = runtime_code_base + (8 * List.length all_runtime_fns) in
  try
    while m.M.pc <> halt_addr do
      if t.fuel <= 0 then raise (Fault_exn "out of fuel");
      let pc = m.M.pc in
      if pc >= Abi.text_base && pc < tend then begin
        t.fuel <- t.fuel - 1;
        let w = (pc - Abi.text_base) / 4 in
        let instr = t.decoded.(w) in
        match instr with
        | Isa.Brk b
          when b = Abi.shelf_stub_magic && Array.length t.shelf_slots > 0 ->
          shelf_fault t
        | _ ->
          let region = t.region_of.(w) in
          if region >= 0 && not t.regions_touched.(region) then
            t.regions_touched.(region) <- true;
          t.last_region <- region;
          M.touch_exec m pc;
          let taken = exec t instr in
          Cost.on_fetch t.cost ~region ~pc instr ~taken
      end
      else if pc >= Abi.shelf_base && pc < Abi.shelf_base + t.shelf_len
      then begin
        (* Parked bodies execute with full fidelity but pay the
           interpretation penalty per instruction: shelved semantics are
           identical, only cycles differ. *)
        t.fuel <- t.fuel - 1;
        let w = (pc - Abi.shelf_base) / 4 in
        let instr = t.shelf_decoded.(w) in
        let region = t.shelf_region_of.(w) in
        if region >= 0 && not t.regions_touched.(region) then
          t.regions_touched.(region) <- true;
        t.last_region <- region;
        M.touch_exec m pc;
        let taken = exec t instr in
        Cost.on_shelf_fetch t.cost ~region ~pc instr ~taken
      end
      else if pc >= Abi.dict_base && pc < Abi.dict_base + t.dict_len then begin
        (* Shared-dictionary bodies execute exactly like local text: same
           decode, same cost model, same residency tracking — just a
           different mapping. *)
        t.fuel <- t.fuel - 1;
        let w = (pc - Abi.dict_base) / 4 in
        let instr = t.dict_decoded.(w) in
        let region = t.dict_region_of.(w) in
        if region >= 0 && not t.regions_touched.(region) then
          t.regions_touched.(region) <- true;
        t.last_region <- region;
        M.touch_exec m pc;
        let taken = exec t instr in
        Cost.on_fetch t.cost ~region ~pc instr ~taken
      end
      else if pc >= runtime_code_base && pc < rt_end then
        dispatch_runtime t (List.nth all_runtime_fns ((pc - runtime_code_base) / 8))
      else if pc >= Abi.native_entry_base && pc < nat_end then
        dispatch_native t ((pc - Abi.native_entry_base) / 8)
      else raise (Fault_exn (Printf.sprintf "wild pc %#x" pc))
    done;
    Returned (M.get_reg m 0)
  with
  | Throw fn -> Thrown fn
  | Fault_exn msg -> Fault msg

(* Invoke an entry method the way the runtime would: x0 = ArtMethod*, the
   arguments in x1.., a halt sentinel as the return address. *)
let call t (name : method_ref) (args : int list) =
  let m = t.machine in
  match Calibro_oat.Oat_file.find_method t.oat name with
  | None -> Fault (Printf.sprintf "no such method %s" (method_ref_to_string name))
  | Some me ->
    if List.length args > Abi.max_java_args then Fault "too many arguments"
    else begin
      M.set_reg m Abi.thread_reg Abi.runtime_table_base;
      M.set_reg m Abi.method_table_reg Abi.method_table_base;
      m.M.sp <- Abi.stack_top;
      M.set_reg m 0 (Abi.art_method_addr ~slot:me.me_slot);
      List.iteri (fun i v -> M.set_reg m (i + 1) v) args;
      M.set_reg m Isa.lr halt_addr;
      m.M.pc <- M.read64 m (Abi.art_method_addr ~slot:me.me_slot + Abi.entry_point_offset);
      run t
    end

(* Like {!call}, but also return the pLogValue entries emitted by this
   invocation alone (oldest first). The differential oracle compares these
   per-call slices so a divergence is attributed to the entry method that
   produced it rather than to the whole session. *)
let call_traced t (name : method_ref) (args : int list) =
  let before = List.length t.machine.M.log in
  let outcome = call t name args in
  let after = t.machine.M.log in
  (* The log is newest-first; prepending the first [length after - before]
     entries flips the slice back to emission order. *)
  let rec take acc k = function
    | v :: rest when k > 0 -> take (v :: acc) (k - 1) rest
    | _ -> acc
  in
  (outcome, take [] (List.length after - before) after)

(* ---- Measurements -------------------------------------------------------- *)

let cycles t = t.cost.Cost.cycles
let instructions_retired t = t.cost.Cost.instructions
let log t = List.rev t.machine.M.log

(* Per-method cycle attribution, for the simpleperf substitute. *)
let method_cycles t =
  List.mapi
    (fun i (me : Calibro_oat.Oat_file.method_entry) ->
      (me.me_name, t.cost.Cost.per_region.(i)))
    t.oat.methods

(* ---- Shelving observability ------------------------------------------- *)

(* Methods whose first fault redirected the ArtMethod entry to the shelf. *)
let unshelved_count t = t.unshelves

(* Stub faults taken per shelved method (first + re-entrant), in shelf
   order. A method never called stays at 0. *)
let shelf_fault_counts t =
  Array.to_list
    (Array.mapi (fun i s -> (s.si_name, t.shelf_faults.(i))) t.shelf_slots)

let is_unshelved t name =
  let found = ref false in
  Array.iteri
    (fun i s -> if s.si_name = name && t.shelf_unshelved.(i) then found := true)
    t.shelf_slots;
  !found

let shelved_method_count t = Array.length t.shelf_slots

(* Resident code pages touched by execution. *)
let resident_code_pages t = M.touched_exec_page_count t.machine

(* Resident code at method granularity: the total size of every method,
   thunk and outlined function execution entered. At the repository's
   ~1000:1 size scale, 4-KiB pages are three orders of magnitude too
   coarse to see outlining's effect on residency, so Table 5 uses this
   scale-consistent measure instead (see DESIGN.md). *)
let resident_code_bytes t =
  let acc = ref 0 in
  Array.iteri
    (fun i touched -> if touched then acc := !acc + t.region_sizes.(i))
    t.regions_touched;
  !acc
