(* The cycle cost model, standing in for the Pixel 7's CPU cycle counters
   (paper section 4.5 measures CPU cycle counts via simpleperf).

   The model is deliberately simple but captures the two effects the paper
   discusses: extra call/return instructions from outlining cost pipeline
   cycles, and code locality matters through a cold-miss charge per
   64-byte i-cache line. Absolute numbers are meaningless; ratios between
   configurations are the measurement. *)

open Calibro_aarch64.Isa

type params = {
  base : int;            (** every instruction *)
  mem : int;             (** extra for each load/store *)
  mul : int;
  div : int;
  branch_taken : int;    (** extra for a taken branch *)
  call : int;            (** extra for bl/blr (pipeline + return-stack) *)
  indirect : int;        (** extra for br *)
  ret : int;
  icache_line : int;     (** bytes per i-cache line *)
  icache_miss : int;     (** cold-miss charge per new line *)
  runtime_call : int;    (** flat charge per runtime function invocation *)
  interp_penalty : int;
      (** extra per instruction fetched from the shelf image: shelved
          bodies run through the interpreter path, not compiled code *)
  unshelve_fault : int;
      (** one-time charge when a shelf stub first faults and the runtime
          redirects the ArtMethod entry to the parked body *)
}

let default =
  { base = 1; mem = 1; mul = 2; div = 8; branch_taken = 1; call = 1;
    indirect = 0; ret = 0; icache_line = 64; icache_miss = 8;
    runtime_call = 40; interp_penalty = 9; unshelve_fault = 400 }

type t = {
  params : params;
  mutable cycles : int;
  mutable instructions : int;
  lines : (int, unit) Hashtbl.t;  (** i-cache lines ever touched *)
  mutable per_region : int array;  (** cycles attributed per text region *)
}

let create ?(params = default) ~n_regions () =
  { params; cycles = 0; instructions = 0; lines = Hashtbl.create 1024;
    per_region = Array.make (max 1 n_regions) 0 }

let charge t ~region c =
  t.cycles <- t.cycles + c;
  if region >= 0 && region < Array.length t.per_region then
    t.per_region.(region) <- t.per_region.(region) + c

(* Cost of one executed instruction; [taken] reports whether a conditional
   branch was taken. *)
let instr_cost p instr ~taken =
  let extra =
    match instr with
    | Ldr _ | Str _ | Ldr_lit _ -> p.mem
    | Ldp _ | Stp _ -> 2 * p.mem
    | Mul _ | Msub _ -> p.mul
    | Sdiv _ -> p.div
    | B _ -> p.branch_taken
    | B_cond _ | Cbz _ | Cbnz _ | Tbz _ | Tbnz _ ->
      if taken then p.branch_taken else 0
    | Bl _ | Blr _ -> p.call
    | Br _ -> p.indirect
    | Ret -> p.ret
    | _ -> 0
  in
  p.base + extra

let on_fetch t ~region ~pc instr ~taken =
  t.instructions <- t.instructions + 1;
  let line = pc / t.params.icache_line in
  let miss = not (Hashtbl.mem t.lines line) in
  if miss then Hashtbl.replace t.lines line ();
  charge t ~region
    (instr_cost t.params instr ~taken + if miss then t.params.icache_miss else 0)

let on_runtime_call t ~region = charge t ~region t.params.runtime_call

(* Shelf-resident code models the interpreter: same semantics, every
   instruction pays [interp_penalty] on top of its compiled cost. *)
let on_shelf_fetch t ~region ~pc instr ~taken =
  on_fetch t ~region ~pc instr ~taken;
  charge t ~region t.params.interp_penalty

let on_unshelve_fault t ~region = charge t ~region t.params.unshelve_fault
