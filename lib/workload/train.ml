(* Deterministic release trains: the store-scale incremental workload.

   A release train is an app's version history — version 0 is the seed
   apk, and every later version applies a small batch of method-level
   deltas ({!Mutate}) to its predecessor, the way an app store sees
   hundreds of successive uploads of the "same" app. The whole train is a
   pure function of [(seed, deltas, ops_per_delta, apk)]: replaying it
   against a calibrod fleet twice must produce byte-identical OATs, which
   is what the [bench train] battery and the CI train-smoke job assert.

   [fold] is the primary interface: a train of hundreds of versions of a
   production-sized app would be hundreds of full IR copies if
   materialized, so consumers that only need one version at a time (the
   fleet replay) stream it instead. *)

open Calibro_dex.Dex_ir

type version = {
  v_index : int;          (* 0 is the unmutated seed apk *)
  v_apk : apk;
  v_ops : Mutate.op list; (* deltas applied to the predecessor; [] at 0 *)
}

(* Per-version mutation seed: mixes the train seed with the version index
   so each delta draws from its own stream — reordering or truncating the
   train never changes the deltas of the versions it keeps. The multiplier
   is an arbitrary large odd constant (same spirit as splitmix64's). *)
let version_seed ~seed i = (seed * 1_000_003) + i

let fold ?(ops_per_delta = 1) ~deltas ~seed (apk : apk) ~init ~f =
  if deltas < 0 then
    raise
      (Mutate.Mutate_error
         (Printf.sprintf "train of %d deltas (negative)" deltas));
  let acc = ref (f init { v_index = 0; v_apk = apk; v_ops = [] }) in
  let cur = ref apk in
  for i = 1 to deltas do
    let apk, ops =
      Mutate.mutate ~ops:ops_per_delta ~seed:(version_seed ~seed i) !cur
    in
    cur := apk;
    acc := f !acc { v_index = i; v_apk = apk; v_ops = ops }
  done;
  !acc

let generate ?ops_per_delta ~deltas ~seed apk =
  List.rev
    (fold ?ops_per_delta ~deltas ~seed apk ~init:[] ~f:(fun acc v ->
         v :: acc))

let length ~deltas = deltas + 1
