(* Deterministic app mutations: the incremental-build workload.

   A real app-store rebuild changes a handful of methods between releases;
   [mutate] models the three delta kinds an incremental pipeline must
   survive:

   - {b edit}: flip the literal of a [Const] in one method — same shape,
     different code bytes, so exactly that method's cache key changes;
   - {b add}: append a fresh class with one unreferenced method at the end
     of the last dex — earlier slots are stable, the slot table grows;
   - {b delete}: remove an unreferenced, non-entry method — later slots
     shift, which must cascade into the keys of their callers (the key
     covers callee slots).

   Everything is driven by a seeded [Random.State], so a (seed, apk) pair
   always produces the same mutant — the byte-equivalence battery relies
   on replaying the same mutation for its cold and warm builds. *)

open Calibro_dex.Dex_ir

exception Mutate_error of string
(* The typed-error convention (PR 5): reachable misuse raises this, never
   [Failure] or [Invalid_argument] — callers that drive mutation loops
   over arbitrary generated apps can catch it precisely. *)

type op =
  | Edit_const of method_ref
  | Add_method of method_ref
  | Delete_method of method_ref

let op_to_string = function
  | Edit_const r -> "edit " ^ method_ref_to_string r
  | Add_method r -> "add " ^ method_ref_to_string r
  | Delete_method r -> "delete " ^ method_ref_to_string r

let map_methods f apk =
  { apk with
    dexes =
      List.map
        (fun d ->
          { d with
            classes =
              List.map
                (fun c -> { c with cls_methods = f c.cls_methods })
                d.classes })
        apk.dexes }

(* Methods that hold at least one [Const] to flip. Native methods have no
   compiled body; leave them alone. *)
let editable apk =
  List.filter
    (fun m ->
      (not m.is_native)
      && Array.exists (function Const _ -> true | _ -> false) m.insns)
    (methods_of_apk apk)

let referenced apk =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun m ->
      Array.iter
        (function
          | Invoke (callee, _, _) -> Hashtbl.replace tbl callee ()
          | _ -> ())
        m.insns)
    (methods_of_apk apk);
  tbl

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let edit_const rng apk : apk * op =
  match editable apk with
  | [] ->
    raise (Mutate_error "no editable method (no Const anywhere in the apk)")
  | candidates ->
    let victim = (pick rng candidates).name in
    (* Flip low bits of the first Const; keep the literal small and
       non-negative so every codegen materialization path stays valid. *)
    let delta = 1 + Random.State.int rng 0xFFFF in
    let apk =
      map_methods
        (List.map (fun m ->
             if m.name <> victim then m
             else begin
               let edited = ref false in
               { m with
                 insns =
                   Array.map
                     (function
                       | Const (r, v) when not !edited ->
                         edited := true;
                         Const (r, abs (v lxor delta) land 0xFFFFF)
                       | i -> i)
                     m.insns }
             end))
        apk
    in
    (apk, Edit_const victim)

let add_method rng apk : apk * op =
  let n = Random.State.int rng 1000 in
  let name =
    { class_name = Printf.sprintf "com.mutant.C%d" n;
      method_name = Printf.sprintf "m%d" (method_count apk) }
  in
  let k = Random.State.int rng 4096 in
  let m =
    { name; num_params = 2; num_vregs = 3; is_native = false;
      is_entry = false;
      insns =
        [| Const (2, k);
           Binop (Add, 2, 2, 0);
           Binop (Mul, 2, 2, 1);
           Return (Some 2) |] }
  in
  let cls = { cls_name = name.class_name; cls_methods = [ m ] } in
  let rec add_last = function
    | [] -> [ { dex_name = "mutant.dex"; classes = [ cls ] } ]
    | [ d ] -> [ { d with classes = d.classes @ [ cls ] } ]
    | d :: rest -> d :: add_last rest
  in
  ({ apk with dexes = add_last apk.dexes }, Add_method name)

(* Only unreferenced, non-entry methods can go: deleting a callee would
   make the apk fail [Dex_check], and entry methods anchor the scripts. *)
let delete_method rng apk : (apk * op) option =
  let refs = referenced apk in
  match
    List.filter
      (fun m -> (not m.is_entry) && not (Hashtbl.mem refs m.name))
      (methods_of_apk apk)
  with
  | [] -> None
  | candidates ->
    let victim = (pick rng candidates).name in
    ( map_methods (List.filter (fun m -> m.name <> victim)) apk,
      Delete_method victim )
    |> Option.some

let apply_one rng apk =
  match Random.State.int rng 5 with
  | 0 | 1 | 2 -> edit_const rng apk
  | 3 -> add_method rng apk
  | _ -> (
    match delete_method rng apk with
    | Some r -> r
    | None -> edit_const rng apk)

let mutate ?(ops = 1) ~seed (apk : apk) : apk * op list =
  let rng = Random.State.make [| 0x6D75; seed |] in
  let rec go n apk acc =
    if n = 0 then (apk, List.rev acc)
    else
      let apk, op = apply_one rng apk in
      go (n - 1) apk (op :: acc)
  in
  go (max 1 ops) apk []

let edit_one ~seed (apk : apk) : apk * method_ref =
  let rng = Random.State.make [| 0x6D76; seed |] in
  match edit_const rng apk with
  | apk, Edit_const r -> (apk, r)
  | _ -> assert false
