(* Synthetic Android-app generator: the stand-in for the six commercial
   APKs of the paper's evaluation (section 4.1).

   Apps are generated from seeded templates whose *instantiation reuse* is
   the redundancy knob: method bodies draw from a per-app pool of
   instruction idioms, so the same machine-code sequences recur across
   methods exactly the way production framework/glue code does. Method-kind
   mixes, pool sizes and perturbation rates differ per app profile
   ({!Apps}) to reproduce the paper's relative shapes (Kuaishou biggest and
   most redundant, Taobao least reducible, etc.). *)

open Calibro_dex.Dex_ir

type profile = {
  p_name : string;
  p_seed : int;
  p_n_arith : int;          (** framework/glue-style arithmetic methods *)
  p_idiom_pool : int;       (** distinct idioms; smaller = more redundancy *)
  p_idioms_per_method : int;
  p_perturb : float;        (** chance an idiom instantiation deviates *)
  p_filler : int;           (** unique (non-repetitive) instructions woven
                                between idioms; the entropy knob that sets
                                the app's overall redundancy level *)
  p_layouts : int;          (** distinct per-method register layouts; models
                                the register allocator assigning different
                                registers in different functions, which
                                dilutes binary-level repeats *)
  p_n_field : int;          (** getter/setter-style field workers *)
  p_field_stanzas : int;
  p_n_serializer : int;     (** array-stanza serializers *)
  p_serializer_stanzas : int;
  p_n_compute : int;        (** hot loop kernels *)
  p_compute_iters : int;
  p_n_dispatcher : int;     (** switch-based dispatchers (indirect jumps) *)
  p_n_strings : int;        (** methods with embedded string data *)
  p_n_native : int;
  p_n_glue : int;           (** entry methods calling many others *)
  p_script_repeats : int;   (** interaction-script iterations *)
}

(* Deterministically jitter every generation knob of [base] from [seed]:
   the input distribution of the fuzzing harness. Each seed yields a
   distinct pool size, perturbation rate, layout diversity and method-kind
   mix (including degenerate corners: a single layout, a tiny idiom pool,
   zero dispatchers), while the population stays small enough that a full
   multi-configuration differential check runs in well under a second. *)
let perturb_profile ~seed (base : profile) : profile =
  let rng = Random.State.make [| 0x5EED; seed |] in
  let jitter lo hi = lo + Random.State.int rng (hi - lo + 1) in
  { p_name = Printf.sprintf "%s_s%d" base.p_name seed;
    p_seed = seed * 7919 + 13;
    p_n_arith = jitter 4 14;
    p_idiom_pool = jitter 2 24;
    p_idioms_per_method = jitter 1 8;
    p_perturb = float_of_int (Random.State.int rng 35) /. 100.0;
    p_filler = jitter 0 16;
    p_layouts = jitter 1 24;
    p_n_field = jitter 0 4;
    p_field_stanzas = jitter 3 14;
    p_n_serializer = jitter 0 3;
    p_serializer_stanzas = jitter 3 14;
    p_n_compute = jitter 0 2;
    p_compute_iters = jitter 4 40;
    p_n_dispatcher = jitter 0 3;
    p_n_strings = jitter 0 3;
    p_n_native = jitter 0 2;
    p_n_glue = jitter 1 4;
    p_script_repeats = jitter 1 3 }

type script_step = { sc_method : method_ref; sc_args : int list; sc_repeat : int }
type script = script_step list

type app = { app : apk; app_script : script; app_profile : profile }

(* ---- Idiom pool -------------------------------------------------------- *)

(* An idiom is a short fixed sequence of register ops; instantiations are
   bit-identical, which is what the outliner harvests. Registers are fixed
   per idiom at pool-creation time. *)
let make_idiom rng =
  let ops = [| Add; Sub; Mul; And; Or; Xor |] in
  let n = 3 + Random.State.int rng 4 in
  let operand () =
    (* operands are mostly locals (layout-mapped scratch); parameters show
       up occasionally, like real code *)
    if Random.State.int rng 100 < 15 then Random.State.int rng 2
    else 2 + Random.State.int rng 5
  in
  let steps =
    List.init n (fun _ ->
        let op = ops.(Random.State.int rng (Array.length ops)) in
        let d = 2 + Random.State.int rng 4 in
        let a = operand () in
        let b = operand () in
        (op, d, a, b))
  in
  fun (mb : Mb.t) (layout : int array) ->
    List.iter
      (fun (op, d, a, b) -> Mb.binop mb op layout.(d) layout.(a) layout.(b))
      steps

let make_pool rng n = Array.init n (fun _ -> make_idiom rng)

(* A register layout maps logical registers 0..6 to concrete vregs.
   Parameters stay at v0/v1; scratch registers 2..6 land on a shuffled
   subset of [2, layout_regs). Two methods share binary-identical idiom
   code only when they share a layout. *)
let layout_regs = 20

let make_layout rng =
  (* each layout draws its scratch registers from a window of its own size,
     so frame layouts (and thus spill-slot offsets) differ across layouts *)
  let window = 6 + Random.State.int rng (layout_regs - 8) in
  let scratch = Array.init window (fun i -> i + 2) in
  for i = Array.length scratch - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- t
  done;
  Array.append [| 0; 1 |] (Array.sub scratch 0 5)

let make_layouts rng n = Array.init n (fun _ -> make_layout rng)

(* Unique per-site noise: random constants materialize as distinct movz/movk
   words, so these instructions never repeat across sites. The results feed
   the live accumulator [acc] so no optimization pass can delete them. *)
let emit_noise rng b (layout : int array) ~acc k =
  for _ = 1 to k do
    match Random.State.int rng 3 with
    | 0 -> Mb.binop_lit b Xor acc acc (Random.State.int rng 0x3FFFFFFF + 4096)
    | 1 -> Mb.binop_lit b Add acc acc (Random.State.int rng 0xFFFFFF + 4096)
    | _ ->
      let tmp = layout.(2 + Random.State.int rng 5) in
      Mb.const b tmp (Random.State.int rng 0x3FFFFFFF);
      Mb.binop b Sub acc acc tmp
  done

(* ---- Method templates --------------------------------------------------- *)

let mref cls name = { class_name = cls; method_name = name }

(* Framework-style arithmetic method: k idioms from the pool + an accumulator.
   regs: v0 v1 params; v2..v5 idiom scratch; v6 accumulator. *)
let gen_arith rng ~pool ~layouts ~perturb ~filler ~k ~nparams name =
  let b = Mb.create () in
  let layout = layouts.(Random.State.int rng (Array.length layouts)) in
  let acc = layout.(6) in
  (* initialize the registers idioms read before they are written *)
  for r = 2 to 5 do
    Mb.const b layout.(r) (Random.State.int rng 0xffff)
  done;
  Mb.const b acc 1;
  (* fold every parameter in so none is dead *)
  for pidx = 0 to nparams - 1 do
    Mb.binop b Add acc acc pidx
  done;
  for _ = 1 to k do
    let idiom = pool.(Random.State.int rng (Array.length pool)) in
    idiom b layout;
    if Random.State.float rng 1.0 < perturb then
      (* deviation: an extra unique instruction breaks the repeat *)
      Mb.binop_lit b Add acc acc (Random.State.int rng 4096);
    emit_noise rng b layout ~acc filler;
    Mb.binop b Xor acc acc layout.(2)
  done;
  Mb.ret b (Some acc);
  Mb.finish b ~name ~num_params:nparams ~num_vregs:layout_regs ()

(* Field worker: allocate an object, write/read a fixed set of fields.
   The stanza sequence is identical across all field workers of the app. *)
let gen_field rng ~layouts ~stanzas ~filler name =
  let b = Mb.create () in
  let layout = layouts.(Random.State.int rng (Array.length layouts)) in
  let obj = layout.(2) and acc = layout.(3) and t1 = layout.(4)
  and t2 = layout.(5) in
  Mb.emit b (New_instance ("app.Box", obj));
  Mb.const b acc 0;
  for j = 0 to stanzas - 1 do
    let off = 8 * (1 + (j mod 8)) in
    Mb.binop b Add t1 0 1;
    Mb.emit b (Iput (t1, obj, off));
    Mb.emit b (Iget (t2, obj, off));
    if j mod 3 = 0 then emit_noise rng b layout ~acc filler;
    Mb.binop b Add acc acc t2
  done;
  Mb.ret b (Some acc);
  Mb.finish b ~name ~num_params:2 ~num_vregs:layout_regs ()

(* Serializer: array of [stanzas] elements written with identical stanzas
   driven by a running index. *)
let gen_serializer rng ~layouts ~stanzas ~filler name =
  let b = Mb.create () in
  let layout = layouts.(Random.State.int rng (Array.length layouts)) in
  let len = layout.(2) and arr = layout.(3) and idx = layout.(4)
  and v = layout.(5) and acc = layout.(6) in
  Mb.const b len stanzas;
  Mb.rtcall b Alloc_array [ len ] (Some arr);
  Mb.const b idx 0;
  for j = 1 to stanzas do
    Mb.binop b Mul v 0 1;
    Mb.binop b Add v v idx;
    Mb.emit b (Aput (v, arr, idx));
    if j mod 4 = 0 then emit_noise rng b layout ~acc:v filler;
    Mb.binop_lit b Add idx idx 1
  done;
  (* checksum pass *)
  Mb.const b idx 0;
  Mb.const b acc 0;
  let loop = Mb.fresh_label b in
  let done_ = Mb.fresh_label b in
  Mb.place b loop;
  Mb.emit b (If (Ge, idx, len, done_));
  Mb.emit b (Aget (v, arr, idx));
  Mb.binop b Add acc acc v;
  Mb.binop_lit b Add idx idx 1;
  Mb.emit b (Goto loop);
  Mb.place b done_;
  Mb.ret b (Some acc);
  Mb.finish b ~name ~num_params:2 ~num_vregs:layout_regs ()

(* Hot compute kernel: a bounded loop of arithmetic. Each kernel's loop
   body is generated independently, with unique literals woven between the
   operations, so no two kernels share a two-instruction run — the tight
   loops real profiles are dominated by are exactly the code outlining
   leaves alone. *)
let gen_compute rng ~iters ~index name =
  let b = Mb.create () in
  (* kernels get their own region of the frame: hot loops in real apps are
     register-allocated code whose few spills land in slots other code
     never touches, so their instruction pairs do not coincide with the
     app-wide repeats the outliner harvests. The base is distinct per
     kernel so no two kernel loop bodies can alias. *)
  let base = 8 + (4 * index) in
  let bound = base and i = base + 1 and acc = base + 2 and tmp = base + 3 in
  Mb.const b bound iters;
  Mb.const b i 0;
  Mb.const b acc 1;
  Mb.const b tmp 2;
  let loop = Mb.fresh_label b in
  let done_ = Mb.fresh_label b in
  Mb.place b loop;
  Mb.emit b (If (Ge, i, bound, done_));
  let n_ops = 3 + Random.State.int rng 4 in
  for _ = 1 to n_ops do
    (* a shared-shape op followed by a unique literal op: runs of identical
       words never reach length 2 across kernels *)
    (match Random.State.int rng 4 with
     | 0 -> Mb.binop b Add acc acc 0
     | 1 -> Mb.binop b Mul tmp acc 1
     | 2 -> Mb.binop b Xor acc acc tmp
     | _ -> Mb.binop b Sub acc acc i);
    Mb.binop_lit b Xor acc acc (Random.State.int rng 0x3FFFFFFF + 4096)
  done;
  Mb.binop_lit b And acc acc 0xffffff;
  Mb.binop_lit b Add i i 1;
  Mb.emit b (Goto loop);
  Mb.place b done_;
  Mb.ret b (Some acc);
  Mb.finish b ~name ~num_params:2 ~num_vregs:(base + 4) ()

(* Dispatcher: switch over the selector; excluded from outlining because of
   its indirect jump (paper 3.3.1). *)
let gen_dispatcher rng ~pool ~layouts ~callees name =
  let b = Mb.create () in
  let layout = layouts.(Random.State.int rng (Array.length layouts)) in
  (* pre-dispatch work drawn from the same idiom pool: this code repeats
     like everything else, but the method's indirect jump bars LTBO from it
     (section 3.3.1) — a real source of the estimate-vs-realized gap *)
  for r = 2 to 6 do
    Mb.const b layout.(r) (Random.State.int rng 0xffff)
  done;
  for _ = 1 to 2 + Random.State.int rng 3 do
    let idiom = pool.(Random.State.int rng (Array.length pool)) in
    idiom b layout
  done;
  let n = max 2 (List.length callees) in
  Mb.binop_lit b Rem 2 0 n;
  let labels = List.init n (fun _ -> Mb.fresh_label b) in
  let done_ = Mb.fresh_label b in
  Mb.emit b (Switch (2, labels));
  Mb.const b 3 (-1);
  Mb.emit b (Goto done_);
  List.iteri
    (fun i l ->
      Mb.place b l;
      (match List.nth_opt callees i with
       | Some (callee, arity) ->
         Mb.invoke b callee (List.init arity (fun k -> k mod 2)) (Some 3)
       | None -> Mb.const b 3 i);
      Mb.emit b (Goto done_))
    labels;
  Mb.place b done_;
  Mb.ret b (Some 3);
  Mb.finish b ~name ~num_params:2 ~num_vregs:layout_regs ()

(* String former: loads embedded string data (the disassembly hazard). *)
let gen_strings rng ~n name =
  let b = Mb.create () in
  let pool =
    [| "content://app/feed"; "application/json"; "user_profile_cache";
       "video_prefetch"; "analytics_event"; "share_channel" |]
  in
  Mb.const b 2 0;
  for _ = 1 to n do
    let s = pool.(Random.State.int rng (Array.length pool)) in
    Mb.emit b (Const_string (3, s));
    Mb.rtcall b Resolve_string [ 3 ] (Some 3);
    Mb.binop b Add 2 2 3
  done;
  Mb.binop b Sub 2 2 2;
  Mb.binop b Add 2 2 0;
  Mb.binop b Add 2 2 1;
  Mb.ret b (Some 2);
  Mb.finish b ~name ~num_params:2 ~num_vregs:4 ()

(* Glue: an entry method calling a batch of other methods. Accumulation
   style and argument order vary per method, like hand-written UI glue. *)
let gen_glue rng ~layouts ~filler ~callees name =
  let b = Mb.create () in
  let layout = layouts.(Random.State.int rng (Array.length layouts)) in
  let acc = layout.(2) and res = layout.(3) in
  let op =
    match Random.State.int rng 3 with 0 -> Add | 1 -> Xor | _ -> Sub
  in
  Mb.const b acc 0;
  List.iteri
    (fun i (callee, arity) ->
      let args =
        List.init arity (fun k ->
            if Random.State.bool rng then k mod 2 else (k + 1) mod 2)
      in
      Mb.invoke b callee args (Some res);
      if i mod 4 = 3 then emit_noise rng b layout ~acc filler;
      Mb.binop b op acc acc res)
    callees;
  Mb.ret b (Some acc);
  Mb.finish b ~name ~num_params:2 ~num_vregs:layout_regs ~is_entry:true ()

let gen_native name =
  { name; num_params = 2; num_vregs = 2; is_native = true; is_entry = false;
    insns = [||] }

(* ---- Whole-app generation ----------------------------------------------- *)

let generate (p : profile) : app =
  let rng = Random.State.make [| p.p_seed |] in
  let cls kind i = Printf.sprintf "com.%s.%s%d" p.p_name kind (i / 20) in
  let pool = make_pool rng p.p_idiom_pool in
  let layouts = make_layouts rng (max 1 p.p_layouts) in
  (* Cold arith methods carry the app's boilerplate redundancy; a smaller
     warm population (the code interaction scripts actually execute) is
     generated with much higher entropy — in real apps the hot paths are
     the hand-optimized, diverse ones, which is why the paper's runtime
     overhead is small even without hot-function filtering. *)
  let arith =
    List.init p.p_n_arith (fun i ->
        let k =
          max 1 (p.p_idioms_per_method + Random.State.int rng 3 - 1)
        in
        let nparams = 1 + Random.State.int rng 3 in
        gen_arith rng ~pool ~layouts ~perturb:p.p_perturb ~filler:p.p_filler
          ~k ~nparams
          (mref (cls "Util" i) (Printf.sprintf "op%d" i)))
  in
  let warm =
    List.init (max 8 (p.p_n_arith / 6)) (fun i ->
        let k =
          max 1 (p.p_idioms_per_method + Random.State.int rng 3 - 1)
        in
        let nparams = 1 + Random.State.int rng 3 in
        gen_arith rng ~pool ~layouts
          ~perturb:0.45
          ~filler:(p.p_filler * 2) ~k ~nparams
          (mref (cls "Feature" i) (Printf.sprintf "step%d" i)))
  in
  let field =
    List.init p.p_n_field (fun i ->
        gen_field rng ~layouts
          ~stanzas:(max 3 (p.p_field_stanzas - 3 + Random.State.int rng 7))
          ~filler:p.p_filler
          (mref (cls "Model" i) (Printf.sprintf "bind%d" i)))
  in
  let serial =
    List.init p.p_n_serializer (fun i ->
        gen_serializer rng ~layouts
          ~stanzas:(max 3 (p.p_serializer_stanzas - 3 + Random.State.int rng 7))
          ~filler:p.p_filler
          (mref (cls "Codec" i) (Printf.sprintf "encode%d" i)))
  in
  let compute =
    List.init p.p_n_compute (fun i ->
        gen_compute rng
          ~iters:(p.p_compute_iters * (1 + (i mod 5)))
          ~index:i
          (mref (cls "Engine" i) (Printf.sprintf "kernel%d" i)))
  in
  let strings =
    List.init p.p_n_strings (fun i ->
        gen_strings rng ~n:(2 + Random.State.int rng 4)
          (mref (cls "Res" i) (Printf.sprintf "uri%d" i)))
  in
  let natives =
    List.init p.p_n_native (fun i ->
        gen_native (mref (cls "Jni" i) (Printf.sprintf "nat%d" i)))
  in
  let named ms = List.map (fun (m : meth) -> (m.name, m.num_params)) ms in
  let basic_pool =
    Array.of_list (named arith @ named field @ named serial @ named strings)
  in
  let warm_pool = Array.of_list (named warm) in
  (* Callees come from a contiguous window of the pool: features touch
     related code, which is what gives partial page residency (Table 5). *)
  let pick_from pool n =
    let pool_n = Array.length pool in
    let window = max 1 (pool_n / 12) in
    let start = Random.State.int rng (max 1 (pool_n - window)) in
    List.init n (fun _ -> pool.(start + Random.State.int rng window))
  in
  let pick_callees n = pick_from basic_pool n in
  let pick_warm_callees n = pick_from warm_pool n in
  let dispatchers =
    List.init p.p_n_dispatcher (fun i ->
        gen_dispatcher rng ~pool ~layouts
          ~callees:(pick_callees (3 + Random.State.int rng 3))
          (mref (cls "Router" i) (Printf.sprintf "route%d" i)))
  in
  let glue =
    List.init p.p_n_glue (fun i ->
        let callees =
          (* mostly warm, diverse code plus a couple of cold methods *)
          pick_warm_callees (5 + Random.State.int rng 5)
          @ pick_callees 2
          @ (if compute <> [] then
               [ ((List.nth compute (i mod List.length compute)).name, 2) ]
             else [])
          @
          if dispatchers <> [] then
            [ ((List.nth dispatchers (i mod List.length dispatchers)).name, 2) ]
          else []
        in
        gen_glue rng ~layouts ~filler:p.p_filler ~callees
          (mref (cls "Ui" i) (Printf.sprintf "onEvent%d" i)))
  in
  let compute =
    (* kernels are also entry points so scripts can drive them directly *)
    List.map (fun (m : meth) -> { m with is_entry = true }) compute
  in
  let all_methods =
    arith @ warm @ field @ serial @ strings @ natives @ dispatchers @ compute
    @ glue
  in
  (* Partition methods into classes, classes into dex files. *)
  let classes =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (m : meth) ->
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt tbl m.name.class_name)
        in
        Hashtbl.replace tbl m.name.class_name (m :: cur))
      all_methods;
    Hashtbl.fold
      (fun cls_name ms acc -> { cls_name; cls_methods = List.rev ms } :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.cls_name b.cls_name)
  in
  let n_dex = max 1 (List.length classes / 40) in
  let dexes =
    List.init n_dex (fun d ->
        { dex_name = Printf.sprintf "classes%02d" (d + 1);
          classes =
            List.filteri (fun i _ -> i mod n_dex = d) classes })
  in
  let apk = { apk_name = p.p_name; dexes } in
  (* Interaction script: drive the kernels and a third of the glue
     entries, like the uiautomator scripts of sections 4.3/4.5 — a real
     session exercises only part of the app, which is what makes resident
     memory (Table 5) smaller than the text segment. *)
  let entries = List.filter (fun (m : meth) -> m.is_entry) all_methods in
  let script =
    List.filteri (fun i _ -> i mod 3 = 0) entries
    |> List.map (fun (m : meth) ->
           { sc_method = m.name;
             sc_args =
               [ 7 + Random.State.int rng 50; 3 + Random.State.int rng 9 ];
             sc_repeat = p.p_script_repeats })
  in
  { app = apk; app_script = script; app_profile = p }
