(** Deterministic app mutations — the incremental-build workload: the
    method-level deltas (edit/add/delete) an app-store rebuild applies
    between releases. A (seed, apk) pair always produces the same mutant,
    so cold and warm builds of "the next release" can be compared
    byte-for-byte. *)

open Calibro_dex.Dex_ir

exception Mutate_error of string
(** Typed misuse error (the PR 5 convention): raised instead of [Failure]
    or [Invalid_argument] everywhere a caller-supplied apk can be
    unusable, so mutation loops over generated apps can catch precisely. *)

type op =
  | Edit_const of method_ref
      (** one [Const] literal flipped in this method *)
  | Add_method of method_ref
      (** fresh unreferenced method appended in a new class at the end of
          the last dex (earlier slots stay stable) *)
  | Delete_method of method_ref
      (** an unreferenced, non-entry method removed (later slots shift) *)

val op_to_string : op -> string

val mutate : ?ops:int -> seed:int -> apk -> apk * op list
(** Apply [ops] (default 1) random deltas — edits weighted over
    adds/deletes, mirroring release churn. The mutant passes [Dex_check]
    by construction.
    @raise Mutate_error if the apk has no method with a [Const]. *)

val edit_one : seed:int -> apk -> apk * method_ref
(** Exactly one [Edit_const]; returns the edited method. The
    [bench incr] workload: the smallest possible release delta.
    @raise Mutate_error if the apk has no method with a [Const]. *)
