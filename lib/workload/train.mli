(** Deterministic release trains: an app's simulated version history.
    Version 0 is the seed apk; each later version applies a batch of
    {!Mutate} deltas to its predecessor. The whole train is a pure
    function of [(seed, deltas, ops_per_delta, apk)], so a fleet replay
    can be repeated byte-for-byte. *)

open Calibro_dex.Dex_ir

type version = {
  v_index : int;           (** 0 is the unmutated seed apk *)
  v_apk : apk;
  v_ops : Mutate.op list;  (** deltas applied to the predecessor; [] at 0 *)
}

val fold :
  ?ops_per_delta:int ->
  deltas:int ->
  seed:int ->
  apk ->
  init:'a ->
  f:('a -> version -> 'a) ->
  'a
(** Stream the train — [deltas + 1] versions, seed apk first — without
    materializing it (a long train of production-sized apps is hundreds
    of full IR copies). [ops_per_delta] defaults to 1.
    @raise Mutate_error on a negative [deltas] or an unmutatable apk. *)

val generate :
  ?ops_per_delta:int -> deltas:int -> seed:int -> apk -> version list
(** [fold] materialized, for tests and short trains. *)

val length : deltas:int -> int
(** Versions in a train of [deltas] deltas, seed included. *)
