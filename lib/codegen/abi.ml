(* The simulated ART ABI: register conventions, memory map, ArtMethod
   layout and runtime-table layout shared between the code generator, the
   linker and the execution simulator.

   Mirrors the contracts the paper relies on:
   - Figure 4a: an ArtMethod pointer arrives in x0 and the callee entry
     address lives at a fixed offset inside the ArtMethod;
   - Figure 4b: x19 holds the thread-local runtime segment address and each
     native runtime function sits at a fixed offset;
   - Figure 4c: the stack overflow check probes sp - 0x2000. *)

open Calibro_dex.Dex_ir

(* ---- Registers -------------------------------------------------------- *)

let thread_reg = Calibro_aarch64.Isa.x19   (* runtime function table base *)
let method_table_reg = Calibro_aarch64.Isa.x20 (* ArtMethod array base *)

(* Java calls: x0 = ArtMethod*, arguments in x1..x7, result in x0.
   Runtime calls: arguments in x0..x6, result in x0. *)
let max_java_args = 7

(* ---- Memory map (the simulator adopts these) -------------------------- *)

let text_base = 0x100000          (* OAT text segment load address *)
let dict_base = 0x4000000
(* Load address of the store-wide shared outline dictionary (prelink-style:
   every app maps the same image at the same address, so dictionary-bound
   [bl] sites relocate to a fixed absolute target). dict_base - text_base
   = 0x3F00000 bytes, well inside the ±128MB reach of a [bl] imm26, so an
   app's text can always call into the dictionary directly. *)
let shelf_base = 0x6000000
(* Load address of the shelf image: the original bodies of *shelved*
   (profile-cold) methods, parked outside the text segment. The text keeps
   only a fixed-size stub per shelved method; the first call faults in the
   simulator, which redirects the ArtMethod entry here ("unshelving").
   shelf_base - text_base = 0x5F00000 bytes, inside the ±128MB reach of a
   [bl] imm26, so shelf-resident bodies still call CTO thunks in the text
   directly. *)

let shelf_stub_magic = 0x5e1f
(* The [brk] immediate of a shelf stub ([movz x17, #index; brk #magic]).
   Lives here — not in lib/shelve — because both the stub emitter and the
   simulator's fault handler need it, and the VM must not depend on the
   shelving library. *)

let method_table_base = 0x8000000 (* ArtMethod structs, 32 bytes each *)
let runtime_table_base = 0x9000000
let native_entry_base = 0xA000000 (* fake entry points of native methods *)
let heap_base = 0x10000000
let heap_limit = 0x40000000
let stack_top = 0x7F000000        (* initial sp, grows down *)
let stack_limit = stack_top - 0x100000

let page_size = 4096

(* ---- ArtMethod layout -------------------------------------------------- *)

let art_method_size = 32
let entry_point_offset = 16
(** Offset of the compiled-code entry pointer inside an ArtMethod. The
    paper's hottest instance uses offset 20; we use 16 to keep the slot
    8-byte aligned, which changes nothing structurally. *)

let art_method_addr ~slot = method_table_base + (slot * art_method_size)

(* ---- Runtime function table ------------------------------------------- *)

let runtime_fn_index fn =
  let rec find i = function
    | [] -> invalid_arg "runtime_fn_index"
    | f :: _ when f = fn -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 all_runtime_fns

let runtime_fn_offset fn = 8 * runtime_fn_index fn
let runtime_fn_addr fn = runtime_table_base + runtime_fn_offset fn

(* ---- Stack frames ------------------------------------------------------ *)

let stack_probe_distance = 0x2000 (* Figure 4c: sub x16, sp, #0x2000 *)

(* Frame: [sp+0]=saved x29, [sp+8]=saved x30, vreg i at [sp+16+8i]. *)
let vreg_slot v = 16 + (8 * v)

let frame_size ~num_vregs =
  let raw = 16 + (8 * num_vregs) in
  (raw + 15) / 16 * 16

(* ---- Symbols ------------------------------------------------------------ *)

(* Call targets in unlinked code ([Bl { target = Sym s }]): method slots
   occupy [0, thunk_sym_base); CTO thunks live above. *)
let thunk_sym_base = 0x400000

type thunk =
  | T_java_invoke          (** [ldr x16, [x0, #entry]; br x16] *)
  | T_rt of runtime_fn     (** [ldr x16, [x19, #off]; br x16] *)
  | T_stack_check          (** Figure 4c body followed by [br x30] *)

let thunk_sym = function
  | T_java_invoke -> thunk_sym_base
  | T_stack_check -> thunk_sym_base + 1
  | T_rt fn -> thunk_sym_base + 2 + runtime_fn_index fn

let thunk_of_sym s =
  if s = thunk_sym_base then Some T_java_invoke
  else if s = thunk_sym_base + 1 then Some T_stack_check
  else if s >= thunk_sym_base + 2
          && s < thunk_sym_base + 2 + List.length all_runtime_fns
  then Some (T_rt (List.nth all_runtime_fns (s - thunk_sym_base - 2)))
  else None

let all_thunks =
  T_java_invoke :: T_stack_check :: List.map (fun f -> T_rt f) all_runtime_fns

let thunk_name = function
  | T_java_invoke -> "__cto_java_invoke"
  | T_stack_check -> "__cto_stack_check"
  | T_rt fn -> "__cto_rt_" ^ runtime_fn_name fn

(* Thunk bodies (see DESIGN.md section 4.1 for why the call thunks use a
   tail branch through x16 while the stack-check thunk returns via x30). *)
let thunk_body t =
  let open Calibro_aarch64.Isa in
  match t with
  | T_java_invoke ->
    [ Ldr { size = X; rt = x16; rn = x0; imm = entry_point_offset };
      Br x16 ]
  | T_rt fn ->
    [ Ldr { size = X; rt = x16; rn = thread_reg; imm = runtime_fn_offset fn };
      Br x16 ]
  | T_stack_check -> stack_check_pattern @ [ Br lr ]
