(* Machine state for the execution simulator: registers, flags, and a
   4-KiB-paged sparse memory. Page granularity is load-bearing: the set of
   touched pages is exactly the resident-memory measurement Table 5 needs.

   Values are native OCaml ints — the simulator models a 63-bit machine
   (DESIGN.md section 4.3); the compiler's constant folder uses the same
   arithmetic, so compile-time and run-time evaluation agree exactly. *)

let page_size = Calibro_codegen.Abi.page_size
let page_bits = 12

type t = {
  regs : int array;          (** x0..x30 *)
  mutable sp : int;
  mutable pc : int;
  mutable flag_n : bool;
  mutable flag_z : bool;
  mutable flag_c : bool;
  mutable flag_v : bool;
  pages : (int, Bytes.t) Hashtbl.t;
  mutable touched_exec_pages : (int, unit) Hashtbl.t;
      (** pages touched by instruction fetch (code residency) *)
  mutable heap_next : int;   (** bump allocator cursor *)
  mutable log : int list;    (** output of pLogValue, reversed *)
}

let create () =
  { regs = Array.make 31 0;
    sp = Calibro_codegen.Abi.stack_top;
    pc = 0;
    flag_n = false; flag_z = false; flag_c = false; flag_v = false;
    pages = Hashtbl.create 64;
    touched_exec_pages = Hashtbl.create 64;
    heap_next = Calibro_codegen.Abi.heap_base;
    log = [] }

(* x31 reads as 0 (zr) except through sp accessors. *)
let get_reg m r = if r = 31 then 0 else m.regs.(r)
let set_reg m r v = if r <> 31 then m.regs.(r) <- v

let get_reg_sp m r = if r = 31 then m.sp else m.regs.(r)
let set_reg_sp m r v = if r = 31 then m.sp <- v else m.regs.(r) <- v

(* ---- Memory ------------------------------------------------------------ *)

let page m addr =
  let idx = addr lsr page_bits in
  match Hashtbl.find_opt m.pages idx with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.replace m.pages idx p;
    p

let read_u8 m addr = Bytes.get_uint8 (page m addr) (addr land (page_size - 1))

let write_u8 m addr v =
  Bytes.set_uint8 (page m addr) (addr land (page_size - 1)) v

let read64 m addr =
  let off = addr land (page_size - 1) in
  if off <= page_size - 8 then
    Int64.to_int (Bytes.get_int64_le (page m addr) off)
  else begin
    let v = ref 0 in
    for b = 7 downto 0 do
      v := (!v lsl 8) lor read_u8 m (addr + b)
    done;
    !v
  end

let write64 m addr v =
  let off = addr land (page_size - 1) in
  if off <= page_size - 8 then
    Bytes.set_int64_le (page m addr) off (Int64.of_int v)
  else
    for b = 0 to 7 do
      write_u8 m (addr + b) ((v lsr (8 * b)) land 0xff)
    done

let read32 m addr =
  let off = addr land (page_size - 1) in
  if off <= page_size - 4 then
    Int32.to_int (Bytes.get_int32_le (page m addr) off) land 0xFFFFFFFF
  else begin
    let v = ref 0 in
    for b = 3 downto 0 do
      v := (!v lsl 8) lor read_u8 m (addr + b)
    done;
    !v
  end

let write_bytes m addr buf =
  Bytes.iteri (fun i c -> write_u8 m (addr + i) (Char.code c)) buf

let read_string m addr =
  (* string pool layout: [u32 length][bytes] *)
  let len = read32 m addr in
  String.init len (fun i -> Char.chr (read_u8 m (addr + 4 + i)))

let touch_exec m addr =
  Hashtbl.replace m.touched_exec_pages (addr lsr page_bits) ()

let touched_exec_page_count m = Hashtbl.length m.touched_exec_pages

(* Pages touched by data access inside [lo, hi). *)
let touched_data_pages_in m ~lo ~hi =
  Hashtbl.fold
    (fun idx _ acc ->
      let addr = idx lsl page_bits in
      if addr >= lo && addr < hi then acc + 1 else acc)
    m.pages 0

(* ---- Flags (cmp = subs) ------------------------------------------------ *)

(* Unsigned comparison on the simulated machine: negative values sit above
   all non-negative ones. *)
let unsigned_ge a b =
  if a >= 0 && b >= 0 then a >= b
  else if a < 0 && b < 0 then a >= b
  else a < 0

let set_flags_sub m a b =
  let r = a - b in
  m.flag_n <- r < 0;
  m.flag_z <- r = 0;
  m.flag_c <- unsigned_ge a b;
  m.flag_v <- false (* native ints do not overflow in the modeled range *)

let set_flags_logic m r =
  m.flag_n <- r < 0;
  m.flag_z <- r = 0;
  m.flag_c <- false;
  m.flag_v <- false

let cond_holds m (c : Calibro_aarch64.Isa.cond) =
  let open Calibro_aarch64.Isa in
  match c with
  | EQ -> m.flag_z
  | NE -> not m.flag_z
  | HS -> m.flag_c
  | LO -> not m.flag_c
  | MI -> m.flag_n
  | PL -> not m.flag_n
  | VS -> m.flag_v
  | VC -> not m.flag_v
  | HI -> m.flag_c && not m.flag_z
  | LS -> not (m.flag_c && not m.flag_z)
  | GE -> m.flag_n = m.flag_v
  | LT -> m.flag_n <> m.flag_v
  | GT -> (not m.flag_z) && m.flag_n = m.flag_v
  | LE -> m.flag_z || m.flag_n <> m.flag_v
  | AL -> true
