lib/vm/cost.ml: Array Calibro_aarch64 Hashtbl
