lib/vm/machine.ml: Array Bytes Calibro_aarch64 Calibro_codegen Char Hashtbl Int32 Int64 String
