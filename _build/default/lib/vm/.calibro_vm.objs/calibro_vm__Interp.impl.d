lib/vm/interp.ml: Abi Array Calibro_aarch64 Calibro_codegen Calibro_dex Calibro_oat Cost Decode Encode Hashtbl Isa List Machine Meta Printf
