(** LTBO.1 — per-method metadata collected at compilation time (paper
    section 3.2). All offsets are bytes relative to the method's first
    instruction. The linking-time outliner consumes this instead of
    attempting thorough disassembly and binary analysis. *)

type range = { r_start : int; r_len : int }

val in_range : range -> int -> bool

type t = {
  embedded : range list;
      (** Embedded data (string pools, jump tables): never disassembled,
          never outlined. *)
  pc_rel : (int * int) list;
      (** PC-relative instructions: (instruction offset, target offset);
          patched after outlining (section 3.3.4). *)
  terminators : int list;
      (** Offsets of basic-block-terminating instructions. *)
  calls : int list;
      (** Offsets of call instructions: safepoints, and sequence separators
          (they touch the link register). *)
  slowpaths : range list;
      (** Cold exception paths at the method tail; outlinable even in hot
          methods (section 3.4.2). *)
  has_indirect_jump : bool;
      (** [br] through a computed register: the method is excluded from
          outlining (section 3.3.1). *)
  is_native : bool;
      (** Java native method: excluded from outlining (section 3.2). *)
}

val empty : t

val is_embedded : t -> int -> bool
val in_slowpath : t -> int -> bool

val outlinable : t -> bool
(** Candidate-method criterion of section 3.3.1. *)

val remap_offsets : t -> remap:(int -> int) -> remap_target:(int -> int) -> t
(** Rebuild all offsets through a relocation map after outlining moved
    code. *)
