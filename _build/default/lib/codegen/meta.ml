(* LTBO.1: per-method metadata collected during compilation (paper section
   3.2). All offsets are byte offsets relative to the method's first
   instruction. *)

type range = { r_start : int; r_len : int }

let in_range r off = off >= r.r_start && off < r.r_start + r.r_len

type t = {
  embedded : range list;
      (** Embedded data (string pool entries, switch tables): never
          disassembled, never outlined. *)
  pc_rel : (int * int) list;
      (** PC-relative addressing instructions: (instruction offset, target
          offset). Patched after outlining (section 3.3.4). *)
  terminators : int list;
      (** Offsets of basic-block-terminating instructions. *)
  calls : int list;
      (** Offsets of call instructions (bl/blr): safepoints; also sequence
          separators because they read or write the link register. *)
  slowpaths : range list;
      (** Cold exception-path code at the method tail; outlinable even in
          hot methods (section 3.4.2). *)
  has_indirect_jump : bool;
      (** Method contains br through a computed register: excluded from
          outlining (section 3.3.1). *)
  is_native : bool;
      (** Java native method: excluded from outlining (section 3.2). *)
}

let empty =
  { embedded = []; pc_rel = []; terminators = []; calls = []; slowpaths = [];
    has_indirect_jump = false; is_native = false }

let is_embedded t off = List.exists (fun r -> in_range r off) t.embedded
let in_slowpath t off = List.exists (fun r -> in_range r off) t.slowpaths

(* Methods eligible for link-time outlining (section 3.3.1). *)
let outlinable t = not (t.has_indirect_jump || t.is_native)

(* Shift every offset in the metadata through [remap : int -> int], used
   after outlining moves code around. [remap] receives an old offset and
   returns the new one. Ranges are remapped by their start; their length is
   preserved (outlining never rewrites inside an embedded/slowpath range of
   a method it modifies — slowpath ranges may shrink only via whole-range
   preservation of relative layout). *)
let remap_offsets t ~remap ~remap_target =
  { t with
    embedded = List.map (fun r -> { r with r_start = remap r.r_start }) t.embedded;
    pc_rel =
      List.map (fun (off, tgt) -> (remap off, remap_target tgt)) t.pc_rel;
    terminators = List.map remap t.terminators;
    calls = List.map remap t.calls;
    slowpaths = List.map (fun r -> { r with r_start = remap r.r_start }) t.slowpaths }
