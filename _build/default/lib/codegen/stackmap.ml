(* StackMaps (paper section 3.5): the mapping between native code positions
   and the abstract DEX machine state that ART needs for stack walking,
   GC and exception delivery. Any binary-level rewrite must keep them
   consistent with the code; the outliner repositions native PCs through
   its offset map and the checker below is run afterwards. *)

type entry = {
  native_pc : int;
      (** Byte offset (method-relative) of the instruction *after* the
          call, i.e. the return address the runtime observes on the stack. *)
  dex_pc : int;  (** Index of the originating HGraph instruction. *)
  live_vregs : int;  (** Bitmask of virtual registers live at the point. *)
}

type t = entry list

let empty : t = []

let remap (t : t) ~remap_pc =
  List.map (fun e -> { e with native_pc = remap_pc e.native_pc }) t

(* Consistency: native PCs must be word-aligned, strictly inside the
   method, and in increasing order. *)
let validate (t : t) ~code_size =
  let rec go last = function
    | [] -> Ok ()
    | e :: rest ->
      if e.native_pc mod 4 <> 0 then
        Error (Printf.sprintf "stackmap pc %d not word aligned" e.native_pc)
      else if e.native_pc <= 0 || e.native_pc > code_size then
        Error
          (Printf.sprintf "stackmap pc %d outside method of %d bytes"
             e.native_pc code_size)
      else if e.native_pc < last then
        Error (Printf.sprintf "stackmap pcs not ordered at %d" e.native_pc)
      else go e.native_pc rest
  in
  go 0 t
