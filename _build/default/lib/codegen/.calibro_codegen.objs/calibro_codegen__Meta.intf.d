lib/codegen/meta.mli:
