lib/codegen/abi.ml: Calibro_aarch64 Calibro_dex List
