lib/codegen/meta.ml: List
