lib/codegen/codegen.ml: Abi Array Bytes Calibro_aarch64 Calibro_dex Calibro_hgraph Char Compiled_method Encode Hashtbl Int32 Isa List Meta Option Printf Stackmap String
