lib/codegen/compiled_method.ml: Bytes Calibro_dex Meta Stackmap
