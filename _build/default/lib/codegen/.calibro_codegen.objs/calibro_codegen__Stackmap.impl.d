lib/codegen/stackmap.ml: List Printf
