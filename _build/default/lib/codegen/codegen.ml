(* Template-driven code generation: HGraph -> AArch64 binary, the moral
   equivalent of DEX2OAT's backend (paper section 3.1: "the code generation
   work traverses each IR instruction and generates corresponding binary
   code based on instruction templates").

   Two Calibro hooks live here:
   - CTO (section 3.1): when [config.cto] is set, the three ART-specific
     repetitive patterns are emitted as one [bl <thunk>] instead of their
     multi-instruction template;
   - LTBO.1 (section 3.2): metadata about embedded data, PC-relative
     instructions, terminators, calls, indirect jumps, native methods and
     slowpaths is collected as code is emitted.

   Virtual registers live in stack slots, but a block-local write-through
   register cache keeps recently used values in rotating scratch registers
   x0..x7 — the baseline's "all available code size optimization enabled"
   at the codegen level, and the reason the same IR idiom does not encode
   identically at every site (register assignment depends on context, as
   with ART's linear scan). *)

open Calibro_aarch64
open Calibro_dex.Dex_ir
open Calibro_hgraph.Hgraph
module I = Isa

type config = { cto : bool }

let default_config = { cto = false }

(* ---- Emission buffer -------------------------------------------------- *)

type entry =
  | E_instr of I.t
  | E_branch of (int -> I.t) * int  (** constructor given byte disp, label *)
  | E_label of int
  | E_data of int32
  | E_data_label of int  (** a data word holding a label's method offset *)
  | E_call of int        (** bl with a relocation to a symbol *)

(* Block-local scratch-register cache (write-through). *)
type rcache = {
  mutable assoc : (int * I.reg) list;  (** vreg -> scratch register *)
  mutable rot : int;                   (** rotation cursor *)
}

type emitter = {
  mutable entries : entry list;  (* reversed *)
  mutable next_label : int;
  mutable dex_pc : int;
  mutable n_calls_seen : int;
  cache : rcache;
  config : config;
  slot_of_method : method_ref -> int;
  cto_hits : (string, int) Hashtbl.t;
  strings : (string, int) Hashtbl.t;  (* interned string -> pool label *)
  mutable slowpath_labels : (runtime_fn * int) list;
  mutable safepoints : (int * int) list;  (* reversed (label, dex_pc) pairs *)
  mutable slowpath_regions : (int * int) list;  (* (start label, end label) *)
  mutable embedded_regions : (int * int) list;
}

let fresh_label e =
  let l = e.next_label in
  e.next_label <- l + 1;
  l

let emit e i = e.entries <- E_instr i :: e.entries
let emit_branch e mk label = e.entries <- E_branch (mk, label) :: e.entries
let emit_label e l = e.entries <- E_label l :: e.entries
let emit_call e sym = e.entries <- E_call sym :: e.entries

let hit e pattern =
  Hashtbl.replace e.cto_hits pattern
    (1 + Option.value ~default:0 (Hashtbl.find_opt e.cto_hits pattern))

(* ---- Constant materialization ----------------------------------------- *)

(* Build an arbitrary integer into [rd] using movz/movn + movk, matching
   what the simulated machine computes (native OCaml int semantics). *)
let emit_mov_const e rd v =
  let chunk k = (v lsr (16 * k)) land 0xffff in
  if v >= 0 then begin
    emit e (I.Mov_wide { kind = I.MOVZ; size = I.X; rd; imm16 = chunk 0; hw = 0 });
    for k = 1 to 3 do
      if chunk k <> 0 then
        emit e (I.Mov_wide { kind = I.MOVK; size = I.X; rd; imm16 = chunk k; hw = k })
    done
  end
  else begin
    (* movn rd, #i sets rd = lnot i: start from the low 16 bits, then
       overwrite any chunk that is not all-ones. *)
    emit e
      (I.Mov_wide
         { kind = I.MOVN; size = I.X; rd; imm16 = lnot v land 0xffff; hw = 0 });
    for k = 1 to 3 do
      if chunk k <> 0xffff then
        emit e (I.Mov_wide { kind = I.MOVK; size = I.X; rd; imm16 = chunk k; hw = k })
    done
  end

(* ---- Frame access and the register cache ------------------------------ *)

let load_vreg e rt v =
  emit e (I.Ldr { size = I.X; rt; rn = I.sp; imm = Abi.vreg_slot v })

let store_vreg e rt v =
  emit e (I.Str { size = I.X; rt; rn = I.sp; imm = Abi.vreg_slot v })

let n_scratch = 8

let rc_flush e = e.cache.assoc <- []

let rc_forget_reg e r =
  e.cache.assoc <- List.filter (fun (_, r') -> r' <> r) e.cache.assoc

let rc_forget_vreg e v =
  e.cache.assoc <- List.filter (fun (v', _) -> v' <> v) e.cache.assoc

(* Next rotating scratch register not in [avoid]; forgets whatever value it
   held. *)
let rc_alloc ?(avoid = []) e =
  let c = e.cache in
  let rec go tries =
    if tries > n_scratch then invalid_arg "rc_alloc: no scratch register"
    else begin
      let r = c.rot mod n_scratch in
      c.rot <- c.rot + 1;
      if List.mem r avoid then go (tries + 1) else r
    end
  in
  let r = go 0 in
  rc_forget_reg e r;
  r

(* Register currently holding vreg [v], loading it if needed. *)
let rc_read ?(avoid = []) e v =
  match List.assoc_opt v e.cache.assoc with
  | Some r when not (List.mem r avoid) -> r
  | _ ->
    let r = rc_alloc ~avoid e in
    load_vreg e r v;
    e.cache.assoc <- (v, r) :: e.cache.assoc;
    r

(* [r] now holds vreg [v]: write through to the slot and remember. *)
let rc_write e v ~from:r =
  store_vreg e r v;
  rc_forget_vreg e v;
  e.cache.assoc <- (v, r) :: e.cache.assoc

(* ---- The three ART patterns (Figure 4) -------------------------------- *)

(* Figure 4a tail: entry load + indirect call, or a CTO thunk call. *)
let emit_java_invoke_pattern e =
  if e.config.cto then begin
    hit e "java_call";
    emit_call e (Abi.thunk_sym Abi.T_java_invoke)
  end
  else
    List.iter (emit e) (I.java_call_pattern ~entry_offset:Abi.entry_point_offset)

(* Figure 4b: runtime function call, or a CTO thunk call. *)
let emit_runtime_call_pattern e fn =
  if e.config.cto then begin
    hit e "runtime_call";
    emit_call e (Abi.thunk_sym (Abi.T_rt fn))
  end
  else
    List.iter (emit e) (I.runtime_call_pattern ~fn_offset:(Abi.runtime_fn_offset fn))

(* Figure 4c: the stack overflow check, or a CTO thunk call. Runs after the
   prologue has saved x29/x30, so clobbering the link register is fine. *)
let emit_stack_check_pattern e =
  if e.config.cto then begin
    hit e "stack_check";
    emit_call e (Abi.thunk_sym Abi.T_stack_check)
  end
  else List.iter (emit e) I.stack_check_pattern

(* Mark the return address of the call just emitted with a fresh label;
   the stackmap entry's native pc is resolved from it after layout. *)
let note_safepoint e =
  e.n_calls_seen <- e.n_calls_seen + 1;
  let l = fresh_label e in
  emit_label e l;
  e.safepoints <- (l, e.dex_pc) :: e.safepoints

(* ---- Slowpaths --------------------------------------------------------- *)

let slowpath_label e fn =
  match List.assoc_opt fn e.slowpath_labels with
  | Some l -> l
  | None ->
    let l = fresh_label e in
    e.slowpath_labels <- (fn, l) :: e.slowpath_labels;
    l

(* ---- Instruction templates -------------------------------------------- *)

let emit_binop_rr e op ~rd ~rn ~rm =
  match op with
  | Add ->
    emit e (I.Add_sub_reg { op = I.ADD; size = I.X; set_flags = false; rd; rn; rm })
  | Sub ->
    emit e (I.Add_sub_reg { op = I.SUB; size = I.X; set_flags = false; rd; rn; rm })
  | Mul -> emit e (I.Mul { size = I.X; rd; rn; rm })
  | Div -> emit e (I.Sdiv { size = I.X; rd; rn; rm })
  | Rem ->
    emit e (I.Sdiv { size = I.X; rd; rn; rm });
    emit e (I.Msub { size = I.X; rd; rn = rd; rm; ra = rn })
  | And -> emit e (I.Logic_reg { op = I.AND; size = I.X; rd; rn; rm })
  | Or -> emit e (I.Logic_reg { op = I.ORR; size = I.X; rd; rn; rm })
  | Xor -> emit e (I.Logic_reg { op = I.EOR; size = I.X; rd; rn; rm })

let cond_of_cmp = function
  | Eq -> I.EQ | Ne -> I.NE | Lt -> I.LT | Le -> I.LE | Gt -> I.GT | Ge -> I.GE

(* Index scaled by 8 into [dst] (element size); [dst] must differ from
   [idx]. *)
let scale8_index e ~dst ~idx =
  emit e (I.mov_imm ~size:I.X dst 8);
  emit e (I.Mul { size = I.X; rd = dst; rn = idx; rm = dst })

let emit_insn e insn =
  (match insn with
   | HConst (d, v) ->
     let r = rc_alloc e in
     emit_mov_const e r v;
     rc_write e d ~from:r
   | HMove (d, a) ->
     let r = rc_read e a in
     rc_write e d ~from:r
   | HBinop (op, d, a, b) ->
     let ra = rc_read e a in
     let rb = rc_read ~avoid:[ ra ] e b in
     let rd = rc_alloc ~avoid:[ ra; rb ] e in
     emit_binop_rr e op ~rd ~rn:ra ~rm:rb;
     rc_write e d ~from:rd
   | HBinop_lit (op, d, a, v) -> (
     let ra = rc_read e a in
     match op with
     | (Add | Sub) when v >= 0 && v < 4096 ->
       let rd = rc_alloc ~avoid:[ ra ] e in
       let op = match op with Add -> I.ADD | _ -> I.SUB in
       emit e
         (I.Add_sub_imm { op; size = I.X; set_flags = false; rd; rn = ra;
                          imm12 = v; shift12 = false });
       rc_write e d ~from:rd
     | _ ->
       let rl = rc_alloc ~avoid:[ ra ] e in
       emit_mov_const e rl v;
       let rd = rc_alloc ~avoid:[ ra; rl ] e in
       emit_binop_rr e op ~rd ~rn:ra ~rm:rl;
       rc_write e d ~from:rd)
   | HInvoke (callee, args, res) ->
     (* Arguments in x1..x7; x0 = ArtMethod*. Slots are current (the cache
        writes through), so load directly. *)
     rc_flush e;
     List.iteri (fun k arg -> load_vreg e (k + 1) arg) args;
     let slot = e.slot_of_method callee in
     let off = slot * Abi.art_method_size in
     if off < 4096 then
       emit e (I.add ~size:I.X I.x0 Abi.method_table_reg off)
     else begin
       (* add x0, x20, #hi lsl 12 ; add x0, x0, #lo *)
       let hi = off lsr 12 and lo = off land 0xfff in
       emit e
         (I.Add_sub_imm { op = I.ADD; size = I.X; set_flags = false;
                          rd = I.x0; rn = Abi.method_table_reg;
                          imm12 = hi; shift12 = true });
       if lo <> 0 then emit e (I.add ~size:I.X I.x0 I.x0 lo)
     end;
     emit_java_invoke_pattern e;
     note_safepoint e;
     (match res with
      | Some r -> rc_write e r ~from:I.x0
      | None -> ())
   | HInvoke_runtime (fn, args, res) ->
     rc_flush e;
     List.iteri (fun k arg -> load_vreg e k arg) args;
     emit_runtime_call_pattern e fn;
     note_safepoint e;
     (match res with
      | Some r -> rc_write e r ~from:I.x0
      | None -> ())
   | HNew_instance (_, d) ->
     rc_flush e;
     (* class id in x0; a real implementation resolves the class, we only
        need an allocation of a fixed-size object *)
     emit e (I.mov_imm ~size:I.X I.x0 0);
     emit_runtime_call_pattern e Alloc_object;
     note_safepoint e;
     rc_write e d ~from:I.x0
   | HNull_check v ->
     let r = rc_read e v in
     emit_branch e
       (fun disp -> I.Cbz { size = I.X; rt = r; disp })
       (slowpath_label e Throw_null_pointer)
   | HBounds_check (i, a) ->
     let ri = rc_read e i in
     let ra = rc_read ~avoid:[ ri ] e a in
     let rl = rc_alloc ~avoid:[ ri; ra ] e in
     emit e (I.Ldr { size = I.X; rt = rl; rn = ra; imm = 0 });
     emit e (I.cmp_reg ~size:I.X ri rl);
     emit_branch e
       (fun disp -> I.B_cond { cond = I.HS; disp })
       (slowpath_label e Throw_array_bounds)
   | HDiv_zero_check v ->
     let r = rc_read e v in
     emit_branch e
       (fun disp -> I.Cbz { size = I.X; rt = r; disp })
       (slowpath_label e Throw_div_zero)
   | HIget (d, o, off) ->
     let ro = rc_read e o in
     let rd = rc_alloc ~avoid:[ ro ] e in
     emit e (I.Ldr { size = I.X; rt = rd; rn = ro; imm = off });
     rc_write e d ~from:rd
   | HIput (v, o, off) ->
     let rv = rc_read e v in
     let ro = rc_read ~avoid:[ rv ] e o in
     emit e (I.Str { size = I.X; rt = rv; rn = ro; imm = off })
   | HAget (d, a, i) ->
     let ri = rc_read e i in
     let ra = rc_read ~avoid:[ ri ] e a in
     let rt = rc_alloc ~avoid:[ ri; ra ] e in
     scale8_index e ~dst:rt ~idx:ri;
     emit e (I.Add_sub_reg { op = I.ADD; size = I.X; set_flags = false;
                             rd = rt; rn = ra; rm = rt });
     let rd = rc_alloc ~avoid:[ rt ] e in
     emit e (I.Ldr { size = I.X; rt = rd; rn = rt; imm = 8 });
     rc_write e d ~from:rd
   | HAput (v, a, i) ->
     let ri = rc_read e i in
     let ra = rc_read ~avoid:[ ri ] e a in
     let rt = rc_alloc ~avoid:[ ri; ra ] e in
     scale8_index e ~dst:rt ~idx:ri;
     emit e (I.Add_sub_reg { op = I.ADD; size = I.X; set_flags = false;
                             rd = rt; rn = ra; rm = rt });
     let rv = rc_read ~avoid:[ rt ] e v in
     emit e (I.Str { size = I.X; rt = rv; rn = rt; imm = 8 })
   | HArray_len (d, a) ->
     let ra = rc_read e a in
     let rd = rc_alloc ~avoid:[ ra ] e in
     emit e (I.Ldr { size = I.X; rt = rd; rn = ra; imm = 0 });
     rc_write e d ~from:rd
   | HConst_string (d, s) ->
     let label =
       match Hashtbl.find_opt e.strings s with
       | Some l -> l
       | None ->
         let l = fresh_label e in
         Hashtbl.replace e.strings s l;
         l
     in
     let rd = rc_alloc e in
     emit_branch e (fun disp -> I.Adr { rd; disp }) label;
     rc_write e d ~from:rd);
  e.dex_pc <- e.dex_pc + 1

(* Frames up to 504 bytes fit stp/ldp pre/post-index immediates; larger
   frames use a separate sp adjustment, as real AArch64 compilers do. *)
let max_paired_frame = 504

let emit_prologue e frame =
  if frame <= max_paired_frame then
    emit e (I.Stp { size = I.X; rt = I.x29; rt2 = I.lr; rn = I.sp;
                    imm = -frame; mode = I.Pre })
  else begin
    emit e (I.sub ~size:I.X I.sp I.sp frame);
    emit e (I.Stp { size = I.X; rt = I.x29; rt2 = I.lr; rn = I.sp;
                    imm = 0; mode = I.Offset })
  end

let emit_epilogue e frame ~result =
  (match result with
   | Some r ->
     let rr = rc_read e r in
     if rr <> I.x0 then emit e (I.mov_reg ~size:I.X I.x0 rr)
   | None -> ());
  if frame <= max_paired_frame then
    emit e (I.Ldp { size = I.X; rt = I.x29; rt2 = I.lr; rn = I.sp;
                    imm = frame; mode = I.Post })
  else begin
    emit e (I.Ldp { size = I.X; rt = I.x29; rt2 = I.lr; rn = I.sp;
                    imm = 0; mode = I.Offset });
    emit e (I.add ~size:I.X I.sp I.sp frame)
  end;
  emit e I.Ret

let emit_terminator e ~frame ~block_label ~next_block term =
  match term with
  | TGoto t ->
    if Some t <> next_block then
      emit_branch e (fun disp -> I.B { disp }) (block_label t)
  | TIf (c, a, b, taken, fall) ->
    let ra = rc_read e a in
    let rb = rc_read ~avoid:[ ra ] e b in
    emit e (I.cmp_reg ~size:I.X ra rb);
    emit_branch e
      (fun disp -> I.B_cond { cond = cond_of_cmp c; disp })
      (block_label taken);
    if Some fall <> next_block then
      emit_branch e (fun disp -> I.B { disp }) (block_label fall)
  | TIfz (c, a, taken, fall) ->
    let ra = rc_read e a in
    (match c with
     | Eq ->
       emit_branch e
         (fun disp -> I.Cbz { size = I.X; rt = ra; disp })
         (block_label taken)
     | Ne ->
       emit_branch e
         (fun disp -> I.Cbnz { size = I.X; rt = ra; disp })
         (block_label taken)
     | c ->
       emit e (I.cmp_imm ~size:I.X ra 0);
       emit_branch e
         (fun disp -> I.B_cond { cond = cond_of_cmp c; disp })
         (block_label taken));
    if Some fall <> next_block then
      emit_branch e (fun disp -> I.B { disp }) (block_label fall)
  | TSwitch (v, cases, default) ->
    let ncases = List.length cases in
    let table = fresh_label e in
    let method_start = 0 (* label 0 is always the method start *) in
    let rv = rc_read e v in
    if ncases < 4096 then emit e (I.cmp_imm ~size:I.X rv ncases)
    else begin
      let rl = rc_alloc ~avoid:[ rv ] e in
      emit_mov_const e rl ncases;
      emit e (I.cmp_reg ~size:I.X rv rl)
    end;
    emit_branch e
      (fun disp -> I.B_cond { cond = I.HS; disp })
      (block_label default);
    let rt = rc_alloc ~avoid:[ rv ] e in
    let rs = rc_alloc ~avoid:[ rv; rt ] e in
    emit_branch e (fun disp -> I.Adr { rd = rt; disp }) table;
    scale8_index e ~dst:rs ~idx:rv;
    emit e (I.Add_sub_reg { op = I.ADD; size = I.X; set_flags = false;
                            rd = rt; rn = rt; rm = rs });
    emit e (I.Ldr { size = I.X; rt; rn = rt; imm = 0 });
    emit_branch e (fun disp -> I.Adr { rd = rs; disp }) method_start;
    emit e (I.Add_sub_reg { op = I.ADD; size = I.X; set_flags = false;
                            rd = rt; rn = rs; rm = rt });
    emit e (I.Br rt);
    (* Jump table: method-relative offsets, one 4-byte word padded to 8
       bytes per entry, emitted inline right after the br. *)
    let data_start = fresh_label e in
    emit_label e data_start;
    emit_label e table;
    List.iter
      (fun case ->
        e.entries <- E_data_label (block_label case) :: e.entries;
        e.entries <- E_data 0l :: e.entries)
      cases;
    let data_end = fresh_label e in
    emit_label e data_end;
    e.embedded_regions <- (data_start, data_end) :: e.embedded_regions
  | TReturn r -> emit_epilogue e frame ~result:r

(* ---- Layout and metadata extraction ------------------------------------ *)

let layout e =
  let entries = List.rev e.entries in
  (* Pass 1: label offsets. *)
  let label_off = Hashtbl.create 32 in
  let off = ref 0 in
  List.iter
    (fun entry ->
      match entry with
      | E_label l -> Hashtbl.replace label_off l !off
      | E_instr _ | E_branch _ | E_data _ | E_data_label _ | E_call _ ->
        off := !off + 4)
    entries;
  let code_size = !off in
  let off_of_label l =
    match Hashtbl.find_opt label_off l with
    | Some o -> o
    | None -> invalid_arg (Printf.sprintf "Codegen.layout: undefined label %d" l)
  in
  (* Pass 2: materialize words, collect metadata. *)
  let buf = Bytes.create code_size in
  let pc_rel = ref [] and terminators = ref [] and calls = ref [] in
  let relocs = ref [] in
  let pos = ref 0 in
  List.iter
    (fun entry ->
      let here = !pos in
      match entry with
      | E_label _ -> ()
      | E_data w ->
        Encode.word_to_bytes buf here (Int32.to_int w land 0xFFFFFFFF);
        pos := here + 4
      | E_data_label l ->
        Encode.word_to_bytes buf here (off_of_label l land 0xFFFFFFFF);
        pos := here + 4
      | E_call sym ->
        Encode.word_to_bytes buf here (Encode.encode (I.Bl { target = I.Sym sym }));
        relocs := (here, sym) :: !relocs;
        calls := here :: !calls;
        pos := here + 4
      | E_instr i ->
        Encode.word_to_bytes buf here (Encode.encode i);
        if I.is_terminator i then terminators := here :: !terminators;
        if I.is_call i then calls := here :: !calls;
        pos := here + 4
      | E_branch (mk, label) ->
        let disp = off_of_label label - here in
        let i = mk disp in
        Encode.word_to_bytes buf here (Encode.encode i);
        pc_rel := (here, off_of_label label) :: !pc_rel;
        if I.is_terminator i then terminators := here :: !terminators;
        pos := here + 4)
    entries;
  (buf, off_of_label, List.rev !pc_rel, List.rev !terminators,
   List.rev !calls, List.rev !relocs)

(* ---- Main entry --------------------------------------------------------- *)

let compile ?(config = default_config) ~slot_of_method (g : t) :
    Compiled_method.t =
  let slot = slot_of_method g.g_name in
  if g.g_is_native then
    { Compiled_method.name = g.g_name; slot; code = Bytes.create 0;
      relocs = []; meta = { Meta.empty with Meta.is_native = true };
      stackmap = []; num_params = g.g_num_params; is_entry = g.g_is_entry;
      cto_hits = [] }
  else begin
    let e =
      { entries = []; next_label = 0; dex_pc = 0; n_calls_seen = 0;
        cache = { assoc = []; rot = 0 };
        config; slot_of_method; cto_hits = Hashtbl.create 4;
        strings = Hashtbl.create 4; slowpath_labels = []; safepoints = [];
        slowpath_regions = []; embedded_regions = [] }
    in
    let method_start = fresh_label e in
    assert (method_start = 0);
    emit_label e method_start;
    let frame = Abi.frame_size ~num_vregs:g.g_num_vregs in
    (* Prologue: save x29/x30 first (so CTO's stack-check thunk may clobber
       the link register), then the Figure 4c stack probe, then spill
       incoming arguments to their vreg slots. *)
    emit_prologue e frame;
    emit_stack_check_pattern e;
    for p = 0 to g.g_num_params - 1 do
      store_vreg e (p + 1) p
    done;
    (* Blocks in layout order; the register cache is block-local. *)
    let nb = Array.length g.blocks in
    let block_labels = Array.init nb (fun _ -> fresh_label e) in
    let block_label b = block_labels.(b) in
    let has_indirect = ref false in
    Array.iteri
      (fun bi blk ->
        rc_flush e;
        emit_label e (block_label bi);
        List.iter (emit_insn e) blk.insns;
        (match blk.term with TSwitch _ -> has_indirect := true | _ -> ());
        emit_terminator e ~frame ~block_label
          ~next_block:(if bi + 1 < nb then Some (bi + 1) else None)
          blk.term)
      g.blocks;
    (* Slowpaths (cold; section 3.4.2), then string pool (embedded data). *)
    List.iter
      (fun (fn, label) ->
        let sp_start = fresh_label e in
        emit_label e sp_start;
        emit_label e label;
        rc_flush e;
        emit_runtime_call_pattern e fn;
        note_safepoint e;
        emit e (I.Brk 0xdead);
        let sp_end = fresh_label e in
        emit_label e sp_end;
        e.slowpath_regions <- (sp_start, sp_end) :: e.slowpath_regions)
      e.slowpath_labels;
    Hashtbl.iter
      (fun s label ->
        let d_start = fresh_label e in
        emit_label e d_start;
        emit_label e label;
        let len = String.length s in
        e.entries <- E_data (Int32.of_int len) :: e.entries;
        let words = (len + 3) / 4 in
        for w = 0 to words - 1 do
          let word = ref 0 in
          for b = 0 to 3 do
            let idx = (w * 4) + b in
            if idx < len then word := !word lor (Char.code s.[idx] lsl (8 * b))
          done;
          e.entries <- E_data (Int32.of_int !word) :: e.entries
        done;
        let d_end = fresh_label e in
        emit_label e d_end;
        e.embedded_regions <- (d_start, d_end) :: e.embedded_regions)
      e.strings;
    let code, off_of_label, pc_rel, terminators, calls, relocs = layout e in
    let ranges_of label_pairs =
      List.filter_map
        (fun (ls, le) ->
          let s = off_of_label ls and e_ = off_of_label le in
          if e_ > s then Some { Meta.r_start = s; r_len = e_ - s } else None)
        label_pairs
    in
    let live_mask =
      if g.g_num_vregs >= 62 then -1 else (1 lsl g.g_num_vregs) - 1
    in
    let stackmap =
      List.rev_map
        (fun (label, dex_pc) ->
          { Stackmap.native_pc = off_of_label label; dex_pc;
            live_vregs = live_mask })
        e.safepoints
    in
    let meta =
      { Meta.embedded = ranges_of e.embedded_regions;
        pc_rel;
        terminators;
        calls;
        slowpaths = ranges_of e.slowpath_regions;
        has_indirect_jump = !has_indirect;
        is_native = false }
    in
    { Compiled_method.name = g.g_name; slot; code; relocs; meta; stackmap;
      num_params = g.g_num_params; is_entry = g.g_is_entry;
      cto_hits =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.cto_hits []
        |> List.sort compare }
  end
