(* The output of compiling one method: encoded binary code plus everything
   the linker and the link-time outliner need (paper Figure 5: "binary
   code" boxes flowing into LTBO.2 and linking). *)

open Calibro_dex.Dex_ir

type t = {
  name : method_ref;
  slot : int;           (** ArtMethod slot; also the method's symbol id. *)
  code : bytes;
      (** Encoded instructions; unresolved [bl] sites carry imm26 = 0 and a
          relocation entry. *)
  relocs : (int * int) list;
      (** (byte offset of a bl, target symbol id). *)
  meta : Meta.t;        (** LTBO.1 compilation-time metadata. *)
  stackmap : Stackmap.t;
  num_params : int;
  is_entry : bool;
  cto_hits : (string * int) list;
      (** How many times each CTO pattern fired (census for Figure 4). *)
}

let code_size t = Bytes.length t.code
let is_native t = t.meta.Meta.is_native
