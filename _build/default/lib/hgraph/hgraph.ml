(* The HGraph-style IR: the per-method CFG DEX2OAT optimizes before code
   generation (paper Figure 5: method -> HGraph -> opt passes -> binary).

   Unlike the flat DEX bytecode, HGraph makes runtime checks explicit
   (null/bounds/div-zero), which is what lets the code generator emit them
   as slowpath calls at the end of the method — the "slowpath" code the
   paper marks as always outlinable (section 3.2). *)

open Calibro_dex.Dex_ir

type block_id = int

type hinsn =
  | HConst of vreg * int
  | HMove of vreg * vreg
  | HBinop of binop * vreg * vreg * vreg
  | HBinop_lit of binop * vreg * vreg * int
  | HInvoke of method_ref * vreg list * vreg option
  | HInvoke_runtime of runtime_fn * vreg list * vreg option
  | HNew_instance of string * vreg
  | HNull_check of vreg
  | HBounds_check of vreg * vreg  (** index, array *)
  | HDiv_zero_check of vreg
  | HIget of vreg * vreg * int
  | HIput of vreg * vreg * int
  | HAget of vreg * vreg * vreg
  | HAput of vreg * vreg * vreg
  | HArray_len of vreg * vreg
  | HConst_string of vreg * string

type terminator =
  | TIf of cmp * vreg * vreg * block_id * block_id  (** taken, fallthrough *)
  | TIfz of cmp * vreg * block_id * block_id
  | TGoto of block_id
  | TSwitch of vreg * block_id list * block_id  (** cases, default *)
  | TReturn of vreg option

type block = {
  bid : block_id;
  mutable insns : hinsn list;
  mutable term : terminator;
}

type t = {
  g_name : method_ref;
  g_num_params : int;
  g_num_vregs : int;
  g_is_native : bool;
  g_is_entry : bool;
  mutable blocks : block array;  (** blocks.(0) is the entry *)
}

let successors = function
  | TIf (_, _, _, a, b) | TIfz (_, _, a, b) -> [ a; b ]
  | TGoto a -> [ a ]
  | TSwitch (_, cases, default) -> cases @ [ default ]
  | TReturn _ -> []

let map_successors f = function
  | TIf (c, a, b, t1, t2) -> TIf (c, a, b, f t1, f t2)
  | TIfz (c, a, t1, t2) -> TIfz (c, a, f t1, f t2)
  | TGoto t -> TGoto (f t)
  | TSwitch (v, cases, d) -> TSwitch (v, List.map f cases, f d)
  | TReturn r -> TReturn r

(* Registers read by an instruction. *)
let insn_uses = function
  | HConst _ | HConst_string _ | HNew_instance _ -> []
  | HMove (_, a) -> [ a ]
  | HBinop (_, _, a, b) -> [ a; b ]
  | HBinop_lit (_, _, a, _) -> [ a ]
  | HInvoke (_, args, _) | HInvoke_runtime (_, args, _) -> args
  | HNull_check a | HDiv_zero_check a -> [ a ]
  | HBounds_check (i, a) -> [ i; a ]
  | HIget (_, o, _) -> [ o ]
  | HIput (v, o, _) -> [ v; o ]
  | HAget (_, a, i) -> [ a; i ]
  | HAput (v, a, i) -> [ v; a; i ]
  | HArray_len (_, a) -> [ a ]

(* Register written by an instruction, if any. *)
let insn_def = function
  | HConst (d, _) | HMove (d, _) | HBinop (_, d, _, _)
  | HBinop_lit (_, d, _, _) | HNew_instance (_, d) | HIget (d, _, _)
  | HAget (d, _, _) | HArray_len (d, _) | HConst_string (d, _) -> Some d
  | HInvoke (_, _, res) | HInvoke_runtime (_, _, res) -> res
  | HNull_check _ | HBounds_check _ | HDiv_zero_check _ | HIput _ | HAput _ ->
    None

(* Can the instruction be removed if its result is unused? *)
let insn_is_pure = function
  | HConst _ | HMove _ | HBinop ((Add | Sub | Mul | And | Or | Xor), _, _, _)
  | HBinop_lit ((Add | Sub | Mul | And | Or | Xor), _, _, _)
  | HArray_len _ | HConst_string _ -> true
  | HBinop ((Div | Rem), _, _, _) | HBinop_lit ((Div | Rem), _, _, _) ->
    false (* may trap; a DivZeroCheck precedes but keep conservative *)
  | HInvoke _ | HInvoke_runtime _ | HNew_instance _ | HNull_check _
  | HBounds_check _ | HDiv_zero_check _ | HIget _ | HIput _ | HAget _
  | HAput _ -> false

let term_uses = function
  | TIf (_, a, b, _, _) -> [ a; b ]
  | TIfz (_, a, _, _) -> [ a ]
  | TSwitch (v, _, _) -> [ v ]
  | TReturn (Some r) -> [ r ]
  | TGoto _ | TReturn None -> []

(* ---- Builder: DEX bytecode -> HGraph --------------------------------- *)

(* Instruction indices that start a basic block. *)
let leaders (insns : insn array) =
  let n = Array.length insns in
  let set = Hashtbl.create 16 in
  Hashtbl.replace set 0 ();
  Array.iteri
    (fun i insn ->
      List.iter (fun t -> Hashtbl.replace set t ()) (targets insn);
      if is_block_end insn && i + 1 < n then Hashtbl.replace set (i + 1) ())
    insns;
  Hashtbl.fold (fun k () acc -> k :: acc) set []
  |> List.filter (fun k -> k < n)
  |> List.sort compare

let of_method (m : meth) : t =
  let n = Array.length m.insns in
  let g =
    { g_name = m.name; g_num_params = m.num_params; g_num_vregs = m.num_vregs;
      g_is_native = m.is_native; g_is_entry = m.is_entry; blocks = [||] }
  in
  if m.is_native || n = 0 then g
  else begin
    let ls = leaders m.insns in
    let block_of_index = Hashtbl.create 16 in
    List.iteri (fun bi leader -> Hashtbl.replace block_of_index leader bi) ls;
    let block_id_of_index idx =
      match Hashtbl.find_opt block_of_index idx with
      | Some b -> b
      | None -> invalid_arg "Hgraph.of_method: branch into block middle"
    in
    let bounds =
      (* (start, end exclusive) of each block *)
      let rec go = function
        | [] -> []
        | [ l ] -> [ (l, n) ]
        | l :: (l' :: _ as rest) -> (l, l') :: go rest
      in
      go ls
    in
    let blocks =
      List.mapi
        (fun bi (start, stop) ->
          let insns = ref [] in
          let term = ref None in
          for i = start to stop - 1 do
            let emit hi = insns := hi :: !insns in
            match m.insns.(i) with
            | Const (d, v) -> emit (HConst (d, v))
            | Move (d, a) -> emit (HMove (d, a))
            | Binop (op, d, a, b) ->
              if op = Div || op = Rem then emit (HDiv_zero_check b);
              emit (HBinop (op, d, a, b))
            | Binop_lit (op, d, a, v) ->
              (* literal divisor of zero is a checker-level degenerate; emit
                 the check only for the register form *)
              emit (HBinop_lit (op, d, a, v))
            | Invoke (callee, args, res) ->
              (* Calls are static-style: arguments are plain values, so no
                 receiver null check (field/array accesses get theirs). *)
              emit (HInvoke (callee, args, res))
            | Invoke_runtime (fn, args, res) ->
              emit (HInvoke_runtime (fn, args, res))
            | New_instance (cls, d) -> emit (HNew_instance (cls, d))
            | Iget (d, o, off) ->
              emit (HNull_check o);
              emit (HIget (d, o, off))
            | Iput (v, o, off) ->
              emit (HNull_check o);
              emit (HIput (v, o, off))
            | Aget (d, a, ix) ->
              emit (HNull_check a);
              emit (HBounds_check (ix, a));
              emit (HAget (d, a, ix))
            | Aput (v, a, ix) ->
              emit (HNull_check a);
              emit (HBounds_check (ix, a));
              emit (HAput (v, a, ix))
            | Array_len (d, a) ->
              emit (HNull_check a);
              emit (HArray_len (d, a))
            | Const_string (d, s) -> emit (HConst_string (d, s))
            | If (c, a, b, l) ->
              term := Some (TIf (c, a, b, block_id_of_index l,
                                 block_id_of_index (i + 1)))
            | Ifz (c, a, l) ->
              term := Some (TIfz (c, a, block_id_of_index l,
                                  block_id_of_index (i + 1)))
            | Goto l -> term := Some (TGoto (block_id_of_index l))
            | Switch (v, ls) ->
              term :=
                Some
                  (TSwitch (v, List.map block_id_of_index ls,
                            block_id_of_index (i + 1)))
            | Return r -> term := Some (TReturn r)
          done;
          let term =
            match !term with
            | Some t -> t
            | None -> TGoto (block_id_of_index stop) (* fallthrough *)
          in
          { bid = bi; insns = List.rev !insns; term })
        bounds
    in
    g.blocks <- Array.of_list blocks;
    g
  end

(* ---- Verification ----------------------------------------------------- *)

exception Invalid of string

let verify (g : t) =
  let nb = Array.length g.blocks in
  Array.iteri
    (fun i b ->
      if b.bid <> i then
        raise (Invalid (Printf.sprintf "block %d has bid %d" i b.bid));
      List.iter
        (fun s ->
          if s < 0 || s >= nb then
            raise
              (Invalid
                 (Printf.sprintf "block %d: successor %d out of range" i s)))
        (successors b.term);
      let check_reg r =
        if r < 0 || r >= g.g_num_vregs then
          raise (Invalid (Printf.sprintf "block %d: vreg v%d out of range" i r))
      in
      List.iter
        (fun insn ->
          List.iter check_reg (insn_uses insn);
          Option.iter check_reg (insn_def insn))
        b.insns;
      List.iter check_reg (term_uses b.term))
    g.blocks

(* Blocks reachable from the entry. *)
let reachable (g : t) =
  let nb = Array.length g.blocks in
  let seen = Array.make nb false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter go (successors g.blocks.(b).term)
    end
  in
  if nb > 0 then go 0;
  seen

(* Total instruction count (excluding terminators). *)
let size (g : t) =
  Array.fold_left (fun acc b -> acc + List.length b.insns) 0 g.blocks

(* Predecessor lists. *)
let predecessors (g : t) =
  let nb = Array.length g.blocks in
  let preds = Array.make nb [] in
  Array.iter
    (fun b ->
      List.iter (fun s -> preds.(s) <- b.bid :: preds.(s)) (successors b.term))
    g.blocks;
  preds

(* ---- Pretty printing (debugging aid) ---------------------------------- *)

let insn_to_string insn =
  let reg r = Printf.sprintf "v%d" r in
  let regs rs = String.concat ", " (List.map reg rs) in
  match insn with
  | HConst (d, v) -> Printf.sprintf "%s <- const %d" (reg d) v
  | HMove (d, a) -> Printf.sprintf "%s <- %s" (reg d) (reg a)
  | HBinop (op, d, a, b) ->
    Printf.sprintf "%s <- %s %s, %s" (reg d) (binop_name op) (reg a) (reg b)
  | HBinop_lit (op, d, a, v) ->
    Printf.sprintf "%s <- %s %s, #%d" (reg d) (binop_name op) (reg a) v
  | HInvoke (m, args, res) ->
    Printf.sprintf "%sinvoke %s(%s)"
      (match res with Some r -> reg r ^ " <- " | None -> "")
      (method_ref_to_string m) (regs args)
  | HInvoke_runtime (f, args, res) ->
    Printf.sprintf "%srtcall %s(%s)"
      (match res with Some r -> reg r ^ " <- " | None -> "")
      (runtime_fn_name f) (regs args)
  | HNew_instance (cls, d) -> Printf.sprintf "%s <- new %s" (reg d) cls
  | HNull_check a -> Printf.sprintf "null_check %s" (reg a)
  | HBounds_check (i, a) -> Printf.sprintf "bounds_check %s, %s" (reg i) (reg a)
  | HDiv_zero_check a -> Printf.sprintf "div_zero_check %s" (reg a)
  | HIget (d, o, off) -> Printf.sprintf "%s <- iget %s[%d]" (reg d) (reg o) off
  | HIput (v, o, off) -> Printf.sprintf "iput %s[%d] <- %s" (reg o) off (reg v)
  | HAget (d, a, i) -> Printf.sprintf "%s <- aget %s[%s]" (reg d) (reg a) (reg i)
  | HAput (v, a, i) -> Printf.sprintf "aput %s[%s] <- %s" (reg a) (reg i) (reg v)
  | HArray_len (d, a) -> Printf.sprintf "%s <- len %s" (reg d) (reg a)
  | HConst_string (d, s) -> Printf.sprintf "%s <- string %S" (reg d) s

let term_to_string term =
  let reg r = Printf.sprintf "v%d" r in
  match term with
  | TIf (c, a, b, t, f) ->
    Printf.sprintf "if %s %s, %s -> B%d else B%d" (cmp_name c) (reg a) (reg b) t f
  | TIfz (c, a, t, f) ->
    Printf.sprintf "ifz %s %s -> B%d else B%d" (cmp_name c) (reg a) t f
  | TGoto t -> Printf.sprintf "goto B%d" t
  | TSwitch (v, cases, d) ->
    Printf.sprintf "switch %s [%s] default B%d" (reg v)
      (String.concat "; " (List.map (Printf.sprintf "B%d") cases)) d
  | TReturn None -> "return"
  | TReturn (Some r) -> Printf.sprintf "return %s" (reg r)

let to_string (g : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "graph %s (params %d, regs %d)\n"
       (method_ref_to_string g.g_name) g.g_num_params g.g_num_vregs);
  Array.iter
    (fun blk ->
      Buffer.add_string b (Printf.sprintf "B%d:\n" blk.bid);
      List.iter
        (fun i -> Buffer.add_string b ("  " ^ insn_to_string i ^ "\n"))
        blk.insns;
      Buffer.add_string b ("  " ^ term_to_string blk.term ^ "\n"))
    g.blocks;
  Buffer.contents b
