lib/hgraph/hgraph.ml: Array Buffer Calibro_dex Hashtbl List Option Printf String
