lib/hgraph/passes.ml: Array Calibro_dex Hashtbl Hgraph Int List Option Printf Set
