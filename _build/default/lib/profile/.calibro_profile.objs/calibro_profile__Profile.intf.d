lib/profile/profile.mli: Calibro_dex Calibro_vm
