lib/profile/profile.ml: Calibro_dex Calibro_vm Fun Hashtbl List Option Printf String
