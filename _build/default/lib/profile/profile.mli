(** The simpleperf substitute (paper section 3.4.2, Figure 6):
    per-function execution-time profiles and hot-set selection. *)

open Calibro_dex.Dex_ir

type sample = { s_method : method_ref; s_cycles : int }

type t = sample list

val total : t -> int
(** Sum of all samples' cycles. *)

val of_interp : Calibro_vm.Interp.t -> t
(** Collect the per-method cycle attribution of a finished simulator run. *)

val merge : t -> t -> t
(** Pointwise sum, sorted hottest-first. *)

val hot_set : ?coverage:float -> t -> method_ref list
(** The top functions accounting for [coverage] (default 0.8) of total
    execution time — the paper's hot-function set. Zero-cycle methods are
    never hot. *)

val to_string : t -> string
(** One "class method cycles" line per sample (Figure 6's profiling data
    file). *)

val of_string : string -> (t, string) result

val save : t -> string -> unit

val load : string -> (t, string) result
