lib/oat/oat_file.ml: Abi Buffer Bytes Calibro_codegen Calibro_dex Fun Int32 List Marshal Meta Printexc Printf Stackmap String
