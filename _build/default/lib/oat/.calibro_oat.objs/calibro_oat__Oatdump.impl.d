lib/oat/oatdump.ml: Abi Buffer Bytes Calibro_aarch64 Calibro_codegen Calibro_dex Decode Disasm Encode List Meta Oat_file Printf
