lib/oat/linker.ml: Abi Bytes Calibro_aarch64 Calibro_codegen Compiled_method Encode Hashtbl List Oat_file Patch Printf
