(* The DEX-like input bytecode.

   A register-based bytecode in the spirit of dalvik: each method owns
   [num_vregs] virtual registers v0..v(n-1); parameters arrive in
   v0..v(num_params-1). Branch targets are instruction indices. An
   application package ("apk") holds multiple dex files, each with classes
   holding methods — mirroring Figure 5's input shape. *)

type vreg = int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
  | Rem -> "rem" | And -> "and" | Or -> "or" | Xor -> "xor"

type cmp = Eq | Ne | Lt | Le | Gt | Ge

let cmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

(* ART-provided native runtime entry points (paper Figure 4b: "native
   functions are preloaded into a memory segment ... addressed by this
   segment address plus a fixed offset"). *)
type runtime_fn =
  | Alloc_object         (** pAllocObjectResolved *)
  | Alloc_array
  | Throw_null_pointer
  | Throw_array_bounds
  | Throw_stack_overflow
  | Throw_div_zero
  | Resolve_string
  | Log_value            (** observable output channel for tests/examples *)

let runtime_fn_name = function
  | Alloc_object -> "pAllocObjectResolved"
  | Alloc_array -> "pAllocArrayResolved"
  | Throw_null_pointer -> "pThrowNullPointer"
  | Throw_array_bounds -> "pThrowArrayBounds"
  | Throw_stack_overflow -> "pThrowStackOverflow"
  | Throw_div_zero -> "pThrowDivZero"
  | Resolve_string -> "pResolveString"
  | Log_value -> "pLogValue"

let all_runtime_fns =
  [ Alloc_object; Alloc_array; Throw_null_pointer; Throw_array_bounds;
    Throw_stack_overflow; Throw_div_zero; Resolve_string; Log_value ]

type method_ref = { class_name : string; method_name : string }

let method_ref_to_string { class_name; method_name } =
  class_name ^ "." ^ method_name

type label = int
(** Branch target: index into the method's instruction array. *)

type insn =
  | Const of vreg * int
  | Move of vreg * vreg
  | Binop of binop * vreg * vreg * vreg        (** dst, lhs, rhs *)
  | Binop_lit of binop * vreg * vreg * int     (** dst, lhs, literal *)
  | Invoke of method_ref * vreg list * vreg option
      (** Java call (Figure 4a pattern at codegen). *)
  | Invoke_runtime of runtime_fn * vreg list * vreg option
      (** ART runtime call (Figure 4b pattern at codegen). *)
  | New_instance of string * vreg              (** class name, dst *)
  | Iget of vreg * vreg * int                  (** dst, object, field offset *)
  | Iput of vreg * vreg * int                  (** src, object, field offset *)
  | Aget of vreg * vreg * vreg                 (** dst, array, index *)
  | Aput of vreg * vreg * vreg                 (** src, array, index *)
  | Array_len of vreg * vreg                   (** dst, array *)
  | If of cmp * vreg * vreg * label
  | Ifz of cmp * vreg * label
  | Goto of label
  | Switch of vreg * label list
      (** Packed switch; lowered to an indirect jump through a table, which
          flags the method as not outlinable (paper section 3.2). *)
  | Const_string of vreg * string
      (** Loads the address of string data embedded in the text segment. *)
  | Return of vreg option

type meth = {
  name : method_ref;
  num_params : int;
  num_vregs : int;
  is_native : bool;
      (** Java native methods are never outlined (paper section 3.2). *)
  is_entry : bool;  (** application entry point, callable from a script *)
  insns : insn array;
}

type cls = { cls_name : string; cls_methods : meth list }
type dex = { dex_name : string; classes : cls list }
type apk = { apk_name : string; dexes : dex list }

let methods_of_apk apk =
  List.concat_map
    (fun dex -> List.concat_map (fun c -> c.cls_methods) dex.classes)
    apk.dexes

let method_count apk = List.length (methods_of_apk apk)

let insn_count apk =
  List.fold_left (fun acc m -> acc + Array.length m.insns) 0 (methods_of_apk apk)

let find_method apk ref_ =
  List.find_opt (fun m -> m.name = ref_) (methods_of_apk apk)

(* Branch targets of an instruction, if any. *)
let targets = function
  | If (_, _, _, l) | Ifz (_, _, l) | Goto l -> [ l ]
  | Switch (_, ls) -> ls
  | _ -> []

(* Does control fall through to the next instruction? *)
let falls_through = function
  | Goto _ | Return _ | Switch _ -> false
  | _ -> true

let is_block_end = function
  | If _ | Ifz _ | Goto _ | Switch _ | Return _ -> true
  | _ -> false
