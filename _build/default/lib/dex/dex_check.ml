(* Well-formedness checks for DEX-like input. Run before compilation; the
   code generator assumes these invariants. *)

open Dex_ir

type error = { where : string; what : string }

let error_to_string { where; what } = where ^ ": " ^ what

let check_method (m : meth) =
  let errors = ref [] in
  let err fmt =
    Fmt.kstr
      (fun what ->
        errors := { where = method_ref_to_string m.name; what } :: !errors)
      fmt
  in
  let n = Array.length m.insns in
  if m.num_params > m.num_vregs then
    err "num_params %d exceeds num_vregs %d" m.num_params m.num_vregs;
  if m.num_vregs < 0 || m.num_params < 0 then err "negative register counts";
  if n = 0 && not m.is_native then err "non-native method with empty body";
  if m.is_native && n > 0 then err "native method with a body";
  let check_reg what r =
    if r < 0 || r >= m.num_vregs then
      err "%s register v%d out of range (regs %d)" what r m.num_vregs
  in
  let check_label l =
    if l < 0 || l >= n then err "branch target %d out of range (%d insns)" l n
  in
  Array.iteri
    (fun i insn ->
      (match insn with
       | Const (d, _) -> check_reg "dst" d
       | Move (d, a) -> check_reg "dst" d; check_reg "src" a
       | Binop (_, d, a, b) ->
         check_reg "dst" d; check_reg "lhs" a; check_reg "rhs" b
       | Binop_lit (op, d, a, v) ->
         check_reg "dst" d; check_reg "lhs" a;
         (* the literal form carries no runtime zero check (the code
            generator folds the divisor), so a zero literal is a
            compile-time error *)
         if (op = Div || op = Rem) && v = 0 then
           err "literal division by zero"
       | Invoke (_, args, res) | Invoke_runtime (_, args, res) ->
         List.iter (check_reg "arg") args;
         Option.iter (check_reg "result") res;
         if List.length args > 7 then err "more than 7 call arguments"
       | New_instance (_, d) -> check_reg "dst" d
       | Iget (d, o, off) ->
         check_reg "dst" d; check_reg "object" o;
         if off < 0 || off > 4096 || off mod 8 <> 0 then
           err "iget field offset %d invalid (8-byte aligned, < 4096)" off
       | Iput (v, o, off) ->
         check_reg "src" v; check_reg "object" o;
         if off < 0 || off > 4096 || off mod 8 <> 0 then
           err "iput field offset %d invalid" off
       | Aget (d, a, ix) ->
         check_reg "dst" d; check_reg "array" a; check_reg "index" ix
       | Aput (v, a, ix) ->
         check_reg "src" v; check_reg "array" a; check_reg "index" ix
       | Array_len (d, a) -> check_reg "dst" d; check_reg "array" a
       | If (_, a, b, l) -> check_reg "lhs" a; check_reg "rhs" b; check_label l
       | Ifz (_, a, l) -> check_reg "operand" a; check_label l
       | Goto l -> check_label l
       | Switch (v, ls) ->
         check_reg "selector" v;
         if ls = [] then err "switch with no targets";
         List.iter check_label ls
       | Const_string (d, _) -> check_reg "dst" d
       | Return r -> Option.iter (check_reg "result") r);
      (* The final instruction must not fall off the end. *)
      if i = n - 1 && falls_through insn then
        err "control falls off the end of the method")
    m.insns;
  List.rev !errors

(* Check call graph consistency: every Invoke target must exist in the apk
   and be passed the right number of arguments. *)
let check_calls (apk : apk) =
  let methods = methods_of_apk apk in
  let table = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace table m.name m) methods;
  let errors = ref [] in
  List.iter
    (fun (m : meth) ->
      Array.iter
        (fun insn ->
          match insn with
          | Invoke (callee, args, _) -> (
            match Hashtbl.find_opt table callee with
            | None ->
              errors :=
                { where = method_ref_to_string m.name;
                  what = "call to undefined method " ^ method_ref_to_string callee }
                :: !errors
            | Some target ->
              if List.length args <> target.num_params then
                errors :=
                  { where = method_ref_to_string m.name;
                    what =
                      Printf.sprintf "call to %s passes %d args, expects %d"
                        (method_ref_to_string callee) (List.length args)
                        target.num_params }
                  :: !errors)
          | _ -> ())
        m.insns)
    methods;
  List.rev !errors

let check_apk (apk : apk) =
  let dup_errors =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun (m : meth) ->
        let key = method_ref_to_string m.name in
        if Hashtbl.mem seen key then
          Some { where = key; what = "duplicate method definition" }
        else begin
          Hashtbl.replace seen key ();
          None
        end)
      (methods_of_apk apk)
  in
  dup_errors
  @ List.concat_map check_method (methods_of_apk apk)
  @ check_calls apk

let check apk = match check_apk apk with [] -> Ok () | errs -> Error errs
