lib/dex/dex_text.ml: Array Buffer Dex_ir Fmt Hashtbl List Printf String
