lib/dex/dex_check.ml: Array Dex_ir Fmt Hashtbl List Option Printf
