lib/dex/dex_ir.ml: Array List
