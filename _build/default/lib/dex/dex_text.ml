(* Textual format for DEX-like input: the ".dexsim" format.

   A hand-written lexer and recursive-descent parser (no parser-generator
   dependency), plus a printer that round-trips. Example:

   {v
   .apk demo
   .dex classes01
   .class com.demo.Main
   .method run params 1 regs 4 entry
     const v1, #2
     mul v2, v0, v1
     ifz eq v2, :zero
     rtcall pLogValue (v2)
     goto :done
   :zero
     const v2, #0
   :done
     return v2
   .end
   v} *)

open Dex_ir

exception Parse_error of { line : int; message : string }

let parse_errorf ~line fmt =
  Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

(* ---- Lexer ----------------------------------------------------------- *)

type token =
  | DIRECTIVE of string   (* .apk .dex .class .method .end *)
  | IDENT of string
  | REG of int            (* vN *)
  | INT of int            (* #n *)
  | LABEL of string       (* :name *)
  | STRING of string
  | LPAREN | RPAREN | COMMA | ARROW

type lexed = { token : token; line : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$' || c = '/' || c = '<' || c = '>'

let lex source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { token; line = !line } :: !tokens in
  let i = ref 0 in
  let read_while pred =
    let start = !i in
    while !i < n && pred source.[!i] do incr i done;
    String.sub source start (!i - start)
  in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' || (c = '/' && !i + 1 < n && source.[!i + 1] = '/') then
      while !i < n && source.[!i] <> '\n' do incr i done
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '-' && !i + 1 < n && source.[!i + 1] = '>' then
      (emit ARROW; i := !i + 2)
    else if c = '.' then begin
      incr i;
      let name = read_while is_ident_char in
      if name = "" then parse_errorf ~line:!line "stray '.'";
      emit (DIRECTIVE name)
    end
    else if c = ':' then begin
      incr i;
      let name = read_while is_ident_char in
      if name = "" then parse_errorf ~line:!line "empty label after ':'";
      emit (LABEL name)
    end
    else if c = '#' then begin
      incr i;
      let neg = !i < n && source.[!i] = '-' in
      if neg then incr i;
      let digits =
        read_while (fun c ->
            (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
            || (c >= 'A' && c <= 'F') || c = 'x')
      in
      (match int_of_string_opt digits with
       | Some v -> emit (INT (if neg then -v else v))
       | None -> parse_errorf ~line:!line "bad integer literal #%s" digits)
    end
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 16 in
      let rec go () =
        if !i >= n then parse_errorf ~line:!line "unterminated string"
        else
          match source.[!i] with
          | '"' -> incr i
          | '\\' when !i + 1 < n ->
            let e = source.[!i + 1] in
            Buffer.add_char b
              (match e with
               | 'n' -> '\n' | 't' -> '\t' | '\\' -> '\\' | '"' -> '"'
               | _ -> parse_errorf ~line:!line "bad escape \\%c" e);
            i := !i + 2;
            go ()
          | ch -> Buffer.add_char b ch; incr i; go ()
      in
      go ();
      emit (STRING (Buffer.contents b))
    end
    else if is_ident_char c then begin
      let word = read_while is_ident_char in
      (* vN with digits only after the v is a register *)
      if String.length word >= 2 && word.[0] = 'v'
         && String.for_all (fun c -> c >= '0' && c <= '9')
              (String.sub word 1 (String.length word - 1))
      then emit (REG (int_of_string (String.sub word 1 (String.length word - 1))))
      else emit (IDENT word)
    end
    else parse_errorf ~line:!line "unexpected character %C" c
  done;
  List.rev !tokens

(* ---- Parser ---------------------------------------------------------- *)

type stream = { mutable rest : lexed list; mutable last_line : int }

let peek s = match s.rest with [] -> None | t :: _ -> Some t

let next s =
  match s.rest with
  | [] -> parse_errorf ~line:s.last_line "unexpected end of input"
  | t :: rest ->
    s.rest <- rest;
    s.last_line <- t.line;
    t

let token_name = function
  | DIRECTIVE d -> "." ^ d
  | IDENT s -> s
  | REG r -> Printf.sprintf "v%d" r
  | INT i -> Printf.sprintf "#%d" i
  | LABEL l -> ":" ^ l
  | STRING _ -> "<string>"
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | ARROW -> "->"

let expect s what pred =
  let t = next s in
  match pred t.token with
  | Some v -> v
  | None -> parse_errorf ~line:t.line "expected %s, got %s" what (token_name t.token)

let expect_ident s =
  expect s "identifier" (function IDENT v -> Some v | _ -> None)

let expect_reg s = expect s "register" (function REG r -> Some r | _ -> None)
let expect_int s = expect s "integer" (function INT i -> Some i | _ -> None)
let expect_label s = expect s "label" (function LABEL l -> Some l | _ -> None)

let expect_tok s tok =
  let t = next s in
  if t.token <> tok then
    parse_errorf ~line:t.line "expected %s, got %s" (token_name tok)
      (token_name t.token)

let accept s tok =
  match peek s with
  | Some t when t.token = tok -> ignore (next s); true
  | _ -> false

(* Split "com.demo.Bar.helper" into class and method parts. *)
let split_method_ref ~line name =
  match String.rindex_opt name '.' with
  | None -> parse_errorf ~line "method reference %S needs a class prefix" name
  | Some i ->
    { class_name = String.sub name 0 i;
      method_name = String.sub name (i + 1) (String.length name - i - 1) }

let runtime_fn_of_name ~line name =
  match List.find_opt (fun f -> runtime_fn_name f = name) all_runtime_fns with
  | Some f -> f
  | None -> parse_errorf ~line "unknown runtime function %S" name

let binop_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "rem" -> Some Rem | "and" -> Some And
  | "or" -> Some Or | "xor" -> Some Xor
  | _ -> None

let cmp_of_name ~line = function
  | "eq" -> Eq | "ne" -> Ne | "lt" -> Lt | "le" -> Le | "gt" -> Gt | "ge" -> Ge
  | s -> parse_errorf ~line "unknown comparison %S" s

(* Parse argument list "(v0, v1, ...)". *)
let parse_args s =
  expect_tok s LPAREN;
  if accept s RPAREN then []
  else begin
    let rec go acc =
      let r = expect_reg s in
      if accept s COMMA then go (r :: acc)
      else begin
        expect_tok s RPAREN;
        List.rev (r :: acc)
      end
    in
    go []
  end

let parse_result_opt s =
  if accept s ARROW then Some (expect_reg s) else None

(* An instruction or a label definition. *)
type item = Insn of insn_sym | Label_def of string

(* Instructions with still-symbolic labels. *)
and insn_sym =
  | S_plain of (label_resolver -> insn)

and label_resolver = line:int -> string -> int

let parse_insn s ~line mnemonic : insn_sym =
  let plain f = S_plain f in
  match mnemonic with
  | "const" ->
    let d = expect_reg s in
    expect_tok s COMMA;
    let v = expect_int s in
    plain (fun _ -> Const (d, v))
  | "move" ->
    let d = expect_reg s in
    expect_tok s COMMA;
    let a = expect_reg s in
    plain (fun _ -> Move (d, a))
  | "string" ->
    let d = expect_reg s in
    expect_tok s COMMA;
    let v = expect s "string" (function STRING v -> Some v | _ -> None) in
    plain (fun _ -> Const_string (d, v))
  | "new" ->
    let cls = expect_ident s in
    expect_tok s COMMA;
    let d = expect_reg s in
    plain (fun _ -> New_instance (cls, d))
  | "iget" | "iput" ->
    let a = expect_reg s in
    expect_tok s COMMA;
    let b = expect_reg s in
    expect_tok s COMMA;
    let off = expect_int s in
    plain (fun _ ->
        if mnemonic = "iget" then Iget (a, b, off) else Iput (a, b, off))
  | "aget" | "aput" ->
    let a = expect_reg s in
    expect_tok s COMMA;
    let b = expect_reg s in
    expect_tok s COMMA;
    let c = expect_reg s in
    plain (fun _ -> if mnemonic = "aget" then Aget (a, b, c) else Aput (a, b, c))
  | "arraylen" ->
    let d = expect_reg s in
    expect_tok s COMMA;
    let a = expect_reg s in
    plain (fun _ -> Array_len (d, a))
  | "if" ->
    let c = cmp_of_name ~line (expect_ident s) in
    let a = expect_reg s in
    expect_tok s COMMA;
    let b = expect_reg s in
    expect_tok s COMMA;
    let l = expect_label s in
    plain (fun resolve -> If (c, a, b, resolve ~line l))
  | "ifz" ->
    let c = cmp_of_name ~line (expect_ident s) in
    let a = expect_reg s in
    expect_tok s COMMA;
    let l = expect_label s in
    plain (fun resolve -> Ifz (c, a, resolve ~line l))
  | "goto" ->
    let l = expect_label s in
    plain (fun resolve -> Goto (resolve ~line l))
  | "switch" ->
    let v = expect_reg s in
    expect_tok s LPAREN;
    let rec go acc =
      let l = expect_label s in
      if accept s COMMA then go (l :: acc)
      else begin
        expect_tok s RPAREN;
        List.rev (l :: acc)
      end
    in
    let labels = go [] in
    plain (fun resolve -> Switch (v, List.map (resolve ~line) labels))
  | "invoke" ->
    let callee = split_method_ref ~line (expect_ident s) in
    let args = parse_args s in
    let res = parse_result_opt s in
    plain (fun _ -> Invoke (callee, args, res))
  | "rtcall" ->
    let fn = runtime_fn_of_name ~line (expect_ident s) in
    let args = parse_args s in
    let res = parse_result_opt s in
    plain (fun _ -> Invoke_runtime (fn, args, res))
  | "return" ->
    (match peek s with
     | Some { token = REG r; _ } ->
       ignore (next s);
       plain (fun _ -> Return (Some r))
     | _ -> plain (fun _ -> Return None))
  | other ->
    (match binop_of_name other with
     | Some op ->
       let d = expect_reg s in
       expect_tok s COMMA;
       let a = expect_reg s in
       expect_tok s COMMA;
       let t = next s in
       (match t.token with
        | REG b -> plain (fun _ -> Binop (op, d, a, b))
        | INT v -> plain (fun _ -> Binop_lit (op, d, a, v))
        | tok ->
          parse_errorf ~line:t.line "expected register or literal, got %s"
            (token_name tok))
     | None -> parse_errorf ~line "unknown mnemonic %S" other)

let parse_method s ~name =
  let ident_kw kw = expect_tok s (IDENT kw) in
  ident_kw "params";
  let num_params = expect_int s in
  ident_kw "regs";
  let num_vregs = expect_int s in
  let is_native = ref false and is_entry = ref false in
  let rec attrs () =
    match peek s with
    | Some { token = IDENT "native"; _ } -> ignore (next s); is_native := true; attrs ()
    | Some { token = IDENT "entry"; _ } -> ignore (next s); is_entry := true; attrs ()
    | _ -> ()
  in
  attrs ();
  let items = ref [] in
  let rec body () =
    match peek s with
    | Some { token = DIRECTIVE "end"; _ } -> ignore (next s)
    | Some { token = LABEL l; _ } ->
      ignore (next s);
      items := (Label_def l, s.last_line) :: !items;
      body ()
    | Some { token = IDENT mnemonic; line } ->
      ignore (next s);
      items := (Insn (parse_insn s ~line mnemonic), line) :: !items;
      body ()
    | Some t ->
      parse_errorf ~line:t.line "expected instruction, label or .end, got %s"
        (token_name t.token)
    | None -> parse_errorf ~line:s.last_line ".method without .end"
  in
  body ();
  let items = List.rev !items in
  (* Resolve labels to instruction indices. *)
  let label_table = Hashtbl.create 8 in
  let idx = ref 0 in
  List.iter
    (fun (item, line) ->
      match item with
      | Label_def l ->
        if Hashtbl.mem label_table l then
          parse_errorf ~line "duplicate label :%s" l;
        Hashtbl.replace label_table l !idx
      | Insn _ -> incr idx)
    items;
  let resolve ~line l =
    match Hashtbl.find_opt label_table l with
    | Some i -> i
    | None -> parse_errorf ~line "undefined label :%s" l
  in
  let insns =
    List.filter_map
      (fun (item, _) ->
        match item with
        | Insn (S_plain f) -> Some (f resolve)
        | Label_def _ -> None)
      items
    |> Array.of_list
  in
  { name; num_params; num_vregs; is_native = !is_native; is_entry = !is_entry;
    insns }

let parse_class s ~cls_name =
  let methods = ref [] in
  let rec go () =
    match peek s with
    | Some { token = DIRECTIVE "method"; _ } ->
      ignore (next s);
      let mname = expect_ident s in
      let m = parse_method s ~name:{ class_name = cls_name; method_name = mname } in
      methods := m :: !methods;
      go ()
    | _ -> ()
  in
  go ();
  { cls_name; cls_methods = List.rev !methods }

let parse_dex s ~dex_name =
  let classes = ref [] in
  let rec go () =
    match peek s with
    | Some { token = DIRECTIVE "class"; _ } ->
      ignore (next s);
      let cname = expect_ident s in
      classes := parse_class s ~cls_name:cname :: !classes;
      go ()
    | _ -> ()
  in
  go ();
  { dex_name; classes = List.rev !classes }

let parse_apk source =
  let s = { rest = lex source; last_line = 1 } in
  expect_tok s (DIRECTIVE "apk");
  let apk_name = expect_ident s in
  let dexes = ref [] in
  let rec go () =
    match peek s with
    | Some { token = DIRECTIVE "dex"; _ } ->
      ignore (next s);
      let dname = expect_ident s in
      dexes := parse_dex s ~dex_name:dname :: !dexes;
      go ()
    | Some t -> parse_errorf ~line:t.line "expected .dex, got %s" (token_name t.token)
    | None -> ()
  in
  go ();
  { apk_name; dexes = List.rev !dexes }

let parse source =
  match parse_apk source with
  | apk -> Ok apk
  | exception Parse_error { line; message } ->
    Error (Printf.sprintf "line %d: %s" line message)

(* ---- Printer --------------------------------------------------------- *)

let escape_string v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let print_insn b ~label_of insn =
  let reg r = Printf.sprintf "v%d" r in
  let args rs = "(" ^ String.concat ", " (List.map reg rs) ^ ")" in
  let res = function None -> "" | Some r -> " -> " ^ reg r in
  let s =
    match insn with
    | Const (d, v) -> Printf.sprintf "const %s, #%d" (reg d) v
    | Move (d, a) -> Printf.sprintf "move %s, %s" (reg d) (reg a)
    | Binop (op, d, a, bb) ->
      Printf.sprintf "%s %s, %s, %s" (binop_name op) (reg d) (reg a) (reg bb)
    | Binop_lit (op, d, a, v) ->
      Printf.sprintf "%s %s, %s, #%d" (binop_name op) (reg d) (reg a) v
    | Invoke (callee, aa, r) ->
      Printf.sprintf "invoke %s %s%s" (method_ref_to_string callee) (args aa)
        (res r)
    | Invoke_runtime (fn, aa, r) ->
      Printf.sprintf "rtcall %s %s%s" (runtime_fn_name fn) (args aa) (res r)
    | New_instance (cls, d) -> Printf.sprintf "new %s, %s" cls (reg d)
    | Iget (d, o, off) -> Printf.sprintf "iget %s, %s, #%d" (reg d) (reg o) off
    | Iput (v, o, off) -> Printf.sprintf "iput %s, %s, #%d" (reg v) (reg o) off
    | Aget (d, a, i) -> Printf.sprintf "aget %s, %s, %s" (reg d) (reg a) (reg i)
    | Aput (v, a, i) -> Printf.sprintf "aput %s, %s, %s" (reg v) (reg a) (reg i)
    | Array_len (d, a) -> Printf.sprintf "arraylen %s, %s" (reg d) (reg a)
    | If (c, a, bb, l) ->
      Printf.sprintf "if %s %s, %s, :%s" (cmp_name c) (reg a) (reg bb)
        (label_of l)
    | Ifz (c, a, l) ->
      Printf.sprintf "ifz %s %s, :%s" (cmp_name c) (reg a) (label_of l)
    | Goto l -> Printf.sprintf "goto :%s" (label_of l)
    | Switch (v, ls) ->
      Printf.sprintf "switch %s (%s)" (reg v)
        (String.concat ", " (List.map (fun l -> ":" ^ label_of l) ls))
    | Const_string (d, v) ->
      Printf.sprintf "string %s, \"%s\"" (reg d) (escape_string v)
    | Return None -> "return"
    | Return (Some r) -> Printf.sprintf "return %s" (reg r)
  in
  Buffer.add_string b ("    " ^ s ^ "\n")

let print_method b (m : meth) =
  Buffer.add_string b
    (Printf.sprintf ".method %s params #%d regs #%d%s%s\n" m.name.method_name
       m.num_params m.num_vregs
       (if m.is_native then " native" else "")
       (if m.is_entry then " entry" else ""));
  (* Collect label targets. *)
  let targets =
    Array.to_list m.insns |> List.concat_map targets |> List.sort_uniq compare
  in
  let label_of l = Printf.sprintf "L%d" l in
  Array.iteri
    (fun i insn ->
      if List.mem i targets then Buffer.add_string b ("  :" ^ label_of i ^ "\n");
      print_insn b ~label_of insn)
    m.insns;
  (* A label may point one past the last instruction only if unreachable;
     the checker rejects that, so no trailing label handling needed. *)
  Buffer.add_string b ".end\n"

let to_string (apk : apk) =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf ".apk %s\n" apk.apk_name);
  List.iter
    (fun dex ->
      Buffer.add_string b (Printf.sprintf ".dex %s\n" dex.dex_name);
      List.iter
        (fun cls ->
          Buffer.add_string b (Printf.sprintf ".class %s\n" cls.cls_name);
          List.iter (print_method b) cls.cls_methods)
        dex.classes)
    apk.dexes;
  Buffer.contents b
