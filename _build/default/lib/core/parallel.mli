(** PlOpti — paralleled suffix trees (paper section 3.4.1): partition the
    candidate methods into K groups, detect repeats per group (one suffix
    tree each) on OCaml 5 domains, then rewrite. The cost is cross-tree
    repeats going unseen — the tolerable code-size loss of Table 4. *)

open Calibro_codegen

val partition : k:int -> seed:int -> int list -> int list list
(** Deterministic pseudo-random even partition ("a simple and random
    partition instead of clustering"). Groups are non-empty; their union is
    the input. *)

val detect_parallel :
  options:Ltbo.options ->
  Compiled_method.t array ->
  int list list ->
  (Ltbo.decision list * Ltbo.stats) list
(** Run {!Ltbo.detect} over each group. Live domains are capped at
    [Domain.recommended_domain_count () - 1]; groups beyond that run in
    waves (or sequentially on a single-core host). *)

val run :
  ?options:Ltbo.options ->
  ?seed:int ->
  k:int ->
  Compiled_method.t list ->
  Ltbo.result
(** Full PlOpti LTBO over all outlinable methods. *)
