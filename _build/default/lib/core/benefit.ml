(* The benefit model of Figure 2:

     OriginalSize   = Length x RepeatedTimes
     OptimizedSize  = RepeatedTimes + 1 + Length
     ReductionRatio = (OriginalSize - OptimizedSize) / OriginalSize

   Length and RepeatedTimes are in instructions; the "+1" is the extra
   return instruction ([br x30]) of the outlined function. *)

let original_size ~length ~repeats = length * repeats

let optimized_size ~length ~repeats = repeats + 1 + length

(* Net instruction saving; positive iff outlining shrinks the code. *)
let saving ~length ~repeats =
  original_size ~length ~repeats - optimized_size ~length ~repeats

let worthwhile ~length ~repeats = saving ~length ~repeats > 0

let reduction_ratio ~length ~repeats =
  let o = original_size ~length ~repeats in
  if o = 0 then 0.0 else float_of_int (saving ~length ~repeats) /. float_of_int o

(* Smallest number of repeats that makes a sequence of [length] worth
   outlining: L*N - (N+1+L) > 0  <=>  N > (L+1)/(L-1). *)
let min_repeats ~length =
  if length <= 1 then max_int
  else ((length + 1) / (length - 1)) + 1
