(* Table rendering for the benchmark harness: the paper's row/column
   layout (apps as columns, configurations as rows, plus an AVG column). *)

type table = {
  title : string;
  columns : string list;        (** app names *)
  rows : (string * string list) list;  (** row label, one cell per column *)
}

let mib bytes = Printf.sprintf "%.2fM" (float_of_int bytes /. 1024.0 /. 1024.0)
let kib bytes = Printf.sprintf "%.1fK" (float_of_int bytes /. 1024.0)
let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let seconds s = Printf.sprintf "%.2fs" s

let mega n = Printf.sprintf "%.1fM" (float_of_int n /. 1.0e6)

let avg_pct xs =
  pct (List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)))

let render (t : table) =
  let b = Buffer.create 1024 in
  let headers = ("" :: t.columns) @ [ "AVG" ] in
  let rows =
    List.map
      (fun (label, cells) ->
        let cells =
          if List.length cells = List.length t.columns + 1 then cells
          else cells @ [ "/" ]
        in
        label :: cells)
      t.rows
  in
  let all = headers :: rows in
  let ncols = List.length headers in
  let widths =
    List.init ncols (fun c ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row c with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Buffer.add_string b ("== " ^ t.title ^ " ==\n");
  List.iter
    (fun row ->
      List.iteri
        (fun c cell ->
          Buffer.add_string b (pad cell (List.nth widths c));
          if c < ncols - 1 then Buffer.add_string b "  ")
        row;
      Buffer.add_char b '\n')
    all;
  Buffer.contents b

let print t = print_string (render t)
