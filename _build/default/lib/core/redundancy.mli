(** The code-redundancy analysis of paper section 2.2 (Table 1, Figure 3,
    Figure 4): map the binary to integers, build a suffix tree, detect
    repeats, and estimate potential savings with the Figure 2 model. The
    estimate is deliberately optimistic (no basic-block confinement or
    candidate exclusions), which is why Table 1 exceeds Table 4. *)

open Calibro_oat

type analysis = {
  a_text_words : int;          (** analysed instruction count *)
  a_repeats : int;             (** right-maximal repeated sequences *)
  a_saved_instructions : int;  (** estimated by the benefit model *)
  a_ratio : float;             (** estimated reduction ratio *)
  a_histogram : (int * int) list;
      (** Figure 3: (sequence length, total number of repeats) *)
}

val sequence_of_oat : Oat_file.t -> int array
(** The whole text as one integer sequence; embedded data words become
    unique separators. *)

val analyze : ?min_length:int -> ?max_length:int -> Oat_file.t -> analysis

type pattern_census = {
  c_java_call : int;     (** Figure 4a occurrences *)
  c_runtime_call : int;  (** Figure 4b occurrences *)
  c_stack_check : int;   (** Figure 4c occurrences *)
}

val pattern_census : Oat_file.t -> pattern_census
(** Count the three ART-specific patterns in the linked text. *)
