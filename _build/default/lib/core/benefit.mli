(** The code-outlining benefit model of the paper's Figure 2:

    {v
    OriginalSize   = Length x RepeatedTimes
    OptimizedSize  = RepeatedTimes + 1 + Length
    ReductionRatio = (OriginalSize - OptimizedSize) / OriginalSize
    v}

    Sizes are in instructions; the "+1" is the [br x30] return of the
    outlined function. *)

val original_size : length:int -> repeats:int -> int
val optimized_size : length:int -> repeats:int -> int

val saving : length:int -> repeats:int -> int
(** Net instruction saving; positive iff outlining shrinks the code. *)

val worthwhile : length:int -> repeats:int -> bool
(** [saving > 0]: the paper's section 3.3.3 outlining criterion. *)

val reduction_ratio : length:int -> repeats:int -> float

val min_repeats : length:int -> int
(** Smallest repeat count making a sequence of [length] worth outlining
    (e.g. 4 for length 2, 2 for length 4); [max_int] for length <= 1. *)
