lib/core/redundancy.ml: Array Benefit Calibro_aarch64 Calibro_codegen Calibro_oat Calibro_suffix_tree Decode Encode Hashtbl Isa List Meta Oat_file Option Suffix_tree
