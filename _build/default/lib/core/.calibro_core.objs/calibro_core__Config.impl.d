lib/core/config.ml: Calibro_dex Hashtbl List Ltbo
