lib/core/ltbo.mli: Calibro_codegen Calibro_dex Calibro_oat Compiled_method
