lib/core/parallel.mli: Calibro_codegen Compiled_method Ltbo
