lib/core/parallel.ml: Array Calibro_codegen Compiled_method Domain List Ltbo Meta
