lib/core/benefit.mli:
