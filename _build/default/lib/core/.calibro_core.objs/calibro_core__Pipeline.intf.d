lib/core/pipeline.mli: Calibro_dex Calibro_oat Config Dex_ir Ltbo
