lib/core/seq_map.ml: Bytes Calibro_aarch64 Calibro_codegen Compiled_method Decode Encode Hashtbl Isa List Meta
