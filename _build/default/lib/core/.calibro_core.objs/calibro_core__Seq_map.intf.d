lib/core/seq_map.mli: Calibro_codegen Compiled_method
