lib/core/benefit.ml:
