lib/core/redundancy.mli: Calibro_oat Oat_file
