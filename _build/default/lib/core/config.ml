(* The evaluation configurations of the paper's section 4.1. *)

open Calibro_dex.Dex_ir

type t = {
  name : string;
  optimize_ir : bool;     (** HGraph passes (all configs keep them on:
                              "all available code size optimization
                              enabled" in the baseline). *)
  cto : bool;             (** compilation-time outlining (3.1) *)
  ltbo : bool;            (** link-time binary outlining (3.2/3.3) *)
  parallel_trees : int;   (** 1 = single global suffix tree; >1 = PlOpti *)
  hot_methods : method_ref list;
      (** non-empty enables HfOpti: these methods outline only their
          slowpaths *)
  ltbo_min_length : int;
  ltbo_max_length : int;
  ltbo_rounds : int;
      (** whole-program outlining rounds (>1 harvests second-order repeats,
          the iteration Chabbi et al. use on iOS) *)
}

let baseline =
  { name = "Baseline"; optimize_ir = true; cto = false; ltbo = false;
    parallel_trees = 1; hot_methods = []; ltbo_min_length = 2;
    ltbo_max_length = 64; ltbo_rounds = 1 }

let cto = { baseline with name = "CTO"; cto = true }

let cto_ltbo = { cto with name = "CTO+LTBO"; ltbo = true }

let cto_ltbo_pl ?(k = 8) () =
  { cto_ltbo with name = "CTO+LTBO+PlOpti"; parallel_trees = k }

let cto_ltbo_pl_hf ?(k = 8) ~hot_methods () =
  { cto_ltbo with name = "CTO+LTBO+PlOpti+HfOpti"; parallel_trees = k;
    hot_methods }

let is_hot t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace tbl m ()) t.hot_methods;
  fun name -> Hashtbl.mem tbl name

let ltbo_options t =
  { Ltbo.min_length = t.ltbo_min_length; max_length = t.ltbo_max_length;
    is_hot = is_hot t }
