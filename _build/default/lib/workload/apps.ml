(* The six evaluation apps (paper section 4.1: "the top six downloaded
   applications from the OPPO App market"), scaled ~1000:1 in text size.

   Per-app parameters are calibrated so the paper's relative shapes hold:
   - text sizes proportional to the paper's Table 4 baselines
     (Toutiao 357M, Taobao 225M, Fanqie 264M, Meituan 247M, Kuaishou 612M,
     Wechat 388M);
   - estimated redundancy around 25-30% (Table 1);
   - Kuaishou reduces most, Taobao least (Table 4).

   Knobs: [scale] sets method count (and thus text size); [pool] is the
   idiom-pool size (smaller = more repeats); [perturb] deviates idiom
   instantiations; [filler] interleaves unique noise; [layouts] is the
   number of distinct register layouts (more = less binary-level
   repetition); [dispatchers] weights the LTBO-excluded indirect-jump
   methods, which widen the estimate-vs-realized gap. *)

open Appgen

let profile ~name ~seed ~scale ~pool ~perturb ~filler ~layouts ~dispatchers
    ~repeats =
  { p_name = name;
    p_seed = seed;
    p_n_arith = 26 * scale;
    p_idiom_pool = pool;
    p_idioms_per_method = 6;
    p_perturb = perturb;
    p_filler = filler;
    p_layouts = layouts;
    p_n_field = 8 * scale;
    p_field_stanzas = 12;
    p_n_serializer = 6 * scale;
    p_serializer_stanzas = 12;
    p_n_compute = 2 * scale;
    p_compute_iters = 30;
    p_n_dispatcher = dispatchers * scale;
    p_n_strings = 4 * scale;
    p_n_native = max 1 (scale / 2);
    p_n_glue = 6 * scale;
    p_script_repeats = repeats }

let toutiao =
  profile ~name:"Toutiao" ~seed:101 ~scale:19 ~pool:20 ~perturb:0.10
    ~filler:12 ~layouts:22 ~dispatchers:6 ~repeats:20

let taobao =
  profile ~name:"Taobao" ~seed:102 ~scale:12 ~pool:30 ~perturb:0.16
    ~filler:20 ~layouts:40 ~dispatchers:8 ~repeats:20

let fanqie =
  profile ~name:"Fanqie" ~seed:103 ~scale:14 ~pool:22 ~perturb:0.11
    ~filler:12 ~layouts:24 ~dispatchers:6 ~repeats:20

let meituan =
  profile ~name:"Meituan" ~seed:104 ~scale:13 ~pool:26 ~perturb:0.13
    ~filler:14 ~layouts:28 ~dispatchers:7 ~repeats:20

let kuaishou =
  profile ~name:"Kuaishou" ~seed:105 ~scale:26 ~pool:14 ~perturb:0.06
    ~filler:8 ~layouts:12 ~dispatchers:4 ~repeats:20

let wechat =
  profile ~name:"Wechat" ~seed:106 ~scale:21 ~pool:24 ~perturb:0.12
    ~filler:12 ~layouts:24 ~dispatchers:6 ~repeats:20

let all = [ toutiao; taobao; fanqie; meituan; kuaishou; wechat ]

let by_name name =
  List.find_opt
    (fun p -> String.lowercase_ascii p.p_name = String.lowercase_ascii name)
    all

let generate_all () = List.map Appgen.generate all

(* A small app for quick examples and tests. *)
let demo =
  profile ~name:"Demo" ~seed:7 ~scale:2 ~pool:10 ~perturb:0.08 ~filler:8
    ~layouts:8 ~dispatchers:2 ~repeats:2
