(* A small method builder: emit DEX-like instructions against symbolic
   labels and resolve them to instruction indices at [finish]. The app
   generator uses it to write templates without index arithmetic. *)

open Calibro_dex.Dex_ir

type item = Ins of insn | Lbl of int

type t = {
  mutable items : item list;  (* reversed *)
  mutable next_label : int;
}

let create () = { items = []; next_label = 0 }

let fresh_label b =
  let l = b.next_label in
  b.next_label <- l + 1;
  l

let emit b i = b.items <- Ins i :: b.items
let place b l = b.items <- Lbl l :: b.items

(* Convenience emitters. *)
let const b d v = emit b (Const (d, v))
let move b d a = emit b (Move (d, a))
let binop b op d x y = emit b (Binop (op, d, x, y))
let binop_lit b op d x v = emit b (Binop_lit (op, d, x, v))
let invoke b callee args res = emit b (Invoke (callee, args, res))
let rtcall b fn args res = emit b (Invoke_runtime (fn, args, res))
let ret b r = emit b (Return r)

let finish b ~name ~num_params ~num_vregs ?(is_native = false)
    ?(is_entry = false) () : meth =
  let items = List.rev b.items in
  (* Label -> instruction index. *)
  let table = Hashtbl.create 8 in
  let idx = ref 0 in
  List.iter
    (function
      | Lbl l -> Hashtbl.replace table l !idx
      | Ins _ -> incr idx)
    items;
  let resolve l =
    match Hashtbl.find_opt table l with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Mb.finish: unplaced label %d" l)
  in
  let insns =
    List.filter_map
      (function
        | Lbl _ -> None
        | Ins i ->
          Some
            (match i with
             | If (c, x, y, l) -> If (c, x, y, resolve l)
             | Ifz (c, x, l) -> Ifz (c, x, resolve l)
             | Goto l -> Goto (resolve l)
             | Switch (v, ls) -> Switch (v, List.map resolve ls)
             | other -> other))
      items
    |> Array.of_list
  in
  { name; num_params; num_vregs; is_native; is_entry; insns }
