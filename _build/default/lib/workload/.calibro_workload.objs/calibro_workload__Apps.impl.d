lib/workload/apps.ml: Appgen List String
