lib/workload/appgen.ml: Array Calibro_dex Hashtbl List Mb Option Printf Random
