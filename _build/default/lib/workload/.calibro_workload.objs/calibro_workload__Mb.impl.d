lib/workload/mb.ml: Array Calibro_dex Hashtbl List Printf
