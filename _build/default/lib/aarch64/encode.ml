(* Bit-exact A64 encodings for the subset in {!Isa}.

   Words are represented as OCaml [int]s in the range [0, 2^32); byte
   serialization is little-endian, as on real AArch64. *)

open Isa

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let check_reg r = if r < 0 || r > 31 then errf "register out of range: %d" r

(* Encode a signed byte displacement into a word-scaled field of [bits]
   bits. [what] names the field for error messages. *)
let scaled_signed ~what ~bits ~scale disp =
  if disp mod scale <> 0 then
    errf "%s: displacement %d not a multiple of %d" what disp scale;
  let v = disp / scale in
  let lo = -(1 lsl (bits - 1)) and hi = (1 lsl (bits - 1)) - 1 in
  if v < lo || v > hi then errf "%s: displacement %d out of range" what disp;
  v land ((1 lsl bits) - 1)

let sf = function W -> 0 | X -> 1

let encode t =
  let reg r = check_reg r; r in
  match t with
  | Add_sub_imm { op; size; set_flags; rd; rn; imm12; shift12 } ->
    if imm12 < 0 || imm12 > 0xfff then errf "add/sub imm12 out of range: %d" imm12;
    (sf size lsl 31)
    lor ((match op with ADD -> 0 | SUB -> 1) lsl 30)
    lor ((if set_flags then 1 else 0) lsl 29)
    lor (0b100010 lsl 23)
    lor ((if shift12 then 1 else 0) lsl 22)
    lor (imm12 lsl 10) lor (reg rn lsl 5) lor reg rd
  | Add_sub_reg { op; size; set_flags; rd; rn; rm } ->
    (sf size lsl 31)
    lor ((match op with ADD -> 0 | SUB -> 1) lsl 30)
    lor ((if set_flags then 1 else 0) lsl 29)
    lor (0b01011 lsl 24)
    lor (reg rm lsl 16) lor (reg rn lsl 5) lor reg rd
  | Logic_reg { op; size; rd; rn; rm } ->
    let opc = match op with AND -> 0 | ORR -> 1 | EOR -> 2 | ANDS -> 3 in
    (sf size lsl 31) lor (opc lsl 29) lor (0b01010 lsl 24)
    lor (reg rm lsl 16) lor (reg rn lsl 5) lor reg rd
  | Mov_wide { kind; size; rd; imm16; hw } ->
    if imm16 < 0 || imm16 > 0xffff then errf "mov imm16 out of range: %d" imm16;
    let max_hw = match size with W -> 1 | X -> 3 in
    if hw < 0 || hw > max_hw then errf "mov hw out of range: %d" hw;
    let opc = match kind with MOVN -> 0 | MOVZ -> 2 | MOVK -> 3 in
    (sf size lsl 31) lor (opc lsl 29) lor (0b100101 lsl 23)
    lor (hw lsl 21) lor (imm16 lsl 5) lor reg rd
  | Mul { size; rd; rn; rm } ->
    (* MADD rd, rn, rm, zr *)
    (sf size lsl 31) lor (0b0011011000 lsl 21)
    lor (reg rm lsl 16) lor (zr lsl 10) lor (reg rn lsl 5) lor reg rd
  | Sdiv { size; rd; rn; rm } ->
    (sf size lsl 31) lor (0b0011010110 lsl 21)
    lor (reg rm lsl 16) lor (0b000011 lsl 10) lor (reg rn lsl 5) lor reg rd
  | Msub { size; rd; rn; rm; ra } ->
    (sf size lsl 31) lor (0b0011011000 lsl 21)
    lor (reg rm lsl 16) lor (1 lsl 15) lor (reg ra lsl 10)
    lor (reg rn lsl 5) lor reg rd
  | Ldr { size; rt; rn; imm } ->
    let scale = match size with W -> 4 | X -> 8 in
    if imm < 0 || imm mod scale <> 0 || imm / scale > 0xfff then
      errf "ldr offset invalid: %d" imm;
    ((match size with W -> 0b10 | X -> 0b11) lsl 30)
    lor (0b11100101 lsl 22)
    lor ((imm / scale) lsl 10) lor (reg rn lsl 5) lor reg rt
  | Str { size; rt; rn; imm } ->
    let scale = match size with W -> 4 | X -> 8 in
    if imm < 0 || imm mod scale <> 0 || imm / scale > 0xfff then
      errf "str offset invalid: %d" imm;
    ((match size with W -> 0b10 | X -> 0b11) lsl 30)
    lor (0b11100100 lsl 22)
    lor ((imm / scale) lsl 10) lor (reg rn lsl 5) lor reg rt
  | Ldp { size; rt; rt2; rn; imm; mode } | Stp { size; rt; rt2; rn; imm; mode }
    ->
    let is_load = match t with Ldp _ -> 1 | _ -> 0 in
    let scale = match size with W -> 4 | X -> 8 in
    let imm7 = scaled_signed ~what:"ldp/stp" ~bits:7 ~scale imm in
    let variant =
      match mode with Post -> 0b001 | Pre -> 0b011 | Offset -> 0b010
    in
    ((match size with W -> 0b00 | X -> 0b10) lsl 30)
    lor (0b101 lsl 27) lor (variant lsl 23) lor (is_load lsl 22)
    lor (imm7 lsl 15) lor (reg rt2 lsl 10) lor (reg rn lsl 5) lor reg rt
  | Ldr_lit { size; rt; disp } ->
    let imm19 = scaled_signed ~what:"ldr literal" ~bits:19 ~scale:4 disp in
    ((match size with W -> 0b00 | X -> 0b01) lsl 30)
    lor (0b011000 lsl 24) lor (imm19 lsl 5) lor reg rt
  | Adr { rd; disp } ->
    if disp < -(1 lsl 20) || disp >= 1 lsl 20 then
      errf "adr displacement out of range: %d" disp;
    let v = disp land 0x1fffff in
    (0 lsl 31) lor ((v land 3) lsl 29) lor (0b10000 lsl 24)
    lor ((v lsr 2) lsl 5) lor reg rd
  | Adrp { rd; disp } ->
    if disp mod 4096 <> 0 then errf "adrp displacement not page-aligned: %d" disp;
    let pages = disp asr 12 in
    if pages < -(1 lsl 20) || pages >= 1 lsl 20 then
      errf "adrp displacement out of range: %d" disp;
    let v = pages land 0x1fffff in
    (1 lsl 31) lor ((v land 3) lsl 29) lor (0b10000 lsl 24)
    lor ((v lsr 2) lsl 5) lor reg rd
  | B { disp } ->
    (0b000101 lsl 26) lor scaled_signed ~what:"b" ~bits:26 ~scale:4 disp
  | Bl { target = Sym _ } ->
    (* Unrelocated call: imm26 left as zero; the linker fills it in. *)
    0b100101 lsl 26
  | Bl { target = Rel disp } ->
    (0b100101 lsl 26) lor scaled_signed ~what:"bl" ~bits:26 ~scale:4 disp
  | B_cond { cond; disp } ->
    (0b01010100 lsl 24)
    lor (scaled_signed ~what:"b.cond" ~bits:19 ~scale:4 disp lsl 5)
    lor cond_code cond
  | Blr r -> 0xD63F0000 lor (reg r lsl 5)
  | Br r -> 0xD61F0000 lor (reg r lsl 5)
  | Ret -> 0xD65F0000 lor (lr lsl 5)
  | Cbz { size; rt; disp } ->
    (sf size lsl 31) lor (0b0110100 lsl 24)
    lor (scaled_signed ~what:"cbz" ~bits:19 ~scale:4 disp lsl 5) lor reg rt
  | Cbnz { size; rt; disp } ->
    (sf size lsl 31) lor (0b0110101 lsl 24)
    lor (scaled_signed ~what:"cbnz" ~bits:19 ~scale:4 disp lsl 5) lor reg rt
  | Tbz { rt; bit; disp } | Tbnz { rt; bit; disp } ->
    if bit < 0 || bit > 63 then errf "tbz bit out of range: %d" bit;
    let op = match t with Tbz _ -> 0 | _ -> 1 in
    ((bit lsr 5) lsl 31) lor (0b011011 lsl 25) lor (op lsl 24)
    lor ((bit land 0x1f) lsl 19)
    lor (scaled_signed ~what:"tbz" ~bits:14 ~scale:4 disp lsl 5)
    lor reg rt
  | Nop -> 0xD503201F
  | Brk imm ->
    if imm < 0 || imm > 0xffff then errf "brk imm out of range: %d" imm;
    0xD4200000 lor (imm lsl 5)
  | Data w -> Int32.to_int w land 0xFFFFFFFF

(* ---- Byte-level helpers --------------------------------------------- *)

let word_to_bytes buf off w =
  Bytes.set_uint8 buf off (w land 0xff);
  Bytes.set_uint8 buf (off + 1) ((w lsr 8) land 0xff);
  Bytes.set_uint8 buf (off + 2) ((w lsr 16) land 0xff);
  Bytes.set_uint8 buf (off + 3) ((w lsr 24) land 0xff)

let word_of_bytes buf off =
  Bytes.get_uint8 buf off
  lor (Bytes.get_uint8 buf (off + 1) lsl 8)
  lor (Bytes.get_uint8 buf (off + 2) lsl 16)
  lor (Bytes.get_uint8 buf (off + 3) lsl 24)

(* Encode a whole instruction sequence into a fresh byte buffer. *)
let to_bytes instrs =
  let buf = Bytes.create (List.length instrs * instr_bytes) in
  List.iteri (fun i t -> word_to_bytes buf (i * instr_bytes) (encode t)) instrs;
  buf
