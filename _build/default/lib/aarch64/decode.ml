(* Decoder: the inverse of {!Encode} on the supported subset.

   A word that matches no pattern decodes to [Data w]. This mirrors the real
   disassembly hazard the paper describes in section 3.2: embedded data is
   indistinguishable from instructions at the byte level, which is exactly
   why LTBO needs the compilation-time embedded-data metadata. *)

open Isa

let sign_extend ~bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let field w ~lo ~len = (w lsr lo) land ((1 lsl len) - 1)

let size_of_sf = function 0 -> W | _ -> X

let decode w =
  let w = w land 0xFFFFFFFF in
  let data () = Data (Int32.of_int w) in
  if w = 0xD503201F then Nop
  else if w land 0xFFFFFC1F = 0xD63F0000 then Blr (field w ~lo:5 ~len:5)
  else if w land 0xFFFFFC1F = 0xD61F0000 then Br (field w ~lo:5 ~len:5)
  else if w = 0xD65F03C0 then Ret
  else if w land 0xFFE0001F = 0xD4200000 then Brk (field w ~lo:5 ~len:16)
  else if w land 0x7C000000 = 0x14000000 then begin
    (* B / BL *)
    let disp = sign_extend ~bits:26 (field w ~lo:0 ~len:26) * 4 in
    if field w ~lo:31 ~len:1 = 1 then Bl { target = Rel disp } else B { disp }
  end
  else if w land 0xFF000010 = 0x54000000 && field w ~lo:0 ~len:4 <> 15 then
    (* cond 0b1111 is the architecturally-reserved NV encoding; treat as
       data so decode/encode stay mutually inverse. *)
    B_cond
      { cond = cond_of_code (field w ~lo:0 ~len:4);
        disp = sign_extend ~bits:19 (field w ~lo:5 ~len:19) * 4 }
  else if w land 0x7E000000 = 0x34000000 then begin
    (* CBZ / CBNZ *)
    let size = size_of_sf (field w ~lo:31 ~len:1) in
    let rt = field w ~lo:0 ~len:5 in
    let disp = sign_extend ~bits:19 (field w ~lo:5 ~len:19) * 4 in
    if field w ~lo:24 ~len:1 = 0 then Cbz { size; rt; disp }
    else Cbnz { size; rt; disp }
  end
  else if w land 0x7E000000 = 0x36000000 then begin
    (* TBZ / TBNZ *)
    let bit = (field w ~lo:31 ~len:1 lsl 5) lor field w ~lo:19 ~len:5 in
    let rt = field w ~lo:0 ~len:5 in
    let disp = sign_extend ~bits:14 (field w ~lo:5 ~len:14) * 4 in
    if field w ~lo:24 ~len:1 = 0 then Tbz { rt; bit; disp }
    else Tbnz { rt; bit; disp }
  end
  else if w land 0x1F000000 = 0x10000000 then begin
    (* ADR / ADRP *)
    let rd = field w ~lo:0 ~len:5 in
    let v =
      sign_extend ~bits:21
        ((field w ~lo:5 ~len:19 lsl 2) lor field w ~lo:29 ~len:2)
    in
    if field w ~lo:31 ~len:1 = 0 then Adr { rd; disp = v }
    else Adrp { rd; disp = v * 4096 }
  end
  else if w land 0x3F000000 = 0x18000000 && field w ~lo:30 ~len:2 <= 1 then
    Ldr_lit
      { size = (if field w ~lo:30 ~len:2 = 0 then W else X);
        rt = field w ~lo:0 ~len:5;
        disp = sign_extend ~bits:19 (field w ~lo:5 ~len:19) * 4 }
  else if w land 0xBFC00000 = 0xB9400000 then begin
    (* LDR unsigned offset, W/X *)
    let size = if field w ~lo:30 ~len:1 = 1 then X else W in
    let scale = match size with W -> 4 | X -> 8 in
    Ldr
      { size;
        rt = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        imm = field w ~lo:10 ~len:12 * scale }
  end
  else if w land 0xBFC00000 = 0xB9000000 then begin
    (* STR unsigned offset, W/X *)
    let size = if field w ~lo:30 ~len:1 = 1 then X else W in
    let scale = match size with W -> 4 | X -> 8 in
    Str
      { size;
        rt = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        imm = field w ~lo:10 ~len:12 * scale }
  end
  else if w land 0x3E000000 = 0x28000000 && field w ~lo:30 ~len:1 = 0 then begin
    (* LDP / STP, post/pre/offset variants; opc must be 00 or 10 (the W/X
       forms) — 01 (ldpsw) and 11 are outside the subset. *)
    let mode =
      match field w ~lo:23 ~len:3 with
      | 0b001 -> Some Post
      | 0b011 -> Some Pre
      | 0b010 -> Some Offset
      | _ -> None
    in
    match mode with
    | None -> data ()
    | Some mode ->
      let size = if field w ~lo:31 ~len:1 = 1 then X else W in
      let scale = match size with W -> 4 | X -> 8 in
      let imm = sign_extend ~bits:7 (field w ~lo:15 ~len:7) * scale in
      let rt = field w ~lo:0 ~len:5
      and rt2 = field w ~lo:10 ~len:5
      and rn = field w ~lo:5 ~len:5 in
      if field w ~lo:22 ~len:1 = 1 then Ldp { size; rt; rt2; rn; imm; mode }
      else Stp { size; rt; rt2; rn; imm; mode }
  end
  else if w land 0x1F800000 = 0x11000000 then
    Add_sub_imm
      { op = (if field w ~lo:30 ~len:1 = 0 then ADD else SUB);
        size = size_of_sf (field w ~lo:31 ~len:1);
        set_flags = field w ~lo:29 ~len:1 = 1;
        rd = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        imm12 = field w ~lo:10 ~len:12;
        shift12 = field w ~lo:22 ~len:1 = 1 }
  else if w land 0x1FE00000 = 0x0B000000 && field w ~lo:10 ~len:6 = 0 then
    Add_sub_reg
      { op = (if field w ~lo:30 ~len:1 = 0 then ADD else SUB);
        size = size_of_sf (field w ~lo:31 ~len:1);
        set_flags = field w ~lo:29 ~len:1 = 1;
        rd = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        rm = field w ~lo:16 ~len:5 }
  else if w land 0x1FE00000 = 0x0A000000 && field w ~lo:10 ~len:6 = 0 then
    Logic_reg
      { op =
          (match field w ~lo:29 ~len:2 with
           | 0 -> AND | 1 -> ORR | 2 -> EOR | _ -> ANDS);
        size = size_of_sf (field w ~lo:31 ~len:1);
        rd = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        rm = field w ~lo:16 ~len:5 }
  else if w land 0x7FE0FC00 = 0x1AC00C00 then
    Sdiv
      { size = size_of_sf (field w ~lo:31 ~len:1);
        rd = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        rm = field w ~lo:16 ~len:5 }
  else if w land 0x7FE08000 = 0x1B008000 then
    Msub
      { size = size_of_sf (field w ~lo:31 ~len:1);
        rd = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        rm = field w ~lo:16 ~len:5;
        ra = field w ~lo:10 ~len:5 }
  else if w land 0x7FE08000 = 0x1B000000 && field w ~lo:10 ~len:5 = zr then
    (* MADD with ra = zr, i.e. plain MUL *)
    Mul
      { size = size_of_sf (field w ~lo:31 ~len:1);
        rd = field w ~lo:0 ~len:5;
        rn = field w ~lo:5 ~len:5;
        rm = field w ~lo:16 ~len:5 }
  else if field w ~lo:23 ~len:6 = 0b100101
          && not (field w ~lo:31 ~len:1 = 0 && field w ~lo:21 ~len:2 > 1)
  then begin
    (* Wide moves; 32-bit forms only allow hw in {0,1}. *)
    match field w ~lo:29 ~len:2 with
    | 0 | 2 | 3 ->
      Mov_wide
        { kind =
            (match field w ~lo:29 ~len:2 with
             | 0 -> MOVN | 2 -> MOVZ | _ -> MOVK);
          size = size_of_sf (field w ~lo:31 ~len:1);
          rd = field w ~lo:0 ~len:5;
          imm16 = field w ~lo:5 ~len:16;
          hw = field w ~lo:21 ~len:2 }
    | _ -> data ()
  end
  else data ()

(* Decode a whole code buffer into an instruction array (one entry per
   32-bit word). *)
let of_bytes buf =
  let n = Bytes.length buf / instr_bytes in
  Array.init n (fun i -> decode (Encode.word_of_bytes buf (i * instr_bytes)))
