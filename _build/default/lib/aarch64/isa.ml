(* A64 instruction subset used by the Calibro reproduction.

   The subset covers everything the DEX2OAT-style code generator emits:
   integer data processing, loads/stores (including register pairs and
   PC-relative literals), the full family of PC-relative branches the paper
   enumerates in section 3.3.4 (b, bl, cbz, cbnz, tbz, tbnz, adr, adrp,
   ldr-literal), indirect branches, and embedded data words. *)

type reg = int
(** General-purpose register number, 0..30. Register 31 is [sp] for
    address operands of loads/stores and add/sub, and [xzr]/[wzr]
    elsewhere, matching the architectural convention. *)

let x0 = 0
let x1 = 1
let x2 = 2
let x3 = 3
let x4 = 4
let x16 = 16
let x17 = 17
let x19 = 19
let x20 = 20
let x29 = 29
let lr = 30
let sp = 31
let zr = 31

type size = W | X  (** 32-bit ([W]) or 64-bit ([X]) operand size. *)

type cond =
  | EQ | NE | HS | LO | MI | PL | VS | VC
  | HI | LS | GE | LT | GT | LE | AL

let cond_code = function
  | EQ -> 0 | NE -> 1 | HS -> 2 | LO -> 3
  | MI -> 4 | PL -> 5 | VS -> 6 | VC -> 7
  | HI -> 8 | LS -> 9 | GE -> 10 | LT -> 11
  | GT -> 12 | LE -> 13 | AL -> 14

let cond_of_code = function
  | 0 -> EQ | 1 -> NE | 2 -> HS | 3 -> LO
  | 4 -> MI | 5 -> PL | 6 -> VS | 7 -> VC
  | 8 -> HI | 9 -> LS | 10 -> GE | 11 -> LT
  | 12 -> GT | 13 -> LE | _ -> AL

(* The condition that branches iff the given condition does not. *)
let invert_cond = function
  | EQ -> NE | NE -> EQ | HS -> LO | LO -> HS
  | MI -> PL | PL -> MI | VS -> VC | VC -> VS
  | HI -> LS | LS -> HI | GE -> LT | LT -> GE
  | GT -> LE | LE -> GT | AL -> AL

type as_op = ADD | SUB
(** Add/subtract; immediate and shifted-register forms. *)

type logic_op = AND | ORR | EOR | ANDS
(** Logical operations, shifted-register form only (bitmask immediates are
    out of scope for the subset). *)

type wide_kind = MOVZ | MOVN | MOVK

type addr_mode = Offset | Pre | Post
(** Addressing mode for load/store pair instructions. *)

type bl_target =
  | Sym of int   (** Unresolved symbol id; imm26 stays 0 until relocation. *)
  | Rel of int   (** Resolved byte displacement from this instruction. *)

type t =
  | Add_sub_imm of
      { op : as_op; size : size; set_flags : bool;
        rd : reg; rn : reg; imm12 : int; shift12 : bool }
  | Add_sub_reg of
      { op : as_op; size : size; set_flags : bool;
        rd : reg; rn : reg; rm : reg }
  | Logic_reg of
      { op : logic_op; size : size; rd : reg; rn : reg; rm : reg }
  | Mov_wide of
      { kind : wide_kind; size : size; rd : reg; imm16 : int; hw : int }
  | Mul of { size : size; rd : reg; rn : reg; rm : reg }
  | Sdiv of { size : size; rd : reg; rn : reg; rm : reg }
  | Msub of { size : size; rd : reg; rn : reg; rm : reg; ra : reg }
      (** rd = ra - rn * rm; used with sdiv to lower remainders. *)
  | Ldr of { size : size; rt : reg; rn : reg; imm : int }
      (** Unsigned scaled offset form; [imm] is the byte offset. *)
  | Str of { size : size; rt : reg; rn : reg; imm : int }
  | Ldp of
      { size : size; rt : reg; rt2 : reg; rn : reg;
        imm : int; mode : addr_mode }
  | Stp of
      { size : size; rt : reg; rt2 : reg; rn : reg;
        imm : int; mode : addr_mode }
  | Ldr_lit of { size : size; rt : reg; disp : int }
      (** PC-relative literal load; [disp] in bytes from this instruction. *)
  | Adr of { rd : reg; disp : int }
  | Adrp of { rd : reg; disp : int }
      (** [disp] is the byte distance between the target page base and this
          instruction's page base; a multiple of 4096. *)
  | B of { disp : int }
  | B_cond of { cond : cond; disp : int }
  | Bl of { target : bl_target }
  | Blr of reg
  | Br of reg
  | Ret
  | Cbz of { size : size; rt : reg; disp : int }
  | Cbnz of { size : size; rt : reg; disp : int }
  | Tbz of { rt : reg; bit : int; disp : int }
  | Tbnz of { rt : reg; bit : int; disp : int }
  | Nop
  | Brk of int
  | Data of int32  (** An embedded data word living inside the text. *)

let instr_bytes = 4

(* ---- Classification predicates ------------------------------------- *)

(* Paper section 3.2: instructions terminating a basic block. *)
let is_terminator = function
  | B _ | B_cond _ | Cbz _ | Cbnz _ | Tbz _ | Tbnz _ | Br _ | Ret -> true
  | _ -> false

let is_call = function Bl _ | Blr _ -> true | _ -> false

(* Paper section 3.3.4: b, bl, cbz, cbnz, tbz, tbnz, adr, adrp, ldr(lit). *)
let is_pc_relative = function
  | B _ | B_cond _ | Cbz _ | Cbnz _ | Tbz _ | Tbnz _
  | Adr _ | Adrp _ | Ldr_lit _ -> true
  | Bl { target = Rel _ } -> true
  | Bl { target = Sym _ } -> false (* relocated by the linker, not patched *)
  | _ -> false

let is_indirect_jump = function Br _ -> true | _ -> false

(* Displacement of a PC-relative instruction, in bytes from the
   instruction's own address. *)
let pc_rel_disp = function
  | B { disp } | B_cond { disp; _ } | Cbz { disp; _ } | Cbnz { disp; _ }
  | Tbz { disp; _ } | Tbnz { disp; _ } | Adr { disp; _ }
  | Adrp { disp; _ } | Ldr_lit { disp; _ } -> Some disp
  | Bl { target = Rel disp } -> Some disp
  | _ -> None

let with_pc_rel_disp t disp =
  match t with
  | B _ -> B { disp }
  | B_cond b -> B_cond { b with disp }
  | Cbz b -> Cbz { b with disp }
  | Cbnz b -> Cbnz { b with disp }
  | Tbz b -> Tbz { b with disp }
  | Tbnz b -> Tbnz { b with disp }
  | Adr b -> Adr { b with disp }
  | Adrp b -> Adrp { b with disp }
  | Ldr_lit b -> Ldr_lit { b with disp }
  | Bl { target = Rel _ } -> Bl { target = Rel disp }
  | _ -> invalid_arg "Isa.with_pc_rel_disp: not PC-relative"

(* Registers read / written, for LR-liveness tracking during codegen. *)
let reads t =
  match t with
  | Add_sub_imm { rn; _ } -> [ rn ]
  | Add_sub_reg { rn; rm; _ } | Logic_reg { rn; rm; _ }
  | Mul { rn; rm; _ } | Sdiv { rn; rm; _ } -> [ rn; rm ]
  | Msub { rn; rm; ra; _ } -> [ rn; rm; ra ]
  | Mov_wide { kind = MOVK; rd; _ } -> [ rd ]
  | Mov_wide _ -> []
  | Ldr { rn; _ } -> [ rn ]
  | Str { rt; rn; _ } -> [ rt; rn ]
  | Ldp { rn; _ } -> [ rn ]
  | Stp { rt; rt2; rn; _ } -> [ rt; rt2; rn ]
  | Ldr_lit _ | Adr _ | Adrp _ | B _ | B_cond _ | Bl _ | Nop | Brk _
  | Data _ -> []
  | Blr r | Br r -> [ r ]
  | Ret -> [ lr ]
  | Cbz { rt; _ } | Cbnz { rt; _ } | Tbz { rt; _ } | Tbnz { rt; _ } -> [ rt ]

let writes t =
  match t with
  | Add_sub_imm { rd; set_flags; _ } | Add_sub_reg { rd; set_flags; _ } ->
    if set_flags && rd = zr then [] else [ rd ]
  | Logic_reg { rd; _ } | Mov_wide { rd; _ } | Mul { rd; _ }
  | Sdiv { rd; _ } | Msub { rd; _ } -> [ rd ]
  | Ldr { rt; _ } | Ldr_lit { rt; _ } -> [ rt ]
  | Ldp { rt; rt2; _ } -> [ rt; rt2 ]
  | Adr { rd; _ } | Adrp { rd; _ } -> [ rd ]
  | Bl _ | Blr _ -> [ lr ]
  | Str _ | Stp _ | B _ | B_cond _ | Br _ | Ret | Cbz _ | Cbnz _ | Tbz _
  | Tbnz _ | Nop | Brk _ | Data _ -> []

let reads_lr t = List.mem lr (reads t)
let writes_lr t = List.mem lr (writes t)

(* ---- Convenience builders (codegen templates use these) ------------- *)

let mov_imm ~size rd imm = Mov_wide { kind = MOVZ; size; rd; imm16 = imm land 0xffff; hw = 0 }
let mov_reg ~size rd rm = Logic_reg { op = ORR; size; rd; rn = zr; rm }
let add ~size rd rn imm12 =
  Add_sub_imm { op = ADD; size; set_flags = false; rd; rn; imm12; shift12 = false }
let sub ~size rd rn imm12 =
  Add_sub_imm { op = SUB; size; set_flags = false; rd; rn; imm12; shift12 = false }
let cmp_imm ~size rn imm12 =
  Add_sub_imm { op = SUB; size; set_flags = true; rd = zr; rn; imm12; shift12 = false }
let cmp_reg ~size rn rm =
  Add_sub_reg { op = SUB; size; set_flags = true; rd = zr; rn; rm }

(* The three ART-specific patterns of Figure 4. *)

(* Figure 4a: the Java function calling pattern (tail of the sequence). *)
let java_call_pattern ~entry_offset =
  [ Ldr { size = X; rt = lr; rn = x0; imm = entry_offset }; Blr lr ]

(* Figure 4b: the ART native (runtime) function calling pattern. *)
let runtime_call_pattern ~fn_offset =
  [ Ldr { size = X; rt = lr; rn = x19; imm = fn_offset }; Blr lr ]

(* Figure 4c: the stack overflow checking pattern. *)
let stack_check_pattern =
  [ Add_sub_imm
      { op = SUB; size = X; set_flags = false; rd = x16; rn = sp;
        imm12 = 2; shift12 = true (* 0x2000 = 2 << 12 *) };
    Ldr { size = W; rt = zr; rn = x16; imm = 0 } ]
