(* Patching PC-relative immediates inside encoded words (paper §3.3.4).

   All LTBO rewriting happens on the binary: a patch decodes the 32-bit
   word, substitutes the new displacement, and re-encodes, failing loudly if
   the new displacement does not fit the immediate field. *)

exception Not_pc_relative of int

(* Re-encode [word] so that its PC-relative displacement becomes [disp]
   bytes. Raises [Not_pc_relative] if the word is not a PC-relative
   instruction and [Encode.Error] if [disp] does not fit. *)
let patch_word word ~disp =
  let instr = Decode.decode word in
  match Isa.pc_rel_disp instr with
  | None -> raise (Not_pc_relative word)
  | Some _ -> Encode.encode (Isa.with_pc_rel_disp instr disp)

(* Read the current displacement of the PC-relative instruction encoded at
   [off] in [buf]. *)
let read_disp buf ~off =
  let word = Encode.word_of_bytes buf off in
  match Isa.pc_rel_disp (Decode.decode word) with
  | None -> raise (Not_pc_relative word)
  | Some d -> d

(* Patch the instruction at byte offset [off] in [buf] in place so that its
   displacement becomes [disp]. *)
let patch_bytes buf ~off ~disp =
  let word = Encode.word_of_bytes buf off in
  Encode.word_to_bytes buf off (patch_word word ~disp)

(* Relocate an unlinked [bl] at [off] to target absolute offset [target]
   (both relative to the same base as [off]). *)
let relocate_bl buf ~off ~target = patch_bytes buf ~off ~disp:(target - off)
