(** Patching PC-relative immediates inside encoded words (paper section
    3.3.4). All rewriting happens on the binary: decode the 32-bit word,
    substitute the displacement, re-encode. *)

exception Not_pc_relative of int
(** The word does not encode a PC-relative instruction. *)

val patch_word : int -> disp:int -> int
(** Re-encode [word] with a new byte displacement.
    @raise Not_pc_relative if the word is not PC-relative.
    @raise Encode.Error if [disp] does not fit the immediate field. *)

val read_disp : bytes -> off:int -> int
(** Current displacement of the PC-relative instruction at byte [off]. *)

val patch_bytes : bytes -> off:int -> disp:int -> unit
(** In-place variant of {!patch_word}. *)

val relocate_bl : bytes -> off:int -> target:int -> unit
(** Bind the [bl] at [off] to the absolute offset [target] (both relative
    to the same base): the linker's call relocation. *)
