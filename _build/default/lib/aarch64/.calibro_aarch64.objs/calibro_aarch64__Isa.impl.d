lib/aarch64/isa.ml: List
