lib/aarch64/disasm.ml: Buffer Bytes Decode Encode Isa Printf
