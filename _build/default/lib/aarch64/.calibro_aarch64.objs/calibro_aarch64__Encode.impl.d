lib/aarch64/encode.ml: Bytes Fmt Int32 Isa List
