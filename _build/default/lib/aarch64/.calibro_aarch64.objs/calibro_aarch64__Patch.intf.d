lib/aarch64/patch.mli:
