lib/aarch64/patch.ml: Decode Encode Isa
