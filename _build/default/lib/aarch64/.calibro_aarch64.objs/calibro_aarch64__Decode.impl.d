lib/aarch64/decode.ml: Array Bytes Encode Int32 Isa Sys
