(* Textual disassembly, in a format close to what the paper's listings use
   (e.g. Table 2: "cbz w0, #+0xc (addr 0x13832c)"). *)

open Isa

let reg_name ~size ~sp_ctx r =
  let prefix = match size with W -> "w" | X -> "x" in
  if r = 31 then (if sp_ctx then "sp" else prefix ^ "zr")
  else Printf.sprintf "%s%d" prefix r

let xreg ?(sp_ctx = false) r = reg_name ~size:X ~sp_ctx r
let reg ~size r = reg_name ~size ~sp_ctx:false r

let cond_name = function
  | EQ -> "eq" | NE -> "ne" | HS -> "hs" | LO -> "lo"
  | MI -> "mi" | PL -> "pl" | VS -> "vs" | VC -> "vc"
  | HI -> "hi" | LS -> "ls" | GE -> "ge" | LT -> "lt"
  | GT -> "gt" | LE -> "le" | AL -> "al"

let disp_str ~addr disp =
  let signed = Printf.sprintf "#%s%#x" (if disp < 0 then "-" else "+") (abs disp) in
  if addr < 0 then signed
  else Printf.sprintf "%s (addr %#x)" signed (addr + disp)

(* Render one instruction. [addr] is its address, used to print absolute
   branch targets; pass a negative address to omit them. *)
let to_string ?(addr = -1) t =
  match t with
  | Add_sub_imm { op; size; set_flags; rd; rn; imm12; shift12 } ->
    let imm = if shift12 then imm12 lsl 12 else imm12 in
    let mnem =
      match (op, set_flags) with
      | ADD, false -> "add" | ADD, true -> "adds"
      | SUB, false -> "sub" | SUB, true -> "subs"
    in
    if set_flags && rd = zr then
      Printf.sprintf "cmp %s, #%#x" (reg_name ~size ~sp_ctx:true rn) imm
    else
      Printf.sprintf "%s %s, %s, #%#x" mnem
        (reg_name ~size ~sp_ctx:true rd)
        (reg_name ~size ~sp_ctx:true rn)
        imm
  | Add_sub_reg { op; size; set_flags; rd; rn; rm } ->
    let mnem =
      match (op, set_flags) with
      | ADD, false -> "add" | ADD, true -> "adds"
      | SUB, false -> "sub" | SUB, true -> "subs"
    in
    if set_flags && rd = zr then
      Printf.sprintf "cmp %s, %s" (reg ~size rn) (reg ~size rm)
    else
      Printf.sprintf "%s %s, %s, %s" mnem (reg ~size rd) (reg ~size rn)
        (reg ~size rm)
  | Logic_reg { op; size; rd; rn; rm } ->
    if op = ORR && rn = zr then
      Printf.sprintf "mov %s, %s" (reg ~size rd) (reg ~size rm)
    else
      let mnem =
        match op with
        | AND -> "and" | ORR -> "orr" | EOR -> "eor" | ANDS -> "ands"
      in
      Printf.sprintf "%s %s, %s, %s" mnem (reg ~size rd) (reg ~size rn)
        (reg ~size rm)
  | Mov_wide { kind; size; rd; imm16; hw } ->
    let mnem =
      match kind with MOVZ -> "movz" | MOVN -> "movn" | MOVK -> "movk"
    in
    if hw = 0 then Printf.sprintf "%s %s, #%#x" mnem (reg ~size rd) imm16
    else
      Printf.sprintf "%s %s, #%#x, lsl #%d" mnem (reg ~size rd) imm16 (hw * 16)
  | Mul { size; rd; rn; rm } ->
    Printf.sprintf "mul %s, %s, %s" (reg ~size rd) (reg ~size rn)
      (reg ~size rm)
  | Sdiv { size; rd; rn; rm } ->
    Printf.sprintf "sdiv %s, %s, %s" (reg ~size rd) (reg ~size rn)
      (reg ~size rm)
  | Msub { size; rd; rn; rm; ra } ->
    Printf.sprintf "msub %s, %s, %s, %s" (reg ~size rd) (reg ~size rn)
      (reg ~size rm) (reg ~size ra)
  | Ldr { size; rt; rn; imm } ->
    if imm = 0 then
      Printf.sprintf "ldr %s, [%s]" (reg ~size rt) (xreg ~sp_ctx:true rn)
    else
      Printf.sprintf "ldr %s, [%s, #%d]" (reg ~size rt)
        (xreg ~sp_ctx:true rn) imm
  | Str { size; rt; rn; imm } ->
    if imm = 0 then
      Printf.sprintf "str %s, [%s]" (reg ~size rt) (xreg ~sp_ctx:true rn)
    else
      Printf.sprintf "str %s, [%s, #%d]" (reg ~size rt)
        (xreg ~sp_ctx:true rn) imm
  | Ldp { size; rt; rt2; rn; imm; mode } | Stp { size; rt; rt2; rn; imm; mode }
    ->
    let mnem = match t with Ldp _ -> "ldp" | _ -> "stp" in
    let base = xreg ~sp_ctx:true rn in
    let addr_s =
      match mode with
      | Offset ->
        if imm = 0 then Printf.sprintf "[%s]" base
        else Printf.sprintf "[%s, #%d]" base imm
      | Pre -> Printf.sprintf "[%s, #%d]!" base imm
      | Post -> Printf.sprintf "[%s], #%d" base imm
    in
    Printf.sprintf "%s %s, %s, %s" mnem (reg ~size rt) (reg ~size rt2) addr_s
  | Ldr_lit { size; rt; disp } ->
    Printf.sprintf "ldr %s, %s" (reg ~size rt) (disp_str ~addr disp)
  | Adr { rd; disp } -> Printf.sprintf "adr %s, %s" (xreg rd) (disp_str ~addr disp)
  | Adrp { rd; disp } ->
    Printf.sprintf "adrp %s, %s" (xreg rd) (disp_str ~addr disp)
  | B { disp } -> Printf.sprintf "b %s" (disp_str ~addr disp)
  | B_cond { cond; disp } ->
    Printf.sprintf "b.%s %s" (cond_name cond) (disp_str ~addr disp)
  | Bl { target = Sym s } -> Printf.sprintf "bl <sym %d>" s
  | Bl { target = Rel disp } -> Printf.sprintf "bl %s" (disp_str ~addr disp)
  | Blr r -> Printf.sprintf "blr %s" (xreg r)
  | Br r -> Printf.sprintf "br %s" (xreg r)
  | Ret -> "ret"
  | Cbz { size; rt; disp } ->
    Printf.sprintf "cbz %s, %s" (reg ~size rt) (disp_str ~addr disp)
  | Cbnz { size; rt; disp } ->
    Printf.sprintf "cbnz %s, %s" (reg ~size rt) (disp_str ~addr disp)
  | Tbz { rt; bit; disp } ->
    Printf.sprintf "tbz %s, #%d, %s" (xreg rt) bit (disp_str ~addr disp)
  | Tbnz { rt; bit; disp } ->
    Printf.sprintf "tbnz %s, #%d, %s" (xreg rt) bit (disp_str ~addr disp)
  | Nop -> "nop"
  | Brk imm -> Printf.sprintf "brk #%#x" imm
  | Data w -> Printf.sprintf ".word %#lx" w

(* Disassemble a code buffer; one line per word, paper-listing style. *)
let dump ?(base = 0) buf =
  let b = Buffer.create 1024 in
  let n = Bytes.length buf / instr_bytes in
  for i = 0 to n - 1 do
    let off = i * instr_bytes in
    let addr = base + off in
    let instr = Decode.decode (Encode.word_of_bytes buf off) in
    Buffer.add_string b (Printf.sprintf "%#x: %s\n" addr (to_string ~addr instr))
  done;
  Buffer.contents b
