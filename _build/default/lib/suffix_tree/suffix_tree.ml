(* Ukkonen's on-line suffix tree construction over integer sequences
   (paper section 2.1.2; Ukkonen 1995). O(n) time and space.

   The element domain is OCaml [int]. Calibro maps each machine instruction
   to an integer (its 32-bit encoding, or a unique separator for
   terminators/PC-relative instructions, see {!Calibro_core.Seq_map});
   separators occur exactly once in the input, so no repeated substring can
   ever contain one — which is how the paper confines repeats to basic
   blocks. A reserved terminal symbol is appended internally; inputs must
   not contain it. *)

let terminal = min_int
(** Reserved end-of-sequence sentinel (the "$" of Figure 1). *)

type node = {
  id : int;
  mutable start : int;  (** start index of the incoming edge label *)
  mutable end_ : int ref;
      (** one past the last index; leaves share the global end *)
  mutable suffix_link : node option;
  children : (int, node) Hashtbl.t;
  mutable suffix_index : int;  (** for leaves: suffix start position; -1 otherwise *)
}

type t = {
  text : int array;  (** input plus terminal sentinel *)
  root : node;
  n_nodes : int;
}

let text t = t.text
let input_length t = Array.length t.text - 1
let node_count t = t.n_nodes

let edge_length node = !(node.end_) - node.start

let build input =
  Array.iter
    (fun x -> if x = terminal then invalid_arg "Suffix_tree.build: input contains the reserved terminal")
    input;
  let text = Array.append input [| terminal |] in
  let n = Array.length text in
  let next_id = ref 0 in
  let mk_node ~start ~end_ =
    let node =
      { id = !next_id; start; end_; suffix_link = None;
        children = Hashtbl.create 4; suffix_index = -1 }
    in
    incr next_id;
    node
  in
  let root = mk_node ~start:(-1) ~end_:(ref (-1)) in
  let global_end = ref 0 in
  let active_node = ref root in
  let active_edge = ref 0 (* index into [text] of the edge's first symbol *) in
  let active_length = ref 0 in
  let remaining = ref 0 in
  for i = 0 to n - 1 do
    global_end := i + 1;
    incr remaining;
    let last_new_node = ref None in
    let continue_phase = ref true in
    while !remaining > 0 && !continue_phase do
      if !active_length = 0 then active_edge := i;
      match Hashtbl.find_opt !active_node.children text.(!active_edge) with
      | None ->
        (* Rule 2: no edge starts with text.(i) here; add a leaf. *)
        let leaf = mk_node ~start:i ~end_:global_end in
        Hashtbl.replace !active_node.children text.(!active_edge) leaf;
        (match !last_new_node with
         | Some internal ->
           internal.suffix_link <- Some !active_node;
           last_new_node := None
         | None -> ());
        decr remaining;
        if !active_node == root && !active_length > 0 then begin
          decr active_length;
          active_edge := i - !remaining + 1
        end
        else if !active_node != root then
          active_node :=
            (match !active_node.suffix_link with
             | Some l -> l
             | None -> root)
      | Some next ->
        let el = edge_length next in
        if !active_length >= el then begin
          (* Walk down (skip/count trick). *)
          active_node := next;
          active_edge := !active_edge + el;
          active_length := !active_length - el
        end
        else if text.(next.start + !active_length) = text.(i) then begin
          (* Rule 3: already present; extend the active point and stop. *)
          (match !last_new_node with
           | Some internal ->
             internal.suffix_link <- Some !active_node;
             last_new_node := None
           | None -> ());
          incr active_length;
          continue_phase := false
        end
        else begin
          (* Rule 2 with split. *)
          let split = mk_node ~start:next.start ~end_:(ref (next.start + !active_length)) in
          Hashtbl.replace !active_node.children text.(!active_edge) split;
          next.start <- next.start + !active_length;
          Hashtbl.replace split.children text.(next.start) next;
          let leaf = mk_node ~start:i ~end_:global_end in
          Hashtbl.replace split.children text.(i) leaf;
          (match !last_new_node with
           | Some internal -> internal.suffix_link <- Some split
           | None -> ());
          last_new_node := Some split;
          decr remaining;
          if !active_node == root && !active_length > 0 then begin
            decr active_length;
            active_edge := i - !remaining + 1
          end
          else if !active_node != root then
            active_node :=
              (match !active_node.suffix_link with
               | Some l -> l
               | None -> root)
        end
    done
  done;
  (* Set suffix indices by depth-first traversal. *)
  let rec assign node depth =
    if Hashtbl.length node.children = 0 then node.suffix_index <- n - depth
    else
      Hashtbl.iter
        (fun _ child -> assign child (depth + edge_length child))
        node.children
  in
  Hashtbl.iter (fun _ c -> assign c (edge_length c)) root.children;
  { text; root; n_nodes = !next_id }

(* ---- Queries --------------------------------------------------------- *)

(* Walk from the root along [pattern]; return the landing point. *)
let walk t pattern =
  let m = Array.length pattern in
  let rec go node i =
    if i >= m then Some (node, i)
    else
      match Hashtbl.find_opt node.children pattern.(i) with
      | None -> None
      | Some child ->
        let el = edge_length child in
        let rec scan j =
          if j >= el || i + j >= m then Some j
          else if t.text.(child.start + j) = pattern.(i + j) then scan (j + 1)
          else None
        in
        (match scan 0 with
         | None -> None
         | Some j -> if i + j >= m then Some (child, i + j) else go child (i + j))
  in
  if m = 0 then Some (t.root, 0) else go t.root 0

let contains t pattern = walk t pattern <> None

let rec leaves_under node acc =
  if Hashtbl.length node.children = 0 then node.suffix_index :: acc
  else Hashtbl.fold (fun _ c acc -> leaves_under c acc) node.children acc

(* All start positions at which [pattern] occurs in the input. *)
let occurrences t pattern =
  match walk t pattern with
  | None -> []
  | Some (node, _) -> List.sort compare (leaves_under node [])

let count_occurrences t pattern = List.length (occurrences t pattern)

(* ---- Repeats (paper section 2.1.2 / 2.2 step 3) ---------------------- *)

type repeat = {
  length : int;      (** number of elements in the repeated sequence *)
  positions : int list;  (** sorted start positions (may overlap) *)
}

(* Fold over every right-maximal repeated substring: each internal node
   (other than the root) with >= 2 transitively descendant leaves yields a
   repeat whose length is the node's string depth and whose occurrence
   positions are the suffix indices of its descendant leaves. [min_length]
   and [max_length] prune the traversal. *)
let fold_repeats ?(min_length = 1) ?(max_length = max_int) t ~init ~f =
  let acc = ref init in
  (* Returns the leaf positions under the node. *)
  let rec visit node depth =
    if Hashtbl.length node.children = 0 then [ node.suffix_index ]
    else begin
      let positions =
        Hashtbl.fold
          (fun _ child acc -> List.rev_append (visit child (depth + edge_length child)) acc)
          node.children []
      in
      if node != t.root && depth >= min_length && depth <= max_length
         && List.compare_length_with positions 2 >= 0
      then begin
        let repeat = { length = depth; positions = List.sort compare positions } in
        acc := f !acc repeat
      end;
      positions
    end
  in
  ignore (visit t.root 0);
  !acc

let repeats ?min_length ?max_length t =
  fold_repeats ?min_length ?max_length t ~init:[] ~f:(fun acc r -> r :: acc)

(* Drop overlapping occurrences, keeping the leftmost of each overlapping
   cluster (paper section 2.1.2: "a small modification should be applied to
   selectively skip such ones"). Positions must be sorted ascending. *)
let non_overlapping ~length positions =
  let rec go last acc = function
    | [] -> List.rev acc
    | p :: rest ->
      if p >= last then go (p + length) (p :: acc) rest else go last acc rest
  in
  go min_int [] positions

(* ---- Statistics ------------------------------------------------------ *)

type stats = { nodes : int; internal : int; leaves : int; max_depth : int }

let stats t =
  let internal = ref 0 and leaves = ref 0 and max_depth = ref 0 in
  let rec visit node depth =
    if depth > !max_depth then max_depth := depth;
    if Hashtbl.length node.children = 0 then incr leaves
    else begin
      if node != t.root then incr internal;
      Hashtbl.iter (fun _ c -> visit c (depth + edge_length c)) node.children
    end
  in
  visit t.root 0;
  { nodes = t.n_nodes; internal = !internal; leaves = !leaves;
    max_depth = !max_depth }
