(** Ukkonen suffix trees over integer sequences (paper section 2.1.2).

    Construction is O(n) time and space in the input length. Calibro maps
    machine instructions to integers and assigns every terminator /
    PC-relative instruction / call a globally unique "separator" integer;
    because a separator occurs exactly once, no repeated substring can
    contain one, which confines repeats to basic blocks as section 3.3.2
    requires. *)

type t
(** A suffix tree built from one integer sequence. *)

val terminal : int
(** Reserved end-of-sequence sentinel (the "$" of the paper's Figure 1);
    inputs must not contain it. *)

val build : int array -> t
(** [build input] constructs the tree with Ukkonen's on-line algorithm.
    @raise Invalid_argument if the input contains {!terminal}. *)

val text : t -> int array
(** The input with the terminal sentinel appended. *)

val input_length : t -> int
(** Length of the original input. *)

val node_count : t -> int

val contains : t -> int array -> bool
(** Substring query in O(pattern length). *)

val occurrences : t -> int array -> int list
(** All start positions of the pattern, sorted ascending. *)

val count_occurrences : t -> int array -> int

type repeat = {
  length : int;  (** number of elements in the repeated sequence *)
  positions : int list;  (** sorted start positions; may overlap *)
}

val fold_repeats :
  ?min_length:int ->
  ?max_length:int ->
  t ->
  init:'a ->
  f:('a -> repeat -> 'a) ->
  'a
(** Fold over every right-maximal repeated substring: each internal node
    with at least two descendant leaves yields a repeat whose [length] is
    the node's string depth (paper section 2.1.2). *)

val repeats : ?min_length:int -> ?max_length:int -> t -> repeat list

val non_overlapping : length:int -> int list -> int list
(** Greedy left-to-right filter dropping occurrences that overlap an
    already-kept one (the paper's "small modification" for overlapping
    repeats like "ana" in "banana"). Positions must be sorted. *)

type stats = { nodes : int; internal : int; leaves : int; max_depth : int }

val stats : t -> stats
