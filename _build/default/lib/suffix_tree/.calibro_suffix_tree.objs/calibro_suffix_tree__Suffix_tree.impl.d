lib/suffix_tree/suffix_tree.ml: Array Hashtbl List
