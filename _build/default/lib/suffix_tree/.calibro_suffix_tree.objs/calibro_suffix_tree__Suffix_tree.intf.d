lib/suffix_tree/suffix_tree.mli:
