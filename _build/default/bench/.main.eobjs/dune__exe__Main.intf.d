bench/main.mli:
