bench/main.ml: Array Calibro_workload Harness List Micro Sys
