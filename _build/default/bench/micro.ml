(* Bechamel micro-benchmarks: one Test.make per table, covering the hot
   kernel behind each experiment. Run with `bench/main.exe bechamel`. *)

open Bechamel
open Toolkit
open Calibro_core
open Calibro_workload
open Calibro_suffix_tree

let demo_app = lazy (Appgen.generate Apps.demo)

let demo_baseline =
  lazy
    (let a = Lazy.force demo_app in
     Pipeline.build ~config:Config.baseline a.Appgen.app)

let demo_seq =
  lazy (Redundancy.sequence_of_oat (Lazy.force demo_baseline).Pipeline.b_oat)

(* Table 1: suffix-tree construction (Ukkonen) over the demo app's code. *)
let test_tree_build =
  Test.make ~name:"table1/suffix_tree_build"
    (Staged.stage (fun () ->
         let seq = Lazy.force demo_seq in
         ignore (Suffix_tree.build seq)))

(* Figure 3: repeat enumeration. *)
let test_repeats =
  let tree = lazy (Suffix_tree.build (Lazy.force demo_seq)) in
  Test.make ~name:"fig3/repeat_enumeration"
    (Staged.stage (fun () ->
         ignore (Suffix_tree.repeats ~min_length:2 ~max_length:64 (Lazy.force tree))))

(* Table 2: PC-relative patching of a single word. *)
let test_patch =
  let word =
    Calibro_aarch64.Encode.encode
      (Calibro_aarch64.Isa.B_cond { cond = Calibro_aarch64.Isa.NE; disp = 0x100 })
  in
  Test.make ~name:"table2/patch_word"
    (Staged.stage (fun () ->
         ignore (Calibro_aarch64.Patch.patch_word word ~disp:0x80)))

(* Table 4: full LTBO over the demo app's compiled methods. *)
let test_ltbo =
  let compiled =
    lazy
      (let a = Lazy.force demo_app in
       let methods = Calibro_dex.Dex_ir.methods_of_apk a.Appgen.app in
       let slots = Hashtbl.create 64 in
       List.iteri
         (fun i (m : Calibro_dex.Dex_ir.meth) -> Hashtbl.replace slots m.name i)
         methods;
       List.map
         (fun m ->
           Calibro_codegen.Codegen.compile
             ~slot_of_method:(Hashtbl.find slots)
             (Calibro_hgraph.Hgraph.of_method m))
         methods)
  in
  Test.make ~name:"table4/ltbo_run"
    (Staged.stage (fun () -> ignore (Ltbo.run (Lazy.force compiled))))

(* Table 5/7: VM execution of one entry method. *)
let test_vm =
  let setup =
    lazy
      (let a = Lazy.force demo_app in
       let b = Lazy.force demo_baseline in
       let entry = List.hd a.Appgen.app_script in
       (b.Pipeline.b_oat, entry))
  in
  Test.make ~name:"table5_7/vm_entry_call"
    (Staged.stage (fun () ->
         let oat, (st : Appgen.script_step) = Lazy.force setup in
         let t = Calibro_vm.Interp.load oat in
         ignore (Calibro_vm.Interp.call t st.Appgen.sc_method st.Appgen.sc_args)))

(* Table 6: dex2oat codegen of the demo app (the baseline build). *)
let test_build =
  Test.make ~name:"table6/dex2oat_baseline"
    (Staged.stage (fun () ->
         let a = Lazy.force demo_app in
         ignore (Pipeline.build ~config:Config.baseline a.Appgen.app)))

let benchmark () =
  let tests =
    [ test_tree_build; test_repeats; test_patch; test_ltbo; test_vm;
      test_build ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 200) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-32s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        results)
    tests
