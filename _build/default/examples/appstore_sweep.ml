(* The six-app sweep: build every evaluation app under each configuration
   and print the code-size matrix (a quick version of the full benchmark's
   Table 4).

   Run with: dune exec examples/appstore_sweep.exe *)

open Calibro_core
open Calibro_workload

let () =
  Printf.printf "%-9s %10s %10s %10s %10s | %8s %8s %8s\n" "app" "baseline"
    "cto" "cto+ltbo" "+plopti" "cto%" "ltbo%" "plopti%";
  List.iter
    (fun profile ->
      let a = Appgen.generate profile in
      let apk = a.Appgen.app in
      let base = Pipeline.build ~config:Config.baseline apk in
      let cto = Pipeline.build ~config:Config.cto apk in
      let ltbo = Pipeline.build ~config:Config.cto_ltbo apk in
      let pl = Pipeline.build ~config:(Config.cto_ltbo_pl ~k:8 ()) apk in
      let r b = 100.0 *. Pipeline.reduction_vs ~baseline:base b in
      Printf.printf "%-9s %9dB %9dB %9dB %9dB | %7.2f%% %7.2f%% %7.2f%%\n%!"
        apk.Calibro_dex.Dex_ir.apk_name
        (Pipeline.text_size base) (Pipeline.text_size cto)
        (Pipeline.text_size ltbo) (Pipeline.text_size pl)
        (r cto) (r ltbo) (r pl))
    Apps.all
