(* Quickstart: compile a small program with and without Calibro, compare
   the text-segment sizes, then execute both builds in the simulator and
   check they behave identically.

   Run with: dune exec examples/quickstart.exe *)

open Calibro_core

(* A tiny app with obvious redundancy: the same formula re-implemented in
   four utility methods. *)
let source =
  {|
.apk quickstart
.dex classes01
.class demo.Util
.method f0 params #2 regs #6
  add v2, v0, v1
  mul v3, v2, v2
  sub v4, v3, v2
  xor v5, v4, v0
  return v5
.end
.method f1 params #2 regs #6
  add v2, v0, v1
  mul v3, v2, v2
  sub v4, v3, v2
  xor v5, v4, v1
  return v5
.end
.method f2 params #2 regs #6
  add v2, v0, v1
  mul v3, v2, v2
  sub v4, v3, v2
  xor v5, v4, v2
  return v5
.end
.method f3 params #2 regs #6
  add v2, v0, v1
  mul v3, v2, v2
  sub v4, v3, v2
  xor v5, v4, v3
  return v5
.end
.class demo.Main
.method main params #2 regs #4 entry
  invoke demo.Util.f0 (v0, v1) -> v2
  rtcall pLogValue (v2)
  invoke demo.Util.f1 (v0, v1) -> v3
  rtcall pLogValue (v3)
  invoke demo.Util.f2 (v0, v1) -> v3
  add v2, v2, v3
  invoke demo.Util.f3 (v0, v1) -> v3
  add v2, v2, v3
  return v2
.end
|}

let () =
  let apk =
    match Calibro_dex.Dex_text.parse source with
    | Ok apk -> apk
    | Error e -> failwith e
  in
  let baseline = Pipeline.build ~config:Config.baseline apk in
  let calibro = Pipeline.build ~config:Config.cto_ltbo apk in
  Printf.printf "baseline text: %4d bytes\n" (Pipeline.text_size baseline);
  Printf.printf "calibro  text: %4d bytes (%.1f%% smaller)\n"
    (Pipeline.text_size calibro)
    (100.0 *. Pipeline.reduction_vs ~baseline calibro);
  (match calibro.Pipeline.b_ltbo_stats with
   | Some s ->
     Printf.printf "outlined %d functions covering %d occurrences\n"
       s.Ltbo.s_outlined_functions s.Ltbo.s_occurrences_replaced
   | None -> ());
  (* Differential execution: both builds must agree. *)
  let run (b : Pipeline.build) =
    let t = Calibro_vm.Interp.load b.Pipeline.b_oat in
    let outcome =
      Calibro_vm.Interp.call t
        { Calibro_dex.Dex_ir.class_name = "demo.Main"; method_name = "main" }
        [ 6; 7 ]
    in
    (outcome, Calibro_vm.Interp.log t)
  in
  let (o1, l1) = run baseline and (o2, l2) = run calibro in
  (match (o1, o2) with
   | Calibro_vm.Interp.Returned a, Calibro_vm.Interp.Returned b when a = b ->
     Printf.printf "both builds returned %d with log %s -- identical\n" a
       (String.concat "," (List.map string_of_int l1))
   | _ -> failwith "builds disagree!");
  assert (l1 = l2)
