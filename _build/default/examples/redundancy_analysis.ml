(* The section 2.2 study: measure the code redundancy of a baseline OAT
   with the suffix-tree analysis, reproducing the Table 1 / Figure 3 /
   Figure 4 observations on one generated app.

   Run with: dune exec examples/redundancy_analysis.exe [app-name] *)

open Calibro_core
open Calibro_workload

let () =
  let profile =
    if Array.length Sys.argv > 1 then
      match Apps.by_name Sys.argv.(1) with
      | Some p -> p
      | None -> failwith ("unknown app " ^ Sys.argv.(1))
    else Apps.wechat
  in
  let a = Appgen.generate profile in
  Printf.printf "app %s: %d methods, %d dex instructions\n"
    profile.Appgen.p_name
    (Calibro_dex.Dex_ir.method_count a.Appgen.app)
    (Calibro_dex.Dex_ir.insn_count a.Appgen.app);
  let base = Pipeline.build ~config:Config.baseline a.Appgen.app in
  Printf.printf "baseline text segment: %d bytes\n" (Pipeline.text_size base);
  (* Step 1-3: map, build tree, detect (section 2.2). *)
  let analysis = Redundancy.analyze base.Pipeline.b_oat in
  Printf.printf "repetitive sequences (right-maximal, worthwhile): %d\n"
    analysis.Redundancy.a_repeats;
  (* Step 4: estimate with the Figure 2 model. *)
  Printf.printf "estimated reduction: %d of %d instructions = %.2f%%\n"
    analysis.Redundancy.a_saved_instructions analysis.Redundancy.a_text_words
    (100.0 *. analysis.Redundancy.a_ratio);
  (* Observation 2: short sequences dominate. *)
  print_endline "length vs repeats (first 12 lengths):";
  List.iter
    (fun (l, n) -> if l <= 13 then Printf.printf "  len %2d: %6d repeats\n" l n)
    analysis.Redundancy.a_histogram;
  (* Observation 3: the ART patterns. *)
  let c = Redundancy.pattern_census base.Pipeline.b_oat in
  Printf.printf
    "ART patterns: java-call %d, runtime-call %d, stack-check %d occurrences\n"
    c.Redundancy.c_java_call c.Redundancy.c_runtime_call
    c.Redundancy.c_stack_check
