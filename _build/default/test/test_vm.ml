(* End-to-end substrate tests: .dexsim source -> HGraph -> optimize ->
   codegen -> link -> execute in the simulator. Every program runs twice,
   with CTO off and on, and must behave identically — the first of the
   differential correctness oracles. *)

open Calibro_dex
open Calibro_hgraph
open Calibro_codegen
open Calibro_oat
open Calibro_vm

let compile_apk ?(cto = false) ?(optimize = true) (apk : Dex_ir.apk) =
  let methods = Dex_ir.methods_of_apk apk in
  let slots = Hashtbl.create 16 in
  List.iteri (fun i (m : Dex_ir.meth) -> Hashtbl.replace slots m.name i) methods;
  let slot_of_method name =
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None -> failwith ("unknown method " ^ Dex_ir.method_ref_to_string name)
  in
  let compiled =
    List.map
      (fun m ->
        let g = Hgraph.of_method m in
        if optimize then ignore (Passes.optimize g);
        Codegen.compile ~config:{ Codegen.cto } ~slot_of_method g)
      methods
  in
  Linker.link ~apk_name:apk.Dex_ir.apk_name
    ~thunks:(if cto then Abi.all_thunks else [])
    compiled

let parse src =
  match Dex_text.parse src with
  | Ok apk -> (
    match Dex_check.check apk with
    | Ok () -> apk
    | Error errs ->
      Alcotest.failf "check: %s"
        (String.concat "; " (List.map Dex_check.error_to_string errs)))
  | Error e -> Alcotest.failf "parse: %s" e

let run_apk ?cto ?optimize src entry args =
  let apk = parse src in
  let oat = compile_apk ?cto ?optimize apk in
  let t = Interp.load oat in
  let outcome = Interp.call t { class_name = "t"; method_name = entry } args in
  (outcome, Interp.log t)

let outcome_str = function
  | Interp.Returned v -> Printf.sprintf "Returned %d" v
  | Interp.Thrown fn -> "Thrown " ^ Dex_ir.runtime_fn_name fn
  | Interp.Fault m -> "Fault " ^ m

let check_outcome name expected (got, log_got) ~log =
  Alcotest.(check string) (name ^ " outcome") (outcome_str expected) (outcome_str got);
  Alcotest.(check (list int)) (name ^ " log") log log_got

(* Run with all four configs and require identical behaviour. *)
let check_all_configs name src entry args expected ~log =
  List.iter
    (fun (cto, optimize) ->
      let tag = Printf.sprintf "%s cto=%b opt=%b" name cto optimize in
      check_outcome tag expected (run_apk ~cto ~optimize src entry args) ~log)
    [ (false, false); (false, true); (true, false); (true, true) ]

let header = ".apk t\n.dex d\n.class t\n"

let suite =
  [ Alcotest.test_case "constant return" `Quick (fun () ->
        let src = header ^ ".method f params #0 regs #1 entry\n  const v0, #42\n  return v0\n.end\n" in
        check_all_configs "const" src "f" [] (Interp.Returned 42) ~log:[]);
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #2 regs #6 entry
  add v2, v0, v1
  mul v3, v2, v2
  sub v4, v3, v0
  div v5, v4, v1
  rem v5, v5, v3
  return v5
.end
|}
        in
        (* v0=7 v1=3: v2=10 v3=100 v4=93 v5=31 rem 100 -> 31 *)
        check_all_configs "arith" src "f" [ 7; 3 ] (Interp.Returned 31) ~log:[]);
    Alcotest.test_case "negative constants" `Quick (fun () ->
        let src =
          header
          ^ ".method f params #0 regs #2 entry\n  const v0, #-123456789\n  const v1, #-1\n  mul v0, v0, v1\n  return v0\n.end\n"
        in
        check_all_configs "neg" src "f" [] (Interp.Returned 123456789) ~log:[]);
    Alcotest.test_case "branches and loop" `Quick (fun () ->
        (* sum 1..n *)
        let src =
          header
          ^ {|.method f params #1 regs #4 entry
  const v1, #0
  const v2, #1
:loop
  if gt v2, v0, :done
  add v1, v1, v2
  add v2, v2, #1
  goto :loop
:done
  return v1
.end
|}
        in
        check_all_configs "sum" src "f" [ 10 ] (Interp.Returned 55) ~log:[]);
    Alcotest.test_case "java calls pass arguments and return" `Quick
      (fun () ->
        let src =
          header
          ^ {|.method helper params #2 regs #3
  mul v2, v0, v1
  return v2
.end
.method f params #2 regs #4 entry
  invoke t.helper (v0, v1) -> v2
  add v2, v2, #1
  return v2
.end
|}
        in
        check_all_configs "call" src "f" [ 6; 7 ] (Interp.Returned 43) ~log:[]);
    Alcotest.test_case "recursion (factorial)" `Quick (fun () ->
        let src =
          header
          ^ {|.method fact params #1 regs #4 entry
  ifz ne v0, :rec
  const v1, #1
  return v1
:rec
  sub v1, v0, #1
  invoke t.fact (v1) -> v2
  mul v3, v0, v2
  return v3
.end
|}
        in
        check_all_configs "fact" src "fact" [ 10 ] (Interp.Returned 3628800)
          ~log:[]);
    Alcotest.test_case "runtime log output" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #1 regs #3 entry
  rtcall pLogValue (v0)
  add v1, v0, #1
  rtcall pLogValue (v1)
  return v1
.end
|}
        in
        check_all_configs "log" src "f" [ 5 ] (Interp.Returned 6) ~log:[ 5; 6 ]);
    Alcotest.test_case "objects: new/iput/iget" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #1 regs #4 entry
  new t.Box, v1
  iput v0, v1, #16
  iget v2, v1, #16
  add v2, v2, v2
  return v2
.end
|}
        in
        check_all_configs "obj" src "f" [ 21 ] (Interp.Returned 42) ~log:[]);
    Alcotest.test_case "arrays: alloc/aput/aget/len" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #1 regs #8 entry
  rtcall pAllocArrayResolved (v0) -> v1
  const v2, #0
:fill
  if ge v2, v0, :done
  mul v3, v2, v2
  aput v3, v1, v2
  add v2, v2, #1
  goto :fill
:done
  arraylen v4, v1
  sub v5, v4, #1
  aget v6, v1, v5
  add v7, v4, v6
  return v7
.end
|}
        in
        (* n=5: len 5, last element 16, result 21 *)
        check_all_configs "array" src "f" [ 5 ] (Interp.Returned 21) ~log:[]);
    Alcotest.test_case "null pointer throw" `Quick (fun () ->
        let src =
          header
          ^ ".method f params #0 regs #2 entry\n  const v0, #0\n  iget v1, v0, #8\n  return v1\n.end\n"
        in
        check_all_configs "null" src "f" []
          (Interp.Thrown Dex_ir.Throw_null_pointer) ~log:[]);
    Alcotest.test_case "bounds throw" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #1 regs #4 entry
  const v1, #3
  rtcall pAllocArrayResolved (v1) -> v2
  aget v3, v2, v0
  return v3
.end
|}
        in
        check_all_configs "bounds" src "f" [ 5 ]
          (Interp.Thrown Dex_ir.Throw_array_bounds) ~log:[];
        (* negative index also trips the unsigned comparison *)
        check_all_configs "bounds-neg" src "f" [ -1 ]
          (Interp.Thrown Dex_ir.Throw_array_bounds) ~log:[]);
    Alcotest.test_case "div-zero throw" `Quick (fun () ->
        let src =
          header
          ^ ".method f params #2 regs #3 entry\n  div v2, v0, v1\n  return v2\n.end\n"
        in
        check_all_configs "divz" src "f" [ 5; 0 ]
          (Interp.Thrown Dex_ir.Throw_div_zero) ~log:[];
        check_all_configs "div ok" src "f" [ 12; 4 ] (Interp.Returned 3)
          ~log:[]);
    Alcotest.test_case "stack overflow on runaway recursion" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #1 regs #2 entry
  add v1, v0, #1
  invoke t.f (v1) -> v1
  return v1
.end
|}
        in
        check_all_configs "so" src "f" [ 0 ]
          (Interp.Thrown Dex_ir.Throw_stack_overflow) ~log:[]);
    Alcotest.test_case "switch dispatch" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #1 regs #3 entry
  switch v0 (:a, :b, :c)
  const v1, #-1
  return v1
:a
  const v1, #10
  return v1
:b
  const v1, #20
  return v1
:c
  const v1, #30
  return v1
.end
|}
        in
        check_all_configs "sw0" src "f" [ 0 ] (Interp.Returned 10) ~log:[];
        check_all_configs "sw1" src "f" [ 1 ] (Interp.Returned 20) ~log:[];
        check_all_configs "sw2" src "f" [ 2 ] (Interp.Returned 30) ~log:[];
        check_all_configs "sw-def" src "f" [ 7 ] (Interp.Returned (-1)) ~log:[];
        check_all_configs "sw-neg" src "f" [ -3 ] (Interp.Returned (-1)) ~log:[]);
    Alcotest.test_case "strings load and resolve" `Quick (fun () ->
        let src =
          header
          ^ {|.method f params #0 regs #2 entry
  string v0, "hello"
  rtcall pResolveString (v0) -> v1
  arraylen v1, v1   ; string pool entry starts with its length word
  return v1
.end
|}
        in
        (* arraylen reads the 64-bit word at the address: low 32 bits are
           the length, high bits are the first characters; mask in dex *)
        let apk = parse src in
        let oat = compile_apk apk in
        let t = Interp.load oat in
        (match Interp.call t { class_name = "t"; method_name = "f" } [] with
         | Interp.Returned _ -> ()
         | o -> Alcotest.failf "unexpected %s" (outcome_str o));
        ());
    Alcotest.test_case "native method dispatch" `Quick (fun () ->
        let src =
          header
          ^ ".method nat params #2 regs #2 native\n.end\n"
          ^ ".method f params #2 regs #3 entry\n  invoke t.nat (v0, v1) -> v2\n  return v2\n.end\n"
        in
        let apk = parse src in
        let oat = compile_apk apk in
        let t = Interp.load oat in
        Interp.register_native t
          { class_name = "t"; method_name = "nat" }
          (fun m ->
            Machine.set_reg m 0 (Machine.get_reg m 1 * Machine.get_reg m 2));
        (match Interp.call t { class_name = "t"; method_name = "f" } [ 6; 9 ] with
         | Interp.Returned 54 -> ()
         | o -> Alcotest.failf "unexpected %s" (outcome_str o)));
    Alcotest.test_case "cto reduces code size, same behaviour" `Quick
      (fun () ->
        let src =
          header
          ^ {|.method w params #1 regs #3 entry
  rtcall pLogValue (v0)
  invoke t.g (v0) -> v1
  rtcall pLogValue (v1)
  return v1
.end
.method g params #1 regs #2
  add v1, v0, #100
  return v1
.end
|}
        in
        let apk = parse src in
        let base = compile_apk ~cto:false apk in
        let cto = compile_apk ~cto:true apk in
        let base_methods_size =
          List.fold_left (fun a (m : Oat_file.method_entry) -> a + m.me_size)
            0 base.Oat_file.methods
        in
        let cto_methods_size =
          List.fold_left (fun a (m : Oat_file.method_entry) -> a + m.me_size)
            0 cto.Oat_file.methods
        in
        Alcotest.(check bool)
          (Printf.sprintf "method bytes shrink (%d -> %d)" base_methods_size
             cto_methods_size)
          true
          (cto_methods_size < base_methods_size));
    Alcotest.test_case "stackmaps validate" `Quick (fun () ->
        let src =
          header
          ^ ".method f params #1 regs #3 entry\n  invoke t.g (v0) -> v1\n  rtcall pLogValue (v1)\n  return v1\n.end\n"
          ^ ".method g params #1 regs #2\n  add v1, v0, #1\n  return v1\n.end\n"
        in
        let apk = parse src in
        let oat = compile_apk apk in
        List.iter
          (fun (me : Oat_file.method_entry) ->
            match Stackmap.validate me.me_stackmap ~code_size:me.me_size with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s" e)
          oat.Oat_file.methods);
    Alcotest.test_case "oat file save/load round trip" `Quick (fun () ->
        let src = header ^ ".method f params #0 regs #1 entry\n  const v0, #7\n  return v0\n.end\n" in
        let oat = compile_apk (parse src) in
        let buf = Oat_file.to_bytes oat in
        match Oat_file.of_bytes buf with
        | Error e -> Alcotest.fail e
        | Ok oat2 ->
          Alcotest.(check bytes) "text" oat.Oat_file.text oat2.Oat_file.text;
          Alcotest.(check int) "methods"
            (List.length oat.Oat_file.methods)
            (List.length oat2.Oat_file.methods);
          let t = Interp.load oat2 in
          (match Interp.call t { class_name = "t"; method_name = "f" } [] with
           | Interp.Returned 7 -> ()
           | o -> Alcotest.failf "unexpected %s" (outcome_str o)))
  ]
