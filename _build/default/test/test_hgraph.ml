(* HGraph construction and optimization pass tests. *)

open Calibro_dex.Dex_ir
open Calibro_hgraph
open Hgraph

let mk_method ?(params = 0) ?(vregs = 8) insns =
  { name = { class_name = "t"; method_name = "m" };
    num_params = params; num_vregs = vregs; is_native = false;
    is_entry = false; insns = Array.of_list insns }

let graph ?params ?vregs insns = of_method (mk_method ?params ?vregs insns)

let count_insns g = size g

let has_insn g pred =
  Array.exists (fun b -> List.exists pred b.insns) g.blocks

let suite =
  [ Alcotest.test_case "straight line is one block" `Quick (fun () ->
        let g = graph [ Const (0, 1); Const (1, 2); Return (Some 0) ] in
        Alcotest.(check int) "blocks" 1 (Array.length g.blocks);
        verify g);
    Alcotest.test_case "diamond CFG shape" `Quick (fun () ->
        (* 0: ifz -> 2 ; 1: goto 3 ; 2: ... ; 3: return *)
        let g =
          graph
            [ Ifz (Eq, 0, 3);          (* B0 *)
              Const (1, 1); Goto 4;    (* B1 *)
              Const (1, 2);            (* B2, falls through *)
              Return (Some 1) ]        (* B3 *)
        in
        Alcotest.(check int) "blocks" 4 (Array.length g.blocks);
        verify g;
        (match g.blocks.(0).term with
         | TIfz (Eq, 0, 2, 1) -> ()
         | t -> Alcotest.failf "entry term %s" (term_to_string t));
        match g.blocks.(2).term with
        | TGoto 3 -> ()
        | t -> Alcotest.failf "fallthrough term %s" (term_to_string t));
    Alcotest.test_case "null and bounds checks materialized" `Quick (fun () ->
        let g = graph [ Aget (1, 0, 2); Return (Some 1) ] in
        Alcotest.(check bool) "null" true
          (has_insn g (function HNull_check 0 -> true | _ -> false));
        Alcotest.(check bool) "bounds" true
          (has_insn g (function HBounds_check (2, 0) -> true | _ -> false)));
    Alcotest.test_case "div emits zero check" `Quick (fun () ->
        let g = graph [ Binop (Div, 2, 0, 1); Return (Some 2) ] in
        Alcotest.(check bool) "check" true
          (has_insn g (function HDiv_zero_check 1 -> true | _ -> false)));
    Alcotest.test_case "const_fold folds arithmetic" `Quick (fun () ->
        let g =
          graph
            [ Const (0, 6); Const (1, 7); Binop (Mul, 2, 0, 1);
              Return (Some 2) ]
        in
        ignore (Passes.const_fold g);
        Alcotest.(check bool) "folded" true
          (has_insn g (function HConst (2, 42) -> true | _ -> false)));
    Alcotest.test_case "const_fold removes provably-nonzero div check" `Quick
      (fun () ->
        let g =
          graph [ Const (1, 3); Binop (Div, 2, 0, 1); Return (Some 2) ]
        in
        ignore (Passes.const_fold g);
        Alcotest.(check bool) "check gone" false
          (has_insn g (function HDiv_zero_check _ -> true | _ -> false)));
    Alcotest.test_case "const_fold keeps div-by-zero check" `Quick (fun () ->
        let g =
          graph [ Const (1, 0); Binop (Div, 2, 0, 1); Return (Some 2) ]
        in
        ignore (Passes.const_fold g);
        Alcotest.(check bool) "check kept" true
          (has_insn g (function HDiv_zero_check _ -> true | _ -> false)));
    Alcotest.test_case "const_fold resolves constant branch" `Quick (fun () ->
        let g =
          graph
            [ Const (0, 0); Ifz (Eq, 0, 3); Return (Some 0); Const (1, 9);
              Return (Some 1) ]
        in
        ignore (Passes.const_fold g);
        match g.blocks.(0).term with
        | TGoto _ -> ()
        | t -> Alcotest.failf "expected goto, got %s" (term_to_string t));
    Alcotest.test_case "copy_prop forwards moves" `Quick (fun () ->
        let g =
          graph
            [ Const (0, 5); Move (1, 0); Binop (Add, 2, 1, 1);
              Return (Some 2) ]
        in
        ignore (Passes.copy_prop g);
        Alcotest.(check bool) "uses v0" true
          (has_insn g (function HBinop (Add, 2, 0, 0) -> true | _ -> false)));
    Alcotest.test_case "copy_prop invalidated by redefinition" `Quick
      (fun () ->
        let g =
          graph
            [ Move (1, 0);      (* v1 = v0 *)
              Const (0, 9);     (* v0 redefined: copy stale *)
              Binop (Add, 2, 1, 1);
              Return (Some 2) ]
        in
        ignore (Passes.copy_prop g);
        Alcotest.(check bool) "still uses v1" true
          (has_insn g (function HBinop (Add, 2, 1, 1) -> true | _ -> false)));
    Alcotest.test_case "cse merges duplicate expressions" `Quick (fun () ->
        let g =
          graph
            [ Binop (Add, 2, 0, 1); Binop (Add, 3, 0, 1);
              Binop (Mul, 4, 2, 3); Return (Some 4) ]
        in
        ignore (Passes.cse g);
        Alcotest.(check bool) "second becomes move" true
          (has_insn g (function HMove (3, 2) -> true | _ -> false)));
    Alcotest.test_case "cse respects operand invalidation" `Quick (fun () ->
        let g =
          graph
            [ Binop (Add, 2, 0, 1);
              Const (0, 7);          (* operand changed *)
              Binop (Add, 3, 0, 1);
              Binop (Mul, 4, 2, 3);
              Return (Some 4) ]
        in
        ignore (Passes.cse g);
        Alcotest.(check bool) "no bogus merge" false
          (has_insn g (function HMove (3, 2) -> true | _ -> false)));
    Alcotest.test_case "dce removes dead code" `Quick (fun () ->
        let g =
          graph
            [ Const (0, 1); Const (1, 99); Binop (Add, 2, 1, 1);
              Return (Some 0) ]
        in
        ignore (Passes.dce g);
        Alcotest.(check int) "only live const remains" 1 (count_insns g));
    Alcotest.test_case "dce keeps side effects" `Quick (fun () ->
        let g =
          graph
            [ Const (0, 1);
              Invoke_runtime (Log_value, [ 0 ], Some 1); (* result dead, call kept *)
              Return (Some 0) ]
        in
        ignore (Passes.dce g);
        Alcotest.(check bool) "call kept" true
          (has_insn g (function HInvoke_runtime _ -> true | _ -> false)));
    Alcotest.test_case "dce respects cross-block liveness" `Quick (fun () ->
        let g =
          graph
            [ Const (1, 42);         (* live only in B2 *)
              Ifz (Eq, 0, 4);
              Const (1, 7);
              Return (Some 1);
              Return (Some 1) ]
        in
        ignore (Passes.dce g);
        Alcotest.(check bool) "cross-block const kept" true
          (has_insn g (function HConst (1, 42) -> true | _ -> false)));
    Alcotest.test_case "simplify collapses same-target if" `Quick (fun () ->
        let g = graph [ Ifz (Eq, 0, 1); Return (Some 0) ] in
        ignore (Passes.simplify_branches g);
        match g.blocks.(0).term with
        | TGoto _ -> ()
        | t -> Alcotest.failf "expected goto, got %s" (term_to_string t));
    Alcotest.test_case "simplify drops unreachable blocks" `Quick (fun () ->
        let g =
          graph
            [ Const (0, 0); Ifz (Eq, 0, 4); Return (Some 0); Return (Some 0);
              Return (Some 0) ]
        in
        ignore (Passes.const_fold g);
        ignore (Passes.simplify_branches g);
        verify g;
        Alcotest.(check bool) "fewer blocks" true (Array.length g.blocks <= 3));
    Alcotest.test_case "optimize reaches fixpoint and verifies" `Quick
      (fun () ->
        let g =
          graph
            [ Const (0, 2); Const (1, 3); Binop (Add, 2, 0, 1);
              Move (3, 2); Binop (Mul, 4, 3, 3); Ifz (Eq, 4, 8);
              Const (5, 1); Return (Some 5); Const (5, 0); Return (Some 5) ]
        in
        let rounds = Passes.optimize g in
        verify g;
        Alcotest.(check bool) "terminates" true (rounds <= 8);
        (* 2+3=5, 5*5=25, ifz eq 25 is false -> falls to const 1 branch *)
        Alcotest.(check bool) "branch resolved" true
          (Array.for_all
             (fun b -> match b.term with TIfz _ | TIf _ -> false | _ -> true)
             g.blocks));
    Alcotest.test_case "native method has no blocks" `Quick (fun () ->
        let m =
          { name = { class_name = "t"; method_name = "n" };
            num_params = 1; num_vregs = 1; is_native = true; is_entry = false;
            insns = [||] }
        in
        let g = of_method m in
        Alcotest.(check int) "blocks" 0 (Array.length g.blocks);
        Alcotest.(check int) "optimize no-op" 0 (Passes.optimize g))
  ]
