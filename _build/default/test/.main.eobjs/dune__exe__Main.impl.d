test/main.ml: Alcotest Test_aarch64 Test_core Test_dex Test_edge Test_hgraph Test_ltbo Test_oat Test_suffix_tree Test_vm Test_workload
