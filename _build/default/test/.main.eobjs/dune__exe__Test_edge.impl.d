test/test_edge.ml: Alcotest Astring Calibro_aarch64 Calibro_codegen Calibro_core Calibro_dex Calibro_oat Calibro_vm Compiled_method Encode Interp Isa Linker Meta Patch Printf Result Stackmap
