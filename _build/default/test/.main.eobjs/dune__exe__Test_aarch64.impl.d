test/test_aarch64.ml: Alcotest Array Calibro_aarch64 Decode Disasm Encode Gen Isa List Patch Printf QCheck QCheck_alcotest
