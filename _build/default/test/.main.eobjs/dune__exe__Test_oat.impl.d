test/test_oat.ml: Abi Alcotest Astring Bytes Calibro_aarch64 Calibro_codegen Calibro_dex Calibro_oat Compiled_method Decode Disasm Encode Isa Linker List Meta Oat_file Oatdump Printf Stackmap
