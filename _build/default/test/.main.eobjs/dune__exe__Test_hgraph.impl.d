test/test_hgraph.ml: Alcotest Array Calibro_dex Calibro_hgraph Hgraph List Passes
