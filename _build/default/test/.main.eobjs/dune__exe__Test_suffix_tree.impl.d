test/test_suffix_tree.ml: Alcotest Array Calibro_suffix_tree Char Gen List Map QCheck QCheck_alcotest String Suffix_tree
