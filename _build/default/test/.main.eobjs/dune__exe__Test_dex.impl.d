test/test_dex.ml: Alcotest Array Astring Calibro_dex Dex_check Dex_ir Dex_text List Option String
