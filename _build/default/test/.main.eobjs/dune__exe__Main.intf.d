test/main.mli:
