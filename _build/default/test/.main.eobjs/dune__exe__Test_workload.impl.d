test/test_workload.ml: Alcotest Appgen Apps Array Calibro_core Calibro_dex Calibro_workload Dex_check Dex_ir Dex_text List String
