(* Edge cases and failure injection: fuel exhaustion, wild jumps, executed
   data traps, stackmap validation, metadata remapping. *)

open Calibro_aarch64
open Calibro_codegen
open Calibro_oat
open Calibro_vm

let mk_method ?(relocs = []) ?(meta = Meta.empty) ?(stackmap = []) ~slot instrs
    =
  { Compiled_method.name =
      { Calibro_dex.Dex_ir.class_name = "t";
        method_name = Printf.sprintf "m%d" slot };
    slot;
    code = Encode.to_bytes instrs;
    relocs; meta; stackmap; num_params = 0; is_entry = true; cto_hits = [] }

let call_m0 ?fuel oat =
  let t = Interp.load ?fuel oat in
  Interp.call t { Calibro_dex.Dex_ir.class_name = "t"; method_name = "m0" } []

let suite =
  [ Alcotest.test_case "fuel exhaustion faults instead of hanging" `Quick
      (fun () ->
        (* b . : an infinite loop *)
        let oat =
          Linker.link ~apk_name:"t" [ mk_method ~slot:0 [ Isa.B { disp = 0 } ] ]
        in
        match call_m0 ~fuel:10_000 oat with
        | Interp.Fault m ->
          Alcotest.(check bool) m true (Astring.String.is_infix ~affix:"fuel" m)
        | o ->
          Alcotest.failf "expected fuel fault, got %s"
            (match o with
             | Interp.Returned v -> string_of_int v
             | _ -> "thrown"));
    Alcotest.test_case "wild jump faults" `Quick (fun () ->
        let oat =
          Linker.link ~apk_name:"t"
            [ mk_method ~slot:0
                [ Isa.mov_imm ~size:Isa.X 5 0x1234;
                  Isa.Br 5 ] ]
        in
        match call_m0 oat with
        | Interp.Fault m ->
          Alcotest.(check bool) m true
            (Astring.String.is_infix ~affix:"wild pc" m)
        | _ -> Alcotest.fail "expected wild-pc fault");
    Alcotest.test_case "executing embedded data faults" `Quick (fun () ->
        (* falls through into a data word *)
        let oat =
          Linker.link ~apk_name:"t"
            [ mk_method ~slot:0 [ Isa.Nop; Isa.Data 0xFFFFFFFFl ] ]
        in
        match call_m0 oat with
        | Interp.Fault m ->
          Alcotest.(check bool) m true
            (Astring.String.is_infix ~affix:"data" m)
        | _ -> Alcotest.fail "expected executed-data fault");
    Alcotest.test_case "executing an unrelocated bl faults" `Quick (fun () ->
        let oat =
          Linker.link ~apk_name:"t"
            [ mk_method ~slot:0 [ Isa.Bl { target = Isa.Sym 7 }; Isa.Ret ] ]
        in
        (* note: no reloc entry, so the linker leaves imm26 = 0; decoding
           yields bl #+0 which re-enters itself -- the simulator burns fuel
           or faults; to observe the precise fault use the raw decoded form *)
        match call_m0 ~fuel:1000 oat with
        | Interp.Fault _ -> ()
        | _ -> Alcotest.fail "expected a fault");
    Alcotest.test_case "stackmap validation rejects bad maps" `Quick
      (fun () ->
        let bad_order =
          [ { Stackmap.native_pc = 8; dex_pc = 0; live_vregs = 0 };
            { Stackmap.native_pc = 4; dex_pc = 1; live_vregs = 0 } ]
        in
        (match Stackmap.validate bad_order ~code_size:16 with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "expected order error");
        (match
           Stackmap.validate
             [ { Stackmap.native_pc = 6; dex_pc = 0; live_vregs = 0 } ]
             ~code_size:16
         with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "expected alignment error");
        match
          Stackmap.validate
            [ { Stackmap.native_pc = 20; dex_pc = 0; live_vregs = 0 } ]
            ~code_size:16
        with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected range error");
    Alcotest.test_case "meta range predicates" `Quick (fun () ->
        let m =
          { Meta.empty with
            Meta.embedded = [ { Meta.r_start = 8; r_len = 8 } ];
            slowpaths = [ { Meta.r_start = 24; r_len = 4 } ] }
        in
        Alcotest.(check bool) "inside embedded" true (Meta.is_embedded m 12);
        Alcotest.(check bool) "edge exclusive" false (Meta.is_embedded m 16);
        Alcotest.(check bool) "before" false (Meta.is_embedded m 4);
        Alcotest.(check bool) "slowpath" true (Meta.in_slowpath m 24);
        Alcotest.(check bool) "outlinable by default" true (Meta.outlinable m);
        Alcotest.(check bool) "native excluded" false
          (Meta.outlinable { m with Meta.is_native = true });
        Alcotest.(check bool) "indirect excluded" false
          (Meta.outlinable { m with Meta.has_indirect_jump = true }));
    Alcotest.test_case "machine unsigned compare semantics" `Quick (fun () ->
        let open Calibro_vm.Machine in
        Alcotest.(check bool) "pos pos" true (unsigned_ge 5 3);
        Alcotest.(check bool) "pos pos eq" true (unsigned_ge 3 3);
        Alcotest.(check bool) "neg is big" true (unsigned_ge (-1) 1000);
        Alcotest.(check bool) "small not ge neg" false (unsigned_ge 1000 (-1));
        Alcotest.(check bool) "neg neg" true (unsigned_ge (-1) (-5)));
    Alcotest.test_case "machine memory straddles page boundaries" `Quick
      (fun () ->
        let m = Calibro_vm.Machine.create () in
        let addr = (4096 * 10) - 3 in
        Calibro_vm.Machine.write64 m addr 0x1122334455667788;
        Alcotest.(check int) "straddling read" 0x1122334455667788
          (Calibro_vm.Machine.read64 m addr));
    Alcotest.test_case "string pool readable through machine memory" `Quick
      (fun () ->
        let src =
          ".apk t\n.dex d\n.class t\n.method m0 params #0 regs #2 entry\n  string v0, \"calibro\"\n  return v0\n.end\n"
        in
        let apk = Result.get_ok (Calibro_dex.Dex_text.parse src) in
        let b =
          Calibro_core.Pipeline.build ~config:Calibro_core.Config.baseline apk
        in
        let t = Interp.load b.Calibro_core.Pipeline.b_oat in
        match
          Interp.call t
            { Calibro_dex.Dex_ir.class_name = "t"; method_name = "m0" }
            []
        with
        | Interp.Returned addr ->
          Alcotest.(check string) "pool content" "calibro"
            (Calibro_vm.Machine.read_string t.Interp.machine addr)
        | o ->
          Alcotest.failf "unexpected outcome %s"
            (match o with Interp.Fault m -> m | _ -> "thrown"));
    Alcotest.test_case "patch round-trips arbitrary displacement" `Quick
      (fun () ->
        let buf =
          Encode.to_bytes
            [ Isa.B { disp = 16 }; Isa.Nop; Isa.Nop; Isa.Nop; Isa.Ret ]
        in
        Alcotest.(check int) "read" 16 (Patch.read_disp buf ~off:0);
        Patch.patch_bytes buf ~off:0 ~disp:8;
        Alcotest.(check int) "after patch" 8 (Patch.read_disp buf ~off:0))
  ]
