(* Tests for the DEX-like IR: parser/printer round trips, checker. *)

open Calibro_dex
open Dex_ir

let sample =
  {|
.apk demo
.dex classes01
.class com.demo.Main
.method run params #1 regs #4 entry
  const v1, #2
  mul v2, v0, v1
  ifz eq v2, :zero
  rtcall pLogValue (v2)
  goto :done
:zero
  const v2, #0
:done
  return v2
.end
.method helper params #2 regs #3
  add v2, v0, v1
  return v2
.end
.class com.demo.Aux
.method caller params #0 regs #3 entry
  const v0, #1
  const v1, #2
  invoke com.demo.Main.helper (v0, v1) -> v2
  rtcall pLogValue (v2)
  return
.end
|}

let parse_ok src =
  match Dex_text.parse src with
  | Ok apk -> apk
  | Error e -> Alcotest.failf "parse error: %s" e

let suite =
  [ Alcotest.test_case "parse sample" `Quick (fun () ->
        let apk = parse_ok sample in
        Alcotest.(check string) "name" "demo" apk.apk_name;
        Alcotest.(check int) "methods" 3 (method_count apk);
        let run =
          Option.get
            (find_method apk { class_name = "com.demo.Main"; method_name = "run" })
        in
        Alcotest.(check bool) "entry" true run.is_entry;
        Alcotest.(check int) "insns" 7 (Array.length run.insns);
        (match run.insns.(2) with
         | Ifz (Eq, 2, 5) -> ()
         | _ -> Alcotest.fail "ifz target mis-resolved");
        match run.insns.(4) with
        | Goto 6 -> ()
        | _ -> Alcotest.fail "goto target mis-resolved");
    Alcotest.test_case "print/parse round trip" `Quick (fun () ->
        let apk = parse_ok sample in
        let printed = Dex_text.to_string apk in
        let apk2 = parse_ok printed in
        Alcotest.(check string) "stable" printed (Dex_text.to_string apk2);
        Alcotest.(check bool) "structurally equal" true (apk = apk2));
    Alcotest.test_case "checker accepts sample" `Quick (fun () ->
        match Dex_check.check (parse_ok sample) with
        | Ok () -> ()
        | Error errs ->
          Alcotest.failf "unexpected: %s"
            (String.concat "; " (List.map Dex_check.error_to_string errs)));
    Alcotest.test_case "parse errors carry line numbers" `Quick (fun () ->
        match Dex_text.parse ".apk x\n.dex d\n.class c\n.method m params #0 regs #1\n  bogus v0\n.end\n" with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error e ->
          Alcotest.(check bool) ("mentions line 5: " ^ e) true
            (Astring.String.is_infix ~affix:"line 5" e
             || String.length e > 0 && Astring.String.is_infix ~affix:"bogus" e));
    Alcotest.test_case "undefined label rejected" `Quick (fun () ->
        match Dex_text.parse ".apk x\n.dex d\n.class c\n.method m params #0 regs #1\n  goto :nowhere\n.end\n" with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error e ->
          Alcotest.(check bool) e true
            (Astring.String.is_infix ~affix:"nowhere" e));
    Alcotest.test_case "duplicate label rejected" `Quick (fun () ->
        match
          Dex_text.parse
            ".apk x\n.dex d\n.class c\n.method m params #0 regs #1\n:l\n  const v0, #1\n:l\n  return\n.end\n"
        with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error e ->
          Alcotest.(check bool) e true (Astring.String.is_infix ~affix:"duplicate" e));
    Alcotest.test_case "checker: register out of range" `Quick (fun () ->
        let m =
          { name = { class_name = "c"; method_name = "m" };
            num_params = 0; num_vregs = 2; is_native = false; is_entry = false;
            insns = [| Const (5, 1); Return None |] }
        in
        Alcotest.(check bool) "errors" true (Dex_check.check_method m <> []));
    Alcotest.test_case "checker: fallthrough off end" `Quick (fun () ->
        let m =
          { name = { class_name = "c"; method_name = "m" };
            num_params = 0; num_vregs = 2; is_native = false; is_entry = false;
            insns = [| Const (0, 1) |] }
        in
        Alcotest.(check bool) "errors" true (Dex_check.check_method m <> []));
    Alcotest.test_case "checker: call arity mismatch" `Quick (fun () ->
        let src =
          ".apk x\n.dex d\n.class c\n.method f params #2 regs #3\n  return v0\n.end\n.method g params #0 regs #2\n  const v0, #1\n  invoke c.f (v0) -> v1\n  return\n.end\n"
        in
        match Dex_check.check (parse_ok src) with
        | Ok () -> Alcotest.fail "expected arity error"
        | Error errs ->
          Alcotest.(check bool) "mentions arity" true
            (List.exists
               (fun e ->
                 Astring.String.is_infix ~affix:"expects 2"
                   (Dex_check.error_to_string e))
               errs));
    Alcotest.test_case "checker: undefined callee" `Quick (fun () ->
        let src =
          ".apk x\n.dex d\n.class c\n.method g params #0 regs #1\n  invoke c.missing ()\n  return\n.end\n"
        in
        match Dex_check.check (parse_ok src) with
        | Ok () -> Alcotest.fail "expected undefined-callee error"
        | Error errs ->
          Alcotest.(check bool) "mentions undefined" true
            (List.exists
               (fun e ->
                 Astring.String.is_infix ~affix:"undefined"
                   (Dex_check.error_to_string e))
               errs));
    Alcotest.test_case "native method parses" `Quick (fun () ->
        let src = ".apk x\n.dex d\n.class c\n.method n params #1 regs #1 native\n.end\n" in
        let apk = parse_ok src in
        let m = List.hd (methods_of_apk apk) in
        Alcotest.(check bool) "native" true m.is_native;
        match Dex_check.check apk with
        | Ok () -> ()
        | Error errs ->
          Alcotest.failf "unexpected: %s"
            (String.concat "; " (List.map Dex_check.error_to_string errs)));
    Alcotest.test_case "switch parses and resolves" `Quick (fun () ->
        let src =
          ".apk x\n.dex d\n.class c\n.method s params #1 regs #2\n  switch v0 (:a, :b)\n:a\n  const v1, #1\n  return v1\n:b\n  const v1, #2\n  return v1\n.end\n"
        in
        let apk = parse_ok src in
        let m = List.hd (methods_of_apk apk) in
        (match m.insns.(0) with
         | Switch (0, [ 1; 3 ]) -> ()
         | _ -> Alcotest.fail "switch targets wrong");
        Alcotest.(check bool) "check ok" true (Dex_check.check apk = Ok ()));
    Alcotest.test_case "string literals with escapes round trip" `Quick
      (fun () ->
        let src =
          ".apk x\n.dex d\n.class c\n.method m params #0 regs #1\n  string v0, \"a\\n\\\"b\\\\c\"\n  return\n.end\n"
        in
        let apk = parse_ok src in
        let m = List.hd (methods_of_apk apk) in
        (match m.insns.(0) with
         | Const_string (0, s) -> Alcotest.(check string) "escaped" "a\n\"b\\c" s
         | _ -> Alcotest.fail "expected string insn");
        let apk2 = parse_ok (Dex_text.to_string apk) in
        Alcotest.(check bool) "round trip" true (apk = apk2))
  ]

let literal_div_tests =
  [ Alcotest.test_case "checker: literal division by zero" `Quick (fun () ->
        let m =
          { name = { class_name = "c"; method_name = "m" };
            num_params = 1; num_vregs = 2; is_native = false; is_entry = false;
            insns = [| Binop_lit (Div, 1, 0, 0); Return (Some 1) |] }
        in
        Alcotest.(check bool) "rejected" true (Dex_check.check_method m <> []);
        let ok =
          { m with insns = [| Binop_lit (Div, 1, 0, 2); Return (Some 1) |] }
        in
        Alcotest.(check (list string)) "non-zero fine" []
          (List.map Dex_check.error_to_string (Dex_check.check_method ok)))
  ]

let suite = suite @ literal_div_tests
