(* Suffix tree tests: the banana example from the paper's Figure 1, plus
   randomized differential tests against naive O(n^2)/O(n^3) references. *)

open Calibro_suffix_tree

let of_string s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* Naive reference: all start positions of [pat] in [text]. *)
let naive_occurrences text pat =
  let n = Array.length text and m = Array.length pat in
  let hits = ref [] in
  for i = n - m downto 0 do
    let ok = ref true in
    for j = 0 to m - 1 do
      if text.(i + j) <> pat.(j) then ok := false
    done;
    if !ok && m > 0 then hits := i :: !hits
  done;
  !hits

(* Naive reference: every right-maximal repeated substring as
   (length, sorted positions). A substring s is right-maximal iff it occurs
   >= 2 times and its occurrences are not all followed by the same symbol
   (occurrences at the end of the text count as distinct continuations). *)
let naive_repeats text =
  let n = Array.length text in
  let module M = Map.Make (struct
    type t = int list
    let compare = compare
  end) in
  let subs = ref M.empty in
  for i = 0 to n - 1 do
    for len = 1 to n - i do
      let key = Array.to_list (Array.sub text i len) in
      subs := M.update key (function None -> Some [ i ] | Some l -> Some (i :: l)) !subs
    done
  done;
  M.fold
    (fun key positions acc ->
      let len = List.length key in
      let positions = List.sort compare positions in
      if List.length positions >= 2 then begin
        (* right-maximal: continuations differ *)
        let conts =
          List.map
            (fun p -> if p + len >= n then -1 - p else text.(p + len))
            positions
        in
        let all_same =
          match conts with
          | [] -> true
          | c :: rest -> List.for_all (fun x -> x = c) rest
        in
        if not all_same then (len, positions) :: acc else acc
      end
      else acc)
    !subs []

let banana = of_string "banana"

let banana_tests =
  [ Alcotest.test_case "banana: occurrences of 'na'" `Quick (fun () ->
        let t = Suffix_tree.build banana in
        Alcotest.(check (list int)) "na" [ 2; 4 ]
          (Suffix_tree.occurrences t (of_string "na")));
    Alcotest.test_case "banana: occurrences of 'ana' overlap" `Quick (fun () ->
        let t = Suffix_tree.build banana in
        Alcotest.(check (list int)) "ana" [ 1; 3 ]
          (Suffix_tree.occurrences t (of_string "ana")));
    Alcotest.test_case "banana: non-overlapping selection" `Quick (fun () ->
        (* Figure 1 discussion: "ana" occurs twice but overlaps; after the
           overlap filter only one occurrence survives. *)
        Alcotest.(check (list int)) "ana" [ 1 ]
          (Suffix_tree.non_overlapping ~length:3 [ 1; 3 ]);
        Alcotest.(check (list int)) "na" [ 2; 4 ]
          (Suffix_tree.non_overlapping ~length:2 [ 2; 4 ]));
    Alcotest.test_case "banana: contains" `Quick (fun () ->
        let t = Suffix_tree.build banana in
        Alcotest.(check bool) "banana" true (Suffix_tree.contains t banana);
        Alcotest.(check bool) "anan" true
          (Suffix_tree.contains t (of_string "anan"));
        Alcotest.(check bool) "nab" false
          (Suffix_tree.contains t (of_string "nab"));
        Alcotest.(check bool) "empty" true (Suffix_tree.contains t [||]));
    Alcotest.test_case "banana: repeats match figure 1" `Quick (fun () ->
        let t = Suffix_tree.build banana in
        let rs =
          Suffix_tree.repeats t
          |> List.map (fun r ->
                 ( Array.to_list
                     (Array.sub banana (List.hd r.Suffix_tree.positions)
                        r.Suffix_tree.length),
                   r.Suffix_tree.positions ))
          |> List.sort compare
        in
        (* Internal nodes of the banana tree: "a" (3 leaves), "ana" (2),
           "n"?: "na" and "nana" share prefix... right-maximal: "a", "ana",
           "na". *)
        let expect =
          [ (of_string "a" |> Array.to_list, [ 1; 3; 5 ]);
            (of_string "ana" |> Array.to_list, [ 1; 3 ]);
            (of_string "na" |> Array.to_list, [ 2; 4 ]) ]
        in
        Alcotest.(check int) "count" (List.length expect) (List.length rs);
        List.iter2
          (fun (ek, ep) (k, p) ->
            Alcotest.(check (list int)) "key" ek k;
            Alcotest.(check (list int)) "pos" ep p)
          expect rs);
    Alcotest.test_case "leaf count equals n+1" `Quick (fun () ->
        let t = Suffix_tree.build banana in
        let s = Suffix_tree.stats t in
        (* "banana$" has 7 suffixes, hence 7 leaves. *)
        Alcotest.(check int) "leaves" 7 s.Suffix_tree.leaves);
    Alcotest.test_case "rejects reserved terminal" `Quick (fun () ->
        match Suffix_tree.build [| 1; Suffix_tree.terminal; 2 |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "empty input" `Quick (fun () ->
        let t = Suffix_tree.build [||] in
        Alcotest.(check int) "len" 0 (Suffix_tree.input_length t);
        Alcotest.(check (list int)) "no repeats" []
          (Suffix_tree.repeats t |> List.map (fun r -> r.Suffix_tree.length)));
    Alcotest.test_case "separators never repeat" `Quick (fun () ->
        (* Two identical blocks joined by unique separators: repeats must
           never span a separator (they are unique), so the longest repeat
           is the block itself. *)
        let block = [| 7; 8; 9; 7; 8 |] in
        let input = Array.concat [ block; [| -1 |]; block; [| -2 |]; block ] in
        let t = Suffix_tree.build input in
        let max_len =
          List.fold_left
            (fun m r -> max m r.Suffix_tree.length)
            0 (Suffix_tree.repeats t)
        in
        Alcotest.(check int) "max repeat length" 5 max_len)
  ]

(* ---- Randomized differential tests ---------------------------------- *)

let gen_small_array =
  QCheck.Gen.(
    let* n = int_range 0 40 in
    let* alphabet = int_range 1 4 in
    array_size (return n) (int_range 0 alphabet))

let arb_small_array =
  QCheck.make gen_small_array ~print:(fun a ->
      String.concat ";" (Array.to_list a |> List.map string_of_int))

let occurrences_match_naive =
  QCheck.Test.make ~name:"occurrences match naive search" ~count:300
    QCheck.(
      pair arb_small_array
        (make
           Gen.(
             let* n = int_range 1 4 in
             array_size (return n) (int_range 0 4))))
    (fun (text, pat) ->
      let t = Suffix_tree.build text in
      Suffix_tree.occurrences t pat = naive_occurrences text pat)

let repeats_match_naive =
  QCheck.Test.make ~name:"repeats match naive right-maximal enumeration"
    ~count:200 arb_small_array (fun text ->
      let t = Suffix_tree.build text in
      let got =
        Suffix_tree.repeats t
        |> List.map (fun r -> (r.Suffix_tree.length, r.Suffix_tree.positions))
        |> List.sort compare
      in
      let want = naive_repeats text |> List.sort compare in
      got = want)

let all_suffixes_present =
  QCheck.Test.make ~name:"every suffix reachable" ~count:200 arb_small_array
    (fun text ->
      let t = Suffix_tree.build text in
      let n = Array.length text in
      let ok = ref true in
      for i = 0 to n - 1 do
        if not (Suffix_tree.contains t (Array.sub text i (n - i))) then
          ok := false
      done;
      !ok)

let non_overlap_props =
  QCheck.Test.make ~name:"non_overlapping output has no overlaps" ~count:300
    QCheck.(
      pair (int_range 1 5)
        (make Gen.(list_size (int_range 0 20) (int_range 0 50))))
    (fun (len, positions) ->
      let sorted = List.sort_uniq compare positions in
      let chosen = Suffix_tree.non_overlapping ~length:len sorted in
      (* no two chosen positions overlap, and every dropped one overlaps a
         chosen one *)
      let rec no_overlap = function
        | a :: (b :: _ as rest) -> b - a >= len && no_overlap rest
        | _ -> true
      in
      no_overlap chosen
      && List.for_all
           (fun p ->
             List.mem p chosen
             || List.exists (fun c -> abs (p - c) < len) chosen)
           sorted)

let suite =
  banana_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ occurrences_match_naive; repeats_match_naive; all_suffixes_present;
        non_overlap_props ]
