(* Tests for the store-wide shared outline dictionary (lib/dict): mining
   and ranking, prelink-style binding at link time, byte-faithful
   execution in the simulator, persistence with its corruption battery
   (truncation, bit rot, damaged tables — every one a typed error and a
   clean fall back to per-app outlining), and the dictionary-rotation
   cache-miss semantics of the detect memo. *)

open Calibro_core
module Appgen = Calibro_workload.Appgen
module Apps = Calibro_workload.Apps
module Dict = Calibro_dict.Dict
module Oat = Calibro_oat.Oat_file
module Linker = Calibro_oat.Linker
module Abi = Calibro_codegen.Abi
module Interp = Calibro_vm.Interp
module Cache = Calibro_cache.Cache
module Fault = Calibro_check.Fault
module Invariants = Calibro_check.Invariants
module Oracle = Calibro_check.Oracle
module Obs = Calibro_obs.Obs

let counter = Obs.Counter.value
let pl8 = Config.cto_ltbo_pl ~k:8 ()
let demo_apk () = (Appgen.generate Apps.demo).Appgen.app

let build ?dict apk = Pipeline.build ~cache:None ~config:pl8 ?dict apk

(* A dictionary carrying every body the demo build outlines: the build
   counted as two apps, so each body clears the >= 2-apps mining bar. *)
let demo_dict () =
  let b = build (demo_apk ()) in
  (b, Dict.of_oats [ b.Pipeline.b_oat; b.Pipeline.b_oat ])

let extents d = List.map (fun e -> (e.Dict.e_offset, e.Dict.e_size)) (Dict.entries d)

let with_tmpdir f =
  let dir =
    Filename.temp_file "calibro-dict-test" ""
    |> fun f ->
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f dir)

(* ---- Mining ------------------------------------------------------------- *)

let mining_tests =
  [ Alcotest.test_case "mining is deterministic, ranked, and tiles the image"
      `Quick (fun () ->
        let _, d1 = demo_dict () in
        let _, d2 = demo_dict () in
        Alcotest.(check bool) "has bodies" true (Dict.n_bodies d1 > 0);
        Alcotest.(check string) "same digest" (Dict.digest d1) (Dict.digest d2);
        Alcotest.(check (list (pair int int)))
          "same entries" (extents d1) (extents d2);
        (* Ranked by fleet-wide saving, best first. *)
        let savings =
          List.map
            (fun e -> Dict.saved ~apps:e.Dict.e_apps ~size:e.Dict.e_size)
            (Dict.entries d1)
        in
        Alcotest.(check (list int))
          "ranked by saving" (List.sort (fun a b -> compare b a) savings)
          savings;
        (* Entries tile the image exactly. *)
        let pos = ref 0 in
        List.iter
          (fun (off, size) ->
            Alcotest.(check int) "tiles" !pos off;
            pos := off + size)
          (extents d1);
        Alcotest.(check int) "covers the image" (Dict.size d1) !pos);
    Alcotest.test_case "bodies carried by a single app are not shared" `Quick
      (fun () ->
        let b = build (demo_apk ()) in
        let d = Dict.of_oats [ b.Pipeline.b_oat ] in
        Alcotest.(check int) "no winners" 0 (Dict.n_bodies d));
    Alcotest.test_case "cross-app mining over the store finds repeats" `Quick
      (fun () ->
        (* Two different store apps genuinely share outlined bodies — the
           premise of the whole pass. *)
        let oats =
          List.map
            (fun p ->
              (build (Appgen.generate p).Appgen.app).Pipeline.b_oat)
            [ Apps.toutiao; Apps.taobao ]
        in
        let d = Dict.of_oats oats in
        Alcotest.(check bool) "found shared bodies" true (Dict.n_bodies d > 0);
        List.iter
          (fun e -> Alcotest.(check int) "two apps" 2 e.Dict.e_apps)
          (Dict.entries d));
    Alcotest.test_case "the empty dictionary is valid and binds nothing"
      `Quick (fun () ->
        let d = Dict.of_oats [] in
        Alcotest.(check int) "empty" 0 (Dict.size d);
        let apk = demo_apk () in
        let plain = build apk in
        let bound = build ~dict:(Dict.linker_dict d) apk in
        Alcotest.(check bool) "byte-identical text" true
          (Bytes.equal plain.Pipeline.b_oat.Oat.text
             bound.Pipeline.b_oat.Oat.text);
        Alcotest.(check (option string))
          "self-contained" None bound.Pipeline.b_oat.Oat.dict_digest)
  ]

(* ---- Linking ------------------------------------------------------------ *)

let link_tests =
  [ Alcotest.test_case "linking binds shared bodies to dictionary slots"
      `Quick (fun () ->
        let apk = demo_apk () in
        let plain = build apk in
        let c0 = counter "linker.dict_bound" in
        let d = Dict.of_oats [ plain.Pipeline.b_oat; plain.Pipeline.b_oat ] in
        let bound = build ~dict:(Dict.linker_dict d) apk in
        Alcotest.(check bool) "bound some bodies" true
          (counter "linker.dict_bound" - c0 > 0);
        Alcotest.(check bool) "text shrank" true
          (Pipeline.text_size bound < Pipeline.text_size plain);
        Alcotest.(check (option string))
          "records the digest" (Some (Dict.digest d))
          bound.Pipeline.b_oat.Oat.dict_digest);
    Alcotest.test_case
      "invariants accept dictionary calls only with the extents" `Quick
      (fun () ->
        let _, d = demo_dict () in
        let bound = build ~dict:(Dict.linker_dict d) (demo_apk ()) in
        Alcotest.(check (list string))
          "clean with extents" []
          (List.map Invariants.violation_to_string
             (Invariants.check ~dict:(extents d) bound.Pipeline.b_oat));
        (* Without them, the same [bl]s into dict_base are dangling: the
           checker must not silently wave absolute far targets through. *)
        Alcotest.(check bool) "dangling without extents" true
          (Invariants.check bound.Pipeline.b_oat <> []));
    Alcotest.test_case "the dictionary image itself passes its checker"
      `Quick (fun () ->
        let _, d = demo_dict () in
        Alcotest.(check (list string))
          "well-formed" []
          (List.map Invariants.violation_to_string
             (Invariants.check_dict_image ~image:(Dict.image d) (extents d))))
  ]

(* ---- Execution ---------------------------------------------------------- *)

let vm_tests =
  [ Alcotest.test_case
      "dict-bound code executes byte-faithfully against the baseline" `Quick
      (fun () ->
        let _, d = demo_dict () in
        match Oracle.run ~configs:[ pl8 ] ~dict:d (demo_apk ()) with
        | Error e -> Alcotest.failf "oracle error: %s" e
        | Ok r ->
          Alcotest.(check (list string))
            "no divergences" []
            (List.map Oracle.divergence_to_string r.Oracle.r_divergences));
    Alcotest.test_case "the simulator refuses a missing or wrong dictionary"
      `Quick (fun () ->
        let _, d = demo_dict () in
        let bound = build ~dict:(Dict.linker_dict d) (demo_apk ()) in
        (match Interp.load bound.Pipeline.b_oat with
         | exception Interp.Dict_mismatch { got = None; _ } -> ()
         | exception Interp.Dict_mismatch _ ->
           Alcotest.fail "mismatch should report no dictionary"
         | _ -> Alcotest.fail "loaded a dict-relative OAT with no dictionary");
        let rotated = { (Dict.vm_image d) with Interp.di_digest = "rotated" } in
        (match Interp.load ~dict:rotated bound.Pipeline.b_oat with
         | exception Interp.Dict_mismatch { got = Some "rotated"; _ } -> ()
         | exception Interp.Dict_mismatch _ ->
           Alcotest.fail "mismatch should report the offered digest"
         | _ -> Alcotest.fail "loaded against a rotated dictionary");
        (* A self-contained OAT under an ambient dictionary is harmless. *)
        let plain = build (demo_apk ()) in
        ignore (Interp.load ~dict:(Dict.vm_image d) plain.Pipeline.b_oat))
  ]

(* ---- Persistence and the corruption battery ----------------------------- *)

let persist_tests =
  [ Alcotest.test_case "save/load round-trips digest, image and entries"
      `Quick (fun () ->
        with_tmpdir @@ fun dir ->
        let _, d = demo_dict () in
        let path = Filename.concat dir "store.dict" in
        Dict.save d path;
        match Dict.load path with
        | Error e -> Alcotest.failf "load: %s" e
        | Ok d' ->
          Alcotest.(check string) "digest" (Dict.digest d) (Dict.digest d');
          Alcotest.(check bool) "image" true
            (Bytes.equal (Dict.image d) (Dict.image d'));
          Alcotest.(check (list (pair int int)))
            "entries" (extents d) (extents d'));
    Alcotest.test_case "a truncated dictionary is a typed load error" `Quick
      (fun () ->
        with_tmpdir @@ fun dir ->
        let _, d = demo_dict () in
        let path = Filename.concat dir "store.dict" in
        Dict.save d path;
        let c0 = counter "fault.injected.dict-truncate" in
        Fault.Dict.truncate path;
        Alcotest.(check int) "fault counted" 1
          (counter "fault.injected.dict-truncate" - c0);
        match Dict.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "loaded a truncated dictionary");
    Alcotest.test_case "a flipped image byte fails the digest check" `Quick
      (fun () ->
        with_tmpdir @@ fun dir ->
        let _, d = demo_dict () in
        let path = Filename.concat dir "store.dict" in
        Dict.save d path;
        let c0 = counter "fault.injected.dict-bitflip" in
        Fault.Dict.bitflip path;
        Alcotest.(check int) "fault counted" 1
          (counter "fault.injected.dict-bitflip" - c0);
        match Dict.load path with
        | Error e ->
          Alcotest.(check bool) "digest mismatch" true
            (Astring.String.is_infix ~affix:"digest mismatch" e)
        | Ok _ -> Alcotest.fail "loaded a bit-rotted dictionary");
    Alcotest.test_case "a flipped header byte is a typed load error" `Quick
      (fun () ->
        with_tmpdir @@ fun dir ->
        let _, d = demo_dict () in
        let path = Filename.concat dir "store.dict" in
        Dict.save d path;
        (* Byte 8 is the container version field. *)
        Fault.Dict.bitflip ~at:8 path;
        match Dict.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "loaded a dictionary with a damaged header");
    Alcotest.test_case "a non-tiling entry table is refused" `Quick (fun () ->
        let _, d = demo_dict () in
        let oat = Dict.to_oat d in
        let damaged = { oat with Oat.outlined = List.tl oat.Oat.outlined } in
        (match Dict.of_oat_container damaged with
         | Error e ->
           Alcotest.(check bool) "tiling error" true
             (Astring.String.is_infix ~affix:"tile" e)
         | Ok _ -> Alcotest.fail "accepted a non-tiling table");
        match Dict.of_oat_container (build (demo_apk ())).Pipeline.b_oat with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted a non-dictionary container");
    Alcotest.test_case
      "a corrupt dictionary falls back to per-app outlining, never wrong code"
      `Quick (fun () ->
        with_tmpdir @@ fun dir ->
        let apk = demo_apk () in
        let plain = build apk in
        let d =
          Dict.of_oats [ plain.Pipeline.b_oat; plain.Pipeline.b_oat ]
        in
        let path = Filename.concat dir "store.dict" in
        Dict.save d path;
        Fault.Dict.bitflip path;
        (* The consumer pattern every tool uses: a failed load means no
           dictionary, and the build self-contains — byte-identical to a
           build that never heard of the store. *)
        let dict =
          match Dict.load path with
          | Ok d -> Some (Dict.linker_dict d)
          | Error _ -> None
        in
        Alcotest.(check bool) "fell back" true (dict = None);
        let rebuilt = Pipeline.build ~cache:None ~config:pl8 ?dict apk in
        Alcotest.(check bool) "byte-identical to per-app outlining" true
          (Bytes.equal plain.Pipeline.b_oat.Oat.text
             rebuilt.Pipeline.b_oat.Oat.text);
        Alcotest.(check (option string))
          "self-contained" None rebuilt.Pipeline.b_oat.Oat.dict_digest)
  ]

(* ---- Rotation and the detect memo --------------------------------------- *)

let rotation_tests =
  [ Alcotest.test_case
      "dictionary rotation misses the detect memo, never replays stale"
      `Quick (fun () ->
        with_tmpdir @@ fun dir ->
        let c = Cache.create ~dir () in
        let apk = demo_apk () in
        let plain = build apk in
        let d = Dict.of_oats [ plain.Pipeline.b_oat; plain.Pipeline.b_oat ] in
        let ld = Dict.linker_dict d in
        let build_with dict =
          Pipeline.build ~cache:(Some c) ~config:pl8 ~dict apk
        in
        let hits () = counter "cache.detectdict.hits"
        and misses () = counter "cache.detectdict.misses" in
        let m0 = misses () in
        let b1 = build_with ld in
        Alcotest.(check bool) "cold build misses" true (misses () - m0 > 0);
        let h1 = hits () and m1 = misses () in
        let b2 = build_with ld in
        Alcotest.(check bool) "warm same-dict build hits" true
          (hits () - h1 > 0);
        Alcotest.(check int) "and never misses" 0 (misses () - m1);
        Alcotest.(check bool) "warm output byte-identical" true
          (Bytes.equal b1.Pipeline.b_oat.Oat.text b2.Pipeline.b_oat.Oat.text);
        (* Rotate: same slots, new digest. The memo must miss — entries
           keyed to the old dictionary can never be replayed — and the
           rebuilt code must still be correct (identical text; only the
           recorded digest follows the rotation). *)
        let rotated = { ld with Linker.dct_digest = "rotated-digest" } in
        let h2 = hits () and m2 = misses () in
        let b3 = build_with rotated in
        Alcotest.(check int) "rotation never hits" 0 (hits () - h2);
        Alcotest.(check bool) "rotation misses" true (misses () - m2 > 0);
        Alcotest.(check bool) "rotated text identical" true
          (Bytes.equal b1.Pipeline.b_oat.Oat.text b3.Pipeline.b_oat.Oat.text);
        Alcotest.(check (option string))
          "rotated digest recorded" (Some "rotated-digest")
          b3.Pipeline.b_oat.Oat.dict_digest)
  ]

let suite =
  mining_tests @ link_tests @ vm_tests @ persist_tests @ rotation_tests
