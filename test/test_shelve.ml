(* lib/shelve tests: stub encoding, plan canonicalization and policy
   digests, the ?shelve pipeline composition, the OAT shelf round-trip,
   the oatdump annotations, and the interpreter's first-fault unshelve
   accounting — including the three fault edges the release-train
   workload leans on: a shelved method calling a shelved method, a
   shelved method reached from a dictionary-bound build, and a
   re-entrant fault during unshelve accounting (recursion through the
   freshly unshelved body). *)

open Calibro_dex
open Calibro_core
open Calibro_vm
module Shelve = Calibro_shelve.Shelve
module Oat = Calibro_oat.Oat_file
module Oatdump = Calibro_oat.Oatdump
module Dict = Calibro_dict.Dict
module Profile = Calibro_profile.Profile
module Appgen = Calibro_workload.Appgen
module Apps = Calibro_workload.Apps

let parse src =
  match Dex_text.parse src with
  | Ok apk -> (
    match Dex_check.check apk with
    | Ok () -> apk
    | Error errs ->
      Alcotest.failf "check: %s"
        (String.concat "; " (List.map Dex_check.error_to_string errs)))
  | Error e -> Alcotest.failf "parse: %s" e

let header = ".apk t\n.dex d\n.class t\n"
let m name = { Dex_ir.class_name = "t"; method_name = name }

(* The fault-edge program. Warm entry [f] calls cold [g] twice (first
   fault unshelves, second call goes through the repointed ArtMethod
   entry), cold [g] calls cold [h] (shelved -> shelved), and cold [fact]
   recurses (the recursive invokes land after the entry was repointed,
   so the fault must be charged exactly once). Every cold body compiles
   well past [Shelve.stub_bytes], so the splitter really shelves it. *)
let edges_src =
  header
  ^ {|.method h params #1 regs #3
  mul v1, v0, v0
  rtcall pLogValue (v1)
  add v2, v1, #3
  return v2
.end
.method g params #1 regs #4
  add v1, v0, #1
  rtcall pLogValue (v1)
  invoke t.h (v1) -> v2
  add v3, v2, v1
  return v3
.end
.method fact params #1 regs #4
  ifz ne v0, :rec
  const v1, #1
  return v1
:rec
  sub v1, v0, #1
  invoke t.fact (v1) -> v2
  mul v3, v0, v2
  return v3
.end
.method f params #1 regs #8 entry
  invoke t.g (v0) -> v1
  invoke t.g (v1) -> v2
  invoke t.fact (v0) -> v3
  rtcall pLogValue (v3)
  add v4, v1, v2
  add v4, v4, v3
  return v4
.end
|}

let warm_f = Shelve.plan ~coverage:0.9 ~warm:[ m "f" ]

let build ?shelve src =
  (Pipeline.build ~config:Config.baseline ?shelve (parse src)).Pipeline.b_oat

(* Run [f n] on a fresh interpreter; return (outcome, log, interp). *)
let call_f ?dict oat n =
  let t = Interp.load ?dict oat in
  let outcome = Interp.call t (m "f") [ n ] in
  (outcome, Interp.log t, t)

let check_faithful name (base_out, base_log, _) (out, log, _) =
  Alcotest.(check string) (name ^ " outcome")
    (match base_out with
     | Interp.Returned v -> Printf.sprintf "Returned %d" v
     | Interp.Thrown fn -> "Thrown " ^ Dex_ir.runtime_fn_name fn
     | Interp.Fault msg -> "Fault " ^ msg)
    (match out with
     | Interp.Returned v -> Printf.sprintf "Returned %d" v
     | Interp.Thrown fn -> "Thrown " ^ Dex_ir.runtime_fn_name fn
     | Interp.Fault msg -> "Fault " ^ msg);
  Alcotest.(check (list int)) (name ^ " log") base_log log

let fault_count t name =
  match List.assoc_opt (m name) (Interp.shelf_fault_counts t) with
  | Some n -> n
  | None -> Alcotest.failf "%s is not on the shelf" name

let unit_tests =
  [ Alcotest.test_case "stub encode/decode round-trip" `Quick (fun () ->
        List.iter
          (fun index ->
            let code = Shelve.stub_code ~index in
            Alcotest.(check int) "stub size" Shelve.stub_bytes
              (Bytes.length code);
            Alcotest.(check (option int)) "decodes" (Some index)
              (Shelve.decode_stub code ~offset:0))
          [ 0; 1; 5; 1000 ];
        (* a corrupted stub must not decode *)
        let code = Shelve.stub_code ~index:7 in
        Bytes.set code 7 '\x00';
        Alcotest.(check (option int)) "corrupt" None
          (Shelve.decode_stub code ~offset:0));
    Alcotest.test_case "plan rejects nonsense coverage" `Quick (fun () ->
        List.iter
          (fun coverage ->
            match Shelve.plan ~coverage ~warm:[ m "f" ] with
            | exception Shelve.Shelve_error _ -> ()
            | _ -> Alcotest.failf "coverage %f accepted" coverage)
          [ -0.1; 1.5; Float.nan ]);
    Alcotest.test_case "plan canonicalizes the warm set" `Quick (fun () ->
        let p = Shelve.plan ~coverage:0.5 ~warm:[ m "b"; m "a"; m "b" ] in
        Alcotest.(check int) "deduped" 2 (List.length p.Shelve.sp_warm);
        let q = Shelve.plan ~coverage:0.5 ~warm:[ m "a"; m "b" ] in
        Alcotest.(check string) "order-insensitive digest"
          q.Shelve.sp_digest p.Shelve.sp_digest);
    Alcotest.test_case "policy digest keys on coverage and warm set" `Quick
      (fun () ->
        let p = Shelve.plan ~coverage:0.5 ~warm:[ m "a" ] in
        let q = Shelve.plan ~coverage:0.6 ~warm:[ m "a" ] in
        let r = Shelve.plan ~coverage:0.5 ~warm:[ m "a"; m "b" ] in
        Alcotest.(check bool) "coverage matters" true
          (p.Shelve.sp_digest <> q.Shelve.sp_digest);
        Alcotest.(check bool) "warm set matters" true
          (p.Shelve.sp_digest <> r.Shelve.sp_digest))
  ]

let pipeline_tests =
  [ Alcotest.test_case "shelved build shrinks text, records the policy"
      `Quick (fun () ->
        let plain = build edges_src in
        let b =
          Pipeline.build ~config:Config.baseline ~shelve:warm_f
            (parse edges_src)
        in
        Alcotest.(check int) "three methods shelved" 3 b.Pipeline.b_shelved;
        let oat = b.Pipeline.b_oat in
        Alcotest.(check bool) "text shrank" true
          (Oat.text_size oat < Oat.text_size plain);
        match oat.Oat.shelve with
        | None -> Alcotest.fail "no shelf section"
        | Some s ->
          Alcotest.(check string) "policy digest recorded"
            warm_f.Shelve.sp_digest s.Oat.shf_digest;
          Alcotest.(check int) "one entry per shelved method" 3
            (List.length s.Oat.shf_entries));
    Alcotest.test_case "OAT round-trip preserves the shelf" `Quick (fun () ->
        let oat = build ~shelve:warm_f edges_src in
        match Oat.of_bytes (Oat.to_bytes oat) with
        | Error e -> Alcotest.failf "reparse: %s" e
        | Ok oat' -> (
          match (oat.Oat.shelve, oat'.Oat.shelve) with
          | Some s, Some s' ->
            Alcotest.(check string) "digest" s.Oat.shf_digest s'.Oat.shf_digest;
            Alcotest.(check bool) "image" true
              (Bytes.equal s.Oat.shf_image s'.Oat.shf_image);
            Alcotest.(check bool) "entries" true
              (s.Oat.shf_entries = s'.Oat.shf_entries);
            Alcotest.(check bool) "text" true
              (Bytes.equal oat.Oat.text oat'.Oat.text)
          | _ -> Alcotest.fail "shelf lost in round-trip"));
    Alcotest.test_case "oatdump annotates stubs and the policy" `Quick
      (fun () ->
        let dump = Oatdump.dump (build ~shelve:warm_f edges_src) in
        List.iter
          (fun affix ->
            Alcotest.(check bool) affix true
              (Astring.String.is_infix ~affix dump))
          [ "shelf-stub #"; "shelve policy"; "shelved t.g" ];
        (* an unshelved build must not grow shelf annotations *)
        let plain = Oatdump.dump (build edges_src) in
        Alcotest.(check bool) "plain dump has no stubs" false
          (Astring.String.is_infix ~affix:"shelf-stub" plain))
  ]

let fault_edge_tests =
  [ Alcotest.test_case "first fault unshelves once, later calls bypass"
      `Quick (fun () ->
        let base = call_f (build edges_src) 4 in
        let ((_, _, t) as shelved) = call_f (build ~shelve:warm_f edges_src) 4 in
        check_faithful "shelved" base shelved;
        Alcotest.(check int) "three on the shelf" 3
          (Interp.shelved_method_count t);
        Alcotest.(check int) "three unshelved" 3 (Interp.unshelved_count t);
        (* f calls g twice; the second call dispatches through the
           repointed ArtMethod entry, so g faults exactly once *)
        Alcotest.(check int) "g faults once" 1 (fault_count t "g");
        Alcotest.(check bool) "g unshelved" true
          (Interp.is_unshelved t (m "g")));
    Alcotest.test_case "shelved method calling a shelved method" `Quick
      (fun () ->
        let _, _, t = call_f (build ~shelve:warm_f edges_src) 4 in
        (* g faults, executes from the shelf, and its invoke of h faults
           again — both must land on their parked bodies with correct
           per-slot accounting *)
        Alcotest.(check int) "h faults once" 1 (fault_count t "h");
        Alcotest.(check bool) "h unshelved" true
          (Interp.is_unshelved t (m "h")));
    Alcotest.test_case "re-entrant fault during unshelve accounting" `Quick
      (fun () ->
        (* fact 4 recurses through the body that was unshelved by the
           outermost call: only the first frame may be charged a fault *)
        let _, _, t = call_f (build ~shelve:warm_f edges_src) 4 in
        Alcotest.(check int) "fact faults once" 1 (fault_count t "fact");
        Alcotest.(check int) "one unshelve for fact" 1
          (match
             List.assoc_opt (m "fact") (Interp.shelf_fault_counts t)
           with
           | Some _ when Interp.is_unshelved t (m "fact") -> 1
           | _ -> 0))
  ]

(* The composition edge: a dictionary-bound, shelve-enabled build of the
   demo app. Outlining mines the warm set, the dictionary binds the
   outlined bodies, and cold methods still fault into the shelf — the
   run must stay call-for-call faithful to the plain build. *)
let dict_tests =
  [ Alcotest.test_case "shelved method inside a dictionary-bound build"
      `Quick (fun () ->
        let gen = Appgen.generate Apps.demo in
        let apk = gen.Appgen.app and script = gen.Appgen.app_script in
        let config = Config.cto_ltbo_pl ~k:8 () in
        let run ?dict oat =
          let t = Interp.load ?dict oat in
          List.iter
            (fun (st : Appgen.script_step) ->
              for _ = 1 to st.Appgen.sc_repeat do
                match Interp.call t st.Appgen.sc_method st.Appgen.sc_args with
                | Interp.Fault msg -> Alcotest.failf "script fault: %s" msg
                | _ -> ()
              done)
            script;
          t
        in
        let plain = Pipeline.build ~config apk in
        let tp = run plain.Pipeline.b_oat in
        (* 0.99, not lower: the demo script concentrates its mass on a
           handful of methods, and a small warm set leaves LTBO nothing
           to outline — the test needs outlined bodies *and* executed
           cold methods in the same build *)
        let plan = Shelve.of_profile ~coverage:0.99 (Profile.of_interp tp) in
        let shelved = Pipeline.build ~config ~shelve:plan apk in
        Alcotest.(check bool) "something shelved" true
          (shelved.Pipeline.b_shelved > 0);
        (* the dictionary keeps only bodies at least two apps share;
           mine over the app and a same-code sibling, as a store would
           over two releases shipping the same library *)
        let sibling =
          Pipeline.build ~config ~shelve:plan
            { apk with Dex_ir.apk_name = apk.Dex_ir.apk_name ^ "-v2" }
        in
        let d = Dict.of_oats [ shelved.Pipeline.b_oat; sibling.Pipeline.b_oat ] in
        Alcotest.(check bool) "dictionary has bodies" true
          (Dict.n_bodies d > 0);
        let bound =
          Pipeline.build ~config ~dict:(Dict.linker_dict d) ~shelve:plan apk
        in
        Alcotest.(check (option string)) "bound against the dict"
          (Some (Dict.digest d)) bound.Pipeline.b_oat.Oat.dict_digest;
        let tb = run ~dict:(Dict.vm_image d) bound.Pipeline.b_oat in
        Alcotest.(check (list int)) "log faithful" (Interp.log tp)
          (Interp.log tb);
        Alcotest.(check bool) "cold methods faulted" true
          (Interp.unshelved_count tb > 0))
  ]

let oracle_tests =
  [ Alcotest.test_case "oracle +shelve variants pass" `Quick (fun () ->
        let apk = (Appgen.generate Apps.demo).Appgen.app in
        match
          Calibro_check.Oracle.run ~configs:[ Config.cto ] ~shelve:0.8 apk
        with
        | Error e -> Alcotest.failf "oracle error: %s" e
        | Ok r ->
          Alcotest.(check (list string)) "no divergences" []
            (List.map Calibro_check.Oracle.divergence_to_string
               r.Calibro_check.Oracle.r_divergences);
          Alcotest.(check bool) "+shelve variant ran" true
            (List.exists
               (fun n -> Astring.String.is_suffix ~affix:"+shelve" n)
               r.Calibro_check.Oracle.r_variants))
  ]

let suite = unit_tests @ pipeline_tests @ fault_edge_tests @ dict_tests @ oracle_tests
