(* Workload generator tests: generated apps are valid, deterministic,
   mixed as requested, and usable through the text format. *)

open Calibro_dex
open Calibro_workload

let demo () = Appgen.generate Apps.demo

let suite =
  [ Alcotest.test_case "generated apps pass the checker" `Quick (fun () ->
        let a = demo () in
        match Dex_check.check a.Appgen.app with
        | Ok () -> ()
        | Error errs ->
          Alcotest.failf "invalid: %s"
            (String.concat "; " (List.map Dex_check.error_to_string errs)));
    Alcotest.test_case "generation is deterministic per seed" `Quick
      (fun () ->
        let a = demo () and b = demo () in
        Alcotest.(check bool) "same apk" true (a.Appgen.app = b.Appgen.app);
        Alcotest.(check bool) "same script" true
          (a.Appgen.app_script = b.Appgen.app_script));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let p2 = { Apps.demo with Appgen.p_seed = 999 } in
        let a = demo () and b = Appgen.generate p2 in
        Alcotest.(check bool) "differ" true (a.Appgen.app <> b.Appgen.app));
    Alcotest.test_case "method mix matches the profile" `Quick (fun () ->
        let p = Apps.demo in
        let a = demo () in
        let methods = Dex_ir.methods_of_apk a.Appgen.app in
        let count pred = List.length (List.filter pred methods) in
        Alcotest.(check int) "native count" p.Appgen.p_n_native
          (count (fun m -> m.Dex_ir.is_native));
        Alcotest.(check int) "dispatchers" p.Appgen.p_n_dispatcher
          (count (fun (m : Dex_ir.meth) ->
               Array.exists
                 (function Dex_ir.Switch _ -> true | _ -> false)
                 m.Dex_ir.insns));
        (* entries = glue + kernels *)
        Alcotest.(check int) "entries"
          (p.Appgen.p_n_glue + p.Appgen.p_n_compute)
          (count (fun m -> m.Dex_ir.is_entry)));
    Alcotest.test_case "script only calls entry methods" `Quick (fun () ->
        let a = demo () in
        List.iter
          (fun (st : Appgen.script_step) ->
            match Dex_ir.find_method a.Appgen.app st.Appgen.sc_method with
            | Some m -> Alcotest.(check bool) "entry" true m.Dex_ir.is_entry
            | None -> Alcotest.fail "script references unknown method")
          a.Appgen.app_script);
    Alcotest.test_case "generated app survives the text format" `Quick
      (fun () ->
        let a = demo () in
        let text = Dex_text.to_string a.Appgen.app in
        match Dex_text.parse text with
        | Error e -> Alcotest.failf "reparse: %s" e
        | Ok apk2 ->
          Alcotest.(check bool) "round trip" true (a.Appgen.app = apk2));
    Alcotest.test_case "six apps are ordered by paper baseline size" `Quick
      (fun () ->
        (* Kuaishou largest, Taobao smallest, as in Table 4. *)
        let sizes =
          List.map
            (fun p ->
              let a = Appgen.generate p in
              ( p.Appgen.p_name,
                Calibro_core.Pipeline.text_size
                  (Calibro_core.Pipeline.build
                     ~config:Calibro_core.Config.baseline a.Appgen.app) ))
            Apps.all
        in
        let size n = List.assoc n sizes in
        List.iter
          (fun (n, _) ->
            Alcotest.(check bool) (n ^ " <= Kuaishou") true
              (size n <= size "Kuaishou");
            Alcotest.(check bool) (n ^ " >= Taobao") true
              (size n >= size "Taobao"))
          sizes);
    Alcotest.test_case "mutate raises the typed error on a constless apk"
      `Quick (fun () ->
        (* no Const anywhere: edit_one has nothing to flip and must raise
           Mutate_error, not Failure or Invalid_argument *)
        let src =
          ".apk t\n.dex d\n.class t\n"
          ^ ".method f params #1 regs #2 entry\n  add v1, v0, v0\n  return v1\n.end\n"
        in
        let apk =
          match Dex_text.parse src with
          | Ok apk -> apk
          | Error e -> Alcotest.failf "parse: %s" e
        in
        (match Mutate.edit_one ~seed:1 apk with
         | exception Mutate.Mutate_error _ -> ()
         | _ -> Alcotest.fail "edit_one accepted a constless apk");
        match Mutate.mutate ~seed:1 apk with
        | exception Mutate.Mutate_error _ -> ()
        | _ -> Alcotest.fail "mutate accepted a constless apk");
    Alcotest.test_case "release trains are deterministic" `Quick (fun () ->
        let apk = (demo ()).Appgen.app in
        let a = Train.generate ~deltas:4 ~seed:7 apk
        and b = Train.generate ~deltas:4 ~seed:7 apk in
        Alcotest.(check int) "length" (Train.length ~deltas:4)
          (List.length a);
        Alcotest.(check bool) "same train" true (a = b);
        let c = Train.generate ~deltas:4 ~seed:8 apk in
        Alcotest.(check bool) "seed matters" true
          (List.map (fun v -> v.Train.v_apk) a
          <> List.map (fun v -> v.Train.v_apk) c);
        (* version 0 is the untouched seed apk; later versions mutate *)
        let v0 = List.hd a in
        Alcotest.(check int) "seed index" 0 v0.Train.v_index;
        Alcotest.(check bool) "seed apk untouched" true
          (v0.Train.v_apk = apk && v0.Train.v_ops = []);
        List.iter
          (fun v ->
            if v.Train.v_index > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "version %d has deltas" v.Train.v_index)
                true
                (v.Train.v_ops <> []))
          a);
    Alcotest.test_case "negative train length is a typed error" `Quick
      (fun () ->
        let apk = (demo ()).Appgen.app in
        match Train.generate ~deltas:(-1) ~seed:1 apk with
        | exception Mutate.Mutate_error _ -> ()
        | _ -> Alcotest.fail "negative deltas accepted")
  ]
