(* Linker and OAT container tests: layout, symbol resolution, relocation,
   thunks, dump output, error paths. *)

open Calibro_aarch64
open Calibro_codegen
open Calibro_oat

let mk_method ?(relocs = []) ?(meta = Meta.empty) ~slot instrs =
  { Compiled_method.name =
      { Calibro_dex.Dex_ir.class_name = "t";
        method_name = Printf.sprintf "m%d" slot };
    slot;
    code = Encode.to_bytes instrs;
    relocs; meta; stackmap = []; num_params = 0; is_entry = false;
    cto_hits = [] }

let decode_at oat off = Decode.decode (Encode.word_of_bytes oat.Oat_file.text off)

let suite =
  [ Alcotest.test_case "linker lays methods out in slot order" `Quick
      (fun () ->
        let m0 = mk_method ~slot:0 [ Isa.Nop; Isa.Ret ] in
        let m1 = mk_method ~slot:1 [ Isa.Ret ] in
        let oat = Linker.link ~apk_name:"t" [ m1; m0 ] in
        (match oat.Oat_file.methods with
         | [ a; b ] ->
           Alcotest.(check int) "m0 first" 0 a.me_slot;
           Alcotest.(check int) "m0 at 0" 0 a.me_offset;
           Alcotest.(check int) "m1 after" 8 b.me_offset
         | _ -> Alcotest.fail "expected two methods");
        Alcotest.(check int) "text size" 12 (Oat_file.text_size oat));
    Alcotest.test_case "relocations bind bl to the target method" `Quick
      (fun () ->
        let caller =
          mk_method ~slot:0 ~relocs:[ (0, 1) ]
            [ Isa.Bl { target = Isa.Sym 1 }; Isa.Ret ]
        in
        let callee = mk_method ~slot:1 [ Isa.Ret ] in
        let oat = Linker.link ~apk_name:"t" [ caller; callee ] in
        (match decode_at oat 0 with
         | Isa.Bl { target = Isa.Rel 8 } -> ()
         | i -> Alcotest.failf "got %s" (Disasm.to_string i)));
    Alcotest.test_case "undefined symbol raises" `Quick (fun () ->
        let caller =
          mk_method ~slot:0 ~relocs:[ (0, 99) ]
            [ Isa.Bl { target = Isa.Sym 99 }; Isa.Ret ]
        in
        match Linker.link ~apk_name:"t" [ caller ] with
        | exception Linker.Link_error _ -> ()
        | _ -> Alcotest.fail "expected Link_error");
    Alcotest.test_case "duplicate symbol raises" `Quick (fun () ->
        (* Two definitions of one symbol used to silently overwrite each
           other ([Hashtbl.replace]), mislinking every call site of the
           first definition. *)
        let m0 = mk_method ~slot:3 [ Isa.Nop; Isa.Ret ] in
        let m1 = mk_method ~slot:3 [ Isa.Ret ] in
        (match Linker.link ~apk_name:"t" [ m0; m1 ] with
         | exception Linker.Link_error msg ->
           Alcotest.(check string) "names the symbol" "duplicate symbol 3"
             msg
         | _ -> Alcotest.fail "expected Link_error on duplicate slots");
        (* an outlined function colliding with a method slot is also fatal *)
        let xf =
          { Linker.xf_sym = 3; xf_code = Encode.to_bytes [ Isa.Ret ] }
        in
        match Linker.link ~apk_name:"t" ~extra:[ xf ] [ m0 ] with
        | exception Linker.Link_error msg ->
          Alcotest.(check string) "names the symbol" "duplicate symbol 3" msg
        | _ -> Alcotest.fail "expected Link_error on sym/slot collision");
    Alcotest.test_case "thunks precede methods and resolve" `Quick (fun () ->
        let caller =
          mk_method ~slot:0
            ~relocs:[ (0, Abi.thunk_sym Abi.T_stack_check) ]
            [ Isa.Bl { target = Isa.Sym (Abi.thunk_sym Abi.T_stack_check) };
              Isa.Ret ]
        in
        let oat =
          Linker.link ~apk_name:"t" ~thunks:Abi.all_thunks [ caller ]
        in
        Alcotest.(check int) "thunks recorded" (List.length Abi.all_thunks)
          (List.length oat.Oat_file.thunks);
        (* the call lands inside the stack-check thunk *)
        let target =
          match decode_at oat (List.hd oat.Oat_file.methods).me_offset with
          | Isa.Bl { target = Isa.Rel d } ->
            (List.hd oat.Oat_file.methods).me_offset + d
          | i -> Alcotest.failf "got %s" (Disasm.to_string i)
        in
        let th =
          List.find (fun t -> t.Oat_file.th = Abi.T_stack_check)
            oat.Oat_file.thunks
        in
        Alcotest.(check int) "bl targets the thunk" th.th_offset target);
    Alcotest.test_case "thunk bodies match their specification" `Quick
      (fun () ->
        List.iter
          (fun th ->
            let body = Abi.thunk_body th in
            (* call thunks tail-branch through x16; the stack check returns
               through the link register *)
            match (th, List.rev body) with
            | Abi.T_stack_check, Isa.Br 30 :: _ -> ()
            | (Abi.T_java_invoke | Abi.T_rt _), Isa.Br 16 :: _ -> ()
            | _ -> Alcotest.failf "bad thunk body for %s" (Abi.thunk_name th))
          Abi.all_thunks);
    Alcotest.test_case "extra (outlined) functions resolve" `Quick (fun () ->
        let xf =
          { Linker.xf_sym = 0x500000;
            xf_code = Encode.to_bytes [ Isa.Nop; Isa.Br Isa.lr ] }
        in
        let caller =
          mk_method ~slot:0 ~relocs:[ (0, 0x500000) ]
            [ Isa.Bl { target = Isa.Sym 0x500000 }; Isa.Ret ]
        in
        let oat = Linker.link ~apk_name:"t" ~extra:[ xf ] [ caller ] in
        (match oat.Oat_file.outlined with
         | [ o ] ->
           Alcotest.(check int) "after methods" 8 o.ol_offset;
           Alcotest.(check int) "size" 8 o.ol_size
         | _ -> Alcotest.fail "expected one outlined entry");
        match decode_at oat 0 with
        | Isa.Bl { target = Isa.Rel 8 } -> ()
        | i -> Alcotest.failf "got %s" (Disasm.to_string i));
    Alcotest.test_case "oatdump renders embedded data as data" `Quick
      (fun () ->
        let m =
          mk_method ~slot:0
            ~meta:
              { Meta.empty with
                Meta.embedded = [ { Meta.r_start = 4; r_len = 4 } ] }
            [ Isa.Ret; Isa.Data 0xDEADBEEFl ]
        in
        let oat = Linker.link ~apk_name:"t" [ m ] in
        let dump = Oatdump.dump oat in
        Alcotest.(check bool) "mentions .data" true
          (Astring.String.is_infix ~affix:".data" dump);
        Alcotest.(check bool) "mentions ret" true
          (Astring.String.is_infix ~affix:"ret" dump));
    Alcotest.test_case "data_size counts headers and stackmaps" `Quick
      (fun () ->
        let m0 = mk_method ~slot:0 [ Isa.Ret ] in
        let with_map =
          { m0 with
            Compiled_method.stackmap =
              [ { Stackmap.native_pc = 4; dex_pc = 0; live_vregs = 1 } ] }
        in
        let d0 =
          Oat_file.data_size (Linker.link ~apk_name:"t" [ m0 ])
        in
        let d1 =
          Oat_file.data_size (Linker.link ~apk_name:"t" [ with_map ])
        in
        Alcotest.(check int) "one stackmap entry"
          Oat_file.stackmap_entry_bytes (d1 - d0));
    Alcotest.test_case "corrupt file rejected on load" `Quick (fun () ->
        (match Oat_file.of_bytes (Bytes.of_string "NOTANOAT????????") with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected magic failure");
        match Oat_file.of_bytes (Bytes.of_string "CALIBOAT\xff\xff\xff\xff") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected version failure");
    Alcotest.test_case "truncated OAT reports truncation at every boundary"
      `Quick (fun () ->
        (* Regression: a cut inside any region used to escape as
           [Invalid_argument] from a blind [Bytes.sub]. *)
        let m0 = mk_method ~slot:0 [ Isa.Nop; Isa.Ret ] in
        let m1 = mk_method ~slot:1 [ Isa.Ret ] in
        let full = Oat_file.to_bytes (Linker.link ~apk_name:"t" [ m0; m1 ]) in
        let len = Bytes.length full in
        let payload_len = Int32.to_int (Bytes.get_int32_le full 12) in
        (* empty file, mid-magic, mid-version, mid method-table length,
           mid method table, mid text length, mid text segment *)
        let cuts =
          [ 0; 5; 10; 14; 16 + (payload_len / 2); 16 + payload_len + 2;
            len - 2 ]
        in
        List.iter
          (fun cut ->
            match Oat_file.of_bytes (Bytes.sub full 0 cut) with
            | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "cut at %d reports truncation (%s)" cut msg)
                true
                (Astring.String.is_infix ~affix:"truncated" msg)
            | Ok _ -> Alcotest.failf "cut at %d loaded" cut)
          cuts);
    Alcotest.test_case "no OAT prefix raises" `Quick (fun () ->
        let m0 = mk_method ~slot:0 [ Isa.Nop; Isa.Ret ] in
        let full = Oat_file.to_bytes (Linker.link ~apk_name:"t" [ m0 ]) in
        for cut = 0 to Bytes.length full - 1 do
          match Oat_file.of_bytes (Bytes.sub full 0 cut) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "prefix of %d bytes loaded" cut
          | exception e ->
            Alcotest.failf "prefix of %d bytes raised %s" cut
              (Printexc.to_string e)
        done);
    Alcotest.test_case "oatdump rejects a method extent past the text" `Quick
      (fun () ->
        let m0 = mk_method ~slot:0 [ Isa.Nop; Isa.Ret ] in
        let oat = Linker.link ~apk_name:"t" [ m0 ] in
        let bad =
          { oat with
            Oat_file.methods =
              List.map
                (fun (me : Oat_file.method_entry) ->
                  { me with Oat_file.me_size = me.Oat_file.me_size + 64 })
                oat.Oat_file.methods }
        in
        match Oatdump.dump bad with
        | exception Oat_file.Oat_error msg ->
          Alcotest.(check bool) "names the method" true
            (Astring.String.is_infix ~affix:"t.m0" msg)
        | exception e ->
          Alcotest.failf "%s escaped" (Printexc.to_string e)
        | _ -> Alcotest.fail "expected Oat_error")
  ]
