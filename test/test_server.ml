(* The compilation-service battery: wire-codec round-trips and rejection
   of damaged frames, admission-queue semantics, and a live in-process
   server driven over real Unix-domain sockets — byte-identity of served
   builds against the in-process pipeline across the oracle matrix, typed
   Overloaded under a full queue, deadlines, abusive-client faults
   (lib/check), and SIGTERM graceful drain.

   The fleet layer on top: Transport endpoint strings and port-0 binds,
   consistent-hash ring properties (uniform spread, minimal disruption),
   router failover against the Fault.Server.Fixture mini-daemons (accept-
   then-close, stall-mid-frame, die-after-k), health-check revival, and
   end-to-end byte-identity of the same requests served over a Unix
   socket, direct TCP, and the router across a forced failover. None of
   the failover tests sleeps on a real clock: fixtures synchronize on
   condition variables and the router's backoff sleep is injected. *)

open Calibro_core
open Calibro_workload
module Protocol = Calibro_server.Protocol
module Queue = Calibro_server.Queue
module Worker = Calibro_server.Worker
module Server = Calibro_server.Server
module Client = Calibro_server.Client
module Router = Calibro_server.Router
module Transport = Calibro_server.Transport
module Fault = Calibro_check.Fault
module Fixture = Calibro_check.Fault.Server.Fixture
module Chash = Calibro_chash.Chash

let demo_app = lazy (Appgen.generate Apps.demo)

let request ?profile ?deadline_ms ?dict ?shelve ?(config = Config.baseline)
    dexsim =
  { Protocol.rq_config = config;
    rq_dexsim = dexsim;
    rq_profile = profile;
    rq_deadline_ms = deadline_ms;
    rq_dict = dict;
    rq_shelve = shelve }

let demo_request ?profile ?deadline_ms ?dict ?shelve ?config () =
  request ?profile ?deadline_ms ?dict ?shelve ?config
    (Calibro_dex.Dex_text.to_string (Lazy.force demo_app).Appgen.app)

let sock_counter = ref 0

(* A fresh socket path per server; the server unlinks it on drain. *)
let fresh_socket () =
  incr sock_counter;
  Printf.sprintf "%s/calibro-test-%d-%d.sock"
    (Filename.get_temp_dir_name ())
    (Unix.getpid ()) !sock_counter

let fresh_endpoint () = Transport.Unix_socket { path = fresh_socket () }

let with_server ?(workers = 2) ?(queue_capacity = 16) ?(recv_timeout_s = 10.0)
    ?(dict = fun () -> None) ?cache ?endpoint ?pgo ?shelve f =
  let cache =
    match cache with Some c -> c | None -> Calibro_cache.Cache.create ()
  in
  let endpoint =
    match endpoint with Some ep -> ep | None -> fresh_endpoint ()
  in
  let t =
    Server.create
      { Server.endpoint;
        workers;
        queue_capacity;
        cache = Some cache;
        recv_timeout_s;
        default_deadline_ms = None;
        dict;
        pgo;
        shelve }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain t;
      Server.drain t)
    (fun () -> f t)

let response =
  Alcotest.testable
    (fun fmt -> function
      | Protocol.Built { oat; stats } ->
        Format.fprintf fmt "Built(%d bytes, %d methods)" (String.length oat)
          stats.Protocol.bs_methods
      | Protocol.Rejected r ->
        Format.fprintf fmt "Rejected(%s)" (Protocol.rejection_to_string r)
      | Protocol.Dict_info { di_digest } ->
        Format.fprintf fmt "Dict_info(%s)"
          (Option.value ~default:"-" di_digest)
      | Protocol.Report_ack { ra_drift; ra_relink } ->
        Format.fprintf fmt "Report_ack(%.3f, relink=%b)" ra_drift ra_relink)
    (fun a b ->
      match (a, b) with
      | Protocol.Built a, Protocol.Built b ->
        (* Byte equality of the whole OAT image; stats must agree except
           for the wall-clock field. *)
        String.equal a.oat b.oat
        && a.stats.Protocol.bs_text_size = b.stats.Protocol.bs_text_size
        && a.stats.Protocol.bs_methods = b.stats.Protocol.bs_methods
        && a.stats.Protocol.bs_thunks = b.stats.Protocol.bs_thunks
        && a.stats.Protocol.bs_outlined = b.stats.Protocol.bs_outlined
      | Protocol.Rejected a, Protocol.Rejected b -> a = b
      | Protocol.Dict_info { di_digest = a }, Protocol.Dict_info { di_digest = b }
        -> a = b
      | Protocol.Report_ack a, Protocol.Report_ack b ->
        a.ra_drift = b.ra_drift && a.ra_relink = b.ra_relink
      | _ -> false)

(* ---- Wire codec ---------------------------------------------------------- *)

let sample_config =
  { (Config.cto_ltbo_pl ~k:4 ()) with
    Config.name = "wire-sample";
    hot_methods =
      [ { Calibro_dex.Dex_ir.class_name = "com.a.B"; method_name = "run" };
        { Calibro_dex.Dex_ir.class_name = "com.c.D"; method_name = "go" } ] }

let sample_request =
  { Protocol.rq_config = sample_config;
    rq_dexsim = ".apk x\n.dex d\n";
    rq_profile = Some "com.a.B run 500\n";
    rq_deadline_ms = Some 1500;
    rq_dict = Some (String.make 32 'd');
    rq_shelve = Some 0.85 }

let sample_stats =
  { Protocol.bs_text_size = 40960;
    bs_methods = 123;
    bs_thunks = 7;
    bs_outlined = 31;
    bs_build_s = 0.4375 }

let check_request_roundtrip name rq =
  match Protocol.decode_request (Protocol.encode_request rq) with
  | Error e -> Alcotest.failf "%s did not decode: %s" name e
  | Ok rq' ->
    Alcotest.(check bool) (name ^ " round-trips") true
      (Protocol.Build rq = rq')

let check_response_roundtrip name resp =
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Error e -> Alcotest.failf "%s did not decode: %s" name e
  | Ok resp' -> Alcotest.check response name resp resp'

let codec_tests =
  [ Alcotest.test_case "request round-trips exactly" `Quick (fun () ->
        check_request_roundtrip "full request" sample_request;
        check_request_roundtrip "bare request"
          { Protocol.rq_config = Config.baseline;
            rq_dexsim = "";
            rq_profile = None;
            rq_deadline_ms = None;
            rq_dict = None;
            rq_shelve = None };
        (* The dictionary handshake is its own one-byte request. *)
        match Protocol.decode_request (Protocol.encode_hello ()) with
        | Ok Protocol.Hello -> ()
        | Ok _ -> Alcotest.fail "hello decoded as a build request"
        | Error e -> Alcotest.failf "hello did not decode: %s" e);
    Alcotest.test_case "every response round-trips exactly" `Quick (fun () ->
        check_response_roundtrip "built"
          (Protocol.Built { oat = "\x00\x01binary\xffpayload";
                            stats = sample_stats });
        List.iter
          (fun rej ->
            check_response_roundtrip
              (Protocol.rejection_to_string rej)
              (Protocol.Rejected rej))
          [ Protocol.Malformed "bad tag";
            Protocol.Parse_error "line 3: nope";
            Protocol.Build_failed "undefined method";
            Protocol.Overloaded;
            Protocol.Deadline_exceeded;
            Protocol.Draining;
            Protocol.Unavailable;
            Protocol.Internal "Stack_overflow";
            Protocol.Dict_mismatch
              { dm_want = Some "aaaa"; dm_have = Some "bbbb" };
            Protocol.Dict_mismatch { dm_want = Some "aaaa"; dm_have = None };
            Protocol.Dict_mismatch { dm_want = None; dm_have = None } ];
        check_response_roundtrip "dict_info some"
          (Protocol.Dict_info { di_digest = Some (String.make 32 'e') });
        check_response_roundtrip "dict_info none"
          (Protocol.Dict_info { di_digest = None }));
    Alcotest.test_case "every truncation of a request is rejected" `Quick
      (fun () ->
        (* Cutting the payload anywhere must produce a typed decode error
           naming a field — never a wrong request, never an exception. *)
        let full = Protocol.encode_request sample_request in
        for len = 0 to String.length full - 1 do
          match Protocol.decode_request (String.sub full 0 len) with
          | Error m ->
            Alcotest.(check bool)
              (Printf.sprintf "error at %d names the damage" len)
              true
              (String.length m > 0)
          | Ok _ ->
            Alcotest.failf "truncation to %d bytes decoded as a request" len
        done);
    Alcotest.test_case "trailing bytes are rejected" `Quick (fun () ->
        match
          Protocol.decode_request (Protocol.encode_request sample_request ^ "x")
        with
        | Error m ->
          Alcotest.(check bool) "mentions trailing" true
            (Astring.String.is_infix ~affix:"trailing" m)
        | Ok _ -> Alcotest.fail "trailing garbage decoded as a request");
    Alcotest.test_case "frame layer refuses bad magic and oversized frames"
      `Quick (fun () ->
        let feed bytes =
          let r, w = Unix.pipe () in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                [ r; w ])
            (fun () ->
              ignore
                (Unix.write_substring w bytes 0 (String.length bytes));
              Unix.close w;
              Protocol.read_frame r)
        in
        (match feed (Protocol.to_frame "hello") with
         | payload -> Alcotest.(check string) "round-trip" "hello" payload
         | exception Protocol.Frame_error m ->
           Alcotest.failf "well-formed frame refused: %s" m);
        (match feed "XLB1\x05\x00\x00\x00hello" with
         | _ -> Alcotest.fail "bad magic accepted"
         | exception Protocol.Frame_error m ->
           Alcotest.(check bool) "names the magic" true
             (Astring.String.is_infix ~affix:"magic" m));
        (match feed "CLB1\xff\xff\xff\x7fxx" with
         | _ -> Alcotest.fail "oversized length accepted"
         | exception Protocol.Frame_error m ->
           Alcotest.(check bool) "names the size" true
             (Astring.String.is_infix ~affix:"oversized" m));
        match feed (Fault.Server.first_half (Protocol.to_frame "hello")) with
        | _ -> Alcotest.fail "half frame accepted"
        | exception Protocol.Frame_error m ->
          Alcotest.(check bool) "names the EOF" true
            (Astring.String.is_infix ~affix:"EOF" m));
    Alcotest.test_case "oversized payload is refused before sending" `Quick
      (fun () ->
        let r, w = Unix.pipe () in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              [ r; w ])
          (fun () ->
            match
              Protocol.write_frame w (String.make (Protocol.max_frame + 1) 'x')
            with
            | () -> Alcotest.fail "oversized frame sent"
            | exception Protocol.Frame_error _ -> ()));
    Alcotest.test_case "frame fuzz: every corruption surfaces typed" `Quick
      (fun () ->
        (* The same corpus `calibro_fuzz --proto` runs in CI, a few seeds
           of it: truncations, bad magic, oversized declared lengths and
           garbage must all be typed Frame_errors with no over-allocation. *)
        let o = Calibro_check.Fuzz.Proto.run ~seeds:5 () in
        Alcotest.(check (list string))
          "no frame-fuzz failures" [] o.Calibro_check.Fuzz.Proto.pf_failures);
    Alcotest.test_case "router payload peeks see through the codec" `Quick
      (fun () ->
        (* request_app_digest must equal the digest of the dexsim text for
           any well-formed request, whatever the config, and refuse
           garbage; response_is_draining matches exactly Rejected
           Draining. *)
        let payload = Protocol.encode_request sample_request in
        (match Protocol.request_app_digest payload with
         | Some d ->
           Alcotest.(check string) "digest of dexsim"
             (Chash.string sample_request.Protocol.rq_dexsim) d
         | None -> Alcotest.fail "well-formed request had no digest");
        Alcotest.(check (option string)) "garbage has no digest" None
          (Protocol.request_app_digest "garbage");
        Alcotest.(check bool) "draining is draining" true
          (Protocol.response_is_draining
             (Protocol.encode_response (Protocol.Rejected Protocol.Draining)));
        List.iter
          (fun resp ->
            Alcotest.(check bool) "not draining" false
              (Protocol.response_is_draining (Protocol.encode_response resp)))
          [ Protocol.Rejected Protocol.Overloaded;
            Protocol.Rejected Protocol.Unavailable;
            Protocol.Built { oat = "x"; stats = sample_stats } ]) ]

(* ---- Transport endpoints -------------------------------------------------- *)

let endpoint_eq =
  Alcotest.testable
    (fun fmt ep -> Format.pp_print_string fmt (Transport.to_string ep))
    ( = )

let transport_tests =
  [ Alcotest.test_case "endpoint strings parse, print and round-trip" `Quick
      (fun () ->
        let ok s ep =
          match Transport.of_string s with
          | Ok got -> Alcotest.check endpoint_eq s ep got
          | Error e -> Alcotest.failf "%S refused: %s" s e
        in
        ok "unix:/tmp/x.sock" (Transport.Unix_socket { path = "/tmp/x.sock" });
        ok "/tmp/x.sock" (Transport.Unix_socket { path = "/tmp/x.sock" });
        ok "tcp:127.0.0.1:8080"
          (Transport.Tcp { host = "127.0.0.1"; port = 8080 });
        ok "127.0.0.1:8080" (Transport.Tcp { host = "127.0.0.1"; port = 8080 });
        ok "localhost:0" (Transport.Tcp { host = "localhost"; port = 0 });
        (* to_string output is itself parseable — config files and CLI
           flags can echo endpoints verbatim. *)
        List.iter
          (fun ep ->
            match Transport.of_string (Transport.to_string ep) with
            | Ok ep' ->
              Alcotest.check endpoint_eq (Transport.to_string ep) ep ep'
            | Error e ->
              Alcotest.failf "%s did not re-parse: %s"
                (Transport.to_string ep) e)
          [ Transport.Unix_socket { path = "/run/calibro.sock" };
            Transport.Tcp { host = "10.0.0.7"; port = 9131 } ];
        List.iter
          (fun s ->
            match Transport.of_string s with
            | Error _ -> ()
            | Ok ep ->
              Alcotest.failf "%S parsed as %s" s (Transport.to_string ep))
          [ ""; "tcp:127.0.0.1"; "tcp:host:99999"; "tcp::123"; "nohost" ]);
    Alcotest.test_case "a TCP port-0 listen resolves a connectable port"
      `Quick (fun () ->
        let fd, resolved =
          Transport.listen (Transport.Tcp { host = "127.0.0.1"; port = 0 })
        in
        Fun.protect
          ~finally:(fun () -> Transport.close_listener resolved fd)
          (fun () ->
            (match resolved with
             | Transport.Tcp { port; _ } ->
               Alcotest.(check bool) "kernel picked a port" true (port > 0)
             | ep ->
               Alcotest.failf "resolved to %s" (Transport.to_string ep));
            let c = Transport.connect resolved in
            let s, _ = Unix.accept fd in
            Unix.close s;
            Unix.close c)) ]

(* ---- The consistent-hash ring --------------------------------------------- *)

(* 10k app digests, the keyspace the distribution properties quantify
   over. Deterministic, so these are exact assertions, not flaky
   statistics. *)
let ring_keys =
  lazy (Array.init 10_000 (fun i -> Chash.string (Printf.sprintf "app-%d" i)))

let ring_tests =
  [ Alcotest.test_case "keys spread uniformly across 3..16 shards" `Quick
      (fun () ->
        let keys = Lazy.force ring_keys in
        for shards = 3 to 16 do
          let ring = Router.Ring.make ~shards ~replicas:128 in
          let counts = Array.make shards 0 in
          Array.iter
            (fun k ->
              let o = Router.Ring.lookup ring k in
              counts.(o) <- counts.(o) + 1)
            keys;
          let expected = float_of_int (Array.length keys) /. float_of_int shards in
          (* Chi-square-style bound: with 128 virtual nodes per shard the
             arc-share coefficient of variation is ~1/sqrt(128) ≈ 9%, so a
             ±35% band per shard is a >3σ envelope — tight enough to catch
             a broken mix (a linear point function clumps 10x), loose
             enough to hold for every shard count. *)
          let chi2 = ref 0.0 in
          Array.iteri
            (fun i c ->
              let dev = (float_of_int c -. expected) /. expected in
              chi2 := !chi2 +. (float_of_int c -. expected) ** 2.0 /. expected;
              if Float.abs dev > 0.35 then
                Alcotest.failf
                  "%d shards: shard %d owns %d keys (expected %.0f, %.0f%% off)"
                  shards i c expected (100.0 *. dev))
            counts;
          if !chi2 > 8.0 *. expected then
            Alcotest.failf "%d shards: chi-square %.0f is out of family"
              shards !chi2
        done);
    Alcotest.test_case "removing a shard remaps only its own keys" `Quick
      (fun () ->
        let keys = Lazy.force ring_keys in
        List.iter
          (fun shards ->
            let ring = Router.Ring.make ~shards ~replicas:128 in
            let removed = shards / 2 in
            let ring' = Router.Ring.remove ring removed in
            let remapped = ref 0 in
            Array.iter
              (fun k ->
                let before = Router.Ring.lookup ring k in
                let after = Router.Ring.lookup ring' k in
                if before <> removed then
                  (* The minimal-disruption law, exactly: a surviving
                     shard's keys never move. *)
                  (if before <> after then
                     Alcotest.failf
                       "%d shards: key moved %d -> %d though %d was removed"
                       shards before after removed)
                else begin
                  incr remapped;
                  if after = removed then
                    Alcotest.failf "%d shards: key still on removed shard"
                      shards
                end)
              keys;
            let fraction =
              float_of_int !remapped /. float_of_int (Array.length keys)
            in
            if fraction > 1.5 /. float_of_int shards then
              Alcotest.failf
                "%d shards: %.1f%% of keys remapped (bound %.1f%%)"
                shards (100.0 *. fraction)
                (100.0 *. 1.5 /. float_of_int shards))
          [ 3; 5; 8; 16 ]);
    Alcotest.test_case "failover order starts at the owner, covers all shards"
      `Quick (fun () ->
        let keys = Lazy.force ring_keys in
        let ring = Router.Ring.make ~shards:5 ~replicas:64 in
        Array.iter
          (fun k ->
            let order = Router.Ring.order ring k in
            Alcotest.(check int) "head is the owner"
              (Router.Ring.lookup ring k)
              (List.hd order);
            Alcotest.(check (list int)) "every shard exactly once"
              [ 0; 1; 2; 3; 4 ]
              (List.sort compare order))
          (Array.sub keys 0 200));
    Alcotest.test_case "the ring is deterministic across processes" `Quick
      (fun () ->
        (* Same shape, same ring: the routing table is pure structure, so
           a restarted router (or a second one) agrees shard-for-shard —
           pin a few lookups so an accidental reseed cannot slip by. *)
        let ring = Router.Ring.make ~shards:4 ~replicas:128 in
        let ring2 = Router.Ring.make ~shards:4 ~replicas:128 in
        Array.iter
          (fun k ->
            Alcotest.(check int) "two rings agree"
              (Router.Ring.lookup ring k)
              (Router.Ring.lookup ring2 k))
          (Array.sub (Lazy.force ring_keys) 0 500)) ]

(* ---- Admission queue ------------------------------------------------------ *)

let push_result =
  Alcotest.testable
    (fun fmt r ->
      Format.pp_print_string fmt
        (match r with
         | Queue.Pushed -> "Pushed"
         | Queue.Full -> "Full"
         | Queue.Closed -> "Closed"))
    ( = )

let queue_tests =
  [ Alcotest.test_case "bounded: Full at capacity, never blocks" `Quick
      (fun () ->
        let q = Queue.create ~capacity:2 () in
        Alcotest.check push_result "1st" Queue.Pushed (Queue.try_push q 1);
        Alcotest.check push_result "2nd" Queue.Pushed (Queue.try_push q 2);
        Alcotest.check push_result "3rd is Full" Queue.Full
          (Queue.try_push q 3);
        Alcotest.(check int) "depth" 2 (Queue.length q);
        Alcotest.(check (option int)) "FIFO" (Some 1) (Queue.pop q);
        Alcotest.check push_result "slot freed" Queue.Pushed
          (Queue.try_push q 3));
    Alcotest.test_case "close drains the backlog, then returns None" `Quick
      (fun () ->
        let q = Queue.create ~capacity:4 () in
        ignore (Queue.try_push q 1);
        ignore (Queue.try_push q 2);
        Queue.close q;
        Alcotest.check push_result "push after close" Queue.Closed
          (Queue.try_push q 3);
        Alcotest.(check (option int)) "drains 1" (Some 1) (Queue.pop q);
        Alcotest.(check (option int)) "drains 2" (Some 2) (Queue.pop q);
        Alcotest.(check (option int)) "then None" None (Queue.pop q);
        Alcotest.(check (option int)) "stays None" None (Queue.pop q));
    Alcotest.test_case "blocked pop is woken by a push" `Quick (fun () ->
        let q = Queue.create ~capacity:1 () in
        let got = Atomic.make None in
        let th =
          Thread.create (fun () -> Atomic.set got (Queue.pop q)) ()
        in
        Thread.delay 0.02;
        ignore (Queue.try_push q 42);
        Thread.join th;
        Alcotest.(check (option int)) "woken with the item" (Some 42)
          (Atomic.get got));
    Alcotest.test_case "blocked pop is woken by close" `Quick (fun () ->
        let q : int Queue.t = Queue.create ~capacity:1 () in
        let done_ = Atomic.make false in
        let th =
          Thread.create
            (fun () ->
              ignore (Queue.pop q);
              Atomic.set done_ true)
            ()
        in
        Thread.delay 0.02;
        Queue.close q;
        Thread.join th;
        Alcotest.(check bool) "popper exited" true (Atomic.get done_)) ]

(* ---- Served builds vs the in-process pipeline ---------------------------- *)

(* Hot set of the demo app under its bundled script (as test_cache does),
   enabling the HfOpti row of the matrix. *)
let demo_hot () =
  let a = Lazy.force demo_app in
  let b = Pipeline.build ~cache:None ~config:Config.baseline a.Appgen.app in
  let t = Calibro_vm.Interp.load b.Pipeline.b_oat in
  List.iter
    (fun (st : Appgen.script_step) ->
      for _ = 1 to st.Appgen.sc_repeat do
        ignore (Calibro_vm.Interp.call t st.Appgen.sc_method st.Appgen.sc_args)
      done)
    a.Appgen.app_script;
  Calibro_profile.Profile.of_interp t

let serve_tests =
  [ Alcotest.test_case
      "served builds are byte-identical across the oracle matrix" `Slow
      (fun () ->
        let prof = demo_hot () in
        let hot = Calibro_profile.Profile.hot_set prof in
        with_server @@ fun t ->
        List.iter
          (fun (config : Config.t) ->
            let rq = demo_request ~config () in
            let expected = Worker.build_response ~cache:None rq in
            match Client.request ~endpoint:(Server.endpoint t) rq with
            | Error m -> Alcotest.failf "%s: %s" config.Config.name m
            | Ok served ->
              Alcotest.check response config.Config.name expected served)
          (Config.baseline :: Config.matrix ~hot_methods:hot ()));
    Alcotest.test_case "a wire profile reaches the hot-function filter" `Quick
      (fun () ->
        let prof = demo_hot () in
        let rq =
          demo_request
            ~profile:(Calibro_profile.Profile.to_string prof)
            ~config:(Config.cto_ltbo_pl ~k:2 ())
            ()
        in
        let expected = Worker.build_response ~cache:None rq in
        (match expected with
         | Protocol.Built _ -> ()
         | Protocol.Rejected r ->
           Alcotest.failf "profiled build failed in-process: %s"
             (Protocol.rejection_to_string r)
         | Protocol.Dict_info _ | Protocol.Report_ack _ ->
           Alcotest.fail "profiled build answered a non-build response");
        with_server @@ fun t ->
        match Client.request ~endpoint:(Server.endpoint t) rq with
        | Error m -> Alcotest.fail m
        | Ok served -> Alcotest.check response "profiled build" expected served);
    Alcotest.test_case "a full queue answers typed Overloaded" `Quick
      (fun () ->
        (* One worker, one queue slot, a burst of concurrent requests:
           some build, at least one must be refused with Overloaded — and
           every request gets *an* answer (nothing hangs, nothing dies). *)
        with_server ~workers:1 ~queue_capacity:1 @@ fun t ->
        let n = 12 in
        let outcomes = Array.make n (Error "not run") in
        let threads =
          List.init n (fun i ->
              Thread.create
                (fun () ->
                  outcomes.(i) <-
                    Client.request ~endpoint:(Server.endpoint t)
                      (demo_request ~config:Config.cto ()))
                ())
        in
        List.iter Thread.join threads;
        let built = ref 0 and overloaded = ref 0 in
        Array.iter
          (function
            | Ok (Protocol.Built _) -> incr built
            | Ok (Protocol.Rejected Protocol.Overloaded) -> incr overloaded
            | Ok (Protocol.Rejected r) ->
              Alcotest.failf "unexpected rejection: %s"
                (Protocol.rejection_to_string r)
            | Ok (Protocol.Dict_info _ | Protocol.Report_ack _) ->
              Alcotest.fail "unexpected non-build response"
            | Error m -> Alcotest.failf "transport error: %s" m)
          outcomes;
        Alcotest.(check int) "every request answered" n (!built + !overloaded);
        Alcotest.(check bool) "some built" true (!built >= 1);
        Alcotest.(check bool)
          (Printf.sprintf "some refused (built %d, overloaded %d)" !built
             !overloaded)
          true (!overloaded >= 1);
        let tt = Server.totals t in
        Alcotest.(check int) "admission tallies cover the burst" n
          (tt.Server.t_accepted + tt.Server.t_overloaded));
    Alcotest.test_case "an expired deadline is answered, not built" `Quick
      (fun () ->
        with_server @@ fun t ->
        match
          Client.request ~endpoint:(Server.endpoint t)
            (demo_request ~deadline_ms:1 ~config:(Config.cto_ltbo_pl ~k:2 ()) ())
        with
        | Ok (Protocol.Rejected Protocol.Deadline_exceeded) -> ()
        | Ok r ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (match r with
             | Protocol.Built _ -> "Built"
             | Protocol.Rejected rej -> Protocol.rejection_to_string rej
             | Protocol.Dict_info _ -> "Dict_info"
             | Protocol.Report_ack _ -> "Report_ack")
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "the daemon serves identically over TCP" `Quick
      (fun () ->
        (* The transport must be invisible to the payload: one request,
           served over a loopback TCP port-0 bind, byte-identical to the
           in-process build like its Unix-socket twin. *)
        let rq = demo_request ~config:Config.cto () in
        let expected = Worker.build_response ~cache:None rq in
        with_server
          ~endpoint:(Transport.Tcp { host = "127.0.0.1"; port = 0 })
        @@ fun t ->
        (match Server.endpoint t with
         | Transport.Tcp { port; _ } ->
           Alcotest.(check bool) "resolved port" true (port > 0)
         | ep -> Alcotest.failf "resolved to %s" (Transport.to_string ep));
        match Client.request ~endpoint:(Server.endpoint t) rq with
        | Error m -> Alcotest.fail m
        | Ok served -> Alcotest.check response "tcp-served build" expected served)
  ]

(* ---- Zero-copy Built frames ----------------------------------------------

   [Protocol.emit_built] is a second, off-heap implementation of the Built
   wire encoding, and [Worker.respond_built] is its delivery path. Both
   are held byte-for-byte to the original Buffer chain
   ([Oat_file.to_bytes] / [encode_response] / [to_frame]) — the contract
   that lets the daemon switch paths without any client noticing. *)

module Oat_file = Calibro_oat.Oat_file
module Arena = Calibro_oat.Arena

let built_fixtures () =
  (* Real builds across configs (exercising thunks, outlined entries and
     metadata) plus handmade edge containers (empty text, no methods). *)
  let real =
    List.filter_map
      (fun (config : Config.t) ->
        match Worker.build_oat ~cache:None (demo_request ~config ()) with
        | Ok (oat, stats) -> Some (config.Config.name, oat, stats)
        | Error r ->
          Alcotest.failf "%s failed in-process: %s" config.Config.name
            (Protocol.rejection_to_string r))
      [ Config.baseline; Config.cto; Config.cto_ltbo_pl ~k:2 () ]
  in
  let stats0 =
    { Protocol.bs_text_size = 0;
      bs_methods = 0;
      bs_thunks = 0;
      bs_outlined = 0;
      bs_build_s = 0.0 }
  in
  let empty =
    ( "empty container",
      { Oat_file.apk_name = "empty";
        text = Bytes.create 0;
        methods = [];
        thunks = [];
        outlined = [];
        dict_digest = None;
        shelve = None },
      stats0 )
  in
  let tiny =
    ( "outlined-only container",
      { Oat_file.apk_name = "tiny";
        text = Bytes.make 16 '\x1f';
        methods = [];
        thunks = [];
        outlined = [ { Oat_file.ol_offset = 0; ol_size = 16 } ];
        dict_digest = Some (String.make 32 'a');
        shelve = None },
      { stats0 with Protocol.bs_text_size = 16; bs_outlined = 1 } )
  in
  real @ [ empty; tiny ]

let zero_copy_tests =
  [ Alcotest.test_case "arena Built frame = Buffer-path frame, byte for byte"
      `Quick
      (fun () ->
        List.iter
          (fun (name, oat, stats) ->
            let reference =
              Protocol.to_frame
                (Protocol.encode_response
                   (Protocol.Built
                      { oat = Bytes.to_string (Oat_file.to_bytes oat);
                        stats }))
            in
            let a = Arena.create () in
            Protocol.emit_built a ~oat ~stats;
            Alcotest.(check string) name reference
              (Bytes.to_string (Arena.to_bytes a)))
          (built_fixtures ()));
    Alcotest.test_case "emit_built refuses an oversized frame" `Quick
      (fun () ->
        (* A container whose text alone exceeds max_frame must be refused
           by the writer (typed Frame_error), mirroring read_frame's bound
           on the other side. *)
        let oat =
          { Oat_file.apk_name = "huge";
            text = Bytes.create (Protocol.max_frame + 1);
            methods = [];
            thunks = [];
            outlined = [];
            dict_digest = None;
            shelve = None }
        in
        let stats =
          { Protocol.bs_text_size = Bytes.length oat.Oat_file.text;
            bs_methods = 0;
            bs_thunks = 0;
            bs_outlined = 0;
            bs_build_s = 0.0 }
        in
        let a = Arena.create () in
        match Protocol.emit_built a ~oat ~stats with
        | () -> Alcotest.fail "oversized Built frame was emitted"
        | exception Protocol.Frame_error _ -> ());
    Alcotest.test_case "respond_built round-trips to build_response" `Quick
      (fun () ->
        (* The full delivery path — scratch arena, staged writes, close —
           read back through the standard client-side decoder, against the
           reference encoder's response for the same build. *)
        let rq = demo_request ~config:Config.cto () in
        let expected = Worker.build_response ~cache:None rq in
        let oat, stats =
          match Worker.build_oat ~cache:None rq with
          | Ok v -> v
          | Error r ->
            Alcotest.failf "build failed in-process: %s"
              (Protocol.rejection_to_string r)
        in
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let delivered = ref false in
        let writer =
          Thread.create
            (fun () -> delivered := Worker.respond_built b ~oat ~stats)
            ()
        in
        let served =
          match Protocol.decode_response (Protocol.read_frame a) with
          | Ok resp -> resp
          | Error m -> Alcotest.failf "undecodable response: %s" m
        in
        Thread.join writer;
        Unix.close a;
        Alcotest.(check bool) "delivered" true !delivered;
        Alcotest.check response "respond_built = build_response" expected
          served);
    Alcotest.test_case "respond_built to a dead peer reports undelivered"
      `Quick
      (fun () ->
        let oat, stats =
          match
            Worker.build_oat ~cache:None (demo_request ~config:Config.cto ())
          with
          | Ok v -> v
          | Error r ->
            Alcotest.failf "build failed in-process: %s"
              (Protocol.rejection_to_string r)
        in
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.close a;
        (* EPIPE territory: must come back false, never raise, and the fd
           must be closed (a second close raises EBADF). *)
        Alcotest.(check bool) "undelivered" false
          (Worker.respond_built b ~oat ~stats);
        Alcotest.(check bool) "fd closed" true
          (match Unix.close b with
          | () -> false
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> true));
    Alcotest.test_case "write_fd raises Write_error on a zero-length write"
      `Quick
      (fun () ->
        (* Regression: a [write] returning 0 for a nonempty buffer used to
           spin the writer thread forever. Inject one and demand the typed
           error instead. *)
        let a = Arena.create () in
        Arena.add_string a "undeliverable payload";
        let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close null)
          (fun () ->
            match Arena.write_fd ~write:(fun _ _ _ _ -> 0) a null with
            | () -> Alcotest.fail "zero-length write was not an error"
            | exception Arena.Write_error _ -> ()));
    Alcotest.test_case "write_fd propagates EPIPE from a dead peer" `Quick
      (fun () ->
        (* The raw arena layer under respond_built: writing to a peer that
           hung up must surface the broken pipe as Unix_error, not hide it
           — respond_built's undelivered=false depends on seeing it. *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.close a;
        let arena = Arena.create () in
        Arena.add_string arena (String.make 65536 'x');
        Fun.protect
          ~finally:(fun () -> Unix.close b)
          (fun () ->
            match Arena.write_fd arena b with
            | () -> Alcotest.fail "write to a dead peer succeeded"
            | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
              -> ())) ]

(* ---- Abusive clients (lib/check fault points) ----------------------------- *)

let raw_connect t = Transport.connect (Server.endpoint t)

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

(* After the abuse, the server must still answer a well-formed request
   correctly — the fault cost one request, not the daemon. *)
let assert_still_serving t =
  match Client.request ~endpoint:(Server.endpoint t) (demo_request ()) with
  | Ok (Protocol.Built _) -> ()
  | Ok (Protocol.Rejected r) ->
    Alcotest.failf "server degraded after fault: %s"
      (Protocol.rejection_to_string r)
  | Ok (Protocol.Dict_info _ | Protocol.Report_ack _) ->
    Alcotest.fail "server answered a non-build response after fault"
  | Error m -> Alcotest.failf "server dead after fault: %s" m

let fault_tests =
  [ Alcotest.test_case "drop-mid-frame costs one connection" `Quick (fun () ->
        with_server @@ fun t ->
        Fault.Server.inject Fault.Server.Drop_mid_frame;
        let frame =
          Protocol.to_frame (Protocol.encode_request (demo_request ()))
        in
        let fd = raw_connect t in
        write_all fd (Fault.Server.first_half frame);
        Unix.close fd;
        (* The reader sees EOF mid-frame and gives up on that connection. *)
        assert_still_serving t);
    Alcotest.test_case "stall-mid-frame is reaped by the receive timeout"
      `Quick (fun () ->
        with_server ~recv_timeout_s:0.2 @@ fun t ->
        Fault.Server.inject Fault.Server.Stall_mid_frame;
        let frame =
          Protocol.to_frame (Protocol.encode_request (demo_request ()))
        in
        let fd = raw_connect t in
        write_all fd (Fault.Server.first_half frame);
        (* Hold the connection open, never sending the rest. *)
        Thread.delay 0.5;
        assert_still_serving t;
        Unix.close fd;
        let tt = Server.totals t in
        Alcotest.(check bool)
          (Printf.sprintf "stall counted (stalled %d)" tt.Server.t_stalled)
          true
          (tt.Server.t_stalled >= 1));
    Alcotest.test_case "a poisoned job fails only its own request" `Quick
      (fun () ->
        with_server @@ fun t ->
        Fault.Server.inject Fault.Server.Poison_job;
        (match
           Client.request ~endpoint:(Server.endpoint t)
             (request Fault.Server.poison_dexsim)
         with
         | Ok (Protocol.Rejected (Protocol.Build_failed _)) -> ()
         | Ok (Protocol.Built _) -> Alcotest.fail "poisoned job built"
         | Ok (Protocol.Rejected r) ->
           Alcotest.failf "expected Build_failed, got %s"
             (Protocol.rejection_to_string r)
         | Ok (Protocol.Dict_info _ | Protocol.Report_ack _) ->
           Alcotest.fail "unexpected non-build response"
         | Error m -> Alcotest.fail m);
        assert_still_serving t);
    Alcotest.test_case "garbage bytes get a typed Malformed answer" `Quick
      (fun () ->
        with_server @@ fun t ->
        let fd = raw_connect t in
        write_all fd "GET / HTTP/1.1\r\n\r\n";
        (match Protocol.read_frame fd with
         | payload -> (
           match Protocol.decode_response payload with
           | Ok (Protocol.Rejected (Protocol.Malformed _)) -> ()
           | Ok _ -> Alcotest.fail "garbage was not answered Malformed"
           | Error e -> Alcotest.failf "unreadable answer: %s" e)
         | exception Protocol.Frame_error _ ->
           (* The server may also just hang up on garbage; either way it
              must keep serving. *)
           ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        assert_still_serving t) ]

(* ---- The router against misbehaving shards -------------------------------- *)

(* A canned response payload a fixture can serve: decodable and
   distinguishable by its message. *)
let canned name = Protocol.encode_response (Protocol.Rejected (Protocol.Internal name))

(* A garbage payload (deliberately NOT a decodable request, exercising the
   router's raw-digest fallback) that the ring routes to shard [want]. *)
let payload_routed_to ~replicas ~shards want =
  let ring = Router.Ring.make ~shards ~replicas in
  let rec go i =
    if i > 100_000 then failwith "no payload routes to the wanted shard"
    else
      let p = Printf.sprintf "fixture-payload-%d" i in
      if Router.Ring.lookup ring (Chash.string p) = want then p else go (i + 1)
  in
  go 0

(* One raw request through an endpoint: frame out, frame in, decode. *)
let raw_request endpoint payload =
  let fd = Transport.connect endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Protocol.write_frame fd payload;
      Protocol.decode_response (Protocol.read_frame fd))

let rejection_answer =
  Alcotest.testable
    (fun fmt -> function
      | Ok r ->
        Format.pp_print_string fmt
          (match r with
           | Protocol.Built _ -> "Built"
           | Protocol.Rejected rej -> Protocol.rejection_to_string rej
           | Protocol.Dict_info _ -> "Dict_info"
           | Protocol.Report_ack _ -> "Report_ack")
      | Error e -> Format.fprintf fmt "Error(%s)" e)
    ( = )

(* A router over [shards] with everything timing-dependent neutered: no
   health thread (tests call check_health), no receive timeout (failures
   are EOF- or reset-driven), and the backoff sleep recorded instead of
   slept — the clock injection the failover tests rely on. *)
let with_router ?(replicas = 32) ?max_attempts ~shards f =
  let sleeps = ref [] in
  let cfg =
    { (Router.default_config
         ~listen:(fresh_endpoint ())
         ~shards:(Array.of_list shards))
      with
      Router.replicas;
      health_period_s = 0.0;
      recv_timeout_s = 0.0;
      sleep = (fun d -> sleeps := d :: !sleeps) }
  in
  let cfg =
    match max_attempts with
    | None -> cfg
    | Some m -> { cfg with Router.max_attempts = m }
  in
  let t = Router.create cfg in
  Fun.protect
    ~finally:(fun () ->
      Router.request_drain t;
      Router.drain t)
    (fun () -> f t sleeps)

(* A TCP endpoint nobody listens on: bound, resolved, closed. *)
let dead_endpoint () =
  let fd, ep = Transport.listen (Transport.Tcp { host = "127.0.0.1"; port = 0 }) in
  Unix.close fd;
  ep

let router_tests =
  [ Alcotest.test_case "a shard that accepts and hangs up is failed over"
      `Quick (fun () ->
        let bad = Fixture.start Fixture.Accept_close in
        let good = Fixture.start (Fixture.Serve (fun _ -> canned "good")) in
        Fun.protect
          ~finally:(fun () -> Fixture.stop bad; Fixture.stop good)
          (fun () ->
            with_router
              ~shards:[ Fixture.endpoint bad; Fixture.endpoint good ]
              (fun t sleeps ->
                let payload = payload_routed_to ~replicas:32 ~shards:2 0 in
                Alcotest.check rejection_answer "served by the survivor"
                  (Ok (Protocol.Rejected (Protocol.Internal "good")))
                  (raw_request (Router.endpoint t) payload);
                Alcotest.(check bool) "bad shard marked down" false
                  (Router.shard_up t 0);
                let tt = Router.totals t in
                Alcotest.(check int) "bad shard charged the retry" 1
                  tt.Router.t_shards.(0).Router.s_retries;
                Alcotest.(check int) "bad shard charged the failover" 1
                  tt.Router.t_shards.(0).Router.s_failovers;
                Alcotest.(check int) "survivor forwarded it" 1
                  tt.Router.t_shards.(1).Router.s_forwarded;
                (* One backoff draw, within the attempt-1 ceiling; the
                   sleep was injected, so the test never actually waited. *)
                (match !sleeps with
                 | [ d ] ->
                   Alcotest.(check bool) "jitter in [0, base]" true
                     (d >= 0.0 && d <= 0.01)
                 | ds ->
                   Alcotest.failf "expected 1 backoff, saw %d"
                     (List.length ds)))));
    Alcotest.test_case "a shard stalling mid-frame is failed over on release"
      `Quick (fun () ->
        let stall =
          Fixture.start (Fixture.Stall_mid_frame { response = canned "stall" })
        in
        let good = Fixture.start (Fixture.Serve (fun _ -> canned "good")) in
        Fun.protect
          ~finally:(fun () -> Fixture.stop stall; Fixture.stop good)
          (fun () ->
            with_router
              ~shards:[ Fixture.endpoint stall; Fixture.endpoint good ]
              (fun t _sleeps ->
                let payload = payload_routed_to ~replicas:32 ~shards:2 0 in
                let answer = Atomic.make (Error "not run") in
                let client =
                  Thread.create
                    (fun () ->
                      Atomic.set answer
                        (raw_request (Router.endpoint t) payload))
                    ()
                in
                (* Wait for the shard to be wedged mid-response (condition
                   variable, not a sleep), then cut it loose: the router
                   sees EOF inside the frame and re-routes. *)
                Fixture.await_stalled stall;
                Fixture.release stall;
                Thread.join client;
                Alcotest.check rejection_answer "served by the survivor"
                  (Ok (Protocol.Rejected (Protocol.Internal "good")))
                  (Atomic.get answer);
                let tt = Router.totals t in
                Alcotest.(check int) "stalled shard charged the failover" 1
                  tt.Router.t_shards.(0).Router.s_failovers)));
    Alcotest.test_case "a shard dying after k responses loses only later work"
      `Quick (fun () ->
        let flaky =
          Fixture.start
            (Fixture.Die_after { responses = 1; serve = (fun _ -> canned "flaky") })
        in
        let good = Fixture.start (Fixture.Serve (fun _ -> canned "good")) in
        Fun.protect
          ~finally:(fun () -> Fixture.stop flaky; Fixture.stop good)
          (fun () ->
            with_router
              ~shards:[ Fixture.endpoint flaky; Fixture.endpoint good ]
              (fun t _sleeps ->
                let payload = payload_routed_to ~replicas:32 ~shards:2 0 in
                Alcotest.check rejection_answer "first request served in place"
                  (Ok (Protocol.Rejected (Protocol.Internal "flaky")))
                  (raw_request (Router.endpoint t) payload);
                Alcotest.check rejection_answer
                  "second request fails over to the survivor"
                  (Ok (Protocol.Rejected (Protocol.Internal "good")))
                  (raw_request (Router.endpoint t) payload);
                Alcotest.(check int) "fixture died after exactly 1 response" 1
                  (Fixture.served flaky);
                let tt = Router.totals t in
                Alcotest.(check int) "dead shard served the first" 1
                  tt.Router.t_shards.(0).Router.s_forwarded;
                Alcotest.(check int) "dead shard charged one failover" 1
                  tt.Router.t_shards.(0).Router.s_failovers;
                Alcotest.(check int) "survivor served the second" 1
                  tt.Router.t_shards.(1).Router.s_forwarded)));
    Alcotest.test_case "all shards down answers typed Unavailable" `Quick
      (fun () ->
        with_router ~max_attempts:3
          ~shards:[ dead_endpoint (); dead_endpoint () ]
          (fun t sleeps ->
            Alcotest.check rejection_answer "typed, not a hang or a drop"
              (Ok (Protocol.Rejected Protocol.Unavailable))
              (raw_request (Router.endpoint t) "anything");
            let tt = Router.totals t in
            Alcotest.(check int) "counted unavailable" 1 tt.Router.t_unavailable;
            Alcotest.(check int) "all attempts were retries" 3
              (tt.Router.t_shards.(0).Router.s_retries
               + tt.Router.t_shards.(1).Router.s_retries);
            Alcotest.(check int) "nothing forwarded" 0 tt.Router.t_forwarded;
            (* max_attempts - 1 backoffs, capped exponential: ceilings
               base, 2*base — every draw within its ceiling. *)
            let ds = List.rev !sleeps in
            Alcotest.(check int) "backoffs between attempts" 2 (List.length ds);
            List.iteri
              (fun i d ->
                let ceiling = Float.min 0.2 (0.01 *. float_of_int (1 lsl i)) in
                Alcotest.(check bool)
                  (Printf.sprintf "draw %d within ceiling %.3f" i ceiling)
                  true
                  (d >= 0.0 && d <= ceiling))
              ds));
    Alcotest.test_case "a health check revives a returned shard" `Quick
      (fun () ->
        (* One shard, not yet listening: requests get Unavailable and the
           shard is marked down. Start the daemon on that very endpoint,
           run one health probe — no restart, no timer — and the next
           request is served. *)
        let ep = fresh_endpoint () in
        with_router ~max_attempts:2 ~shards:[ ep ] (fun t _sleeps ->
            Alcotest.check rejection_answer "down: typed Unavailable"
              (Ok (Protocol.Rejected Protocol.Unavailable))
              (raw_request (Router.endpoint t) "anything");
            Alcotest.(check bool) "marked down" false (Router.shard_up t 0);
            let fx = Fixture.start ~endpoint:ep (Fixture.Serve (fun _ -> canned "back")) in
            Fun.protect
              ~finally:(fun () -> Fixture.stop fx)
              (fun () ->
                Router.check_health t;
                Alcotest.(check bool) "revived by the probe" true
                  (Router.shard_up t 0);
                Alcotest.check rejection_answer "served again"
                  (Ok (Protocol.Rejected (Protocol.Internal "back")))
                  (raw_request (Router.endpoint t) "anything"))));
    Alcotest.test_case "garbage to the router is answered Malformed" `Quick
      (fun () ->
        let good = Fixture.start (Fixture.Serve (fun _ -> canned "good")) in
        Fun.protect
          ~finally:(fun () -> Fixture.stop good)
          (fun () ->
            with_router ~shards:[ Fixture.endpoint good ] (fun t _sleeps ->
                let fd = Transport.connect (Router.endpoint t) in
                write_all fd "GET / HTTP/1.1\r\n\r\n";
                (match Protocol.read_frame fd with
                 | payload -> (
                   match Protocol.decode_response payload with
                   | Ok (Protocol.Rejected (Protocol.Malformed _)) -> ()
                   | Ok _ -> Alcotest.fail "garbage not answered Malformed"
                   | Error e -> Alcotest.failf "unreadable answer: %s" e)
                 | exception Protocol.Frame_error _ -> ());
                (try Unix.close fd with Unix.Unix_error _ -> ());
                let tt = Router.totals t in
                Alcotest.(check int) "counted malformed" 1 tt.Router.t_malformed)));
    Alcotest.test_case "count_as_conn_error separates peer I/O from bugs"
      `Quick (fun () ->
        (* The reader-thread drop policy, pinned: peer-inducible I/O and
           protocol failures drop the connection; programming errors and
           asynchronous exceptions must re-raise, never be swallowed. *)
        List.iter
          (fun e ->
            Alcotest.(check bool) (Printexc.to_string e) true
              (Router.count_as_conn_error e))
          [ Unix.Unix_error (Unix.ECONNRESET, "read", "");
            Unix.Unix_error (Unix.EPIPE, "write", "");
            Protocol.Frame_error "short frame";
            Sys_error "I/O error";
            End_of_file ];
        List.iter
          (fun e ->
            Alcotest.(check bool) (Printexc.to_string e) false
              (Router.count_as_conn_error e))
          [ Out_of_memory;
            Stack_overflow;
            Assert_failure ("router.ml", 1, 1);
            Not_found;
            Invalid_argument "bug";
            Failure "bug" ]);
    Alcotest.test_case "an I/O escape from the reader is dropped and counted"
      `Quick (fun () ->
        (* Regression: the reader used to swallow *every* exception with
           [try ... with _ -> ()]. Provoke an expected-class escape — the
           injected backoff sleep raises Unix_error once the lone dead
           shard forces a retry — and demand the dropped connection shows
           up in [t_conn_errors] and, after drain, in the
           [router.conn_errors] counter. *)
        let cfg =
          { (Router.default_config
               ~listen:(fresh_endpoint ())
               ~shards:[| dead_endpoint () |])
            with
            Router.replicas = 32;
            health_period_s = 0.0;
            recv_timeout_s = 0.0;
            sleep = (fun _ -> raise (Unix.Unix_error (Unix.EIO, "sleep", "")))
          }
        in
        let t = Router.create cfg in
        let c0 = Calibro_obs.Obs.Counter.value "router.conn_errors" in
        Fun.protect
          ~finally:(fun () ->
            Router.request_drain t;
            Router.drain t)
          (fun () ->
            (match raw_request (Router.endpoint t) "anything" with
            | Ok _ | Error _ ->
              Alcotest.fail "connection was answered, not dropped"
            | exception Protocol.Frame_error _ -> ());
            let tt = Router.totals t in
            Alcotest.(check int) "drop counted" 1 tt.Router.t_conn_errors;
            Alcotest.(check int) "nothing forwarded" 0 tt.Router.t_forwarded);
        Alcotest.(check int) "mirrored to router.conn_errors at drain" 1
          (Calibro_obs.Obs.Counter.value "router.conn_errors" - c0))
  ]

(* ---- End-to-end byte-identity across transports --------------------------- *)

let e2e_tests =
  [ Alcotest.test_case
      "unix, tcp and routed-with-failover serve identical bytes" `Slow
      (fun () ->
        (* The same request matrix through all three front doors — and the
           routed pass survives a forced mid-matrix shard drain. Every
           answer must be byte-identical to the in-process build, and the
           router's accounting must add up. *)
        let configs =
          [ Config.baseline; Config.cto; Config.cto_ltbo_pl ~k:2 () ]
        in
        let matrix = List.map (fun config -> demo_request ~config ()) configs in
        let expected = List.map (Worker.build_response ~cache:None) matrix in
        let check_pass name served =
          List.iter2
            (fun (e, (c : Config.t)) s ->
              Alcotest.check response
                (Printf.sprintf "%s: %s" name c.Config.name)
                e s)
            (List.combine expected configs)
            served
        in
        let serve_all t =
          List.map
            (fun rq ->
              match Client.request ~endpoint:(Server.endpoint t) rq with
              | Ok resp -> resp
              | Error m -> Alcotest.failf "transport: %s" m)
            matrix
        in
        (* Front door 1: the Unix-domain socket. *)
        with_server (fun t -> check_pass "unix" (serve_all t));
        (* Front door 2: direct TCP. *)
        with_server ~endpoint:(Transport.Tcp { host = "127.0.0.1"; port = 0 })
          (fun t -> check_pass "tcp" (serve_all t));
        (* Front door 3: two TCP shards behind the router. All requests
           share one dexsim, so shard affinity routes them to a single
           owner — drain exactly that shard and re-ask: the answer must
           come back identical from the survivor, through a failover. *)
        let mk_server () =
          Server.create
            { (Server.default_config
                 ~endpoint:(Transport.Tcp { host = "127.0.0.1"; port = 0 }))
              with
              Server.cache = Some (Calibro_cache.Cache.create ()) }
        in
        let s0 = mk_server () and s1 = mk_server () in
        let shards = [ Server.endpoint s0; Server.endpoint s1 ] in
        let servers = [| s0; s1 |] in
        let drained = Array.make 2 false in
        let drain i =
          if not drained.(i) then begin
            Server.request_drain servers.(i);
            Server.drain servers.(i);
            drained.(i) <- true
          end
        in
        Fun.protect
          ~finally:(fun () -> drain 0; drain 1)
          (fun () ->
            with_router ~replicas:128 ~shards (fun t _sleeps ->
                let routed =
                  List.map
                    (fun rq ->
                      match
                        Client.request ~endpoint:(Router.endpoint t) rq
                      with
                      | Ok resp -> resp
                      | Error m -> Alcotest.failf "router transport: %s" m)
                    matrix
                in
                check_pass "router" routed;
                let owner =
                  Router.Ring.lookup
                    (Router.Ring.make ~shards:2 ~replicas:128)
                    (Chash.string
                       (List.hd matrix).Protocol.rq_dexsim)
                in
                let before = Router.totals t in
                Alcotest.(check int)
                  "shard affinity: one owner served the whole matrix"
                  (List.length matrix)
                  before.Router.t_shards.(owner).Router.s_forwarded;
                (* The forced failover: take the owner down, re-ask. *)
                drain owner;
                (match
                   Client.request ~endpoint:(Router.endpoint t)
                     (List.hd matrix)
                 with
                 | Ok resp ->
                   Alcotest.check response "post-failover bytes"
                     (List.hd expected) resp
                 | Error m -> Alcotest.failf "post-failover transport: %s" m);
                let tt = Router.totals t in
                Alcotest.(check bool) "owner charged a failover" true
                  (tt.Router.t_shards.(owner).Router.s_failovers >= 1);
                Alcotest.(check int) "survivor served the retry" 1
                  tt.Router.t_shards.(1 - owner).Router.s_forwarded;
                Alcotest.(check int) "every client frame accounted"
                  tt.Router.t_requests
                  (tt.Router.t_forwarded + tt.Router.t_unavailable
                  + tt.Router.t_malformed);
                Alcotest.(check int) "forwarded = per-shard sum"
                  tt.Router.t_forwarded
                  (Array.fold_left
                     (fun acc (s : Router.shard_totals) ->
                       acc + s.Router.s_forwarded)
                     0 tt.Router.t_shards))))
  ]

(* ---- The shared-dictionary service path ----------------------------------- *)

module Dict = Calibro_dict.Dict

(* A dictionary every demo body lands in: mine the demo build against
   itself, so each outlined body clears the >= 2 apps bar. *)
let demo_dict () =
  let b =
    Pipeline.build ~cache:None
      ~config:(Config.cto_ltbo_pl ~k:8 ())
      (Lazy.force demo_app).Appgen.app
  in
  Dict.of_oats [ b.Pipeline.b_oat; b.Pipeline.b_oat ]

let dict_service_tests =
  [ Alcotest.test_case "hello reports the served dictionary digest" `Quick
      (fun () ->
        let d = demo_dict () in
        let serving = Atomic.make (Some (Dict.linker_dict d)) in
        with_server ~dict:(fun () -> Atomic.get serving) @@ fun t ->
        (match Client.hello ~endpoint:(Server.endpoint t) with
         | Ok got ->
           Alcotest.(check (option string)) "digest" (Some (Dict.digest d)) got
         | Error m -> Alcotest.fail m);
        (* Rotation to "no dictionary" is visible on the very next hello. *)
        Atomic.set serving None;
        match Client.hello ~endpoint:(Server.endpoint t) with
        | Ok got -> Alcotest.(check (option string)) "rotated away" None got
        | Error m -> Alcotest.fail m);
    Alcotest.test_case
      "a dict-relative build is served byte-identical and bound" `Quick
      (fun () ->
        let d = demo_dict () in
        let ld = Dict.linker_dict d in
        with_server ~dict:(fun () -> Some ld) @@ fun t ->
        let rq =
          demo_request ~dict:(Dict.digest d)
            ~config:(Config.cto_ltbo_pl ~k:8 ())
            ()
        in
        let expected = Worker.build_response ~cache:None ~dict:ld rq in
        (match expected with
         | Protocol.Built { oat; _ } -> (
           (* The reference build really did bind into the dictionary. *)
           match Calibro_oat.Oat_file.of_bytes (Bytes.of_string oat) with
           | Ok o ->
             Alcotest.(check (option string)) "digest recorded"
               (Some (Dict.digest d))
               o.Calibro_oat.Oat_file.dict_digest
           | Error e -> Alcotest.fail e)
         | _ -> Alcotest.fail "reference dict build did not build");
        match Client.request ~endpoint:(Server.endpoint t) rq with
        | Error m -> Alcotest.fail m
        | Ok served -> Alcotest.check response "dict-relative build" expected
                         served);
    Alcotest.test_case "a stale dictionary digest is a typed mismatch" `Quick
      (fun () ->
        let d = demo_dict () in
        let ld = Dict.linker_dict d in
        with_server ~dict:(fun () -> Some ld) @@ fun t ->
        (* Asking for a dictionary the daemon does not serve. *)
        (match
           Client.request ~endpoint:(Server.endpoint t)
             (demo_request ~dict:"0000deadbeef0000" ())
         with
         | Ok
             (Protocol.Rejected
                (Protocol.Dict_mismatch { dm_want; dm_have })) ->
           Alcotest.(check (option string)) "want echoes the request"
             (Some "0000deadbeef0000") dm_want;
           Alcotest.(check (option string)) "have names the served dict"
             (Some (Dict.digest d)) dm_have
         | Ok r ->
           Alcotest.failf "expected Dict_mismatch, got %s"
             (match r with
              | Protocol.Built _ -> "Built"
              | Protocol.Rejected rej -> Protocol.rejection_to_string rej
              | Protocol.Dict_info _ -> "Dict_info"
             | Protocol.Report_ack _ -> "Report_ack")
         | Error m -> Alcotest.fail m);
        (* A self-contained request still builds against the same daemon. *)
        assert_still_serving t);
    Alcotest.test_case "rotation mid-run: old digest refused, new one served"
      `Quick (fun () ->
        let d = demo_dict () in
        let ld = Dict.linker_dict d in
        let rotated = { ld with Calibro_oat.Linker.dct_digest = "rotated" } in
        let serving = Atomic.make (Some ld) in
        with_server ~dict:(fun () -> Atomic.get serving) @@ fun t ->
        let rq = demo_request ~dict:(Dict.digest d) () in
        (match Client.request ~endpoint:(Server.endpoint t) rq with
         | Ok (Protocol.Built _) -> ()
         | Ok r ->
           Alcotest.failf "pre-rotation build refused: %s"
             (match r with
              | Protocol.Rejected rej -> Protocol.rejection_to_string rej
              | _ -> "?")
         | Error m -> Alcotest.fail m);
        (* Rotate: the same request is now stale — typed mismatch naming
           both digests, so the client knows to re-handshake. *)
        Atomic.set serving (Some rotated);
        (match Client.request ~endpoint:(Server.endpoint t) rq with
         | Ok
             (Protocol.Rejected
                (Protocol.Dict_mismatch { dm_want; dm_have })) ->
           Alcotest.(check (option string)) "stale want" (Some (Dict.digest d))
             dm_want;
           Alcotest.(check (option string)) "rotated have" (Some "rotated")
             dm_have
         | Ok _ -> Alcotest.fail "stale digest was not refused"
         | Error m -> Alcotest.fail m);
        match Client.hello ~endpoint:(Server.endpoint t) with
        | Ok got ->
          Alcotest.(check (option string)) "hello sees the rotation"
            (Some "rotated") got
        | Error m -> Alcotest.fail m) ]

(* ---- Graceful drain ------------------------------------------------------- *)

let drain_tests =
  [ Alcotest.test_case "SIGTERM drains: in-flight finish, then exit" `Quick
      (fun () ->
        let cache = Calibro_cache.Cache.create () in
        let socket = fresh_socket () in
        let endpoint = Transport.Unix_socket { path = socket } in
        let t =
          Server.create
            { Server.endpoint;
              workers = 2;
              queue_capacity = 16;
              cache = Some cache;
              recv_timeout_s = 10.0;
              default_deadline_ms = None;
              dict = (fun () -> None);
              pgo = None;
              shelve = None }
        in
        Server.install_sigterm t;
        Fun.protect
          ~finally:(fun () ->
            Sys.set_signal Sys.sigterm Sys.Signal_default;
            Sys.set_signal Sys.sigint Sys.Signal_default)
          (fun () ->
            (* A client already mid-build when the signal lands. *)
            let result = Atomic.make (Error "not run") in
            let client =
              Thread.create
                (fun () ->
                  Atomic.set result
                    (Client.request ~endpoint (demo_request ())))
                ()
            in
            Thread.delay 0.05;
            Unix.kill (Unix.getpid ()) Sys.sigterm;
            (* join returns only after the drain has fully completed. *)
            Server.join t;
            Thread.join client;
            (match Atomic.get result with
             | Ok (Protocol.Built _) -> ()
             | Ok (Protocol.Rejected Protocol.Draining) ->
               (* The request raced the signal and was refused — typed,
                  not dropped. *)
               ()
             | Ok (Protocol.Rejected r) ->
               Alcotest.failf "in-flight request got %s"
                 (Protocol.rejection_to_string r)
             | Ok (Protocol.Dict_info _ | Protocol.Report_ack _) ->
               Alcotest.fail "in-flight request got a non-build response"
             | Error m -> Alcotest.failf "in-flight request lost: %s" m);
            Alcotest.(check bool) "socket removed" false
              (Sys.file_exists socket);
            (* A late client finds nobody listening — never a hang. *)
            (match Client.request ~endpoint (demo_request ()) with
             | Error _ -> ()
             | Ok _ -> Alcotest.fail "request served after drain");
            Alcotest.(check bool) "drain recorded" true (Server.draining t)));
    Alcotest.test_case "rolling drain: shards leave one by one, service stays"
      `Quick (fun () ->
        (* The fleet upgrade path: three well-behaved fixture shards
           behind the router; drain them one at a time (stop = the
           fixture's SIGTERM) and keep asking. Every request must be
           answered by some live shard until the last one is gone — then,
           and only then, typed Unavailable. *)
        let fixtures =
          Array.init 3 (fun i ->
              Fixture.start
                (Fixture.Serve (fun _ -> canned (Printf.sprintf "shard%d" i))))
        in
        Fun.protect
          ~finally:(fun () -> Array.iter Fixture.stop fixtures)
          (fun () ->
            with_router
              ~shards:(Array.to_list (Array.map Fixture.endpoint fixtures))
              (fun t _sleeps ->
                let payload = payload_routed_to ~replicas:32 ~shards:3 0 in
                let ask () = raw_request (Router.endpoint t) payload in
                let expect_served step =
                  match ask () with
                  | Ok (Protocol.Rejected (Protocol.Internal _)) -> ()
                  | answer ->
                    Alcotest.failf "%s: %s" step
                      (match answer with
                       | Ok (Protocol.Rejected r) ->
                         Protocol.rejection_to_string r
                       | Ok (Protocol.Built _) -> "Built"
                       | Ok (Protocol.Dict_info _) -> "Dict_info"
                       | Ok (Protocol.Report_ack _) -> "Report_ack"
                       | Error e -> e)
                in
                expect_served "all three up";
                Fixture.stop fixtures.(0);
                expect_served "two up";
                Fixture.stop fixtures.(1);
                expect_served "one up";
                Fixture.stop fixtures.(2);
                (match ask () with
                 | Ok (Protocol.Rejected Protocol.Unavailable) -> ()
                 | _ -> Alcotest.fail "all drained: expected Unavailable");
                let tt = Router.totals t in
                Alcotest.(check int) "three served, one unavailable"
                  3 tt.Router.t_forwarded;
                Alcotest.(check int) "unavailable counted once" 1
                  tt.Router.t_unavailable))) ]

(* ---- The PGO feedback loop over the wire ---------------------------------- *)

module Pgo = Calibro_pgo.Pgo
module Profile = Calibro_profile.Profile

(* The drift workload: one seeded app, two usage regimes over the same
   script — the late half of the steps hot, then the early half. The
   binary split displaces most of the execution mass, which is what the
   mass-weighted drift score measures (a linear ramp leaves the heaviest
   method dominating both regimes and never clears the threshold). *)
let drift_fixture =
  lazy
    (let generated = Appgen.generate Apps.demo in
     let apk, _ = Mutate.mutate ~seed:1 generated.Appgen.app in
     let script = generated.Appgen.app_script in
     let half = List.length script / 2 in
     let weighted w =
       List.mapi
         (fun i (st : Appgen.script_step) ->
           { st with Appgen.sc_repeat = w i })
         script
     in
     let s_old = weighted (fun i -> if i >= half then 16 else 1)
     and s_new = weighted (fun i -> if i < half then 16 else 1) in
     let b = Pipeline.build ~cache:None ~config:Config.baseline apk in
     let prof script =
       let t = Calibro_vm.Interp.load b.Pipeline.b_oat in
       List.iter
         (fun (st : Appgen.script_step) ->
           for _ = 1 to st.Appgen.sc_repeat do
             match
               Calibro_vm.Interp.call t st.Appgen.sc_method st.Appgen.sc_args
             with
             | Calibro_vm.Interp.Fault m ->
               Alcotest.failf "drift fixture script fault: %s" m
             | _ -> ()
           done)
         script;
       Profile.to_string (Profile.of_interp t)
     in
     (Calibro_dex.Dex_text.to_string apk, prof s_old, prof s_new))

let oat_of name = function
  | Ok (Protocol.Built { oat; _ }) -> oat
  | Ok (Protocol.Rejected r) ->
    Alcotest.failf "%s: rejected %s" name (Protocol.rejection_to_string r)
  | Ok _ -> Alcotest.failf "%s: non-build response" name
  | Error m -> Alcotest.failf "%s: transport: %s" name m

let pgo_config = Config.cto_ltbo_pl ~k:2 ()

let pgo_tests =
  [ Alcotest.test_case "report frames round-trip and reject damage" `Quick
      (fun () ->
        let rp =
          { Protocol.pr_app = String.make 32 'a';
            pr_profile = "com.a.B run 500\ncom.c.D go 7\n" }
        in
        let full = Protocol.encode_report rp in
        (match Protocol.decode_request full with
         | Ok (Protocol.Report rp') ->
           Alcotest.(check bool) "round-trips" true (rp = rp')
         | Ok _ -> Alcotest.fail "report decoded as something else"
         | Error e -> Alcotest.failf "report refused: %s" e);
        (* empty profile text is a codec-level non-issue (the daemon
           answers it, typed) *)
        (match
           Protocol.decode_request
             (Protocol.encode_report
                { Protocol.pr_app = ""; pr_profile = "" })
         with
         | Ok (Protocol.Report _) -> ()
         | _ -> Alcotest.fail "empty report refused by the codec");
        for len = 0 to String.length full - 1 do
          match Protocol.decode_request (String.sub full 0 len) with
          | Error m ->
            Alcotest.(check bool)
              (Printf.sprintf "truncation to %d names the damage" len)
              true (String.length m > 0)
          | Ok _ ->
            Alcotest.failf "report truncated to %d bytes decoded" len
        done;
        (match Protocol.decode_request (full ^ "x") with
         | Error m ->
           Alcotest.(check bool) "trailing named" true
             (Astring.String.is_infix ~affix:"trailing" m)
         | Ok _ -> Alcotest.fail "trailing garbage accepted");
        check_response_roundtrip "report_ack"
          (Protocol.Report_ack { ra_drift = 0.4375; ra_relink = true });
        check_response_roundtrip "report_ack zero"
          (Protocol.Report_ack { ra_drift = 0.0; ra_relink = false });
        check_response_roundtrip "unknown_app"
          (Protocol.Rejected (Protocol.Unknown_app (String.make 32 'f'))));
    Alcotest.test_case "bad reports get typed answers, never a relink" `Quick
      (fun () ->
        (* Garbage samples, unknown digests and reports to a daemon
           without --pgo must all be refused typed — with the daemon
           still serving and nothing scheduled. *)
        let pgo = Pgo.Manager.create () in
        with_server ~pgo (fun t ->
            let ep = Server.endpoint t in
            let dexsim =
              Calibro_dex.Dex_text.to_string (Lazy.force demo_app).Appgen.app
            in
            ignore
              (oat_of "prime build"
                 (Client.request ~endpoint:ep (request dexsim)));
            let digest = Chash.string dexsim in
            (match
               Client.report ~endpoint:ep
                 { Protocol.pr_app = digest; pr_profile = "!!! garbage" }
             with
             | Ok _ -> Alcotest.fail "garbage profile acked"
             | Error m ->
               Alcotest.(check bool) "typed parse refusal" true
                 (Astring.String.is_infix ~affix:"profile" m));
            (match
               Client.report ~endpoint:ep
                 { Protocol.pr_app = "never-built-digest";
                   pr_profile = "com.a.B run 5\n" }
             with
             | Ok _ -> Alcotest.fail "unknown app acked"
             | Error m ->
               Alcotest.(check bool) "typed unknown-app refusal" true
                 (Astring.String.is_infix ~affix:"unknown app" m));
            (* raw frame abuse on the report path: truncated frame, then
               garbage payload — one connection each, daemon unharmed *)
            let fd = raw_connect t in
            write_all fd
              (Fault.Server.first_half
                 (Protocol.to_frame
                    (Protocol.encode_report
                       { Protocol.pr_app = digest; pr_profile = "x y 1\n" })));
            Unix.close fd;
            (match raw_request ep "\x03garbage-after-tag" with
             | Ok (Protocol.Rejected (Protocol.Malformed _)) -> ()
             | _ -> Alcotest.fail "garbage report payload not Malformed");
            assert_still_serving t;
            (match Pgo.Manager.totals pgo with
             | [ (_, tt) ] ->
               Alcotest.(check int) "nothing scheduled" 0 tt.Pgo.p_relinks;
               Alcotest.(check int) "no good report landed" 0 tt.Pgo.p_reports
             | l -> Alcotest.failf "expected one app, got %d" (List.length l)));
        (* and the same frame against a daemon without --pgo *)
        with_server (fun t ->
            match
              Client.report ~endpoint:(Server.endpoint t)
                { Protocol.pr_app = "any"; pr_profile = "com.a.B run 5\n" }
            with
            | Ok _ -> Alcotest.fail "pgo-less daemon acked a report"
            | Error m ->
              Alcotest.(check bool) "typed refusal" true
                (Astring.String.is_infix ~affix:"unknown app" m)));
    Alcotest.test_case
      "convergence soak: drift relinks once, served bytes flip once" `Slow
      (fun () ->
        let dexsim, prof_old, prof_new = Lazy.force drift_fixture in
        let digest = Chash.string dexsim in
        let rq = request ~profile:prof_old ~config:pgo_config dexsim in
        let expected_old =
          oat_of "in-process old"
            (Ok (Worker.build_response ~cache:None rq))
        and expected_new =
          oat_of "in-process new"
            (Ok
               (Worker.build_response ~cache:None
                  (request ~profile:prof_new ~config:pgo_config dexsim)))
        in
        Alcotest.(check bool) "the regimes build different bytes" false
          (String.equal expected_old expected_new);
        let pgo =
          Pgo.Manager.create
            ~config:{ Pgo.default_config with Pgo.hysteresis = 3 } ()
        in
        let refreshed0 = Calibro_obs.Obs.Counter.value "server.jobs.refreshed" in
        with_server ~workers:3 ~pgo (fun t ->
            let ep = Server.endpoint t in
            let build () = oat_of "build" (Client.request ~endpoint:ep rq) in
            let report p =
              match
                Client.report ~endpoint:ep
                  { Protocol.pr_app = digest; pr_profile = p }
              with
              | Ok a -> a
              | Error m -> Alcotest.failf "report: %s" m
            in
            (* steady state: the old regime never schedules *)
            Alcotest.(check string) "first serve = old bytes" expected_old
              (build ());
            for i = 1 to 4 do
              let drift, relink = report prof_old in
              if relink then Alcotest.failf "steady report %d relinked" i;
              if drift > 0.3 then
                Alcotest.failf "steady report %d drifted %.3f" i drift
            done;
            Alcotest.(check string) "steady serve = old bytes" expected_old
              (build ());
            (* the regime flips: reports must relink exactly once, within
               the hysteresis plus the accumulator's decay lag *)
            let acks = ref 0 and sent = ref 0 in
            while !acks = 0 && !sent < 12 do
              incr sent;
              let _, relink = report prof_new in
              if relink then incr acks
            done;
            Alcotest.(check int) "exactly one relink acked" 1 !acks;
            Alcotest.(check bool)
              (Printf.sprintf "ack within hysteresis + lag (%d reports)" !sent)
              true (!sent <= 8);
            (* the relink runs through the worker pool; poll until the
               served bytes flip, then they must never flip back *)
            let rec await n =
              if n = 0 then Alcotest.fail "relink never landed"
              else if String.equal (build ()) expected_new then ()
              else begin
                Thread.delay 0.05;
                await (n - 1)
              end
            in
            await 100;
            for _ = 1 to 3 do
              Alcotest.(check string) "refreshed serve = new bytes"
                expected_new (build ())
            done;
            (* post-drift reports measure against the adopted regime:
               quiet, and never a second relink *)
            for i = 1 to 4 do
              let drift, relink = report prof_new in
              if relink then Alcotest.failf "post-drift report %d relinked" i;
              if drift > 0.3 then
                Alcotest.failf "post-drift report %d drifted %.3f" i drift
            done;
            match Pgo.Manager.totals pgo with
            | [ (app, tt) ] ->
              Alcotest.(check string) "app name" "Demo" app;
              Alcotest.(check int) "every report counted" (4 + !sent + 4)
                tt.Pgo.p_reports;
              Alcotest.(check int) "one relink" 1 tt.Pgo.p_relinks;
              Alcotest.(check bool) "drift detected, bounded by reports" true
                (tt.Pgo.p_drift_detected >= 3
                && tt.Pgo.p_drift_detected <= tt.Pgo.p_reports);
              Alcotest.(check bool) "the relink hit the shared cache" true
                (tt.Pgo.p_relink_cache_hits > 0)
            | l -> Alcotest.failf "expected one app, got %d" (List.length l));
        Alcotest.(check bool) "refreshed serves counted" true
          (Calibro_obs.Obs.Counter.value "server.jobs.refreshed" > refreshed0));
    Alcotest.test_case "drain mid-relink: reports answered, nothing stuck"
      `Quick (fun () ->
        let dexsim, prof_old, prof_new = Lazy.force drift_fixture in
        let digest = Chash.string dexsim in
        let rq = request ~profile:prof_old ~config:pgo_config dexsim in
        let pgo =
          Pgo.Manager.create
            ~config:{ Pgo.default_config with Pgo.hysteresis = 1 } ()
        in
        with_server ~pgo (fun t ->
            let ep = Server.endpoint t in
            ignore (oat_of "prime" (Client.request ~endpoint:ep rq));
            (* hysteresis 1: the first drifted report schedules *)
            (match
               Client.report ~endpoint:ep
                 { Protocol.pr_app = digest; pr_profile = prof_new }
             with
             | Ok (_, relink) ->
               Alcotest.(check bool) "drifted report schedules" true relink
             | Error m -> Alcotest.failf "report: %s" m);
            (* the drain begins while that relink is queued or running —
               reports must still be answered, but never schedule *)
            Server.request_drain t;
            (match
               Client.report ~endpoint:ep
                 { Protocol.pr_app = digest; pr_profile = prof_new }
             with
             | Ok (_, relink) ->
               Alcotest.(check bool) "drain merges, never schedules" false
                 relink
             | Error m -> Alcotest.failf "report while draining: %s" m);
            (* a Build during the drain is refused typed, like always *)
            match Client.request ~endpoint:ep rq with
            | Ok (Protocol.Rejected Protocol.Draining) -> ()
            | Ok (Protocol.Built _) ->
              (* raced ahead of the flag: also legal *)
              ()
            | Ok r ->
              Alcotest.failf "drain answered %s"
                (match r with
                 | Protocol.Rejected rej -> Protocol.rejection_to_string rej
                 | _ -> "a non-build response")
            | Error m -> Alcotest.failf "drain transport: %s" m)
        (* with_server's finally completes the drain: reaching here at
           all is the no-hang assertion *)) ]

let suite =
  codec_tests @ transport_tests @ ring_tests @ queue_tests @ serve_tests
  @ zero_copy_tests @ fault_tests @ router_tests @ e2e_tests
  @ dict_service_tests @ drain_tests @ pgo_tests
