(* The compilation-service battery: wire-codec round-trips and rejection
   of damaged frames, admission-queue semantics, and a live in-process
   server driven over real Unix-domain sockets — byte-identity of served
   builds against the in-process pipeline across the oracle matrix, typed
   Overloaded under a full queue, deadlines, abusive-client faults
   (lib/check), and SIGTERM graceful drain. *)

open Calibro_core
open Calibro_workload
module Protocol = Calibro_server.Protocol
module Queue = Calibro_server.Queue
module Worker = Calibro_server.Worker
module Server = Calibro_server.Server
module Client = Calibro_server.Client
module Fault = Calibro_check.Fault

let demo_app = lazy (Appgen.generate Apps.demo)

let request ?profile ?deadline_ms ?(config = Config.baseline) dexsim =
  { Protocol.rq_config = config;
    rq_dexsim = dexsim;
    rq_profile = profile;
    rq_deadline_ms = deadline_ms }

let demo_request ?profile ?deadline_ms ?config () =
  request ?profile ?deadline_ms ?config
    (Calibro_dex.Dex_text.to_string (Lazy.force demo_app).Appgen.app)

let sock_counter = ref 0

(* A fresh socket path per server; the server unlinks it on drain. *)
let fresh_socket () =
  incr sock_counter;
  Printf.sprintf "%s/calibro-test-%d-%d.sock"
    (Filename.get_temp_dir_name ())
    (Unix.getpid ()) !sock_counter

let with_server ?(workers = 2) ?(queue_capacity = 16) ?(recv_timeout_s = 10.0)
    ?cache f =
  let cache =
    match cache with Some c -> c | None -> Calibro_cache.Cache.create ()
  in
  let t =
    Server.create
      { Server.socket_path = fresh_socket ();
        workers;
        queue_capacity;
        cache = Some cache;
        recv_timeout_s;
        default_deadline_ms = None }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain t;
      Server.drain t)
    (fun () -> f t)

let response =
  Alcotest.testable
    (fun fmt -> function
      | Protocol.Built { oat; stats } ->
        Format.fprintf fmt "Built(%d bytes, %d methods)" (String.length oat)
          stats.Protocol.bs_methods
      | Protocol.Rejected r ->
        Format.fprintf fmt "Rejected(%s)" (Protocol.rejection_to_string r))
    (fun a b ->
      match (a, b) with
      | Protocol.Built a, Protocol.Built b ->
        (* Byte equality of the whole OAT image; stats must agree except
           for the wall-clock field. *)
        String.equal a.oat b.oat
        && a.stats.Protocol.bs_text_size = b.stats.Protocol.bs_text_size
        && a.stats.Protocol.bs_methods = b.stats.Protocol.bs_methods
        && a.stats.Protocol.bs_thunks = b.stats.Protocol.bs_thunks
        && a.stats.Protocol.bs_outlined = b.stats.Protocol.bs_outlined
      | Protocol.Rejected a, Protocol.Rejected b -> a = b
      | _ -> false)

(* ---- Wire codec ---------------------------------------------------------- *)

let sample_config =
  { (Config.cto_ltbo_pl ~k:4 ()) with
    Config.name = "wire-sample";
    hot_methods =
      [ { Calibro_dex.Dex_ir.class_name = "com.a.B"; method_name = "run" };
        { Calibro_dex.Dex_ir.class_name = "com.c.D"; method_name = "go" } ] }

let sample_request =
  { Protocol.rq_config = sample_config;
    rq_dexsim = ".apk x\n.dex d\n";
    rq_profile = Some "com.a.B run 500\n";
    rq_deadline_ms = Some 1500 }

let sample_stats =
  { Protocol.bs_text_size = 40960;
    bs_methods = 123;
    bs_thunks = 7;
    bs_outlined = 31;
    bs_build_s = 0.4375 }

let check_request_roundtrip name rq =
  match Protocol.decode_request (Protocol.encode_request rq) with
  | Error e -> Alcotest.failf "%s did not decode: %s" name e
  | Ok rq' ->
    Alcotest.(check bool) (name ^ " round-trips") true (rq = rq')

let check_response_roundtrip name resp =
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Error e -> Alcotest.failf "%s did not decode: %s" name e
  | Ok resp' -> Alcotest.check response name resp resp'

let codec_tests =
  [ Alcotest.test_case "request round-trips exactly" `Quick (fun () ->
        check_request_roundtrip "full request" sample_request;
        check_request_roundtrip "bare request"
          { Protocol.rq_config = Config.baseline;
            rq_dexsim = "";
            rq_profile = None;
            rq_deadline_ms = None });
    Alcotest.test_case "every response round-trips exactly" `Quick (fun () ->
        check_response_roundtrip "built"
          (Protocol.Built { oat = "\x00\x01binary\xffpayload";
                            stats = sample_stats });
        List.iter
          (fun rej ->
            check_response_roundtrip
              (Protocol.rejection_to_string rej)
              (Protocol.Rejected rej))
          [ Protocol.Malformed "bad tag";
            Protocol.Parse_error "line 3: nope";
            Protocol.Build_failed "undefined method";
            Protocol.Overloaded;
            Protocol.Deadline_exceeded;
            Protocol.Draining;
            Protocol.Internal "Stack_overflow" ]);
    Alcotest.test_case "every truncation of a request is rejected" `Quick
      (fun () ->
        (* Cutting the payload anywhere must produce a typed decode error
           naming a field — never a wrong request, never an exception. *)
        let full = Protocol.encode_request sample_request in
        for len = 0 to String.length full - 1 do
          match Protocol.decode_request (String.sub full 0 len) with
          | Error m ->
            Alcotest.(check bool)
              (Printf.sprintf "error at %d names the damage" len)
              true
              (String.length m > 0)
          | Ok _ ->
            Alcotest.failf "truncation to %d bytes decoded as a request" len
        done);
    Alcotest.test_case "trailing bytes are rejected" `Quick (fun () ->
        match
          Protocol.decode_request (Protocol.encode_request sample_request ^ "x")
        with
        | Error m ->
          Alcotest.(check bool) "mentions trailing" true
            (Astring.String.is_infix ~affix:"trailing" m)
        | Ok _ -> Alcotest.fail "trailing garbage decoded as a request");
    Alcotest.test_case "frame layer refuses bad magic and oversized frames"
      `Quick (fun () ->
        let feed bytes =
          let r, w = Unix.pipe () in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                [ r; w ])
            (fun () ->
              ignore
                (Unix.write_substring w bytes 0 (String.length bytes));
              Unix.close w;
              Protocol.read_frame r)
        in
        (match feed (Protocol.to_frame "hello") with
         | payload -> Alcotest.(check string) "round-trip" "hello" payload
         | exception Protocol.Frame_error m ->
           Alcotest.failf "well-formed frame refused: %s" m);
        (match feed "XLB1\x05\x00\x00\x00hello" with
         | _ -> Alcotest.fail "bad magic accepted"
         | exception Protocol.Frame_error m ->
           Alcotest.(check bool) "names the magic" true
             (Astring.String.is_infix ~affix:"magic" m));
        (match feed "CLB1\xff\xff\xff\x7fxx" with
         | _ -> Alcotest.fail "oversized length accepted"
         | exception Protocol.Frame_error m ->
           Alcotest.(check bool) "names the size" true
             (Astring.String.is_infix ~affix:"oversized" m));
        match feed (Fault.Server.first_half (Protocol.to_frame "hello")) with
        | _ -> Alcotest.fail "half frame accepted"
        | exception Protocol.Frame_error m ->
          Alcotest.(check bool) "names the EOF" true
            (Astring.String.is_infix ~affix:"EOF" m));
    Alcotest.test_case "oversized payload is refused before sending" `Quick
      (fun () ->
        let r, w = Unix.pipe () in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              [ r; w ])
          (fun () ->
            match
              Protocol.write_frame w (String.make (Protocol.max_frame + 1) 'x')
            with
            | () -> Alcotest.fail "oversized frame sent"
            | exception Protocol.Frame_error _ -> ())) ]

(* ---- Admission queue ----------------------------------------------------- *)

let push_result =
  Alcotest.testable
    (fun fmt r ->
      Format.pp_print_string fmt
        (match r with
         | Queue.Pushed -> "Pushed"
         | Queue.Full -> "Full"
         | Queue.Closed -> "Closed"))
    ( = )

let queue_tests =
  [ Alcotest.test_case "bounded: Full at capacity, never blocks" `Quick
      (fun () ->
        let q = Queue.create ~capacity:2 () in
        Alcotest.check push_result "1st" Queue.Pushed (Queue.try_push q 1);
        Alcotest.check push_result "2nd" Queue.Pushed (Queue.try_push q 2);
        Alcotest.check push_result "3rd is Full" Queue.Full
          (Queue.try_push q 3);
        Alcotest.(check int) "depth" 2 (Queue.length q);
        Alcotest.(check (option int)) "FIFO" (Some 1) (Queue.pop q);
        Alcotest.check push_result "slot freed" Queue.Pushed
          (Queue.try_push q 3));
    Alcotest.test_case "close drains the backlog, then returns None" `Quick
      (fun () ->
        let q = Queue.create ~capacity:4 () in
        ignore (Queue.try_push q 1);
        ignore (Queue.try_push q 2);
        Queue.close q;
        Alcotest.check push_result "push after close" Queue.Closed
          (Queue.try_push q 3);
        Alcotest.(check (option int)) "drains 1" (Some 1) (Queue.pop q);
        Alcotest.(check (option int)) "drains 2" (Some 2) (Queue.pop q);
        Alcotest.(check (option int)) "then None" None (Queue.pop q);
        Alcotest.(check (option int)) "stays None" None (Queue.pop q));
    Alcotest.test_case "blocked pop is woken by a push" `Quick (fun () ->
        let q = Queue.create ~capacity:1 () in
        let got = Atomic.make None in
        let th =
          Thread.create (fun () -> Atomic.set got (Queue.pop q)) ()
        in
        Thread.delay 0.02;
        ignore (Queue.try_push q 42);
        Thread.join th;
        Alcotest.(check (option int)) "woken with the item" (Some 42)
          (Atomic.get got));
    Alcotest.test_case "blocked pop is woken by close" `Quick (fun () ->
        let q : int Queue.t = Queue.create ~capacity:1 () in
        let done_ = Atomic.make false in
        let th =
          Thread.create
            (fun () ->
              ignore (Queue.pop q);
              Atomic.set done_ true)
            ()
        in
        Thread.delay 0.02;
        Queue.close q;
        Thread.join th;
        Alcotest.(check bool) "popper exited" true (Atomic.get done_)) ]

(* ---- Served builds vs the in-process pipeline ---------------------------- *)

(* Hot set of the demo app under its bundled script (as test_cache does),
   enabling the HfOpti row of the matrix. *)
let demo_hot () =
  let a = Lazy.force demo_app in
  let b = Pipeline.build ~cache:None ~config:Config.baseline a.Appgen.app in
  let t = Calibro_vm.Interp.load b.Pipeline.b_oat in
  List.iter
    (fun (st : Appgen.script_step) ->
      for _ = 1 to st.Appgen.sc_repeat do
        ignore (Calibro_vm.Interp.call t st.Appgen.sc_method st.Appgen.sc_args)
      done)
    a.Appgen.app_script;
  Calibro_profile.Profile.of_interp t

let serve_tests =
  [ Alcotest.test_case
      "served builds are byte-identical across the oracle matrix" `Slow
      (fun () ->
        let prof = demo_hot () in
        let hot = Calibro_profile.Profile.hot_set prof in
        with_server @@ fun t ->
        List.iter
          (fun (config : Config.t) ->
            let rq = demo_request ~config () in
            let expected = Worker.build_response ~cache:None rq in
            match Client.request ~socket:(Server.socket_path t) rq with
            | Error m -> Alcotest.failf "%s: %s" config.Config.name m
            | Ok served ->
              Alcotest.check response config.Config.name expected served)
          (Config.baseline :: Config.matrix ~hot_methods:hot ()));
    Alcotest.test_case "a wire profile reaches the hot-function filter" `Quick
      (fun () ->
        let prof = demo_hot () in
        let rq =
          demo_request
            ~profile:(Calibro_profile.Profile.to_string prof)
            ~config:(Config.cto_ltbo_pl ~k:2 ())
            ()
        in
        let expected = Worker.build_response ~cache:None rq in
        (match expected with
         | Protocol.Built _ -> ()
         | Protocol.Rejected r ->
           Alcotest.failf "profiled build failed in-process: %s"
             (Protocol.rejection_to_string r));
        with_server @@ fun t ->
        match Client.request ~socket:(Server.socket_path t) rq with
        | Error m -> Alcotest.fail m
        | Ok served -> Alcotest.check response "profiled build" expected served);
    Alcotest.test_case "a full queue answers typed Overloaded" `Quick
      (fun () ->
        (* One worker, one queue slot, a burst of concurrent requests:
           some build, at least one must be refused with Overloaded — and
           every request gets *an* answer (nothing hangs, nothing dies). *)
        with_server ~workers:1 ~queue_capacity:1 @@ fun t ->
        let n = 12 in
        let outcomes = Array.make n (Error "not run") in
        let threads =
          List.init n (fun i ->
              Thread.create
                (fun () ->
                  outcomes.(i) <-
                    Client.request ~socket:(Server.socket_path t)
                      (demo_request ~config:Config.cto ()))
                ())
        in
        List.iter Thread.join threads;
        let built = ref 0 and overloaded = ref 0 in
        Array.iter
          (function
            | Ok (Protocol.Built _) -> incr built
            | Ok (Protocol.Rejected Protocol.Overloaded) -> incr overloaded
            | Ok (Protocol.Rejected r) ->
              Alcotest.failf "unexpected rejection: %s"
                (Protocol.rejection_to_string r)
            | Error m -> Alcotest.failf "transport error: %s" m)
          outcomes;
        Alcotest.(check int) "every request answered" n (!built + !overloaded);
        Alcotest.(check bool) "some built" true (!built >= 1);
        Alcotest.(check bool)
          (Printf.sprintf "some refused (built %d, overloaded %d)" !built
             !overloaded)
          true (!overloaded >= 1);
        let tt = Server.totals t in
        Alcotest.(check int) "admission tallies cover the burst" n
          (tt.Server.t_accepted + tt.Server.t_overloaded));
    Alcotest.test_case "an expired deadline is answered, not built" `Quick
      (fun () ->
        with_server @@ fun t ->
        match
          Client.request ~socket:(Server.socket_path t)
            (demo_request ~deadline_ms:1 ~config:(Config.cto_ltbo_pl ~k:2 ()) ())
        with
        | Ok (Protocol.Rejected Protocol.Deadline_exceeded) -> ()
        | Ok r ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (match r with
             | Protocol.Built _ -> "Built"
             | Protocol.Rejected rej -> Protocol.rejection_to_string rej)
        | Error m -> Alcotest.fail m) ]

(* ---- Abusive clients (lib/check fault points) ----------------------------- *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

(* After the abuse, the server must still answer a well-formed request
   correctly — the fault cost one request, not the daemon. *)
let assert_still_serving t =
  match Client.request ~socket:(Server.socket_path t) (demo_request ()) with
  | Ok (Protocol.Built _) -> ()
  | Ok (Protocol.Rejected r) ->
    Alcotest.failf "server degraded after fault: %s"
      (Protocol.rejection_to_string r)
  | Error m -> Alcotest.failf "server dead after fault: %s" m

let fault_tests =
  [ Alcotest.test_case "drop-mid-frame costs one connection" `Quick (fun () ->
        with_server @@ fun t ->
        Fault.Server.inject Fault.Server.Drop_mid_frame;
        let frame =
          Protocol.to_frame (Protocol.encode_request (demo_request ()))
        in
        let fd = raw_connect (Server.socket_path t) in
        write_all fd (Fault.Server.first_half frame);
        Unix.close fd;
        (* The reader sees EOF mid-frame and gives up on that connection. *)
        assert_still_serving t);
    Alcotest.test_case "stall-mid-frame is reaped by the receive timeout"
      `Quick (fun () ->
        with_server ~recv_timeout_s:0.2 @@ fun t ->
        Fault.Server.inject Fault.Server.Stall_mid_frame;
        let frame =
          Protocol.to_frame (Protocol.encode_request (demo_request ()))
        in
        let fd = raw_connect (Server.socket_path t) in
        write_all fd (Fault.Server.first_half frame);
        (* Hold the connection open, never sending the rest. *)
        Thread.delay 0.5;
        assert_still_serving t;
        Unix.close fd;
        let tt = Server.totals t in
        Alcotest.(check bool)
          (Printf.sprintf "stall counted (stalled %d)" tt.Server.t_stalled)
          true
          (tt.Server.t_stalled >= 1));
    Alcotest.test_case "a poisoned job fails only its own request" `Quick
      (fun () ->
        with_server @@ fun t ->
        Fault.Server.inject Fault.Server.Poison_job;
        (match
           Client.request ~socket:(Server.socket_path t)
             (request Fault.Server.poison_dexsim)
         with
         | Ok (Protocol.Rejected (Protocol.Build_failed _)) -> ()
         | Ok (Protocol.Built _) -> Alcotest.fail "poisoned job built"
         | Ok (Protocol.Rejected r) ->
           Alcotest.failf "expected Build_failed, got %s"
             (Protocol.rejection_to_string r)
         | Error m -> Alcotest.fail m);
        assert_still_serving t);
    Alcotest.test_case "garbage bytes get a typed Malformed answer" `Quick
      (fun () ->
        with_server @@ fun t ->
        let fd = raw_connect (Server.socket_path t) in
        write_all fd "GET / HTTP/1.1\r\n\r\n";
        (match Protocol.read_frame fd with
         | payload -> (
           match Protocol.decode_response payload with
           | Ok (Protocol.Rejected (Protocol.Malformed _)) -> ()
           | Ok _ -> Alcotest.fail "garbage was not answered Malformed"
           | Error e -> Alcotest.failf "unreadable answer: %s" e)
         | exception Protocol.Frame_error _ ->
           (* The server may also just hang up on garbage; either way it
              must keep serving. *)
           ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        assert_still_serving t) ]

(* ---- Graceful drain ------------------------------------------------------- *)

let drain_tests =
  [ Alcotest.test_case "SIGTERM drains: in-flight finish, then exit" `Quick
      (fun () ->
        let cache = Calibro_cache.Cache.create () in
        let socket = fresh_socket () in
        let t =
          Server.create
            { Server.socket_path = socket;
              workers = 2;
              queue_capacity = 16;
              cache = Some cache;
              recv_timeout_s = 10.0;
              default_deadline_ms = None }
        in
        Server.install_sigterm t;
        Fun.protect
          ~finally:(fun () ->
            Sys.set_signal Sys.sigterm Sys.Signal_default;
            Sys.set_signal Sys.sigint Sys.Signal_default)
          (fun () ->
            (* A client already mid-build when the signal lands. *)
            let result = Atomic.make (Error "not run") in
            let client =
              Thread.create
                (fun () ->
                  Atomic.set result
                    (Client.request ~socket (demo_request ())))
                ()
            in
            Thread.delay 0.05;
            Unix.kill (Unix.getpid ()) Sys.sigterm;
            (* join returns only after the drain has fully completed. *)
            Server.join t;
            Thread.join client;
            (match Atomic.get result with
             | Ok (Protocol.Built _) -> ()
             | Ok (Protocol.Rejected Protocol.Draining) ->
               (* The request raced the signal and was refused — typed,
                  not dropped. *)
               ()
             | Ok (Protocol.Rejected r) ->
               Alcotest.failf "in-flight request got %s"
                 (Protocol.rejection_to_string r)
             | Error m -> Alcotest.failf "in-flight request lost: %s" m);
            Alcotest.(check bool) "socket removed" false
              (Sys.file_exists socket);
            (* A late client finds nobody listening — never a hang. *)
            (match Client.request ~socket (demo_request ()) with
             | Error _ -> ()
             | Ok _ -> Alcotest.fail "request served after drain");
            Alcotest.(check bool) "drain recorded" true (Server.draining t)))
  ]

let suite =
  codec_tests @ queue_tests @ serve_tests @ fault_tests @ drain_tests
