(* LTBO correctness: outlining must shrink the text and must never change
   behaviour. Checked on hand-written redundant programs and on randomly
   generated ones (differential execution across all configurations). *)

open Calibro_dex
open Calibro_core
open Calibro_vm

let parse src =
  match Dex_text.parse src with
  | Ok apk -> apk
  | Error e -> Alcotest.failf "parse: %s" e

let build config apk = Pipeline.build ~config apk

let exec (b : Pipeline.build) entry args =
  let t = Interp.load b.Pipeline.b_oat in
  let outcome = Interp.call t { class_name = "t"; method_name = entry } args in
  (outcome, Interp.log t)

let outcome_str = function
  | Interp.Returned v -> Printf.sprintf "Returned %d" v
  | Interp.Thrown fn -> "Thrown " ^ Dex_ir.runtime_fn_name fn
  | Interp.Fault m -> "Fault " ^ m

(* A program with heavy redundancy: the same block body repeated in many
   methods. *)
let redundant_src =
  let body i =
    Printf.sprintf
      {|.method m%d params #2 regs #8
  add v2, v0, v1
  mul v3, v2, v2
  sub v4, v3, v2
  xor v5, v4, v0
  and v6, v5, v1
  or v7, v6, v2
  add v7, v7, #%d
  return v7
.end
|}
      i (i mod 3)
  in
  let calls =
    String.concat ""
      (List.init 12 (fun i ->
           Printf.sprintf "  invoke t.m%d (v0, v1) -> v2\n  add v3, v3, v2\n" i))
  in
  ".apk t\n.dex d\n.class t\n"
  ^ String.concat "" (List.init 12 body)
  ^ Printf.sprintf
      ".method main params #2 regs #5 entry\n  const v3, #0\n%s  return v3\n.end\n"
      calls

let configs =
  [ Config.baseline; Config.cto; Config.cto_ltbo; Config.cto_ltbo_pl ~k:4 () ]

let check_differential name src entry args =
  let apk = parse src in
  let builds = List.map (fun c -> build c apk) configs in
  match builds with
  | [] -> assert false
  | base :: rest ->
    let base_out = exec base entry args in
    List.iter
      (fun (b : Pipeline.build) ->
        let got = exec b entry args in
        Alcotest.(check string)
          (Printf.sprintf "%s: %s outcome" name b.Pipeline.b_config.Config.name)
          (outcome_str (fst base_out))
          (outcome_str (fst got));
        Alcotest.(check (list int))
          (Printf.sprintf "%s: %s log" name b.Pipeline.b_config.Config.name)
          (snd base_out) (snd got))
      rest;
    builds

(* ---- Random program generation for differential fuzzing --------------- *)

let gen_program_simple : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_methods = int_range 2 6 in
  let regs = 6 in
  let* pool_seed = int_range 0 1000 in
  let gen_line idx i rng_case d a b v =
    match rng_case with
    | 0 -> Printf.sprintf "  const v%d, #%d" d v
    | 1 -> Printf.sprintf "  add v%d, v%d, v%d" d a b
    | 2 -> Printf.sprintf "  sub v%d, v%d, v%d" d a b
    | 3 -> Printf.sprintf "  mul v%d, v%d, v%d" d a b
    | 4 -> Printf.sprintf "  xor v%d, v%d, v%d" d a b
    | 5 -> Printf.sprintf "  and v%d, v%d, v%d" d a b
    | 6 -> Printf.sprintf "  rtcall pLogValue (v%d)" a
    | 7 when idx > 0 ->
      Printf.sprintf "  invoke t.m%d (v%d, v%d) -> v%d" (i mod idx) a b d
    | _ -> Printf.sprintf "  or v%d, v%d, v%d" d a b
  in
  let* methods =
    List.init n_methods (fun i -> i)
    |> List.fold_left
         (fun acc idx ->
           let* acc = acc in
           let* n_insns = int_range 4 16 in
           let* lines =
             List.init n_insns (fun i -> i)
             |> List.fold_left
                  (fun lacc i ->
                    let* lacc = lacc in
                    let* c = int_range 0 8 in
                    let* d = int_range 0 (regs - 1) in
                    let* a = int_range 0 (regs - 1) in
                    let* b = int_range 0 (regs - 1) in
                    let* v = int_range (-3) 200 in
                    (* bias towards a small template pool for redundancy *)
                    let c = (c + pool_seed) mod 9 in
                    return (gen_line idx i c d a b v :: lacc))
                  (return [])
           in
           let* guard = int_range 0 (regs - 1) in
           let body = String.concat "\n" (List.rev lines) in
           let m =
             Printf.sprintf
               ".method m%d params #2 regs #%d%s\n%s\n  ifz ne v%d, :end\n  add v0, v0, #1\n:end\n  return v0\n.end\n"
               idx regs
               (if idx = n_methods - 1 then " entry" else "")
               body guard
           in
           return (m :: acc))
         (return [])
  in
  return (".apk t\n.dex d\n.class t\n" ^ String.concat "" (List.rev methods))

let differential_fuzz =
  QCheck.Test.make ~name:"random programs behave identically in all configs"
    ~count:60
    (QCheck.make gen_program_simple ~print:(fun s -> s))
    (fun src ->
      match Dex_text.parse src with
      | Error _ -> false (* generator must produce valid programs *)
      | Ok apk -> (
        match Dex_check.check apk with
        | Error _ -> false
        | Ok () ->
          let builds = List.map (fun c -> build c apk) configs in
          let outs =
            List.map
              (fun (b : Pipeline.build) ->
                let t = Interp.load b.Pipeline.b_oat in
                let entry =
                  List.hd
                    (List.rev (Dex_ir.methods_of_apk apk))
                in
                let o = Interp.call t entry.Dex_ir.name [ 3; 4 ] in
                (outcome_str o, Interp.log t))
              builds
          in
          match outs with
          | [] -> false
          | first :: rest -> List.for_all (fun o -> o = first) rest))

let suite =
  [ Alcotest.test_case "ltbo shrinks redundant program" `Quick (fun () ->
        let builds = check_differential "redundant" redundant_src "main" [ 3; 4 ] in
        let sizes = List.map Pipeline.text_size builds in
        (match sizes with
         | [ base; cto; ltbo; pl ] ->
           Alcotest.(check bool)
             (Printf.sprintf "cto (%d) < base (%d)" cto base)
             true (cto < base);
           Alcotest.(check bool)
             (Printf.sprintf "ltbo (%d) < cto (%d)" ltbo cto)
             true (ltbo < cto);
           Alcotest.(check bool)
             (Printf.sprintf "pl (%d) <= cto (%d)" pl cto)
             true (pl <= cto)
         | _ -> Alcotest.fail "config count");
        ());
    Alcotest.test_case "ltbo emits outlined functions + stats" `Quick
      (fun () ->
        let apk = parse redundant_src in
        let b = build Config.cto_ltbo apk in
        let stats = Option.get b.Pipeline.b_ltbo_stats in
        Alcotest.(check bool) "outlined some" true
          (stats.Ltbo.s_outlined_functions > 0);
        Alcotest.(check bool) "replaced more occurrences than functions" true
          (stats.Ltbo.s_occurrences_replaced > stats.Ltbo.s_outlined_functions);
        Alcotest.(check int) "oat records them"
          stats.Ltbo.s_outlined_functions
          (List.length b.Pipeline.b_oat.Calibro_oat.Oat_file.outlined));
    Alcotest.test_case "outlined bodies end with br x30" `Quick (fun () ->
        let apk = parse redundant_src in
        let b = build Config.cto_ltbo apk in
        let oat = b.Pipeline.b_oat in
        List.iter
          (fun (ol : Calibro_oat.Oat_file.outlined_entry) ->
            let last_off = ol.ol_offset + ol.ol_size - 4 in
            let w =
              Calibro_aarch64.Encode.word_of_bytes
                oat.Calibro_oat.Oat_file.text last_off
            in
            match Calibro_aarch64.Decode.decode w with
            | Calibro_aarch64.Isa.Br 30 -> ()
            | i ->
              Alcotest.failf "expected br x30, got %s"
                (Calibro_aarch64.Disasm.to_string i))
          oat.Calibro_oat.Oat_file.outlined);
    Alcotest.test_case "no candidate methods -> no change" `Quick (fun () ->
        (* A native method and a switch method: both excluded. *)
        let src =
          ".apk t\n.dex d\n.class t\n.method n params #1 regs #1 native\n.end\n"
          ^ ".method s params #1 regs #3 entry\n  switch v0 (:a, :b)\n  const v1, #0\n  return v1\n:a\n  const v1, #1\n  return v1\n:b\n  const v1, #2\n  return v1\n.end\n"
        in
        let apk = parse src in
        let b = build Config.cto_ltbo apk in
        let stats = Option.get b.Pipeline.b_ltbo_stats in
        Alcotest.(check int) "no candidates include switch/native" 0
          stats.Ltbo.s_candidate_methods;
        let (o, _) = exec b "s" [ 1 ] in
        Alcotest.(check string) "still works" "Returned 2" (outcome_str o));
    Alcotest.test_case "parallel partition covers all and is disjoint" `Quick
      (fun () ->
        let groups = Parallel.partition ~k:4 ~seed:7 (List.init 23 Fun.id) in
        let all = List.concat groups |> List.sort compare in
        Alcotest.(check (list int)) "cover" (List.init 23 Fun.id) all;
        Alcotest.(check bool) "sizes even" true
          (List.for_all (fun g -> abs (List.length g - 23 / 4) <= 1) groups));
    Alcotest.test_case "hot filtering preserves behaviour, costs size" `Quick
      (fun () ->
        let apk = parse redundant_src in
        let all_methods =
          List.map (fun (m : Dex_ir.meth) -> m.Dex_ir.name)
            (Dex_ir.methods_of_apk apk)
        in
        let hf =
          build (Config.cto_ltbo_pl_hf ~k:4 ~hot_methods:all_methods ()) apk
        in
        let pl = build (Config.cto_ltbo_pl ~k:4 ()) apk in
        (* Everything is hot: only slowpaths could be outlined. *)
        Alcotest.(check bool) "hf >= pl size" true
          (Pipeline.text_size hf >= Pipeline.text_size pl);
        let o, _ = exec hf "main" [ 3; 4 ] in
        let o', _ = exec pl "main" [ 3; 4 ] in
        Alcotest.(check string) "same result" (outcome_str o') (outcome_str o));
    Alcotest.test_case "benefit model matches figure 2" `Quick (fun () ->
        Alcotest.(check int) "orig" 15 (Benefit.original_size ~length:5 ~repeats:3);
        Alcotest.(check int) "opt" 9 (Benefit.optimized_size ~length:5 ~repeats:3);
        Alcotest.(check int) "saving" 6 (Benefit.saving ~length:5 ~repeats:3);
        Alcotest.(check bool) "len1 never worthwhile" false
          (Benefit.worthwhile ~length:1 ~repeats:1000);
        Alcotest.(check bool) "len2 x4 worthwhile" true
          (Benefit.worthwhile ~length:2 ~repeats:4);
        Alcotest.(check bool) "len2 x3 not" false
          (Benefit.worthwhile ~length:2 ~repeats:3);
        Alcotest.(check int) "min_repeats l2" 4 (Benefit.min_repeats ~length:2);
        Alcotest.(check int) "min_repeats l4" 2 (Benefit.min_repeats ~length:4));
    QCheck_alcotest.to_alcotest ~long:false differential_fuzz
  ]

(* ---- Extensions: dedup and multi-round outlining ----------------------- *)

let extension_suite =
  [ Alcotest.test_case "parallel groups share deduplicated outlined bodies"
      `Quick (fun () ->
        let apk = parse redundant_src in
        let pl = build (Config.cto_ltbo_pl ~k:4 ()) apk in
        let oat = pl.Pipeline.b_oat in
        (* all outlined bodies must be pairwise distinct after dedup *)
        let bodies =
          List.map
            (fun (o : Calibro_oat.Oat_file.outlined_entry) ->
              Bytes.to_string
                (Bytes.sub oat.Calibro_oat.Oat_file.text o.ol_offset o.ol_size))
            oat.Calibro_oat.Oat_file.outlined
        in
        Alcotest.(check int) "no duplicate bodies"
          (List.length bodies)
          (List.length (List.sort_uniq compare bodies)));
    Alcotest.test_case "multi-round outlining preserves behaviour" `Quick
      (fun () ->
        let apk = parse redundant_src in
        let base = build Config.baseline apk in
        let multi =
          build { Config.cto_ltbo with Config.ltbo_rounds = 3 } apk
        in
        let single = build Config.cto_ltbo apk in
        Alcotest.(check bool) "multi <= single size" true
          (Pipeline.text_size multi <= Pipeline.text_size single);
        let o1, l1 = exec base "main" [ 3; 4 ] in
        let o2, l2 = exec multi "main" [ 3; 4 ] in
        Alcotest.(check string) "same outcome" (outcome_str o1) (outcome_str o2);
        Alcotest.(check (list int)) "same log" l1 l2);
    Alcotest.test_case "multi-round converges (no infinite growth)" `Quick
      (fun () ->
        let apk = parse redundant_src in
        let r3 = build { Config.cto_ltbo with Config.ltbo_rounds = 3 } apk in
        let r6 = build { Config.cto_ltbo with Config.ltbo_rounds = 6 } apk in
        Alcotest.(check int) "fixpoint reached"
          (Pipeline.text_size r3) (Pipeline.text_size r6));
    Alcotest.test_case "multi-round outlined symbols are unique" `Quick
      (fun () ->
        (* Round 2's sym_base advance relies on the *post-dedup*
           s_outlined_functions count: if it advanced by the pre-dedup
           candidate count (or not at all), a later round would re-issue
           an earlier round's symbol and the linker would refuse the
           duplicate. *)
        let apk = parse redundant_src in
        let methods = Dex_ir.methods_of_apk apk in
        let slots = Hashtbl.create 8 in
        List.iteri
          (fun i (m : Dex_ir.meth) -> Hashtbl.replace slots m.name i)
          methods;
        let cms =
          List.map
            (fun m ->
              Calibro_codegen.Codegen.compile
                ~slot_of_method:(Hashtbl.find slots)
                (let g = Calibro_hgraph.Hgraph.of_method m in
                 ignore (Calibro_hgraph.Passes.optimize g);
                 g))
            methods
        in
        let r = Ltbo.run_rounds ~rounds:3 cms in
        let syms =
          List.map
            (fun (xf : Calibro_oat.Linker.extra_function) -> xf.xf_sym)
            r.Ltbo.outlined
        in
        Alcotest.(check bool) "at least one outlined function" true
          (syms <> []);
        Alcotest.(check int) "all symbols distinct" (List.length syms)
          (List.length (List.sort_uniq compare syms));
        Alcotest.(check bool) "all in the outlined namespace" true
          (List.for_all (fun s -> s >= Ltbo.outlined_sym_base) syms))
  ]

let suite = suite @ extension_suite

(* ---- Paper Table 2 regression: outline-and-patch worked example ---------- *)

let table2_suite =
  [ Alcotest.test_case "paper table 2: cbz patched from 0xc to 0x8" `Quick
      (fun () ->
        let open Calibro_aarch64 in
        let open Calibro_codegen in
        let seq rd =
          [ Isa.Ldr { size = Isa.W; rt = 2; rn = 0; imm = 0 };
            Isa.cmp_reg ~size:Isa.W 2 1;
            Isa.mov_reg ~size:Isa.X 3 rd ]
        in
        let code1 =
          [ Isa.Cbz { size = Isa.W; rt = 0; disp = 0xc } ]
          @ seq 4
          @ [ Isa.Ldr { size = Isa.X; rt = 3; rn = 0; imm = 0 }; Isa.Ret ]
        in
        let mk i instrs =
          let pc_rel =
            List.concat
              (List.mapi
                 (fun k ins ->
                   match Isa.pc_rel_disp ins with
                   | Some d -> [ (k * 4, (k * 4) + d) ]
                   | None -> [])
                 instrs)
          in
          let terminators =
            List.concat
              (List.mapi
                 (fun k ins -> if Isa.is_terminator ins then [ k * 4 ] else [])
                 instrs)
          in
          { Compiled_method.name =
              { Calibro_dex.Dex_ir.class_name = "ex";
                method_name = Printf.sprintf "m%d" i };
            slot = i; code = Encode.to_bytes instrs; relocs = [];
            meta = { Meta.empty with Meta.pc_rel; terminators };
            stackmap = []; num_params = 0; is_entry = false; cto_hits = [] }
        in
        let methods =
          mk 0 code1
          :: List.init 3 (fun i -> mk (i + 1) (seq (4 + i) @ [ Isa.Ret ]))
        in
        let result = Ltbo.run methods in
        Alcotest.(check bool) "something outlined" true
          (result.Ltbo.stats.Ltbo.s_outlined_functions >= 1);
        let m0 = List.hd result.Ltbo.methods in
        (* Code 4 of the paper: the cbz displacement must have shrunk from
           0xc to 0x8 because the two outlined instructions became one bl. *)
        (match Decode.decode (Encode.word_of_bytes m0.Compiled_method.code 0) with
         | Isa.Cbz { disp = 8; _ } -> ()
         | i -> Alcotest.failf "cbz not repatched: %s" (Disasm.to_string i));
        (* the second word is the call to the outliner function *)
        (match Decode.decode (Encode.word_of_bytes m0.Compiled_method.code 4) with
         | Isa.Bl _ -> ()
         | i -> Alcotest.failf "expected bl, got %s" (Disasm.to_string i));
        (* the outlined body is exactly the two instructions + br x30 *)
        match result.Ltbo.outlined with
        | [ xf ] ->
          let words = Calibro_aarch64.Decode.of_bytes xf.Calibro_oat.Linker.xf_code in
          Alcotest.(check int) "3 words" 3 (Array.length words);
          (match words.(2) with
           | Isa.Br 30 -> ()
           | i -> Alcotest.failf "tail %s" (Disasm.to_string i))
        | l -> Alcotest.failf "expected one outlined fn, got %d" (List.length l))
  ]

let suite = suite @ table2_suite

(* ---- Structural invariants over a full generated app --------------------- *)

let invariant_suite =
  [ Alcotest.test_case "outlined bodies contain no separator-class instrs"
      `Quick (fun () ->
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let b = build (Config.cto_ltbo_pl ~k:4 ()) a.Calibro_workload.Appgen.app in
        let oat = b.Pipeline.b_oat in
        let open Calibro_aarch64 in
        List.iter
          (fun (ol : Calibro_oat.Oat_file.outlined_entry) ->
            let words = ol.ol_size / 4 in
            for w = 0 to words - 1 do
              let i =
                Decode.decode
                  (Encode.word_of_bytes oat.Calibro_oat.Oat_file.text
                     (ol.ol_offset + (w * 4)))
              in
              if w = words - 1 then
                (match i with
                 | Isa.Br 30 -> ()
                 | i -> Alcotest.failf "bad tail %s" (Disasm.to_string i))
              else begin
                Alcotest.(check bool)
                  (Printf.sprintf "not terminator: %s" (Disasm.to_string i))
                  false (Isa.is_terminator i);
                Alcotest.(check bool)
                  (Printf.sprintf "not call: %s" (Disasm.to_string i))
                  false (Isa.is_call i);
                Alcotest.(check bool)
                  (Printf.sprintf "not pc-rel: %s" (Disasm.to_string i))
                  false (Isa.is_pc_relative i);
                Alcotest.(check bool)
                  (Printf.sprintf "no lr use: %s" (Disasm.to_string i))
                  false
                  (Isa.reads_lr i || Isa.writes_lr i)
              end
            done)
          oat.Calibro_oat.Oat_file.outlined);
    Alcotest.test_case "ltbo never grows any method" `Quick (fun () ->
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let base = build Config.baseline a.Calibro_workload.Appgen.app in
        let cto = build Config.cto a.Calibro_workload.Appgen.app in
        let ltbo = build Config.cto_ltbo a.Calibro_workload.Appgen.app in
        (* per-method: ltbo method size <= cto method size (methods only
           shrink; the outlined functions live separately) *)
        List.iter2
          (fun (m1 : Calibro_oat.Oat_file.method_entry)
               (m2 : Calibro_oat.Oat_file.method_entry) ->
            Alcotest.(check bool)
              (Calibro_dex.Dex_ir.method_ref_to_string m1.me_name)
              true
              (m2.me_size <= m1.me_size))
          cto.Pipeline.b_oat.Calibro_oat.Oat_file.methods
          ltbo.Pipeline.b_oat.Calibro_oat.Oat_file.methods;
        ignore base);
    Alcotest.test_case "all stackmaps valid after full pipeline" `Quick
      (fun () ->
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        List.iter
          (fun config ->
            let b = build config a.Calibro_workload.Appgen.app in
            List.iter
              (fun (me : Calibro_oat.Oat_file.method_entry) ->
                match
                  Calibro_codegen.Stackmap.validate me.me_stackmap
                    ~code_size:me.me_size
                with
                | Ok () -> ()
                | Error e ->
                  Alcotest.failf "%s: %s"
                    (Calibro_dex.Dex_ir.method_ref_to_string me.me_name)
                    e)
              b.Pipeline.b_oat.Calibro_oat.Oat_file.methods)
          [ Config.baseline; Config.cto_ltbo; Config.cto_ltbo_pl ~k:4 () ]);
    Alcotest.test_case "pc-rel metadata matches decoded displacements" `Quick
      (fun () ->
        (* after outlining+patching, every recorded (off, target) pair must
           agree with the displacement encoded in the bytes *)
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let b = build Config.cto_ltbo a.Calibro_workload.Appgen.app in
        let oat = b.Pipeline.b_oat in
        List.iter
          (fun (me : Calibro_oat.Oat_file.method_entry) ->
            List.iter
              (fun (off, tgt) ->
                let d =
                  Calibro_aarch64.Patch.read_disp oat.Calibro_oat.Oat_file.text
                    ~off:(me.me_offset + off)
                in
                Alcotest.(check int)
                  (Printf.sprintf "%s+%d"
                     (Calibro_dex.Dex_ir.method_ref_to_string me.me_name)
                     off)
                  (tgt - off) d)
              me.me_meta.Calibro_codegen.Meta.pc_rel)
          oat.Calibro_oat.Oat_file.methods)
  ]

let suite = suite @ invariant_suite
