(* The PGO drift loop: profile algebra, the drift metric, and the
   hysteresis state machine (ISSUE 9's property battery).

   Everything here is pure or in-process — the wire-level Profile_report
   battery and the end-to-end convergence soak live in test_server.ml. *)

open Calibro_dex.Dex_ir
module Profile = Calibro_profile.Profile
module Pgo = Calibro_pgo.Pgo
module Config = Calibro_core.Config

let mref c m = { class_name = c; method_name = m }

let sample c m cycles = { Profile.s_method = mref c m; s_cycles = cycles }

(* ---- generators -------------------------------------------------------- *)

(* A canonical profile: distinct methods, strictly positive cycles,
   already in merge's order. Built from a pool small enough that two
   draws overlap (merge has real pointwise sums to do) but large enough
   that they also differ. *)
let gen_profile =
  let open QCheck.Gen in
  let pool =
    Array.init 12 (fun i ->
        mref (Printf.sprintf "com.App.C%d" (i mod 4)) (Printf.sprintf "m%d" i))
  in
  let* n = int_range 0 8 in
  let* picks = list_repeat n (int_range 0 (Array.length pool - 1)) in
  let* cycles = list_repeat n (int_range 1 10_000) in
  let tbl = Hashtbl.create 8 in
  List.iter2
    (fun i c ->
      let m = pool.(i) in
      Hashtbl.replace tbl m (c + Option.value ~default:0 (Hashtbl.find_opt tbl m)))
    picks cycles;
  (* canonicalise through merge with the empty profile *)
  return
    (Profile.merge []
       (Hashtbl.fold
          (fun m c acc -> { Profile.s_method = m; s_cycles = c } :: acc)
          tbl []))

let print_profile p = Profile.to_string p

let arb_profile = QCheck.make gen_profile ~print:print_profile

let profile_equal = ( = )

(* ---- merge is a commutative monoid on canonical profiles --------------- *)

let merge_commutative =
  QCheck.Test.make ~name:"merge a b = merge b a" ~count:500
    QCheck.(pair arb_profile arb_profile)
    (fun (a, b) -> profile_equal (Profile.merge a b) (Profile.merge b a))

let merge_associative =
  QCheck.Test.make ~name:"merge assoc" ~count:500
    QCheck.(triple arb_profile arb_profile arb_profile)
    (fun (a, b, c) ->
      profile_equal
        (Profile.merge (Profile.merge a b) c)
        (Profile.merge a (Profile.merge b c)))

let merge_identity =
  QCheck.Test.make ~name:"merge p [] = p" ~count:500 arb_profile (fun p ->
      profile_equal (Profile.merge p []) p
      && profile_equal (Profile.merge [] p) p)

let merge_mass =
  QCheck.Test.make ~name:"total (merge a b) = total a + total b" ~count:500
    QCheck.(pair arb_profile arb_profile)
    (fun (a, b) ->
      Profile.total (Profile.merge a b) = Profile.total a + Profile.total b)

(* ---- hot_set ----------------------------------------------------------- *)

let hot_set_coverage_monotone =
  QCheck.Test.make ~name:"hot_set grows with coverage" ~count:500
    QCheck.(pair arb_profile (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (p, (c1, c2)) ->
      let lo = min c1 c2 and hi = max c1 c2 in
      let h_lo = Profile.hot_set ~coverage:lo p
      and h_hi = Profile.hot_set ~coverage:hi p in
      List.length h_lo <= List.length h_hi
      && List.for_all (fun m -> List.mem m h_hi) h_lo)

let hot_set_permutation_invariant =
  (* The canonical order (cycles desc, then names) makes the cut
     deterministic: shuffling the sample list cannot change the hot set.
     This is the property that keeps pgo-built OATs byte-identical under
     both CALIBRO_HASH backends — nothing in the selection may depend on
     hash-table iteration order. *)
  QCheck.Test.make ~name:"hot_set ignores sample order" ~count:500
    QCheck.(pair arb_profile (int_bound 1_000_000))
    (fun (p, seed) ->
      let st = Random.State.make [| seed |] in
      let arr = Array.of_list p in
      for i = Array.length arr - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      let shuffled = Profile.merge [] (Array.to_list arr) in
      Profile.hot_set shuffled = Profile.hot_set p)

let hot_set_tie_break () =
  (* Equal-cycle methods cut at the coverage edge must be picked by name,
     not construction order. *)
  let p_fwd =
    [ sample "a.A" "m" 100; sample "a.B" "m" 50; sample "a.C" "m" 50 ]
  in
  let p_rev =
    [ sample "a.C" "m" 50; sample "a.B" "m" 50; sample "a.A" "m" 100 ]
  in
  let h1 = Profile.hot_set ~coverage:0.75 (Profile.merge [] p_fwd)
  and h2 = Profile.hot_set ~coverage:0.75 (Profile.merge [] p_rev) in
  Alcotest.(check bool) "same hot set both orders" true (h1 = h2);
  (* 100 covers 0.5, +50 covers 0.75: exactly two methods, and of the two
     tied candidates B wins by name. *)
  Alcotest.(check (list string))
    "tie broken by name"
    [ "a.A.m"; "a.B.m" ]
    (List.map method_ref_to_string h1 |> List.sort compare)

let hot_set_zero_never_hot () =
  let p = Profile.merge [] [ sample "a.A" "m" 10; sample "a.B" "z" 0 ] in
  Alcotest.(check bool)
    "zero-cycle method never hot" false
    (List.mem (mref "a.B" "z") (Profile.hot_set ~coverage:1.0 p))

(* ---- the drift metric -------------------------------------------------- *)

let drift_identical () =
  let p = [ sample "a.A" "m1" 100; sample "a.A" "m2" 50 ] in
  let hot = [ mref "a.A" "m1"; mref "a.A" "m2" ] in
  Alcotest.(check (float 1e-9))
    "identical sets score 0" 0.0
    (Pgo.Drift.score ~profile:p ~served:hot ~current:hot)

let drift_disjoint () =
  let p =
    [ sample "a.A" "m1" 100; sample "a.A" "m2" 50; sample "a.B" "m3" 70 ]
  in
  Alcotest.(check (float 1e-9))
    "disjoint sets score 1" 1.0
    (Pgo.Drift.score ~profile:p
       ~served:[ mref "a.A" "m1" ]
       ~current:[ mref "a.A" "m2"; mref "a.B" "m3" ])

let drift_empty_union () =
  Alcotest.(check (float 1e-9))
    "no evidence scores 0" 0.0
    (Pgo.Drift.score ~profile:[] ~served:[] ~current:[])

let drift_monotone_in_displaced_mass () =
  (* served = {a,b,c}; displace methods one at a time, lightest first —
     each step moves strictly more execution mass, the score must be
     non-decreasing (strictly increasing here). *)
  let a = mref "x.X" "a"
  and b = mref "x.X" "b"
  and c = mref "x.X" "c"
  and d = mref "x.X" "d"
  and e = mref "x.X" "e"
  and f = mref "x.X" "f" in
  let profile =
    [ { Profile.s_method = a; s_cycles = 1000 };
      { Profile.s_method = b; s_cycles = 300 };
      { Profile.s_method = c; s_cycles = 100 };
      { Profile.s_method = d; s_cycles = 100 };
      { Profile.s_method = e; s_cycles = 300 };
      { Profile.s_method = f; s_cycles = 1000 } ]
  in
  let served = [ a; b; c ] in
  let score current = Pgo.Drift.score ~profile ~served ~current in
  let s0 = score [ a; b; c ] (* nothing displaced *)
  and s1 = score [ a; b; d ] (* c (100) -> d *)
  and s2 = score [ a; e; d ] (* + b (300) -> e *)
  and s3 = score [ f; e; d ] (* + a (1000) -> f *) in
  Alcotest.(check (float 1e-9)) "baseline 0" 0.0 s0;
  Alcotest.(check bool) "more mass, more drift" true (s0 < s1 && s1 < s2 && s2 < s3);
  Alcotest.(check (float 1e-9)) "all displaced scores 1" 1.0 s3

(* ---- the hysteresis state machine -------------------------------------- *)

let key =
  { Pgo.bk_config = Config.baseline;
    bk_dexsim = "dex";
    bk_profile = None;
    bk_dict = None;
    bk_shelve = None }

let base_profile =
  [ sample "a.A" "hot1" 5000;
    sample "a.A" "hot2" 3000;
    sample "a.B" "warm" 800;
    sample "a.B" "cold" 50 ]
  |> Profile.merge []

let report_ack m ~digest p =
  match Pgo.Manager.report m ~digest ~profile:p ~allow_relink:true with
  | Pgo.Manager.Unknown -> Alcotest.fail "report: Unknown for registered app"
  | Pgo.Manager.Ack { drift; relink } -> (drift, relink)

let hysteresis_noise_never_fires () =
  (* 500 seeded reports of the same regime with +/-1-cycle noise: the
     hot set cannot move, drift stays ~0, no relink may ever schedule. *)
  let m = Pgo.Manager.create () in
  let digest = "app-digest" in
  Pgo.Manager.note_build m ~digest ~app:"Noise" ~key
    ~hot:(Profile.hot_set base_profile);
  let st = Random.State.make [| 0x5eed |] in
  for i = 1 to 500 do
    let noisy =
      List.map
        (fun (s : Profile.sample) ->
          { s with
            Profile.s_cycles =
              max 1 (s.Profile.s_cycles + Random.State.int st 3 - 1) })
        base_profile
      |> Profile.merge []
    in
    let drift, relink = report_ack m ~digest noisy in
    if relink <> None then
      Alcotest.failf "noise report %d scheduled a relink (drift %.3f)" i drift
  done;
  match Pgo.Manager.totals m with
  | [ (app, t) ] ->
    Alcotest.(check string) "app" "Noise" app;
    Alcotest.(check int) "reports counted" 500 t.Pgo.p_reports;
    Alcotest.(check int) "no drift detected" 0 t.Pgo.p_drift_detected;
    Alcotest.(check int) "no relinks" 0 t.Pgo.p_relinks
  | l -> Alcotest.failf "expected one app, got %d" (List.length l)

let drifted_profile =
  (* The regime flip: yesterday's cold tail is today's hot set. *)
  [ sample "a.B" "cold" 5000;
    sample "a.B" "warm" 3000;
    sample "a.A" "hot1" 40;
    sample "a.A" "hot2" 20 ]
  |> Profile.merge []

let hysteresis_requires_streak () =
  (* hysteresis = 3: two over-threshold reports must NOT schedule, the
     third must, and while that relink is in flight further reports must
     not schedule a second one. *)
  let m =
    Pgo.Manager.create
      ~config:{ Pgo.default_config with Pgo.hysteresis = 3 } ()
  in
  let digest = "app-digest" in
  Pgo.Manager.note_build m ~digest ~app:"Drift" ~key
    ~hot:(Profile.hot_set base_profile);
  let d1, r1 = report_ack m ~digest drifted_profile in
  let _, r2 = report_ack m ~digest drifted_profile in
  Alcotest.(check bool) "report 1 over threshold" true (d1 > 0.3);
  Alcotest.(check bool) "no relink before hysteresis" true
    (r1 = None && r2 = None);
  let _, r3 = report_ack m ~digest drifted_profile in
  (match r3 with
  | None -> Alcotest.fail "third over-threshold report must schedule"
  | Some k ->
    Alcotest.(check bool) "relink key keeps config+dex" true
      (k.Pgo.bk_config = key.Pgo.bk_config
      && k.Pgo.bk_dexsim = key.Pgo.bk_dexsim);
    (* the relink profile is the streak merge: 3x the drifted report,
       whose hot set is exactly the new regime's *)
    (match k.Pgo.bk_profile with
    | None -> Alcotest.fail "relink key must carry the streak profile"
    | Some s ->
      (match Profile.of_string s with
      | Error e -> Alcotest.failf "streak profile unparsable: %s" e
      | Ok p ->
        Alcotest.(check bool) "streak hot set = new regime's" true
          (Profile.hot_set p = Profile.hot_set drifted_profile))));
  let _, r4 = report_ack m ~digest drifted_profile in
  Alcotest.(check bool) "in-flight latch holds" true (r4 = None)

let hysteresis_resets_on_quiet () =
  (* an under-threshold report between two over-threshold ones breaks the
     streak: drift must be *consecutive* to relink. *)
  let m =
    Pgo.Manager.create
      ~config:{ Pgo.default_config with Pgo.hysteresis = 2 } ()
  in
  let digest = "app-digest" in
  Pgo.Manager.note_build m ~digest ~app:"Quiet" ~key
    ~hot:(Profile.hot_set base_profile);
  let _, r1 = report_ack m ~digest drifted_profile in
  Alcotest.(check bool) "streak 1, no relink" true (r1 = None);
  (* a heavy dose of the old regime drags the accumulator back *)
  let calm =
    Profile.merge []
      (List.map
         (fun (s : Profile.sample) ->
           { s with Profile.s_cycles = s.Profile.s_cycles * 50 })
         base_profile)
  in
  let d2, _ = report_ack m ~digest calm in
  Alcotest.(check bool) "calm report under threshold" true (d2 <= 0.3);
  let _, r3 = report_ack m ~digest drifted_profile in
  Alcotest.(check bool) "streak restarted: still no relink" true (r3 = None)

let report_unknown_app () =
  let m = Pgo.Manager.create () in
  match
    Pgo.Manager.report m ~digest:"never-built" ~profile:base_profile
      ~allow_relink:true
  with
  | Pgo.Manager.Unknown -> ()
  | Pgo.Manager.Ack _ -> Alcotest.fail "report for unknown digest must be Unknown"

let drain_never_schedules () =
  (* allow_relink:false (the draining server): reports still merge and
     count, but nothing may be scheduled even past the hysteresis. *)
  let m =
    Pgo.Manager.create
      ~config:{ Pgo.default_config with Pgo.hysteresis = 1 } ()
  in
  let digest = "app-digest" in
  Pgo.Manager.note_build m ~digest ~app:"Drain" ~key
    ~hot:(Profile.hot_set base_profile);
  for _ = 1 to 5 do
    match
      Pgo.Manager.report m ~digest ~profile:drifted_profile
        ~allow_relink:false
    with
    | Pgo.Manager.Unknown -> Alcotest.fail "registered app"
    | Pgo.Manager.Ack { relink; _ } ->
      Alcotest.(check bool) "draining never schedules" true (relink = None)
  done;
  match Pgo.Manager.totals m with
  | [ (_, t) ] ->
    Alcotest.(check int) "reports still counted" 5 t.Pgo.p_reports;
    Alcotest.(check bool) "drift still detected" true
      (t.Pgo.p_drift_detected > 0)
  | _ -> Alcotest.fail "one app expected"

let relink_failed_releases_latch () =
  let m =
    Pgo.Manager.create
      ~config:{ Pgo.default_config with Pgo.hysteresis = 1 } ()
  in
  let digest = "app-digest" in
  Pgo.Manager.note_build m ~digest ~app:"Retry" ~key
    ~hot:(Profile.hot_set base_profile);
  let _, r1 = report_ack m ~digest drifted_profile in
  Alcotest.(check bool) "first schedules" true (r1 <> None);
  let _, r2 = report_ack m ~digest drifted_profile in
  Alcotest.(check bool) "latched" true (r2 = None);
  Pgo.Manager.relink_failed m ~digest;
  let _, r3 = report_ack m ~digest drifted_profile in
  Alcotest.(check bool) "failure releases the latch" true (r3 <> None)

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false)
    [ merge_commutative;
      merge_associative;
      merge_identity;
      merge_mass;
      hot_set_coverage_monotone;
      hot_set_permutation_invariant ]
  @ [ Alcotest.test_case "hot_set tie-break by name" `Quick hot_set_tie_break;
      Alcotest.test_case "hot_set never includes zero-cycle" `Quick
        hot_set_zero_never_hot;
      Alcotest.test_case "drift: identical = 0" `Quick drift_identical;
      Alcotest.test_case "drift: disjoint = 1" `Quick drift_disjoint;
      Alcotest.test_case "drift: empty union = 0" `Quick drift_empty_union;
      Alcotest.test_case "drift: monotone in displaced mass" `Quick
        drift_monotone_in_displaced_mass;
      Alcotest.test_case "hysteresis: 500 noisy reports never fire" `Quick
        hysteresis_noise_never_fires;
      Alcotest.test_case "hysteresis: needs a full streak" `Quick
        hysteresis_requires_streak;
      Alcotest.test_case "hysteresis: quiet report resets streak" `Quick
        hysteresis_resets_on_quiet;
      Alcotest.test_case "report: unknown app digest" `Quick report_unknown_app;
      Alcotest.test_case "drain merges but never schedules" `Quick
        drain_never_schedules;
      Alcotest.test_case "relink failure releases the latch" `Quick
        relink_failed_releases_latch ]
