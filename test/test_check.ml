(* Tests for the lib/check correctness subsystem: the differential
   oracle, the structural invariant checkers, fault injection (the oracle
   must catch a deliberately mis-transformed build), shrinking, and the
   seeded fuzz loop. *)

open Calibro_core
open Calibro_check
module Appgen = Calibro_workload.Appgen
module Apps = Calibro_workload.Apps
module Oat = Calibro_oat.Oat_file

let demo_apk () = (Appgen.generate Apps.demo).Appgen.app

let mutate_with kind _config oat =
  match Fault.inject kind oat with Some oat' -> oat' | None -> oat

let oracle_tests =
  [ Alcotest.test_case "oracle passes on the demo app, full matrix" `Quick
      (fun () ->
        match Oracle.run (demo_apk ()) with
        | Error e -> Alcotest.failf "oracle error: %s" e
        | Ok r ->
          Alcotest.(check (list string))
            "no divergences" []
            (List.map Oracle.divergence_to_string r.Oracle.r_divergences);
          Alcotest.(check bool) "nonzero calls" true (r.Oracle.r_calls > 0);
          (* the default matrix includes the profiled HfOpti config *)
          Alcotest.(check bool) "hf config present" true
            (List.exists
               (fun n -> Astring.String.is_infix ~affix:"HfOpti" n)
               r.Oracle.r_configs));
    Alcotest.test_case "invariants hold on every config's build" `Quick
      (fun () ->
        let apk = demo_apk () in
        List.iter
          (fun config ->
            let b = Pipeline.build ~config apk in
            Alcotest.(check (list string))
              ("invariants " ^ config.Config.name)
              []
              (List.map Invariants.violation_to_string
                 (Invariants.check b.Pipeline.b_oat)))
          (Config.baseline :: Config.matrix ()));
    Alcotest.test_case "oracle respects an explicit config list" `Quick
      (fun () ->
        match Oracle.run ~configs:[ Config.cto ] (demo_apk ()) with
        | Error e -> Alcotest.failf "oracle error: %s" e
        | Ok r ->
          Alcotest.(check (list string)) "one config" [ "CTO" ]
            r.Oracle.r_configs)
  ]

let fault_tests =
  (* Each deliberate mis-transformation must be caught: the mispatched
     branch only by differential execution, the drifted stackmap by the
     structural checker, the truncated outlined body by either. *)
  List.map
    (fun kind ->
      Alcotest.test_case
        ("oracle catches " ^ Fault.to_string kind)
        `Quick
        (fun () ->
          match Oracle.run ~mutate:(mutate_with kind) (demo_apk ()) with
          | Error e -> Alcotest.failf "oracle error: %s" e
          | Ok r ->
            Alcotest.(check bool) "diverges" false (Oracle.ok r)))
    Fault.all
  @ [ Alcotest.test_case "fault injection leaves the input untouched" `Quick
        (fun () ->
          let b = Pipeline.build ~config:Config.cto_ltbo (demo_apk ()) in
          let oat = b.Pipeline.b_oat in
          let before = Bytes.copy oat.Oat.text in
          List.iter (fun k -> ignore (Fault.inject k oat)) Fault.all;
          Alcotest.(check bytes) "text unchanged" before oat.Oat.text);
      Alcotest.test_case "corrupt stackmap is a structural violation" `Quick
        (fun () ->
          let b = Pipeline.build ~config:Config.cto (demo_apk ()) in
          match Fault.inject Fault.Corrupt_stackmap b.Pipeline.b_oat with
          | None -> Alcotest.fail "no stackmap site in the demo build"
          | Some bad ->
            Alcotest.(check bool) "violations found" true
              (Invariants.check bad <> []))
    ]

let shrink_tests =
  [ Alcotest.test_case "mispatched build shrinks to a small reproducer"
      `Slow
      (fun () ->
        let apk = Fuzz.apk_of_seed 0 in
        let mutate = mutate_with Fault.Mispatch_branch in
        let still_failing a =
          Oracle.fails ~baseline_fuel:2_000_000 ~configs:[ Config.cto ]
            ~mutate a
        in
        Alcotest.(check bool) "original fails" true (still_failing apk);
        let shrunk, st = Shrink.shrink ~budget:200 ~still_failing apk in
        Alcotest.(check bool) "fewer methods" true
          (st.Shrink.s_methods_after < st.Shrink.s_methods_before);
        Alcotest.(check bool) "fewer instructions" true
          (st.Shrink.s_insns_after < st.Shrink.s_insns_before);
        Alcotest.(check bool) "shrunk still fails" true (still_failing shrunk);
        Alcotest.(check bool) "shrunk is well-formed" true
          (Calibro_dex.Dex_check.check shrunk = Ok ());
        (* the emitted Alcotest case embeds parseable .dexsim source *)
        let case = Fuzz.alcotest_case_of ~seed:0 shrunk in
        Alcotest.(check bool) "case names the seed" true
          (Astring.String.is_infix ~affix:"test_fuzz_seed_0" case);
        Alcotest.(check bool) "case embeds the program" true
          (Astring.String.is_infix ~affix:".apk" case))
  ]

let fuzz_tests =
  [ Alcotest.test_case "fuzz seeds pass on the healthy pipeline" `Quick
      (fun () ->
        let o = Fuzz.run ~seeds:4 () in
        Alcotest.(check bool) "ok" true (Fuzz.ok o);
        Alcotest.(check int) "ran all seeds" 4 o.Fuzz.fz_seeds);
    Alcotest.test_case "seeds are deterministic" `Quick (fun () ->
        let p1 = Fuzz.profile_of_seed 11 and p2 = Fuzz.profile_of_seed 11 in
        Alcotest.(check bool) "same profile" true (p1 = p2);
        Alcotest.(check bool) "same app" true
          (Fuzz.apk_of_seed 11 = Fuzz.apk_of_seed 11);
        let p3 = Fuzz.profile_of_seed 12 in
        Alcotest.(check bool) "different seed, different profile" true
          (p1 <> p3));
    Alcotest.test_case "fuzzing a faulted pipeline reports the seed" `Quick
      (fun () ->
        let o =
          Fuzz.run ~seeds:1 ~mutate:(mutate_with Fault.Mispatch_branch)
            ~shrink:false ()
        in
        match o.Fuzz.fz_failures with
        | [ f ] ->
          Alcotest.(check int) "seed 0" 0 f.Fuzz.fl_seed;
          Alcotest.(check bool) "details" true (f.Fuzz.fl_detail <> [])
        | fs -> Alcotest.failf "expected 1 failure, got %d" (List.length fs))
  ]

let config_tests =
  [ Alcotest.test_case "config of_string round" `Quick (fun () ->
        (match Config.of_string "cto" with
         | Ok c -> Alcotest.(check bool) "cto" true c.Config.cto
         | Error e -> Alcotest.fail e);
        (match Config.of_string "pl4" with
         | Ok c -> Alcotest.(check int) "k" 4 c.Config.parallel_trees
         | Error e -> Alcotest.fail e);
        (match Config.of_string "rounds2" with
         | Ok c -> Alcotest.(check int) "rounds" 2 c.Config.ltbo_rounds
         | Error e -> Alcotest.fail e);
        match Config.of_string "nonsense" with
        | Ok _ -> Alcotest.fail "accepted nonsense"
        | Error _ -> ())
  ]

let suite =
  oracle_tests @ fault_tests @ shrink_tests @ fuzz_tests @ config_tests
