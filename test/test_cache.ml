(* The incremental-build test battery: byte-equivalence of warm builds
   against cold builds across the oracle matrix, cache counter accounting,
   the on-disk tier (roundtrip, corruption, eviction), the method-entry
   codec and the mutation workload that drives all of it. *)

open Calibro_core
open Calibro_workload
module Cache = Calibro_cache.Cache
module Obs = Calibro_obs.Obs
module Dex_ir = Calibro_dex.Dex_ir

let demo () = (Appgen.generate Apps.demo).Appgen.app

let text_digest (b : Pipeline.build) =
  Digest.to_hex (Digest.bytes b.Pipeline.b_oat.Calibro_oat.Oat_file.text)

let counter = Obs.Counter.value
let pl8 = Config.cto_ltbo_pl ~k:8 ()

(* Hot set of the demo app under its bundled script, as the oracle derives
   it — enables the HfOpti row of the matrix. *)
let demo_hot (a : Appgen.app) =
  let b = Pipeline.build ~cache:None ~config:Config.baseline a.Appgen.app in
  let t = Calibro_vm.Interp.load b.Pipeline.b_oat in
  List.iter
    (fun (st : Appgen.script_step) ->
      for _ = 1 to st.Appgen.sc_repeat do
        ignore (Calibro_vm.Interp.call t st.Appgen.sc_method st.Appgen.sc_args)
      done)
    a.Appgen.app_script;
  Calibro_profile.Profile.hot_set (Calibro_profile.Profile.of_interp t)

(* Fresh temp directory for the disk tier, removed afterwards. *)
let tmp_counter = ref 0

let with_tmpdir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "calibro-cache-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let equivalence_tests =
  [ Alcotest.test_case "warm rebuild is byte-identical across the matrix"
      `Quick (fun () ->
        (* Every oracle-matrix configuration x three mutation seeds: prime
           a fresh cache with the unedited app, build the mutant warm, and
           demand the exact bytes a cold build of the mutant produces. A
           cache that changes one bit anywhere in the OAT text under any
           configuration fails here. *)
        let a = Appgen.generate Apps.demo in
        let apk = a.Appgen.app in
        let hot = demo_hot a in
        List.iter
          (fun (config : Config.t) ->
            List.iter
              (fun seed ->
                let mutant, ops = Mutate.mutate ~ops:2 ~seed apk in
                let cold = Pipeline.build ~cache:None ~config mutant in
                let cache = Cache.create () in
                ignore (Pipeline.build ~cache:(Some cache) ~config apk);
                let warm = Pipeline.build ~cache:(Some cache) ~config mutant in
                Alcotest.(check string)
                  (Printf.sprintf "%s seed %d (%s)" config.Config.name seed
                     (String.concat ", " (List.map Mutate.op_to_string ops)))
                  (text_digest cold) (text_digest warm))
              [ 1; 2; 3 ])
          (Config.baseline :: Config.matrix ~hot_methods:hot ()));
    Alcotest.test_case "second build hits the method cache entirely" `Quick
      (fun () ->
        let apk = demo () in
        let cache = Cache.create () in
        let n = List.length (Dex_ir.methods_of_apk apk) in
        let h0 = counter "cache.method.hits" in
        let m0 = counter "cache.method.misses" in
        ignore (Pipeline.build ~cache:(Some cache) ~config:pl8 apk);
        let m1 = counter "cache.method.misses" in
        Alcotest.(check int) "first build misses every method" n (m1 - m0);
        Alcotest.(check int) "first build hits nothing" h0
          (counter "cache.method.hits");
        ignore (Pipeline.build ~cache:(Some cache) ~config:pl8 apk);
        Alcotest.(check int) "second build misses nothing" m1
          (counter "cache.method.misses");
        Alcotest.(check int) "second build hits every method" n
          (counter "cache.method.hits" - h0));
    Alcotest.test_case "a one-method edit recompiles exactly one method"
      `Quick (fun () ->
        let apk = demo () in
        let cache = Cache.create () in
        ignore (Pipeline.build ~cache:(Some cache) ~config:pl8 apk);
        let apk', edited = Mutate.edit_one ~seed:1 apk in
        let m0 = counter "cache.method.misses" in
        ignore (Pipeline.build ~cache:(Some cache) ~config:pl8 apk');
        Alcotest.(check int)
          (Printf.sprintf "only %s recompiled"
             (Dex_ir.method_ref_to_string edited))
          1
          (counter "cache.method.misses" - m0));
    Alcotest.test_case "detection groups are memoized" `Quick (fun () ->
        let apk = demo () in
        let cache = Cache.create () in
        let h0 = counter "cache.detect.hits" in
        let m0 = counter "cache.detect.misses" in
        ignore (Pipeline.build ~cache:(Some cache) ~config:pl8 apk);
        let m1 = counter "cache.detect.misses" in
        Alcotest.(check bool) "first build misses its groups" true
          (m1 - m0 > 0);
        ignore (Pipeline.build ~cache:(Some cache) ~config:pl8 apk);
        Alcotest.(check int) "second build misses no group" m1
          (counter "cache.detect.misses");
        Alcotest.(check int) "second build hits every group" (m1 - m0)
          (counter "cache.detect.hits" - h0)) ]

let disk_tests =
  [ Alcotest.test_case "disk tier survives a fresh cache instance" `Quick
      (fun () ->
        with_tmpdir (fun dir ->
            let apk = demo () in
            let cold = Pipeline.build ~cache:None ~config:pl8 apk in
            let c1 = Cache.create ~dir () in
            ignore (Pipeline.build ~cache:(Some c1) ~config:pl8 apk);
            Alcotest.(check bool) "entries written to disk" true
              (Cache.entry_files c1 <> []);
            (* a fresh instance on the same dir models a new dex2oat
               process: the memory tier is empty, everything must come
               back through the disk tier *)
            let c2 = Cache.create ~dir () in
            let d0 = counter "cache.method.disk_hits" in
            let m0 = counter "cache.method.misses" in
            let warm = Pipeline.build ~cache:(Some c2) ~config:pl8 apk in
            Alcotest.(check bool) "methods served from disk" true
              (counter "cache.method.disk_hits" - d0 > 0);
            Alcotest.(check int) "nothing recompiled" m0
              (counter "cache.method.misses");
            Alcotest.(check string) "bytes identical" (text_digest cold)
              (text_digest warm);
            (* regression: the serialized container must also match — the
               method table is marshalled with [No_sharing] because cache-
               decoded entries share sub-values differently than freshly
               compiled ones, which used to change the payload bytes *)
            Alcotest.(check string) "serialized OAT identical"
              (Digest.to_hex
                 (Digest.bytes
                    (Calibro_oat.Oat_file.to_bytes cold.Pipeline.b_oat)))
              (Digest.to_hex
                 (Digest.bytes
                    (Calibro_oat.Oat_file.to_bytes warm.Pipeline.b_oat)))));
    Alcotest.test_case "corrupt disk entries are misses, never wrong code"
      `Quick (fun () ->
        with_tmpdir (fun dir ->
            let apk = demo () in
            let cold = Pipeline.build ~cache:None ~config:pl8 apk in
            let c1 = Cache.create ~dir () in
            ignore (Pipeline.build ~cache:(Some c1) ~config:pl8 apk);
            let files = Cache.entry_files c1 in
            Alcotest.(check bool) "at least two entries to damage" true
              (List.length files >= 2);
            (* mid-write crash and silent media corruption *)
            Calibro_check.Fault.Cache.truncate (List.nth files 0);
            Calibro_check.Fault.Cache.bitflip (List.nth files 1);
            let c2 = Cache.create ~dir () in
            let corrupt ns = counter ("cache." ^ ns ^ ".disk_corrupt") in
            let c0 = corrupt "method" + corrupt "detect" in
            let warm = Pipeline.build ~cache:(Some c2) ~config:pl8 apk in
            Alcotest.(check bool) "both damaged entries detected" true
              (corrupt "method" + corrupt "detect" - c0 >= 2);
            Alcotest.(check string) "bytes identical despite corruption"
              (text_digest cold) (text_digest warm)));
    Alcotest.test_case "FIFO eviction caps the memory tiers" `Quick (fun () ->
        let apk = demo () in
        let cache = Cache.create ~max_entries:4 () in
        let e0 = counter "cache.method.evictions" in
        let b1 = Pipeline.build ~cache:(Some cache) ~config:pl8 apk in
        Alcotest.(check bool) "evictions happened" true
          (counter "cache.method.evictions" - e0 > 0);
        Alcotest.(check bool) "both tiers stay within the cap" true
          (Cache.mem_entries cache <= 8);
        (* a cache that evicts everything is still a correct cache *)
        let b2 = Pipeline.build ~cache:(Some cache) ~config:pl8 apk in
        Alcotest.(check string) "bytes identical under thrashing"
          (text_digest b1) (text_digest b2));
    Alcotest.test_case "stale tmp files are swept on store open" `Quick
      (fun () ->
        with_tmpdir (fun dir ->
            let apk = demo () in
            let c1 = Cache.create ~dir () in
            ignore (Pipeline.build ~cache:(Some c1) ~config:pl8 apk);
            (* The residue of a writer killed between open_out_bin and
               rename: an orphan <entry>.json.tmp.<pid>.<domain> nothing
               will ever read. *)
            let entry = List.hd (Cache.entry_files c1) in
            let stale = entry ^ ".tmp.999999.0" in
            let oc = open_out_bin stale in
            output_string oc "half a write";
            close_out oc;
            let swept ns = counter ("cache." ^ ns ^ ".tmp_swept") in
            let s0 = swept "method" + swept "detect" in
            ignore (Cache.create ~dir ());
            Alcotest.(check bool) "stale tmp removed" false
              (Sys.file_exists stale);
            Alcotest.(check bool) "live entry untouched" true
              (Sys.file_exists entry);
            Alcotest.(check int) "sweep counted" 1
              (swept "method" + swept "detect" - s0)));
    Alcotest.test_case "a failed disk store leaves no tmp debris" `Quick
      (fun () ->
        with_tmpdir (fun dir ->
            let module Json = Calibro_obs.Json in
            let c = Cache.create ~dir () in
            Cache.add_json c ~ns:"detect" "k1" (Json.Str "v1");
            let path = List.hd (Cache.entry_files c) in
            (* Make the atomic rename fail: replace the destination with
               a directory. The write must degrade to memory-only AND
               unlink its own tmp file — pre-fix it leaked one per
               failure. *)
            Sys.remove path;
            Unix.mkdir path 0o755;
            let e0 = counter "cache.detect.disk_write_errors" in
            Cache.add_json c ~ns:"detect" "k1" (Json.Str "v2");
            Alcotest.(check int) "write error counted" 1
              (counter "cache.detect.disk_write_errors" - e0);
            let ns_dir = Filename.dirname path in
            let debris =
              Sys.readdir ns_dir |> Array.to_list
              |> List.filter (fun f ->
                     let rec has i =
                       i + 5 <= String.length f
                       && (String.sub f i 5 = ".tmp." || has (i + 1))
                     in
                     has 0)
            in
            Alcotest.(check (list string)) "no tmp debris" [] debris;
            (match Cache.find_json c ~ns:"detect" "k1" with
            | Some (Json.Str "v2") -> ()
            | _ -> Alcotest.fail "memory tier lost the entry");
            (* leave the tree removable for with_tmpdir *)
            Unix.rmdir path)) ]

let codec_tests =
  [ Alcotest.test_case "method-entry codec roundtrips every demo method"
      `Quick (fun () ->
        let apk = demo () in
        let methods = Dex_ir.methods_of_apk apk in
        let slots = Hashtbl.create 16 in
        List.iteri
          (fun i (m : Dex_ir.meth) -> Hashtbl.replace slots m.name i)
          methods;
        List.iter
          (fun (m : Dex_ir.meth) ->
            let g = Calibro_hgraph.Hgraph.of_method m in
            ignore (Calibro_hgraph.Passes.optimize g);
            let cm =
              Calibro_codegen.Codegen.compile
                ~config:{ Calibro_codegen.Codegen.cto = true }
                ~slot_of_method:(Hashtbl.find slots) g
            in
            let entry =
              { Cache.ce_method = cm;
                ce_token_digest = Seq_map.method_digest cm }
            in
            match
              Cache.method_entry_of_json (Cache.method_entry_to_json entry)
            with
            | Error e ->
              Alcotest.failf "decode %s: %s"
                (Dex_ir.method_ref_to_string m.name)
                e
            | Ok entry' ->
              Alcotest.(check bool)
                (Dex_ir.method_ref_to_string m.name)
                true (entry = entry'))
          methods);
    Alcotest.test_case "json tier rejects malformed namespaces" `Quick
      (fun () ->
        let cache = Cache.create () in
        List.iter
          (fun ns ->
            match Cache.add_json cache ~ns "k" (Calibro_obs.Json.Int 1) with
            | exception Invalid_argument _ -> ()
            | () -> Alcotest.failf "namespace %S accepted" ns)
          [ "method"; "a/b"; "a.b"; "" ]) ]

let mutate_tests =
  [ Alcotest.test_case "mutations are deterministic in the seed" `Quick
      (fun () ->
        let apk = demo () in
        let a1, ops1 = Mutate.mutate ~ops:3 ~seed:11 apk in
        let a2, ops2 = Mutate.mutate ~ops:3 ~seed:11 apk in
        Alcotest.(check (list string))
          "same ops"
          (List.map Mutate.op_to_string ops1)
          (List.map Mutate.op_to_string ops2);
        Alcotest.(check string) "same bytes"
          (text_digest (Pipeline.build ~cache:None ~config:Config.baseline a1))
          (text_digest (Pipeline.build ~cache:None ~config:Config.baseline a2)));
    Alcotest.test_case "mutants pass the full pipeline" `Quick (fun () ->
        let apk = demo () in
        List.iter
          (fun seed ->
            let mutant, ops = Mutate.mutate ~ops:4 ~seed apk in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d applied ops" seed)
              true (ops <> []);
            (* Dex_check runs inside build; a mutant with a dangling
               reference or bad register count dies here *)
            ignore (Pipeline.build ~cache:None ~config:pl8 mutant))
          [ 1; 2; 3; 4; 5 ]);
    Alcotest.test_case "edit_one flips bytes in exactly one method" `Quick
      (fun () ->
        let apk = demo () in
        let apk', edited = Mutate.edit_one ~seed:2 apk in
        let changed =
          List.filter
            (fun (m : Dex_ir.meth) ->
              match Dex_ir.find_method apk m.name with
              | Some m0 -> m0.Dex_ir.insns <> m.Dex_ir.insns
              | None -> true)
            (Dex_ir.methods_of_apk apk')
        in
        (match changed with
         | [ m ] ->
           Alcotest.(check string) "the reported method"
             (Dex_ir.method_ref_to_string edited)
             (Dex_ir.method_ref_to_string m.Dex_ir.name)
         | ms -> Alcotest.failf "%d methods changed" (List.length ms));
        Alcotest.(check int) "method count unchanged"
          (Dex_ir.method_count apk)
          (Dex_ir.method_count apk')) ]

(* ---- Concurrent sharing: one cache, many domains (the calibrod shape) --- *)

let concurrent_tests =
  [ Alcotest.test_case "N domains sharing one cache build identical bytes"
      `Slow (fun () ->
        (* The daemon's steady state in miniature: worker domains build
           overlapping releases against one Cache.t. Every concurrent
           build must produce exactly the bytes its sequential cold twin
           does, and the counters must still add up afterwards: the cache
           may never lose a store or serve a stale artifact under
           contention. *)
        let apk = demo () in
        let mutants =
          Array.init 4 (fun i -> fst (Mutate.mutate ~seed:(i + 1) apk))
        in
        let cold =
          Array.map
            (fun m ->
              Digest.bytes
                (Pipeline.build ~cache:None ~config:Config.cto_ltbo m)
                  .Pipeline.b_oat.Calibro_oat.Oat_file.text)
            mutants
        in
        let h0 = counter "cache.method.hits" in
        let m0 = counter "cache.method.misses" in
        let s0 = counter "cache.method.stores" in
        let e0 = counter "cache.method.evictions" in
        let cache = Cache.create () in
        let domains =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  (* Each domain walks the mutants in a different order so
                     hits and misses interleave across domains. *)
                  Array.init (Array.length mutants) (fun i ->
                      let ix = (i + d) mod Array.length mutants in
                      let b =
                        Pipeline.build ~cache:(Some cache)
                          ~config:Config.cto_ltbo mutants.(ix)
                      in
                      ( ix,
                        Digest.bytes
                          b.Pipeline.b_oat.Calibro_oat.Oat_file.text ))))
        in
        let results = List.map Domain.join domains in
        (* Counters are snapshot only now, after every domain joined. *)
        List.iteri
          (fun d ->
            Array.iter (fun (ix, dg) ->
                Alcotest.(check string)
                  (Printf.sprintf "domain %d mutant %d matches cold build" d
                     ix)
                  (Digest.to_hex cold.(ix))
                  (Digest.to_hex dg)))
          results;
        let hits = counter "cache.method.hits" - h0 in
        let misses = counter "cache.method.misses" - m0 in
        let stores = counter "cache.method.stores" - s0 in
        let lookups =
          List.fold_left
            (fun acc m -> acc + List.length (Dex_ir.methods_of_apk m))
            0
            (Array.to_list mutants)
          * 4
        in
        Alcotest.(check int) "every lookup is a hit or a miss" lookups
          (hits + misses);
        Alcotest.(check int) "every miss is stored" misses stores;
        Alcotest.(check int) "nothing evicted" e0
          (counter "cache.method.evictions");
        Alcotest.(check bool)
          (Printf.sprintf "sharing pays (hits %d, misses %d)" hits misses)
          true
          (hits > 0)) ]

let suite =
  equivalence_tests @ disk_tests @ codec_tests @ mutate_tests
  @ concurrent_tests
