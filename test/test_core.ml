(* Tests for core modules not covered elsewhere: Seq_map, Redundancy,
   Parallel determinism, Config, Report. *)

open Calibro_core
open Calibro_dex
open Calibro_vm

let parse src =
  match Dex_text.parse src with
  | Ok apk -> apk
  | Error e -> Alcotest.failf "parse: %s" e

let header = ".apk t\n.dex d\n.class t\n"

let compile_methods apk =
  let b = Pipeline.build ~config:Config.baseline apk in
  let methods = Dex_ir.methods_of_apk apk in
  let slots = Hashtbl.create 4 in
  List.iteri (fun i (m : Dex_ir.meth) -> Hashtbl.replace slots m.name i) methods;
  List.map
    (fun m ->
      Calibro_codegen.Codegen.compile
        ~slot_of_method:(Hashtbl.find slots)
        (let g = Calibro_hgraph.Hgraph.of_method m in
         ignore (Calibro_hgraph.Passes.optimize g);
         g))
    methods
  |> fun cms -> (b, cms)

let compile_one src = compile_methods (parse src)

let seq_map_tests =
  [ Alcotest.test_case "separators are unique and cover control flow" `Quick
      (fun () ->
        let src =
          header
          ^ {|.method f params #2 regs #4 entry
  add v2, v0, v1
  ifz eq v2, :l
  mul v2, v2, v2
:l
  invoke t.g (v2) -> v3
  return v3
.end
.method g params #1 regs #2
  add v1, v0, #1
  return v1
.end
|}
        in
        let _, cms = compile_one src in
        let a = Seq_map.new_allocator () in
        let elements = Seq_map.map_method (List.hd cms) a in
        let seps =
          List.filter_map
            (fun (v, e) ->
              match e with Seq_map.Separator -> Some v | _ -> None)
            elements
        in
        (* all separator values distinct *)
        Alcotest.(check int) "unique seps" (List.length seps)
          (List.length (List.sort_uniq compare seps));
        (* at least the cbz, the bl-equivalents (blr/ldr x30), the b and ret *)
        Alcotest.(check bool) "has separators" true (List.length seps >= 4);
        (* word elements round-trip to their offsets *)
        List.iter
          (fun (v, e) ->
            match e with
            | Seq_map.Word (w, off) ->
              Alcotest.(check bool) "word below sep base" true
                (w < Seq_map.sep_base);
              Alcotest.(check bool) "offset aligned" true (off mod 4 = 0);
              Alcotest.(check int) "value is the encoded word" w v
            | Seq_map.Separator -> ())
          elements);
    Alcotest.test_case "hot eligibility maps to separators" `Quick (fun () ->
        let src =
          header
          ^ ".method f params #2 regs #4 entry\n  add v2, v0, v1\n  mul v3, v2, v2\n  sub v3, v3, v2\n  return v3\n.end\n"
        in
        let _, cms = compile_one src in
        let cm = List.hd cms in
        let a = Seq_map.new_allocator () in
        let all_sep =
          Seq_map.map_method ~eligible:(fun _ -> false) cm a
          |> List.for_all (fun (_, e) -> e = Seq_map.Separator)
        in
        Alcotest.(check bool) "all separators when ineligible" true all_sep);
    Alcotest.test_case "digest equality coincides with canonical equality"
      `Quick (fun () ->
        (* The detection cache keys groups by [method_digest]; a collision
           between distinct token runs would replay the wrong decisions, a
           split between identical runs would only cost a recompute. Check
           the iff on 500 random method pairs of the demo app (the
           generator repeats code shapes, so equal non-identical pairs do
           occur). *)
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let _, cms = compile_methods a.Calibro_workload.Appgen.app in
        let arr = Array.of_list cms in
        let n = Array.length arr in
        let rng = Random.State.make [| 0x5e9; 42 |] in
        let equal_pairs = ref 0 in
        for _ = 1 to 500 do
          let i = Random.State.int rng n in
          let j =
            if Random.State.int rng 4 = 0 then i else Random.State.int rng n
          in
          let ci = Seq_map.canonical arr.(i)
          and cj = Seq_map.canonical arr.(j) in
          let di = Seq_map.digest ci and dj = Seq_map.digest cj in
          if ci = cj then incr equal_pairs;
          Alcotest.(check bool)
            (Printf.sprintf "pair (%d,%d)" i j)
            (ci = cj) (di = dj);
          Alcotest.(check string) "method_digest is digest of canonical" di
            (Seq_map.method_digest arr.(i))
        done;
        Alcotest.(check bool) "both directions exercised" true
          (!equal_pairs > 0 && !equal_pairs < 500))
  ]

let redundancy_tests =
  [ Alcotest.test_case "redundancy detects planted repeats" `Quick (fun () ->
        let body =
          "  add v2, v0, v1\n  mul v3, v2, v2\n  sub v4, v3, v0\n  xor v5, v4, v1\n  and v6, v5, v2\n  return v6\n"
        in
        let src =
          header
          ^ String.concat ""
              (List.init 6 (fun i ->
                   Printf.sprintf ".method m%d params #2 regs #7%s\n%s.end\n" i
                     (if i = 0 then " entry" else "")
                     body))
        in
        let b, _ = compile_one src in
        let a = Redundancy.analyze b.Pipeline.b_oat in
        Alcotest.(check bool) "found repeats" true (a.Redundancy.a_repeats > 0);
        Alcotest.(check bool)
          (Printf.sprintf "high ratio (%f)" a.Redundancy.a_ratio)
          true
          (a.Redundancy.a_ratio > 0.3);
        Alcotest.(check bool) "histogram non-empty" true
          (a.Redundancy.a_histogram <> []));
    Alcotest.test_case "pattern census counts the figure 4 patterns" `Quick
      (fun () ->
        let src =
          header
          ^ ".method g params #1 regs #2\n  add v1, v0, #1\n  return v1\n.end\n"
          ^ ".method f params #1 regs #4 entry\n  invoke t.g (v0) -> v1\n  rtcall pLogValue (v1)\n  new t.Box, v2\n  return v1\n.end\n"
        in
        let b, _ = compile_one src in
        let c = Redundancy.pattern_census b.Pipeline.b_oat in
        Alcotest.(check int) "java calls" 1 c.Redundancy.c_java_call;
        (* pLogValue + alloc for new *)
        Alcotest.(check int) "runtime calls" 2 c.Redundancy.c_runtime_call;
        (* one per method *)
        Alcotest.(check int) "stack checks" 2 c.Redundancy.c_stack_check);
    Alcotest.test_case "cto removes the patterns from the census" `Quick
      (fun () ->
        let src =
          header
          ^ ".method f params #1 regs #3 entry\n  rtcall pLogValue (v0)\n  return v0\n.end\n"
        in
        let apk = parse src in
        let b = Pipeline.build ~config:Config.cto apk in
        let c = Redundancy.pattern_census b.Pipeline.b_oat in
        Alcotest.(check int) "no inline runtime pattern" 0
          c.Redundancy.c_runtime_call;
        Alcotest.(check int) "no inline stack check" 0 c.Redundancy.c_stack_check)
  ]

let parallel_tests =
  [ Alcotest.test_case "parallel detection deterministic across k" `Quick
      (fun () ->
        (* same seed -> same partition -> same result *)
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let apk = a.Calibro_workload.Appgen.app in
        let b1 = Pipeline.build ~config:(Config.cto_ltbo_pl ~k:4 ()) apk in
        let b2 = Pipeline.build ~config:(Config.cto_ltbo_pl ~k:4 ()) apk in
        Alcotest.(check int) "same size" (Pipeline.text_size b1)
          (Pipeline.text_size b2);
        Alcotest.(check bytes) "identical text"
          b1.Pipeline.b_oat.Calibro_oat.Oat_file.text
          b2.Pipeline.b_oat.Calibro_oat.Oat_file.text);
    Alcotest.test_case "more trees, less reduction (PlOpti tradeoff)" `Quick
      (fun () ->
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let apk = a.Calibro_workload.Appgen.app in
        let one = Pipeline.build ~config:Config.cto_ltbo apk in
        let many = Pipeline.build ~config:(Config.cto_ltbo_pl ~k:8 ()) apk in
        Alcotest.(check bool)
          (Printf.sprintf "k=8 (%d) >= k=1 (%d)" (Pipeline.text_size many)
             (Pipeline.text_size one))
          true
          (Pipeline.text_size many >= Pipeline.text_size one));
    Alcotest.test_case "partition handles degenerate inputs" `Quick (fun () ->
        Alcotest.(check (list (list int))) "empty" []
          (Parallel.partition ~k:4 ~seed:1 []);
        let one = Parallel.partition ~k:8 ~seed:1 [ 42 ] in
        Alcotest.(check (list (list int))) "singleton" [ [ 42 ] ] one);
    Alcotest.test_case "partition properties: deterministic, non-empty, total"
      `Quick
      (fun () ->
        let input = List.init 37 (fun i -> i * 3) in
        List.iter
          (fun k ->
            let label s = Printf.sprintf "k=%d: %s" k s in
            let g1 = Parallel.partition ~k ~seed:7 input in
            let g2 = Parallel.partition ~k ~seed:7 input in
            Alcotest.(check (list (list int))) (label "same seed, same groups")
              g1 g2;
            Alcotest.(check bool) (label "groups non-empty") true
              (List.for_all (fun g -> g <> []) g1);
            Alcotest.(check bool) (label "at most k groups") true
              (List.length g1 <= k);
            Alcotest.(check (list int)) (label "union is the input")
              (List.sort compare input)
              (List.sort compare (List.concat g1)))
          [ 1; 2; 3; 8; 64 ]);
    Alcotest.test_case "partition distribution is not parity-structured"
      `Quick
      (fun () ->
        (* Regression for the power-of-two-modulus LCG shuffle: its low
           output bit alternated strictly, so with k=2 some elements were
           pinned to one group for most seeds (observed skew up to 6.5
           sigma). With 16 elements, k=2 and 200 seeds, each element's
           group-0 membership count is binomial(200, 1/2): mean 100,
           sigma ~7.1. Accept [70, 130] (+-4.2 sigma) — the biased
           shuffle produced counts of 54 and 139 on this exact input. *)
        let n = 16 and seeds = 200 in
        let input = List.init n Fun.id in
        let counts = Array.make n 0 in
        for seed = 0 to seeds - 1 do
          match Parallel.partition ~k:2 ~seed input with
          | [ g0; _ ] -> List.iter (fun e -> counts.(e) <- counts.(e) + 1) g0
          | gs ->
            Alcotest.failf "expected 2 groups, got %d" (List.length gs)
        done;
        Array.iteri
          (fun e c ->
            Alcotest.(check bool)
              (Printf.sprintf
                 "element %d group-0 count %d within [70, 130] of %d seeds" e
                 c seeds)
              true
              (c >= 70 && c <= 130))
          counts);
    Alcotest.test_case "domain pool matches sequential detection" `Slow
      (fun () ->
        (* More groups than pool workers forces detect_parallel to cycle
           the atomic work counter; the results must be identical to
           running Ltbo.detect over the same groups one by one, in input
           group order. *)
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let _, cms = compile_methods a.Calibro_workload.Appgen.app in
        let marr = Array.of_list cms in
        let idxs =
          List.init (Array.length marr) Fun.id
          |> List.filter (fun i ->
                 Calibro_codegen.Meta.outlinable
                   marr.(i).Calibro_codegen.Compiled_method.meta)
        in
        (* Pin the pool to 3 workers (so this also exercises real domains
           on a single-core host) and hand it more groups than workers. *)
        let n_workers = 3 in
        let n_groups = (2 * n_workers) + 1 in
        let groups =
          List.init n_groups (fun i ->
              [ List.nth idxs (i mod List.length idxs) ])
        in
        let options = Ltbo.default_options in
        let par =
          Parallel.detect_parallel ~max_domains:n_workers ~options marr groups
        in
        let seq = List.map (fun g -> Ltbo.detect ~options marr g) groups in
        Alcotest.(check int) "group count" (List.length seq) (List.length par);
        List.iteri
          (fun i (p, s) ->
            Alcotest.(check bool)
              (Printf.sprintf "group %d decisions+stats equal" i)
              true (p = s))
          (List.combine par seq))
  ]

let workload_vm_tests =
  [ Alcotest.test_case "demo app scripts run clean on all configs" `Slow
      (fun () ->
        let a = Calibro_workload.Appgen.generate Calibro_workload.Apps.demo in
        let apk = a.Calibro_workload.Appgen.app in
        (match Dex_check.check apk with
         | Ok () -> ()
         | Error errs ->
           Alcotest.failf "invalid app: %s"
             (Dex_check.error_to_string (List.hd errs)));
        let run config =
          let b = Pipeline.build ~config apk in
          let t = Interp.load b.Pipeline.b_oat in
          List.map
            (fun (st : Calibro_workload.Appgen.script_step) ->
              match
                Interp.call t st.Calibro_workload.Appgen.sc_method
                  st.Calibro_workload.Appgen.sc_args
              with
              | Interp.Fault m -> Alcotest.failf "fault: %s" m
              | Interp.Returned v -> v
              | Interp.Thrown _ -> min_int)
            a.Calibro_workload.Appgen.app_script
        in
        let base = run Config.baseline in
        List.iter
          (fun config ->
            Alcotest.(check (list int))
              ("config " ^ config.Config.name)
              base (run config))
          [ Config.cto; Config.cto_ltbo; Config.cto_ltbo_pl ~k:4 () ])
  ]

let profile_tests =
  [ Alcotest.test_case "profile round trips through text" `Quick (fun () ->
        let p =
          [ { Calibro_profile.Profile.s_method =
                { Dex_ir.class_name = "a.B"; method_name = "m" };
              s_cycles = 123 };
            { Calibro_profile.Profile.s_method =
                { Dex_ir.class_name = "c.D"; method_name = "n" };
              s_cycles = 456 } ]
        in
        let s = Calibro_profile.Profile.to_string p in
        match Calibro_profile.Profile.of_string s with
        | Ok p2 -> Alcotest.(check bool) "equal" true (p = p2)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "hot_set covers the requested fraction" `Quick
      (fun () ->
        let mk n c =
          { Calibro_profile.Profile.s_method =
              { Dex_ir.class_name = "x"; method_name = n };
            s_cycles = c }
        in
        let p = [ mk "a" 50; mk "b" 30; mk "c" 15; mk "d" 5 ] in
        let hot = Calibro_profile.Profile.hot_set ~coverage:0.8 p in
        Alcotest.(check int) "two methods reach 80%" 2 (List.length hot);
        let all = Calibro_profile.Profile.hot_set ~coverage:1.0 p in
        Alcotest.(check int) "full coverage" 4 (List.length all);
        Alcotest.(check (list string)) "sorted by heat"
          [ "a"; "b" ]
          (List.map (fun (m : Dex_ir.method_ref) -> m.method_name) hot));
    Alcotest.test_case "hot_set ignores zero-cycle methods" `Quick (fun () ->
        let mk n c =
          { Calibro_profile.Profile.s_method =
              { Dex_ir.class_name = "x"; method_name = n };
            s_cycles = c }
        in
        let hot =
          Calibro_profile.Profile.hot_set ~coverage:1.0 [ mk "a" 10; mk "z" 0 ]
        in
        Alcotest.(check int) "only the live one" 1 (List.length hot));
    Alcotest.test_case "merge sums cycles per method" `Quick (fun () ->
        let mk n c =
          { Calibro_profile.Profile.s_method =
              { Dex_ir.class_name = "x"; method_name = n };
            s_cycles = c }
        in
        let merged =
          Calibro_profile.Profile.merge [ mk "a" 10 ] [ mk "a" 5; mk "b" 1 ]
        in
        Alcotest.(check int) "total" 16 (Calibro_profile.Profile.total merged);
        Alcotest.(check int) "methods" 2 (List.length merged));
    Alcotest.test_case "of_string rejects malformed input with Error" `Quick
      (fun () ->
        let expect_error what s =
          match Calibro_profile.Profile.of_string s with
          | Ok _ -> Alcotest.failf "%s: accepted %S" what s
          | Error e ->
            Alcotest.(check bool) (what ^ ": message non-empty") true (e <> "")
        in
        expect_error "too few fields" "a.B m\n";
        expect_error "too many fields" "a.B m 12 extra\n";
        expect_error "non-numeric cycles" "a.B m twelve\n";
        expect_error "garbage line" "!!!\n";
        (* valid-looking lines around a bad one still yield Error *)
        expect_error "bad line amid good" "a.B m 1\nbroken\nc.D n 2\n";
        (* empty and whitespace-only input are vacuously valid *)
        match Calibro_profile.Profile.of_string "\n  \n" with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "whitespace parsed to samples"
        | Error e -> Alcotest.failf "whitespace rejected: %s" e);
    Alcotest.test_case "load returns Error for unreadable paths" `Quick
      (fun () ->
        match Calibro_profile.Profile.load "/nonexistent/calibro.prof" with
        | Ok _ -> Alcotest.fail "loaded a nonexistent file"
        | Error e -> Alcotest.(check bool) "message" true (e <> ""));
    Alcotest.test_case "of_string tolerates stray whitespace" `Quick
      (fun () ->
        (* trailing blanks, repeated separators, indented lines: all the
           shapes a hand-edited or concatenated Figure 6 file takes *)
        match
          Calibro_profile.Profile.of_string "  a.B   m    7   \nc.D n 3\t\n"
        with
        | Error e -> Alcotest.failf "whitespace rejected: %s" e
        | Ok p ->
          Alcotest.(check int) "both lines parsed" 2 (List.length p);
          Alcotest.(check int) "cycles kept" 10
            (Calibro_profile.Profile.total p));
    Alcotest.test_case "of_string sums duplicate method lines" `Quick
      (fun () ->
        (* concatenating two report files duplicates methods; the sum must
           land on the first occurrence, once *)
        match Calibro_profile.Profile.of_string "a.B m 7\nc.D n 3\na.B m 5\n"
        with
        | Error e -> Alcotest.failf "duplicates rejected: %s" e
        | Ok p ->
          Alcotest.(check int) "two methods, not three" 2 (List.length p);
          let cycles_of name =
            List.find_map
              (fun (s : Calibro_profile.Profile.sample) ->
                if s.s_method.Dex_ir.method_name = name then Some s.s_cycles
                else None)
              p
          in
          Alcotest.(check (option int)) "summed" (Some 12) (cycles_of "m");
          Alcotest.(check (option int)) "untouched" (Some 3) (cycles_of "n"));
    Alcotest.test_case "of_string round-trips zero-cycle samples" `Quick
      (fun () ->
        let p =
          [ { Calibro_profile.Profile.s_method =
                { Dex_ir.class_name = "a.B"; method_name = "live" };
              s_cycles = 9 };
            { Calibro_profile.Profile.s_method =
                { Dex_ir.class_name = "a.B"; method_name = "dead" };
              s_cycles = 0 } ]
        in
        match
          Calibro_profile.Profile.of_string
            (Calibro_profile.Profile.to_string p)
        with
        | Ok p2 -> Alcotest.(check bool) "preserved" true (p = p2)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "of_string rejects negative cycles" `Quick (fun () ->
        match Calibro_profile.Profile.of_string "a.B m -3\n" with
        | Ok _ -> Alcotest.fail "accepted a negative cycle count"
        | Error e -> Alcotest.(check bool) "message" true (e <> ""));
    Alcotest.test_case "save returns Error for unwritable paths" `Quick
      (fun () ->
        match
          Calibro_profile.Profile.save
            [ { Calibro_profile.Profile.s_method =
                  { Dex_ir.class_name = "a.B"; method_name = "m" };
                s_cycles = 1 } ]
            "/nonexistent-dir/calibro.prof"
        with
        | Ok () -> Alcotest.fail "saved into a nonexistent directory"
        | Error e -> Alcotest.(check bool) "message" true (e <> ""))
  ]

let report_tests =
  [ Alcotest.test_case "render fills short rows with /" `Quick (fun () ->
        let t =
          { Report.title = "t";
            columns = [ "A"; "B" ];
            (* full rows carry one cell per column plus AVG *)
            rows =
              [ ("full", [ "1"; "2"; "3" ]); ("short", [ "only" ]) ] }
        in
        let out = Report.render t in
        let lines = String.split_on_char '\n' out in
        let row prefix =
          match
            List.find_opt (fun l -> Astring.String.is_prefix ~affix:prefix l)
              lines
          with
          | Some l -> l
          | None -> Alcotest.failf "row %S missing in %s" prefix out
        in
        Alcotest.(check bool) "short row padded with /" true
          (Astring.String.is_infix ~affix:"/" (row "short"));
        Alcotest.(check bool) "full row not padded" false
          (Astring.String.is_infix ~affix:"/" (row "full"));
        Alcotest.(check bool) "AVG column present" true
          (Astring.String.is_infix ~affix:"AVG" out))
  ]

let interval_set_tests =
  let naive_overlaps l s e = List.exists (fun (s', e') -> s < e' && s' < e) l in
  [ Alcotest.test_case "interval set: overlap semantics on half-open ranges"
      `Quick
      (fun () ->
        let t = Interval_set.create () in
        Alcotest.(check bool) "empty set overlaps nothing" false
          (Interval_set.overlaps t 0 100);
        Interval_set.add t 10 20;
        Interval_set.add t 30 40;
        Alcotest.(check int) "two intervals" 2 (Interval_set.length t);
        Alcotest.(check bool) "inside" true (Interval_set.overlaps t 15 16);
        Alcotest.(check bool) "spanning" true (Interval_set.overlaps t 0 100);
        Alcotest.(check bool) "left touch is disjoint (half-open)" false
          (Interval_set.overlaps t 0 10);
        Alcotest.(check bool) "right touch is disjoint (half-open)" false
          (Interval_set.overlaps t 20 30);
        Alcotest.(check bool) "gap" false (Interval_set.overlaps t 25 28);
        Interval_set.add t 20 25;
        Alcotest.(check (list (pair int int))) "sorted intervals"
          [ (10, 20); (20, 25); (30, 40) ]
          (Interval_set.to_list t);
        Alcotest.check_raises "empty interval rejected"
          (Invalid_argument "Interval_set.add: empty interval") (fun () ->
            Interval_set.add t 5 5))
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ QCheck.Test.make ~count:500
          ~name:"interval set agrees with the naive list model"
          QCheck.(small_list (pair small_nat (int_range 1 8)))
          (fun cands ->
            (* Replay the selectors' usage pattern — query, then add only
               if disjoint — against a linear-scan list model. *)
            let t = Interval_set.create () in
            let model = ref [] in
            List.iter
              (fun (s, len) ->
                let e = s + len in
                let expect = naive_overlaps !model s e in
                if Interval_set.overlaps t s e <> expect then
                  QCheck.Test.fail_reportf
                    "overlaps (%d, %d) disagrees with model" s e;
                if not expect then begin
                  Interval_set.add t s e;
                  model := (s, e) :: !model
                end)
              cands;
            Interval_set.to_list t = List.sort compare !model)
      ]

let pipeline_edge_tests =
  [ Alcotest.test_case "reduction_vs is 0 on an empty baseline" `Quick
      (fun () ->
        (* An app with no methods has an empty text segment; the reduction
           ratio must degrade to 0.0, not 0/0 = NaN. *)
        let apk = parse header in
        let b = Pipeline.build ~config:Config.baseline apk in
        Alcotest.(check int) "empty text" 0 (Pipeline.text_size b);
        let r = Pipeline.reduction_vs ~baseline:b b in
        Alcotest.(check (float 0.0)) "zero, not NaN" 0.0 r)
  ]

let suite =
  seq_map_tests @ redundancy_tests @ parallel_tests @ interval_set_tests
  @ pipeline_edge_tests @ workload_vm_tests @ profile_tests @ report_tests
