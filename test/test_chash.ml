(* Property battery for the content hash (Calibro_chash.Chash).

   The fast backend replaces MD5 on every cache key, token digest and
   shard-affinity decision, so this suite pins down exactly the
   properties those call sites lean on: the streaming interface is a
   pure function of the concatenated byte stream (any chunking, any
   slice offsets, any input representation), the output diffuses input
   bits (avalanche), and the function can never change silently (a
   fixed-vector regression table, cross-checked against an independent
   reimplementation of the algorithm). The MD5 backend is additionally
   held byte-compatible with [Stdlib.Digest]. *)

module Chash = Calibro_chash.Chash

(* Deterministic test stream (splitmix64, same constants as the hash —
   irrelevant to the properties, convenient and seedable). *)
let rng seed =
  let state = ref (Int64.of_int seed) in
  fun () ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int next bound = Int64.to_int (Int64.rem (Int64.logand (next ()) Int64.max_int) (Int64.of_int bound))

let rand_string next len =
  String.init len (fun _ -> Char.chr (rand_int next 256))

let bigstring_of_string s : Chash.bigstring =
  let a = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (String.length s) in
  String.iteri (fun i c -> Bigarray.Array1.set a i c) s;
  a

let backends : (string * (module Chash.S)) list =
  [ ("fast", (module Chash.Fast)); ("md5", (module Chash.Md5)) ]

(* Streaming over any chunking = one-shot, for every feed representation. *)
let test_streaming_equals_oneshot () =
  let next = rng 7 in
  List.iter
    (fun (name, (module H : Chash.S)) ->
      for trial = 0 to 199 do
        let len = rand_int next 300 in
        let s = rand_string next len in
        let expect = H.string s in
        (* random chunking over mixed representations *)
        let st = H.init () in
        let pos = ref 0 in
        while !pos < len do
          let n = min (len - !pos) (1 + rand_int next 17) in
          (match rand_int next 4 with
          | 0 -> H.feed_substring st s ~off:!pos ~len:n
          | 1 ->
            H.feed_subbytes st (Bytes.of_string s) ~off:!pos ~len:n
          | 2 ->
            H.feed_bigarray st (bigstring_of_string s) ~off:!pos ~len:n
          | _ -> H.feed_string st (String.sub s !pos n));
          pos := !pos + n
        done;
        Alcotest.(check string)
          (Printf.sprintf "%s trial %d (len %d)" name trial len)
          (Chash.to_hex expect)
          (Chash.to_hex (H.finalize st))
      done)
    backends

(* The hash of a slice depends only on the slice's bytes, not where the
   slice sits in its container. *)
let test_slice_offset_independence () =
  let next = rng 11 in
  List.iter
    (fun (name, (module H : Chash.S)) ->
      for trial = 0 to 99 do
        let pad_l = rand_int next 23 and pad_r = rand_int next 23 in
        let len = rand_int next 120 in
        let core = rand_string next len in
        let padded = rand_string next pad_l ^ core ^ rand_string next pad_r in
        let expect = Chash.to_hex (H.string core) in
        Alcotest.(check string)
          (Printf.sprintf "%s substring trial %d" name trial)
          expect
          (Chash.to_hex (H.substring padded ~off:pad_l ~len));
        Alcotest.(check string)
          (Printf.sprintf "%s subbytes trial %d" name trial)
          expect
          (Chash.to_hex (H.subbytes (Bytes.of_string padded) ~off:pad_l ~len));
        Alcotest.(check string)
          (Printf.sprintf "%s bigarray trial %d" name trial)
          expect
          (Chash.to_hex
             (H.bigarray (bigstring_of_string padded) ~off:pad_l ~len))
      done)
    backends

(* feed_int is exactly 8 little-endian bytes of the int. *)
let test_feed_int_framing () =
  let next = rng 13 in
  List.iter
    (fun (name, (module H : Chash.S)) ->
      for trial = 0 to 49 do
        let v = Int64.to_int (next ()) in
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int v);
        let st = H.init () in
        H.feed_int st v;
        Alcotest.(check string)
          (Printf.sprintf "%s feed_int trial %d" name trial)
          (Chash.to_hex (H.bytes b))
          (Chash.to_hex (H.finalize st))
      done)
    backends

(* Avalanche smoke: over 1k random inputs, flipping one random input bit
   flips >= 40 of the 128 output bits on average (an unbiased mixer sits
   near 64). Also bound the worst case away from degenerate. *)
let popcount_diff a b =
  let n = ref 0 in
  String.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code b.[i] in
      for bit = 0 to 7 do
        if x land (1 lsl bit) <> 0 then incr n
      done)
    a;
  !n

let test_avalanche () =
  let next = rng 17 in
  let trials = 1000 in
  let total = ref 0 and worst = ref 128 in
  for _ = 1 to trials do
    let len = 1 + rand_int next 64 in
    let s = rand_string next len in
    let bit = rand_int next (8 * len) in
    let flipped = Bytes.of_string s in
    Bytes.set flipped (bit / 8)
      (Char.chr (Char.code s.[bit / 8] lxor (1 lsl (bit mod 8))));
    let d =
      popcount_diff (Chash.Fast.string s)
        (Chash.Fast.string (Bytes.to_string flipped))
    in
    total := !total + d;
    if d < !worst then worst := d
  done;
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "mean avalanche %.1f bits >= 40" mean)
    true (mean >= 40.0);
  Alcotest.(check bool)
    (Printf.sprintf "mean avalanche %.1f bits <= 88 (not inverted)" mean)
    true (mean <= 88.0);
  Alcotest.(check bool)
    (Printf.sprintf "worst-case avalanche %d bits >= 20" !worst)
    true (!worst >= 20)

(* No collisions across a corpus of distinct inputs (16-byte output makes
   a real collision here astronomically unlikely; hitting one means the
   hash is broken, e.g. ignoring some input bits). *)
let test_no_collisions () =
  let next = rng 19 in
  let seen = Hashtbl.create 4096 in
  for i = 0 to 9999 do
    let s = Printf.sprintf "%d:%s" i (rand_string next (rand_int next 40)) in
    let h = Chash.Fast.string s in
    (match Hashtbl.find_opt seen h with
    | Some prior ->
      Alcotest.failf "collision between %S and %S" prior s
    | None -> ());
    Hashtbl.replace seen h s
  done

(* The regression table: computed by an independent reimplementation of
   the two-lane splitmix64 construction (not by running this module), so
   any change to constants, tail handling or finalization fails here. *)
let test_fixed_vectors () =
  let vectors =
    [ ("", "9cd2916b6ff330df611dc53356ec9d52");
      ("a", "88bdd561c834bcbfb6c3efe8142067fb");
      ("abc", "b03b123a417eaa6c053017639486efc0");
      ("calibro", "1410fd08f519607d630001c384d1ce40");
      ("01234567", "4254acdcd418c55f7d684417348969fa");
      ("0123456789abcdef", "33089d4bee23197371c52b1aa3beebee");
      ("The quick brown fox jumps over the lazy dog",
       "ef39d9a688d46b53c4bee0eb395e51a9");
      (String.make 1000 'x', "b46dbb8a3ecb24cc286d0d7a763f8f29") ]
  in
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "vector %S"
           (if String.length input > 20 then String.sub input 0 20 ^ "..."
            else input))
        expect
        (Chash.to_hex (Chash.Fast.string input)))
    vectors

(* A zero-padded tail must not collide with explicit trailing zeros. *)
let test_tail_padding_distinct () =
  List.iter
    (fun (s : string) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S vs %S distinct" s (s ^ "\000"))
        false
        (Chash.Fast.string s = Chash.Fast.string (s ^ "\000")))
    [ ""; "a"; "abcdefg"; "abcdefgh"; "abcdefgh\000\000" ]

(* MD5 backend = Stdlib.Digest, bit for bit, hex for hex. *)
let test_md5_parity () =
  let next = rng 23 in
  for trial = 0 to 99 do
    let s = rand_string next (rand_int next 200) in
    Alcotest.(check string)
      (Printf.sprintf "md5 one-shot trial %d" trial)
      (Digest.to_hex (Digest.string s))
      (Chash.to_hex (Chash.Md5.string s));
    let st = Chash.Md5.init () in
    Chash.Md5.feed_string st s;
    Alcotest.(check string)
      (Printf.sprintf "md5 streaming trial %d" trial)
      (Digest.to_hex (Digest.string s))
      (Chash.to_hex (Chash.Md5.finalize st))
  done

let test_to_hex () =
  let next = rng 29 in
  for _ = 0 to 19 do
    let h = Chash.Fast.string (rand_string next 10) in
    Alcotest.(check string) "to_hex matches Digest.to_hex" (Digest.to_hex h)
      (Chash.to_hex h)
  done;
  Alcotest.check_raises "to_hex rejects non-16-byte input"
    (Invalid_argument "Chash.to_hex") (fun () ->
      ignore (Chash.to_hex "short"))

let test_dispatcher_consistent () =
  (* Whatever CALIBRO_HASH says, the dispatcher must agree with the
     backend it names. *)
  let name = Chash.backend_name () in
  let probe = "dispatcher-probe" in
  let expect =
    match Chash.backend () with
    | `Fast -> Chash.Fast.string probe
    | `Md5 -> Chash.Md5.string probe
  in
  Alcotest.(check bool)
    (Printf.sprintf "dispatch (%s) one-shot" name)
    true
    (Chash.string probe = expect);
  let st = Chash.init () in
  Chash.feed_string st probe;
  Alcotest.(check bool)
    (Printf.sprintf "dispatch (%s) streaming" name)
    true
    (Chash.finalize st = expect)

(* finalize is pure: observing the digest mid-stream doesn't perturb the
   stream, and feeding may continue. *)
let test_finalize_pure () =
  List.iter
    (fun (name, (module H : Chash.S)) ->
      let st = H.init () in
      H.feed_string st "part one|";
      let mid1 = H.finalize st in
      let mid2 = H.finalize st in
      Alcotest.(check string)
        (name ^ " finalize twice") (Chash.to_hex mid1) (Chash.to_hex mid2);
      H.feed_string st "part two";
      Alcotest.(check string)
        (name ^ " continue after finalize")
        (Chash.to_hex (H.string "part one|part two"))
        (Chash.to_hex (H.finalize st)))
    backends

let test_slice_bounds_checked () =
  List.iter
    (fun (what, f) ->
      Alcotest.(check bool) (what ^ " rejects bad slice") true
        (match f () with
        | exception Invalid_argument _ -> true
        | (_ : Chash.t) -> false))
    [ ("substring", fun () -> Chash.Fast.substring "abc" ~off:1 ~len:3);
      ("negative off", fun () -> Chash.Fast.substring "abc" ~off:(-1) ~len:1);
      ("negative len", fun () -> Chash.Fast.substring "abc" ~off:0 ~len:(-1));
      ( "subbytes",
        fun () -> Chash.Fast.subbytes (Bytes.create 4) ~off:2 ~len:3 );
      ( "bigarray",
        fun () ->
          Chash.Fast.bigarray
            (Bigarray.Array1.create Bigarray.char Bigarray.c_layout 4)
            ~off:4 ~len:1 ) ]

let suite =
  [ Alcotest.test_case "streaming = one-shot over any chunking" `Quick
      test_streaming_equals_oneshot;
    Alcotest.test_case "slice-offset independence" `Quick
      test_slice_offset_independence;
    Alcotest.test_case "feed_int is 8 LE bytes" `Quick test_feed_int_framing;
    Alcotest.test_case "avalanche >= 40/128 bits over 1k inputs" `Quick
      test_avalanche;
    Alcotest.test_case "no collisions over 10k inputs" `Quick
      test_no_collisions;
    Alcotest.test_case "fixed-vector regression table" `Quick
      test_fixed_vectors;
    Alcotest.test_case "zero tail padding cannot alias" `Quick
      test_tail_padding_distinct;
    Alcotest.test_case "md5 backend = Stdlib.Digest" `Quick test_md5_parity;
    Alcotest.test_case "to_hex" `Quick test_to_hex;
    Alcotest.test_case "CALIBRO_HASH dispatcher consistency" `Quick
      test_dispatcher_consistent;
    Alcotest.test_case "finalize is pure and resumable" `Quick
      test_finalize_pure;
    Alcotest.test_case "slice bounds are checked" `Quick
      test_slice_bounds_checked ]
