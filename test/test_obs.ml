(* lib/obs: spans, sharded metrics, JSON emit/parse, trace export.

   Every test resets the global registry first; Alcotest runs cases
   sequentially in one process, so resets cannot race other suites. *)

module Obs = Calibro_obs.Obs
module Json = Calibro_obs.Json
module Clock = Calibro_obs.Clock

let find_event name =
  List.find_opt (fun (e : Obs.span_event) -> e.Obs.ev_name = name)

let end_ns (e : Obs.span_event) = Int64.add e.Obs.ev_start_ns e.Obs.ev_dur_ns

(* ---- Clock --------------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld -> %Ld" !prev t;
    prev := t
  done

(* ---- Span nesting and ordering ------------------------------------------- *)

let test_span_nesting () =
  Obs.reset ();
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner1" (fun () -> ignore (Sys.opaque_identity (ref 1)));
        Obs.span "inner2" (fun () -> ());
        17)
  in
  Alcotest.(check int) "span returns the body's value" 17 r;
  let evs = Obs.events () in
  Alcotest.(check int) "three spans recorded" 3 (List.length evs);
  let outer = Option.get (find_event "outer" evs) in
  let i1 = Option.get (find_event "inner1" evs) in
  let i2 = Option.get (find_event "inner2" evs) in
  Alcotest.(check int) "outer depth" 0 outer.Obs.ev_depth;
  Alcotest.(check int) "inner1 depth" 1 i1.Obs.ev_depth;
  Alcotest.(check int) "inner2 depth" 1 i2.Obs.ev_depth;
  Alcotest.(check bool) "inner1 starts after outer" true
    (i1.Obs.ev_start_ns >= outer.Obs.ev_start_ns);
  Alcotest.(check bool) "inner1 ends before outer ends" true
    (end_ns i1 <= end_ns outer);
  Alcotest.(check bool) "inner2 nested in outer" true
    (i2.Obs.ev_start_ns >= outer.Obs.ev_start_ns
     && end_ns i2 <= end_ns outer);
  Alcotest.(check bool) "inner1 precedes inner2" true
    (end_ns i1 <= i2.Obs.ev_start_ns);
  (* events () is sorted by start time *)
  Alcotest.(check (list string)) "start order" [ "outer"; "inner1"; "inner2" ]
    (List.map (fun (e : Obs.span_event) -> e.Obs.ev_name) evs)

let test_span_records_on_raise () =
  Obs.reset ();
  (try
     Obs.span "raiser" (fun () ->
         Obs.span "deep" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let evs = Obs.events () in
  Alcotest.(check int) "both spans recorded" 2 (List.length evs);
  (* depth tracking must have unwound: a fresh span is top-level again *)
  Obs.span "after" (fun () -> ());
  let after = Option.get (find_event "after" (Obs.events ())) in
  Alcotest.(check int) "depth unwound after exception" 0 after.Obs.ev_depth

(* ---- Counter aggregation across domains ----------------------------------- *)

let test_counter_across_domains () =
  Obs.reset ();
  let name = "obs.test.counter" in
  let domains =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Obs.Counter.incr name
            done))
  in
  List.iter Domain.join domains;
  Obs.Counter.add name 5;
  Alcotest.(check int) "summed over 2 worker shards + main" 2005
    (Obs.Counter.value name)

let test_span_tids_per_domain () =
  Obs.reset ();
  Obs.span "main-span" (fun () -> ());
  let d =
    Domain.spawn (fun () -> Obs.span "worker-span" (fun () -> ()))
  in
  Domain.join d;
  let evs = Obs.events () in
  let tid name = (Option.get (find_event name evs)).Obs.ev_tid in
  Alcotest.(check bool) "worker span carries its own domain id" true
    (tid "main-span" <> tid "worker-span")

(* ---- Histogram percentiles ------------------------------------------------ *)

let test_histogram_percentiles () =
  Obs.reset ();
  let name = "obs.test.hist" in
  (* split observations across two shards to exercise the merge *)
  let d =
    Domain.spawn (fun () ->
        for i = 51 to 100 do
          Obs.Histogram.observe name (float_of_int i)
        done)
  in
  for i = 1 to 50 do
    Obs.Histogram.observe name (float_of_int i)
  done;
  Domain.join d;
  match Obs.Histogram.summary name with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Obs.Histogram.count;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Obs.Histogram.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Obs.Histogram.max;
    Alcotest.(check (float 1e-9)) "mean" 50.5 s.Obs.Histogram.mean;
    let within lo hi v = v >= lo && v <= hi in
    Alcotest.(check bool) "p50" true (within 50.0 51.0 s.Obs.Histogram.p50);
    Alcotest.(check bool) "p90" true (within 90.0 91.0 s.Obs.Histogram.p90);
    Alcotest.(check bool) "p99" true (within 99.0 100.0 s.Obs.Histogram.p99)

(* ---- JSON ------------------------------------------------------------------ *)

let test_json_roundtrip_values () =
  let doc =
    Json.Obj
      [ ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("s", Json.Str "plain");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("o", Json.Obj [ ("nested", Json.Str "yes") ]) ]
  in
  (match Json.parse (Json.to_string doc) with
   | Error e -> Alcotest.failf "compact reparse: %s" e
   | Ok doc' -> Alcotest.(check bool) "compact round-trips" true (doc = doc'));
  match Json.parse (Json.to_string ~pretty:true doc) with
  | Error e -> Alcotest.failf "pretty reparse: %s" e
  | Ok doc' -> Alcotest.(check bool) "pretty round-trips" true (doc = doc')

let test_json_rejects_garbage () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_escaping_arbitrary_span_names () =
  Obs.reset ();
  let nasty = "we\"ird\\name\nwith\ttabs \x01 and caf\xc3\xa9" in
  Obs.span nasty ~args:(fun () -> [ ("k\"ey", Json.Str "v\\al") ]) (fun () -> ());
  let trace = Json.to_string (Obs.trace_json ()) in
  match Json.parse trace with
  | Error e -> Alcotest.failf "trace with nasty names does not parse: %s" e
  | Ok doc ->
    let events =
      Option.get (Option.bind (Json.member "traceEvents" doc) Json.get_list)
    in
    let names =
      List.filter_map
        (fun e -> Option.bind (Json.member "name" e) Json.get_str)
        events
    in
    Alcotest.(check bool) "escaped name survives the round-trip" true
      (List.mem nasty names)

(* ---- Chrome trace round-trip over the real pipeline ------------------------ *)

let test_trace_roundtrip_pipeline () =
  Obs.reset ();
  let apk =
    (Calibro_workload.Appgen.generate Calibro_workload.Apps.demo)
      .Calibro_workload.Appgen.app
  in
  (* ~cache:None: the asserted spans are the *cold* build's trace shape —
     under CALIBRO_CACHE_DIR a detection-cache hit would skip tree_build *)
  ignore
    (Calibro_core.Pipeline.build ~cache:None
       ~config:(Calibro_core.Config.cto_ltbo_pl ~k:2 ()) apk);
  let trace = Json.to_string ~pretty:true (Obs.trace_json ()) in
  match Json.parse trace with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok doc ->
    let events =
      Option.get (Option.bind (Json.member "traceEvents" doc) Json.get_list)
    in
    Alcotest.(check bool) "trace has events" true (events <> []);
    List.iter
      (fun e ->
        List.iter
          (fun field ->
            if Json.member field e = None then
              Alcotest.failf "event missing %s" field)
          [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ])
      events;
    let names =
      List.filter_map
        (fun e -> Option.bind (Json.member "name" e) Json.get_str)
        events
    in
    (* nested spans from all three layers of the build *)
    List.iter
      (fun expected ->
        Alcotest.(check bool) (expected ^ " span present") true
          (List.mem expected names))
      [ "pipeline.build"; "pipeline.ltbo"; "ltbo.detect"; "ltbo.tree_build";
        "plopti.detect_parallel"; "link.run"; "link.relocate" ];
    (* the phase spans nest under pipeline.build *)
    let evs = Obs.events () in
    let build = Option.get (find_event "pipeline.build" evs) in
    let ltbo = Option.get (find_event "pipeline.ltbo" evs) in
    Alcotest.(check bool) "ltbo nests inside build" true
      (ltbo.Obs.ev_start_ns >= build.Obs.ev_start_ns
       && end_ns ltbo <= end_ns build
       && ltbo.Obs.ev_depth > build.Obs.ev_depth)

(* ---- Metrics snapshot ------------------------------------------------------- *)

let test_metrics_json () =
  Obs.reset ();
  Obs.Counter.add "obs.test.c" 3;
  Obs.Gauge.set "obs.test.g" 1.5;
  Obs.Histogram.observe "obs.test.h" 2.0;
  Obs.span "obs.test.span" (fun () -> ());
  let doc = Obs.metrics_json ~extra:[ ("extra", Json.Bool true) ] () in
  (match Json.parse (Json.to_string ~pretty:true doc) with
   | Error e -> Alcotest.failf "metrics does not reparse: %s" e
   | Ok _ -> ());
  let counter =
    Option.bind (Json.member "counters" doc) (Json.member "obs.test.c")
  in
  Alcotest.(check bool) "counter exported" true (counter = Some (Json.Int 3));
  let gauge =
    Option.bind (Json.member "gauges" doc) (Json.member "obs.test.g")
  in
  Alcotest.(check bool) "gauge exported" true (gauge = Some (Json.Float 1.5));
  let hist_count =
    Option.bind (Json.member "histograms" doc) (Json.member "obs.test.h")
    |> fun h -> Option.bind h (Json.member "count")
  in
  Alcotest.(check bool) "histogram exported" true
    (hist_count = Some (Json.Int 1));
  let span_count =
    Option.bind (Json.member "spans" doc) (Json.member "obs.test.span")
    |> fun s -> Option.bind s (Json.member "count")
  in
  Alcotest.(check bool) "span aggregate exported" true
    (span_count = Some (Json.Int 1));
  Alcotest.(check bool) "extra section appended" true
    (Json.member "extra" doc = Some (Json.Bool true))

let test_pipeline_timings_match_spans () =
  Obs.reset ();
  let apk =
    (Calibro_workload.Appgen.generate Calibro_workload.Apps.demo)
      .Calibro_workload.Appgen.app
  in
  let b =
    Calibro_core.Pipeline.build ~config:Calibro_core.Config.cto_ltbo apk
  in
  (* b_timings stays the derived per-phase view: one span per phase with a
     matching name and a near-identical duration *)
  let evs = Obs.events () in
  List.iter
    (fun (phase, seconds) ->
      match find_event ("pipeline." ^ phase) evs with
      | None -> Alcotest.failf "no span for phase %s" phase
      | Some e ->
        let span_s = Int64.to_float e.Obs.ev_dur_ns /. 1e9 in
        if Float.abs (span_s -. seconds) > 0.05 then
          Alcotest.failf "phase %s: span %.4fs vs timing %.4fs" phase span_s
            seconds)
    b.Calibro_core.Pipeline.b_timings;
  Alcotest.(check bool) "timings non-negative (monotonic clock)" true
    (List.for_all (fun (_, s) -> s >= 0.0) b.Calibro_core.Pipeline.b_timings)

let suite =
  [ Alcotest.test_case "monotonic clock never goes backwards" `Quick
      test_clock_monotonic;
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span records on raise and unwinds depth" `Quick
      test_span_records_on_raise;
    Alcotest.test_case "counters aggregate across 2 worker domains" `Quick
      test_counter_across_domains;
    Alcotest.test_case "spans carry per-domain tids" `Quick
      test_span_tids_per_domain;
    Alcotest.test_case "histogram percentiles over merged shards" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "json round-trips values" `Quick
      test_json_roundtrip_values;
    Alcotest.test_case "json rejects malformed input" `Quick
      test_json_rejects_garbage;
    Alcotest.test_case "arbitrary span names are escaped" `Quick
      test_json_escaping_arbitrary_span_names;
    Alcotest.test_case "chrome trace of a real build parses, nested" `Quick
      test_trace_roundtrip_pipeline;
    Alcotest.test_case "metrics snapshot exports every family" `Quick
      test_metrics_json;
    Alcotest.test_case "b_timings is a view of the phase spans" `Quick
      test_pipeline_timings_match_spans ]
