let () =
  Alcotest.run "calibro"
    [ ("aarch64", Test_aarch64.suite);
      ("suffix_tree", Test_suffix_tree.suite);
      ("dex", Test_dex.suite);
      ("hgraph", Test_hgraph.suite);
      ("vm", Test_vm.suite);
      ("ltbo", Test_ltbo.suite);
      ("core", Test_core.suite);
      ("oat", Test_oat.suite);
      ("workload", Test_workload.suite);
      ("edge", Test_edge.suite);
      ("check", Test_check.suite);
      ("obs", Test_obs.suite) ]
