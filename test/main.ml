let () =
  (* CI snapshots the observability counters the suite accumulated (cache
     hit/miss/corrupt accounting, fault-injection counts) as an artifact. *)
  (match Sys.getenv_opt "CALIBRO_METRICS_OUT" with
   | Some f when String.trim f <> "" ->
     at_exit (fun () ->
         Calibro_obs.Obs.write_file f (Calibro_obs.Obs.metrics_json ()))
   | _ -> ());
  Alcotest.run "calibro"
    [ ("aarch64", Test_aarch64.suite);
      ("suffix_tree", Test_suffix_tree.suite);
      ("dex", Test_dex.suite);
      ("hgraph", Test_hgraph.suite);
      ("vm", Test_vm.suite);
      ("ltbo", Test_ltbo.suite);
      ("core", Test_core.suite);
      ("oat", Test_oat.suite);
      ("workload", Test_workload.suite);
      ("edge", Test_edge.suite);
      ("check", Test_check.suite);
      ("obs", Test_obs.suite);
      ("cache", Test_cache.suite);
      ("dict", Test_dict.suite);
      ("chash", Test_chash.suite);
      ("shelve", Test_shelve.suite);
      ("server", Test_server.suite);
      ("pgo", Test_pgo.suite) ]
