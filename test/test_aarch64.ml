(* Tests for the A64 subset: encodings, decoder inverse, patching,
   disassembly. Encodings are checked against ground-truth words produced by
   a reference assembler (GNU as) for representative instructions. *)

open Calibro_aarch64
open Isa

let check_word name expected instr =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check int) name expected (Encode.encode instr))

(* Ground-truth encodings (verified against GNU binutils output). *)
let golden_encodings =
  [ check_word "nop" 0xD503201F Nop;
    check_word "ret" 0xD65F03C0 Ret;
    check_word "blr x30" 0xD63F03C0 (Blr lr);
    check_word "br x30" 0xD61F03C0 (Br lr);
    check_word "br x16" 0xD61F0200 (Br x16);
    check_word "add x0, x1, #4"
      0x91001020
      (Add_sub_imm { op = ADD; size = X; set_flags = false;
                     rd = 0; rn = 1; imm12 = 4; shift12 = false });
    check_word "sub sp, sp, #32"
      0xD10083FF
      (Add_sub_imm { op = SUB; size = X; set_flags = false;
                     rd = sp; rn = sp; imm12 = 32; shift12 = false });
    (* The stack-overflow-check pattern of Figure 4c. *)
    check_word "sub x16, sp, #0x2000"
      0xD1400BF0
      (List.nth stack_check_pattern 0);
    check_word "ldr wzr, [x16]" 0xB940021F (List.nth stack_check_pattern 1);
    (* The Java-call pattern of Figure 4a with entry offset 16. *)
    check_word "ldr x30, [x0, #16]"
      0xF940081E
      (List.nth (java_call_pattern ~entry_offset:16) 0);
    check_word "blr x30 (java call)"
      0xD63F03C0
      (List.nth (java_call_pattern ~entry_offset:16) 1);
    check_word "cmp w2, w1" 0x6B01005F (cmp_reg ~size:W 2 1);
    check_word "mov x3, x4" 0xAA0403E3 (mov_reg ~size:X 3 4);
    check_word "movz x5, #0x2a" 0xD2800545
      (Mov_wide { kind = MOVZ; size = X; rd = 5; imm16 = 0x2a; hw = 0 });
    check_word "movk x5, #0x1, lsl #16" 0xF2A00025
      (Mov_wide { kind = MOVK; size = X; rd = 5; imm16 = 1; hw = 1 });
    check_word "b #+8" 0x14000002 (B { disp = 8 });
    check_word "b #-4" 0x17FFFFFF (B { disp = -4 });
    check_word "bl #+0x100" 0x94000040 (Bl { target = Rel 0x100 });
    check_word "bl unresolved" 0x94000000 (Bl { target = Sym 7 });
    check_word "b.eq #+12" 0x54000060 (B_cond { cond = EQ; disp = 12 });
    check_word "cbz w0, #+0xc" 0x34000060 (Cbz { size = W; rt = 0; disp = 0xc });
    check_word "cbnz x3, #-8" 0xB5FFFFC3 (Cbnz { size = X; rt = 3; disp = -8 });
    check_word "tbz x1, #3, #+16" 0x36180081 (Tbz { rt = 1; bit = 3; disp = 16 });
    check_word "tbnz x1, #33, #+16" 0xB7080081
      (Tbnz { rt = 1; bit = 33; disp = 16 });
    check_word "ldr x2, [x0]" 0xF9400002 (Ldr { size = X; rt = 2; rn = 0; imm = 0 });
    check_word "ldr w2, [x0]" 0xB9400002 (Ldr { size = W; rt = 2; rn = 0; imm = 0 });
    check_word "str x2, [sp, #16]" 0xF9000BE2
      (Str { size = X; rt = 2; rn = sp; imm = 16 });
    check_word "stp x29, x30, [sp, #-16]!" 0xA9BF7BFD
      (Stp { size = X; rt = 29; rt2 = 30; rn = sp; imm = -16; mode = Pre });
    check_word "ldp x29, x30, [sp], #16" 0xA8C17BFD
      (Ldp { size = X; rt = 29; rt2 = 30; rn = sp; imm = 16; mode = Post });
    check_word "ldr x1, #+0x20 (literal)" 0x58000101
      (Ldr_lit { size = X; rt = 1; disp = 0x20 });
    check_word "adr x0, #+0x18" 0x100000C0 (Adr { rd = 0; disp = 0x18 });
    check_word "adrp x0, #+0x1000" 0xB0000000 (Adrp { rd = 0; disp = 0x1000 });
    check_word "mul x0, x1, x2" 0x9B027C20 (Mul { size = X; rd = 0; rn = 1; rm = 2 });
    check_word "sdiv x0, x1, x2" 0x9AC20C20
      (Sdiv { size = X; rd = 0; rn = 1; rm = 2 });
    check_word "msub x0, x1, x2, x3" 0x9B028C20
      (Msub { size = X; rd = 0; rn = 1; rm = 2; ra = 3 });
    check_word "and w1, w2, w3" 0x0A030041
      (Logic_reg { op = AND; size = W; rd = 1; rn = 2; rm = 3 });
    check_word "brk #0" 0xD4200000 (Brk 0)
  ]

(* ---- Round-trip: decode (encode i) = i ------------------------------ *)

(* QCheck generator of arbitrary subset instructions with valid fields. *)
let gen_instr =
  let open QCheck.Gen in
  let reg = int_range 0 30 in
  let any_reg = int_range 0 31 in
  let size = oneofl [ W; X ] in
  let disp19 = map (fun v -> v * 4) (int_range (-1000) 1000) in
  let disp14 = map (fun v -> v * 4) (int_range (-500) 500) in
  let disp26 = map (fun v -> v * 4) (int_range (-100000) 100000) in
  let cond =
    oneofl [ EQ; NE; HS; LO; MI; PL; VS; VC; HI; LS; GE; LT; GT; LE ]
  in
  oneof
    [ return Nop; return Ret;
      map (fun r -> Blr r) reg;
      map (fun r -> Br r) reg;
      map (fun i -> Brk i) (int_range 0 0xffff);
      (let* op = oneofl [ ADD; SUB ] in
       let* size = size in
       let* set_flags = bool in
       let* rd = any_reg and* rn = any_reg in
       let* imm12 = int_range 0 0xfff in
       let* shift12 = bool in
       return (Add_sub_imm { op; size; set_flags; rd; rn; imm12; shift12 }));
      (let* op = oneofl [ ADD; SUB ] in
       let* size = size in
       let* set_flags = bool in
       let* rd = any_reg and* rn = any_reg and* rm = any_reg in
       return (Add_sub_reg { op; size; set_flags; rd; rn; rm }));
      (let* op = oneofl [ AND; ORR; EOR; ANDS ] in
       let* size = size in
       let* rd = any_reg and* rn = any_reg and* rm = any_reg in
       return (Logic_reg { op; size; rd; rn; rm }));
      (let* kind = oneofl [ MOVZ; MOVN; MOVK ] in
       let* size = size in
       let* rd = any_reg in
       let* imm16 = int_range 0 0xffff in
       let* hw = int_range 0 (match size with W -> 1 | X -> 3) in
       return (Mov_wide { kind; size; rd; imm16; hw }));
      (let* size = size in
       let* rd = any_reg and* rn = any_reg and* rm = any_reg in
       return (Mul { size; rd; rn; rm }));
      (let* size = size in
       let* rd = any_reg and* rn = any_reg and* rm = any_reg in
       return (Sdiv { size; rd; rn; rm }));
      (let* size = size in
       let* rd = any_reg and* rn = any_reg and* rm = any_reg in
       let* ra = int_range 0 30 in
       return (Msub { size; rd; rn; rm; ra }));
      (let* size = size in
       let scale = match size with W -> 4 | X -> 8 in
       let* rt = any_reg and* rn = any_reg in
       let* units = int_range 0 0xfff in
       return (Ldr { size; rt; rn; imm = units * scale }));
      (let* size = size in
       let scale = match size with W -> 4 | X -> 8 in
       let* rt = any_reg and* rn = any_reg in
       let* units = int_range 0 0xfff in
       return (Str { size; rt; rn; imm = units * scale }));
      (let* size = size in
       let scale = match size with W -> 4 | X -> 8 in
       let* rt = any_reg and* rt2 = any_reg and* rn = any_reg in
       let* units = int_range (-64) 63 in
       let* mode = oneofl [ Offset; Pre; Post ] in
       return (Ldp { size; rt; rt2; rn; imm = units * scale; mode }));
      (let* size = size in
       let scale = match size with W -> 4 | X -> 8 in
       let* rt = any_reg and* rt2 = any_reg and* rn = any_reg in
       let* units = int_range (-64) 63 in
       let* mode = oneofl [ Offset; Pre; Post ] in
       return (Stp { size; rt; rt2; rn; imm = units * scale; mode }));
      (let* size = size in
       let* rt = any_reg and* disp = disp19 in
       return (Ldr_lit { size; rt; disp }));
      (let* rd = any_reg in
       let* disp = int_range (-(1 lsl 20)) ((1 lsl 20) - 1) in
       return (Adr { rd; disp }));
      (let* rd = any_reg in
       let* pages = int_range (-100000) 100000 in
       return (Adrp { rd; disp = pages * 4096 }));
      map (fun disp -> B { disp }) disp26;
      map (fun disp -> Bl { target = Rel disp }) disp26;
      (let* cond = cond and* disp = disp19 in
       return (B_cond { cond; disp }));
      (let* size = size and* rt = any_reg and* disp = disp19 in
       return (Cbz { size; rt; disp }));
      (let* size = size and* rt = any_reg and* disp = disp19 in
       return (Cbnz { size; rt; disp }));
      (let* rt = any_reg and* bit = int_range 0 63 and* disp = disp14 in
       return (Tbz { rt; bit; disp }));
      (let* rt = any_reg and* bit = int_range 0 63 and* disp = disp14 in
       return (Tbnz { rt; bit; disp }))
    ]

let arb_instr =
  QCheck.make gen_instr ~print:(fun i -> Disasm.to_string i)

let roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:2000 arb_instr
    (fun i -> Decode.decode (Encode.encode i) = i)

let word_roundtrip =
  (* Any 32-bit word that decodes to a real instruction re-encodes to the
     same word: the decoder never loses information on its subset. *)
  QCheck.Test.make ~name:"encode (decode w) = w for decodable w" ~count:5000
    QCheck.(
      make
        ~print:(fun w -> Printf.sprintf "%#x" w)
        Gen.(map (fun x -> x land 0xFFFFFFFF) (int_bound max_int)))
    (fun w ->
      match Decode.decode w with
      | Data _ -> true
      | i -> Encode.encode i = w || (match i with Bl _ -> true | _ -> false))

let patch_props =
  (* 8192 is valid for every PC-relative form: page-aligned for adrp, word
     aligned for branches/literals, within even tbz's +-32KiB range. *)
  QCheck.Test.make ~name:"patch_word updates displacement" ~count:1000
    arb_instr (fun i ->
      match Isa.pc_rel_disp i with
      | None -> true
      | Some _ ->
        let w = Encode.encode i in
        let w' = Patch.patch_word w ~disp:8192 in
        (match Isa.pc_rel_disp (Decode.decode w') with
         | Some 8192 -> true
         | _ -> false))

(* ---- Template-table round-trip ---------------------------------------- *)

(* One deterministic representative per ISA template, plus both extreme
   displacements of every PC-relative form (bits x scale from encode.ml:
   26-bit for b/bl, 19-bit for b.cond/cbz/cbnz/ldr literal, 14-bit for
   tbz/tbnz, the raw 21-bit byte immediate for adr and page-scaled 21-bit
   for adrp). The QCheck round-trip above samples the interior; this table
   pins the corners, where sign extension and field scaling break first. *)
let template_table =
  let b_max = ((1 lsl 25) - 1) * 4 and b_min = -(1 lsl 25) * 4 in
  let c_max = ((1 lsl 18) - 1) * 4 and c_min = -(1 lsl 18) * 4 in
  let t_max = ((1 lsl 13) - 1) * 4 and t_min = -(1 lsl 13) * 4 in
  let adr_max = (1 lsl 20) - 1 and adr_min = -(1 lsl 20) in
  let adrp_max = ((1 lsl 20) - 1) * 4096 and adrp_min = -(1 lsl 20) * 4096 in
  [ Nop; Ret; Brk 0xffff; Blr x16; Br lr;
    Add_sub_imm { op = ADD; size = X; set_flags = false; rd = 0; rn = 1;
                  imm12 = 0xfff; shift12 = true };
    Add_sub_reg { op = SUB; size = W; set_flags = true; rd = 2; rn = 3; rm = 4 };
    Logic_reg { op = EOR; size = X; rd = 5; rn = 6; rm = 7 };
    Mov_wide { kind = MOVN; size = X; rd = 8; imm16 = 0xffff; hw = 3 };
    Mul { size = W; rd = 9; rn = 10; rm = 11 };
    Sdiv { size = X; rd = 12; rn = 13; rm = 14 };
    Msub { size = X; rd = 15; rn = 16; rm = 17; ra = 18 };
    Ldr { size = X; rt = 19; rn = 20; imm = 0xfff * 8 };
    Str { size = W; rt = 21; rn = 22; imm = 0xfff * 4 };
    Ldp { size = X; rt = 23; rt2 = 24; rn = sp; imm = -512; mode = Pre };
    Stp { size = X; rt = 25; rt2 = 26; rn = sp; imm = 504; mode = Post };
    (* PC-relative forms at both extremes and zero *)
    B { disp = b_max }; B { disp = b_min }; B { disp = 0 };
    Bl { target = Rel b_max }; Bl { target = Rel b_min };
    B_cond { cond = LE; disp = c_max }; B_cond { cond = EQ; disp = c_min };
    Cbz { size = X; rt = 27; disp = c_max };
    Cbnz { size = W; rt = 28; disp = c_min };
    Tbz { rt = 29; bit = 63; disp = t_max };
    Tbnz { rt = 30; bit = 0; disp = t_min };
    Ldr_lit { size = X; rt = 0; disp = c_max };
    Ldr_lit { size = W; rt = 1; disp = c_min };
    Adr { rd = 2; disp = adr_max }; Adr { rd = 3; disp = adr_min };
    Adr { rd = 4; disp = 1 } (* adr takes unscaled byte offsets *);
    Adrp { rd = 5; disp = adrp_max }; Adrp { rd = 6; disp = adrp_min } ]

let template_roundtrip_tests =
  [ Alcotest.test_case "template table: decode (encode i) = i" `Quick
      (fun () ->
        List.iter
          (fun i ->
            let w = Encode.encode i in
            let i' = Decode.decode w in
            if i' <> i then
              Alcotest.failf "%s (%#x) decoded to %s" (Disasm.to_string i) w
                (Disasm.to_string i'))
          template_table);
    Alcotest.test_case "displacements beyond the field are rejected" `Quick
      (fun () ->
        let rejects i =
          match Encode.encode i with
          | exception Encode.Error _ -> ()
          | w ->
            Alcotest.failf "%s encoded to %#x past its range"
              (Disasm.to_string i) w
        in
        rejects (B { disp = (1 lsl 25) * 4 });
        rejects (B { disp = (-(1 lsl 25) * 4) - 4 });
        rejects (B { disp = 2 }) (* not word-aligned *);
        rejects (B_cond { cond = EQ; disp = (1 lsl 18) * 4 });
        rejects (Cbz { size = X; rt = 0; disp = (-(1 lsl 18) * 4) - 4 });
        rejects (Tbz { rt = 0; bit = 0; disp = (1 lsl 13) * 4 });
        rejects (Adr { rd = 0; disp = 1 lsl 20 });
        rejects (Adrp { rd = 0; disp = 4096 + 1 } (* not page-aligned *)))
  ]

let unit_tests =
  [ Alcotest.test_case "data word roundtrips" `Quick (fun () ->
        let w = 0xDEADBEEF in
        match Decode.decode w with
        | Data v -> Alcotest.(check int32) "raw" 0xDEADBEEFl v
        | i -> Alcotest.failf "decoded junk as %s" (Disasm.to_string i));
    Alcotest.test_case "unresolved bl decodes to rel 0" `Quick (fun () ->
        match Decode.decode (Encode.encode (Bl { target = Sym 3 })) with
        | Bl { target = Rel 0 } -> ()
        | i -> Alcotest.failf "got %s" (Disasm.to_string i));
    Alcotest.test_case "patch rejects non-pc-relative" `Quick (fun () ->
        Alcotest.check_raises "not pc-rel"
          (Patch.Not_pc_relative 0xD503201F)
          (fun () -> ignore (Patch.patch_word 0xD503201F ~disp:8)));
    Alcotest.test_case "patch rejects out-of-range" `Quick (fun () ->
        let w = Encode.encode (B_cond { cond = NE; disp = 0 }) in
        match Patch.patch_word w ~disp:(1 lsl 22) with
        | exception Encode.Error _ -> ()
        | _ -> Alcotest.fail "expected range error");
    Alcotest.test_case "relocate_bl binds call target" `Quick (fun () ->
        let buf = Encode.to_bytes [ Bl { target = Sym 0 }; Ret ] in
        Patch.relocate_bl buf ~off:0 ~target:0x40;
        match Decode.decode (Encode.word_of_bytes buf 0) with
        | Bl { target = Rel 0x40 } -> ()
        | i -> Alcotest.failf "got %s" (Disasm.to_string i));
    Alcotest.test_case "terminators classified" `Quick (fun () ->
        Alcotest.(check bool) "b" true (is_terminator (B { disp = 0 }));
        Alcotest.(check bool) "ret" true (is_terminator Ret);
        Alcotest.(check bool) "br" true (is_terminator (Br 0));
        Alcotest.(check bool) "bl not terminator" false
          (is_terminator (Bl { target = Sym 0 }));
        Alcotest.(check bool) "bl is call" true (is_call (Bl { target = Sym 0 }));
        Alcotest.(check bool) "add" false (is_terminator (add ~size:X 0 1 2)));
    Alcotest.test_case "pc-relative classified per paper list" `Quick
      (fun () ->
        let yes =
          [ B { disp = 0 }; B_cond { cond = EQ; disp = 0 };
            Cbz { size = W; rt = 0; disp = 0 };
            Cbnz { size = X; rt = 0; disp = 0 };
            Tbz { rt = 0; bit = 0; disp = 0 };
            Tbnz { rt = 0; bit = 0; disp = 0 };
            Adr { rd = 0; disp = 0 }; Adrp { rd = 0; disp = 0 };
            Ldr_lit { size = X; rt = 0; disp = 0 };
            Bl { target = Rel 0 } ]
        in
        List.iter
          (fun i ->
            Alcotest.(check bool) (Disasm.to_string i) true (is_pc_relative i))
          yes;
        Alcotest.(check bool) "unresolved bl not patchable" false
          (is_pc_relative (Bl { target = Sym 0 }));
        Alcotest.(check bool) "ldr imm not pc-rel" false
          (is_pc_relative (Ldr { size = X; rt = 0; rn = 1; imm = 0 })));
    Alcotest.test_case "lr read/write classification" `Quick (fun () ->
        Alcotest.(check bool) "bl writes lr" true
          (writes_lr (Bl { target = Sym 0 }));
        Alcotest.(check bool) "blr writes lr" true (writes_lr (Blr 3));
        Alcotest.(check bool) "ret reads lr" true (reads_lr Ret);
        Alcotest.(check bool) "br x30 reads lr" true (reads_lr (Br lr));
        Alcotest.(check bool) "ldr x30 writes lr" true
          (writes_lr (Ldr { size = X; rt = lr; rn = 0; imm = 16 }));
        Alcotest.(check bool) "add does not touch lr" false
          (writes_lr (add ~size:X 0 1 2) || reads_lr (add ~size:X 0 1 2)));
    Alcotest.test_case "disasm matches paper table 2 style" `Quick (fun () ->
        let s =
          Disasm.to_string ~addr:0x138320 (Cbz { size = W; rt = 0; disp = 0xc })
        in
        Alcotest.(check string) "cbz" "cbz w0, #+0xc (addr 0x13832c)" s);
    Alcotest.test_case "invert_cond is involutive" `Quick (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check bool) "inv inv" true (invert_cond (invert_cond c) = c))
          [ EQ; NE; HS; LO; MI; PL; VS; VC; HI; LS; GE; LT; GT; LE ]);
    Alcotest.test_case "to_bytes/of_bytes roundtrip" `Quick (fun () ->
        let prog =
          [ mov_imm ~size:X 0 42; add ~size:X 0 0 1; Ret ]
        in
        let buf = Encode.to_bytes prog in
        let back = Decode.of_bytes buf |> Array.to_list in
        Alcotest.(check int) "len" 3 (List.length back);
        List.iter2
          (fun a b ->
            Alcotest.(check string) "instr" (Disasm.to_string a)
              (Disasm.to_string b))
          prog back)
  ]

let suite =
  golden_encodings @ template_roundtrip_tests @ unit_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ roundtrip; word_roundtrip; patch_props ]
