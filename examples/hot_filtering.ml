(* The Figure 6 workflow: build, profile with the simpleperf substitute,
   persist the profile, and rebuild with hot-function filtering; then
   compare runtime degradation and code size with and without it.

   Run with: dune exec examples/hot_filtering.exe *)

open Calibro_core
open Calibro_workload
module Profile = Calibro_profile.Profile

let run_script oat (script : Appgen.script) =
  let t = Calibro_vm.Interp.load oat in
  List.iter
    (fun (st : Appgen.script_step) ->
      for _ = 1 to st.Appgen.sc_repeat do
        match Calibro_vm.Interp.call t st.Appgen.sc_method st.Appgen.sc_args with
        | Calibro_vm.Interp.Fault m -> failwith m
        | _ -> ()
      done)
    script;
  t

let () =
  let a = Appgen.generate Apps.kuaishou in
  let apk = a.Appgen.app in
  let script = a.Appgen.app_script in
  (* 1. Building by DEX2OAT (baseline). *)
  let base = Pipeline.build ~config:Config.baseline apk in
  (* 2. Running OAT files + 3. profiling by simpleperf. *)
  let t = run_script base.Pipeline.b_oat script in
  let profile = Profile.of_interp t in
  let path = Filename.temp_file "calibro" ".profile" in
  (match Profile.save profile path with
   | Ok () -> ()
   | Error e -> failwith e);
  Printf.printf "profile written to %s (%d samples)\n" path
    (List.length profile);
  (* 4. Selecting profiling data: the hot set. *)
  let profile = Result.get_ok (Profile.load path) in
  let hot = Profile.hot_set ~coverage:0.8 profile in
  Printf.printf "hot set: %d methods cover 80%% of %d cycles\n"
    (List.length hot) (Profile.total profile);
  (* 5. Guided rebuild. *)
  let pl = Pipeline.build ~config:(Config.cto_ltbo_pl ~k:8 ()) apk in
  let hf =
    Pipeline.build ~config:(Config.cto_ltbo_pl_hf ~k:8 ~hot_methods:hot ()) apk
  in
  let cycles b = Calibro_vm.Interp.cycles (run_script b.Pipeline.b_oat script) in
  let cb = cycles base and cp = cycles pl and ch = cycles hf in
  Printf.printf "code size: baseline %dB, outlined %dB, hot-filtered %dB\n"
    (Pipeline.text_size base) (Pipeline.text_size pl) (Pipeline.text_size hf);
  Printf.printf
    "cycles: baseline %d, outlined %d (%+.2f%%), hot-filtered %d (%+.2f%%)\n"
    cb cp
    (100.0 *. float_of_int (cp - cb) /. float_of_int cb)
    ch
    (100.0 *. float_of_int (ch - cb) /. float_of_int cb);
  Sys.remove path
