(* bench pgo: the continuous re-optimization loop, measured end to end.

   The scenario is the paper's Table 7 read in reverse: an app whose
   usage drifts away from the profile its OAT was linked with pays a
   runtime cycle penalty; the PGO loop's job is to claw that penalty
   back with an incremental re-link through the shared cache — no cold
   rebuild, no client-side change.

   The run: an in-process calibrod (3 workers, shared in-memory cache,
   PGO manager attached) serves the Kuaishou-scale app built against the
   old regime's profile, then receives a stream of profile reports from
   the new regime — the same script with the hot half of its steps
   flipped, which displaces most of the execution mass. The drift
   detector must schedule exactly one re-link; afterwards the same Build
   request must serve the refreshed OAT.

   Correctness before speed, as everywhere in this harness:
   - the refreshed OAT must be byte-identical to an in-process build
     against the drifted profile (the linking-time oracle), and
   - once flipped, the served bytes must never flip back.

   The headline number is deterministic (the interpreter's cycle counts
   are exact): running the drifted script costs [pg_stale_cycles] on the
   stale OAT and [pg_relinked_cycles] on the re-linked one. Byte-identity
   makes relinked = fresh, so the measured residual degradation is 0% —
   the gate holds it to the Table 7 envelope committed in the baseline,
   and holds the stale penalty above a committed floor (drift that does
   not hurt would make the whole bench vacuous). *)

open Calibro_core
open Calibro_workload
module Server = Calibro_server.Server
module Client = Calibro_server.Client
module Worker = Calibro_server.Worker
module Protocol = Calibro_server.Protocol
module Transport = Calibro_server.Transport
module Pgo = Calibro_pgo.Pgo
module Profile = Calibro_profile.Profile
module Interp = Calibro_vm.Interp
module Oat_file = Calibro_oat.Oat_file
module Json = Calibro_obs.Json
module Chash = Calibro_chash.Chash

(* The repo's own Table 7 average degradation (EXPERIMENTS.md: ~+4.6%
   for +PlOpti on this workload): the re-linked OAT must keep the
   drifted script within this envelope of the fresh-optimal build. *)
let table7_envelope_pct = 4.6

let steady_reports = 4
let max_drift_reports = 12

type result = {
  pg_app : string;
  pg_reports : int;  (* total profile reports streamed *)
  pg_relinks : int;  (* manager's tally; the claim is exactly 1 *)
  pg_relink_cache_hits : int;
  pg_flip_monotone : bool;  (* served bytes flipped exactly once *)
  pg_byte_ok : bool;  (* refreshed OAT = in-process drifted build *)
  pg_stale_cycles : int;  (* drifted script on the stale OAT *)
  pg_relinked_cycles : int;  (* drifted script on the served refreshed OAT *)
  pg_fresh_cycles : int;  (* drifted script on a cold drifted build *)
  pg_errors : int;
}

let stale_degradation_pct r =
  100.
  *. float_of_int (r.pg_stale_cycles - r.pg_fresh_cycles)
  /. float_of_int r.pg_fresh_cycles

let relink_degradation_pct r =
  100.
  *. float_of_int (r.pg_relinked_cycles - r.pg_fresh_cycles)
  /. float_of_int r.pg_fresh_cycles

let ok r =
  r.pg_relinks = 1 && r.pg_byte_ok && r.pg_flip_monotone && r.pg_errors = 0

(* The two usage regimes: one script, opposite halves hot (x16). A
   binary split displaces far more execution mass than a ramp — the
   heaviest method keeps dominating a ramp's totals and the
   mass-weighted drift score never clears the threshold. *)
let weighted script w =
  List.mapi
    (fun i (st : Appgen.script_step) -> { st with Appgen.sc_repeat = w i })
    script

let run_script oat script =
  let t = Interp.load oat in
  List.iter
    (fun (st : Appgen.script_step) ->
      for _ = 1 to st.Appgen.sc_repeat do
        match Interp.call t st.Appgen.sc_method st.Appgen.sc_args with
        | Interp.Fault m ->
          failwith
            (Printf.sprintf "pgo bench script fault in %s: %s"
               (Calibro_dex.Dex_ir.method_ref_to_string st.Appgen.sc_method)
               m)
        | _ -> ()
      done)
    script;
  t

let cycles_of_bytes oat_bytes script =
  match Oat_file.of_bytes (Bytes.of_string oat_bytes) with
  | Error e -> failwith ("pgo bench: served OAT does not parse: " ^ e)
  | Ok oat -> Interp.cycles (run_script oat script)

let expect_built what = function
  | Protocol.Built { oat; _ } -> oat
  | Protocol.Rejected rej ->
    failwith
      (Printf.sprintf "pgo bench %s rejected: %s" what
         (Protocol.rejection_to_string rej))
  | Protocol.Dict_info _ | Protocol.Report_ack _ ->
    failwith ("pgo bench " ^ what ^ " answered a non-build response")

(* [?shelve] re-runs the whole loop under a shelve-enabled config: every
   request (and both in-process oracles) carries the coverage threshold,
   so the daemon serves shelved builds, the drift re-link re-derives the
   shelving plan from the *new* regime's profile (unshelving methods
   that turned hot), and the byte/monotonicity contracts must hold
   unchanged. `bench train` gates this composition. *)
let measure ?shelve () : result =
  let generated = Appgen.generate Apps.kuaishou in
  let apk = generated.Appgen.app in
  let script = generated.Appgen.app_script in
  let half = List.length script / 2 in
  let script_old = weighted script (fun i -> if i >= half then 16 else 1)
  and script_new = weighted script (fun i -> if i < half then 16 else 1) in
  (* Profiles come from the simulator, like Figure 6's workflow. *)
  let base = Pipeline.build ~cache:None ~config:Config.baseline apk in
  let prof s = Profile.to_string (Profile.of_interp (run_script base.Pipeline.b_oat s)) in
  let prof_old = prof script_old and prof_new = prof script_new in
  let config =
    match Config.of_string "pl2" with Ok c -> c | Error e -> failwith e
  in
  let dexsim = Calibro_dex.Dex_text.to_string apk in
  let digest = Chash.string dexsim in
  let rq p =
    { Protocol.rq_config = config;
      rq_dexsim = dexsim;
      rq_profile = Some p;
      rq_deadline_ms = None;
      rq_dict = None;
      rq_shelve = shelve }
  in
  (* The oracles, computed before the server exists. *)
  let expected_old =
    expect_built "old oracle" (Worker.build_response ~cache:None (rq prof_old))
  and expected_new =
    expect_built "new oracle" (Worker.build_response ~cache:None (rq prof_new))
  in
  if String.equal expected_old expected_new then
    failwith
      "pgo bench: the two regimes build identical bytes — no drift to measure";
  let stale_cycles = cycles_of_bytes expected_old script_new
  and fresh_cycles = cycles_of_bytes expected_new script_new in
  (* The served loop. *)
  let pgo = Pgo.Manager.create () in
  let socket =
    Printf.sprintf "%s/calibro-bench-pgo-%d.sock"
      (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in
  let endpoint = Transport.Unix_socket { path = socket } in
  let server =
    Server.create
      { (Server.default_config ~endpoint) with
        Server.workers = 3;
        cache = Some (Calibro_cache.Cache.create ());
        pgo = Some pgo }
  in
  let errors = ref 0 in
  let build () =
    match Client.request ~endpoint (rq prof_old) with
    | Ok (Protocol.Built { oat; _ }) -> Some oat
    | Ok _ | Error _ -> incr errors; None
  in
  let report p =
    match
      Client.report ~endpoint { Protocol.pr_app = digest; pr_profile = p }
    with
    | Ok (_, relink) -> relink
    | Error _ -> incr errors; false
  in
  let reports = ref 0 in
  let send p =
    incr reports;
    report p
  in
  let first_serve_old =
    match build () with
    | Some oat -> String.equal oat expected_old
    | None -> false
  in
  (* steady state, then the regime flips *)
  let steady_quiet = ref true in
  for _ = 1 to steady_reports do
    if send prof_old then steady_quiet := false
  done;
  let acked = ref false and sent = ref 0 in
  while (not !acked) && !sent < max_drift_reports do
    incr sent;
    if send prof_new then acked := true
  done;
  (* the relink runs through the worker pool; poll the same Build until
     the served bytes flip *)
  let flipped = ref None and tries = ref 0 in
  while !flipped = None && !tries < 200 do
    incr tries;
    (match build () with
     | Some oat when not (String.equal oat expected_old) -> flipped := Some oat
     | _ -> Thread.delay 0.025)
  done;
  (* once flipped, it must stay flipped *)
  let monotone = ref (!flipped <> None) in
  for _ = 1 to 3 do
    match (build (), !flipped) with
    | Some oat, Some f -> if not (String.equal oat f) then monotone := false
    | None, _ | _, None -> monotone := false
  done;
  (* read the tallies before the drain mirrors-and-zeroes them *)
  let relinks, hits =
    match Pgo.Manager.totals pgo with
    | [ (_, t) ] -> (t.Pgo.p_relinks, t.Pgo.p_relink_cache_hits)
    | _ -> (0, 0)
  in
  Server.request_drain server;
  Server.drain server;
  let byte_ok, relinked_cycles =
    match !flipped with
    | Some oat when String.equal oat expected_new ->
      (true, cycles_of_bytes oat script_new)
    | Some oat -> (false, cycles_of_bytes oat script_new)
    | None -> (false, stale_cycles)
  in
  { pg_app = apk.Calibro_dex.Dex_ir.apk_name;
    pg_reports = !reports;
    pg_relinks = relinks;
    pg_relink_cache_hits = hits;
    pg_flip_monotone = first_serve_old && !steady_quiet && !monotone;
    pg_byte_ok = byte_ok;
    pg_stale_cycles = stale_cycles;
    pg_relinked_cycles = relinked_cycles;
    pg_fresh_cycles = fresh_cycles;
    pg_errors = !errors }

let report r =
  Printf.printf
    "  %s: %d reports, %d relink(s), %d relink cache hits, %d errors\n"
    r.pg_app r.pg_reports r.pg_relinks r.pg_relink_cache_hits r.pg_errors;
  Printf.printf "  served flip %s, refreshed bytes %s\n"
    (if r.pg_flip_monotone then "monotone (old -> new, once)" else "BROKEN")
    (if r.pg_byte_ok then "identical to the in-process drifted build"
     else "DIFFER");
  Printf.printf
    "  drifted script: stale %d cycles, re-linked %d, fresh %d\n"
    r.pg_stale_cycles r.pg_relinked_cycles r.pg_fresh_cycles;
  Printf.printf
    "  degradation vs fresh: stale +%.2f%%, re-linked +%.2f%% (Table 7 \
     envelope %.1f%%)\n%!"
    (stale_degradation_pct r) (relink_degradation_pct r) table7_envelope_pct

(* `bench pgo`: print the measurement; false (-> exit 1 in main) unless
   the loop re-linked exactly once, byte-faithfully and monotonically,
   within the Table 7 envelope. *)
let bench () : bool =
  print_endline
    "== bench pgo: drift detection and incremental re-link through calibrod ==";
  let r = measure () in
  report r;
  ok r && relink_degradation_pct r <= table7_envelope_pct

let section r =
  Json.Obj
    [ ("app", Json.Str r.pg_app);
      ("reports", Json.Int r.pg_reports);
      ("relinks", Json.Int r.pg_relinks);
      ("relink_cache_hits", Json.Int r.pg_relink_cache_hits);
      ("flip_monotone", Json.Bool r.pg_flip_monotone);
      ("byte_equal", Json.Bool r.pg_byte_ok);
      ("stale_cycles", Json.Int r.pg_stale_cycles);
      ("relinked_cycles", Json.Int r.pg_relinked_cycles);
      ("fresh_cycles", Json.Int r.pg_fresh_cycles);
      ("stale_degradation_pct", Json.Float (stale_degradation_pct r));
      ("relink_degradation_pct", Json.Float (relink_degradation_pct r)) ]
