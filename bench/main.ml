(* The benchmark entry point: regenerates every table and figure of the
   paper's evaluation. With no arguments, runs the full matrix; pass
   `table1`..`table7`, `fig2`..`fig6`, `stats`, `bechamel` or
   `crosscheck` to run one experiment. *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|table3|table4|table5|table6|table7|fig2|fig3|fig4|fig6|stats|bechamel|crosscheck|all]"

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "-h" | "--help" -> usage ()
  | "fig2" -> Harness.figure2 ()
  | "crosscheck" -> Harness.crosscheck ()
  | "table2" -> Harness.table2 ()
  | "table3" -> Harness.table3 ()
  | "bechamel" -> Micro.benchmark ()
  | "ablation" ->
    Harness.ablation_k ();
    Harness.ablation_minlen ();
    Harness.ablation_cto_ltbo ();
    Harness.ablation_rounds ()
  | which ->
    let evals = List.map Harness.evaluate_app Calibro_workload.Apps.all in
    let all = which = "all" in
    Harness.table3 ();
    if all || which = "table1" then Harness.table1 evals;
    if all then Harness.figure2 ();
    if all || which = "fig3" then Harness.figure3 evals;
    if all || which = "fig4" then Harness.figure4 evals;
    if all then Harness.table2 ();
    if all || which = "table4" then Harness.table4 evals;
    if all || which = "table5" then Harness.table5 evals;
    if all || which = "table6" then Harness.table6 evals;
    if all || which = "table7" then Harness.table7 evals;
    if all || which = "fig6" then Harness.figure6 evals;
    if all || which = "stats" then Harness.ltbo_stats evals;
    if all then begin
      Harness.ablation_k ();
      Harness.ablation_minlen ();
      Harness.ablation_cto_ltbo ();
      Harness.ablation_rounds ();
      print_endline "== Bechamel micro-benchmarks ==";
      Micro.benchmark ()
    end
