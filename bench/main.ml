(* The benchmark entry point: regenerates every table and figure of the
   paper's evaluation. With no arguments, runs the full matrix; pass
   `table1`..`table7`, `fig2`..`fig6`, `stats`, `bechamel` or
   `crosscheck` to run one experiment.

   Observability: every run records lib/obs spans and metrics; `--trace
   FILE` writes a Chrome trace_event JSON (open in about://tracing or
   Perfetto), `--metrics FILE` the flat metrics JSON CI consumes.

   The CI perf gate: `baseline` re-measures the six evaluation apps and
   writes bench/baseline.json (committed); `gate` re-measures and fails
   (exit 1) if any app's text-size reduction regressed against the
   committed baseline, the total build time exceeds the committed
   envelope by more than 25%, or detection throughput falls more than
   25% below the committed floor. *)

module Obs = Calibro_obs.Obs

let usage () =
  print_endline
    "usage: main.exe [SUBCOMMAND] [--trace FILE] [--metrics FILE]\n\
    \                [--baseline FILE] [--out FILE]\n\
     subcommands:\n\
    \  all (default)    every table, figure, ablation and micro-benchmark\n\
    \  table1..table7, fig2..fig6, stats, ablation, bechamel, crosscheck\n\
    \  detect           detection-throughput microbenchmark (largest app)\n\
    \  incr             cold vs warm incremental rebuild after a one-method\n\
    \                   edit (largest app); exit 1 if warm bytes differ\n\
    \  serve            concurrent served-build throughput through the\n\
    \                   calibrod service path; exit 1 if any served OAT\n\
    \                   differs from its in-process build\n\
    \  fleet            aggregate throughput of 3 calibrod shards behind\n\
    \                   the consistent-hash router, with one shard drained\n\
    \                   mid-run; exit 1 on byte divergence or if the drain\n\
    \                   exercised no failover\n\
    \  store            fleet-wide bytes saved by the shared outline\n\
    \                   dictionary vs per-app outlining over the six apps;\n\
    \                   exit 1 unless sharing saves bytes net of the\n\
    \                   dictionary image and every dict-bound app runs\n\
    \                   byte-faithfully in the VM\n\
    \  pgo              drift detection + incremental re-link through a live\n\
    \                   calibrod: stream drifted profiles, require exactly\n\
    \                   one re-link, the served OAT byte-identical to the\n\
    \                   in-process drifted build, and the drifted script's\n\
    \                   cycles back inside the Table 7 envelope\n\
    \  train            shelve x outline size/cycle frontier over the six\n\
    \                   apps plus a release-train replay through a 3-shard\n\
    \                   fleet and a shelve-enabled PGO drift loop; exit 1\n\
    \                   on any VM divergence between shelved and unshelved\n\
    \                   builds, byte divergence in the fleet, or a broken\n\
    \                   shelved re-link\n\
    \  digest           per-app, per-config MD5 of the OAT text segment\n\
    \  baseline         measure and write the CI perf baseline\n\
    \                   (--out, default bench/baseline.json)\n\
    \  gate             compare a fresh measurement against the committed\n\
    \                   baseline (--baseline, default bench/baseline.json);\n\
    \                   exit 1 on regression\n\
     flags:\n\
    \  --trace FILE     write a Chrome trace_event JSON of the run\n\
    \  --metrics FILE   write the flat metrics JSON (counters, gauges,\n\
    \                   histograms, per-span durations, bench section)"

let () =
  let trace = ref None in
  let metrics = ref None in
  let baseline = ref "bench/baseline.json" in
  let out = ref None in
  let rec parse positional = function
    | [] -> List.rev positional
    | "--trace" :: f :: rest ->
      trace := Some f;
      parse positional rest
    | "--metrics" :: f :: rest ->
      metrics := Some f;
      parse positional rest
    | "--baseline" :: f :: rest ->
      baseline := f;
      parse positional rest
    | "--out" :: f :: rest ->
      out := Some f;
      parse positional rest
    | ("-h" | "--help") :: _ ->
      usage ();
      exit 0
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
      Printf.eprintf "unknown flag %s\n" a;
      usage ();
      exit 2
    | a :: rest -> parse (a :: positional) rest
  in
  let which =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> "all"
    | [ w ] -> w
    | _ ->
      usage ();
      exit 2
  in
  (* The bench section of the metrics document, filled by the subcommands
     that measure per-app sizes. *)
  let bench_section = ref None in
  let exit_code = ref 0 in
  (match which with
   | "fig2" -> Harness.figure2 ()
   | "crosscheck" -> Harness.crosscheck ()
   | "digest" -> Harness.digests ()
   | "detect" -> Harness.detect_bench ()
   | "incr" -> if not (Harness.incr_bench ()) then exit_code := 1
   | "serve" -> if not (Serve.bench ()) then exit_code := 1
   | "fleet" -> if not (Serve.fleet_bench ()) then exit_code := 1
   | "store" -> if not (Store.bench ()) then exit_code := 1
   | "pgo" -> if not (Pgo_bench.bench ()) then exit_code := 1
   | "train" -> if not (Train_bench.bench ()) then exit_code := 1
   | "table2" -> Harness.table2 ()
   | "table3" -> Harness.table3 ()
   | "bechamel" -> Micro.benchmark ()
   | "ablation" ->
     Harness.ablation_k ();
     Harness.ablation_minlen ();
     Harness.ablation_cto_ltbo ();
     Harness.ablation_rounds ()
   | "baseline" ->
     Harness.write_baseline
       (match !out with Some f -> f | None -> "bench/baseline.json")
   | "gate" ->
     print_endline "== CI perf gate: text sizes + build-time envelope ==";
     let section, failures = Harness.gate ~baseline_path:!baseline in
     bench_section := Some section;
     if failures <> [] then begin
       List.iter (fun m -> Printf.printf "GATE FAIL: %s\n" m) failures;
       exit_code := 1
     end
     else print_endline "gate ok"
   | which ->
     let evals = List.map Harness.evaluate_app Calibro_workload.Apps.all in
     bench_section := Some (Harness.bench_json evals);
     let all = which = "all" in
     Harness.table3 ();
     if all || which = "table1" then Harness.table1 evals;
     if all then Harness.figure2 ();
     if all || which = "fig3" then Harness.figure3 evals;
     if all || which = "fig4" then Harness.figure4 evals;
     if all then Harness.table2 ();
     if all || which = "table4" then Harness.table4 evals;
     if all || which = "table5" then Harness.table5 evals;
     if all || which = "table6" then Harness.table6 evals;
     if all || which = "table7" then Harness.table7 evals;
     if all || which = "fig6" then Harness.figure6 evals;
     if all || which = "stats" then Harness.ltbo_stats evals;
     if all then begin
       Harness.ablation_k ();
       Harness.ablation_minlen ();
       Harness.ablation_cto_ltbo ();
       Harness.ablation_rounds ();
       print_endline "== Bechamel micro-benchmarks ==";
       Micro.benchmark ()
     end);
  let extra =
    match !bench_section with
    | Some section -> [ ("bench", section) ]
    | None -> []
  in
  Obs.export ~extra ~metrics:!metrics ~trace:!trace ();
  Option.iter (Printf.eprintf "[bench] metrics written to %s\n%!") !metrics;
  Option.iter (Printf.eprintf "[bench] trace written to %s\n%!") !trace;
  exit !exit_code
