(* bench train: the store-scale release-train workload, and the
   shelve x outline tradeoff frontier it rides on.

   Two claims are measured, both gated against bench/baseline.json:

   1. The frontier (the "Shelving it rather than Ditching it" debloat
      table composed with Calibro's Table 6): each of the six evaluation
      apps is built outline-alone (CTO+LTBO+PlOpti(8)) and
      outline+shelve (coverage 0.8 against the app's own script
      profile). Shelving must beat outline-alone total text size by the
      committed floor — the cold methods collapse to 8-byte stubs —
      while the replayed scripts' total cycles stay within the
      committed envelope (shelf faults and interpretation penalties are
      the price; the envelope says how much). Any divergence between a
      shelved and unshelved run's VM output fails unconditionally —
      shelving may only cost cycles, never change semantics. The same
      apps are then bound against a shared dictionary mined from the
      shelved (warm-set-only) builds, re-verifying the store floor
      under a shelve-enabled config: sharing must still save bytes.

   2. The release train: a deterministic Workload.Train of one-delta
      app versions replayed through a 3-shard calibrod fleet behind the
      consistent-hash router, every request asking for a shelved build.
      Each client walks the versions in order, so the first client to
      reach a version pays the cold build and the rest hit warm; the
      fleet-wide cache hit rate is gated against a committed floor
      (half the measured rate — concurrent cold-build races make the
      exact count machine-dependent). The incremental-relink win — the
      fraction of cache lookups served warm when walking the train
      sequentially on a fresh cache, version-to-version — is
      single-threaded and deterministic, so its floor is exact. Every
      served OAT must be byte-identical to an in-process build of the
      same request.

   The PGO drift loop is also re-run shelve-enabled (Pgo_bench.measure
   ~shelve): the re-link must still happen exactly once, byte-faithfully
   and monotonically, with the shelving plan re-derived from the drifted
   profile — the unshelve-on-drift path, end to end. *)

open Calibro_core
open Calibro_workload
module Shelve = Calibro_shelve.Shelve
module Profile = Calibro_profile.Profile
module Interp = Calibro_vm.Interp
module Oat_file = Calibro_oat.Oat_file
module Dict = Calibro_dict.Dict
module Server = Calibro_server.Server
module Client = Calibro_server.Client
module Worker = Calibro_server.Worker
module Protocol = Calibro_server.Protocol
module Transport = Calibro_server.Transport
module Router = Calibro_server.Router
module Obs = Calibro_obs.Obs
module Clock = Calibro_obs.Clock
module Json = Calibro_obs.Json

let shelve_coverage = 0.8
let pl8 = Config.cto_ltbo_pl ~k:8 ()

(* The train replayed through the fleet: demo-app versions, one Mutate
   delta apart, under the serve bench's pl2 config. *)
let train_deltas = 40
let fleet_shards = 3
let fleet_clients = 3

type app_row = {
  ta_name : string;
  ta_text_plain : int;  (* pl8, outline alone *)
  ta_text_shelved : int;  (* pl8 + shelve: warm text + stubs *)
  ta_shelf_bytes : int;  (* parked bodies, mapped cold *)
  ta_shelved_methods : int;
  ta_unshelved : int;  (* methods the script faulted back in *)
  ta_cycles_plain : int;
  ta_cycles_shelved : int;
  ta_vm_ok : bool;
      (* shelved and dict-bound-shelved runs produce the plain run's
         exact output log *)
  ta_policy_ok : bool;  (* OAT records the plan's policy digest *)
}

type fleet = {
  tf_versions : int;
  tf_requests : int;
  tf_built : int;
  tf_errors : int;
  tf_byte_ok : bool;
  tf_hit_rate : float;  (* fleet-wide cache hit rate over the replay *)
  tf_throughput : float;
}

type result = {
  tr_apps : app_row list;
  tr_text_plain_total : int;
  tr_text_shelved_total : int;
  tr_text_saved : int;  (* plain - shelved, the debloat win *)
  tr_cycle_ratio : float;  (* shelved cycles / plain cycles, >= 1 *)
  tr_store_saved_shelved : int;
      (* dict sharing across the shelved warm sets, net of the image *)
  tr_dict_digest : string;
  tr_incr_hit_rate : float;  (* sequential train walk, deterministic *)
  tr_fleet : fleet;
  tr_pgo : Pgo_bench.result;  (* the drift loop, shelve-enabled *)
}

let vm_ok r = List.for_all (fun a -> a.ta_vm_ok && a.ta_policy_ok) r.tr_apps

let ok r =
  vm_ok r && r.tr_text_saved > 0 && r.tr_store_saved_shelved > 0
  && r.tr_fleet.tf_byte_ok
  && r.tr_fleet.tf_hit_rate > 0.0
  && Pgo_bench.ok r.tr_pgo

let run_script ?dict oat script =
  let t = Interp.load ?dict oat in
  List.iter
    (fun (st : Appgen.script_step) ->
      for _ = 1 to st.Appgen.sc_repeat do
        match Interp.call t st.Appgen.sc_method st.Appgen.sc_args with
        | Interp.Fault m ->
          failwith
            (Printf.sprintf "train bench script fault in %s: %s"
               (Calibro_dex.Dex_ir.method_ref_to_string st.Appgen.sc_method)
               m)
        | _ -> ()
      done)
    script;
  t

(* Cache traffic, summed over every namespace the pipeline uses. *)
let cache_ns = [ "method"; "detect"; "detectdict"; "detectshelve" ]

let cache_counts () =
  List.fold_left
    (fun (h, m) ns ->
      ( h
        + Obs.Counter.value (Printf.sprintf "cache.%s.hits" ns)
        + Obs.Counter.value (Printf.sprintf "cache.%s.disk_hits" ns),
        m + Obs.Counter.value (Printf.sprintf "cache.%s.misses" ns) ))
    (0, 0) cache_ns

(* ---- the shelve x outline frontier (six apps) --------------------------- *)

(* Per app: outline-alone vs outline+shelve, cycles of the app's own
   script on both, and a dictionary mined from the shelved builds to
   re-verify store sharing on the warm set. Returns the rows and the
   dictionary stats. *)
let frontier () =
  let per_app =
    List.map
      (fun (p : Appgen.profile) ->
        Printf.eprintf "[train] frontier: %s...\n%!" p.Appgen.p_name;
        let g = Appgen.generate p in
        let apk = g.Appgen.app and script = g.Appgen.app_script in
        let plain = Pipeline.build ~config:pl8 apk in
        let tp = run_script plain.Pipeline.b_oat script in
        let plan =
          Shelve.of_profile ~coverage:shelve_coverage (Profile.of_interp tp)
        in
        let shelved = Pipeline.build ~config:pl8 ~shelve:plan apk in
        let ts = run_script shelved.Pipeline.b_oat script in
        (apk, script, plan, plain, tp, shelved, ts))
      Apps.all
  in
  let d =
    Dict.of_oats
      (List.map (fun (_, _, _, _, _, s, _) -> s.Pipeline.b_oat) per_app)
  in
  let ld = Dict.linker_dict d in
  let rows, bound_total =
    List.fold_left
      (fun (rows, bound_total) (apk, script, plan, plain, tp, shelved, ts) ->
        let name = apk.Calibro_dex.Dex_ir.apk_name in
        Printf.eprintf "[train] binding %s against %s...\n%!" name
          (Dict.digest d);
        let bound = Pipeline.build ~config:pl8 ~dict:ld ~shelve:plan apk in
        let tb = run_script ~dict:(Dict.vm_image d) bound.Pipeline.b_oat script in
        let plain_log = Interp.log tp in
        let row =
          { ta_name = name;
            ta_text_plain = Pipeline.text_size plain;
            ta_text_shelved = Pipeline.text_size shelved;
            ta_shelf_bytes =
              (match shelved.Pipeline.b_oat.Oat_file.shelve with
               | Some s -> Bytes.length s.Oat_file.shf_image
               | None -> 0);
            ta_shelved_methods = shelved.Pipeline.b_shelved;
            ta_unshelved = Interp.unshelved_count ts;
            ta_cycles_plain = Interp.cycles tp;
            ta_cycles_shelved = Interp.cycles ts;
            ta_vm_ok = Interp.log ts = plain_log && Interp.log tb = plain_log;
            ta_policy_ok =
              (match shelved.Pipeline.b_oat.Oat_file.shelve with
               | Some s -> String.equal s.Oat_file.shf_digest plan.Shelve.sp_digest
               | None -> shelved.Pipeline.b_shelved = 0) }
        in
        (row :: rows, bound_total + Pipeline.text_size bound))
      ([], 0) per_app
  in
  let rows = List.rev rows in
  let shelved_total =
    List.fold_left (fun a r -> a + r.ta_text_shelved) 0 rows
  in
  (rows, Dict.digest d, shelved_total - (bound_total + Dict.size d))

(* ---- the release train -------------------------------------------------- *)

let train_requests () =
  let g = Appgen.generate Apps.demo in
  let base = g.Appgen.app in
  let bl = Pipeline.build ~config:Config.baseline base in
  let prof_text =
    Profile.to_string
      (Profile.of_interp (run_script bl.Pipeline.b_oat g.Appgen.app_script))
  in
  let config =
    match Config.of_string "pl2" with Ok c -> c | Error e -> failwith e
  in
  Train.fold ~deltas:train_deltas ~seed:1 base ~init:[] ~f:(fun acc v ->
      { Protocol.rq_config = config;
        rq_dexsim = Calibro_dex.Dex_text.to_string v.Train.v_apk;
        rq_profile = Some prof_text;
        rq_deadline_ms = None;
        rq_dict = None;
        rq_shelve = Some shelve_coverage }
      :: acc)
  |> List.rev |> Array.of_list

(* The deterministic half of the claim: walk the train once, in order,
   on a fresh cache, and measure what fraction of cache lookups after
   version 0 come back warm. Consecutive versions differ by one Mutate
   delta, so this is the incremental-relink win, exact. *)
let incr_measure (slots : Protocol.build_request array) =
  let cache = Calibro_cache.Cache.create () in
  let build rq =
    ignore (Worker.build_response ~cache:(Some cache) rq : Protocol.response)
  in
  build slots.(0);
  let h0, m0 = cache_counts () in
  Array.iteri (fun i rq -> if i > 0 then build rq) slots;
  let h1, m1 = cache_counts () in
  let hits = h1 - h0 and misses = m1 - m0 in
  if hits + misses = 0 then 0.0
  else float_of_int hits /. float_of_int (hits + misses)

let fleet_measure (slots : Protocol.build_request array) : fleet =
  let expected =
    Array.map
      (fun rq ->
        match Worker.build_response ~cache:None rq with
        | Protocol.Built { oat; _ } -> oat
        | Protocol.Rejected rej ->
          failwith
            ("train bench version does not build: "
            ^ Protocol.rejection_to_string rej)
        | Protocol.Dict_info _ | Protocol.Report_ack _ ->
          failwith "train bench version answered a non-build response")
      slots
  in
  let servers =
    Array.init fleet_shards (fun _ ->
        Server.create
          { (Server.default_config
               ~endpoint:(Transport.Tcp { host = "127.0.0.1"; port = 0 }))
            with
            Server.cache = Some (Calibro_cache.Cache.create ()) })
  in
  let socket =
    Printf.sprintf "%s/calibro-bench-train-%d.sock"
      (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in
  let router =
    Router.create
      (Router.default_config
         ~listen:(Transport.Unix_socket { path = socket })
         ~shards:(Array.map Server.endpoint servers))
  in
  let endpoint = Router.endpoint router in
  let n_versions = Array.length slots in
  let built = Atomic.make 0
  and errors = Atomic.make 0
  and mismatches = Atomic.make 0 in
  let h0, m0 = cache_counts () in
  let t0 = Clock.now_ns () in
  let client_thread _ () =
    (* every client replays the whole train, in version order *)
    for r = 0 to n_versions - 1 do
      match Client.request ~endpoint slots.(r) with
      | Ok (Protocol.Built { oat; _ }) ->
        Atomic.incr built;
        if not (String.equal oat expected.(r)) then Atomic.incr mismatches
      | Ok _ -> Atomic.incr errors
      | Error _ -> Atomic.incr errors
    done
  in
  let threads =
    List.init fleet_clients (fun c -> Thread.create (client_thread c) ())
  in
  List.iter Thread.join threads;
  let wall_s = Clock.since_s t0 in
  Router.request_drain router;
  Router.drain router;
  Array.iter
    (fun s ->
      Server.request_drain s;
      Server.drain s)
    servers;
  let h1, m1 = cache_counts () in
  let hits = h1 - h0 and misses = m1 - m0 in
  let total = fleet_clients * n_versions in
  { tf_versions = n_versions;
    tf_requests = total;
    tf_built = Atomic.get built;
    tf_errors = Atomic.get errors;
    tf_byte_ok =
      Atomic.get mismatches = 0 && Atomic.get errors = 0
      && Atomic.get built = total;
    tf_hit_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
    tf_throughput = float_of_int (Atomic.get built) /. wall_s }

let measure () : result =
  let rows, dict_digest, store_saved_shelved = frontier () in
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  let plain_total = total (fun r -> r.ta_text_plain)
  and shelved_total = total (fun r -> r.ta_text_shelved)
  and cycles_plain = total (fun r -> r.ta_cycles_plain)
  and cycles_shelved = total (fun r -> r.ta_cycles_shelved) in
  Printf.eprintf "[train] replaying the %d-delta release train...\n%!"
    train_deltas;
  let slots = train_requests () in
  let incr_hit_rate = incr_measure slots in
  let fleet = fleet_measure slots in
  Printf.eprintf "[train] re-running the PGO loop shelve-enabled...\n%!";
  let pgo = Pgo_bench.measure ~shelve:shelve_coverage () in
  { tr_apps = rows;
    tr_text_plain_total = plain_total;
    tr_text_shelved_total = shelved_total;
    tr_text_saved = plain_total - shelved_total;
    tr_cycle_ratio = float_of_int cycles_shelved /. float_of_int cycles_plain;
    tr_store_saved_shelved = store_saved_shelved;
    tr_dict_digest = dict_digest;
    tr_incr_hit_rate = incr_hit_rate;
    tr_fleet = fleet;
    tr_pgo = pgo }

let report r =
  List.iter
    (fun a ->
      Printf.printf
        "  %-9s text %7d -> %7d (+%7d shelf)  %4d shelved, %3d unshelved  \
         cycles %9d -> %9d  vm %s\n"
        a.ta_name a.ta_text_plain a.ta_text_shelved a.ta_shelf_bytes
        a.ta_shelved_methods a.ta_unshelved a.ta_cycles_plain
        a.ta_cycles_shelved
        (if a.ta_vm_ok && a.ta_policy_ok then "faithful" else "DIVERGES"))
    r.tr_apps;
  Printf.printf
    "  frontier: text %d -> %d (%d saved), cycle ratio %.3fx\n"
    r.tr_text_plain_total r.tr_text_shelved_total r.tr_text_saved
    r.tr_cycle_ratio;
  Printf.printf
    "  store (shelved warm sets, dict %s): %d bytes saved net of the image\n"
    r.tr_dict_digest r.tr_store_saved_shelved;
  Printf.printf
    "  train: %d versions x %d clients through %d shards: %d built, %d \
     errors, bytes %s\n"
    r.tr_fleet.tf_versions fleet_clients fleet_shards r.tr_fleet.tf_built
    r.tr_fleet.tf_errors
    (if r.tr_fleet.tf_byte_ok then "identical to in-process builds"
     else "DIFFER");
  Printf.printf
    "  train: fleet cache hit rate %.3f, incremental walk hit rate %.3f, \
     %.1f builds/s\n"
    r.tr_fleet.tf_hit_rate r.tr_incr_hit_rate r.tr_fleet.tf_throughput;
  Printf.printf "  pgo (shelve-enabled): %d relink(s), %d cache hits, flip \
                 %s, bytes %s\n%!"
    r.tr_pgo.Pgo_bench.pg_relinks r.tr_pgo.Pgo_bench.pg_relink_cache_hits
    (if r.tr_pgo.Pgo_bench.pg_flip_monotone then "monotone" else "BROKEN")
    (if r.tr_pgo.Pgo_bench.pg_byte_ok then "identical" else "DIFFER")

(* `bench train`: print the measurement; false (-> exit 1 in main) unless
   every unconditional contract held. *)
let bench () : bool =
  print_endline
    "== bench train: shelve x outline frontier + release-train replay ==";
  let r = measure () in
  report r;
  ok r

let section r =
  Json.Obj
    [ ( "apps",
        Json.Obj
          (List.map
             (fun a ->
               ( a.ta_name,
                 Json.Obj
                   [ ("text_plain", Json.Int a.ta_text_plain);
                     ("text_shelved", Json.Int a.ta_text_shelved);
                     ("shelf_bytes", Json.Int a.ta_shelf_bytes);
                     ("shelved_methods", Json.Int a.ta_shelved_methods);
                     ("unshelved", Json.Int a.ta_unshelved);
                     ("cycles_plain", Json.Int a.ta_cycles_plain);
                     ("cycles_shelved", Json.Int a.ta_cycles_shelved);
                     ("vm_ok", Json.Bool (a.ta_vm_ok && a.ta_policy_ok)) ] ))
             r.tr_apps) );
      ("text_saved", Json.Int r.tr_text_saved);
      ("cycle_ratio", Json.Float r.tr_cycle_ratio);
      ("store_saved_shelved", Json.Int r.tr_store_saved_shelved);
      ("incr_hit_rate", Json.Float r.tr_incr_hit_rate);
      ("fleet_hit_rate", Json.Float r.tr_fleet.tf_hit_rate);
      ("fleet_byte_equal", Json.Bool r.tr_fleet.tf_byte_ok);
      ("pgo_shelved_relinks", Json.Int r.tr_pgo.Pgo_bench.pg_relinks);
      ( "pgo_shelved_relink_cache_hits",
        Json.Int r.tr_pgo.Pgo_bench.pg_relink_cache_hits );
      ("ok", Json.Bool (ok r)) ]
